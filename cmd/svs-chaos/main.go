// Command svs-chaos is one node of the black-box chaos harness
// (test/chaosharness): a real SVS node — TCP transport wrapped in the
// fault-injecting transport.Faults controller, heartbeat failure
// detection, any number of hosted groups — driven over a small HTTP
// control API and logging every observable event (multicast, delivery,
// view install, expulsion) as one JSON line per event.
//
// The harness builds this binary, spawns N of them, connects them into
// groups, feeds them a seeded action stream (multicast, join, leave,
// kill, restart, partition, heal, flow-block), and afterwards replays
// the JSONL logs through the internal/check oracle to verify the §3.2
// safety properties black-box, across process boundaries.
//
// It prints exactly one line to stdout once it is reachable:
//
//	READY self=<pid> addr=<tcp addr> ctl=http://<control addr>
//
// Control API (JSON over HTTP):
//
//	POST /peers     {"peers":{"pid":"host:port",...}}    introduce peers
//	POST /create    {"group":1,"members":["n0","n1"]}    found a group
//	POST /join      {"group":1,"contacts":["n0"]}        join a running group
//	POST /leave     {"group":1}                          leave gracefully
//	POST /viewchange {"group":1}                         no-op view change (flush barrier)
//	POST /multicast {"group":1,"count":10}               enqueue multicasts
//	POST /block     {"group":1,"blocked":true}           pause the delivery pump
//	POST /fault     {"op":"cut","peers":["n1"]}          outbound link faults
//	GET  /stats?group=1                                  group status snapshot
//	GET  /metrics                                        obs registry snapshot
//	POST /quit                                           graceful shutdown
package main

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"

	gonet "net"
)

func main() {
	var (
		self    = flag.String("self", "", "process identifier (required)")
		listen  = flag.String("listen", "127.0.0.1:0", "transport listen address")
		ctl     = flag.String("ctl", "127.0.0.1:0", "control API listen address")
		logPath = flag.String("log", "", "JSONL event log path (required)")
		k       = flag.Int("k", 16, "k-enumeration window (messages obsolete their predecessor chain)")
		buffer  = flag.Int("buffer", 8, "delivery/outgoing buffer size and flow-control window")
		seed    = flag.Int64("seed", 1, "fault-injection rng seed")
		hb      = flag.Duration("hb", 50*time.Millisecond, "heartbeat interval (timeout is 5x)")
		events  = flag.Bool("events", false, "log structured protocol events to stderr")
		heal    = flag.Bool("heal", false, "enable partition healing (probe former members, merge diverged views)")
	)
	flag.Parse()
	if *self == "" || *logPath == "" {
		fmt.Fprintln(os.Stderr, "svs-chaos: -self and -log are required")
		os.Exit(2)
	}
	if err := run(ident.PID(*self), *listen, *ctl, *logPath, *k, *buffer, *seed, *hb, *events, *heal); err != nil {
		fmt.Fprintf(os.Stderr, "svs-chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(self ident.PID, listen, ctl, logPath string, k, buffer int, seed int64, hb time.Duration, events, heal bool) error {
	logF, err := os.Create(logPath)
	if err != nil {
		return err
	}
	defer logF.Close()

	tcp, err := transport.NewTCPNetworkOpts(self, listen, nil, transport.TCPOptions{})
	if err != nil {
		return err
	}
	faults := transport.NewFaults(seed)
	ep := faults.Wrap(tcp)

	var logger *slog.Logger
	if events {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil)).With(slog.String("node", string(self)))
	}
	reg := obs.NewRegistry()
	node, err := core.NewNode(core.NodeConfig{
		Self:      self,
		Endpoint:  ep,
		Heartbeat: fd.HeartbeatOptions{Interval: hb},
		Obs:       obs.New(nil, reg, logger),
	})
	if err != nil {
		return err
	}

	s := &server{
		self:   self,
		node:   node,
		tcp:    tcp,
		faults: faults,
		logF:   logF,
		k:      k,
		buffer: buffer,
		heal:   heal,
		reg:    reg,
		groups: make(map[ident.GroupID]*grp),
		quitC:  make(chan struct{}),
	}

	ln, err := gonet.Listen("tcp", ctl)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux()}
	go srv.Serve(ln)

	fmt.Printf("READY self=%s addr=%s ctl=http://%s\n", self, tcp.Addr(), ln.Addr())
	os.Stdout.Sync()

	<-s.quitC
	s.mu.Lock()
	for _, x := range s.groups {
		x.stop()
	}
	s.mu.Unlock()
	node.Close()
	srv.Close()
	return nil
}

// server is the HTTP-controlled node runtime.
type server struct {
	self   ident.PID
	node   *core.Node
	tcp    *transport.TCPNetwork
	faults *transport.Faults
	k      int
	buffer int
	heal   bool
	reg    *obs.Registry

	logMu sync.Mutex
	logF  *os.File

	mu       sync.Mutex
	groups   map[ident.GroupID]*grp
	quitOnce sync.Once
	quitC    chan struct{}
}

// event is one JSONL log line; which fields are set depends on Ev.
type event struct {
	Ev      string   `json:"ev"` // mcast | deliver | install | expelled
	P       string   `json:"p"`
	G       uint32   `json:"g"`
	View    uint64   `json:"view"`
	Epoch   uint64   `json:"epoch,omitempty"` // lineage epoch (0 = founding lineage)
	Sender  string   `json:"sender,omitempty"`
	Seq     uint64   `json:"seq,omitempty"`
	Annot   string   `json:"annot,omitempty"` // base64
	Members []string `json:"members,omitempty"`
}

// log writes one event line, unbuffered: a SIGKILL loses at most the
// line being written, never reorders (the oracle tolerates a truncated
// final line).
func (s *server) log(e event) {
	e.P = string(s.self)
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.logF.Write(append(b, '\n'))
	s.logMu.Unlock()
}

func (s *server) gc() core.GroupConfig {
	gc := core.GroupConfig{
		Relation:          obsolete.KEnumeration{K: s.k},
		ToDeliverCap:      s.buffer,
		OutgoingCap:       s.buffer,
		Window:            s.buffer,
		AutoEvict:         true,
		StabilityInterval: 100 * time.Millisecond,
	}
	if s.heal {
		gc.Heal = &core.HealSpec{}
	}
	return gc
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { fmt.Fprintln(w, "ok") })
	m.HandleFunc("/peers", jsonH(s.peers))
	m.HandleFunc("/create", jsonH(s.create))
	m.HandleFunc("/join", jsonH(s.join))
	m.HandleFunc("/leave", jsonH(s.leave))
	m.HandleFunc("/viewchange", jsonH(s.viewchange))
	m.HandleFunc("/multicast", jsonH(s.multicast))
	m.HandleFunc("/block", jsonH(s.block))
	m.HandleFunc("/fault", jsonH(s.fault))
	m.HandleFunc("/stats", s.stats)
	m.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.reg.Snapshot())
	})
	m.HandleFunc("/quit", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "bye")
		s.quitOnce.Do(func() { close(s.quitC) })
	})
	return m
}

// jsonH adapts a typed request handler: decode body, run, report error.
func jsonH[T any](h func(T) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req T
		if r.Body != nil {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err.Error() != "EOF" {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		if err := h(req); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintln(w, "ok")
	}
}

type peersReq struct {
	Peers map[string]string `json:"peers"`
}

func (s *server) peers(r peersReq) error {
	for p, addr := range r.Peers {
		if ident.PID(p) != s.self {
			s.tcp.AddPeer(ident.PID(p), addr)
		}
	}
	return nil
}

type groupReq struct {
	Group    uint32   `json:"group"`
	Members  []string `json:"members,omitempty"`
	Contacts []string `json:"contacts,omitempty"`
	Count    int      `json:"count,omitempty"`
	Blocked  bool     `json:"blocked,omitempty"`
}

func pidsOf(ss []string) ident.PIDs {
	ps := make([]ident.PID, len(ss))
	for i, s := range ss {
		ps[i] = ident.PID(s)
	}
	return ident.NewPIDs(ps...)
}

func (s *server) create(r groupReq) error {
	gc := s.gc()
	gc.InitialView = core.View{ID: 1, Members: pidsOf(r.Members)}
	g, err := s.node.Create(ident.GroupID(r.Group), gc)
	if err != nil {
		return err
	}
	// Founders install the initial view by fiat, not through a view
	// change, so no DeliverView event will ever record it — log it here.
	// The oracle needs it to tell founders (constrained by SVS across
	// the 1→2 view change) from joiners (who never held view 1).
	s.log(event{Ev: "install", P: string(s.self), G: r.Group,
		View: uint64(gc.InitialView.ID), Members: r.Members})
	s.adopt(ident.GroupID(r.Group), g)
	return nil
}

func (s *server) join(r groupReq) error {
	g, err := s.node.Join(ident.GroupID(r.Group), s.gc(), pidsOf(r.Contacts)...)
	if err != nil {
		return err
	}
	s.adopt(ident.GroupID(r.Group), g)
	return nil
}

func (s *server) adopt(id ident.GroupID, g *core.Group) {
	ctx, cancel := context.WithCancel(context.Background())
	x := &grp{
		s: s, id: id, g: g, cancel: cancel,
		tracker: obsolete.NewKTracker(s.k),
		wake:    make(chan struct{}, 1),
	}
	s.mu.Lock()
	s.groups[id] = x
	s.mu.Unlock()
	go x.pump(ctx)
	go x.work(ctx)
}

func (s *server) grp(id uint32) (*grp, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	x, ok := s.groups[ident.GroupID(id)]
	if !ok {
		return nil, fmt.Errorf("group %d not hosted", id)
	}
	return x, nil
}

// leave departs gracefully: the node asks the group to remove it (a
// normal view change, so survivors flush and re-arm their windows
// instead of waiting for the failure detector), waits for its expelled
// notification, then detaches. Detaching without the view change would
// leave the survivors' flow-control credits pointed at a ghost.
func (s *server) leave(r groupReq) error {
	x, err := s.grp(r.Group)
	if err != nil {
		return err
	}
	x.mu.Lock()
	x.blocked = false // the pump must run to see the expulsion
	x.mu.Unlock()
	if err := x.g.RequestViewChange(s.self); err != nil {
		s.detach(x)
		return nil
	}
	go func() {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			x.mu.Lock()
			done := x.expelled
			x.mu.Unlock()
			if done {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		s.detach(x)
	}()
	return nil
}

func (s *server) detach(x *grp) {
	s.mu.Lock()
	if s.groups[x.id] == x {
		delete(s.groups, x.id)
	}
	s.mu.Unlock()
	x.stop()
}

// viewchange triggers a no-op membership view change: the flush protocol
// reconciles delivery gaps and re-arms every window, which is the final
// barrier the harness runs after the last fault.
func (s *server) viewchange(r groupReq) error {
	x, err := s.grp(r.Group)
	if err != nil {
		return err
	}
	return x.g.RequestViewChange()
}

func (s *server) multicast(r groupReq) error {
	x, err := s.grp(r.Group)
	if err != nil {
		return err
	}
	x.mu.Lock()
	x.queued += r.Count
	x.mu.Unlock()
	select {
	case x.wake <- struct{}{}:
	default:
	}
	return nil
}

func (s *server) block(r groupReq) error {
	x, err := s.grp(r.Group)
	if err != nil {
		return err
	}
	x.mu.Lock()
	x.blocked = r.Blocked
	x.mu.Unlock()
	return nil
}

type faultReq struct {
	Op    string   `json:"op"` // cut | heal | delay | drop | dup
	Peers []string `json:"peers,omitempty"`
	Ms    int      `json:"ms,omitempty"`
	P     float64  `json:"p,omitempty"`
}

// fault applies outbound link rules from this node; symmetric faults are
// the harness's job (it calls both sides).
func (s *server) fault(r faultReq) error {
	peers := pidsOf(r.Peers)
	switch r.Op {
	case "cut":
		s.faults.PartitionOneWay([]ident.PID{s.self}, peers)
	case "heal":
		s.faults.Heal()
	case "delay":
		for _, p := range peers {
			s.faults.Delay(s.self, p, time.Duration(r.Ms)*time.Millisecond)
		}
	case "drop":
		for _, p := range peers {
			s.faults.Drop(s.self, p, r.P)
		}
	case "dup":
		for _, p := range peers {
			s.faults.Duplicate(s.self, p, r.P)
		}
	default:
		return fmt.Errorf("unknown fault op %q", r.Op)
	}
	return nil
}

// statsResp is the harness-facing status snapshot of one group.
type statsResp struct {
	View      uint64   `json:"view"`
	Epoch     uint64   `json:"epoch"`
	Members   []string `json:"members"`
	Joining   bool     `json:"joining"`
	Expelled  bool     `json:"expelled"`
	Blocked   bool     `json:"blocked"`
	Queued    int      `json:"queued"`
	Sent      uint64   `json:"sent"`
	McastErrs uint64   `json:"mcast_errs"`
	Parked    int      `json:"parked"`
}

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	var id uint32
	fmt.Sscanf(r.URL.Query().Get("group"), "%d", &id)
	x, err := s.grp(id)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	v := x.g.View()
	st := x.g.Stats()
	x.mu.Lock()
	resp := statsResp{
		View:      uint64(v.ID),
		Epoch:     uint64(v.Epoch),
		Joining:   v.ID == 0,
		Expelled:  x.expelled,
		Blocked:   x.blocked,
		Queued:    x.queued,
		Sent:      x.sent,
		McastErrs: x.mcastErrs,
		Parked:    st.Parked,
	}
	x.mu.Unlock()
	for _, m := range v.Members {
		resp.Members = append(resp.Members, string(m))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// grp is one hosted group's driver state: a delivery pump that logs
// every delivery and install, and a multicast worker draining a queue of
// requested multicasts through a k-enumeration tracker (each message
// obsoletes its direct predecessor, so the annotation chain makes every
// later message cover all earlier ones transitively).
type grp struct {
	s      *server
	id     ident.GroupID
	g      *core.Group
	cancel context.CancelFunc
	wake   chan struct{}

	mu        sync.Mutex
	tracker   *obsolete.KTracker
	queued    int
	sent      uint64
	mcastErrs uint64
	blocked   bool
	expelled  bool
}

func (x *grp) stop() {
	x.cancel()
	x.g.Leave()
}

func (x *grp) pump(ctx context.Context) {
	for {
		x.mu.Lock()
		blocked := x.blocked
		x.mu.Unlock()
		if blocked {
			// The pull-style Deliver means not calling it IS flow
			// control: messages pile up in the protocol's buffers, where
			// they stay purgeable.
			select {
			case <-time.After(2 * time.Millisecond):
				continue
			case <-ctx.Done():
				return
			}
		}
		d, err := x.g.Deliver(ctx)
		if err != nil {
			return
		}
		switch d.Kind {
		case core.DeliverData:
			x.s.log(event{
				Ev: "deliver", G: uint32(x.id), View: uint64(d.View), Epoch: uint64(d.Epoch),
				Sender: string(d.Meta.Sender), Seq: uint64(d.Meta.Seq),
				Annot: base64.StdEncoding.EncodeToString(d.Meta.Annot),
			})
		case core.DeliverView:
			ev := event{Ev: "install", G: uint32(x.id), View: uint64(d.NewView.ID), Epoch: uint64(d.NewView.Epoch)}
			for _, m := range d.NewView.Members {
				ev.Members = append(ev.Members, string(m))
			}
			x.s.log(ev)
		case core.DeliverExpelled:
			x.s.log(event{Ev: "expelled", G: uint32(x.id), View: uint64(d.NewView.ID), Epoch: uint64(d.NewView.Epoch)})
			x.mu.Lock()
			x.expelled = true
			x.mu.Unlock()
			return
		}
	}
}

func (x *grp) work(ctx context.Context) {
	payload := []byte("chaos-payload-0123456789abcdef")
	errStreak := 0
	for {
		x.mu.Lock()
		n := x.queued
		x.mu.Unlock()
		if n == 0 {
			select {
			case <-x.wake:
				continue
			case <-ctx.Done():
				return
			}
		}
		x.mu.Lock()
		seq, annot := x.tracker.Next(x.tracker.Seq())
		x.mu.Unlock()
		meta := obsolete.Msg{Sender: x.s.self, Seq: seq, Annot: annot}
		view, err := x.g.Multicast(ctx, meta, payload)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			// Transient rejection (e.g. a view change raced the send, or
			// the sequence diverged): resync the tracker from the
			// engine's committed frontier and retry the queued item.
			// Nothing is logged for the failed attempt, so the oracle
			// never sees a multicast that did not happen.
			x.mu.Lock()
			x.mcastErrs++
			if x.expelled {
				x.queued = 0
				x.mu.Unlock()
				return
			}
			x.tracker = obsolete.NewKTracker(x.s.k)
			x.tracker.Skip(x.g.Stats().LastSent)
			x.mu.Unlock()
			errStreak++
			if errStreak >= 100 {
				// Permanently failing group (left, stopped): drop the
				// queue so /stats does not report a stuck sender forever.
				x.mu.Lock()
				x.queued = 0
				x.mu.Unlock()
				return
			}
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return
			}
			continue
		}
		errStreak = 0
		// Logged after the engine committed it: a crash in between makes
		// the oracle synthesize the record from the deliveries (the kill
		// window is the only place a delivered message can lack one).
		x.s.log(event{
			Ev: "mcast", G: uint32(x.id), View: uint64(view.ID), Epoch: uint64(view.Epoch),
			Sender: string(x.s.self), Seq: uint64(seq),
			Annot: base64.StdEncoding.EncodeToString(annot),
		})
		x.mu.Lock()
		x.sent++
		x.queued--
		x.mu.Unlock()
	}
}
