// svs-check exhaustively verifies obsolescence relations against a finite
// model: the strict-partial-order laws of §3.2, purge/deliver confluence
// (indexed purge ≡ linear-scan reference over every interleaving, purges
// covered by deliveries), and the soundness of SenderLocal/Windowed
// capability declarations. See internal/relcheck and the "Verifying your
// relation" section of the README.
//
// Usage:
//
//	svs-check model.yaml [model2.yaml ...]   verify YAML model specs
//	svs-check -builtin all                   verify every built-in encoding
//	svs-check -builtin k-enumeration -k 8    one encoding, custom domain
//
// Exit status: 0 when every model is sound, 1 when any check fails (a
// minimal counterexample witness is printed), 2 on usage or parse errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/relcheck"
)

func main() {
	var (
		builtin = flag.String("builtin", "", "verify a built-in encoding (empty, tagging, enumeration, k-enumeration, or all)")
		senders = flag.Int("senders", 0, "domain: number of senders (default 2)")
		depth   = flag.Int("depth", 0, "domain: messages per sender (default 6)")
		tags    = flag.Int("tags", 0, "domain: distinct item tags (default 2)")
		k       = flag.Int("k", 0, "encoding parameter: k-enumeration k / enumeration window (default 4)")
		maxInt  = flag.Int("max-interleavings", 0, "confluence enumeration bound (default 2000)")
		quiet   = flag.Bool("q", false, "print only failing checks and verdicts")
	)
	flag.Parse()

	if *builtin == "" && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "svs-check: nothing to verify; pass model YAML files or -builtin (see -h)")
		os.Exit(2)
	}

	var models []*relcheck.Model
	domain := relcheck.Domain{Senders: *senders, Depth: *depth, Tags: *tags, K: *k}
	names := []string{}
	if *builtin == "all" {
		names = relcheck.BuiltinNames()
	} else if *builtin != "" {
		names = append(names, *builtin)
	}
	for _, name := range names {
		m, err := relcheck.Builtin(name, domain)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svs-check: %v\n", err)
			os.Exit(2)
		}
		models = append(models, m)
	}
	for _, path := range flag.Args() {
		m, err := relcheck.ParseYAMLFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svs-check: %v\n", err)
			os.Exit(2)
		}
		models = append(models, m)
	}

	unsound := 0
	for i, m := range models {
		if m.MaxInterleavings == 0 {
			m.MaxInterleavings = *maxInt
		}
		if i > 0 && !*quiet {
			fmt.Println()
		}
		report := relcheck.Run(m)
		report.Format(os.Stdout, *quiet)
		if !report.OK() {
			unsound++
		}
	}
	if unsound > 0 {
		os.Exit(1)
	}
}
