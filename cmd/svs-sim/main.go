// Command svs-sim regenerates the throughput figures of the paper's
// evaluation (§5.4): Fig. 4a (producer idle vs consumer rate), Fig. 4b
// (buffer occupancy vs consumer rate), Fig. 5a (tolerable consumer-rate
// threshold vs buffer size) and Fig. 5b (tolerated perturbation length vs
// buffer size), each for the reliable (VS) and semantic (SVS) protocols.
//
// Usage:
//
//	svs-sim -fig all
//	svs-sim -fig 4a -buffer 15
//	svs-sim -fig 5a -maxidle 5
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 4a, 4b, 5a, 5b or all")
		buffer  = flag.Int("buffer", 15, "buffer size for the rate sweeps (Fig. 4)")
		rounds  = flag.Int("rounds", 0, "trace length in rounds (0 = paper's 11696)")
		seed    = flag.Int64("seed", 0, "trace seed (0 = paper calibration seed)")
		samples = flag.Int("samples", 10, "perturbation halt samples per point (Fig. 5b)")
		maxIdle = flag.Float64("maxidle", 5, "producer idle threshold in percent (Fig. 5a)")
	)
	flag.Parse()

	p := trace.DefaultParams()
	if *rounds > 0 {
		p.Rounds = *rounds
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	tr := trace.Generate(p)
	fmt.Printf("# trace: %d rounds, %d messages, %.1f msg/s average\n",
		tr.Rounds, len(tr.Events), tr.MeanRate())

	switch *fig {
	case "4a":
		fig4a(tr, *buffer)
	case "4b":
		fig4b(tr, *buffer)
	case "5a":
		fig5a(tr, *maxIdle)
	case "5b":
		fig5b(tr, *samples)
	case "all":
		fig4a(tr, *buffer)
		fig4b(tr, *buffer)
		fig5a(tr, *maxIdle)
		fig5b(tr, *samples)
	default:
		fmt.Fprintf(os.Stderr, "svs-sim: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func rateGrid() []float64 {
	var rates []float64
	for r := 10.0; r <= 150; r += 5 {
		rates = append(rates, r)
	}
	return rates
}

func bufferGrid() []int {
	var bs []int
	for b := 4; b <= 28; b += 2 {
		bs = append(bs, b)
	}
	return bs
}

func fig4a(tr *trace.Trace, buffer int) {
	fmt.Printf("\n== Fig. 4a: producer idle (%%) vs consumer rate (msg/s), buffer %d\n", buffer)
	fmt.Printf("%-12s %-12s %-12s\n", "rate", "reliable", "semantic")
	rates := rateGrid()
	rel := sim.ProducerIdleSweep(tr, sim.Reliable, buffer, rates)
	sem := sim.ProducerIdleSweep(tr, sim.Semantic, buffer, rates)
	for i := range rates {
		fmt.Printf("%-12.1f %-12.2f %-12.2f\n", rates[i], rel.Points[i].Y, sem.Points[i].Y)
	}
}

func fig4b(tr *trace.Trace, buffer int) {
	fmt.Printf("\n== Fig. 4b: buffer occupancy (msg, time-averaged) vs consumer rate, buffer %d\n", buffer)
	fmt.Printf("%-12s %-12s %-12s\n", "rate", "reliable", "semantic")
	rates := rateGrid()
	rel := sim.OccupancySweep(tr, sim.Reliable, buffer, rates)
	sem := sim.OccupancySweep(tr, sim.Semantic, buffer, rates)
	for i := range rates {
		fmt.Printf("%-12.1f %-12.2f %-12.2f\n", rates[i], rel.Points[i].Y, sem.Points[i].Y)
	}
}

func fig5a(tr *trace.Trace, maxIdle float64) {
	fmt.Printf("\n== Fig. 5a: threshold consumer rate (msg/s, ≤%.0f%% producer idle) vs buffer size\n", maxIdle)
	fmt.Printf("# average input rate: %.1f msg/s (the figure's horizontal line)\n", tr.MeanRate())
	fmt.Printf("%-12s %-12s %-12s\n", "buffer", "reliable", "semantic")
	for _, b := range bufferGrid() {
		rel := sim.Threshold(tr, sim.Reliable, b, maxIdle)
		sem := sim.Threshold(tr, sim.Semantic, b, maxIdle)
		fmt.Printf("%-12d %-12.1f %-12.1f\n", b, rel, sem)
	}
}

func fig5b(tr *trace.Trace, samples int) {
	fmt.Printf("\n== Fig. 5b: tolerated perturbation (ms) vs buffer size (%d halt samples)\n", samples)
	fmt.Printf("%-12s %-12s %-12s\n", "buffer", "reliable", "semantic")
	for _, b := range bufferGrid() {
		rel := sim.Perturbation(tr, sim.Reliable, b, samples)
		sem := sim.Perturbation(tr, sim.Semantic, b, samples)
		fmt.Printf("%-12d %-12.0f %-12.0f\n", b, ms(rel), ms(sem))
	}
}

func ms(s float64) float64 {
	if math.IsInf(s, 1) {
		return math.Inf(1)
	}
	return s * 1000
}
