// Command svs-trace generates and characterises game-session traces the
// way §5.2 of the paper does: the summary statistics table, Fig. 3a (item
// modification frequency by rank) and Fig. 3b (distance to the closest
// related message).
//
// Usage:
//
//	svs-trace -summary
//	svs-trace -fig 3a
//	svs-trace -fig 3b
//	svs-trace -o session.trace          # write the synthetic trace
//	svs-trace -i session.trace -summary # characterise a recorded trace
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		summary = flag.Bool("summary", false, "print the §5.2 summary statistics")
		fig     = flag.String("fig", "", "figure to regenerate: 3a or 3b")
		rounds  = flag.Int("rounds", 0, "trace length in rounds (0 = paper's 11696)")
		seed    = flag.Int64("seed", 0, "trace seed (0 = paper calibration seed)")
		players = flag.Int("players", 0, "scale the workload as if more players joined (≥5 intensifies traffic)")
		out     = flag.String("o", "", "write the trace to this file")
		in      = flag.String("i", "", "read a trace from this file instead of generating")
	)
	flag.Parse()

	tr, err := loadOrGenerate(*in, *rounds, *seed, *players)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svs-trace: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svs-trace: %v\n", err)
			os.Exit(1)
		}
		if _, err := tr.WriteTo(f); err != nil {
			fmt.Fprintf(os.Stderr, "svs-trace: write: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "svs-trace: close: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d events to %s\n", len(tr.Events), *out)
	}

	if !*summary && *fig == "" && *out == "" {
		*summary = true // default action
	}

	st := trace.Characterize(tr)
	if *summary {
		fmt.Println("== §5.2 summary (paper reference values in parentheses)")
		fmt.Print(st.Summary())
	}
	switch *fig {
	case "":
	case "3a":
		fmt.Println("\n== Fig. 3a: frequency of item modifications (% of rounds) by item rank")
		fmt.Printf("%-8s %s\n", "rank", "% of rounds")
		for i, f := range st.RankFreq {
			fmt.Printf("%-8d %.2f\n", i+1, f)
		}
	case "3b":
		fmt.Println("\n== Fig. 3b: distance to closest related message (% of messages)")
		fmt.Printf("%-10s %s\n", "distance", "% of messages")
		for d, pct := range st.DistanceHist {
			fmt.Printf("%-10d %.2f\n", d+1, pct)
		}
		fmt.Printf("%-10s %.2f\n", ">20", st.DistanceOverflow)
		fmt.Printf("%-10s %.2f   (paper: 41.88)\n", "never", 100*st.NeverObsoleteShare)
	default:
		fmt.Fprintf(os.Stderr, "svs-trace: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func loadOrGenerate(in string, rounds int, seed int64, players int) (*trace.Trace, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	}
	p := trace.DefaultParams()
	if rounds > 0 {
		p.Rounds = rounds
	}
	if seed != 0 {
		p.Seed = seed
	}
	if players > 0 {
		p = trace.ScalePlayers(p, players)
	}
	return trace.Generate(p), nil
}
