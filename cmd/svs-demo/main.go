// Command svs-demo runs a live SVS group (real protocol engines over the
// in-memory transport, with heartbeat failure detection) under the
// calibrated game workload, with one deliberately slow member. It prints
// per-member statistics, then triggers a view change and reports the
// flush size — showing on a running system what the simulation figures
// quantify.
//
// Usage:
//
//	svs-demo -members 4 -mode svs -seconds 5 -slowdelay 20ms
//	svs-demo -mode vs -seconds 5       # same run under classic VS
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		members   = flag.Int("members", 4, "group size")
		mode      = flag.String("mode", "svs", "protocol: svs (semantic) or vs (reliable)")
		seconds   = flag.Float64("seconds", 5, "production duration")
		slowDelay = flag.Duration("slowdelay", 20*time.Millisecond, "per-delivery slowness of the slow member")
		buffer    = flag.Int("buffer", 16, "delivery/outgoing buffer size")
	)
	flag.Parse()
	if err := run(*members, *mode, *seconds, *slowDelay, *buffer); err != nil {
		fmt.Fprintf(os.Stderr, "svs-demo: %v\n", err)
		os.Exit(1)
	}
}

func run(members int, mode string, seconds float64, slowDelay time.Duration, buffer int) error {
	k := 2 * buffer
	var rel obsolete.Relation
	switch mode {
	case "svs":
		rel = obsolete.KEnumeration{K: k}
	case "vs":
		rel = obsolete.Empty{}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	net := transport.NewMemNetwork()
	var pids []ident.PID
	for i := 0; i < members; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	group := ident.NewPIDs(pids...)
	view := core.View{ID: 1, Members: group}

	type member struct {
		pid       ident.PID
		eng       *core.Engine
		det       *fd.Heartbeat
		delivered int
		installed core.View
	}
	ms := make([]*member, 0, members)
	var mu sync.Mutex

	for _, p := range group {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		det := fd.NewHeartbeat(ep, group, fd.HeartbeatOptions{Interval: 20 * time.Millisecond})
		eng, err := core.New(core.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			Relation: rel, ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
			StabilityInterval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		det.Start()
		if err := eng.Start(); err != nil {
			return err
		}
		ms = append(ms, &member{pid: p, eng: eng, det: det, installed: view})
	}
	defer func() {
		for _, m := range ms {
			m.eng.Stop()
			m.det.Stop()
		}
	}()

	// Delivery loops: the last member is the slow one.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range ms {
		slow := i == len(ms)-1
		wg.Add(1)
		go func(m *member, slow bool) {
			defer wg.Done()
			for {
				d, err := m.eng.Deliver(ctx)
				if err != nil {
					return
				}
				switch d.Kind {
				case core.DeliverData:
					mu.Lock()
					m.delivered++
					mu.Unlock()
					if slow && slowDelay > 0 {
						select {
						case <-time.After(slowDelay):
						case <-ctx.Done():
							return
						}
					}
				case core.DeliverView, core.DeliverExpelled:
					mu.Lock()
					m.installed = d.NewView
					mu.Unlock()
				}
			}
		}(m, slow)
	}

	// Producer: p0 replays the calibrated trace in real time (scaled to
	// the requested duration).
	p := trace.DefaultParams()
	p.Rounds = int(seconds * p.RoundsPerSec)
	tr := trace.Generate(p)
	msgs := tr.Annotate(ms[0].pid, k)
	fmt.Printf("mode=%s members=%d buffer=%d k=%d: producing %d messages over %.1fs (slow member: +%v per delivery)\n",
		mode, members, buffer, k, len(msgs), seconds, slowDelay)

	start := time.Now()
	produced := 0
	for _, m := range msgs {
		wait := time.Duration(m.Time*float64(time.Second)) - time.Since(start)
		if wait > 0 {
			time.Sleep(wait)
		}
		if _, err := ms[0].eng.Multicast(ctx, m.Meta, nil); err != nil {
			return fmt.Errorf("multicast: %w", err)
		}
		produced++
	}
	wall := time.Since(start)
	fmt.Printf("produced %d messages in %v (ideal %.1fs) — extra time is flow-control blocking\n",
		produced, wall.Round(time.Millisecond), seconds)

	// Let the group settle briefly, then change the view.
	time.Sleep(200 * time.Millisecond)
	if err := ms[0].eng.RequestViewChange(); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ms[0].eng.Stats()
		if st.View >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Printf("\n%-6s %-10s %-10s %-12s %-12s %-10s %-10s\n",
		"member", "delivered", "purged", "purged-out", "flush-added", "view", "role")
	for i, m := range ms {
		st := m.eng.Stats()
		role := "fast"
		if i == 0 {
			role = "producer"
		}
		if i == len(ms)-1 {
			role = "slow"
		}
		mu.Lock()
		delivered := m.delivered
		mu.Unlock()
		fmt.Printf("%-6s %-10d %-10d %-12d %-12d %-10d %-10s\n",
			m.pid, delivered, st.PurgedToDeliver, st.PurgedOutgoing, st.FlushAdded, st.View, role)
	}
	st := ms[0].eng.Stats()
	fmt.Printf("\nview change flush set: %d messages; stability pruned %d history entries\n",
		st.LastFlushLen, st.StablePruned)
	fmt.Println("(purging + stability keep buffers small ⇒ cheap view changes, §5.4)")
	cancel()
	wg.Wait()
	return nil
}
