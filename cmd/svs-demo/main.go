// Command svs-demo runs a live multi-group SVS node cluster (real
// protocol engines over the in-memory transport, one shared endpoint and
// one heartbeat failure detector per node) under the calibrated game
// workload, with one deliberately slow member. Every member hosts all
// -groups group instances on its single endpoint — the sharded deployment
// shape core.Node provides. It prints per-member statistics aggregated
// over the groups, then triggers a view change in group 1 and reports the
// flush size — showing on a running system what the simulation figures
// quantify, and that the other groups' views never move.
//
// Usage:
//
//	svs-demo -members 4 -groups 4 -mode svs -seconds 5 -slowdelay 20ms
//	svs-demo -mode vs -seconds 5       # same run under classic VS
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	gonet "net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/trace"
	"repro/internal/transport"
)

func main() {
	var (
		members   = flag.Int("members", 4, "group size")
		groups    = flag.Int("groups", 1, "independent SVS groups hosted per node")
		mode      = flag.String("mode", "svs", "protocol: svs (semantic) or vs (reliable)")
		seconds   = flag.Float64("seconds", 5, "production duration")
		slowDelay = flag.Duration("slowdelay", 20*time.Millisecond, "per-delivery slowness of the slow member")
		buffer    = flag.Int("buffer", 16, "delivery/outgoing buffer size")
		join      = flag.Bool("join", false, "after the run, a new node joins group 1 with a semantic state transfer")
		metrics   = flag.String("metrics", "", "serve metrics over HTTP on this address (JSON /metrics, expvar /debug/vars, pprof /debug/pprof)")
		linger    = flag.Duration("linger", 0, "keep the cluster (and the metrics endpoint) alive this long after the run")
		events    = flag.Bool("events", false, "log structured protocol events to stderr")
	)
	flag.Parse()
	if err := run(*members, *groups, *mode, *seconds, *slowDelay, *buffer, *join, *metrics, *linger, *events); err != nil {
		fmt.Fprintf(os.Stderr, "svs-demo: %v\n", err)
		os.Exit(1)
	}
}

func run(members, groups int, mode string, seconds float64, slowDelay time.Duration, buffer int, join bool,
	metricsAddr string, linger time.Duration, events bool) error {
	if groups < 1 {
		return fmt.Errorf("need at least one group")
	}
	k := 2 * buffer
	var rel obsolete.Relation
	switch mode {
	case "svs":
		rel = obsolete.KEnumeration{K: k}
	case "vs":
		rel = obsolete.Empty{}
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	net := transport.NewMemNetwork()
	var pids []ident.PID
	for i := 0; i < members; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	all := ident.NewPIDs(pids...)
	view := core.View{ID: 1, Members: all}

	// One Node per member: shared endpoint, one heartbeat detector, all
	// groups on top.
	type member struct {
		pid       ident.PID
		node      *core.Node
		reg       *obs.Registry
		groups    map[ident.GroupID]*core.Group
		delivered int
	}
	ms := make([]*member, 0, members)
	var mu sync.Mutex

	var logger *slog.Logger
	if events {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	for _, p := range all {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		// One registry per member: engine metrics carry only a group
		// label, so in-process nodes must not share instruments.
		reg := obs.NewRegistry()
		nodeLog := logger
		if nodeLog != nil {
			nodeLog = nodeLog.With(slog.String("node", string(p)))
		}
		node, err := core.NewNode(core.NodeConfig{
			Self:      p,
			Endpoint:  ep,
			Heartbeat: fd.HeartbeatOptions{Interval: 20 * time.Millisecond},
			Obs:       obs.New(nil, reg, nodeLog),
		})
		if err != nil {
			return err
		}
		ms = append(ms, &member{
			pid:    p,
			node:   node,
			reg:    reg,
			groups: make(map[ident.GroupID]*core.Group, groups),
		})
	}
	defer func() {
		for _, m := range ms {
			m.node.Close()
		}
	}()

	// snapshotAll is the exported shape: one obs.Snapshot per member pid.
	snapshotAll := func() map[string]obs.Snapshot {
		out := make(map[string]obs.Snapshot, len(ms))
		for _, m := range ms {
			out[string(m.pid)] = m.node.Metrics()
		}
		return out
	}
	if metricsAddr != "" {
		ln, err := gonet.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		expvar.Publish("svs", expvar.Func(func() any { return snapshotAll() }))
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(snapshotAll())
		})
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (expvar /debug/vars, pprof /debug/pprof/)\n", ln.Addr())
	}

	for gid := ident.GroupID(1); gid <= ident.GroupID(groups); gid++ {
		for _, m := range ms {
			g, err := m.node.Create(gid, core.GroupConfig{
				InitialView: view, Relation: rel,
				ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
				StabilityInterval: 50 * time.Millisecond,
			})
			if err != nil {
				return err
			}
			m.groups[gid] = g
		}
	}

	// Delivery loops per (member, group): the last member is slow in
	// every group it hosts.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range ms {
		slow := i == len(ms)-1
		for _, g := range m.groups {
			wg.Add(1)
			go func(m *member, g *core.Group, slow bool) {
				defer wg.Done()
				for {
					d, err := g.Deliver(ctx)
					if err != nil {
						return
					}
					if d.Kind != core.DeliverData {
						continue // view installs are reported via Stats
					}
					mu.Lock()
					m.delivered++
					mu.Unlock()
					if slow && slowDelay > 0 {
						select {
						case <-time.After(slowDelay):
						case <-ctx.Done():
							return
						}
					}
				}
			}(m, g, slow)
		}
	}

	// Producers: p0 replays the calibrated trace in real time (scaled to
	// the requested duration) into every group concurrently.
	p := trace.DefaultParams()
	p.Rounds = int(seconds * p.RoundsPerSec)
	tr := trace.Generate(p)
	msgs := tr.Annotate(ms[0].pid, k)
	fmt.Printf("mode=%s members=%d groups=%d buffer=%d k=%d: producing %d messages/group over %.1fs (slow member: +%v per delivery)\n",
		mode, members, groups, buffer, k, len(msgs), seconds, slowDelay)

	start := time.Now()
	var prodWG sync.WaitGroup
	errC := make(chan error, groups)
	produced := 0
	for gid := ident.GroupID(1); gid <= ident.GroupID(groups); gid++ {
		prodWG.Add(1)
		go func(g *core.Group) {
			defer prodWG.Done()
			for _, m := range msgs {
				wait := time.Duration(m.Time*float64(time.Second)) - time.Since(start)
				if wait > 0 {
					time.Sleep(wait)
				}
				if _, err := g.Multicast(ctx, m.Meta, nil); err != nil {
					errC <- fmt.Errorf("group %d multicast: %w", g.ID(), err)
					return
				}
				mu.Lock()
				produced++
				mu.Unlock()
			}
		}(ms[0].groups[gid])
	}
	prodWG.Wait()
	select {
	case err := <-errC:
		return err
	default:
	}
	wall := time.Since(start)
	mu.Lock()
	total := produced
	mu.Unlock()
	fmt.Printf("produced %d messages (%d groups × %d) in %v (ideal %.1fs) — %.0f msgs/s aggregate; extra time is flow-control blocking\n",
		total, groups, len(msgs), wall.Round(time.Millisecond), seconds, float64(total)/wall.Seconds())

	// Let the cluster settle briefly, then change the view in group 1
	// only: the other groups' views must not move.
	time.Sleep(200 * time.Millisecond)
	if err := ms[0].groups[1].RequestViewChange(); err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ms[0].groups[1].Stats()
		if st.View >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Printf("\n%-6s %-10s %-10s %-12s %-12s %-10s %-10s\n",
		"member", "delivered", "purged", "purged-out", "flush-added", "views", "role")
	for i, m := range ms {
		var purged, purgedOut, flushAdded uint64
		viewSum := ident.ViewID(0)
		for _, g := range m.groups {
			st := g.Stats()
			purged += st.PurgedToDeliver
			purgedOut += st.PurgedOutgoing
			flushAdded += st.FlushAdded
			viewSum += st.View
		}
		role := "fast"
		if i == 0 {
			role = "producer"
		}
		if i == len(ms)-1 {
			role = "slow"
		}
		mu.Lock()
		delivered := m.delivered
		mu.Unlock()
		fmt.Printf("%-6s %-10d %-10d %-12d %-12d %-10d %-10s\n",
			m.pid, delivered, purged, purgedOut, flushAdded, viewSum, role)
	}
	st := ms[0].groups[1].Stats()
	fmt.Printf("\ngroup 1 view change flush set: %d messages; stability pruned %d history entries\n",
		st.LastFlushLen, st.StablePruned)
	for gid := ident.GroupID(2); gid <= ident.GroupID(groups); gid++ {
		if v := ms[0].groups[gid].Stats().View; v != 1 {
			return fmt.Errorf("group %d view moved to %d on group 1's view change", gid, v)
		}
	}
	if groups > 1 {
		fmt.Printf("groups 2..%d stayed at view 1: group lifecycles are independent\n", groups)
	}
	fmt.Println("(purging + stability keep buffers small ⇒ cheap view changes, §5.4)")

	// Dynamic membership: a brand-new node joins group 1 while it runs,
	// receiving only the non-obsolete backlog as its state transfer.
	if join {
		if err := joinDemo(ctx, net, ms[0].pid, view.Members, rel, buffer, ms[0].groups[1], &wg); err != nil {
			return err
		}
	}

	// One-line machine-greppable summary over the whole cluster, computed
	// from the obs registries the -metrics endpoint serves.
	var sumDelivered, sumPurged, sumViews uint64
	for _, m := range ms {
		snap := m.node.Metrics()
		sumDelivered += snap.Sum("engine_delivered_total")
		sumViews += snap.Sum("engine_views_installed_total")
		for _, g := range m.groups {
			sumPurged += g.Stats().PurgedToDeliver
		}
	}
	purgePct := 0.0
	if sumDelivered+sumPurged > 0 {
		purgePct = 100 * float64(sumPurged) / float64(sumDelivered+sumPurged)
	}
	fmt.Printf("summary: delivered=%d purged=%d purge=%.1f%% views=%d\n",
		sumDelivered, sumPurged, purgePct, sumViews)

	if linger > 0 {
		fmt.Printf("lingering %v (metrics stay scrapeable; ctrl-c to stop early)\n", linger)
		time.Sleep(linger)
	}
	cancel()
	wg.Wait()
	return nil
}

// joinDemo adds a fresh node to group 1 via a semantic state transfer and
// proves it is live: it must install the incumbents' view and deliver a
// multicast sent after it joined.
func joinDemo(ctx context.Context, net *transport.MemNetwork, contact ident.PID,
	founders ident.PIDs, rel obsolete.Relation, buffer int, producer *core.Group, wg *sync.WaitGroup) error {
	ep, err := net.Endpoint("joiner")
	if err != nil {
		return err
	}
	jn, err := core.NewNode(core.NodeConfig{
		Self:      "joiner",
		Endpoint:  ep,
		Heartbeat: fd.HeartbeatOptions{Interval: 20 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer jn.Close()

	jg, err := jn.Join(1, core.GroupConfig{
		Relation:     rel,
		ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
	}, contact)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	var joined core.View
	backlog := 0
	gotAfter := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			d, err := jg.Deliver(ctx)
			if err != nil {
				return
			}
			mu.Lock()
			switch d.Kind {
			case core.DeliverData:
				if joined.ID == 0 {
					backlog++ // state-transfer backlog precedes the view
				} else if string(d.Payload) == "post-join" {
					close(gotAfter)
				}
			case core.DeliverView:
				joined = d.NewView
			}
			mu.Unlock()
		}
	}()

	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		v := joined
		mu.Unlock()
		if v.ID != 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("joiner never installed a view")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	v, bl := joined, backlog
	mu.Unlock()
	if !v.Members.Equal(founders.Add("joiner")) {
		return fmt.Errorf("joined view %v does not contain the founders plus the joiner", v)
	}
	st := jg.Stats()
	fmt.Printf("\njoiner entered view %d (%d members); state transfer: %d messages, %d bytes (relation-purged backlog)\n",
		v.ID, len(v.Members), st.JoinBacklogRecv, st.JoinBytesRecv)
	if uint64(bl) != st.JoinBacklogRecv {
		return fmt.Errorf("joiner delivered %d backlog messages, state transfer carried %d", bl, st.JoinBacklogRecv)
	}

	// Prove liveness: a multicast sent after the join reaches the joiner.
	pst := producer.Stats()
	meta := obsolete.Msg{Sender: contact, Seq: ident.Seq(pst.Multicast + 1)}
	mctx, mcancel := context.WithTimeout(ctx, 10*time.Second)
	defer mcancel()
	if _, err := producer.Multicast(mctx, meta, []byte("post-join")); err != nil {
		return fmt.Errorf("post-join multicast: %w", err)
	}
	select {
	case <-gotAfter:
		fmt.Println("joiner delivered a post-join multicast: the group is live with the newcomer")
	case <-time.After(15 * time.Second):
		return fmt.Errorf("joiner never delivered the post-join multicast")
	}
	return nil
}
