// Package repro_test is the benchmark harness regenerating every table and
// figure of the paper's evaluation (§5), plus micro-benchmarks of the
// mechanisms (purging, k-enumeration, consensus, view changes) and
// ablations of the design choices called out in DESIGN.md.
//
// Figure benchmarks report their headline numbers as custom metrics, e.g.
//
//	BenchmarkFig5aThreshold  ... reliable-msgs/s 57.7  semantic-msgs/s 28.4
//
// and cmd/svs-sim and cmd/svs-trace print the full series. EXPERIMENTS.md
// records paper-vs-measured for each.
package repro_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// benchTrace is the short calibrated session used by the sweep benchmarks;
// the full 11696-round session is used by the trace-statistics benchmarks.
func benchTrace(rounds int) *trace.Trace {
	p := trace.DefaultParams()
	if rounds > 0 {
		p.Rounds = rounds
	}
	return trace.Generate(p)
}

// ---- Fig. 3: workload characterisation --------------------------------------

func BenchmarkFig3aItemModificationFrequency(b *testing.B) {
	tr := benchTrace(0) // full paper-length session
	var st trace.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = trace.Characterize(tr)
	}
	b.ReportMetric(st.RankFreq[0], "top-rank-%rounds")   // paper: ~22
	b.ReportMetric(st.MeanModifiedPerRound, "mod/round") // paper: 1.39
	b.ReportMetric(st.MeanActiveItems, "active-items")   // paper: 42.33
}

func BenchmarkFig3bObsolescenceDistance(b *testing.B) {
	tr := benchTrace(0)
	var st trace.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = trace.Characterize(tr)
	}
	within10 := 0.0
	for d := 0; d < 10; d++ {
		within10 += st.DistanceHist[d]
	}
	b.ReportMetric(within10, "within10-%msgs")
	b.ReportMetric(100*st.NeverObsoleteShare, "never-obsolete-%") // paper: 41.88
}

// ---- Fig. 4: rate sweeps -----------------------------------------------------

func BenchmarkFig4aProducerIdle(b *testing.B) {
	tr := benchTrace(3000)
	rates := []float64{30, 50, 73}
	var rel, sem sim.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel = sim.ProducerIdleSweep(tr, sim.Reliable, 15, rates)
		sem = sim.ProducerIdleSweep(tr, sim.Semantic, 15, rates)
	}
	b.ReportMetric(rel.Points[0].Y, "rel-idle%@30")
	b.ReportMetric(sem.Points[0].Y, "sem-idle%@30")
	b.ReportMetric(rel.Points[2].Y, "rel-idle%@73") // paper: ≤5% at 73
	b.ReportMetric(sem.Points[2].Y, "sem-idle%@73")
}

func BenchmarkFig4bBufferOccupancy(b *testing.B) {
	tr := benchTrace(3000)
	rates := []float64{30, 50, 73}
	var rel, sem sim.Series
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel = sim.OccupancySweep(tr, sim.Reliable, 15, rates)
		sem = sim.OccupancySweep(tr, sim.Semantic, 15, rates)
	}
	b.ReportMetric(rel.Points[1].Y, "rel-occ@50")
	b.ReportMetric(sem.Points[1].Y, "sem-occ@50")
}

// ---- Fig. 5: buffer sweeps ---------------------------------------------------

func BenchmarkFig5aThreshold(b *testing.B) {
	tr := benchTrace(3000)
	var rel, sem float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel = sim.Threshold(tr, sim.Reliable, 15, 5)
		sem = sim.Threshold(tr, sim.Semantic, 15, 5)
	}
	b.ReportMetric(rel, "reliable-msgs/s") // paper: 73 at buffer 15
	b.ReportMetric(sem, "semantic-msgs/s") // paper: 28 at buffer 15
}

func BenchmarkFig5bPerturbation(b *testing.B) {
	tr := benchTrace(3000)
	var rel, sem float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel = sim.Perturbation(tr, sim.Reliable, 24, 8)
		sem = sim.Perturbation(tr, sim.Semantic, 24, 8)
	}
	b.ReportMetric(rel*1000, "reliable-ms") // paper: 342 ms at buffer 24
	b.ReportMetric(sem*1000, "semantic-ms") // paper: 857 ms at buffer 24
}

// ---- ablations ---------------------------------------------------------------

// BenchmarkAblationKWindow quantifies the sensitivity of the semantic
// threshold to the k-enumeration window (the paper fixes k = 2×buffer).
func BenchmarkAblationKWindow(b *testing.B) {
	tr := benchTrace(3000)
	const buffer = 15
	for _, mult := range []int{1, 2, 4} {
		mult := mult
		b.Run(fmt.Sprintf("k=%dxBuffer", mult), func(b *testing.B) {
			msgs := tr.Annotate("producer", mult*buffer)
			var th float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo, hi := 0.5, 400.0
				for hi-lo > 0.5 {
					mid := (lo + hi) / 2
					res := sim.Run(sim.Config{
						Mode: sim.Semantic, Buffer: buffer, K: mult * buffer,
						Msgs: msgs, ConsumerRate: mid,
					})
					if res.ProducerIdlePct <= 5 {
						hi = mid
					} else {
						lo = mid
					}
				}
				th = hi
			}
			b.ReportMetric(th, "threshold-msgs/s")
		})
	}
}

// BenchmarkAblationPurgeSweep compares the O(n) arrival-time purge against
// the full pairwise sweep of Figure 1's purge function.
func BenchmarkAblationPurgeSweep(b *testing.B) {
	const k = 32
	rel := obsolete.KEnumeration{K: k}
	mkItems := func() []queue.Item {
		tr := obsolete.NewItemTracker(obsolete.NewKTracker(k))
		items := make([]queue.Item, 0, 64)
		for i := 0; i < 64; i++ {
			seq, annot := tr.Update(uint32(i % 8))
			items = append(items, queue.Item{
				Kind: queue.Data, View: 1,
				Meta: obsolete.Msg{Sender: "p", Seq: seq, Annot: annot},
			})
		}
		return items
	}
	items := mkItems()

	b.Run("arrival", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queue.New(rel, 0)
			for _, it := range items {
				_, _ = q.AppendPurge(it)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queue.New(rel, 0)
			for _, it := range items {
				_ = q.Append(it)
			}
			q.Purge()
		}
	})
}

// ---- micro-benchmarks --------------------------------------------------------

func BenchmarkKEnumTrackerNext(b *testing.B) {
	tr := obsolete.NewKTracker(64)
	var prev ident.Seq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if prev == 0 {
			prev, _ = tr.Next()
			continue
		}
		prev, _ = tr.Next(prev)
	}
}

func BenchmarkKEnumObsoletes(b *testing.B) {
	const k = 64
	rel := obsolete.KEnumeration{K: k}
	tr := obsolete.NewKTracker(k)
	s1, a1 := tr.Next()
	s2, a2 := tr.Next(s1)
	old := obsolete.Msg{Sender: "p", Seq: s1, Annot: a1}
	new_ := obsolete.Msg{Sender: "p", Seq: s2, Annot: a2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !rel.Obsoletes(old, new_) {
			b.Fatal("relation broken")
		}
	}
}

// purgeBenchQueue builds a queue of n entries spread round-robin over
// senders (per-sender streams in seq order, nothing obsolete in the fill)
// and a probe message from the first sender whose annotation obsoletes its
// direct predecessor.
func purgeBenchQueue(b *testing.B, rel obsolete.Relation, n, senders, k int) (*queue.Queue, queue.Item) {
	b.Helper()
	q := queue.New(rel, 0)
	trackers := make([]*obsolete.KTracker, senders)
	for i := range trackers {
		trackers[i] = obsolete.NewKTracker(k)
	}
	for i := 0; i < n; i++ {
		s := i % senders
		seq, annot := trackers[s].Next() // no obsolescence within the fill
		q.ForceAppend(queue.Item{
			Kind: queue.Data, View: 1,
			Meta: obsolete.Msg{Sender: ident.PID(fmt.Sprintf("s%d", s)), Seq: seq, Annot: annot},
		})
	}
	last := trackers[0].Seq()
	seq, annot := trackers[0].Next(last)
	probe := queue.Item{
		Kind: queue.Data, View: 1,
		Meta: obsolete.Msg{Sender: "s0", Seq: seq, Annot: annot},
	}
	return q, probe
}

// BenchmarkQueuePurgeFor measures the arrival-time purge pair the engine
// runs per multicast and per arrival (CountPurgeableFor + PurgeFor) at
// increasing queue lengths. indexed is the per-(view, sender) index path
// the built-in encodings get; scan is the retained linear-scan reference,
// forced by stripping the SenderLocal capability through obsolete.Func.
// Flat ns/op across sizes on the indexed path (vs linear growth on scan)
// is the acceptance criterion of the buffer-index work.
func BenchmarkQueuePurgeFor(b *testing.B) {
	const k = 64
	const senders = 16
	sizes := []struct {
		name string
		n    int
	}{{"64", 64}, {"1k", 1024}, {"16k", 16384}}
	krel := obsolete.KEnumeration{K: k}
	modes := []struct {
		name string
		rel  obsolete.Relation
	}{
		{"indexed", krel},
		{"scan", obsolete.Func{Label: "scan-ref", F: krel.Obsoletes}},
	}
	for _, mode := range modes {
		for _, sz := range sizes {
			b.Run(mode.name+"/"+sz.name, func(b *testing.B) {
				q, probe := purgeBenchQueue(b, mode.rel, sz.n, senders, k)
				var scratch []queue.Item
				b.ReportAllocs()
				b.ResetTimer()
				// Each iteration does one real purge: count, remove the
				// probe's predecessor, then re-append it so the next
				// iteration purges it again (steady queue length, removal
				// and index maintenance both on the measured path).
				for i := 0; i < b.N; i++ {
					_ = q.CountPurgeableFor(probe)
					scratch = q.PurgeForInto(probe, scratch[:0])
					if len(scratch) != 1 {
						b.Fatalf("purged %d entries, want 1", len(scratch))
					}
					q.ForceAppend(scratch[0])
				}
			})
		}
	}
}

// BenchmarkQueuePopHead measures the pop cost at steady queue length
// (pop + append of a successor message). ring is the index-free path
// (Empty relation, plain VS); indexed is the path real semantic engines
// run, where each pop also drops the entry from its sender's index. Both
// must stay flat in queue length — the former slice implementation
// memmoved the whole backing array per pop, so its ns/op grew linearly.
func BenchmarkQueuePopHead(b *testing.B) {
	const senders = 16
	const k = 64
	sizes := []struct {
		name string
		n    int
	}{{"1k", 1024}, {"16k", 16384}}
	payload := make([]byte, 64)
	for _, indexed := range []bool{false, true} {
		mode := "ring"
		if indexed {
			mode = "indexed"
		}
		for _, sz := range sizes {
			b.Run(mode+"/"+sz.name, func(b *testing.B) {
				var rel obsolete.Relation = obsolete.Empty{}
				if indexed {
					rel = obsolete.KEnumeration{K: k}
				}
				q := queue.New(rel, 0)
				trackers := make(map[ident.PID]*obsolete.KTracker, senders)
				next := func(p ident.PID) queue.Item {
					tr := trackers[p]
					if tr == nil {
						tr = obsolete.NewKTracker(k)
						trackers[p] = tr
					}
					seq, annot := tr.Next() // no obsolescence: pure pop cost
					return queue.Item{
						Kind: queue.Data, View: 1,
						Meta:    obsolete.Msg{Sender: p, Seq: seq, Annot: annot},
						Payload: payload,
					}
				}
				for i := 0; i < sz.n; i++ {
					q.ForceAppend(next(ident.PID(fmt.Sprintf("s%d", i%senders))))
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					it, ok := q.PopHead()
					if !ok {
						b.Fatal("queue drained")
					}
					q.ForceAppend(next(it.Meta.Sender))
				}
			})
		}
	}
}

func BenchmarkQueueAppendPurge(b *testing.B) {
	const k = 32
	rel := obsolete.KEnumeration{K: k}
	tr := obsolete.NewItemTracker(obsolete.NewKTracker(k))
	q := queue.New(rel, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, annot := tr.Update(uint32(i % 4))
		it := queue.Item{Kind: queue.Data, View: 1, Meta: obsolete.Msg{Sender: "p", Seq: seq, Annot: annot}}
		if _, err := q.AppendPurge(it); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConsensusDecision(b *testing.B) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("p0", "p1", "p2")
	svcs := make(map[ident.PID]*consensus.Service)
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewManual()
		svc := consensus.New(ep, det, ident.NodeGroup, nil)
		svc.Start()
		svcs[p] = svc
		defer svc.Stop()
		defer det.Stop()
		defer ep.Close()
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := fmt.Sprintf("bench-%d", i)
		var wg sync.WaitGroup
		for _, p := range pids {
			wg.Add(1)
			go func(p ident.PID) {
				defer wg.Done()
				if _, err := svcs[p].Propose(ctx, id, pids, []byte(p)); err != nil {
					b.Error(err)
				}
			}(p)
		}
		wg.Wait()
	}
}

// liveGroup spins up an n-member engine group with fast consumer loops,
// returning the producer engine, its tracker, and a shutdown func.
func liveGroup(b *testing.B, rel obsolete.Relation, buffer int) (*core.Engine, func()) {
	return liveGroupObs(b, rel, buffer, nil)
}

// liveGroupObs is liveGroup with an obs bundle factory: mk is called once
// per engine (each gets a private registry so in-process members don't
// share unlabelled instruments); nil means uninstrumented.
func liveGroupObs(b *testing.B, rel obsolete.Relation, buffer int, mk func() *obs.Obs) (*core.Engine, func()) {
	b.Helper()
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("p0", "p1", "p2")
	view := core.View{ID: 1, Members: pids}
	ctx, cancel := context.WithCancel(context.Background())
	var engines []*core.Engine
	var dets []*fd.Manual
	var wg sync.WaitGroup
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewManual()
		var ob *obs.Obs
		if mk != nil {
			ob = mk()
		}
		eng, err := core.New(core.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			Relation: rel, ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
			Obs: ob,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		engines = append(engines, eng)
		dets = append(dets, det)
		wg.Add(1)
		go func(eng *core.Engine) {
			defer wg.Done()
			for {
				if _, err := eng.Deliver(ctx); err != nil {
					return
				}
			}
		}(eng)
	}
	stop := func() {
		cancel()
		for _, e := range engines {
			e.Stop()
		}
		wg.Wait()
		for _, d := range dets {
			d.Stop()
		}
	}
	return engines[0], stop
}

func BenchmarkEngineMulticastSemantic(b *testing.B) {
	producer, stop := liveGroup(b, obsolete.KEnumeration{K: 64}, 32)
	defer stop()
	tr := obsolete.NewItemTracker(obsolete.NewKTracker(64))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq, annot := tr.Update(uint32(i % 8))
		meta := obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot}
		if _, err := producer.Multicast(ctx, meta, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticastInstrumented measures the cost of the metrics/events
// instrumentation on the multicast hot path. "on" gives every engine a
// live private registry (obs.Default()), "off" the nil instruments of
// obs.Nop() — so on/off isolates exactly the atomics and timestamping the
// observability layer adds. The acceptance bar is "on" within 5% of "off".
func BenchmarkMulticastInstrumented(b *testing.B) {
	for _, v := range []struct {
		name string
		mk   func() *obs.Obs
	}{
		{"on", obs.Default},
		{"off", obs.Nop},
	} {
		b.Run(v.name, func(b *testing.B) {
			producer, stop := liveGroupObs(b, obsolete.KEnumeration{K: 64}, 32, v.mk)
			defer stop()
			tr := obsolete.NewItemTracker(obsolete.NewKTracker(64))
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq, annot := tr.Update(uint32(i % 8))
				meta := obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot}
				if _, err := producer.Multicast(ctx, meta, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEngineMulticastReliable(b *testing.B) {
	producer, stop := liveGroup(b, obsolete.Empty{}, 32)
	defer stop()
	var seq ident.Seq
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		meta := obsolete.Msg{Sender: "p0", Seq: seq}
		if _, err := producer.Multicast(ctx, meta, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// multiGroupEndpoints attaches one endpoint per member, either to a
// shared MemNetwork or to real localhost TCPNetworks (one listener per
// member, fully meshed — the shared-connection deployment shape).
func multiGroupEndpoints(b *testing.B, all ident.PIDs, tcp bool) map[ident.PID]transport.Endpoint {
	b.Helper()
	eps := make(map[ident.PID]transport.Endpoint, len(all))
	if !tcp {
		net := transport.NewMemNetwork()
		for _, p := range all {
			ep, err := net.Endpoint(p)
			if err != nil {
				b.Fatal(err)
			}
			eps[p] = ep
		}
		return eps
	}
	nets := make(map[ident.PID]*transport.TCPNetwork, len(all))
	for _, p := range all {
		n, err := transport.NewTCPNetwork(p, "127.0.0.1:0", nil)
		if err != nil {
			b.Fatal(err)
		}
		nets[p] = n
		eps[p] = n
	}
	for _, p := range all {
		for _, q := range all {
			if p != q {
				nets[p].AddPeer(q, nets[q].Addr())
			}
		}
	}
	return eps
}

// multiGroupNodes builds `members` nodes over one shared endpoint each
// (MemNetwork or localhost TCP), every node hosting `groups` independent
// semantic groups, with fast consumer loops on every (member, group). It
// returns the producer-side groups (one per group id, all on node 0),
// the producer node's endpoint (for wire stats), and a shutdown func.
func multiGroupNodes(b *testing.B, members, groups, buffer int, tcp bool) ([]*core.Group, transport.Endpoint, func()) {
	b.Helper()
	var pids []ident.PID
	for i := 0; i < members; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	all := ident.NewPIDs(pids...)
	view := core.View{ID: 1, Members: all}
	ctx, cancel := context.WithCancel(context.Background())

	eps := multiGroupEndpoints(b, all, tcp)
	var nodes []*core.Node
	var dets []*fd.Manual
	var wg sync.WaitGroup
	producers := make([]*core.Group, 0, groups)
	for _, p := range all {
		ep := eps[p]
		det := fd.NewManual()
		node, err := core.NewNode(core.NodeConfig{Self: p, Endpoint: ep, Detector: det})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, node)
		dets = append(dets, det)
		for gid := ident.GroupID(1); gid <= ident.GroupID(groups); gid++ {
			g, err := node.Create(gid, core.GroupConfig{
				InitialView: view, Relation: obsolete.KEnumeration{K: 2 * buffer},
				ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
			})
			if err != nil {
				b.Fatal(err)
			}
			if p == all[0] {
				producers = append(producers, g)
			}
			wg.Add(1)
			go func(g *core.Group) {
				defer wg.Done()
				for {
					if _, err := g.Deliver(ctx); err != nil {
						return
					}
				}
			}(g)
		}
	}
	stop := func() {
		cancel()
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
		for _, d := range dets {
			d.Stop()
		}
	}
	return producers, eps[all[0]], stop
}

// BenchmarkMultiGroup drives M groups × 4 members in one process over
// shared endpoints — the Node runtime's sharded deployment shape — with
// one producer goroutine per group. b.N counts messages *per group*, so
// every sub-benchmark does identical per-group work and the numbers
// compose: ns/op is the wall time per per-group message, and agg-msgs/s
// is the node's aggregate multicast throughput, whose growth with the
// group count is the members×groups scaling the multi-group runtime is
// for. The net=mem series isolates protocol cost; net=tcp runs the real
// deployment shape, where sharing one connection pair per peer lets the
// frame batcher coalesce every co-hosted group's traffic into the same
// write syscalls (coalesce-envs/frame reports the achieved factor).
func BenchmarkMultiGroup(b *testing.B) {
	const members = 4
	const buffer = 32
	for _, netKind := range []string{"mem", "tcp"} {
		for _, groups := range []int{1, 4, 16} {
			netKind, groups := netKind, groups
			b.Run(fmt.Sprintf("net=%s/groups=%d", netKind, groups), func(b *testing.B) {
				benchMultiGroup(b, members, groups, buffer, netKind == "tcp")
			})
		}
	}
}

func benchMultiGroup(b *testing.B, members, groups, buffer int, tcp bool) {
	producers, producerEP, stop := multiGroupNodes(b, members, groups, buffer, tcp)
	defer stop()
	var before transport.TCPStats
	tcpNet, _ := producerEP.(*transport.TCPNetwork)
	if tcpNet != nil {
		before = tcpNet.Stats()
	}
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for _, g := range producers {
		wg.Add(1)
		go func(g *core.Group) {
			defer wg.Done()
			tr := obsolete.NewItemTracker(obsolete.NewKTracker(2 * buffer))
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				seq, annot := tr.Update(uint32(i % 8))
				meta := obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot}
				if _, err := g.Multicast(ctx, meta, nil); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*groups)/elapsed.Seconds(), "agg-msgs/s")
	if tcpNet != nil {
		st := tcpNet.Stats()
		frames := st.FramesSent - before.FramesSent
		if frames > 0 {
			b.ReportMetric(float64(st.EnvelopesSent-before.EnvelopesSent)/float64(frames), "coalesce-envs/frame")
		}
	}
}

// ---- saturation: the batched data plane at full tilt ------------------------

// satBatch is the submission granularity of the saturation producers: the
// amortisation unit of the batched data plane (one request round-trip, one
// coalesced envelope per peer, one purge pass per message).
const satBatch = 64

// chainAnnot precomputes the steady-state k-enumeration annotation of a
// chain workload (every message directly obsoletes its predecessor): after
// k messages the transitively closed bitmap is constant all-ones, so one
// shared byte slice serves every message — the producer hot loop mints
// metadata without allocating.
func chainAnnot(k int) []byte {
	tr := obsolete.NewKTracker(k)
	seq, annot := tr.Next()
	for i := 0; i < k+1; i++ {
		seq, annot = tr.Next(seq)
	}
	return annot
}

// saturationNodes is multiGroupNodes with the batched data plane on both
// ends: consumers pull through DeliverBatch into reused buffers, and the
// caller drives producers through MulticastBatch. It returns the per-group
// producer handles for the first `senders` members plus every group of
// every member (for quiescence polling).
func saturationNodes(b *testing.B, members, groups, senders, buffer int, tcp bool) (producers [][]*core.Group, all []*core.Group, stop func()) {
	b.Helper()
	var pids []ident.PID
	for i := 0; i < members; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	set := ident.NewPIDs(pids...)
	view := core.View{ID: 1, Members: set}
	ctx, cancel := context.WithCancel(context.Background())

	eps := multiGroupEndpoints(b, set, tcp)
	var nodes []*core.Node
	var dets []*fd.Manual
	var wg sync.WaitGroup
	producers = make([][]*core.Group, senders)
	for mi, p := range set {
		ep := eps[p]
		det := fd.NewManual()
		node, err := core.NewNode(core.NodeConfig{Self: p, Endpoint: ep, Detector: det})
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, node)
		dets = append(dets, det)
		for gid := ident.GroupID(1); gid <= ident.GroupID(groups); gid++ {
			g, err := node.Create(gid, core.GroupConfig{
				InitialView: view, Relation: obsolete.KEnumeration{K: 2 * buffer},
				ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
			})
			if err != nil {
				b.Fatal(err)
			}
			all = append(all, g)
			if mi < senders {
				producers[mi] = append(producers[mi], g)
			}
			wg.Add(1)
			go func(g *core.Group) {
				defer wg.Done()
				dst := make([]core.Delivery, 256)
				for {
					if _, err := g.DeliverBatch(ctx, dst); err != nil {
						return
					}
				}
			}(g)
		}
	}
	stop = func() {
		cancel()
		for _, n := range nodes {
			n.Close()
		}
		wg.Wait()
		for _, d := range dets {
			d.Stop()
		}
	}
	return producers, all, stop
}

// waitQuiesce polls every group's stats until nothing changes anywhere and
// all delivery queues are drained: the run's traffic has fully landed.
func waitQuiesce(b *testing.B, all []*core.Group) {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var prev []core.Stats
	stable := 0
	for stable < 2 {
		if time.Now().After(deadline) {
			b.Fatal("cluster never quiesced")
		}
		cur := make([]core.Stats, 0, len(all))
		drained := true
		for _, g := range all {
			st := g.Stats()
			if st.ToDeliverLen != 0 {
				drained = false
			}
			cur = append(cur, st)
		}
		same := drained && prev != nil && len(prev) == len(cur)
		if same {
			for i := range cur {
				if cur[i] != prev[i] {
					same = false
					break
				}
			}
		}
		if same {
			stable++
		} else {
			stable = 0
		}
		prev = cur
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkSaturation is the headline throughput series of the batched
// data plane: every stage — submission, commit, wire, receive, delivery —
// runs at batch granularity, with a chain obsolescence workload (purge
// keeps every queue O(1), the regime SVS is built for). b.N counts
// messages per (group, sender); agg-msgs/s is the node-aggregate multicast
// throughput including full quiescence (all traffic received everywhere),
// and allocs/op is the steady-state allocation cost per message on the
// semantic batched path — the 0-allocs/op acceptance gate of the data
// plane (see scripts/bench.sh and the bench-smoke CI job).
func BenchmarkSaturation(b *testing.B) {
	const buffer = 1024
	cases := []struct {
		net             string
		members, groups int
		senders         int
	}{
		{"mem", 2, 1, 1},
		{"mem", 2, 4, 1},
		{"mem", 2, 16, 1},
		{"mem", 4, 1, 1},
		{"mem", 4, 1, 4},
		{"tcp", 2, 1, 1},
		{"tcp", 2, 4, 1},
	}
	for _, c := range cases {
		c := c
		name := fmt.Sprintf("net=%s/members=%d/groups=%d/senders=%d", c.net, c.members, c.groups, c.senders)
		b.Run(name, func(b *testing.B) {
			benchSaturation(b, c.members, c.groups, c.senders, buffer, c.net == "tcp")
		})
	}
}

func benchSaturation(b *testing.B, members, groups, senders, buffer int, tcp bool) {
	producers, all, stop := saturationNodes(b, members, groups, senders, buffer, tcp)
	defer stop()
	annot := chainAnnot(2 * buffer)
	payload := []byte("0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	var wg sync.WaitGroup
	for si := range producers {
		self := ident.PID(fmt.Sprintf("p%d", si))
		for _, g := range producers[si] {
			wg.Add(1)
			go func(g *core.Group) {
				defer wg.Done()
				ctx := context.Background()
				batch := make([]core.OutMsg, satBatch)
				for i := range batch {
					batch[i].Payload = payload
				}
				var seq ident.Seq
				for sent := 0; sent < b.N; {
					n := satBatch
					if rem := b.N - sent; n > rem {
						n = rem
					}
					for i := 0; i < n; i++ {
						seq++
						batch[i].Meta = obsolete.Msg{Sender: self, Seq: seq, Annot: annot}
					}
					if _, err := g.MulticastBatch(ctx, batch[:n]); err != nil {
						b.Error(err)
						return
					}
					sent += n
				}
			}(g)
		}
	}
	wg.Wait()
	waitQuiesce(b, all)
	elapsed := time.Since(start)
	b.ReportMetric(float64(b.N*groups*senders)/elapsed.Seconds(), "agg-msgs/s")
}

// BenchmarkJoinStateTransfer measures the cost of bringing a newcomer
// into a running 3-member group after a 512-message session. The state
// transfer ships only the relation-purged unstable backlog, so under the
// semantic relation xfer-bytes/op stays O(window) while the reliable
// (empty) relation ships the entire unstable history — the join-time
// face of the buffer-size separation Fig. 4b shows in steady state.
func BenchmarkJoinStateTransfer(b *testing.B) {
	for _, mode := range []string{"semantic", "reliable"} {
		mode := mode
		b.Run("mode="+mode, func(b *testing.B) {
			benchJoinStateTransfer(b, mode == "semantic")
		})
	}
}

func benchJoinStateTransfer(b *testing.B, semantic bool) {
	const produced = 512
	const items = 16
	var rel obsolete.Relation = obsolete.Empty{}
	if semantic {
		rel = obsolete.KEnumeration{K: 64}
	}
	gc := core.GroupConfig{Relation: rel, ToDeliverCap: 64, OutgoingCap: 64, Window: 64}

	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("p0", "p1", "p2")
	newNode := func(p ident.PID) *core.Node {
		ep, err := net.Endpoint(p)
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewManual()
		node, err := core.NewNode(core.NodeConfig{Self: p, Endpoint: ep, Detector: det})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			node.Close()
			det.Stop()
		})
		return node
	}
	groups := make(map[ident.PID]*core.Group, len(pids))
	for _, p := range pids {
		node := newNode(p)
		gc := gc
		gc.InitialView = core.View{ID: 1, Members: pids}
		g, err := node.Create(1, gc)
		if err != nil {
			b.Fatal(err)
		}
		groups[p] = g
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	last := make(map[ident.PID]ident.Seq, len(pids))
	for _, p := range pids {
		p := p
		go func() {
			for {
				d, err := groups[p].Deliver(ctx)
				if err != nil {
					return
				}
				if d.Kind == core.DeliverData && d.Meta.Sender == "p0" {
					mu.Lock()
					if d.Meta.Seq > last[p] {
						last[p] = d.Meta.Seq
					}
					mu.Unlock()
				}
			}
		}()
	}

	waitSeq := func(want ident.Seq) {
		for {
			mu.Lock()
			done := true
			for _, p := range pids {
				if last[p] < want {
					done = false
				}
			}
			mu.Unlock()
			if done {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	// Each op is one session segment plus the join it feeds: the unstable
	// backlog is per-view state, and the eviction closing each iteration
	// opens a new view, so the segment must be re-produced every time.
	tr := obsolete.NewItemTracker(obsolete.NewKTracker(64))
	var bytes, msgs uint64
	var lastSeq ident.Seq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < produced; j++ {
			seq, annot := tr.Update(uint32(j % items))
			if !semantic {
				annot = nil
			}
			meta := obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot}
			if _, err := groups["p0"].Multicast(ctx, meta, nil); err != nil {
				b.Fatal(err)
			}
			lastSeq = seq
		}
		waitSeq(lastSeq)

		jpid := ident.PID(fmt.Sprintf("j%d", i))
		jn := newNode(jpid)
		jg, err := jn.Join(1, gc, "p0")
		if err != nil {
			b.Fatal(err)
		}
		for jg.View().ID == 0 {
			time.Sleep(200 * time.Microsecond)
		}
		st := jg.Stats()
		bytes += uint64(st.JoinBytesRecv)
		msgs += uint64(st.JoinBacklogRecv)

		// Evict the joiner again so membership (and consensus quorums)
		// stay constant across iterations.
		want := groups["p0"].View().ID + 1
		if err := groups["p0"].RequestViewChange(jpid); err != nil {
			b.Fatal(err)
		}
		for groups["p0"].Stats().View < want {
			time.Sleep(200 * time.Microsecond)
		}
		jg.Leave()
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes)/float64(b.N), "xfer-bytes/op")
	b.ReportMetric(float64(msgs)/float64(b.N), "xfer-msgs/op")
}

// BenchmarkMergeStateTransfer measures the bidirectional semantic state
// exchange of a partition merge (core/merge.go). Each op: a five-member
// group is cut 3|2, the majority evicts the minority while the minority
// splits into its own lineage, both sides multicast `produced` messages
// at each other's backs, and the links heal — the probe/merge handshake
// reconverges everyone into a union view whose flush carries both sides'
// backlogs. Under the semantic relation each contribution is the
// relation-purged backlog — O(window) messages — while the reliable
// (Empty) baseline must carry all of `produced`: merge-bytes/op is the
// wire size of every contribution received by one member, flush-msgs/op
// the union flush length. The semantic/reliable ratio is the point.
func BenchmarkMergeStateTransfer(b *testing.B) {
	for _, mode := range []string{"semantic", "reliable"} {
		mode := mode
		b.Run("mode="+mode, func(b *testing.B) {
			benchMergeStateTransfer(b, mode == "semantic")
		})
	}
}

func benchMergeStateTransfer(b *testing.B, semantic bool) {
	const produced = 512
	const items = 16
	var rel obsolete.Relation = obsolete.Empty{}
	if semantic {
		rel = obsolete.KEnumeration{K: 64}
	}

	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("p0", "p1", "p2", "p3", "p4")
	maj, min := pids[:3], pids[3:]
	gc := core.GroupConfig{
		Relation: rel, ToDeliverCap: 64, OutgoingCap: 64, Window: 64,
		AutoEvict:   true,
		Heal:        &core.HealSpec{ProbeInterval: 2 * time.Millisecond, MergeTimeout: time.Second},
		InitialView: core.View{ID: 1, Members: pids},
	}
	dets := make(map[ident.PID]*fd.Manual, len(pids))
	groups := make(map[ident.PID]*core.Group, len(pids))
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			b.Fatal(err)
		}
		det := fd.NewManual()
		node, err := core.NewNode(core.NodeConfig{Self: p, Endpoint: ep, Detector: det})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			node.Close()
			det.Stop()
		})
		g, err := node.Create(1, gc)
		if err != nil {
			b.Fatal(err)
		}
		dets[p], groups[p] = det, g
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, p := range pids {
		p := p
		go func() {
			for {
				if _, err := groups[p].Deliver(ctx); err != nil {
					return
				}
			}
		}()
	}
	waitMembers := func(p ident.PID, n int) {
		for len(groups[p].View().Members) != n {
			time.Sleep(200 * time.Microsecond)
		}
	}
	waitUnion := func() {
		for {
			ref := groups[pids[0]].View().Ref()
			ok := len(groups[pids[0]].View().Members) == len(pids)
			for _, p := range pids[1:] {
				v := groups[p].View()
				if len(v.Members) != len(pids) || v.Ref() != ref {
					ok = false
					break
				}
			}
			if ok {
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}
	send := func(p ident.PID, tr *obsolete.ItemTracker, n int) {
		for j := 0; j < n; j++ {
			seq, annot := tr.Update(uint32(j % items))
			if !semantic {
				annot = nil
			}
			if _, err := groups[p].Multicast(ctx, obsolete.Msg{Sender: p, Seq: seq, Annot: annot}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	trMaj := obsolete.NewItemTracker(obsolete.NewKTracker(64))
	trMin := obsolete.NewItemTracker(obsolete.NewKTracker(64))

	var bytes, flush uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Partition 3|2 and let each side settle into its own view: the
		// majority evicts, the minority splits.
		for _, a := range maj {
			for _, z := range min {
				net.CutBoth(a, z)
				dets[a].Suspect(z)
				dets[z].Suspect(a)
			}
		}
		waitMembers(maj[0], len(maj))
		waitMembers(min[0], len(min))

		// Divergent traffic on both sides: the backlog the merge exchanges.
		send(maj[0], trMaj, produced)
		send(min[0], trMin, produced)

		before := groups[maj[0]].Stats()
		for _, a := range maj {
			for _, z := range min {
				dets[a].Restore(z)
				dets[z].Restore(a)
			}
		}
		for _, a := range maj {
			for _, z := range min {
				net.Heal(a, z)
				net.Heal(z, a)
			}
		}
		waitUnion()
		after := groups[maj[0]].Stats()
		bytes += after.MergeBytesRecv - before.MergeBytesRecv
		flush += uint64(after.LastFlushLen)
	}
	b.StopTimer()
	b.ReportMetric(float64(bytes)/float64(b.N), "merge-bytes/op")
	b.ReportMetric(float64(flush)/float64(b.N), "flush-msgs/op")
}

// BenchmarkViewChangeLatency measures the wall time of a full view change
// (INIT → PRED exchange → consensus → install) in an idle group — the
// protocol's fixed cost; the flush grows with buffered traffic, which
// Fig. 4b shows SVS keeps small.
func BenchmarkViewChangeLatency(b *testing.B) {
	producer, stop := liveGroup(b, obsolete.KEnumeration{K: 64}, 32)
	defer stop()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := producer.RequestViewChange(); err != nil {
			b.Fatal(err)
		}
		want := ident.ViewID(2 + i)
		for producer.Stats().View < want {
			time.Sleep(200 * time.Microsecond)
		}
	}
}
