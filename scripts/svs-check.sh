#!/bin/sh
# svs-check.sh — CI gate for the obsolescence-relation verifier.
#
# Runs cmd/svs-check over every built-in encoding and every model in
# examples/. Sound models must verify (exit 0); the deliberately unsound
# examples (examples/unsound-*.yaml) must be rejected (exit 1) AND print
# a minimal counterexample witness — a checker that flags unsoundness
# without a witness, or that goes soft on a known-bad model, is itself
# broken.
set -eu

cd "$(dirname "$0")/.."

echo "== svs-check: built-in encodings =="
go run ./cmd/svs-check -builtin all -q

status=0
for f in examples/*.yaml; do
    case "$f" in
    examples/unsound-*)
        echo "== svs-check: $f (must be rejected) =="
        out=$(go run ./cmd/svs-check -q "$f" 2>&1) && {
            echo "FAIL: $f verified sound, want rejection"
            status=1
            continue
        }
        echo "$out"
        if ! echo "$out" | grep -q "VIOLATION:"; then
            echo "FAIL: $f rejected without a witness"
            status=1
        fi
        ;;
    *)
        echo "== svs-check: $f =="
        go run ./cmd/svs-check -q "$f" || {
            echo "FAIL: $f did not verify"
            status=1
        }
        ;;
    esac
done

if [ "$status" -eq 0 ]; then
    echo "svs-check: all models behave as expected"
fi
exit "$status"
