#!/bin/sh
# bench.sh — run the figure and wire benchmarks and emit BENCH_svs.json,
# the machine-readable perf trajectory seed (one entry per benchmark,
# custom metrics included).
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime defaults to 1x (one iteration per benchmark: a smoke pass).
#   Use e.g. `scripts/bench.sh 2s` for statistically meaningful numbers.
set -eu

cd "$(dirname "$0")/.."
BENCHTIME="${1:-1x}"
OUT="BENCH_svs.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
    -bench 'BenchmarkFig|BenchmarkWireCodec|BenchmarkEngineMulticast|BenchmarkViewChangeLatency' \
    -benchtime "$BENCHTIME" . | tee "$RAW"

awk -v benchtime="$BENCHTIME" '
BEGIN {
    printf "{\n  \"source\": \"scripts/bench.sh\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", benchtime
    n = 0
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
    if (n++) printf ","
    printf "\n    {\"name\": \"%s\", \"iterations\": %s, \"metrics\": {", name, $2
    m = 0
    for (i = 3; i + 1 <= NF; i += 2) {
        if (m++) printf ", "
        printf "\"%s\": %s", $(i + 1), $i
    }
    printf "}}"
}
END { printf "\n  ]\n}\n" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
