#!/bin/sh
# bench.sh — run the benchmark suite and emit BENCH_svs.json, the
# machine-readable perf trajectory (one entry per benchmark, custom
# metrics included).
#
# Two benchmark classes are run differently:
#
#   figures — the Fig3–Fig5 scenario replays plus the join and merge
#     state-transfer scenarios. Each iteration replays a full recorded
#     session (or a full partition/heal cycle), so one iteration is the
#     measurement and ns/op is not a latency figure; they run at
#     -benchtime 1x and their custom metrics (thresholds, idle%,
#     occupancy, xfer-bytes, merge-bytes) are the payload.
#   micro — the hot-path microbenchmarks (wire codec, engine multicast,
#     multi-group node throughput, view change, queue purge/pop).
#     Single-iteration numbers are noise here, so they run at a fixed
#     iteration count with -count repeats and the JSON records the
#     per-metric mean over the repeats.
#   saturation — the batched data-plane saturation grid (BenchmarkSaturation,
#     memnet + TCP, groups x senders). Time-based benchtime so every point
#     reaches its steady state; agg-msgs/s and allocs/op are the payload.
#
# Usage: scripts/bench.sh [micro-benchtime] [micro-count] [sat-benchtime]
#   defaults: 2000x iterations, 3 repeats, 1s saturation benchtime.
set -eu

cd "$(dirname "$0")/.."
MICRO_BENCHTIME="${1:-2000x}"
MICRO_COUNT="${2:-3}"
SAT_BENCHTIME="${3:-1s}"
OUT="BENCH_svs.json"
RAW_FIG="$(mktemp)"
RAW_MICRO="$(mktemp)"
RAW_SAT="$(mktemp)"
trap 'rm -f "$RAW_FIG" "$RAW_MICRO" "$RAW_SAT"' EXIT

# go test runs straight into the raw files (not through a pipeline) so a
# failing benchmark aborts the script under set -e instead of silently
# producing an incomplete JSON.
echo "== figures (scenario replays, -benchtime 1x) =="
go test -run '^$' -bench 'BenchmarkFig|BenchmarkJoinStateTransfer|BenchmarkMergeStateTransfer' -benchtime 1x . > "$RAW_FIG" 2>&1 || {
    cat "$RAW_FIG" >&2
    exit 1
}
cat "$RAW_FIG"

echo "== micro (-benchtime $MICRO_BENCHTIME -count $MICRO_COUNT, means reported) =="
go test -run '^$' \
    -bench 'BenchmarkWireCodec|BenchmarkEngineMulticast|BenchmarkMulticastInstrumented|BenchmarkMultiGroup|BenchmarkViewChangeLatency|BenchmarkQueuePurgeFor|BenchmarkQueuePopHead' \
    -benchtime "$MICRO_BENCHTIME" -count "$MICRO_COUNT" -benchmem . > "$RAW_MICRO" 2>&1 || {
    cat "$RAW_MICRO" >&2
    exit 1
}
cat "$RAW_MICRO"

echo "== saturation (-benchtime $SAT_BENCHTIME) =="
go test -run '^$' -bench 'BenchmarkSaturation' \
    -benchtime "$SAT_BENCHTIME" -benchmem . > "$RAW_SAT" 2>&1 || {
    cat "$RAW_SAT" >&2
    exit 1
}
cat "$RAW_SAT"

# emit_entries CLASS FILE — one JSON object line per benchmark name;
# repeated runs of the same name (micro -count) are averaged per metric.
emit_entries() {
    awk -v class="$1" '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix
        if (!(name in seen)) { seen[name] = 1; order[++n] = name }
        iters[name] = $2
        runs[name]++
        for (i = 3; i + 1 <= NF; i += 2) {
            metric = $(i + 1)
            key = name SUBSEP metric
            if (!(key in msum)) mlist[name] = mlist[name] SUBSEP metric
            msum[key] += $i
            mcnt[key]++
        }
    }
    END {
        for (j = 1; j <= n; j++) {
            name = order[j]
            printf "    {\"name\": \"%s\", \"class\": \"%s\", \"iterations\": %s, \"runs\": %d, \"metrics\": {",
                name, class, iters[name], runs[name]
            cnt = split(substr(mlist[name], 2), metrics, SUBSEP)
            for (k = 1; k <= cnt; k++) {
                key = name SUBSEP metrics[k]
                printf "%s\"%s\": %g", (k > 1 ? ", " : ""), metrics[k], msum[key] / mcnt[key]
            }
            printf "}},\n"
        }
    }' "$2"
}

{
    printf '{\n'
    printf '  "source": "scripts/bench.sh",\n'
    printf '  "runs": {\n'
    printf '    "figures": {"benchtime": "1x", "count": 1, "note": "Fig3-Fig5 scenario replays plus the join and merge state transfers: one iteration replays a whole recorded session (or a full partition/heal cycle); the custom metrics are the measurement, ns/op is not a hot-path latency. The merge pair shows the semantic contribution staying O(window) while the reliable baseline carries the whole divergent history"},\n'
    printf '    "micro": {"benchtime": "%s", "count": %s, "note": "hot-path microbenchmarks: fixed iteration count, per-metric means over count runs"},\n' "$MICRO_BENCHTIME" "$MICRO_COUNT"
    printf '    "saturation": {"benchtime": "%s", "count": 1, "note": "batched data-plane saturation grid: agg-msgs/s is aggregate delivered multicast throughput across groups x senders; allocs/op must stay 0 on the members=2/groups=1 steady-state point"}\n' "$SAT_BENCHTIME"
    printf '  },\n'
    printf '  "benchmarks": [\n'
    { emit_entries figure "$RAW_FIG"; emit_entries micro "$RAW_MICRO"; emit_entries saturation "$RAW_SAT"; } | sed '$ s/,$//'
    printf '  ]\n'
    printf '}\n'
} > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)"
