#!/bin/sh
# lint-clock.sh — enforce the injectable-clock rule: runtime code in the
# protocol packages must go through obs.Clock (internal/obs), never the
# wall clock directly. Otherwise the deterministic fake-clock tests (and
# any future discrete-event harness) silently stop covering the timers
# they were written for.
#
# Scope: non-test .go files of internal/fd, internal/consensus,
# internal/core and internal/transport (paced-link delays must run on the
# injected clock so delay fault injection is deterministic under
# obs.Fake). Tests are exempt — they are free to use real time for
# deadlines and polling.
set -eu

cd "$(dirname "$0")/.."

PKGS="internal/fd internal/consensus internal/core internal/transport"
PATTERN='time\.Now\(|time\.NewTicker\(|time\.NewTimer\(|time\.After\(|time\.Since\(|time\.Tick\('

found=0
for pkg in $PKGS; do
    # shellcheck disable=SC2046
    hits=$(grep -nE "$PATTERN" $(find "$pkg" -name '*.go' ! -name '*_test.go') /dev/null || true)
    if [ -n "$hits" ]; then
        echo "$hits"
        found=1
    fi
done

if [ "$found" -ne 0 ]; then
    echo "" >&2
    echo "lint-clock: direct wall-clock use in protocol runtime code." >&2
    echo "Use the injected obs.Clock (Config.Obs / HeartbeatOptions.Obs) instead," >&2
    echo "so fake-clock tests keep control of every timer." >&2
    exit 1
fi
echo "lint-clock: OK (no direct time.Now/NewTicker/NewTimer/After/Since/Tick in $PKGS)"
