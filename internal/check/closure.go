package check

import (
	"sort"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Closure answers m ⊑* n queries under the reflexive-transitive closure of
// an encoded relation over a finite universe of messages — the "true"
// application-level relation of §3.4. Encodings such as k-enumeration
// truncate transitivity at their window; the closure restores the chains
// the application semantics guarantee.
//
// The closure is exact for sender-local relations (every built-in
// encoding): chains are computed per sender over the seq-ordered stream.
// For relations that are not declared sender-local, cross-sender coverage
// is additionally answered by the direct relation test (single-hop), on
// top of the single-sender chains; chains through multiple cross-sender
// hops are not followed.
//
// Closure is shared by the execution checker (Recorder) and the static
// relation verifier (internal/relcheck), which uses it to prove that every
// purge decision commutes with delivery.
type Closure struct {
	rel obsolete.Relation
	// cross enables the direct cross-sender test; false when the relation
	// declares sender-locality (nothing to find).
	cross bool
	// metas resolves ids back to full messages for direct tests.
	metas map[obsolete.MsgID]obsolete.Msg
	// reach[id] is the set of message ids that transitively cover id
	// within id's own sender stream.
	reach map[obsolete.MsgID]map[obsolete.MsgID]bool
}

// NewClosure precomputes the closure of rel over msgs. A nil rel means the
// empty relation. Messages must carry the annotations the relation reads;
// duplicate ids are collapsed.
func NewClosure(rel obsolete.Relation, msgs []obsolete.Msg) *Closure {
	if rel == nil {
		rel = obsolete.Empty{}
	}
	c := &Closure{
		rel:   rel,
		cross: !obsolete.CapsOf(rel).SenderLocal,
		metas: make(map[obsolete.MsgID]obsolete.Msg, len(msgs)),
		reach: make(map[obsolete.MsgID]map[obsolete.MsgID]bool, len(msgs)),
	}
	bySender := make(map[ident.PID][]obsolete.Msg)
	for _, m := range msgs {
		if _, ok := c.metas[m.ID()]; ok {
			continue
		}
		c.metas[m.ID()] = m
		bySender[m.Sender] = append(bySender[m.Sender], m)
	}
	for s := range bySender {
		stream := bySender[s]
		sort.Slice(stream, func(i, j int) bool { return stream[i].Seq < stream[j].Seq })
		// Dynamic programming back-to-front: reach(i) = ∪ over direct
		// successors j≻i of {j} ∪ reach(j).
		for i := len(stream) - 1; i >= 0; i-- {
			set := make(map[obsolete.MsgID]bool)
			for j := i + 1; j < len(stream); j++ {
				if c.rel.Obsoletes(stream[i], stream[j]) {
					set[stream[j].ID()] = true
					for id := range c.reach[stream[j].ID()] {
						set[id] = true
					}
				}
			}
			c.reach[stream[i].ID()] = set
		}
	}
	return c
}

// Covers reports m ⊑* n.
func (c *Closure) Covers(m, n obsolete.MsgID) bool {
	if m == n || c.reach[m][n] {
		return true
	}
	if c.cross && m.Sender != n.Sender {
		mm, ok1 := c.metas[m]
		nm, ok2 := c.metas[n]
		return ok1 && ok2 && c.rel.Obsoletes(mm, nm)
	}
	return false
}

// CoveredByAny reports whether some id in set covers m.
func (c *Closure) CoveredByAny(m obsolete.MsgID, set map[obsolete.MsgID]bool) bool {
	if set[m] {
		return true
	}
	for n := range c.reach[m] {
		if set[n] {
			return true
		}
	}
	if c.cross {
		mm, ok := c.metas[m]
		if !ok {
			return false
		}
		for n := range set {
			if n.Sender == m.Sender {
				continue
			}
			if nm, ok := c.metas[n]; ok && c.rel.Obsoletes(mm, nm) {
				return true
			}
		}
	}
	return false
}
