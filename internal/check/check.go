// Package check verifies executions of the group communication engine
// against the safety properties of §3.2 of the paper:
//
//   - Semantic View Synchrony: if p installs consecutive views v and v+1
//     and delivers m in v, every process installing both views delivers
//     some m' with m ⊑ m' before installing v+1;
//   - FIFO Semantically Reliable delivery: (i) per-sender delivery order
//     follows multicast order; (ii) when p installs v and v+1 and delivers
//     m' in v, every earlier message m of the same sender multicast in v is
//     covered by some delivered m” before v+1 is installed;
//   - Integrity: no creation, no duplication;
//   - View agreement: processes installing the same view reference
//     (lineage epoch + identifier) agree on its membership.
//
// Coverage (⊑) is evaluated under the reflexive-transitive closure of the
// encoded relation over the set of all multicast messages — the "true"
// application-level relation. Encodings such as k-enumeration truncate
// transitivity at their window; the closure restores the chains the
// application semantics guarantee (§3.4 reasons with the mathematical
// relation, not its encoding).
package check

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Recorder accumulates the observable events of one execution. It is safe
// for concurrent use; every process of the group logs into the same
// recorder.
//
// Views are identified by lineage-aware references (ident.ViewRef): after
// a partition both sides keep numbering views independently, and only the
// epoch tells their identically-numbered views apart. All internal
// bookkeeping is ref-keyed; the plain ViewID methods remain as epoch-0
// wrappers for executions that never diverge.
type Recorder struct {
	mu sync.Mutex

	rel obsolete.Relation
	// initView is the reference of the group's initial view, which every
	// process installs implicitly before its first recorded event.
	initView ident.ViewRef
	// multicast[id] is the metadata of every multicast message, keyed by
	// (sender, seq); recorded at the sender.
	multicast map[obsolete.MsgID]mcast
	// deliveries[p] is the ordered delivery log of process p.
	deliveries map[ident.PID][]Event
}

type mcast struct {
	meta obsolete.Msg
	view ident.ViewRef
}

// EventKind discriminates recorded events.
type EventKind uint8

const (
	// EvDeliver is a data delivery.
	EvDeliver EventKind = iota + 1
	// EvInstall is a view installation.
	EvInstall
)

// Event is one entry of a process's delivery log.
type Event struct {
	Kind EventKind
	// Deliver fields.
	Meta obsolete.Msg
	View ident.ViewRef // view the message was delivered in
	// Install fields.
	Ref     ident.ViewRef
	Members ident.PIDs
}

// NewRecorder returns a recorder checking against rel.
func NewRecorder(rel obsolete.Relation) *Recorder {
	if rel == nil {
		rel = obsolete.Empty{}
	}
	return &Recorder{
		rel:        rel,
		multicast:  make(map[obsolete.MsgID]mcast),
		deliveries: make(map[ident.PID][]Event),
	}
}

// SetInitialView declares the identifier of the agreed initial view
// (founding lineage, epoch 0); every process is considered to have
// installed it implicitly. Defaults to view 0.
func (r *Recorder) SetInitialView(id ident.ViewID) {
	r.SetInitialViewRef(ident.ViewRef{ID: id})
}

// SetInitialViewRef is SetInitialView for an arbitrary lineage.
func (r *Recorder) SetInitialViewRef(ref ident.ViewRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.initView = ref
}

// Multicast records that meta was multicast in epoch-0 view v.
func (r *Recorder) Multicast(meta obsolete.Msg, v ident.ViewID) {
	r.MulticastRef(meta, ident.ViewRef{ID: v})
}

// MulticastRef records that meta was multicast in the referenced view.
func (r *Recorder) MulticastRef(meta obsolete.Msg, ref ident.ViewRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.multicast[meta.ID()] = mcast{meta: meta, view: ref}
}

// Deliver records that p delivered meta in epoch-0 view v.
func (r *Recorder) Deliver(p ident.PID, meta obsolete.Msg, v ident.ViewID) {
	r.DeliverRef(p, meta, ident.ViewRef{ID: v})
}

// DeliverRef records that p delivered meta in the referenced view.
func (r *Recorder) DeliverRef(p ident.PID, meta obsolete.Msg, ref ident.ViewRef) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliveries[p] = append(r.deliveries[p], Event{Kind: EvDeliver, Meta: meta, View: ref})
}

// Install records that p installed the given epoch-0 view.
func (r *Recorder) Install(p ident.PID, id ident.ViewID, members ident.PIDs) {
	r.InstallRef(p, ident.ViewRef{ID: id}, members)
}

// InstallRef records that p installed the referenced view.
func (r *Recorder) InstallRef(p ident.PID, ref ident.ViewRef, members ident.PIDs) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deliveries[p] = append(r.deliveries[p], Event{
		Kind: EvInstall, Ref: ref, Members: members.Clone(),
	})
}

// Log returns p's recorded event log.
func (r *Recorder) Log(p ident.PID) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.deliveries[p]))
	copy(out, r.deliveries[p])
	return out
}

// Verify checks every property and returns the list of violations (empty
// means the execution satisfies the specification).
func (r *Recorder) Verify() []error {
	r.mu.Lock()
	defer r.mu.Unlock()

	var errs []error
	errs = append(errs, r.checkIntegrity()...)
	errs = append(errs, r.checkFIFOOrder()...)
	errs = append(errs, r.checkViewAgreement()...)
	cov := r.newCoverage()
	errs = append(errs, r.checkSVS(cov)...)
	errs = append(errs, r.checkFIFOSR(cov)...)
	return errs
}

// ---- Integrity -------------------------------------------------------------

func (r *Recorder) checkIntegrity() []error {
	var errs []error
	for p, log := range r.deliveries {
		seen := make(map[obsolete.MsgID]bool)
		for _, ev := range log {
			if ev.Kind != EvDeliver {
				continue
			}
			id := ev.Meta.ID()
			if _, ok := r.multicast[id]; !ok {
				errs = append(errs, fmt.Errorf("integrity: %s delivered %v which was never multicast (creation)", p, id))
			}
			if seen[id] {
				errs = append(errs, fmt.Errorf("integrity: %s delivered %v twice (duplication)", p, id))
			}
			seen[id] = true
		}
	}
	return errs
}

// ---- FIFO clause (i) -------------------------------------------------------

func (r *Recorder) checkFIFOOrder() []error {
	var errs []error
	for p, log := range r.deliveries {
		last := make(map[ident.PID]ident.Seq)
		for _, ev := range log {
			if ev.Kind != EvDeliver {
				continue
			}
			s := ev.Meta.Sender
			if ev.Meta.Seq <= last[s] {
				errs = append(errs, fmt.Errorf(
					"fifo: %s delivered %s:%d after %s:%d", p, s, ev.Meta.Seq, s, last[s]))
			}
			last[s] = ev.Meta.Seq
		}
	}
	return errs
}

// ---- View agreement --------------------------------------------------------

func (r *Recorder) checkViewAgreement() []error {
	var errs []error
	views := make(map[ident.ViewRef]ident.PIDs)
	for p, log := range r.deliveries {
		prev := ident.ViewID(0)
		for _, ev := range log {
			if ev.Kind != EvInstall {
				continue
			}
			// The numeric identifier is strictly monotone per process even
			// across lineage changes: splits and merges both allocate past
			// every constituent view's number.
			if ev.Ref.ID <= prev {
				errs = append(errs, fmt.Errorf("views: %s installed view %s after id %d", p, ev.Ref, prev))
			}
			prev = ev.Ref.ID
			if m, ok := views[ev.Ref]; ok {
				if !m.Equal(ev.Members) {
					errs = append(errs, fmt.Errorf(
						"views: membership disagreement for view %s: %v vs %v", ev.Ref, m, ev.Members))
				}
			} else {
				views[ev.Ref] = ev.Members
			}
		}
	}
	return errs
}

// ---- Coverage (reflexive-transitive closure) --------------------------------

// newCoverage builds the shared coverage closure (closure.go) over every
// multicast message. Callers hold r.mu.
func (r *Recorder) newCoverage() *Closure {
	msgs := make([]obsolete.Msg, 0, len(r.multicast))
	for _, mc := range r.multicast {
		msgs = append(msgs, mc.meta)
	}
	return NewClosure(r.rel, msgs)
}

// ---- SVS ---------------------------------------------------------------------

// install is one explicit view installation of a process's log, paired
// with the view the process held immediately before it (the implicit
// initial view when the install is the log's first). SVS constrains the
// transition prev→ref: two processes are bound to each other exactly when
// both made the same transition, which with lineages is the only sound
// reading of "consecutive views" — a split member and a merge member may
// share ref yet have arrived from different predecessors.
type install struct {
	ref     ident.ViewRef
	prev    ident.ViewRef
	index   int
	members ident.PIDs
}

// installSeq extracts the ordered install transitions of one log.
func installSeq(log []Event, init ident.ViewRef) []install {
	var out []install
	prev := init
	for i, ev := range log {
		if ev.Kind != EvInstall {
			continue
		}
		out = append(out, install{ref: ev.Ref, prev: prev, index: i, members: ev.Members})
		prev = ev.Ref
	}
	return out
}

// deliveredInViewBefore collects the ids of messages delivered by log in
// view v before index bound (negative bound = entire log).
func deliveredInViewBefore(log []Event, v ident.ViewRef, bound int) map[obsolete.MsgID]bool {
	out := make(map[obsolete.MsgID]bool)
	for i, ev := range log {
		if bound >= 0 && i >= bound {
			break
		}
		if ev.Kind == EvDeliver && ev.View == v {
			out[ev.Meta.ID()] = true
		}
	}
	return out
}

// checkSVS verifies the Semantic View Synchrony property for every pair of
// processes and every view transition both performed.
func (r *Recorder) checkSVS(cov *Closure) []error {
	var errs []error
	type pinfo struct {
		p        ident.PID
		log      []Event
		installs []install
	}
	var ps []pinfo
	for p, log := range r.deliveries {
		ps = append(ps, pinfo{p: p, log: log, installs: installSeq(log, r.initView)})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].p < ps[j].p })

	for _, a := range ps {
		for _, in := range a.installs {
			if in.prev == in.ref {
				// The explicitly-logged initial install (founders record it
				// by fiat): not a transition, nothing to synchronise.
				continue
			}
			// Messages a delivered in view prev (any time: SVS constrains
			// what *others* must deliver before installing ref).
			got := deliveredInViewBefore(a.log, in.prev, -1)
			if len(got) == 0 {
				continue
			}
			for _, b := range ps {
				if b.p == a.p {
					continue
				}
				for _, bin := range b.installs {
					if bin.ref != in.ref || bin.prev != in.prev {
						// b did not make the same prev→ref transition (it
						// joined at ref, or arrived via another lineage):
						// not constrained.
						continue
					}
					// What b delivered (in view prev) before installing ref.
					bGot := deliveredInViewBefore(b.log, in.prev, bin.index)
					for m := range got {
						if !cov.CoveredByAny(m, bGot) {
							errs = append(errs, fmt.Errorf(
								"svs: %s delivered %v in view %s but %s installed view %s without a covering delivery",
								a.p, m, in.prev, b.p, in.ref))
						}
					}
				}
			}
		}
	}
	return errs
}

// checkFIFOSR verifies clause (ii) of FIFO Semantically Reliable delivery:
// if p performs the view transition v→v' and delivers m' (sender s,
// multicast in v) in v, then every message m that s multicast in v before
// m' is covered by one of p's deliveries before the installation of v'.
func (r *Recorder) checkFIFOSR(cov *Closure) []error {
	var errs []error

	// Group multicasts by (sender, view) in seq order.
	type sv struct {
		s ident.PID
		v ident.ViewRef
	}
	streams := make(map[sv][]obsolete.Msg)
	for _, mc := range r.multicast {
		k := sv{s: mc.meta.Sender, v: mc.view}
		streams[k] = append(streams[k], mc.meta)
	}
	for k := range streams {
		msgs := streams[k]
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Seq < msgs[j].Seq })
		streams[k] = msgs
	}

	for p, log := range r.deliveries {
		for _, in := range installSeq(log, r.initView) {
			if in.prev == in.ref {
				continue
			}
			delivered := deliveredInViewBefore(log, in.prev, in.index)
			if len(delivered) == 0 {
				continue
			}
			// Highest delivered seq per sender within view prev.
			maxSeq := make(map[ident.PID]ident.Seq)
			for id := range delivered {
				if id.Seq > maxSeq[id.Sender] {
					maxSeq[id.Sender] = id.Seq
				}
			}
			for s, hi := range maxSeq {
				for _, m := range streams[sv{s: s, v: in.prev}] {
					if m.Seq >= hi {
						break
					}
					if !cov.CoveredByAny(m.ID(), delivered) {
						errs = append(errs, fmt.Errorf(
							"fifo-sr: %s delivered %s:%d in view %s but predecessor %s:%d is uncovered before view %s",
							p, s, hi, in.prev, s, m.Seq, in.ref))
					}
				}
			}
		}
	}
	return errs
}
