package check

import (
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// countViolations counts errors mentioning substr.
func countViolations(errs []error, substr string) int {
	n := 0
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			n++
		}
	}
	return n
}

// TestRecorderDistinctViolationsInOneExecution builds a single execution
// that is broken in three independent ways — a duplicate delivery, a
// delivery of a message never multicast, and a membership disagreement on
// an installed view — and asserts the Recorder reports each as its own
// violation, none masking the others, with nothing else flagged.
func TestRecorderDistinctViolationsInOneExecution(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)

	good := tagged("p0", 1, 1)
	r.Multicast(good, 1)

	// p1: delivers the legitimate message twice (duplication), plus a
	// message nobody multicast (creation).
	r.Deliver("p1", good, 1)
	r.Deliver("p1", good, 1)
	ghost := tagged("p9", 1, 2)
	r.Deliver("p1", ghost, 1)

	// p0 delivers cleanly; then p0 and p1 install view 2 with different
	// membership (view agreement violation).
	r.Deliver("p0", good, 1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0"))

	errs := r.Verify()
	for _, want := range []string{"duplication", "creation", "membership disagreement"} {
		if got := countViolations(errs, want); got != 1 {
			t.Errorf("want exactly 1 %q violation, got %d in %v", want, got, errs)
		}
	}
	// The three faults above are the only integrity/fifo/view breakages;
	// the ghost delivery additionally shows up to SVS-layer checks at
	// most once each. Pin the total so a regression that double-reports
	// (or swallows) a family is caught.
	if len(errs) < 3 {
		t.Fatalf("want at least the 3 distinct violations, got %v", errs)
	}
	if got := countViolations(errs, "integrity:"); got != 2 {
		t.Errorf("want 2 integrity violations (duplication + creation), got %d in %v", got, errs)
	}
	if got := countViolations(errs, "views:"); got != 1 {
		t.Errorf("want 1 view violation, got %d in %v", got, errs)
	}
	// The duplicate delivery is also, necessarily, a FIFO regression
	// (same sequence number twice) — exactly one such echo, no more.
	if got := countViolations(errs, "fifo:"); got != 1 {
		t.Errorf("want 1 fifo echo of the duplicate, got %d in %v", got, errs)
	}
}

// TestRecorderDuplicatePerProcess: duplication is per process — two
// different processes each delivering a message once is fine.
func TestRecorderDuplicatePerProcess(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m := tagged("p0", 1, 1)
	r.Multicast(m, 1)
	r.Deliver("p0", m, 1)
	r.Deliver("p1", m, 1)
	if errs := r.Verify(); countViolations(errs, "duplication") != 0 {
		t.Fatalf("cross-process delivery misreported as duplication: %v", errs)
	}
}

// TestRecorderCreationPerDelivery: each delivery of a never-multicast
// message is its own creation violation, even for the same message.
func TestRecorderCreationPerDelivery(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	ghost := tagged("p9", 3, 1)
	r.Deliver("p0", ghost, 1)
	r.Deliver("p1", ghost, 1)
	errs := r.Verify()
	if got := countViolations(errs, "creation"); got != 2 {
		t.Fatalf("want 2 creation violations (one per process), got %d in %v", got, errs)
	}
}

// TestRecorderViewDisagreementKeepsFirstMembership: the first recorded
// installation fixes a view's membership; every later disagreeing install
// is reported against it.
func TestRecorderViewDisagreementKeepsFirstMembership(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1", "p2"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p2", 2, ident.NewPIDs("p0", "p2"))
	errs := r.Verify()
	if got := countViolations(errs, "membership disagreement"); got != 2 {
		t.Fatalf("want 2 disagreement violations, got %d in %v", got, errs)
	}
}

// TestRecorderRegressingViewOrder: a process installing a view id not
// greater than its previous one is flagged even when memberships agree.
func TestRecorderRegressingViewOrder(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	members := ident.NewPIDs("p0", "p1")
	r.Install("p0", 3, members)
	r.Install("p0", 2, members)
	errs := r.Verify()
	if got := countViolations(errs, "installed view v2 after id 3"); got != 1 {
		t.Fatalf("view order regression not reported once: %v", errs)
	}
}
