package check

import (
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func tagged(s ident.PID, seq ident.Seq, tag uint32) obsolete.Msg {
	return obsolete.Msg{Sender: s, Seq: seq, Annot: obsolete.TagAnnot(tag)}
}

func hasViolation(errs []error, substr string) bool {
	for _, e := range errs {
		if strings.Contains(e.Error(), substr) {
			return true
		}
	}
	return false
}

func TestCleanExecutionVerifies(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("p0", 1, 7)
	m2 := tagged("p0", 2, 7)
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	for _, p := range []ident.PID{"p0", "p1"} {
		r.Deliver(p, m1, 1)
		r.Deliver(p, m2, 1)
		r.Install(p, 2, ident.NewPIDs("p0", "p1"))
	}
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("clean execution reported: %v", errs)
	}
}

func TestDetectsCreation(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	r.Deliver("p0", tagged("p9", 1, 1), 1)
	if errs := r.Verify(); !hasViolation(errs, "creation") {
		t.Fatalf("creation not detected: %v", errs)
	}
}

func TestDetectsDuplication(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m := tagged("p0", 1, 1)
	r.Multicast(m, 1)
	r.Deliver("p1", m, 1)
	r.Deliver("p1", m, 1)
	if errs := r.Verify(); !hasViolation(errs, "duplication") {
		t.Fatalf("duplication not detected: %v", errs)
	}
}

func TestDetectsFIFOViolation(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("p0", 1, 1)
	m2 := tagged("p0", 2, 2)
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	r.Deliver("p1", m2, 1)
	r.Deliver("p1", m1, 1)
	if errs := r.Verify(); !hasViolation(errs, "fifo:") {
		t.Fatalf("fifo violation not detected: %v", errs)
	}
}

func TestDetectsViewDisagreement(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0"))
	if errs := r.Verify(); !hasViolation(errs, "membership disagreement") {
		t.Fatalf("view disagreement not detected: %v", errs)
	}
}

func TestDetectsSVSViolation(t *testing.T) {
	// p0 delivers m1 in view 1; p1 installs view 2 without delivering m1
	// or anything covering it.
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("s", 1, 1)
	r.Multicast(m1, 1)
	r.Deliver("p0", m1, 1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	if errs := r.Verify(); !hasViolation(errs, "svs:") {
		t.Fatalf("svs violation not detected: %v", errs)
	}
}

func TestSVSAllowsCoveredOmission(t *testing.T) {
	// p1 omits m1 but delivers m2 ⊒ m1 before installing view 2: legal.
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("s", 1, 7)
	m2 := tagged("s", 2, 7)
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	r.Deliver("p0", m1, 1)
	r.Deliver("p0", m2, 1)
	r.Deliver("p1", m2, 1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("covered omission flagged: %v", errs)
	}
}

func TestSVSChainCoverage(t *testing.T) {
	// Coverage through a chain m1 ≺ m2 ≺ m3 with only m3 delivered at p1:
	// the k-enumeration window is too small to encode m1 ≺ m3 directly,
	// but the closure must accept the chain.
	const k = 1 // window of 1: only immediate predecessors encodable
	rel := obsolete.KEnumeration{K: k}
	tr := obsolete.NewKTracker(k)
	s1, a1 := tr.Next()
	s2, a2 := tr.Next(s1)
	s3, a3 := tr.Next(s2)
	m1 := obsolete.Msg{Sender: "s", Seq: s1, Annot: a1}
	m2 := obsolete.Msg{Sender: "s", Seq: s2, Annot: a2}
	m3 := obsolete.Msg{Sender: "s", Seq: s3, Annot: a3}
	if rel.Obsoletes(m1, m3) {
		t.Fatal("test premise broken: window should truncate m1 ≺ m3")
	}

	r := NewRecorder(rel)
	r.SetInitialView(1)
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	r.Multicast(m3, 1)
	r.Deliver("p0", m1, 1)
	r.Deliver("p0", m2, 1)
	r.Deliver("p0", m3, 1)
	r.Deliver("p1", m3, 1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("chain coverage not honoured: %v", errs)
	}
}

func TestDetectsFIFOSRViolation(t *testing.T) {
	// p1 delivers m3 but skipped m1, which nothing covers (different tag).
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("s", 1, 1)
	m2 := tagged("s", 2, 2)
	m3 := tagged("s", 3, 2) // covers m2 only
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	r.Multicast(m3, 1)
	r.Deliver("p0", m1, 1)
	r.Deliver("p0", m2, 1)
	r.Deliver("p0", m3, 1)
	r.Deliver("p1", m3, 1)
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	errs := r.Verify()
	if !hasViolation(errs, "fifo-sr:") && !hasViolation(errs, "svs:") {
		t.Fatalf("uncovered FIFO gap not detected: %v", errs)
	}
}

func TestFIFOSRAllowsCoveredGap(t *testing.T) {
	r := NewRecorder(obsolete.Tagging{})
	r.SetInitialView(1)
	m1 := tagged("s", 1, 5)
	m2 := tagged("s", 2, 5)
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	// p1 skips m1, delivers m2 which covers it.
	r.Deliver("p1", m2, 1)
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	if errs := r.Verify(); len(errs) != 0 {
		t.Fatalf("covered gap flagged: %v", errs)
	}
}

func TestVSStrictness(t *testing.T) {
	// Under the empty relation every omission is a violation.
	r := NewRecorder(obsolete.Empty{})
	r.SetInitialView(1)
	m1 := obsolete.Msg{Sender: "s", Seq: 1}
	m2 := obsolete.Msg{Sender: "s", Seq: 2}
	r.Multicast(m1, 1)
	r.Multicast(m2, 1)
	r.Deliver("p0", m1, 1)
	r.Deliver("p0", m2, 1)
	r.Deliver("p1", m2, 1) // omitted m1: with Empty nothing covers it
	r.Install("p0", 2, ident.NewPIDs("p0", "p1"))
	r.Install("p1", 2, ident.NewPIDs("p0", "p1"))
	errs := r.Verify()
	if len(errs) == 0 {
		t.Fatal("VS omission not detected under empty relation")
	}
}

func TestLogAccessor(t *testing.T) {
	r := NewRecorder(nil)
	m := obsolete.Msg{Sender: "s", Seq: 1}
	r.Multicast(m, 1)
	r.Deliver("p0", m, 1)
	log := r.Log("p0")
	if len(log) != 1 || log[0].Kind != EvDeliver {
		t.Fatalf("Log = %+v", log)
	}
	// Mutating the returned slice must not affect the recorder.
	log[0].Meta.Seq = 99
	if r.Log("p0")[0].Meta.Seq != 1 {
		t.Fatal("Log aliases recorder state")
	}
}
