package des

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := &Sim{}
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("end = %v", end)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := &Sim{}
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant order not FIFO: %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	s := &Sim{}
	var at1, at2 float64
	s.After(1, func() {
		at1 = s.Now()
		s.After(0.5, func() { at2 = s.Now() })
	})
	s.Run()
	if at1 != 1 || at2 != 1.5 {
		t.Fatalf("times: %v %v", at1, at2)
	}
}

func TestHalt(t *testing.T) {
	s := &Sim{}
	ran := 0
	s.At(1, func() { ran++; s.Halt() })
	s.At(2, func() { ran++ })
	s.Run()
	if ran != 1 {
		t.Fatalf("ran = %d after Halt", ran)
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := &Sim{}
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		s.At(at, func() { got = append(got, at) })
	}
	now := s.RunUntil(2.5)
	if now != 2.5 {
		t.Fatalf("now = %v", now)
	}
	if len(got) != 2 {
		t.Fatalf("got = %v", got)
	}
	s.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events lost: %v", got)
	}
}

func TestSchedulingIntoThePastPanics(t *testing.T) {
	s := &Sim{}
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("At(past) did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()

	defer func() {
		if recover() == nil {
			t.Error("After(negative) did not panic")
		}
	}()
	s.After(-1, func() {})
}
