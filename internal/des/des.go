// Package des is a minimal deterministic discrete-event simulation kernel:
// a virtual clock and a time-ordered event heap. The throughput study of
// §5.3 runs on it ("In evaluating the impact of purging we have used a
// high-level discrete event simulation").
//
// Events scheduled for the same instant fire in scheduling order, which
// keeps runs reproducible.
package des

import "container/heap"

// Sim is a simulation instance. The zero value is ready to use.
type Sim struct {
	now  float64
	seq  uint64
	pq   eventHeap
	halt bool
}

type event struct {
	at  float64
	seq uint64
	do  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() (out any) { old := *h; n := len(old); out = old[n-1]; *h = old[:n-1]; return }

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules f to run at absolute time t. Scheduling in the past panics:
// it is always a modelling bug.
func (s *Sim) At(t float64, f func()) {
	if t < s.now {
		panic("des: scheduling into the past")
	}
	s.seq++
	heap.Push(&s.pq, event{at: t, seq: s.seq, do: f})
}

// After schedules f to run d seconds from now.
func (s *Sim) After(d float64, f func()) {
	if d < 0 {
		panic("des: negative delay")
	}
	s.At(s.now+d, f)
}

// Halt stops the run after the current event returns.
func (s *Sim) Halt() { s.halt = true }

// Run executes events until the queue drains or Halt is called. It
// returns the final virtual time.
func (s *Sim) Run() float64 {
	s.halt = false
	for len(s.pq) > 0 && !s.halt {
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.at
		ev.do()
	}
	return s.now
}

// RunUntil executes events with timestamps ≤ t, then sets the clock to t.
func (s *Sim) RunUntil(t float64) float64 {
	s.halt = false
	for len(s.pq) > 0 && !s.halt && s.pq[0].at <= t {
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.at
		ev.do()
	}
	if !s.halt && s.now < t {
		s.now = t
	}
	return s.now
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.pq) }
