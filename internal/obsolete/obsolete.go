// Package obsolete implements message obsolescence: the application-supplied
// irreflexive partial order at the heart of Semantic View Synchrony
// (Pereira, Rodrigues, Oliveira — DSN 2002, §3.2 and §4).
//
// A message m is obsoleted by m' (written m ≺ m') when delivering m' makes
// the delivery of m unnecessary for application correctness. The protocol
// may then purge m from its buffers provided m' is (or will be) delivered.
//
// The package provides the three encodings discussed in §4.2 of the paper:
//
//   - Tagging: each message carries the integer tag of the single data item
//     it updates; a later update of the same item obsoletes earlier ones.
//   - Enumeration: each message explicitly enumerates the sequence numbers
//     of the (transitively) obsoleted predecessors.
//   - KEnumeration: each message carries a k-bit bitmap over its k closest
//     predecessors; transitive closure is computed with shift-OR at the
//     sender. This is the representation the paper evaluates.
//
// All encodings relate messages of a single sender only: tags, enumerations
// and bitmaps are interpreted relative to the sender's own sequence-number
// stream, exactly as in the paper ("tags are ... used in combination with
// the sender identification and sequence numbers", §4.2).
package obsolete

import (
	"repro/internal/ident"
)

// Msg is the protocol-level metadata of a multicast message: who sent it,
// its position in the sender's FIFO stream, and the encoding-specific
// obsolescence annotation supplied by the application at multicast time.
type Msg struct {
	Sender ident.PID
	Seq    ident.Seq
	Annot  []byte
}

// ID returns the globally unique identifier of the message.
func (m Msg) ID() MsgID { return MsgID{Sender: m.Sender, Seq: m.Seq} }

// MsgID uniquely identifies a multicast message.
type MsgID struct {
	Sender ident.PID
	Seq    ident.Seq
}

// Relation is an obsolescence relation over messages. Implementations must
// be pure functions of the message metadata: given the same pair of
// messages, Obsoletes must always return the same answer, on every process.
//
// Obsoletes(old, new) reports old ≺ new, i.e. "new makes old obsolete".
// Implementations must guarantee the partial-order laws of §3.2:
//
//   - irreflexive: never Obsoletes(m, m);
//   - antisymmetric: Obsoletes(a, b) ⇒ !Obsoletes(b, a);
//   - transitive as encoded: if the application declares a ≺ b and b ≺ c,
//     the annotation of c must also answer a ≺ c (the trackers in this
//     package compute this closure automatically).
type Relation interface {
	// Name identifies the encoding, for logs and experiment output.
	Name() string
	// Obsoletes reports whether new makes old obsolete (old ≺ new).
	Obsoletes(old, new Msg) bool
}

// SenderLocal is an optional capability of a Relation. A relation that
// implements it and reports true guarantees the FIFO sender-locality of
// §4.2: Obsoletes(old, new) implies old.Sender == new.Sender AND
// old.Seq < new.Seq. All encodings in this package have this property
// ("tags are ... used in combination with the sender identification and
// sequence numbers").
//
// Consumers (notably internal/queue) exploit the guarantee to index
// buffered messages by sender and only examine a sender's own entries
// when purging, instead of scanning the whole buffer.
type SenderLocal interface {
	Relation
	// SenderLocal reports whether the guarantee above holds. Returning
	// false is equivalent to not implementing the interface.
	SenderLocal() bool
}

// Windowed is an optional capability refining SenderLocal: a relation
// that implements it guarantees Obsoletes(old, new) implies
// new.Seq - old.Seq <= Window(). KEnumeration has this property by
// construction (a k-bit bitmap cannot reach past k predecessors), which
// bounds purge candidates to a constant-size window of the sender's
// stream. Window() <= 0 means unbounded.
type Windowed interface {
	Window() int
}

// Caps is the set of capabilities a Relation declares, resolved by CapsOf.
// An unsound declaration silently corrupts the purge index built on it;
// internal/relcheck (and the svs-check CLI) exhaustively verify declared
// capabilities against a finite model of the relation.
type Caps struct {
	// SenderLocal reports the sender-locality guarantee of the
	// SenderLocal interface.
	SenderLocal bool
	// Window is the declared purge-candidate window, 0 when unbounded or
	// undeclared. Only meaningful together with SenderLocal (Windowed
	// refines SenderLocal; consumers ignore a window without it).
	Window int
}

// CapsOf inspects rel for the optional capability interfaces and returns
// what it declares. A SenderLocal implementation reporting false counts as
// undeclared, as does a non-positive Window.
func CapsOf(rel Relation) Caps {
	var c Caps
	if sl, ok := rel.(SenderLocal); ok && sl.SenderLocal() {
		c.SenderLocal = true
		if w, ok := rel.(Windowed); ok {
			if win := w.Window(); win > 0 {
				c.Window = win
			}
		}
	}
	return c
}

// Empty is the empty obsolescence relation: no message ever obsoletes
// another. Running the SVS protocol with Empty yields classic View
// Synchrony (§3.2: "If no messages m, m' exist such that m ≺ m', SVS
// reduces to conventional VS").
type Empty struct{}

// Name implements Relation.
func (Empty) Name() string { return "empty" }

// Obsoletes implements Relation; it always reports false.
func (Empty) Obsoletes(_, _ Msg) bool { return false }

// SenderLocal implements the capability vacuously: the relation never
// holds, so in particular it never relates messages of distinct senders.
func (Empty) SenderLocal() bool { return true }

var _ SenderLocal = Empty{}

// Func adapts a plain function to the Relation interface. It is intended
// for tests and for applications with bespoke semantics.
type Func struct {
	Label string
	F     func(old, new Msg) bool
}

// Name implements Relation.
func (f Func) Name() string { return f.Label }

// Obsoletes implements Relation.
func (f Func) Obsoletes(old, new Msg) bool { return f.F(old, new) }

var _ Relation = Func{}

// CoveredBy reports whether m ⊑ n, the reflexive closure of the relation:
// m equals n or m ≺ n. This is the test the SVS protocol applies when
// deciding whether an already-buffered message covers an incoming one
// (transition t3 of the paper's Figure 1).
func CoveredBy(rel Relation, m, n Msg) bool {
	if m.Sender == n.Sender && m.Seq == n.Seq {
		return true
	}
	return rel.Obsoletes(m, n)
}
