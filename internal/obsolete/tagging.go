package obsolete

import "encoding/binary"

// Tagging is the item-tagging encoding of §4.2: every message carries the
// integer tag of the single data item it updates, and a message obsoletes
// every earlier message of the same sender carrying the same tag.
//
// Messages with an empty annotation are untagged: they never obsolete and
// are never obsoleted (creations, destructions, and other control traffic
// that "must be reliably delivered", §5.2).
//
// Tagging is the simplest encoding but, as the paper notes, it cannot
// express that one message obsoletes several unrelated earlier messages,
// which is what multi-item commits need — use KEnumeration for those.
type Tagging struct{}

// Name implements Relation.
func (Tagging) Name() string { return "tagging" }

// Obsoletes implements Relation: same sender, same tag, strictly earlier.
func (Tagging) Obsoletes(old, new Msg) bool {
	if old.Sender != new.Sender || old.Seq >= new.Seq {
		return false
	}
	ot, ok := TagOf(old)
	if !ok {
		return false
	}
	nt, ok := TagOf(new)
	if !ok {
		return false
	}
	return ot == nt
}

// SenderLocal implements the capability: tags are interpreted relative to
// the sender's own stream, and only strictly earlier messages are related.
func (Tagging) SenderLocal() bool { return true }

var _ SenderLocal = Tagging{}

// TagAnnot builds the annotation for a message updating the item with the
// given tag.
func TagAnnot(tag uint32) []byte {
	var p [4]byte
	binary.LittleEndian.PutUint32(p[:], tag)
	return p[:]
}

// NoTag is the annotation of an untagged (fully reliable) message.
func NoTag() []byte { return nil }

// TagOf extracts the item tag of m, reporting false for untagged messages.
func TagOf(m Msg) (uint32, bool) {
	if len(m.Annot) != 4 {
		return 0, false
	}
	return binary.LittleEndian.Uint32(m.Annot), true
}
