package obsolete

import "repro/internal/ident"

// Tracker is the sender-side annotation generator shared by the
// enumeration-style encodings: it allocates the next sequence number for a
// message that directly obsoletes the given earlier messages, returning
// the wire annotation with the transitive closure already folded in.
//
// KTracker and EnumTracker implement it.
type Tracker interface {
	Next(direct ...ident.Seq) (ident.Seq, []byte)
	Seq() ident.Seq
}

var (
	_ Tracker = (*KTracker)(nil)
	_ Tracker = (*EnumTracker)(nil)
)

// ItemTracker maps application data items onto an enumeration-style
// Tracker: it remembers the last update of every item so that a new update
// automatically obsoletes the previous one (the single-item pattern of
// §4.1), and supports the multi-item batch pattern through Batch hooks.
type ItemTracker struct {
	tr   Tracker
	last map[uint32]ident.Seq // item tag -> seq of its latest update
}

// NewItemTracker wraps tr.
func NewItemTracker(tr Tracker) *ItemTracker {
	return &ItemTracker{tr: tr, last: make(map[uint32]ident.Seq)}
}

// Seq returns the last sequence number allocated.
func (t *ItemTracker) Seq() ident.Seq { return t.tr.Seq() }

// Update allocates a message updating a single item: it obsoletes the
// item's previous update, if any, and becomes the item's latest update.
func (t *ItemTracker) Update(item uint32) (ident.Seq, []byte) {
	var direct []ident.Seq
	if prev, ok := t.last[item]; ok {
		direct = append(direct, prev)
	}
	seq, annot := t.tr.Next(direct...)
	t.last[item] = seq
	return seq, annot
}

// Reliable allocates a message that neither obsoletes nor can be
// obsoleted: creations, destructions and any other control content that
// "must be reliably delivered" (§5.2).
func (t *ItemTracker) Reliable() (ident.Seq, []byte) {
	return t.tr.Next()
}

// Create allocates the creation message of a new item. Creation messages
// are reliable; the item starts with no previous update.
func (t *ItemTracker) Create(item uint32) (ident.Seq, []byte) {
	delete(t.last, item)
	return t.tr.Next()
}

// Destroy allocates the destruction message of an item. Destruction
// messages are reliable; the item's update history is forgotten so a
// recreated item does not obsolete across its own destruction.
func (t *ItemTracker) Destroy(item uint32) (ident.Seq, []byte) {
	delete(t.last, item)
	return t.tr.Next()
}

// BatchMember allocates one update of a multi-item batch (§4.1). Batch
// members never carry obsolescence themselves — "only the commit messages,
// and not the individual updates, can make messages from previous batches
// obsolete" — but the tracker records the item's previous update so the
// commit can obsolete it.
//
// The returned prev is the sequence number the commit must obsolete
// (0 if the item had no earlier update). The new update becomes the item's
// latest only once Commit is called; callers pass the accumulated prevs
// and member seqs to Commit.
func (t *ItemTracker) BatchMember(item uint32) (seq ident.Seq, annot []byte, prev ident.Seq) {
	prev = t.last[item]
	seq, annot = t.tr.Next()
	t.last[item] = seq
	return seq, annot, prev
}

// Commit allocates the commit message of a batch: it directly obsoletes
// the previous updates of every item the batch touched (the prevs returned
// by BatchMember) and, optionally, earlier commits whose item sets are
// covered by this batch.
func (t *ItemTracker) Commit(prevs []ident.Seq) (ident.Seq, []byte) {
	direct := make([]ident.Seq, 0, len(prevs))
	for _, p := range prevs {
		if p != 0 {
			direct = append(direct, p)
		}
	}
	return t.tr.Next(direct...)
}
