package obsolete

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapSetGet(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("Count = %d, want 8", b.Count())
	}
	if b.Get(-1) || b.Get(1<<20) {
		t.Fatal("out-of-range Get should be false")
	}
}

func TestBitmapOrShift(t *testing.T) {
	tests := []struct {
		name  string
		src   []int
		shift int
		k     int
		want  []int
	}{
		{"zero shift", []int{0, 5}, 0, 64, []int{0, 5}},
		{"small shift", []int{0, 5}, 3, 64, []int{3, 8}},
		{"word boundary", []int{0, 63}, 1, 128, []int{1, 64}},
		{"cross word", []int{60}, 10, 128, []int{70}},
		{"exact word shift", []int{0, 1}, 64, 128, []int{64, 65}},
		{"drop beyond", []int{60}, 10, 64, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			src := NewBitmap(tc.k)
			for _, i := range tc.src {
				src.Set(i)
			}
			dst := NewBitmap(tc.k)
			dst.OrShift(src, tc.shift)
			dst.Trim(tc.k)
			for _, i := range tc.want {
				if !dst.Get(i) {
					t.Errorf("bit %d not set", i)
				}
			}
			if got, want := dst.Count(), len(tc.want); got != want {
				t.Errorf("Count = %d, want %d", got, want)
			}
		})
	}
}

func TestBitmapOrShiftMatchesPerBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const k = 192
	for trial := 0; trial < 200; trial++ {
		src := NewBitmap(k)
		for i := 0; i < k; i++ {
			if rng.Intn(3) == 0 {
				src.Set(i)
			}
		}
		shift := rng.Intn(k + 10)
		fast := NewBitmap(k)
		fast.OrShift(src, shift)
		fast.Trim(k)
		slow := NewBitmap(k)
		for i := 0; i < k; i++ {
			if src.Get(i) && i+shift < k {
				slow.Set(i + shift)
			}
		}
		for i := 0; i < k; i++ {
			if fast.Get(i) != slow.Get(i) {
				t.Fatalf("trial %d shift %d: bit %d fast=%v slow=%v",
					trial, shift, i, fast.Get(i), slow.Get(i))
			}
		}
	}
}

func TestBitmapBytesRoundTrip(t *testing.T) {
	f := func(words []uint64) bool {
		b := Bitmap(words)
		got := BitmapFromBytes(b.Bytes())
		// Compare bit by bit over the longer of the two.
		n := len(b) * 64
		for i := 0; i < n; i++ {
			if b.Get(i) != got.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapBytesStripsTrailingZeros(t *testing.T) {
	b := NewBitmap(128)
	if got := b.Bytes(); len(got) != 0 {
		t.Fatalf("empty bitmap serialises to %d bytes, want 0", len(got))
	}
	b.Set(3)
	if got := b.Bytes(); len(got) != 1 {
		t.Fatalf("one low bit serialises to %d bytes, want 1", len(got))
	}
}

func TestBitmapTrim(t *testing.T) {
	b := NewBitmap(128)
	for i := 0; i < 128; i++ {
		b.Set(i)
	}
	b.Trim(70)
	if b.Count() != 70 {
		t.Fatalf("Count after Trim(70) = %d, want 70", b.Count())
	}
	if b.Get(70) || b.Get(127) {
		t.Fatal("bits beyond trim point survive")
	}
	if !b.Get(69) {
		t.Fatal("bit below trim point cleared")
	}
}

func TestBitFromBytes(t *testing.T) {
	b := NewBitmap(64)
	b.Set(0)
	b.Set(9)
	b.Set(42)
	raw := b.Bytes()
	for i := 0; i < 64; i++ {
		if got, want := bitFromBytes(raw, i), b.Get(i); got != want {
			t.Fatalf("bitFromBytes(%d) = %v, want %v", i, got, want)
		}
	}
	if bitFromBytes(raw, -1) || bitFromBytes(raw, 1000) {
		t.Fatal("out of range bitFromBytes should be false")
	}
}

func TestBitmapClone(t *testing.T) {
	b := NewBitmap(64)
	b.Set(5)
	c := b.Clone()
	c.Set(6)
	if b.Get(6) {
		t.Fatal("Clone shares storage")
	}
	if !c.Get(5) {
		t.Fatal("Clone lost bit")
	}
}

func TestBitmapEmpty(t *testing.T) {
	b := NewBitmap(64)
	if !b.Empty() {
		t.Fatal("fresh bitmap not Empty")
	}
	b.Set(63)
	if b.Empty() {
		t.Fatal("bitmap with bit set reports Empty")
	}
}
