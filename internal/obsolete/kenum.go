package obsolete

import (
	"fmt"

	"repro/internal/ident"
)

// KEnumeration is the k-enumeration encoding of §4.2, the representation
// the paper recommends and evaluates: every message carries a k-bit bitmap
// over the k messages preceding it in the sender's stream. If bit n is
// set, the message obsoletes its (n+1)-th predecessor.
//
// Formally, with m.sn the sequence number and m.bm the bitmap:
//
//	m ⊑ m'  iff  m'.sn - k ≤ m.sn < m'.sn  and  m'.bm[m'.sn - m.sn - 1]
//
// (the paper indexes bitmaps from 1; we index from 0).
//
// Transitivity is the sender's responsibility: KTracker composes bitmaps
// with shift-OR so the annotation of every message already contains the
// transitive closure, truncated to the window k.
type KEnumeration struct {
	// K is the window size in messages. The paper's evaluation uses
	// k = 2 × buffer size (§5.2).
	K int
}

// Name implements Relation.
func (r KEnumeration) Name() string { return fmt.Sprintf("k-enumeration(k=%d)", r.K) }

// Obsoletes implements Relation.
func (r KEnumeration) Obsoletes(old, new Msg) bool {
	if old.Sender != new.Sender || old.Seq >= new.Seq {
		return false
	}
	d := uint64(new.Seq - old.Seq)
	if d > uint64(r.K) {
		return false
	}
	return bitFromBytes(new.Annot, int(d-1))
}

// SenderLocal implements the capability: bitmaps index the sender's own
// predecessors only.
func (r KEnumeration) SenderLocal() bool { return true }

// Window implements the Windowed capability: a k-bit bitmap cannot reach
// further back than k predecessors, so purge candidates for an incoming
// message with sequence number s are confined to [s-k, s) — the k-th
// predecessor (delta exactly k, bit k-1) is still reachable.
func (r KEnumeration) Window() int { return r.K }

var (
	_ SenderLocal = KEnumeration{}
	_ Windowed    = KEnumeration{}
)

// KTracker allocates sequence numbers and computes transitively closed
// k-enumeration bitmaps at the sender. It keeps the bitmaps of the last k
// messages in a ring so that closure is a single shift-OR per direct
// predecessor.
type KTracker struct {
	k   int
	seq ident.Seq
	// ring[(seq-1) % k] holds the bitmap of message seq while it remains
	// inside the window.
	ring []Bitmap
}

// NewKTracker returns a tracker with window k. k must be positive.
func NewKTracker(k int) *KTracker {
	if k <= 0 {
		panic("obsolete: k must be positive")
	}
	t := &KTracker{k: k, ring: make([]Bitmap, k)}
	for i := range t.ring {
		t.ring[i] = NewBitmap(k)
	}
	return t
}

// K returns the window size.
func (t *KTracker) K() int { return t.k }

// Seq returns the last sequence number allocated.
func (t *KTracker) Seq() ident.Seq { return t.seq }

// Next allocates the next sequence number for a message that directly
// obsoletes the messages with the given sequence numbers. It returns the
// new sequence number and the wire annotation containing the transitive
// closure (bounded by the window).
//
// Direct predecessors outside the window are silently dropped, mirroring
// the paper: "it is very unlikely that two messages far apart in the
// message stream can be found simultaneously in the same buffer".
func (t *KTracker) Next(direct ...ident.Seq) (ident.Seq, []byte) {
	t.seq++
	seq := t.seq
	bm := t.ring[int(uint64(seq-1))%t.k]
	for i := range bm {
		bm[i] = 0
	}
	for _, d := range direct {
		if d == 0 || d >= seq || uint64(seq-d) > uint64(t.k) {
			continue
		}
		delta := int(seq - d)
		bm.Set(delta - 1)
		// Fold in d's own closure, shifted into seq's frame: a message at
		// distance i from d sits at distance delta+i from seq.
		bm.OrShift(t.ring[int(uint64(d-1))%t.k], delta)
	}
	bm.Trim(t.k)
	return seq, bm.Bytes()
}

// Skip fast-forwards the tracker to sequence number to, so the next
// message is allocated to+1. It exists for a process resuming its own
// stream after a rejoin: the engine's frontier tells it where its earlier
// incarnation left off (core.Stats.LastSent), but the tracker holding the
// bitmaps of those messages is gone. The ring is cleared, so nothing
// allocated after Skip claims to obsolete anything at or before to —
// safe (claiming nothing is always sound), at the cost of one window of
// lost purging opportunity. Skipping backwards is a no-op.
func (t *KTracker) Skip(to ident.Seq) {
	if to <= t.seq {
		return
	}
	t.seq = to
	for i := range t.ring {
		for j := range t.ring[i] {
			t.ring[i][j] = 0
		}
	}
}

// Annot returns the wire annotation of an already-allocated recent message
// (one of the last k). It reports false if seq has fallen out of the
// window. Useful for diagnostics and tests.
func (t *KTracker) Annot(seq ident.Seq) ([]byte, bool) {
	if seq == 0 || seq > t.seq || uint64(t.seq-seq) >= uint64(t.k) {
		return nil, false
	}
	return t.ring[int(uint64(seq-1))%t.k].Bytes(), true
}
