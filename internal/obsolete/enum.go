package obsolete

import (
	"encoding/binary"
	"sort"

	"repro/internal/ident"
)

// Enumeration is the message-enumeration encoding of §4.2: every message
// explicitly lists the sequence numbers of the earlier messages (of the
// same sender) that it makes obsolete. The list must already contain the
// transitive closure of the relation; EnumTracker computes it.
//
// The annotation encodes the list compactly as uvarint deltas
// (new.Seq - old.Seq), sorted ascending.
type Enumeration struct{}

// Name implements Relation.
func (Enumeration) Name() string { return "enumeration" }

// Obsoletes implements Relation.
func (Enumeration) Obsoletes(old, new Msg) bool {
	if old.Sender != new.Sender || old.Seq >= new.Seq {
		return false
	}
	want := uint64(new.Seq - old.Seq)
	p := new.Annot
	for len(p) > 0 {
		d, n := binary.Uvarint(p)
		if n <= 0 {
			return false
		}
		if d == want {
			return true
		}
		p = p[n:]
	}
	return false
}

// SenderLocal implements the capability: enumerated deltas are relative to
// the sender's own sequence stream, and deltas are strictly positive.
func (Enumeration) SenderLocal() bool { return true }

var _ SenderLocal = Enumeration{}

// EnumAnnot builds the enumeration annotation of a message with sequence
// number seq obsoleting the given earlier sequence numbers. The caller is
// responsible for supplying the transitive closure (or using EnumTracker).
func EnumAnnot(seq ident.Seq, preds []ident.Seq) []byte {
	if len(preds) == 0 {
		return nil
	}
	ds := make([]uint64, 0, len(preds))
	for _, p := range preds {
		if p >= seq {
			continue
		}
		ds = append(ds, uint64(seq-p))
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	out := make([]byte, 0, len(ds)*2)
	var buf [binary.MaxVarintLen64]byte
	for _, d := range ds {
		n := binary.PutUvarint(buf[:], d)
		out = append(out, buf[:n]...)
	}
	return out
}

// EnumPreds decodes the sequence numbers enumerated by m, in ascending
// order.
func EnumPreds(m Msg) []ident.Seq {
	var out []ident.Seq
	p := m.Annot
	for len(p) > 0 {
		d, n := binary.Uvarint(p)
		if n <= 0 {
			break
		}
		if uint64(m.Seq) > d {
			out = append(out, m.Seq-ident.Seq(d))
		}
		p = p[n:]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnumTracker assigns sequence numbers and computes transitively closed
// enumeration annotations at the sender. As the paper observes, "only the
// recent messages from the enumeration need to be carried by each message
// without any significant impact on the purging efficiency": the tracker
// keeps a sliding window of the last Window messages' predecessor sets and
// drops anything older.
type EnumTracker struct {
	// Window bounds how far back enumerated predecessors may reach.
	window int
	seq    ident.Seq
	// preds[s] is the closed predecessor set of recent message s.
	preds map[ident.Seq][]ident.Seq
}

// NewEnumTracker returns a tracker keeping a window of the given size
// (how many recent messages remain enumerable). Window must be positive.
func NewEnumTracker(window int) *EnumTracker {
	if window <= 0 {
		panic("obsolete: enumeration window must be positive")
	}
	return &EnumTracker{
		window: window,
		preds:  make(map[ident.Seq][]ident.Seq),
	}
}

// Next allocates the next sequence number for a message that directly
// obsoletes the messages with the given sequence numbers, and returns the
// number together with the transitively closed annotation.
func (t *EnumTracker) Next(direct ...ident.Seq) (ident.Seq, []byte) {
	t.seq++
	seq := t.seq
	closed := map[ident.Seq]struct{}{}
	lo := ident.Seq(1)
	if uint64(seq) > uint64(t.window) {
		lo = seq - ident.Seq(t.window)
	}
	for _, d := range direct {
		if d >= seq || d < lo {
			continue
		}
		closed[d] = struct{}{}
		for _, dd := range t.preds[d] {
			if dd >= lo {
				closed[dd] = struct{}{}
			}
		}
	}
	set := make([]ident.Seq, 0, len(closed))
	for s := range closed {
		set = append(set, s)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	t.preds[seq] = set
	delete(t.preds, seq-ident.Seq(t.window)-1)
	return seq, EnumAnnot(seq, set)
}

// Seq returns the last sequence number allocated.
func (t *EnumTracker) Seq() ident.Seq { return t.seq }
