package obsolete

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
)

func msg(sender ident.PID, seq ident.Seq, annot []byte) Msg {
	return Msg{Sender: sender, Seq: seq, Annot: annot}
}

func TestEmptyRelation(t *testing.T) {
	r := Empty{}
	a := msg("p", 1, nil)
	b := msg("p", 2, nil)
	if r.Obsoletes(a, b) || r.Obsoletes(b, a) || r.Obsoletes(a, a) {
		t.Fatal("Empty relation must never relate messages")
	}
	if r.Name() != "empty" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestTagging(t *testing.T) {
	r := Tagging{}
	tests := []struct {
		name     string
		old, new Msg
		want     bool
	}{
		{"same item later", msg("p", 1, TagAnnot(7)), msg("p", 2, TagAnnot(7)), true},
		{"same item much later", msg("p", 1, TagAnnot(7)), msg("p", 900, TagAnnot(7)), true},
		{"different item", msg("p", 1, TagAnnot(7)), msg("p", 2, TagAnnot(8)), false},
		{"wrong order", msg("p", 2, TagAnnot(7)), msg("p", 1, TagAnnot(7)), false},
		{"same seq", msg("p", 1, TagAnnot(7)), msg("p", 1, TagAnnot(7)), false},
		{"different sender", msg("p", 1, TagAnnot(7)), msg("q", 2, TagAnnot(7)), false},
		{"old untagged", msg("p", 1, NoTag()), msg("p", 2, TagAnnot(7)), false},
		{"new untagged", msg("p", 1, TagAnnot(7)), msg("p", 2, NoTag()), false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := r.Obsoletes(tc.old, tc.new); got != tc.want {
				t.Fatalf("Obsoletes = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestTagOf(t *testing.T) {
	m := msg("p", 1, TagAnnot(123456))
	tag, ok := TagOf(m)
	if !ok || tag != 123456 {
		t.Fatalf("TagOf = %d,%v want 123456,true", tag, ok)
	}
	if _, ok := TagOf(msg("p", 1, nil)); ok {
		t.Fatal("TagOf of untagged message should report false")
	}
}

func TestKEnumerationDirect(t *testing.T) {
	r := KEnumeration{K: 8}
	tr := NewKTracker(8)

	// m1, m2 (obsoletes m1), m3 (obsoletes nothing), m4 (obsoletes m3).
	s1, a1 := tr.Next()
	s2, a2 := tr.Next(s1)
	s3, a3 := tr.Next()
	s4, a4 := tr.Next(s3)

	m1 := msg("p", s1, a1)
	m2 := msg("p", s2, a2)
	m3 := msg("p", s3, a3)
	m4 := msg("p", s4, a4)

	if !r.Obsoletes(m1, m2) {
		t.Error("m1 ≺ m2 expected")
	}
	if r.Obsoletes(m2, m1) {
		t.Error("m2 ≺ m1 unexpected (antisymmetry)")
	}
	if r.Obsoletes(m1, m3) || r.Obsoletes(m2, m3) {
		t.Error("m3 should obsolete nothing")
	}
	if !r.Obsoletes(m3, m4) {
		t.Error("m3 ≺ m4 expected")
	}
	if r.Obsoletes(m1, m4) || r.Obsoletes(m2, m4) {
		t.Error("m4 unrelated to m1/m2")
	}
	if r.Obsoletes(m1, msg("q", m2.Seq, m2.Annot)) {
		t.Error("cross-sender obsolescence must be false")
	}
}

func TestKTrackerTransitiveClosure(t *testing.T) {
	r := KEnumeration{K: 16}
	tr := NewKTracker(16)

	s1, a1 := tr.Next()
	s2, _ := tr.Next(s1)
	s3, a3 := tr.Next(s2) // directly obsoletes m2, transitively m1

	m1 := msg("p", s1, a1)
	m3 := msg("p", s3, a3)
	if !r.Obsoletes(m1, m3) {
		t.Fatal("transitive closure m1 ≺ m3 not encoded")
	}
}

// TestKTrackerNextZeroPredecessor: seq 0 is not a message; passing it as
// a direct predecessor (the natural idiom tr.Next(tr.Seq()) on a fresh
// tracker) must be dropped, not crash with a negative ring index.
func TestKTrackerNextZeroPredecessor(t *testing.T) {
	tr := NewKTracker(16)
	s1, a1 := tr.Next(tr.Seq()) // Seq() == 0 here
	if s1 != 1 {
		t.Fatalf("first seq = %d, want 1", s1)
	}
	m1 := msg("p", s1, a1)
	s2, a2 := tr.Next(s1)
	if !(KEnumeration{K: 16}).Obsoletes(m1, msg("p", s2, a2)) {
		t.Fatal("chain after a zero predecessor lost m1 ≺ m2")
	}
}

func TestKTrackerWindowTruncation(t *testing.T) {
	const k = 4
	r := KEnumeration{K: k}
	tr := NewKTracker(k)

	s1, a1 := tr.Next()
	m1 := msg("p", s1, a1)
	// Advance beyond the window.
	var lastSeq ident.Seq
	var lastAnnot []byte
	for i := 0; i < k+2; i++ {
		lastSeq, lastAnnot = tr.Next(s1)
	}
	last := msg("p", lastSeq, lastAnnot)
	if r.Obsoletes(m1, last) {
		t.Fatal("obsolescence beyond window k must be dropped")
	}
}

func TestKTrackerChainWithinWindow(t *testing.T) {
	// A chain m1 ≺ m2 ≺ ... ≺ mk within the window must be fully closed.
	const k = 32
	r := KEnumeration{K: k}
	tr := NewKTracker(k)
	type rec struct {
		m Msg
	}
	var chain []rec
	var prev ident.Seq
	for i := 0; i < k; i++ {
		var s ident.Seq
		var a []byte
		if prev == 0 {
			s, a = tr.Next()
		} else {
			s, a = tr.Next(prev)
		}
		chain = append(chain, rec{msg("p", s, a)})
		prev = s
	}
	lastm := chain[len(chain)-1].m
	for i := 0; i < len(chain)-1; i++ {
		d := uint64(lastm.Seq - chain[i].m.Seq)
		if d > uint64(k) {
			continue
		}
		if !r.Obsoletes(chain[i].m, lastm) {
			t.Fatalf("chain element %d (distance %d) not obsoleted by last", i, d)
		}
	}
}

// TestKEnumerationPartialOrderLaws generates random obsolescence streams
// and checks the §3.2 laws hold for the encoded relation: irreflexivity,
// antisymmetry and (window-bounded) transitivity.
func TestKEnumerationPartialOrderLaws(t *testing.T) {
	const k = 24
	const n = 200
	r := KEnumeration{K: k}
	rng := rand.New(rand.NewSource(7))
	tr := NewKTracker(k)

	msgs := make([]Msg, 0, n)
	for i := 0; i < n; i++ {
		var direct []ident.Seq
		for j := range msgs {
			d := len(msgs) - j
			if d <= k && rng.Intn(10) == 0 {
				direct = append(direct, msgs[j].Seq)
			}
		}
		s, a := tr.Next(direct...)
		msgs = append(msgs, msg("p", s, a))
	}

	for i := range msgs {
		if r.Obsoletes(msgs[i], msgs[i]) {
			t.Fatalf("irreflexivity violated at %d", i)
		}
		for j := range msgs {
			if i == j {
				continue
			}
			if r.Obsoletes(msgs[i], msgs[j]) && r.Obsoletes(msgs[j], msgs[i]) {
				t.Fatalf("antisymmetry violated at %d,%d", i, j)
			}
		}
	}
	// Window-bounded transitivity: a ≺ b, b ≺ c, dist(a,c) ≤ k ⇒ a ≺ c.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+k; j++ {
			if !r.Obsoletes(msgs[i], msgs[j]) {
				continue
			}
			for l := j + 1; l < n && l <= i+k; l++ {
				if r.Obsoletes(msgs[j], msgs[l]) && !r.Obsoletes(msgs[i], msgs[l]) {
					t.Fatalf("transitivity violated: %d ≺ %d ≺ %d but not %d ≺ %d",
						i, j, l, i, l)
				}
			}
		}
	}
}

func TestEnumeration(t *testing.T) {
	r := Enumeration{}
	tr := NewEnumTracker(16)

	s1, a1 := tr.Next()
	s2, _ := tr.Next(s1)
	s3, a3 := tr.Next(s2)

	m1 := msg("p", s1, a1)
	m3 := msg("p", s3, a3)
	if !r.Obsoletes(m1, m3) {
		t.Fatal("enum transitive closure m1 ≺ m3 not encoded")
	}
	if !r.Obsoletes(msg("p", s2, nil), m3) {
		t.Fatal("direct predecessor not encoded")
	}
	if r.Obsoletes(m3, m1) || r.Obsoletes(m1, m1) {
		t.Fatal("order laws violated")
	}
	if r.Obsoletes(msg("q", s1, a1), m3) {
		t.Fatal("cross-sender must be false")
	}
}

func TestEnumPredsRoundTrip(t *testing.T) {
	annot := EnumAnnot(10, []ident.Seq{3, 7, 9})
	got := EnumPreds(msg("p", 10, annot))
	want := []ident.Seq{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("EnumPreds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EnumPreds = %v, want %v", got, want)
		}
	}
}

func TestEnumTrackerWindow(t *testing.T) {
	r := Enumeration{}
	tr := NewEnumTracker(3)
	s1, _ := tr.Next()
	for i := 0; i < 5; i++ {
		tr.Next()
	}
	s7, a7 := tr.Next(s1) // s1 is far outside the window of 3
	if r.Obsoletes(msg("p", s1, nil), msg("p", s7, a7)) {
		t.Fatal("enumeration beyond window must be dropped")
	}
}

func TestEnumAndKEnumAgree(t *testing.T) {
	// Drive both trackers with the same random direct-pred streams and
	// verify the encoded relations agree inside the common window.
	const k = 16
	const n = 120
	rng := rand.New(rand.NewSource(99))
	kt := NewKTracker(k)
	et := NewEnumTracker(k)
	kr := KEnumeration{K: k}
	er := Enumeration{}

	var kmsgs, emsgs []Msg
	for i := 0; i < n; i++ {
		var direct []ident.Seq
		for d := 1; d <= k && d <= i; d++ {
			if rng.Intn(8) == 0 {
				direct = append(direct, ident.Seq(i+1-d))
			}
		}
		ks, ka := kt.Next(direct...)
		es, ea := et.Next(direct...)
		if ks != es {
			t.Fatalf("sequence divergence %d vs %d", ks, es)
		}
		kmsgs = append(kmsgs, msg("p", ks, ka))
		emsgs = append(emsgs, msg("p", es, ea))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n && j <= i+k; j++ {
			kg := kr.Obsoletes(kmsgs[i], kmsgs[j])
			eg := er.Obsoletes(emsgs[i], emsgs[j])
			if kg != eg {
				t.Fatalf("encodings disagree on (%d,%d): kenum=%v enum=%v", i, j, kg, eg)
			}
		}
	}
}

func TestCoveredBy(t *testing.T) {
	r := Tagging{}
	a := msg("p", 1, TagAnnot(5))
	b := msg("p", 2, TagAnnot(5))
	c := msg("p", 3, TagAnnot(6))
	if !CoveredBy(r, a, a) {
		t.Fatal("CoveredBy must be reflexive")
	}
	if !CoveredBy(r, a, b) {
		t.Fatal("a ⊑ b expected")
	}
	if CoveredBy(r, a, c) {
		t.Fatal("a ⊑ c unexpected")
	}
}

func TestFuncRelation(t *testing.T) {
	r := Func{Label: "test", F: func(old, new Msg) bool {
		return old.Sender == new.Sender && old.Seq < new.Seq
	}}
	if r.Name() != "test" {
		t.Fatalf("Name = %q", r.Name())
	}
	if !r.Obsoletes(msg("p", 1, nil), msg("p", 2, nil)) {
		t.Fatal("Func relation not applied")
	}
}

func TestItemTrackerSingleItem(t *testing.T) {
	const k = 8
	r := KEnumeration{K: k}
	it := NewItemTracker(NewKTracker(k))

	s1, a1 := it.Update(100)
	s2, a2 := it.Update(200)
	s3, a3 := it.Update(100) // obsoletes s1

	m1, m2, m3 := msg("p", s1, a1), msg("p", s2, a2), msg("p", s3, a3)
	if !r.Obsoletes(m1, m3) {
		t.Fatal("second update of item 100 must obsolete the first")
	}
	if r.Obsoletes(m2, m3) {
		t.Fatal("update of item 200 must not be obsoleted by item 100")
	}
}

func TestItemTrackerReliableAndLifecycle(t *testing.T) {
	const k = 8
	r := KEnumeration{K: k}
	it := NewItemTracker(NewKTracker(k))

	su, au := it.Update(1)
	sr, ar := it.Reliable()
	sd, ad := it.Destroy(1)
	sc, ac := it.Create(1)
	s2, a2 := it.Update(1)

	mu := msg("p", su, au)
	for _, m := range []Msg{msg("p", sr, ar), msg("p", sd, ad), msg("p", sc, ac)} {
		if r.Obsoletes(mu, m) {
			t.Fatalf("reliable/lifecycle message %d must not obsolete updates", m.Seq)
		}
	}
	// After destroy+create, the first update of the new incarnation must
	// not obsolete the previous incarnation's update.
	if r.Obsoletes(mu, msg("p", s2, a2)) {
		t.Fatal("update across destroy/create must not obsolete")
	}
}

func TestItemTrackerBatchCommit(t *testing.T) {
	const k = 16
	r := KEnumeration{K: k}
	it := NewItemTracker(NewKTracker(k))

	// Single updates establish history: U(a,1), U(b,1), then a pseudo
	// commit C(1) is not needed since they are single-item updates.
	sa1, aa1 := it.Update(1) // U(a,1)
	sb1, ab1 := it.Update(2) // U(b,1)

	// Batch: U(b,2), U(c,2), C(2). Figure 2 of the paper: C(2), not
	// U(b,2), makes U(b,1) obsolete.
	sb2, ab2, prevB := it.BatchMember(2)
	sc2, ac2, prevC := it.BatchMember(3)
	scm, acm := it.Commit([]ident.Seq{prevB, prevC})

	mb1 := msg("p", sb1, ab1)
	mb2 := msg("p", sb2, ab2)
	mc2 := msg("p", sc2, ac2)
	mcm := msg("p", scm, acm)

	if r.Obsoletes(mb1, mb2) {
		t.Fatal("batch member must not obsolete previous update (only the commit may)")
	}
	if !r.Obsoletes(mb1, mcm) {
		t.Fatal("commit must obsolete the previous update of item b")
	}
	if r.Obsoletes(mb2, mcm) || r.Obsoletes(mc2, mcm) {
		t.Fatal("commit must not obsolete its own batch members")
	}
	if r.Obsoletes(msg("p", sa1, aa1), mcm) {
		t.Fatal("commit must not obsolete updates of items outside the batch")
	}

	// A later single update of b obsoletes the batch member U(b,2).
	sb3, ab3 := it.Update(2)
	if !r.Obsoletes(mb2, msg("p", sb3, ab3)) {
		t.Fatal("later single update must obsolete the batch member")
	}
}

func TestItemTrackerBatchSameItemTwice(t *testing.T) {
	const k = 8
	r := KEnumeration{K: k}
	it := NewItemTracker(NewKTracker(k))

	s1, a1, prev1 := it.BatchMember(7)
	s2, _, prev2 := it.BatchMember(7)
	if prev1 != 0 {
		t.Fatalf("first member prev = %d, want 0", prev1)
	}
	if prev2 != s1 {
		t.Fatalf("second member prev = %d, want %d", prev2, s1)
	}
	scm, acm := it.Commit([]ident.Seq{prev1, prev2})
	if !r.Obsoletes(msg("p", s1, a1), msg("p", scm, acm)) {
		t.Fatal("commit must obsolete the superseded member of its own batch")
	}
	_ = s2
}

func TestKTrackerAnnot(t *testing.T) {
	tr := NewKTracker(4)
	s1, a1 := tr.Next()
	got, ok := tr.Annot(s1)
	if !ok {
		t.Fatal("Annot of fresh message should be available")
	}
	if string(got) != string(a1) {
		t.Fatalf("Annot = %x, want %x", got, a1)
	}
	for i := 0; i < 5; i++ {
		tr.Next()
	}
	if _, ok := tr.Annot(s1); ok {
		t.Fatal("Annot beyond window should be unavailable")
	}
	if _, ok := tr.Annot(0); ok {
		t.Fatal("Annot(0) should be unavailable")
	}
}
