package obsolete

import "math/bits"

// Bitmap is a little-endian bit set used by the k-enumeration encoding.
// Bit i of the bitmap attached to a message with sequence number s means
// "this message obsoletes the message with sequence number s-1-i".
//
// Bitmaps are plain []uint64 slices so they can be manipulated with shift
// and OR only, which is precisely the property §4.2 of the paper exploits:
// "the k-enumeration ... makes it very easy to compute the representation
// of transitive obsolescence relations using only shift and binary or
// operators".
//
// Capability audit (svs-check): Bitmap is an annotation representation,
// not a Relation — it never answers Obsoletes and therefore declares no
// SenderLocal/Windowed capabilities of its own and never reaches the scan
// path. The relation interpreting these bitmaps is KEnumeration (kenum.go),
// which declares both capabilities; they are exhaustively verified by
// internal/relcheck against the examples/kenum.yaml model in CI, alongside
// a deliberate window-overreach counterexample (examples/unsound-window.yaml)
// proving the checker would catch an overreaching bitmap interpretation.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap able to hold k bits.
func NewBitmap(k int) Bitmap {
	return make(Bitmap, (k+63)/64)
}

// Set sets bit i. It panics if i is outside the bitmap.
func (b Bitmap) Set(i int) {
	b[i/64] |= 1 << (uint(i) % 64)
}

// Get reports whether bit i is set. Out-of-range bits read as false.
func (b Bitmap) Get(i int) bool {
	if i < 0 || i/64 >= len(b) {
		return false
	}
	return b[i/64]&(1<<(uint(i)%64)) != 0
}

// Or folds src into b (b |= src). Bits of src beyond len(b) are dropped.
func (b Bitmap) Or(src Bitmap) {
	n := len(b)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		b[i] |= src[i]
	}
}

// OrShift folds src shifted left by shift bits into b (b |= src << shift).
// Bits shifted beyond len(b) are dropped; this implements the window
// truncation of the k-enumeration: predecessors further than k away fall
// off the map.
func (b Bitmap) OrShift(src Bitmap, shift int) {
	if shift < 0 {
		panic("obsolete: negative shift")
	}
	word, off := shift/64, uint(shift)%64
	for i := 0; i < len(src); i++ {
		lo := i + word
		if lo >= len(b) {
			break
		}
		b[lo] |= src[i] << off
		if off != 0 && lo+1 < len(b) {
			b[lo+1] |= src[i] >> (64 - off)
		}
	}
}

// Trim clears every bit at position k or beyond, enforcing the window.
func (b Bitmap) Trim(k int) {
	word, off := k/64, uint(k)%64
	for i := range b {
		switch {
		case i > word:
			b[i] = 0
		case i == word:
			b[i] &= (1 << off) - 1
		}
	}
}

// Empty reports whether no bit is set.
func (b Bitmap) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of b.
func (b Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(b))
	copy(out, b)
	return out
}

// Bytes serialises b to the compact little-endian wire form used in
// message annotations. Trailing zero bytes are stripped so that sparse
// bitmaps stay short on the wire.
func (b Bitmap) Bytes() []byte {
	out := make([]byte, 0, len(b)*8)
	for _, w := range b {
		for i := 0; i < 8; i++ {
			out = append(out, byte(w>>(8*uint(i))))
		}
	}
	for len(out) > 0 && out[len(out)-1] == 0 {
		out = out[:len(out)-1]
	}
	return out
}

// BitmapFromBytes parses the wire form produced by Bytes.
func BitmapFromBytes(p []byte) Bitmap {
	b := make(Bitmap, (len(p)+7)/8)
	for i, c := range p {
		b[i/8] |= uint64(c) << (8 * uint(i%8))
	}
	return b
}

// bitFromBytes reads bit i directly from the wire form, avoiding an
// allocation on the hot purge path.
func bitFromBytes(p []byte, i int) bool {
	if i < 0 || i/8 >= len(p) {
		return false
	}
	return p[i/8]&(1<<(uint(i)%8)) != 0
}
