// Package codec implements the hand-rolled binary wire encoding of the
// protocol: a small set of varint-based primitives plus a type registry
// that lets a transport round-trip `any`-typed envelope payloads without
// the per-message reflection cost of encoding/gob.
//
// Encoding primitives are append-style (`Append*`) so callers can reuse
// scratch buffers across messages; decoding goes through Reader, a strict
// cursor over a []byte with a sticky error, bounded lengths (a claimed
// length never exceeds the remaining input, so malformed input cannot
// force large allocations) and explicit nil/empty distinction for byte
// slices and collections.
//
// Wire layout conventions:
//
//   - unsigned integers: LEB128 uvarint (encoding/binary);
//   - signed integers: zig-zag varint;
//   - strings: uvarint length + raw bytes (never nil);
//   - byte slices: uvarint(0) for nil, uvarint(len+1) + raw bytes otherwise;
//   - collections (slices, maps): uvarint(0) for nil, uvarint(n+1) for n
//     elements otherwise (AppendCount / Reader.Count);
//   - registered messages: one TypeID byte followed by the type's encoding
//     (Marshal / Unmarshal).
package codec

import (
	"encoding/binary"
	"errors"
)

// Errors reported by Reader.
var (
	// ErrTruncated is the sticky Reader error: the input ended inside a
	// field, a varint was malformed, or a claimed length exceeded the
	// remaining input.
	ErrTruncated = errors.New("codec: truncated or malformed input")
	// ErrTrailing is returned by strict decoders when input remains after
	// the last field.
	ErrTrailing = errors.New("codec: trailing bytes after message")
)

// AppendUvarint appends v as a LEB128 uvarint.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendVarint appends v as a zig-zag varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendByte appends a single raw byte.
func AppendByte(dst []byte, b byte) []byte {
	return append(dst, b)
}

// AppendString appends s as uvarint length + raw bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends p, preserving the nil/empty distinction: nil encodes
// as uvarint 0, a slice of n bytes as uvarint n+1 followed by the bytes.
func AppendBytes(dst []byte, p []byte) []byte {
	if p == nil {
		return append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(p))+1)
	return append(dst, p...)
}

// AppendCount appends the size of a collection, preserving the nil/empty
// distinction: nil encodes as uvarint 0, n elements as uvarint n+1.
func AppendCount(dst []byte, n int, isNil bool) []byte {
	if isNil {
		return append(dst, 0)
	}
	return binary.AppendUvarint(dst, uint64(n)+1)
}

// Reader is a strict decoding cursor over one encoded message. Methods
// return zero values once an error has occurred; check Err (or use the
// registry's Unmarshal, which does) after decoding.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over p. The Reader aliases p; byte slices
// returned by Bytes are copies, so p may be reused once decoding is done.
func NewReader(p []byte) *Reader {
	return &Reader{buf: p}
}

// Reset re-points r at p, clearing any error.
func (r *Reader) Reset(p []byte) {
	r.buf, r.off, r.err = p, 0, nil
}

// Err returns the sticky decode error, if any.
func (r *Reader) Err() error { return r.err }

// Len returns the number of undecoded bytes remaining.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Uvarint decodes a LEB128 uvarint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a zig-zag varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.err = ErrTruncated
		return 0
	}
	r.off += n
	return v
}

// Byte decodes one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.err = ErrTruncated
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// take returns the next n bytes of the input, aliasing the buffer.
func (r *Reader) take(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) {
		r.err = ErrTruncated
		return nil
	}
	p := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return p
}

// String decodes a string.
func (r *Reader) String() string {
	return string(r.take(r.Uvarint()))
}

// Bytes decodes a byte slice written by AppendBytes. The result is a copy
// (it owns its memory) and preserves nil vs empty.
func (r *Reader) Bytes() []byte {
	n := r.Uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	p := r.take(n - 1)
	if r.err != nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// Count decodes a collection size written by AppendCount. The claimed
// count is bounded by the remaining input length in bytes (every element
// encodes to at least one byte). That bound is per-byte, not per-element:
// decoders of multi-byte elements must clamp the count before using it as
// a pre-allocation capacity, or a corrupt count amplifies into an
// oversized up-front allocation.
func (r *Reader) Count() (n int, isNil bool) {
	v := r.Uvarint()
	if v == 0 || r.err != nil {
		return 0, true
	}
	v--
	if v > uint64(r.Len()) {
		r.err = ErrTruncated
		return 0, true
	}
	return int(v), false
}

// Close marks the end of a message: any trailing bytes are an error.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Len() != 0 {
		r.err = ErrTrailing
	}
	return r.err
}
