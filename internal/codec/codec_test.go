package codec

import (
	"bytes"
	"math"
	"testing"
)

func TestPrimitivesRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, math.MaxUint64)
	b = AppendVarint(b, -1)
	b = AppendVarint(b, math.MinInt64)
	b = AppendVarint(b, math.MaxInt64)
	b = AppendByte(b, 0xAB)
	b = AppendString(b, "")
	b = AppendString(b, "hello, 世界")
	b = AppendBytes(b, nil)
	b = AppendBytes(b, []byte{})
	b = AppendBytes(b, []byte{1, 2, 3})

	r := NewReader(b)
	if v := r.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Uvarint(); v != math.MaxUint64 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := r.Varint(); v != -1 {
		t.Fatalf("varint = %d", v)
	}
	if v := r.Varint(); v != math.MinInt64 {
		t.Fatalf("varint = %d", v)
	}
	if v := r.Varint(); v != math.MaxInt64 {
		t.Fatalf("varint = %d", v)
	}
	if v := r.Byte(); v != 0xAB {
		t.Fatalf("byte = %x", v)
	}
	if v := r.String(); v != "" {
		t.Fatalf("string = %q", v)
	}
	if v := r.String(); v != "hello, 世界" {
		t.Fatalf("string = %q", v)
	}
	if v := r.Bytes(); v != nil {
		t.Fatalf("nil bytes = %v", v)
	}
	if v := r.Bytes(); v == nil || len(v) != 0 {
		t.Fatalf("empty bytes = %v", v)
	}
	if v := r.Bytes(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", v)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCountRoundTrip(t *testing.T) {
	var b []byte
	b = AppendCount(b, 0, true)
	b = AppendCount(b, 0, false)
	// Three one-byte elements so the count bound holds.
	b = AppendCount(b, 3, false)
	b = append(b, 1, 2, 3)

	r := NewReader(b)
	if n, isNil := r.Count(); !isNil || n != 0 {
		t.Fatalf("nil count = %d,%v", n, isNil)
	}
	if n, isNil := r.Count(); isNil || n != 0 {
		t.Fatalf("empty count = %d,%v", n, isNil)
	}
	if n, isNil := r.Count(); isNil || n != 3 {
		t.Fatalf("count = %d,%v", n, isNil)
	}
}

func TestReaderBoundsClaimedLengths(t *testing.T) {
	// A claimed string length of 2^40 over 2 bytes of input must error,
	// not allocate.
	b := AppendUvarint(nil, 1<<40)
	b = append(b, 'x', 'y')
	r := NewReader(b)
	if s := r.String(); s != "" || r.Err() == nil {
		t.Fatalf("oversized string accepted: %q err=%v", s, r.Err())
	}

	// Same for a collection count.
	b = AppendUvarint(nil, 1<<40)
	r = NewReader(b)
	if n, isNil := r.Count(); !isNil || n != 0 || r.Err() == nil {
		t.Fatalf("oversized count accepted: %d err=%v", n, r.Err())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader(nil)
	if r.Byte() != 0 || r.Err() == nil {
		t.Fatal("read past end must set the error")
	}
	// Every later read stays zero-valued.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.String() != "" || r.Bytes() != nil {
		t.Fatal("reads after error must return zero values")
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close must report the sticky error")
	}
}

func TestReaderTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	r.Byte()
	if err := r.Close(); err != ErrTrailing {
		t.Fatalf("Close = %v, want ErrTrailing", err)
	}
}

// testMsg exercises the registry.
type testMsg struct {
	A uint64
	B string
	C []byte
}

func init() {
	Register[testMsg](TTestB,
		func(dst []byte, m testMsg) []byte {
			dst = AppendUvarint(dst, m.A)
			dst = AppendString(dst, m.B)
			return AppendBytes(dst, m.C)
		},
		func(r *Reader) (testMsg, error) {
			var m testMsg
			m.A = r.Uvarint()
			m.B = r.String()
			m.C = r.Bytes()
			return m, r.Err()
		})
}

func TestRegistryRoundTrip(t *testing.T) {
	in := testMsg{A: 42, B: "x", C: []byte{9}}
	b, err := Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := out.(testMsg)
	if !ok || got.A != in.A || got.B != in.B || !bytes.Equal(got.C, in.C) {
		t.Fatalf("got %#v, want %#v", out, in)
	}
}

func TestRegistryUnknown(t *testing.T) {
	type never struct{ X int }
	if _, err := Marshal(nil, never{}); err == nil {
		t.Fatal("marshal of unregistered type should fail")
	}
	if !Registered(testMsg{}) || Registered(never{}) {
		t.Fatal("Registered wrong")
	}
	if _, err := UnmarshalBytes([]byte{0x7F}); err == nil {
		t.Fatal("unknown type id accepted")
	}
	if _, err := UnmarshalBytes(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// FuzzUnmarshalNoPanic feeds arbitrary bytes through the registry decoder:
// it must reject or accept, never panic or over-allocate.
func FuzzUnmarshalNoPanic(f *testing.F) {
	seed, _ := Marshal(nil, testMsg{A: 7, B: "seed", C: []byte{1, 2}})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{byte(TTestB), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = UnmarshalBytes(data)
	})
}
