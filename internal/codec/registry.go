package codec

import (
	"fmt"
	"reflect"
)

// TypeID tags a registered wire type on the wire. IDs are allocated
// centrally here so independent packages cannot collide.
type TypeID byte

const (
	invalidType TypeID = iota
	// TDataMsg .. TStableMsg are the SVS protocol messages (internal/core).
	TDataMsg
	TInitMsg
	TPredMsg
	TCreditMsg
	TStableMsg
	// TConsensusMsg is the consensus round message (internal/consensus).
	TConsensusMsg
	// TBeat is the failure-detector heartbeat (internal/fd).
	TBeat
	// TJoinReqMsg and TStateMsg are the dynamic-membership handshake
	// (internal/core): a join request from a process outside the group and
	// the semantic state transfer that admits it.
	TJoinReqMsg
	TStateMsg
	// TDataBatchMsg coalesces a run of DataMsgs from one sender into a
	// single envelope (internal/core's batched data plane).
	TDataBatchMsg
	// TProbeMsg .. TMergePredMsg are the partition-healing protocol
	// (internal/core): discovery probes, minority split declarations, merge
	// announcements and the bidirectional merge state contributions.
	TProbeMsg
	TSplitMsg
	TMergeMsg
	TMergePredMsg

	// TTestA and TTestB are reserved for package tests.
	TTestA TypeID = 250
	TTestB TypeID = 251
)

type entry struct {
	typ reflect.Type
	enc func(dst []byte, v any) []byte
	dec func(r *Reader) (any, error)
}

var (
	regByID   [256]*entry
	regByType = make(map[reflect.Type]TypeID)
)

// Register binds id to T with its encode/decode pair. It must be called
// from init functions only (the registry is read without locking after
// program initialisation) and panics on duplicate ids or types.
func Register[T any](id TypeID, enc func(dst []byte, v T) []byte, dec func(r *Reader) (T, error)) {
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		panic("codec: Register of interface type")
	}
	if id == invalidType {
		panic("codec: Register with invalid type id 0")
	}
	if prev := regByID[id]; prev != nil {
		panic(fmt.Sprintf("codec: type id %d already registered to %v", id, prev.typ))
	}
	if prev, dup := regByType[t]; dup {
		panic(fmt.Sprintf("codec: type %v already registered as id %d", t, prev))
	}
	regByID[id] = &entry{
		typ: t,
		enc: func(dst []byte, v any) []byte { return enc(dst, v.(T)) },
		dec: func(r *Reader) (any, error) { return dec(r) },
	}
	regByType[t] = id
}

// Registered reports whether msg's concrete type has an encoder.
func Registered(msg any) bool {
	_, ok := regByType[reflect.TypeOf(msg)]
	return ok
}

// Marshal appends the TypeID tag and encoding of msg to dst. dst is
// returned unchanged when msg's type is not registered.
func Marshal(dst []byte, msg any) ([]byte, error) {
	id, ok := regByType[reflect.TypeOf(msg)]
	if !ok {
		return dst, fmt.Errorf("codec: unregistered type %T", msg)
	}
	dst = append(dst, byte(id))
	return regByID[id].enc(dst, msg), nil
}

// Unmarshal decodes one type-tagged message from r. It does not require r
// to be exhausted afterwards, so several messages can share one buffer.
func Unmarshal(r *Reader) (any, error) {
	id := r.Byte()
	if err := r.Err(); err != nil {
		return nil, err
	}
	e := regByID[id]
	if e == nil {
		return nil, fmt.Errorf("codec: unknown type id %d", id)
	}
	v, err := e.dec(r)
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return v, nil
}

// UnmarshalBytes decodes exactly one type-tagged message occupying all of p.
func UnmarshalBytes(p []byte) (any, error) {
	r := NewReader(p)
	v, err := Unmarshal(r)
	if err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	return v, nil
}
