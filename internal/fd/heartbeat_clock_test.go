package fd

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/transport"
)

// TestHeartbeatDeterministicUnderFakeClock drives the heartbeat detector
// with an obs.Fake clock and proves suspicion timing is exact: with
// Interval=20ms and Timeout=100ms, a peer silent since t=0 is suspected at
// the t=120ms tick (the first beat tick where now-lastSeen > Timeout) and
// at no earlier tick. The beats the detector sends each tick double as
// synchronisation points: receiving the beat of tick N guarantees the
// check of every tick before N has completed, so the "not yet suspected"
// assertions are race-free.
func TestHeartbeatDeterministicUnderFakeClock(t *testing.T) {
	net := transport.NewMemNetwork()
	epA, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	defer epB.Close()

	start := time.Unix(0, 0)
	clock := obs.NewFake(start)
	reg := obs.NewRegistry()
	h := NewHeartbeat(epA, ident.NewPIDs("a", "b"), HeartbeatOptions{
		Interval: 20 * time.Millisecond,
		Timeout:  100 * time.Millisecond,
		Obs:      obs.New(clock, reg, nil),
	})
	h.Start()
	defer h.Stop()
	clock.BlockUntil(1) // the beat ticker is created inside beatLoop

	beats := epB.Inbox(ident.NodeGroup, transport.FailureDetector)
	tick := func() time.Time {
		clock.Advance(20 * time.Millisecond)
		select {
		case env := <-beats:
			if env.From != "a" {
				t.Fatalf("beat from %s, want a", env.From)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("no beat after advancing to %v", clock.Now().Sub(start))
		}
		return clock.Now()
	}

	// Ticks at 20..100ms: 100-0 = 100 is not > 100, so b must not be
	// suspected at any of them. After the beat of tick N arrives, every
	// check before tick N has run; the clock is frozen, so no later check
	// can race the assertion ahead of the next Advance.
	for i := 0; i < 5; i++ {
		at := tick()
		if h.Suspected("b") {
			t.Fatalf("b suspected at virtual %v, before the timeout", at.Sub(start))
		}
	}

	// Tick at 120ms: 120 > 100 — the suspicion must fire, exactly now.
	at := tick()
	select {
	case ev := <-h.Events():
		if ev.P != "b" || !ev.Suspected {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("suspicion never fired after the timeout tick")
	}
	if got := at.Sub(start); got != 120*time.Millisecond {
		t.Fatalf("suspicion tick at virtual %v, want 120ms", got)
	}
	if !h.Suspected("b") {
		t.Fatal("b not suspected after the suspicion event")
	}

	// A beat from b revises the suspicion and stamps lastSeen from the
	// fake clock.
	if err := epB.Send("a", ident.NodeGroup, transport.FailureDetector, Beat{}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-h.Events():
		if ev.P != "b" || ev.Suspected {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("revival never fired after b's beat")
	}

	// The metrics saw exactly one suspicion and one revival, and the
	// per-peer gauge is back to 0.
	snap := reg.Snapshot()
	if snap.Counters["fd_suspicions_total"] != 1 || snap.Counters["fd_revivals_total"] != 1 {
		t.Fatalf("suspicion counters wrong: %v", snap.Counters)
	}
	if snap.Gauges["fd_suspected{peer=b}"] != 0 {
		t.Fatalf("suspected gauge wrong: %v", snap.Gauges)
	}

	// Silence b again: the next suspicion lands at lastSeen+Timeout
	// rounded up to a tick — beat received at 120ms, so the 240ms tick
	// (240-120 = 120 > 100) and not the 220ms one.
	for clock.Now().Sub(start) < 220*time.Millisecond {
		at = tick()
		if h.Suspected("b") {
			t.Fatalf("b re-suspected at virtual %v, before lastSeen+timeout", at.Sub(start))
		}
	}
	at = tick()
	select {
	case ev := <-h.Events():
		if ev.P != "b" || !ev.Suspected {
			t.Fatalf("unexpected event %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second suspicion never fired")
	}
	if got := at.Sub(start); got != 240*time.Millisecond {
		t.Fatalf("second suspicion tick at virtual %v, want 240ms", got)
	}
}
