package fd

import (
	"testing"
	"time"

	"repro/internal/ident"
)

func recvEvent(t *testing.T, in <-chan Event) Event {
	t.Helper()
	select {
	case e, ok := <-in:
		if !ok {
			t.Fatal("event channel closed")
		}
		return e
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}
	}
}

// TestFanoutRepublishesToAllTaps: every tap sees every base event, and
// queries delegate to the base detector.
func TestFanoutRepublishesToAllTaps(t *testing.T) {
	base := NewManual()
	defer base.Stop()
	f := NewFanout(base)
	defer f.Stop()

	t1, t2 := f.Tap(), f.Tap()
	base.Suspect("p3")
	for _, tap := range []*Tap{t1, t2} {
		if e := recvEvent(t, tap.Events()); e.P != "p3" || !e.Suspected {
			t.Fatalf("got %+v, want suspicion of p3", e)
		}
		if !tap.Suspected("p3") || !tap.Suspects().Contains("p3") {
			t.Fatal("tap queries must delegate to the base detector")
		}
	}
	base.Restore("p3")
	for _, tap := range []*Tap{t1, t2} {
		if e := recvEvent(t, tap.Events()); e.P != "p3" || e.Suspected {
			t.Fatalf("got %+v, want revision of p3", e)
		}
	}
}

// TestFanoutTapReplaysExistingSuspicions: a tap created after the base
// detector already suspects a peer still sees the suspicion as an event
// — a group joining a node while a shared peer is down must be able to
// auto-evict it.
func TestFanoutTapReplaysExistingSuspicions(t *testing.T) {
	base := NewManual()
	defer base.Stop()
	base.Suspect("dead1")
	base.Suspect("dead2")
	f := NewFanout(base)
	defer f.Stop()

	late := f.Tap()
	defer late.Stop()
	got := map[ident.PID]bool{}
	for i := 0; i < 2; i++ {
		e := recvEvent(t, late.Events())
		if !e.Suspected {
			t.Fatalf("got revision %+v, want suspicions", e)
		}
		got[e.P] = true
	}
	if !got["dead1"] || !got["dead2"] {
		t.Fatalf("replayed suspicions = %v, want dead1 and dead2", got)
	}

	// Revisions after the replay flow through as usual. The base's own
	// pre-fan-out events may still be pumped as duplicate suspicions
	// first — consumers tolerate those, and so does this test.
	base.Restore("dead1")
	for {
		e := recvEvent(t, late.Events())
		if e.Suspected {
			continue // duplicate of a replayed suspicion
		}
		if e.P != "dead1" {
			t.Fatalf("got %+v, want revision of dead1", e)
		}
		break
	}
}

// TestFanoutTapStopDetachesOnly: stopping one tap leaves the others and
// the base running.
func TestFanoutTapStopDetachesOnly(t *testing.T) {
	base := NewManual()
	defer base.Stop()
	f := NewFanout(base)
	defer f.Stop()

	t1, t2 := f.Tap(), f.Tap()
	t1.Stop()
	t1.Stop() // idempotent
	if _, ok := <-t1.Events(); ok {
		t.Fatal("stopped tap's events not closed")
	}
	base.Suspect("q")
	if e := recvEvent(t, t2.Events()); e.P != "q" {
		t.Fatalf("surviving tap got %+v", e)
	}
}

// TestFanoutStopClosesTaps: Fanout.Stop closes every tap but leaves the
// base detector usable; taps created afterwards are born closed.
func TestFanoutStopClosesTaps(t *testing.T) {
	base := NewManual()
	defer base.Stop()
	f := NewFanout(base)
	tap := f.Tap()
	f.Stop()
	f.Stop() // idempotent
	if _, ok := <-tap.Events(); ok {
		t.Fatal("tap events not closed by Fanout.Stop")
	}
	base.Suspect("r")
	if !base.Suspected("r") {
		t.Fatal("base detector must survive Fanout.Stop")
	}
	late := f.Tap()
	if _, ok := <-late.Events(); ok {
		t.Fatal("tap created after Stop must be closed")
	}
}
