package fd

import (
	"sync"

	"repro/internal/ident"
)

// Fanout shares one failure detector between many consumers. A Detector's
// Events channel is single-consumer, but a node hosting many SVS groups
// runs a single heartbeat detector whose suspicions every group must see.
// Fanout consumes the base detector's event stream once and republishes
// each event to every live Tap; suspicion *queries* go straight to the
// base detector, so all taps always agree with it.
//
// The Fanout owns neither the base detector nor its transport: stopping
// the Fanout stops the republishing (and closes every tap) but leaves the
// base detector running for its owner to stop.
type Fanout struct {
	base Detector

	mu     sync.Mutex
	taps   map[*Tap]struct{}
	closed bool

	done chan struct{}
	wg   sync.WaitGroup
}

// NewFanout starts republishing base's events. It becomes the sole
// consumer of base.Events().
func NewFanout(base Detector) *Fanout {
	f := &Fanout{
		base: base,
		taps: make(map[*Tap]struct{}),
		done: make(chan struct{}),
	}
	f.wg.Add(1)
	go f.pump()
	return f
}

func (f *Fanout) pump() {
	defer f.wg.Done()
	in := f.base.Events()
	for {
		select {
		case <-f.done:
			return
		case e, ok := <-in:
			if !ok {
				return
			}
			f.mu.Lock()
			for t := range f.taps {
				t.n.emit(e)
			}
			f.mu.Unlock()
		}
	}
}

// Tap returns a new per-consumer view of the shared detector. A tap
// created after Stop is already closed (its Events channel is closed).
//
// The base detector's *current* suspicions are replayed into the new tap
// as suspect events: a group created while a shared peer is already down
// must still see the suspicion, even though the base detector emitted it
// before the tap existed. The replay happens under the fan-out lock, so
// it cannot interleave with pumped events; a suspicion in flight in the
// base's channel may be delivered twice, which consumers tolerate
// (repeated suspect events are idempotent for the protocol engine).
func (f *Fanout) Tap() *Tap {
	t := &Tap{f: f, n: newNotifier()}
	f.mu.Lock()
	closed := f.closed
	if !closed {
		f.taps[t] = struct{}{}
		for _, p := range f.base.Suspects() {
			t.n.emit(Event{P: p, Suspected: true})
		}
	}
	f.mu.Unlock()
	if closed {
		t.n.close()
	}
	return t
}

func (f *Fanout) remove(t *Tap) {
	f.mu.Lock()
	delete(f.taps, t)
	f.mu.Unlock()
}

// Stop ends the republishing and stops every tap. The base detector is
// left running.
func (f *Fanout) Stop() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return
	}
	f.closed = true
	taps := make([]*Tap, 0, len(f.taps))
	for t := range f.taps {
		taps = append(taps, t)
	}
	close(f.done)
	f.mu.Unlock()
	f.wg.Wait()
	for _, t := range taps {
		t.Stop()
	}
}

// Tap is one consumer's handle on a shared detector. It implements
// Detector: queries delegate to the shared base, events arrive on the
// tap's own channel. Stopping a tap detaches it from the Fanout without
// affecting the base detector or other taps.
type Tap struct {
	f    *Fanout
	n    *notifier
	once sync.Once
}

var _ Detector = (*Tap)(nil)

// Suspected implements Detector.
func (t *Tap) Suspected(p ident.PID) bool { return t.f.base.Suspected(p) }

// Suspects implements Detector.
func (t *Tap) Suspects() ident.PIDs { return t.f.base.Suspects() }

// Events implements Detector.
func (t *Tap) Events() <-chan Event { return t.n.out }

// Stop implements Detector: it detaches this tap only.
func (t *Tap) Stop() {
	t.once.Do(func() {
		t.f.remove(t)
		t.n.close()
	})
}
