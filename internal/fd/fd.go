// Package fd provides the unreliable failure detector of the paper's
// system model (§3.1): an oracle that maintains a per-process suspicion
// set, in the style of Chandra & Toueg. The detector may be wrong
// (suspicions can be revised); the protocol and the consensus module only
// rely on it for liveness, never for safety.
//
// Two implementations are provided: Heartbeat, a timeout-based detector
// running over the transport, and Manual, a deterministic detector driven
// explicitly by tests.
package fd

import (
	"sync"

	"repro/internal/ident"
)

// Event reports a suspicion change.
type Event struct {
	P ident.PID
	// Suspected is true when p became suspected, false when the suspicion
	// was revised.
	Suspected bool
}

// Detector is the failure detector oracle.
//
// Events returns a channel of suspicion changes intended for a single
// consumer (the protocol engine); Suspected may be polled concurrently by
// anyone (the consensus module does).
type Detector interface {
	Suspected(p ident.PID) bool
	Suspects() ident.PIDs
	Events() <-chan Event
	Stop()
}

// notifier is an unbounded event fan-in: emits never block, the consumer
// drains a channel.
type notifier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
	out    chan Event
	done   chan struct{}
	wg     sync.WaitGroup
}

func newNotifier() *notifier {
	n := &notifier{
		out:  make(chan Event),
		done: make(chan struct{}),
	}
	n.cond = sync.NewCond(&n.mu)
	n.wg.Add(1)
	go n.pump()
	return n
}

func (n *notifier) emit(e Event) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.events = append(n.events, e)
	n.cond.Signal()
}

func (n *notifier) close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	n.cond.Signal()
	n.mu.Unlock()
	n.wg.Wait()
}

func (n *notifier) pump() {
	defer n.wg.Done()
	defer close(n.out)
	for {
		n.mu.Lock()
		for len(n.events) == 0 && !n.closed {
			n.cond.Wait()
		}
		if n.closed {
			n.mu.Unlock()
			return
		}
		e := n.events[0]
		copy(n.events, n.events[1:])
		n.events = n.events[:len(n.events)-1]
		n.mu.Unlock()

		select {
		case n.out <- e:
		case <-n.done:
			return
		}
	}
}

// Manual is a deterministic detector driven by test code.
type Manual struct {
	mu   sync.Mutex
	susp map[ident.PID]bool
	n    *notifier
}

var _ Detector = (*Manual)(nil)

// NewManual returns a detector suspecting nobody.
func NewManual() *Manual {
	return &Manual{susp: make(map[ident.PID]bool), n: newNotifier()}
}

// Suspect marks p as suspected.
func (m *Manual) Suspect(p ident.PID) {
	m.mu.Lock()
	changed := !m.susp[p]
	m.susp[p] = true
	m.mu.Unlock()
	if changed {
		m.n.emit(Event{P: p, Suspected: true})
	}
}

// Restore revises the suspicion of p.
func (m *Manual) Restore(p ident.PID) {
	m.mu.Lock()
	changed := m.susp[p]
	delete(m.susp, p)
	m.mu.Unlock()
	if changed {
		m.n.emit(Event{P: p, Suspected: false})
	}
}

// Suspected implements Detector.
func (m *Manual) Suspected(p ident.PID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.susp[p]
}

// Suspects implements Detector.
func (m *Manual) Suspects() ident.PIDs {
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := make([]ident.PID, 0, len(m.susp))
	for p := range m.susp {
		ps = append(ps, p)
	}
	return ident.NewPIDs(ps...)
}

// Events implements Detector.
func (m *Manual) Events() <-chan Event { return m.n.out }

// Stop implements Detector.
func (m *Manual) Stop() { m.n.close() }
