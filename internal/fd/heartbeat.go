package fd

import (
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Beat is the heartbeat wire message.
type Beat struct{}

func init() {
	codec.Register[Beat](codec.TBeat,
		func(dst []byte, _ Beat) []byte { return dst },
		func(_ *codec.Reader) (Beat, error) { return Beat{}, nil })
}

// HeartbeatOptions configures the heartbeat detector.
type HeartbeatOptions struct {
	// Interval between heartbeats. Default 20ms.
	Interval time.Duration
	// Timeout after which a silent peer is suspected. Default 5×Interval.
	Timeout time.Duration
	// Obs supplies the clock, metrics and event sink. All timestamps and
	// the beat ticker come from its Clock, so a deterministic clock makes
	// suspicion timing exactly reproducible (see the fake-clock tests).
	// Nil disables metrics and events and uses the wall clock.
	Obs *obs.Obs
}

func (o *HeartbeatOptions) defaults() {
	if o.Interval <= 0 {
		o.Interval = 20 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * o.Interval
	}
}

// hbMetrics are the heartbeat detector's instruments. Nil instruments
// (no registry) record nothing.
type hbMetrics struct {
	beatsSent  *obs.Counter
	beatsRecv  *obs.Counter
	sendErrors *obs.Counter
	suspicions *obs.Counter
	revivals   *obs.Counter
	beatGap    *obs.Histogram // observed gap between a peer's beats
}

// Heartbeat is a timeout-based eventually-accurate failure detector: each
// process periodically beats to its peers; a peer silent for longer than
// the timeout is suspected, and the suspicion is revised as soon as a beat
// arrives again (◇S style: finitely many mistakes once timing stabilises).
//
// Heartbeats are node-scoped, not group-scoped: they travel in
// ident.NodeGroup on the FailureDetector channel, so one detector serves
// every group the node hosts (see fd.Fanout for sharing its events).
type Heartbeat struct {
	ep    transport.Endpoint
	opts  HeartbeatOptions
	clock obs.Clock
	ob    *obs.Obs
	m     hbMetrics
	ev    *obs.Events

	mu        sync.Mutex
	peers     ident.PIDs
	lastSeen  map[ident.PID]time.Time
	susp      map[ident.PID]bool
	suspGauge map[ident.PID]*obs.Gauge // per-peer suspected state (0/1)

	n    *notifier
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

var _ Detector = (*Heartbeat)(nil)

// NewHeartbeat returns a detector monitoring peers through ep. Call Start
// to begin beating.
func NewHeartbeat(ep transport.Endpoint, peers ident.PIDs, opts HeartbeatOptions) *Heartbeat {
	opts.defaults()
	ob := opts.Obs
	h := &Heartbeat{
		ep:    ep,
		opts:  opts,
		clock: ob.Clock(),
		ob:    ob,
		ev:    ob.Events(),
		m: hbMetrics{
			beatsSent:  ob.Counter("fd_beats_sent_total"),
			beatsRecv:  ob.Counter("fd_beats_recv_total"),
			sendErrors: ob.Counter("fd_beat_send_errors_total"),
			suspicions: ob.Counter("fd_suspicions_total"),
			revivals:   ob.Counter("fd_revivals_total"),
			beatGap:    ob.Histogram("fd_beat_gap_seconds", obs.DurationBuckets),
		},
		lastSeen:  make(map[ident.PID]time.Time),
		susp:      make(map[ident.PID]bool),
		suspGauge: make(map[ident.PID]*obs.Gauge),
		n:         newNotifier(),
		done:      make(chan struct{}),
	}
	h.peers = peers.Clone().Remove(ep.Self())
	for _, p := range h.peers {
		h.suspGauge[p] = h.peerGauge(p)
	}
	return h
}

// peerGauge resolves the per-peer suspected gauge (nil without a registry).
func (h *Heartbeat) peerGauge(p ident.PID) *obs.Gauge {
	return h.ob.GaugeL("fd_suspected", obs.L("peer", string(p)))
}

// Start launches the beat and monitor goroutines.
func (h *Heartbeat) Start() {
	now := h.clock.Now()
	h.mu.Lock()
	for _, p := range h.peers {
		h.lastSeen[p] = now
	}
	h.mu.Unlock()
	h.wg.Add(2)
	go h.beatLoop()
	go h.recvLoop()
}

// SetPeers replaces the monitored set (e.g. after a view change). Newly
// added peers start unsuspected with a fresh grace period.
func (h *Heartbeat) SetPeers(peers ident.PIDs) {
	now := h.clock.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	next := peers.Clone().Remove(h.ep.Self())
	for _, p := range next {
		if !h.peers.Contains(p) {
			h.lastSeen[p] = now
			h.suspGauge[p] = h.peerGauge(p)
		}
	}
	for _, p := range h.peers {
		if !next.Contains(p) {
			delete(h.lastSeen, p)
			delete(h.susp, p)
			h.suspGauge[p].Set(0)
			delete(h.suspGauge, p)
		}
	}
	h.peers = next
}

func (h *Heartbeat) beatLoop() {
	defer h.wg.Done()
	ticker := h.clock.NewTicker(h.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-ticker.C():
			h.mu.Lock()
			peers := h.peers.Clone()
			h.mu.Unlock()
			for _, p := range peers {
				// Best effort: a failed send is just a missing beat, but it
				// is counted — a climbing error rate is a dead link.
				if err := h.ep.Send(p, ident.NodeGroup, transport.FailureDetector, Beat{}); err != nil {
					h.m.sendErrors.Inc()
				} else {
					h.m.beatsSent.Inc()
				}
			}
			h.check(h.clock.Now())
		}
	}
}

func (h *Heartbeat) recvLoop() {
	defer h.wg.Done()
	inbox := h.ep.Inbox(ident.NodeGroup, transport.FailureDetector)
	for {
		select {
		case <-h.done:
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			h.alive(env.From)
		}
	}
}

func (h *Heartbeat) alive(p ident.PID) {
	now := h.clock.Now()
	h.mu.Lock()
	if !h.peers.Contains(p) {
		h.mu.Unlock()
		return
	}
	if last, ok := h.lastSeen[p]; ok {
		h.m.beatGap.ObserveDuration(now.Sub(last))
	}
	h.lastSeen[p] = now
	revised := h.susp[p]
	delete(h.susp, p)
	gauge := h.suspGauge[p]
	h.mu.Unlock()
	h.m.beatsRecv.Inc()
	if revised {
		gauge.Set(0)
		h.m.revivals.Inc()
		h.ev.Suspicion(string(p), false)
		h.n.emit(Event{P: p, Suspected: false})
	}
}

func (h *Heartbeat) check(now time.Time) {
	var newly []ident.PID
	h.mu.Lock()
	for _, p := range h.peers {
		if h.susp[p] {
			continue
		}
		if now.Sub(h.lastSeen[p]) > h.opts.Timeout {
			h.susp[p] = true
			h.suspGauge[p].Set(1)
			newly = append(newly, p)
		}
	}
	h.mu.Unlock()
	for _, p := range newly {
		h.m.suspicions.Inc()
		h.ev.Suspicion(string(p), true)
		h.n.emit(Event{P: p, Suspected: true})
	}
}

// Suspected implements Detector.
func (h *Heartbeat) Suspected(p ident.PID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.susp[p]
}

// Suspects implements Detector.
func (h *Heartbeat) Suspects() ident.PIDs {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := make([]ident.PID, 0, len(h.susp))
	for p, s := range h.susp {
		if s {
			ps = append(ps, p)
		}
	}
	return ident.NewPIDs(ps...)
}

// Events implements Detector.
func (h *Heartbeat) Events() <-chan Event { return h.n.out }

// Stop implements Detector.
func (h *Heartbeat) Stop() {
	h.once.Do(func() {
		close(h.done)
		h.wg.Wait()
		h.n.close()
	})
}
