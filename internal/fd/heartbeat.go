package fd

import (
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/transport"
)

// Beat is the heartbeat wire message.
type Beat struct{}

func init() {
	codec.Register[Beat](codec.TBeat,
		func(dst []byte, _ Beat) []byte { return dst },
		func(_ *codec.Reader) (Beat, error) { return Beat{}, nil })
}

// HeartbeatOptions configures the heartbeat detector.
type HeartbeatOptions struct {
	// Interval between heartbeats. Default 20ms.
	Interval time.Duration
	// Timeout after which a silent peer is suspected. Default 5×Interval.
	Timeout time.Duration
}

func (o *HeartbeatOptions) defaults() {
	if o.Interval <= 0 {
		o.Interval = 20 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * o.Interval
	}
}

// Heartbeat is a timeout-based eventually-accurate failure detector: each
// process periodically beats to its peers; a peer silent for longer than
// the timeout is suspected, and the suspicion is revised as soon as a beat
// arrives again (◇S style: finitely many mistakes once timing stabilises).
//
// Heartbeats are node-scoped, not group-scoped: they travel in
// ident.NodeGroup on the FailureDetector channel, so one detector serves
// every group the node hosts (see fd.Fanout for sharing its events).
type Heartbeat struct {
	ep   transport.Endpoint
	opts HeartbeatOptions

	mu       sync.Mutex
	peers    ident.PIDs
	lastSeen map[ident.PID]time.Time
	susp     map[ident.PID]bool

	n    *notifier
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

var _ Detector = (*Heartbeat)(nil)

// NewHeartbeat returns a detector monitoring peers through ep. Call Start
// to begin beating.
func NewHeartbeat(ep transport.Endpoint, peers ident.PIDs, opts HeartbeatOptions) *Heartbeat {
	opts.defaults()
	h := &Heartbeat{
		ep:       ep,
		opts:     opts,
		peers:    peers.Clone().Remove(ep.Self()),
		lastSeen: make(map[ident.PID]time.Time),
		susp:     make(map[ident.PID]bool),
		n:        newNotifier(),
		done:     make(chan struct{}),
	}
	return h
}

// Start launches the beat and monitor goroutines.
func (h *Heartbeat) Start() {
	now := time.Now()
	h.mu.Lock()
	for _, p := range h.peers {
		h.lastSeen[p] = now
	}
	h.mu.Unlock()
	h.wg.Add(2)
	go h.beatLoop()
	go h.recvLoop()
}

// SetPeers replaces the monitored set (e.g. after a view change). Newly
// added peers start unsuspected with a fresh grace period.
func (h *Heartbeat) SetPeers(peers ident.PIDs) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	next := peers.Clone().Remove(h.ep.Self())
	for _, p := range next {
		if !h.peers.Contains(p) {
			h.lastSeen[p] = now
		}
	}
	for _, p := range h.peers {
		if !next.Contains(p) {
			delete(h.lastSeen, p)
			delete(h.susp, p)
		}
	}
	h.peers = next
}

func (h *Heartbeat) beatLoop() {
	defer h.wg.Done()
	ticker := time.NewTicker(h.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-h.done:
			return
		case <-ticker.C:
			h.mu.Lock()
			peers := h.peers.Clone()
			h.mu.Unlock()
			for _, p := range peers {
				// Best effort: a failed send is just a missing beat.
				_ = h.ep.Send(p, ident.NodeGroup, transport.FailureDetector, Beat{})
			}
			h.check(time.Now())
		}
	}
}

func (h *Heartbeat) recvLoop() {
	defer h.wg.Done()
	inbox := h.ep.Inbox(ident.NodeGroup, transport.FailureDetector)
	for {
		select {
		case <-h.done:
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			h.alive(env.From)
		}
	}
}

func (h *Heartbeat) alive(p ident.PID) {
	h.mu.Lock()
	if !h.peers.Contains(p) {
		h.mu.Unlock()
		return
	}
	h.lastSeen[p] = time.Now()
	revised := h.susp[p]
	delete(h.susp, p)
	h.mu.Unlock()
	if revised {
		h.n.emit(Event{P: p, Suspected: false})
	}
}

func (h *Heartbeat) check(now time.Time) {
	var newly []ident.PID
	h.mu.Lock()
	for _, p := range h.peers {
		if h.susp[p] {
			continue
		}
		if now.Sub(h.lastSeen[p]) > h.opts.Timeout {
			h.susp[p] = true
			newly = append(newly, p)
		}
	}
	h.mu.Unlock()
	for _, p := range newly {
		h.n.emit(Event{P: p, Suspected: true})
	}
}

// Suspected implements Detector.
func (h *Heartbeat) Suspected(p ident.PID) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.susp[p]
}

// Suspects implements Detector.
func (h *Heartbeat) Suspects() ident.PIDs {
	h.mu.Lock()
	defer h.mu.Unlock()
	ps := make([]ident.PID, 0, len(h.susp))
	for p, s := range h.susp {
		if s {
			ps = append(ps, p)
		}
	}
	return ident.NewPIDs(ps...)
}

// Events implements Detector.
func (h *Heartbeat) Events() <-chan Event { return h.n.out }

// Stop implements Detector.
func (h *Heartbeat) Stop() {
	h.once.Do(func() {
		close(h.done)
		h.wg.Wait()
		h.n.close()
	})
}
