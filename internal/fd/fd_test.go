package fd

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/transport"
)

func waitSuspected(t *testing.T, d Detector, p ident.PID, want bool) {
	t.Helper()
	deadline := time.After(3 * time.Second)
	for d.Suspected(p) != want {
		select {
		case <-deadline:
			t.Fatalf("Suspected(%s) never became %v", p, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func waitEvent(t *testing.T, ch <-chan Event) Event {
	t.Helper()
	select {
	case e, ok := <-ch:
		if !ok {
			t.Fatal("event channel closed")
		}
		return e
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for fd event")
		return Event{}
	}
}

func TestManualSuspectRestore(t *testing.T) {
	m := NewManual()
	defer m.Stop()

	if m.Suspected("p") {
		t.Fatal("fresh detector suspects p")
	}
	m.Suspect("p")
	if !m.Suspected("p") {
		t.Fatal("Suspect had no effect")
	}
	if ev := waitEvent(t, m.Events()); ev.P != "p" || !ev.Suspected {
		t.Fatalf("event %+v", ev)
	}
	// Duplicate suspicion emits nothing; restore emits.
	m.Suspect("p")
	m.Restore("p")
	if m.Suspected("p") {
		t.Fatal("Restore had no effect")
	}
	if ev := waitEvent(t, m.Events()); ev.P != "p" || ev.Suspected {
		t.Fatalf("event %+v", ev)
	}
	if got := m.Suspects(); len(got) != 0 {
		t.Fatalf("Suspects = %v", got)
	}
}

func TestManualSuspects(t *testing.T) {
	m := NewManual()
	defer m.Stop()
	m.Suspect("b")
	m.Suspect("a")
	got := m.Suspects()
	want := ident.NewPIDs("a", "b")
	if !got.Equal(want) {
		t.Fatalf("Suspects = %v, want %v", got, want)
	}
}

func TestHeartbeatSuspectsSilentPeer(t *testing.T) {
	net := transport.NewMemNetwork()
	epA, _ := net.Endpoint("a")
	epB, _ := net.Endpoint("b")
	defer epA.Close()
	defer epB.Close()

	peers := ident.NewPIDs("a", "b")
	opts := HeartbeatOptions{Interval: 5 * time.Millisecond, Timeout: 25 * time.Millisecond}
	ha := NewHeartbeat(epA, peers, opts)
	hb := NewHeartbeat(epB, peers, opts)
	ha.Start()
	hb.Start()
	defer ha.Stop()
	defer hb.Stop()

	// Both alive: give several intervals, nobody suspected.
	time.Sleep(60 * time.Millisecond)
	if ha.Suspected("b") || hb.Suspected("a") {
		t.Fatal("live peers suspected")
	}

	// Silence b in both directions: a must suspect b. A beat may still be
	// in flight when the link is cut (briefly revising the suspicion), so
	// poll until the suspicion sticks.
	net.CutBoth("a", "b")
	ev := waitEvent(t, ha.Events())
	if ev.P != "b" || !ev.Suspected {
		t.Fatalf("event %+v", ev)
	}
	waitSuspected(t, ha, "b", true)

	// Heal: suspicion must be revised.
	net.Heal("a", "b")
	net.Heal("b", "a")
	waitSuspected(t, ha, "b", false)
}

func TestHeartbeatSetPeers(t *testing.T) {
	net := transport.NewMemNetwork()
	epA, _ := net.Endpoint("a")
	defer epA.Close()

	opts := HeartbeatOptions{Interval: 5 * time.Millisecond, Timeout: 20 * time.Millisecond}
	ha := NewHeartbeat(epA, ident.NewPIDs("a", "b", "c"), opts)
	ha.Start()
	defer ha.Stop()

	// b and c never beat: both eventually suspected.
	deadline := time.After(3 * time.Second)
	for {
		if ha.Suspected("b") && ha.Suspected("c") {
			break
		}
		select {
		case <-deadline:
			t.Fatal("peers never suspected")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// Dropping c from the view forgets its suspicion.
	ha.SetPeers(ident.NewPIDs("a", "b"))
	if ha.Suspected("c") {
		t.Fatal("removed peer still suspected")
	}
	if !ha.Suspected("b") {
		t.Fatal("kept peer lost suspicion state")
	}
}

func TestHeartbeatStopIsIdempotent(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, _ := net.Endpoint("a")
	defer ep.Close()
	h := NewHeartbeat(ep, ident.NewPIDs("a"), HeartbeatOptions{})
	h.Start()
	h.Stop()
	h.Stop()
}
