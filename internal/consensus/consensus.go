// Package consensus implements the uniform consensus building block that
// the SVS view-change protocol takes as given (§3.1: "A consensus protocol
// is assumed to be available ... all correct processes eventually decide
// the same value and the decided value is one of the proposed values").
//
// The implementation is the classic Chandra–Toueg ◇S rotating-coordinator
// algorithm over the package transport channels and a fd.Detector oracle:
//
//	round r, coordinator c = participants[r mod n]:
//	  1. every process sends its (estimate, ts) to c;
//	  2. c gathers a majority of estimates and proposes the one with the
//	     highest timestamp;
//	  3. every process waits for c's proposal — adopting it and ACKing —
//	     or NACKs when the detector suspects c;
//	  4. c gathers a majority of replies; if all are ACKs the value is
//	     locked and c reliably broadcasts DECIDE.
//
// Safety requires only a majority of correct processes; the detector is
// used for liveness alone. Decisions are cached so that stragglers asking
// about a decided instance are answered immediately.
package consensus

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/transport"
)

// msgType enumerates the wire message types of the algorithm.
type msgType uint8

const (
	msgEstimate msgType = iota + 1
	msgPropose
	msgAck
	msgNack
	msgDecide
)

func (t msgType) String() string {
	switch t {
	case msgEstimate:
		return "estimate"
	case msgPropose:
		return "propose"
	case msgAck:
		return "ack"
	case msgNack:
		return "nack"
	case msgDecide:
		return "decide"
	default:
		return fmt.Sprintf("msgType(%d)", uint8(t))
	}
}

// Msg is the wire message of one consensus instance.
type Msg struct {
	Instance string
	Round    int
	Type     msgType
	Value    []byte
	Ts       int // estimate timestamp (rounds); meaningful for estimates
}

func init() {
	codec.Register[Msg](codec.TConsensusMsg, appendMsg, readMsg)
}

func appendMsg(dst []byte, m Msg) []byte {
	dst = codec.AppendString(dst, m.Instance)
	dst = codec.AppendVarint(dst, int64(m.Round))
	dst = codec.AppendByte(dst, byte(m.Type))
	dst = codec.AppendBytes(dst, m.Value)
	return codec.AppendVarint(dst, int64(m.Ts))
}

func readMsg(r *codec.Reader) (Msg, error) {
	var m Msg
	m.Instance = r.String()
	m.Round = int(r.Varint())
	m.Type = msgType(r.Byte())
	m.Value = r.Bytes()
	m.Ts = int(r.Varint())
	return m, r.Err()
}

// Service multiplexes the consensus instances of one group over a shared
// endpoint: all its traffic travels in the group's Consensus inbox, so a
// node hosting many groups runs one Service per group and their rounds
// never interfere (instance ids only need to be unique within a group).
type Service struct {
	ep    transport.Endpoint
	det   fd.Detector
	group ident.GroupID
	// poll is how often waiting phases re-check the failure detector.
	poll  time.Duration
	clock obs.Clock
	ev    *obs.Events
	m     svcMetrics

	mu        sync.Mutex
	instances map[string]*instance
	stopped   bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// svcMetrics are the service's instruments; nil instruments record nothing.
type svcMetrics struct {
	decisions *obs.Counter   // instances decided (locally observed)
	nacks     *obs.Counter   // coordinator suspicions turned into NACKs
	rounds    *obs.Histogram // rounds a proposing process ran until deciding
	latency   *obs.Histogram // propose-to-decide wall time
}

// New returns a stopped service for one group's consensus instances; call
// Start. ob supplies the poll clock, metrics and events; nil uses the wall
// clock with no instrumentation.
func New(ep transport.Endpoint, det fd.Detector, group ident.GroupID, ob *obs.Obs) *Service {
	return &Service{
		ep:    ep,
		det:   det,
		group: group,
		poll:  2 * time.Millisecond,
		clock: ob.Clock(),
		ev:    ob.Events(),
		m: svcMetrics{
			decisions: ob.Counter("consensus_decisions_total"),
			nacks:     ob.Counter("consensus_nacks_total"),
			rounds:    ob.Histogram("consensus_rounds", obs.CountBuckets),
			latency:   ob.Histogram("consensus_decide_seconds", obs.DurationBuckets),
		},
		instances: make(map[string]*instance),
		done:      make(chan struct{}),
	}
}

// Start launches the dispatcher.
func (s *Service) Start() {
	s.wg.Add(1)
	go s.dispatch()
}

// Stop terminates the dispatcher and all running instances.
func (s *Service) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.done)
	s.mu.Unlock()
	s.wg.Wait()
}

// Propose runs instance id among participants with the given initial
// value and blocks until a decision is reached, the context is cancelled,
// or the service stops. All participants must call Propose with the same
// id and participant set; values may differ. The decided value is one of
// the proposed values and is the same at every deciding process.
func (s *Service) Propose(ctx context.Context, id string, participants ident.PIDs, value []byte) ([]byte, error) {
	if !participants.Contains(s.ep.Self()) {
		return nil, fmt.Errorf("consensus: %s is not a participant of %q", s.ep.Self(), id)
	}
	in := s.instance(id)

	in.mu.Lock()
	if in.decided {
		v := in.decision
		in.mu.Unlock()
		return v, nil
	}
	if !in.proposed {
		in.proposed = true
		in.participants = participants.Clone()
		in.est = value
		in.start = s.clock.Now()
		close(in.proposeC) // unblock the runner
	}
	in.mu.Unlock()

	select {
	case <-in.decidedC:
		in.mu.Lock()
		v := in.decision
		in.mu.Unlock()
		return v, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, fmt.Errorf("consensus: service stopped")
	}
}

// Await blocks until instance id decides, without participating in it. It
// lets a process that has not (yet) proposed — e.g. one still gathering
// flush sets — learn the outcome as soon as the decide flood reaches it.
func (s *Service) Await(ctx context.Context, id string) ([]byte, error) {
	in := s.instance(id)
	select {
	case <-in.decidedC:
		in.mu.Lock()
		v := in.decision
		in.mu.Unlock()
		return v, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.done:
		return nil, fmt.Errorf("consensus: service stopped")
	}
}

// Decision returns the cached decision of instance id, if any.
func (s *Service) Decision(id string) ([]byte, bool) {
	s.mu.Lock()
	in, ok := s.instances[id]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.decided {
		return nil, false
	}
	return in.decision, true
}

// instance returns (creating if necessary) the record for id.
func (s *Service) instance(id string) *instance {
	s.mu.Lock()
	defer s.mu.Unlock()
	if in, ok := s.instances[id]; ok {
		return in
	}
	in := &instance{
		svc:      s,
		id:       id,
		proposeC: make(chan struct{}),
		decidedC: make(chan struct{}),
		wake:     make(chan struct{}, 1),
	}
	s.instances[id] = in
	if !s.stopped {
		s.wg.Add(1)
		go in.run()
	}
	return in
}

// dispatch routes incoming wire messages to their instances.
func (s *Service) dispatch() {
	defer s.wg.Done()
	inbox := s.ep.Inbox(s.group, transport.Consensus)
	for {
		select {
		case <-s.done:
			return
		case env, ok := <-inbox:
			if !ok {
				return
			}
			m, ok := env.Msg.(Msg)
			if !ok {
				continue
			}
			s.instance(m.Instance).deliver(env.From, m)
		}
	}
}

// instance is the per-id state machine.
type instance struct {
	svc *Service
	id  string

	mu           sync.Mutex
	proposed     bool
	participants ident.PIDs
	est          []byte
	ts           int
	round        int       // current round of the local runner
	start        time.Time // when the local proposal arrived
	decided      bool
	decision     []byte
	inbox        []inMsg

	proposeC chan struct{} // closed when the local proposal arrives
	decidedC chan struct{} // closed on decision
	wake     chan struct{} // pinged when a message arrives
}

type inMsg struct {
	from ident.PID
	m    Msg
}

// deliver buffers m and wakes the runner. Decide messages take effect
// immediately — even at a process that never proposed — and a decided
// instance answers any late non-decide traffic with the decision so
// stragglers terminate.
func (in *instance) deliver(from ident.PID, m Msg) {
	in.mu.Lock()
	if in.decided {
		dec := in.decision
		in.mu.Unlock()
		if m.Type != msgDecide {
			_ = in.svc.ep.Send(from, in.svc.group, transport.Consensus, Msg{
				Instance: in.id, Type: msgDecide, Value: dec,
			})
		}
		return
	}
	if m.Type == msgDecide {
		in.decideLocked(m.Value)
		in.mu.Unlock()
		return
	}
	in.inbox = append(in.inbox, inMsg{from: from, m: m})
	in.mu.Unlock()
	select {
	case in.wake <- struct{}{}:
	default:
	}
}

// run executes the rotating-coordinator rounds once the local proposal is
// available. Decide messages short-circuit every phase.
func (in *instance) run() {
	defer in.svc.wg.Done()

	// Wait for the local proposal (messages keep buffering meanwhile).
	select {
	case <-in.proposeC:
	case <-in.svc.done:
		return
	}

	in.mu.Lock()
	parts := in.participants
	in.mu.Unlock()
	n := len(parts)
	majority := n/2 + 1
	self := in.svc.ep.Self()

	for r := 0; ; r++ {
		coord := parts[r%n]

		// Phase 1: send estimate to the coordinator.
		in.mu.Lock()
		in.round = r
		est, ts := in.est, in.ts
		in.mu.Unlock()
		in.send(coord, Msg{Instance: in.id, Round: r, Type: msgEstimate, Value: est, Ts: ts})

		// Phase 2 (coordinator): gather a majority of estimates, keep the
		// freshest, propose it.
		if coord == self {
			ests, ok := in.collect(r, msgEstimate, majority, nil)
			if !ok {
				return // decided or stopped
			}
			best := ests[0].m
			for _, e := range ests[1:] {
				if e.m.Ts > best.Ts {
					best = e.m
				}
			}
			for _, p := range parts {
				in.send(p, Msg{Instance: in.id, Round: r, Type: msgPropose, Value: best.Value})
			}
		}

		// Phase 3: adopt the coordinator's proposal, or NACK on suspicion.
		prop, got, alive := in.awaitPropose(r, coord)
		if !alive {
			return // decided or stopped
		}
		if got {
			in.mu.Lock()
			in.est, in.ts = prop.Value, r
			in.mu.Unlock()
			in.send(coord, Msg{Instance: in.id, Round: r, Type: msgAck})
		} else {
			in.svc.m.nacks.Inc()
			in.send(coord, Msg{Instance: in.id, Round: r, Type: msgNack})
		}

		// Phase 4 (coordinator): majority of ACKs locks the value.
		if coord == self {
			replies, ok := in.collect(r, msgAck, majority, func(m Msg) bool {
				return m.Type == msgNack && m.Round == r
			})
			if !ok {
				return
			}
			if replies != nil { // majority of ACKs, no NACK seen first
				in.mu.Lock()
				v := in.est
				in.mu.Unlock()
				for _, p := range parts {
					in.send(p, Msg{Instance: in.id, Type: msgDecide, Value: v})
				}
			}
		}
	}
}

// send transmits m, delivering locally without the network round-trip.
func (in *instance) send(to ident.PID, m Msg) {
	_ = in.svc.ep.Send(to, in.svc.group, transport.Consensus, m)
}

// takeMatching removes and returns buffered messages matching pred. It
// reports decided=true when the instance has a decision, which terminates
// every waiting phase.
func (in *instance) takeMatching(pred func(Msg) bool) (out []inMsg, decided bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.decided {
		return nil, true
	}
	kept := in.inbox[:0]
	for _, im := range in.inbox {
		if pred(im.m) {
			out = append(out, im)
			continue
		}
		kept = append(kept, im)
	}
	in.inbox = kept
	return out, false
}

// decideLocked records the decision and relays it to all participants
// (reliable broadcast of the decision). Callers hold in.mu.
func (in *instance) decideLocked(v []byte) {
	if in.decided {
		return
	}
	in.decided = true
	in.decision = v
	close(in.decidedC)
	in.svc.m.decisions.Inc()
	if in.proposed {
		// Rounds and latency only make sense at a process that actually
		// ran the protocol; a bystander learning via the decide flood
		// would skew both towards zero.
		in.svc.m.rounds.Observe(float64(in.round + 1))
		in.svc.m.latency.ObserveDuration(in.svc.clock.Since(in.start))
		in.svc.ev.ConsensusDecision(in.id, in.round+1)
	}
	parts := in.participants
	self := in.svc.ep.Self()
	go func() {
		for _, p := range parts {
			if p != self {
				_ = in.svc.ep.Send(p, in.svc.group, transport.Consensus, Msg{
					Instance: in.id, Type: msgDecide, Value: v,
				})
			}
		}
	}()
}

// collect waits until want messages of the given round/type have been
// gathered, a decide arrives (returns nil,false... see below), or abort
// reports true on some gathered message (NACK handling). The returned
// bool is false when the instance terminated (decide or service stop);
// a nil slice with true means aborted by the abort predicate.
func (in *instance) collect(round int, t msgType, want int, abort func(Msg) bool) ([]inMsg, bool) {
	var got []inMsg
	ticker := in.svc.clock.NewTicker(in.svc.poll)
	defer ticker.Stop()
	for {
		match, decided := in.takeMatching(func(m Msg) bool {
			if m.Round != round {
				return false
			}
			return m.Type == t || (abort != nil && abort(m))
		})
		if decided {
			return nil, false
		}
		for _, im := range match {
			if abort != nil && abort(im.m) {
				return nil, true // aborted: round failed
			}
			got = append(got, im)
		}
		if len(got) >= want {
			return got, true
		}
		select {
		case <-in.wake:
		case <-ticker.C():
		case <-in.svc.done:
			return nil, false
		}
	}
}

// awaitPropose waits for the coordinator's round-r proposal, giving up
// when the failure detector suspects the coordinator. alive is false when
// the instance terminated meanwhile.
func (in *instance) awaitPropose(round int, coord ident.PID) (prop Msg, got, alive bool) {
	ticker := in.svc.clock.NewTicker(in.svc.poll)
	defer ticker.Stop()
	for {
		match, decided := in.takeMatching(func(m Msg) bool {
			return m.Type == msgPropose && m.Round == round
		})
		if decided {
			return Msg{}, false, false
		}
		if len(match) > 0 {
			return match[0].m, true, true
		}
		if in.svc.det.Suspected(coord) {
			return Msg{}, false, true
		}
		select {
		case <-in.wake:
		case <-ticker.C():
		case <-in.svc.done:
			return Msg{}, false, false
		}
	}
}
