package consensus

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/transport"
)

// harness wires n processes with manual failure detectors.
type harness struct {
	net  *transport.MemNetwork
	pids ident.PIDs
	svcs map[ident.PID]*Service
	dets map[ident.PID]*fd.Manual
	eps  map[ident.PID]*transport.MemEndpoint
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{
		net:  transport.NewMemNetwork(),
		svcs: make(map[ident.PID]*Service),
		dets: make(map[ident.PID]*fd.Manual),
		eps:  make(map[ident.PID]*transport.MemEndpoint),
	}
	var pids []ident.PID
	for i := 0; i < n; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	h.pids = ident.NewPIDs(pids...)
	for _, p := range h.pids {
		ep, err := h.net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewManual()
		svc := New(ep, det, ident.NodeGroup, nil)
		svc.Start()
		h.eps[p] = ep
		h.dets[p] = det
		h.svcs[p] = svc
	}
	t.Cleanup(func() {
		for _, p := range h.pids {
			h.svcs[p].Stop()
			h.dets[p].Stop()
			h.eps[p].Close()
		}
	})
	return h
}

// proposeAll has every pid in who propose its own value; returns decisions.
func (h *harness) proposeAll(t *testing.T, id string, who ident.PIDs, timeout time.Duration) map[ident.PID][]byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var mu sync.Mutex
	out := make(map[ident.PID][]byte)
	var wg sync.WaitGroup
	for _, p := range who {
		wg.Add(1)
		go func(p ident.PID) {
			defer wg.Done()
			v, err := h.svcs[p].Propose(ctx, id, h.pids, []byte("from-"+string(p)))
			if err != nil {
				t.Errorf("%s: propose: %v", p, err)
				return
			}
			mu.Lock()
			out[p] = v
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	return out
}

func assertAgreement(t *testing.T, decisions map[ident.PID][]byte, proposers ident.PIDs) {
	t.Helper()
	var first []byte
	for _, v := range decisions {
		first = v
		break
	}
	if first == nil {
		t.Fatal("no decisions")
	}
	for p, v := range decisions {
		if string(v) != string(first) {
			t.Fatalf("disagreement: %s decided %q, others %q", p, v, first)
		}
	}
	// Validity: the decision is one of the proposals.
	valid := false
	for _, p := range proposers {
		if string(first) == "from-"+string(p) {
			valid = true
			break
		}
	}
	if !valid {
		t.Fatalf("decided value %q was never proposed", first)
	}
}

func TestConsensusAllCorrect(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			h := newHarness(t, n)
			decisions := h.proposeAll(t, "inst", h.pids, 5*time.Second)
			if len(decisions) != n {
				t.Fatalf("%d deciders, want %d", len(decisions), n)
			}
			assertAgreement(t, decisions, h.pids)
		})
	}
}

func TestConsensusCoordinatorCrash(t *testing.T) {
	h := newHarness(t, 3)
	// The round-0 coordinator is the first sorted pid: p0. Crash it before
	// anything starts and have everyone suspect it.
	coord := h.pids[0]
	h.net.Crash(coord)
	rest := h.pids.Remove(coord)
	for _, p := range rest {
		h.dets[p].Suspect(coord)
	}
	decisions := h.proposeAll(t, "inst", rest, 5*time.Second)
	if len(decisions) != len(rest) {
		t.Fatalf("%d deciders, want %d", len(decisions), len(rest))
	}
	assertAgreement(t, decisions, rest)
}

func TestConsensusMidRoundCrash(t *testing.T) {
	h := newHarness(t, 5)
	coord := h.pids[0]
	rest := h.pids.Remove(coord)

	// Everyone but the coordinator proposes; the coordinator stays silent
	// (as if crashed before proposing) and is eventually suspected.
	done := make(chan map[ident.PID][]byte, 1)
	go func() {
		done <- h.proposeAll(t, "inst", rest, 10*time.Second)
	}()
	time.Sleep(30 * time.Millisecond)
	h.net.Crash(coord)
	for _, p := range rest {
		h.dets[p].Suspect(coord)
	}
	decisions := <-done
	if len(decisions) != len(rest) {
		t.Fatalf("%d deciders, want %d", len(decisions), len(rest))
	}
	assertAgreement(t, decisions, rest)
}

func TestConsensusAwait(t *testing.T) {
	h := newHarness(t, 3)
	// p2 never proposes; it must still learn the decision via Await.
	awaiter := h.pids[2]
	proposers := h.pids.Remove(awaiter)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	awaitC := make(chan []byte, 1)
	go func() {
		v, err := h.svcs[awaiter].Await(ctx, "inst")
		if err != nil {
			t.Errorf("await: %v", err)
			close(awaitC)
			return
		}
		awaitC <- v
	}()

	decisions := h.proposeAll(t, "inst", proposers, 5*time.Second)
	assertAgreement(t, decisions, proposers)

	select {
	case v, ok := <-awaitC:
		if !ok {
			t.Fatal("await failed")
		}
		for _, d := range decisions {
			if string(v) != string(d) {
				t.Fatalf("awaited %q != decided %q", v, d)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("await never returned")
	}
}

func TestConsensusDecisionCache(t *testing.T) {
	h := newHarness(t, 3)
	decisions := h.proposeAll(t, "inst", h.pids, 5*time.Second)
	assertAgreement(t, decisions, h.pids)

	// A second Propose on the decided instance returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	v, err := h.svcs[h.pids[0]].Propose(ctx, "inst", h.pids, []byte("late"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != string(decisions[h.pids[0]]) {
		t.Fatalf("cached decision %q != original %q", v, decisions[h.pids[0]])
	}
	if got, ok := h.svcs[h.pids[1]].Decision("inst"); !ok || string(got) != string(v) {
		t.Fatalf("Decision() = %q,%v", got, ok)
	}
	if _, ok := h.svcs[h.pids[1]].Decision("other"); ok {
		t.Fatal("phantom decision")
	}
}

func TestConsensusConcurrentInstances(t *testing.T) {
	h := newHarness(t, 3)
	const instances = 8
	var wg sync.WaitGroup
	errs := make(chan error, instances)
	for i := 0; i < instances; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("inst-%d", i)
			decisions := h.proposeAll(t, id, h.pids, 10*time.Second)
			var first []byte
			for _, v := range decisions {
				if first == nil {
					first = v
				} else if string(v) != string(first) {
					errs <- fmt.Errorf("instance %s disagreement", id)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestConsensusNonParticipant(t *testing.T) {
	h := newHarness(t, 2)
	ctx := context.Background()
	_, err := h.svcs[h.pids[0]].Propose(ctx, "inst", ident.NewPIDs("x", "y"), []byte("v"))
	if err == nil {
		t.Fatal("proposing outside the participant set should fail")
	}
}

func TestConsensusContextCancel(t *testing.T) {
	h := newHarness(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Nobody else proposes, so this can only end via ctx.
	_, err := h.svcs[h.pids[0]].Propose(ctx, "lonely", h.pids, []byte("v"))
	if err == nil {
		t.Fatal("cancelled propose should fail")
	}
}

// TestMsgCodecRoundTrip pins the binary encoding of the consensus wire
// message, including nil vs empty values.
func TestMsgCodecRoundTrip(t *testing.T) {
	cases := []Msg{
		{},
		{Instance: "svs-view/3", Round: 2, Type: msgPropose, Value: []byte("v"), Ts: 1},
		{Instance: "i", Type: msgDecide, Value: []byte{}},
		{Instance: "i", Round: 1 << 30, Type: msgNack, Ts: 1 << 30},
	}
	for _, m := range cases {
		b, err := codec.Marshal(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		out, err := codec.UnmarshalBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out, m) {
			t.Fatalf("got %#v, want %#v", out, m)
		}
	}
}
