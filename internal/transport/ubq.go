package transport

import "sync"

// ubqBatchCap bounds one batch handed to an InboxBatch consumer. It keeps
// a single receive from monopolising the consumer for unbounded time while
// still amortising the channel operation over a large run.
const ubqBatchCap = 1024

// ubq consumption modes. An inbox is consumed either envelope-at-a-time
// (Inbox) or batch-at-a-time (InboxBatch); the first consumer call fixes
// the mode for the inbox's lifetime. Mixing the two on one inbox would
// make delivery order between the channels undefined, so it panics.
const (
	ubqUnset = iota
	ubqSingle
	ubqBatch
)

// ubq is an unbounded FIFO queue of envelopes pumped into a Go channel.
// Pushes never block; the paper's model places all bounded buffering (and
// hence flow control) in the protocol layer, so the transport must never
// exert backpressure of its own.
//
// The pump emits either single envelopes (out) or batches (outB) depending
// on which consumer accessor was called first. Batches are double-buffered:
// the pump alternates between two reusable slices, so a batch stays valid
// exactly until the consumer's next receive from the same channel.
type ubq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Envelope
	closed bool
	mode   int

	out  chan Envelope
	outB chan []Envelope
	done chan struct{}
	wg   sync.WaitGroup
}

func newUBQ() *ubq {
	q := &ubq{
		out:  make(chan Envelope),
		outB: make(chan []Envelope),
		done: make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(1)
	go q.pump()
	return q
}

// push enqueues e; it is a no-op after close.
func (q *ubq) push(e Envelope) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, e)
	q.cond.Signal()
}

// pushAll enqueues a run of envelopes under one lock acquisition; the
// slice contents are copied, so the caller may reuse es immediately.
func (q *ubq) pushAll(es []Envelope) {
	if len(es) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, es...)
	q.cond.Signal()
}

// single claims the inbox for envelope-at-a-time consumption and returns
// its receive channel. Panics if the inbox is already consumed in batches.
func (q *ubq) single() <-chan Envelope {
	q.setMode(ubqSingle, "transport: Inbox called on an inbox already consumed via InboxBatch")
	return q.out
}

// batch claims the inbox for batch consumption and returns its receive
// channel. Panics if the inbox is already consumed envelope-at-a-time.
func (q *ubq) batch() <-chan []Envelope {
	q.setMode(ubqBatch, "transport: InboxBatch called on an inbox already consumed via Inbox")
	return q.outB
}

func (q *ubq) setMode(mode int, msg string) {
	q.mu.Lock()
	if q.mode == ubqUnset {
		q.mode = mode
		q.cond.Signal()
	}
	bad := q.mode != mode
	q.mu.Unlock()
	if bad {
		panic(msg)
	}
}

// close stops the pump; pending items are dropped (crash-stop semantics:
// a closed endpoint has crashed and receives nothing further). It is safe
// to call concurrently and repeatedly; every call returns only once the
// pump has exited, so no envelope is emitted after close returns.
func (q *ubq) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.done)
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.wg.Wait()
}

// pump waits for the consumption mode to be fixed, then runs the matching
// emit loop. Both output channels close on exit, so a consumer holding
// either sees the close however the inbox was (or was never) consumed.
func (q *ubq) pump() {
	defer q.wg.Done()
	defer close(q.out)
	defer close(q.outB)
	q.mu.Lock()
	for q.mode == ubqUnset && !q.closed {
		q.cond.Wait()
	}
	mode := q.mode
	q.mu.Unlock()
	if mode == ubqBatch {
		q.pumpBatch()
		return
	}
	q.pumpSingle()
}

func (q *ubq) pumpSingle() {
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		e := q.items[0]
		// Shift so the backing array does not pin delivered envelopes.
		copy(q.items, q.items[1:])
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()

		select {
		case q.out <- e:
		case <-q.done:
			return
		}
	}
}

// pumpBatch drains up to ubqBatchCap pending envelopes per round into one
// of two alternating reusable buffers. The buffer handed to the consumer
// is not touched again until after the consumer's next receive, which is
// the InboxBatch ownership contract.
func (q *ubq) pumpBatch() {
	var bufs [2][]Envelope
	cur := 0
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		n := len(q.items)
		if n > ubqBatchCap {
			n = ubqBatchCap
		}
		batch := append(bufs[cur][:0], q.items[:n]...)
		bufs[cur] = batch
		rest := copy(q.items, q.items[n:])
		// Zero the vacated tail so the backing array does not pin
		// delivered payloads.
		for i := rest; i < len(q.items); i++ {
			q.items[i] = Envelope{}
		}
		q.items = q.items[:rest]
		q.mu.Unlock()

		select {
		case q.outB <- batch:
			cur ^= 1
		case <-q.done:
			return
		}
	}
}
