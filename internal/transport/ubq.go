package transport

import "sync"

// ubq is an unbounded FIFO queue of envelopes pumped into a Go channel.
// Pushes never block; the paper's model places all bounded buffering (and
// hence flow control) in the protocol layer, so the transport must never
// exert backpressure of its own.
type ubq struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Envelope
	closed bool

	out  chan Envelope
	done chan struct{}
	wg   sync.WaitGroup
}

func newUBQ() *ubq {
	q := &ubq{
		out:  make(chan Envelope),
		done: make(chan struct{}),
	}
	q.cond = sync.NewCond(&q.mu)
	q.wg.Add(1)
	go q.pump()
	return q
}

// push enqueues e; it is a no-op after close.
func (q *ubq) push(e Envelope) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, e)
	q.cond.Signal()
}

// close stops the pump; pending items are dropped (crash-stop semantics:
// a closed endpoint has crashed and receives nothing further). It is safe
// to call concurrently and repeatedly; every call returns only once the
// pump has exited, so no envelope is emitted after close returns.
func (q *ubq) close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.done)
		q.cond.Signal()
	}
	q.mu.Unlock()
	q.wg.Wait()
}

func (q *ubq) pump() {
	defer q.wg.Done()
	defer close(q.out)
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.closed {
			q.mu.Unlock()
			return
		}
		e := q.items[0]
		// Shift so the backing array does not pin delivered envelopes.
		copy(q.items, q.items[1:])
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()

		select {
		case q.out <- e:
		case <-q.done:
			return
		}
	}
}
