package transport

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ident"
)

// TestTCPNetworkReconnectAfterRestart is the crash-restart regression
// test: a peer that dies mid-stream and comes back on the same address
// must get a fresh connection pair — the sender's send path re-dials
// instead of wedging on the dead connection's queue. Messages in flight
// around the crash are lost (crash-stop), but delivery must resume.
func TestTCPNetworkReconnectAfterRestart(t *testing.T) {
	a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := NewTCPNetworkOpts("b", "127.0.0.1:0", map[ident.PID]string{"a": a.Addr()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	a.AddPeer("b", addr)

	// Stream until b1 has demonstrably received traffic.
	in1 := b1.Inbox(ident.NodeGroup, Data)
	seq := 0
	send := func() {
		seq++
		// Errors are expected around the crash window: the send path
		// reports the broken connection and re-dials on the next call.
		_ = a.Send("b", ident.NodeGroup, Data, tcpPayload{N: seq})
	}
	send()
	if env := recvOne(t, in1); env.Msg.(tcpPayload).N != 1 {
		t.Fatalf("got %+v", env)
	}

	// Crash b mid-stream and restart it on the same address.
	b1.Close()
	var b2 *TCPNetwork
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2, err = NewTCPNetworkOpts("b", addr, map[ident.PID]string{"a": a.Addr()}, TCPOptions{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer b2.Close()

	// Keep sending: the first write on the dead connection fails, the
	// sender drops it, and the next Send dials the restarted listener.
	in2 := b2.Inbox(ident.NodeGroup, Data)
	resumeDeadline := time.Now().Add(5 * time.Second)
	for {
		send()
		select {
		case env, ok := <-in2:
			if !ok {
				t.Fatal("restarted inbox closed")
			}
			got := env.Msg.(tcpPayload).N
			if got <= 1 {
				t.Fatalf("stale message %d after restart", got)
			}
			// Delivery resumed on a fresh connection pair.
			if c := a.Conns(); c != 1 {
				t.Fatalf("sender has %d live conns, want 1", c)
			}
			return
		case <-time.After(20 * time.Millisecond):
		}
		if time.Now().After(resumeDeadline) {
			t.Fatal("delivery did not resume after restart")
		}
	}
}

// TestTCPNetworkRestartedPeerFIFO: after the reconnect, the stream stays
// FIFO on the fresh connection.
func TestTCPNetworkRestartedPeerFIFO(t *testing.T) {
	a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b1, err := NewTCPNetworkOpts("b", "127.0.0.1:0", map[ident.PID]string{"a": a.Addr()}, TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	a.AddPeer("b", addr)
	b1.Close()

	var b2 *TCPNetwork
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2, err = NewTCPNetworkOpts("b", addr, nil, TCPOptions{})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	defer b2.Close()

	// Wait for a working connection, then verify a burst stays ordered.
	in := b2.Inbox(ident.NodeGroup, Data)
	sync := 0
	for {
		sync++
		_ = a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 0, S: "sync"})
		select {
		case <-in:
		case <-time.After(20 * time.Millisecond):
			if sync > 250 {
				t.Fatal("no connection to restarted peer")
			}
			continue
		}
		break
	}
	const count = 100
	for i := 1; i <= count; i++ {
		if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	want := 1
	drain := time.After(5 * time.Second)
	for want <= count {
		select {
		case env := <-in:
			p := env.Msg.(tcpPayload)
			if p.S == "sync" {
				continue // stragglers from the handshake loop
			}
			if p.N != want {
				t.Fatal(fmt.Sprintf("out of order: got %d want %d", p.N, want))
			}
			want++
		case <-drain:
			t.Fatalf("stalled at %d/%d", want-1, count)
		}
	}
}
