package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ident"
)

func recvOne(t *testing.T, in <-chan Envelope) Envelope {
	t.Helper()
	select {
	case e, ok := <-in:
		if !ok {
			t.Fatal("inbox closed")
		}
		return e
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
		return Envelope{}
	}
}

func TestMemNetworkBasicSendRecv(t *testing.T) {
	n := NewMemNetwork()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", Data, "hello"); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b.Inbox(Data))
	if env.From != "a" || env.Msg != "hello" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemNetworkFIFOPerSender(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send("b", Data, i); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg != i {
			t.Fatalf("out of order: got %v want %d", env.Msg, i)
		}
	}
}

func TestMemNetworkChannelsAreIsolated(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", Ctl, "ctl"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", Data, "data"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(Data)); env.Msg != "data" {
		t.Fatalf("data channel got %v", env.Msg)
	}
	if env := recvOne(t, b.Inbox(Ctl)); env.Msg != "ctl" {
		t.Fatalf("ctl channel got %v", env.Msg)
	}
}

func TestMemNetworkSelfSend(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()

	if err := a.Send("a", Ctl, 42); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(Ctl)); env.Msg != 42 || env.From != "a" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemNetworkUnknownPeer(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()
	if err := a.Send("ghost", Data, 1); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestMemNetworkDuplicateEndpoint(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint should fail")
	}
}

func TestMemNetworkClosedEndpointSend(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer b.Close()
	a.Close()
	if err := a.Send("b", Data, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemNetworkCrashDropsTraffic(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()

	inbox := b.Inbox(Data)
	n.Crash("b")
	if err := a.Send("b", Data, 1); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to crashed peer: err = %v, want ErrUnknownPeer", err)
	}
	select {
	case _, ok := <-inbox:
		if ok {
			t.Fatal("crashed endpoint received a message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crashed endpoint's inbox not closed")
	}
}

func TestMemNetworkCutAndHeal(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	n.Cut("a", "b")
	if err := a.Send("b", Data, "lost"); err != nil {
		t.Fatalf("send on cut link should silently drop, got %v", err)
	}
	// Reverse direction still works.
	if err := b.Send("a", Data, "back"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(Data)); env.Msg != "back" {
		t.Fatalf("got %v", env.Msg)
	}

	n.Heal("a", "b")
	if err := a.Send("b", Data, "again"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(Data)); env.Msg != "again" {
		t.Fatalf("after heal got %v", env.Msg)
	}
}

func TestMemNetworkDelayPreservesFIFO(t *testing.T) {
	n := NewMemNetwork()
	n.SetDelay(func(from, to ident.PID) time.Duration { return time.Millisecond })
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	const count = 20
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := a.Send("b", Data, i); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg != i {
			t.Fatalf("out of order with delay: got %v want %d", env.Msg, i)
		}
	}
	if elapsed := time.Since(start); elapsed < count*time.Millisecond {
		t.Fatalf("delay not applied: %v elapsed for %d paced messages", elapsed, count)
	}
}

func TestMemNetworkCloseUnblocksInbox(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	in := a.Inbox(Data)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range in {
		}
	}()
	a.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inbox reader not released by Close")
	}
}
