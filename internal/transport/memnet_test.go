package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
)

func recvOne(t *testing.T, in <-chan Envelope) Envelope {
	t.Helper()
	select {
	case e, ok := <-in:
		if !ok {
			t.Fatal("inbox closed")
		}
		return e
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for envelope")
		return Envelope{}
	}
}

func TestMemNetworkBasicSendRecv(t *testing.T) {
	n := NewMemNetwork()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", ident.NodeGroup, Data, "hello"); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b.Inbox(ident.NodeGroup, Data))
	if env.From != "a" || env.Msg != "hello" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemNetworkFIFOPerSender(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	const count = 500
	for i := 0; i < count; i++ {
		if err := a.Send("b", ident.NodeGroup, Data, i); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(ident.NodeGroup, Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg != i {
			t.Fatalf("out of order: got %v want %d", env.Msg, i)
		}
	}
}

func TestMemNetworkChannelsAreIsolated(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", ident.NodeGroup, Ctl, "ctl"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ident.NodeGroup, Data, "data"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Data)); env.Msg != "data" {
		t.Fatalf("data channel got %v", env.Msg)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Ctl)); env.Msg != "ctl" {
		t.Fatalf("ctl channel got %v", env.Msg)
	}
}

// TestMemNetworkGroupDemux: one endpoint pair carries several groups'
// traffic into independent (group, channel) inboxes with per-group FIFO.
func TestMemNetworkGroupDemux(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	groups := []ident.GroupID{1, 2, 9}
	for _, g := range groups {
		b.Register(g)
	}
	const perGroup = 50
	for i := 0; i < perGroup; i++ {
		for _, g := range groups {
			if err := a.Send("b", g, Data, int(g)*1000+i); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, g := range groups {
		in := b.Inbox(g, Data)
		for i := 0; i < perGroup; i++ {
			env := recvOne(t, in)
			if env.Group != g || env.Msg != int(g)*1000+i {
				t.Fatalf("group %d envelope %d: got %+v", g, i, env)
			}
		}
	}
}

// TestMemNetworkDropsUnknownGroupAndChannel: envelopes for an
// unregistered group or an undefined channel are dropped and counted
// instead of silently deposited into inboxes nothing consumes.
func TestMemNetworkDropsUnknownGroupAndChannel(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	if err := a.Send("b", 42, Data, "stray"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ident.NodeGroup, Channel(77), "bogus"); err != nil {
		t.Fatal(err)
	}
	st := b.Drops()
	if st.DroppedUnknownGroup != 1 || st.DroppedUnknownChannel != 1 {
		t.Fatalf("drops = %+v, want 1 unknown-group and 1 unknown-channel", st)
	}

	// Deregistering a live group closes its inboxes and drops what
	// arrives afterwards.
	b.Register(3)
	in := b.Inbox(3, Data)
	b.Deregister(3)
	if _, ok := <-in; ok {
		t.Fatal("inbox not closed by Deregister")
	}
	if err := a.Send("b", 3, Data, "late"); err != nil {
		t.Fatal(err)
	}
	if st := b.Drops(); st.DroppedUnknownGroup != 2 {
		t.Fatalf("drops after deregister = %+v, want 2 unknown-group", st)
	}
}

func TestMemNetworkSelfSend(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()

	if err := a.Send("a", ident.NodeGroup, Ctl, 42); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(ident.NodeGroup, Ctl)); env.Msg != 42 || env.From != "a" {
		t.Fatalf("got %+v", env)
	}
}

func TestMemNetworkUnknownPeer(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()
	if err := a.Send("ghost", ident.NodeGroup, Data, 1); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestMemNetworkDuplicateEndpoint(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	defer a.Close()
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate endpoint should fail")
	}
}

func TestMemNetworkClosedEndpointSend(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer b.Close()
	a.Close()
	if err := a.Send("b", ident.NodeGroup, Data, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemNetworkCrashDropsTraffic(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()

	inbox := b.Inbox(ident.NodeGroup, Data)
	n.Crash("b")
	if err := a.Send("b", ident.NodeGroup, Data, 1); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to crashed peer: err = %v, want ErrUnknownPeer", err)
	}
	select {
	case _, ok := <-inbox:
		if ok {
			t.Fatal("crashed endpoint received a message")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crashed endpoint's inbox not closed")
	}
}

func TestMemNetworkCutAndHeal(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	n.Cut("a", "b")
	if err := a.Send("b", ident.NodeGroup, Data, "lost"); err != nil {
		t.Fatalf("send on cut link should silently drop, got %v", err)
	}
	// Reverse direction still works.
	if err := b.Send("a", ident.NodeGroup, Data, "back"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(ident.NodeGroup, Data)); env.Msg != "back" {
		t.Fatalf("got %v", env.Msg)
	}

	n.Heal("a", "b")
	if err := a.Send("b", ident.NodeGroup, Data, "again"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Data)); env.Msg != "again" {
		t.Fatalf("after heal got %v", env.Msg)
	}
}

func TestMemNetworkDelayPreservesFIFO(t *testing.T) {
	n := NewMemNetwork()
	n.SetDelay(func(from, to ident.PID) time.Duration { return time.Millisecond })
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	const count = 20
	start := time.Now()
	for i := 0; i < count; i++ {
		if err := a.Send("b", ident.NodeGroup, Data, i); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(ident.NodeGroup, Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg != i {
			t.Fatalf("out of order with delay: got %v want %d", env.Msg, i)
		}
	}
	if elapsed := time.Since(start); elapsed < count*time.Millisecond {
		t.Fatalf("delay not applied: %v elapsed for %d paced messages", elapsed, count)
	}
}

func TestMemNetworkDelayOnFakeClockIsDeterministic(t *testing.T) {
	n := NewMemNetwork()
	fake := obs.NewFake(time.Unix(0, 0))
	n.SetClock(fake)
	n.SetDelay(func(from, to ident.PID) time.Duration { return 50 * time.Millisecond })
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	defer a.Close()
	defer b.Close()

	in := b.Inbox(ident.NodeGroup, Data)
	if err := a.Send("b", ident.NodeGroup, Data, "first"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", ident.NodeGroup, Data, "second"); err != nil {
		t.Fatal(err)
	}

	// Rendezvous with the paced-link goroutine: its timer for "first" is
	// registered, but the frozen clock must be holding the message back.
	fake.BlockUntil(1)
	select {
	case env := <-in:
		t.Fatalf("delivered %v with a frozen clock", env.Msg)
	default:
	}

	fake.Advance(50 * time.Millisecond)
	if env := recvOne(t, in); env.Msg != "first" {
		t.Fatalf("got %v, want first", env.Msg)
	}

	// The link serialises: "second" only starts its delay after "first"
	// delivers, and stays queued until the clock moves again.
	fake.BlockUntil(1)
	select {
	case env := <-in:
		t.Fatalf("second message delivered without an advance: %v", env.Msg)
	default:
	}
	fake.Advance(50 * time.Millisecond)
	if env := recvOne(t, in); env.Msg != "second" {
		t.Fatalf("got %v, want second", env.Msg)
	}
}

func TestMemNetworkCloseUnblocksInbox(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	in := a.Inbox(ident.NodeGroup, Data)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range in {
		}
	}()
	a.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inbox reader not released by Close")
	}
}
