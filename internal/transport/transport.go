// Package transport provides the point-to-point message passing channels of
// the paper's system model (§3.1): processes are fully connected by
// reliable, FIFO-ordered channels with no bound on transmission time.
//
// Two implementations are provided: MemNetwork, an in-process network built
// on goroutines and unbounded per-link queues (with optional fault
// injection for tests), and TCPNetwork, a TCP network for running a group
// across real processes using the hand-rolled binary codec of
// internal/codec with per-peer frame batching (encoding/gob remains
// available behind TCPOptions.Codec for one release).
//
// Messages are multiplexed onto logical channels so that the protocol, the
// failure detector and the consensus module each own an independent inbox:
// a slow application never starves the control plane, which is exactly the
// buffer separation the paper prescribes ("the protocol must always reserve
// separate buffer space for control information", §5.3).
package transport

import (
	"errors"

	"repro/internal/ident"
)

// Channel identifies a logical multiplexing channel on an endpoint.
type Channel uint8

const (
	// Data carries application multicast traffic (DATA messages). It is
	// the only channel subject to protocol-level flow control.
	Data Channel = iota + 1
	// Ctl carries SVS control traffic: INIT, PRED, VIEW dissemination,
	// stability gossip and flow-control credits.
	Ctl
	// Consensus carries the consensus module's rounds.
	Consensus
	// FailureDetector carries heartbeats.
	FailureDetector

	numChannels = FailureDetector
)

// Channels lists every defined channel.
func Channels() []Channel {
	return []Channel{Data, Ctl, Consensus, FailureDetector}
}

// validChannel reports whether ch is one of the defined channels. Wire
// transports reject envelopes outside this range instead of depositing
// into inboxes nothing consumes.
func validChannel(ch Channel) bool {
	return ch >= Data && ch <= numChannels
}

// Envelope is a received message together with its origin.
type Envelope struct {
	From ident.PID
	Msg  any
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownPeer is returned by Send when the destination is not part of
// the network.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Endpoint is one process's attachment to the network.
//
// Send enqueues m for delivery to the destination's inbox for channel ch;
// it never blocks on the receiver (channels are reliable and unbounded —
// bounded buffering and flow control live above, in the protocol, where
// the paper places them). Implementations guarantee per-sender FIFO order
// within each channel provided the sender calls Send from one goroutine,
// which the protocol engine does.
//
// Inbox returns the receive channel for ch; it is closed when the endpoint
// is closed.
type Endpoint interface {
	Self() ident.PID
	Send(to ident.PID, ch Channel, m any) error
	Inbox(ch Channel) <-chan Envelope
	Close() error
}
