// Package transport provides the point-to-point message passing channels of
// the paper's system model (§3.1): processes are fully connected by
// reliable, FIFO-ordered channels with no bound on transmission time.
//
// Two implementations are provided: MemNetwork, an in-process network built
// on goroutines and unbounded per-link queues (with optional fault
// injection for tests), and TCPNetwork, a TCP network for running groups
// across real processes using the hand-rolled binary codec of
// internal/codec with per-peer frame batching.
//
// Endpoints are shared by every group a node hosts: messages are
// multiplexed onto (GroupID, Channel) inboxes so that each group's
// protocol, consensus module and the node-wide failure detector each own
// an independent inbox. One TCP connection pair per peer therefore serves
// all the groups two nodes share. A slow application in one group never
// starves another group's data or control plane — the buffer separation
// the paper prescribes ("the protocol must always reserve separate buffer
// space for control information", §5.3), lifted to group granularity.
package transport

import (
	"errors"

	"repro/internal/ident"
)

// Channel identifies a logical multiplexing channel of one group on an
// endpoint.
type Channel uint8

const (
	// Data carries application multicast traffic (DATA messages). It is
	// the only channel subject to protocol-level flow control.
	Data Channel = iota + 1
	// Ctl carries SVS control traffic: INIT, PRED, VIEW dissemination,
	// stability gossip and flow-control credits.
	Ctl
	// Consensus carries the consensus module's rounds.
	Consensus
	// FailureDetector carries heartbeats. Heartbeats are node-scoped: they
	// always travel in ident.NodeGroup, regardless of how many groups the
	// node hosts.
	FailureDetector

	numChannels = FailureDetector
)

// Channels lists every defined channel.
func Channels() []Channel {
	return []Channel{Data, Ctl, Consensus, FailureDetector}
}

// validChannel reports whether ch is one of the defined channels. Wire
// transports drop (and count) envelopes outside this range instead of
// depositing into inboxes nothing consumes.
func validChannel(ch Channel) bool {
	return ch >= Data && ch <= numChannels
}

// groupChan keys one inbox: a (group, channel) pair.
type groupChan struct {
	g  ident.GroupID
	ch Channel
}

// Envelope is a received message together with its origin and the group
// it belongs to.
type Envelope struct {
	From  ident.PID
	Group ident.GroupID
	Msg   any
}

// DropStats counts envelopes an endpoint discarded at deposit time
// instead of delivering. Unknown means the (group, channel) inbox was
// never registered — traffic for a group this node does not host (or no
// longer hosts), or a channel outside the defined range.
type DropStats struct {
	DroppedUnknownGroup   uint64
	DroppedUnknownChannel uint64
}

// ErrClosed is returned by Send on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrUnknownPeer is returned by Send when the destination is not part of
// the network.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Endpoint is one process's attachment to the network, shared by every
// group the process participates in.
//
// Send enqueues m for delivery to the destination's inbox for (g, ch); it
// never blocks on the receiver (channels are reliable and unbounded —
// bounded buffering and flow control live above, in the protocol, where
// the paper places them). Implementations guarantee per-sender FIFO order
// within each (group, channel) provided the sender calls Send from one
// goroutine, which the protocol engine does.
//
// Inbox returns the receive channel for (g, ch), registering it if
// needed; it is closed when the endpoint closes or the group is
// deregistered. An envelope arriving for a (group, channel) pair that was
// never registered is dropped and counted, not deposited: registration is
// how an endpoint knows which groups this node hosts.
//
// InboxBatch is the amortised form of Inbox: one receive yields every
// envelope pending for (g, ch) at that moment (bounded per receive),
// preserving FIFO order. The yielded slice is owned by the transport and
// is valid only until the consumer's next receive from the same channel —
// a consumer keeping an envelope (or its payload) past that point must
// copy it. An inbox is consumed either via Inbox or via InboxBatch, fixed
// by whichever is called first for that (g, ch); mixing the two on one
// inbox panics.
//
// Register creates the inboxes of every defined channel of group g ahead
// of traffic (idempotent); Deregister removes and closes them, so stray
// traffic for a departed group is dropped and counted instead of
// accumulating. The reserved ident.NodeGroup is registered at endpoint
// creation.
type Endpoint interface {
	Self() ident.PID
	Send(to ident.PID, g ident.GroupID, ch Channel, m any) error
	Inbox(g ident.GroupID, ch Channel) <-chan Envelope
	InboxBatch(g ident.GroupID, ch Channel) <-chan []Envelope
	Register(g ident.GroupID)
	Deregister(g ident.GroupID)
	Close() error
}
