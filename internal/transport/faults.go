package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
)

// FaultKind labels one category of injected fault, both in FaultStats and
// in the transport_faults_total{kind=...} metric.
type FaultKind string

const (
	// FaultPartition: a message silently dropped by a link cut.
	FaultPartition FaultKind = "partition"
	// FaultDrop: a message lost to a probabilistic per-link drop rule.
	FaultDrop FaultKind = "drop"
	// FaultDelay: a message held back by a per-link delay rule.
	FaultDelay FaultKind = "delay"
	// FaultDuplicate: a message sent twice by a per-link duplication rule.
	FaultDuplicate FaultKind = "duplicate"
	// FaultCrash: an endpoint hard-closed by Crash.
	FaultCrash FaultKind = "crash"
)

// FaultStats counts injected faults since the controller was created.
type FaultStats struct {
	Partitioned uint64 // messages dropped by link cuts
	Dropped     uint64 // messages dropped by probabilistic rules
	Delayed     uint64 // messages routed through a delay queue
	Duplicated  uint64 // extra copies sent by duplication rules
	Crashed     uint64 // endpoints hard-closed by Crash
}

// Faults is a deterministic fault-injection controller for transport
// endpoints. It wraps any Endpoint implementation (MemNetwork and
// TCPNetwork alike) with send-side filtering: symmetric and asymmetric
// partitions between peer sets, per-link probabilistic drop and
// duplication, per-link FIFO-preserving delays, and process crashes
// (hard-closing the wrapped endpoint).
//
// All randomness comes from one seeded rand source and all time from an
// obs.Clock, so a DES harness driving an obs.Fake replays the exact same
// fault schedule run after run. Every injected fault is counted
// (FaultStats) and, after Instrument, exported as
// transport_faults_total{kind=partition|drop|delay|duplicate|crash}.
//
// Faults filters on the sending side: a rule for the link a→b takes
// effect at a's controller. In a multi-process deployment each process
// owns its controller, so a symmetric partition is expressed by
// installing the cut at both sides (which is also how real partitions
// behave — each side stops hearing the other independently).
type Faults struct {
	mu    sync.Mutex
	clock obs.Clock
	rng   *rand.Rand
	eps   map[ident.PID]*FaultEndpoint

	cut   map[link]bool
	drop  map[link]float64
	delay map[link]time.Duration
	dup   map[link]float64

	stats FaultStats
	m     faultMetrics
}

// faultMetrics holds the optional obs mirrors of the fault counters. All
// reads and writes happen under Faults.mu, so Instrument is safe while
// faults are being injected.
type faultMetrics struct {
	partition *obs.Counter
	drop      *obs.Counter
	delay     *obs.Counter
	duplicate *obs.Counter
	crash     *obs.Counter
}

// NewFaults returns a controller with no rules, drawing randomness from
// seed and time from the wall clock (see SetClock).
func NewFaults(seed int64) *Faults {
	return &Faults{
		clock: obs.Wall{},
		rng:   rand.New(rand.NewSource(seed)),
		eps:   make(map[ident.PID]*FaultEndpoint),
		cut:   make(map[link]bool),
		drop:  make(map[link]float64),
		delay: make(map[link]time.Duration),
		dup:   make(map[link]float64),
	}
}

// SetClock replaces the clock pacing delayed links — an obs.Fake makes
// delayed delivery deterministic. Install it before the first Delay rule;
// links created earlier keep the clock they started with.
func (f *Faults) SetClock(c obs.Clock) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c == nil {
		c = obs.Wall{}
	}
	f.clock = c
}

// Instrument mirrors the fault counters onto ob as
// transport_faults_total{kind=...}. Safe to call while faults flow.
func (f *Faults) Instrument(ob *obs.Obs) {
	if ob == nil {
		return
	}
	kind := func(k FaultKind) *obs.Counter {
		return ob.CounterL("transport_faults_total", obs.L("kind", string(k)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.m = faultMetrics{
		partition: kind(FaultPartition),
		drop:      kind(FaultDrop),
		delay:     kind(FaultDelay),
		duplicate: kind(FaultDuplicate),
		crash:     kind(FaultCrash),
	}
}

// Stats returns a snapshot of the fault counters.
func (f *Faults) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Wrap returns a fault-injecting endpoint around ep and registers it with
// the controller under ep.Self(), making it a target for Crash.
func (f *Faults) Wrap(ep Endpoint) *FaultEndpoint {
	fe := &FaultEndpoint{f: f, under: ep, self: ep.Self(), links: make(map[ident.PID]*delayLink)}
	f.mu.Lock()
	f.eps[fe.self] = fe
	f.mu.Unlock()
	return fe
}

// Partition cuts every link between the sets a and b, in both directions.
// Links within each set are untouched.
func (f *Faults) Partition(a, b []ident.PID) {
	f.PartitionOneWay(a, b)
	f.PartitionOneWay(b, a)
}

// PartitionOneWay cuts every link from a process in from to a process in
// to — an asymmetric partition: to's messages still reach from.
func (f *Faults) PartitionOneWay(from, to []ident.PID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, a := range from {
		for _, b := range to {
			if a != b {
				f.cut[link{a, b}] = true
			}
		}
	}
}

// HealLink restores the one-directional link from→to, removing any cut,
// drop, delay or duplication rule on it.
func (f *Faults) HealLink(from, to ident.PID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := link{from, to}
	delete(f.cut, l)
	delete(f.drop, l)
	delete(f.delay, l)
	delete(f.dup, l)
}

// Heal removes every rule: all partitions, drops, delays and duplication.
// Messages already sitting in delay queues still deliver after their
// original delay.
func (f *Faults) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cut = make(map[link]bool)
	f.drop = make(map[link]float64)
	f.delay = make(map[link]time.Duration)
	f.dup = make(map[link]float64)
}

// Drop installs a probabilistic drop rule on the link from→to: each
// message is lost with probability p. p <= 0 removes the rule.
func (f *Faults) Drop(from, to ident.PID, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p <= 0 {
		delete(f.drop, link{from, to})
		return
	}
	f.drop[link{from, to}] = p
}

// Delay installs a fixed per-message delay on the link from→to,
// preserving FIFO order (messages traverse a per-link queue). d <= 0
// removes the rule; messages still queued keep their original delay and
// later sends queue behind them, so the link never reorders.
func (f *Faults) Delay(from, to ident.PID, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if d <= 0 {
		delete(f.delay, link{from, to})
		return
	}
	f.delay[link{from, to}] = d
}

// Duplicate installs a probabilistic duplication rule on the link
// from→to: each message is sent twice with probability p. p <= 0 removes
// the rule.
func (f *Faults) Duplicate(from, to ident.PID, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p <= 0 {
		delete(f.dup, link{from, to})
		return
	}
	f.dup[link{from, to}] = p
}

// Crash hard-closes the wrapped endpoint registered under p: its
// underlying endpoint closes (dropping its queues, breaking its
// connections) and every subsequent Send through the wrapper fails with
// ErrClosed. It returns an error if no wrapped endpoint is registered
// under p.
func (f *Faults) Crash(p ident.PID) error {
	f.mu.Lock()
	fe := f.eps[p]
	if fe == nil {
		f.mu.Unlock()
		return fmt.Errorf("transport: faults: no endpoint registered for %s", p)
	}
	delete(f.eps, p)
	f.stats.Crashed++
	f.m.crash.Inc()
	f.mu.Unlock()
	fe.shutdown()
	return fe.under.Close()
}

// verdict is one atomic fault decision for a send, taken under f.mu so
// the rng consumption order is deterministic.
type verdict struct {
	lost  bool
	dup   bool
	delay time.Duration
	// route forces the send through the link's delay queue even when the
	// current delay is zero, preserving FIFO behind queued messages.
	route bool
}

// judge decides the fate of one message on from→to and counts it.
func (f *Faults) judge(from, to ident.PID) verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	l := link{from, to}
	if f.cut[l] {
		f.stats.Partitioned++
		f.m.partition.Inc()
		return verdict{lost: true}
	}
	if p, ok := f.drop[l]; ok && f.rng.Float64() < p {
		f.stats.Dropped++
		f.m.drop.Inc()
		return verdict{lost: true}
	}
	var v verdict
	if p, ok := f.dup[l]; ok && f.rng.Float64() < p {
		f.stats.Duplicated++
		f.m.duplicate.Inc()
		v.dup = true
	}
	if d, ok := f.delay[l]; ok {
		f.stats.Delayed++
		f.m.delay.Inc()
		v.delay = d
		v.route = true
	}
	return v
}

// FaultEndpoint is an Endpoint whose sends pass through a Faults
// controller. Everything but Send delegates to the wrapped endpoint.
type FaultEndpoint struct {
	f     *Faults
	under Endpoint
	self  ident.PID

	mu     sync.Mutex
	closed bool
	// links holds the per-destination delay queues, created lazily by the
	// first delayed send and used for every later send on that link so
	// FIFO order survives rule changes.
	links map[ident.PID]*delayLink
}

var _ Endpoint = (*FaultEndpoint)(nil)

// Self implements Endpoint.
func (e *FaultEndpoint) Self() ident.PID { return e.self }

// Inbox implements Endpoint.
func (e *FaultEndpoint) Inbox(g ident.GroupID, ch Channel) <-chan Envelope {
	return e.under.Inbox(g, ch)
}

// InboxBatch implements Endpoint.
func (e *FaultEndpoint) InboxBatch(g ident.GroupID, ch Channel) <-chan []Envelope {
	return e.under.InboxBatch(g, ch)
}

// Register implements Endpoint.
func (e *FaultEndpoint) Register(g ident.GroupID) { e.under.Register(g) }

// Deregister implements Endpoint.
func (e *FaultEndpoint) Deregister(g ident.GroupID) { e.under.Deregister(g) }

// Instrument forwards to the wrapped endpoint when it supports the hook,
// so core.NewNode instruments the real transport through the wrapper.
func (e *FaultEndpoint) Instrument(ob *obs.Obs) {
	if in, ok := e.under.(interface{ Instrument(*obs.Obs) }); ok {
		in.Instrument(ob)
	}
}

// Send implements Endpoint: the message passes the controller's rules for
// the link self→to before reaching the wrapped endpoint. Messages to self
// bypass fault injection — a process's loopback never partitions.
func (e *FaultEndpoint) Send(to ident.PID, g ident.GroupID, ch Channel, m any) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()
	if to == e.self {
		return e.under.Send(to, g, ch, m)
	}
	v := e.f.judge(e.self, to)
	if v.lost {
		return nil // dropped by fault injection, like MemNetwork.Cut
	}
	n := 1
	if v.dup {
		n = 2
	}
	if !v.route {
		// The link may still have queued delayed messages; overtaking them
		// would reorder. Route through the queue (at zero delay) if it
		// exists.
		e.mu.Lock()
		dl := e.links[to]
		e.mu.Unlock()
		if dl == nil {
			var err error
			for i := 0; i < n; i++ {
				if e2 := e.under.Send(to, g, ch, m); e2 != nil {
					err = e2
				}
			}
			return err
		}
		v.delay = 0
	}
	dl := e.delayLink(to)
	for i := 0; i < n; i++ {
		dl.push(delayedMsg{to: to, g: g, ch: ch, m: m, delay: v.delay})
	}
	return nil
}

// delayLink returns (creating if needed) the delay queue for self→to.
func (e *FaultEndpoint) delayLink(to ident.PID) *delayLink {
	e.mu.Lock()
	defer e.mu.Unlock()
	dl, ok := e.links[to]
	if !ok {
		e.f.mu.Lock()
		clock := e.f.clock
		e.f.mu.Unlock()
		dl = newDelayLink(clock, e.under)
		e.links[to] = dl
	}
	return dl
}

// Close implements Endpoint: closes the wrapped endpoint and stops the
// delay queues (in-flight delayed messages are dropped, crash-stop).
func (e *FaultEndpoint) Close() error {
	e.shutdown()
	e.f.mu.Lock()
	if e.f.eps[e.self] == e {
		delete(e.f.eps, e.self)
	}
	e.f.mu.Unlock()
	return e.under.Close()
}

func (e *FaultEndpoint) shutdown() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	links := make([]*delayLink, 0, len(e.links))
	for _, dl := range e.links {
		links = append(links, dl)
	}
	e.mu.Unlock()
	for _, dl := range links {
		dl.close()
	}
}

// delayedMsg is one message traversing a delayed link.
type delayedMsg struct {
	to    ident.PID
	g     ident.GroupID
	ch    Channel
	m     any
	delay time.Duration
}

// delayLink serialises messages on a delayed link: each message occupies
// the link for its delay before reaching the wrapped endpoint, preserving
// FIFO order. Delays are measured on the controller's clock.
type delayLink struct {
	clock obs.Clock
	under Endpoint

	mu     sync.Mutex
	cond   *sync.Cond
	items  []delayedMsg
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

func newDelayLink(clock obs.Clock, under Endpoint) *delayLink {
	dl := &delayLink{clock: clock, under: under, done: make(chan struct{})}
	dl.cond = sync.NewCond(&dl.mu)
	dl.wg.Add(1)
	go dl.run()
	return dl
}

func (dl *delayLink) push(m delayedMsg) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	if dl.closed {
		return
	}
	dl.items = append(dl.items, m)
	dl.cond.Signal()
}

func (dl *delayLink) close() {
	dl.mu.Lock()
	if dl.closed {
		dl.mu.Unlock()
		return
	}
	dl.closed = true
	close(dl.done)
	dl.cond.Signal()
	dl.mu.Unlock()
	dl.wg.Wait()
}

func (dl *delayLink) run() {
	defer dl.wg.Done()
	for {
		dl.mu.Lock()
		for len(dl.items) == 0 && !dl.closed {
			dl.cond.Wait()
		}
		if dl.closed {
			dl.mu.Unlock()
			return
		}
		m := dl.items[0]
		copy(dl.items, dl.items[1:])
		dl.items = dl.items[:len(dl.items)-1]
		dl.mu.Unlock()

		if m.delay > 0 {
			t := dl.clock.NewTimer(m.delay)
			select {
			case <-t.C():
			case <-dl.done:
				t.Stop()
				return
			}
		}
		// Best-effort like every transport send path: a failed send is the
		// peer's crash, not the injector's problem.
		_ = dl.under.Send(m.to, m.g, m.ch, m.m)
	}
}
