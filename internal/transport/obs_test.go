package transport

import (
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
)

// waitCounter polls reg until the named counter reaches want.
func waitCounter(t *testing.T, reg *obs.Registry, name string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := reg.Snapshot().Counters[name]; got >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %s = %d, want >= %d (all: %v)",
				name, reg.Snapshot().Counters[name], want, reg.Snapshot().Counters)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMemEndpointDropMetrics(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	reg := obs.NewRegistry()
	b.Instrument(obs.New(nil, reg, nil))

	// Traffic for a group b never registered is dropped and counted.
	if err := a.Send("b", 99, Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Traffic on an undefined channel likewise, under its own reason.
	if err := a.Send("b", 99, Channel(200), tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, reg, "transport_dropped_total{reason=unknown_group}", 1)
	waitCounter(t, reg, "transport_dropped_total{reason=unknown_channel}", 1)
	if d := b.Drops(); d.DroppedUnknownGroup != 1 || d.DroppedUnknownChannel != 1 {
		t.Fatalf("DropStats = %+v, want 1/1", d)
	}
}

func TestTCPWireMetrics(t *testing.T) {
	regA := obs.NewRegistry()
	regB := obs.NewRegistry()
	a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, TCPOptions{Obs: obs.New(nil, regA, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTCPNetworkOpts("b", "127.0.0.1:0", nil, TCPOptions{Obs: obs.New(nil, regB, nil)})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	a.AddPeer("b", b.Addr())

	const g = ident.GroupID(3)
	b.Register(g)
	inbox := b.Inbox(g, Data)

	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := a.Send("b", g, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < msgs; i++ {
		<-inbox
	}

	waitCounter(t, regA, "tcp_envelopes_sent_total", msgs)
	waitCounter(t, regA, "tcp_frames_sent_total", 1)
	waitCounter(t, regB, "tcp_envelopes_recv_total", msgs)
	waitCounter(t, regB, "tcp_frames_recv_total", 1)

	snapA := regA.Snapshot()
	if snapA.Counters["tcp_bytes_sent_total"] == 0 {
		t.Fatal("tcp_bytes_sent_total stayed zero")
	}
	if h := snapA.Histograms["tcp_batch_envelopes"]; h.Count == 0 {
		t.Fatal("no batch-size samples")
	}
	// The obs mirrors and the atomic Stats() must agree once drained.
	st := a.Stats()
	if got := regA.Snapshot().Counters["tcp_envelopes_sent_total"]; got != st.EnvelopesSent {
		t.Fatalf("obs %d != Stats %d", got, st.EnvelopesSent)
	}

	// An envelope for an unregistered group is dropped and counted at the
	// receiver under the unknown_group reason.
	if err := a.Send("b", 77, Data, tcpPayload{N: 9}); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, regB, "transport_dropped_total{reason=unknown_group}", 1)
}
