package transport

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
)

// The tests in this file pin the crash-stop close contract of every
// endpoint implementation: Close is safe under double/concurrent close
// and concurrent Send, and no envelope is delivered after Close returns.

func TestUBQConcurrentClose(t *testing.T) {
	q := newUBQ()
	q.push(Envelope{From: "x"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.close()
		}()
	}
	wg.Wait()
	// Every close call returned only after the pump exited: the out
	// channel must already be closed.
	select {
	case _, ok := <-q.out:
		if ok {
			t.Fatal("envelope emitted after close returned")
		}
	default:
		t.Fatal("out channel not closed after close returned")
	}
	q.push(Envelope{From: "y"}) // must be a no-op, not a panic
}

func TestMemEndpointDoubleClose(t *testing.T) {
	n := NewMemNetwork()
	ep, err := n.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ep.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := ep.Send("p", Data, 1); err == nil {
		t.Fatal("send after close should fail")
	}
}

// TestMemEndpointNoDeliveryAfterClose hammers a receiver with sends while
// it closes; once Close has returned, its inboxes must be silent.
func TestMemEndpointNoDeliveryAfterClose(t *testing.T) {
	n := NewMemNetwork()
	rcv, err := n.Endpoint("rcv")
	if err != nil {
		t.Fatal(err)
	}
	snd, err := n.Endpoint("snd")
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	in := rcv.Inbox(Data)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = snd.Send("rcv", Data, 1)
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond) // let traffic flow
	if err := rcv.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close returned the pump has exited: the only thing left to
	// observe on the inbox is its closure.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				close(stop)
				wg.Wait()
				return
			}
			t.Fatal("envelope delivered after Close returned")
		case <-deadline:
			t.Fatal("inbox never closed")
		}
	}
}

func TestTCPNetworkConcurrentClose(t *testing.T) {
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, TCPOptions{Codec: tc.c})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if err := a.Close(); err != nil {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestTCPNetworkSendDuringClose closes an endpoint while senders hammer
// it from both sides: no panic, sends eventually fail, and the receiver's
// inboxes are silent after Close returns.
func TestTCPNetworkSendDuringClose(t *testing.T) {
	a, b := tcpPair(t)
	in := a.Inbox(Data)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = b.Send("a", Data, tcpPayload{N: 1})
					_ = a.Send("b", Data, tcpPayload{N: 2})
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				close(stop)
				wg.Wait()
				if err := a.Send("b", Data, tcpPayload{}); err == nil {
					t.Fatal("send on closed endpoint should fail")
				}
				return
			}
			t.Fatal("envelope delivered after Close returned")
		case <-deadline:
			t.Fatal("inbox never closed")
		}
	}
}

// pipeNetwork builds a bare TCPNetwork and peerConn over a synchronous
// net.Pipe for deterministic white-box tests of the batch writer.
func pipeNetwork(maxFrame int) (*TCPNetwork, *peerConn, net.Conn) {
	c1, c2 := net.Pipe()
	n := &TCPNetwork{
		self:      "a",
		opts:      TCPOptions{MaxFrame: maxFrame},
		fromEnc:   codec.AppendString(nil, "a"),
		closeDone: make(chan struct{}),
		conns:     make(map[ident.PID]*peerConn),
	}
	n.maxBody = maxFrame - len(n.fromEnc)
	pc := newPeerConn(c1, CodecBinary, &n.bytesSent)
	return n, pc, c2
}

// readFrames decodes frames off raw until count envelopes arrived,
// returning per-frame envelope payloads.
func readFrames(t *testing.T, raw net.Conn, maxFrame, count int) [][]tcpPayload {
	t.Helper()
	br := bufio.NewReader(raw)
	var frames [][]tcpPayload
	total := 0
	for total < count {
		flen, err := binary.ReadUvarint(br)
		if err != nil {
			t.Fatal(err)
		}
		if flen > uint64(maxFrame) {
			t.Fatalf("frame of %d bytes exceeds MaxFrame %d", flen, maxFrame)
		}
		frame := make([]byte, flen)
		if _, err := io.ReadFull(br, frame); err != nil {
			t.Fatal(err)
		}
		r := codec.NewReader(frame)
		if from := r.String(); from != "a" {
			t.Fatalf("frame sender = %q, want a", from)
		}
		var envs []tcpPayload
		for r.Len() > 0 {
			if ch := Channel(r.Byte()); ch != Data {
				t.Fatalf("channel = %d, want %d", ch, Data)
			}
			msg, err := codec.Unmarshal(r)
			if err != nil {
				t.Fatal(err)
			}
			envs = append(envs, msg.(tcpPayload))
			total++
		}
		frames = append(frames, envs)
	}
	return frames
}

// TestWriteLoopCoalescesBacklog drives the batch writer deterministically:
// envelopes enqueued before the writer starts must leave in one frame.
func TestWriteLoopCoalescesBacklog(t *testing.T) {
	n, pc, raw := pipeNetwork(defaultMaxFrame)
	defer raw.Close()

	const count = 50
	for i := 0; i < count; i++ {
		if err := n.enqueue("b", pc, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	n.wg.Add(1)
	go n.writeLoop("b", pc)
	defer func() {
		pc.close()
		n.wg.Wait()
	}()

	frames := readFrames(t, raw, defaultMaxFrame, count)
	if len(frames) != 1 {
		t.Fatalf("backlog left in %d frames, want 1", len(frames))
	}
	for i, p := range frames[0] {
		if p.N != i {
			t.Fatalf("envelope %d out of order: %+v", i, p)
		}
	}
}

// TestWriteLoopChunksAtMaxFrame: a drained backlog larger than MaxFrame
// must be split at envelope boundaries, never exceeding the frame limit
// the receiver enforces.
func TestWriteLoopChunksAtMaxFrame(t *testing.T) {
	const maxFrame = 256
	n, pc, raw := pipeNetwork(maxFrame)
	defer raw.Close()

	payload := string(make([]byte, 40)) // ~45 B per envelope encoded
	const count = 40                    // ~1.8 KiB backlog >> 256 B frames
	for i := 0; i < count; i++ {
		if err := n.enqueue("b", pc, Data, tcpPayload{N: i, S: payload}); err != nil {
			t.Fatal(err)
		}
	}
	n.wg.Add(1)
	go n.writeLoop("b", pc)
	defer func() {
		pc.close()
		n.wg.Wait()
	}()

	frames := readFrames(t, raw, maxFrame, count)
	if len(frames) < 2 {
		t.Fatalf("oversized backlog left in %d frames, want several", len(frames))
	}
	seen := 0
	for _, envs := range frames {
		for _, p := range envs {
			if p.N != seen {
				t.Fatalf("envelope %d out of order: %+v", seen, p)
			}
			seen++
		}
	}
	if seen != count {
		t.Fatalf("got %d envelopes, want %d", seen, count)
	}
}

// TestSendRejectsOversizedMessage: a single message that cannot fit any
// frame is refused synchronously instead of poisoning the connection.
func TestSendRejectsOversizedMessage(t *testing.T) {
	a, b := tcpPairOpts(t, TCPOptions{MaxFrame: 128})
	big := tcpPayload{S: string(make([]byte, 4096))}
	if err := a.Send("b", Data, big); err == nil {
		t.Fatal("oversized message accepted")
	}
	// The connection survives and small messages still flow.
	if err := a.Send("b", Data, tcpPayload{N: 5}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(Data)); env.Msg.(tcpPayload).N != 5 {
		t.Fatalf("got %+v", env)
	}
}

// TestNewTCPNetworkRejectsUnknownCodec: an invalid codec must fail fast
// instead of silently black-holing traffic.
func TestNewTCPNetworkRejectsUnknownCodec(t *testing.T) {
	if _, err := NewTCPNetworkOpts("x", "127.0.0.1:0", nil, TCPOptions{Codec: Codec(9)}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestGobCloseUnblocksStuckSend: a gob-mode Send blocked mid-write holds
// pc.mu; close must shut the socket first (not lock first), or Close
// deadlocks behind the stuck writer.
func TestGobCloseUnblocksStuckSend(t *testing.T) {
	c1, c2 := net.Pipe() // synchronous: Encode blocks until the far end reads
	defer c2.Close()
	n := &TCPNetwork{
		self:      "a",
		opts:      TCPOptions{Codec: CodecGob, MaxFrame: defaultMaxFrame},
		fromEnc:   codec.AppendString(nil, "a"),
		closeDone: make(chan struct{}),
		conns:     make(map[ident.PID]*peerConn),
	}
	n.maxBody = n.opts.MaxFrame - len(n.fromEnc)
	pc := newPeerConn(c1, CodecGob, &n.bytesSent)
	n.conns["b"] = pc

	errC := make(chan error, 1)
	go func() { errC <- n.Send("b", Data, tcpPayload{N: 1}) }()
	time.Sleep(20 * time.Millisecond) // let Send block inside Encode, holding pc.mu

	done := make(chan struct{})
	go func() {
		pc.close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("peerConn.close deadlocked behind a blocked gob Send")
	}
	select {
	case err := <-errC:
		if err == nil {
			t.Fatal("blocked send should fail once the conn closes")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked gob Send never unblocked")
	}
}

// TestReadLoopRejectsBogusChannel: an envelope carrying an undefined
// channel byte is a protocol violation — the connection drops and no
// orphan inbox is created for a channel nothing consumes.
func TestReadLoopRejectsBogusChannel(t *testing.T) {
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A well-formed frame whose envelope names channel 77.
	body := codec.AppendString(nil, "evil")
	body = codec.AppendByte(body, 77)
	body, err = codec.Marshal(body, tcpPayload{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("bogus channel not rejected")
	}
	a.mu.Lock()
	_, orphan := a.inboxes[Channel(77)]
	a.mu.Unlock()
	if orphan {
		t.Fatal("orphan inbox created for bogus channel")
	}
}
