package transport

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
)

// The tests in this file pin the crash-stop close contract of every
// endpoint implementation: Close is safe under double/concurrent close
// and concurrent Send, and no envelope is delivered after Close returns.

func TestUBQConcurrentClose(t *testing.T) {
	q := newUBQ()
	q.push(Envelope{From: "x"})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.close()
		}()
	}
	wg.Wait()
	// Every close call returned only after the pump exited: the out
	// channel must already be closed.
	select {
	case _, ok := <-q.out:
		if ok {
			t.Fatal("envelope emitted after close returned")
		}
	default:
		t.Fatal("out channel not closed after close returned")
	}
	q.push(Envelope{From: "y"}) // must be a no-op, not a panic
}

func TestMemEndpointDoubleClose(t *testing.T) {
	n := NewMemNetwork()
	ep, err := n.Endpoint("p")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ep.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if err := ep.Send("p", ident.NodeGroup, Data, 1); err == nil {
		t.Fatal("send after close should fail")
	}
}

// TestMemEndpointNoDeliveryAfterClose hammers a receiver with sends while
// it closes; once Close has returned, its inboxes must be silent.
func TestMemEndpointNoDeliveryAfterClose(t *testing.T) {
	n := NewMemNetwork()
	rcv, err := n.Endpoint("rcv")
	if err != nil {
		t.Fatal(err)
	}
	snd, err := n.Endpoint("snd")
	if err != nil {
		t.Fatal(err)
	}
	defer snd.Close()

	in := rcv.Inbox(ident.NodeGroup, Data)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = snd.Send("rcv", ident.NodeGroup, Data, 1)
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond) // let traffic flow
	if err := rcv.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close returned the pump has exited: the only thing left to
	// observe on the inbox is its closure.
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				close(stop)
				wg.Wait()
				return
			}
			t.Fatal("envelope delivered after Close returned")
		case <-deadline:
			t.Fatal("inbox never closed")
		}
	}
}

func TestTCPNetworkConcurrentClose(t *testing.T) {
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.Close(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

// TestTCPNetworkSendDuringClose closes an endpoint while senders hammer
// it from both sides: no panic, sends eventually fail, and the receiver's
// inboxes are silent after Close returns.
func TestTCPNetworkSendDuringClose(t *testing.T) {
	a, b := tcpPair(t)
	in := a.Inbox(ident.NodeGroup, Data)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = b.Send("a", ident.NodeGroup, Data, tcpPayload{N: 1})
					_ = a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 2})
				}
			}
		}()
	}

	time.Sleep(5 * time.Millisecond)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-in:
			if !ok {
				close(stop)
				wg.Wait()
				if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{}); err == nil {
					t.Fatal("send on closed endpoint should fail")
				}
				return
			}
			t.Fatal("envelope delivered after Close returned")
		case <-deadline:
			t.Fatal("inbox never closed")
		}
	}
}

// pipeNetwork builds a bare TCPNetwork and peerConn over a synchronous
// net.Pipe for deterministic white-box tests of the batch writer.
func pipeNetwork(maxFrame int) (*TCPNetwork, *peerConn, net.Conn) {
	c1, c2 := net.Pipe()
	n := &TCPNetwork{
		self:      "a",
		opts:      TCPOptions{MaxFrame: maxFrame},
		fromEnc:   codec.AppendString(nil, "a"),
		closeDone: make(chan struct{}),
		conns:     make(map[ident.PID]*peerConn),
	}
	n.maxBody = maxFrame - len(n.fromEnc)
	pc := newPeerConn(c1)
	return n, pc, c2
}

// readFrames decodes frames off raw until count envelopes arrived,
// returning per-frame envelope payloads.
func readFrames(t *testing.T, raw net.Conn, maxFrame, count int) [][]tcpPayload {
	t.Helper()
	br := bufio.NewReader(raw)
	var frames [][]tcpPayload
	total := 0
	for total < count {
		flen, err := binary.ReadUvarint(br)
		if err != nil {
			t.Fatal(err)
		}
		if flen > uint64(maxFrame) {
			t.Fatalf("frame of %d bytes exceeds MaxFrame %d", flen, maxFrame)
		}
		frame := make([]byte, flen)
		if _, err := io.ReadFull(br, frame); err != nil {
			t.Fatal(err)
		}
		r := codec.NewReader(frame)
		if from := r.String(); from != "a" {
			t.Fatalf("frame sender = %q, want a", from)
		}
		var envs []tcpPayload
		for r.Len() > 0 {
			if g := ident.GroupID(r.Uvarint()); g != ident.NodeGroup {
				t.Fatalf("group = %d, want %d", g, ident.NodeGroup)
			}
			if ch := Channel(r.Byte()); ch != Data {
				t.Fatalf("channel = %d, want %d", ch, Data)
			}
			msg, err := codec.Unmarshal(r)
			if err != nil {
				t.Fatal(err)
			}
			envs = append(envs, msg.(tcpPayload))
			total++
		}
		frames = append(frames, envs)
	}
	return frames
}

// TestWriteLoopCoalescesBacklog drives the batch writer deterministically:
// envelopes enqueued before the writer starts must leave in one frame.
func TestWriteLoopCoalescesBacklog(t *testing.T) {
	n, pc, raw := pipeNetwork(defaultMaxFrame)
	defer raw.Close()

	const count = 50
	for i := 0; i < count; i++ {
		if err := n.enqueue("b", pc, ident.NodeGroup, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	n.wg.Add(1)
	go n.writeLoop("b", pc)
	defer func() {
		pc.close()
		n.wg.Wait()
	}()

	frames := readFrames(t, raw, defaultMaxFrame, count)
	if len(frames) != 1 {
		t.Fatalf("backlog left in %d frames, want 1", len(frames))
	}
	for i, p := range frames[0] {
		if p.N != i {
			t.Fatalf("envelope %d out of order: %+v", i, p)
		}
	}
}

// TestWriteLoopChunksAtMaxFrame: a drained backlog larger than MaxFrame
// must be split at envelope boundaries, never exceeding the frame limit
// the receiver enforces.
func TestWriteLoopChunksAtMaxFrame(t *testing.T) {
	const maxFrame = 256
	n, pc, raw := pipeNetwork(maxFrame)
	defer raw.Close()

	payload := string(make([]byte, 40)) // ~45 B per envelope encoded
	const count = 40                    // ~1.8 KiB backlog >> 256 B frames
	for i := 0; i < count; i++ {
		if err := n.enqueue("b", pc, ident.NodeGroup, Data, tcpPayload{N: i, S: payload}); err != nil {
			t.Fatal(err)
		}
	}
	n.wg.Add(1)
	go n.writeLoop("b", pc)
	defer func() {
		pc.close()
		n.wg.Wait()
	}()

	frames := readFrames(t, raw, maxFrame, count)
	if len(frames) < 2 {
		t.Fatalf("oversized backlog left in %d frames, want several", len(frames))
	}
	seen := 0
	for _, envs := range frames {
		for _, p := range envs {
			if p.N != seen {
				t.Fatalf("envelope %d out of order: %+v", seen, p)
			}
			seen++
		}
	}
	if seen != count {
		t.Fatalf("got %d envelopes, want %d", seen, count)
	}
}

// TestSendRejectsOversizedMessage: a single message that cannot fit any
// frame is refused synchronously instead of poisoning the connection.
func TestSendRejectsOversizedMessage(t *testing.T) {
	a, b := tcpPairOpts(t, TCPOptions{MaxFrame: 128})
	big := tcpPayload{S: string(make([]byte, 4096))}
	if err := a.Send("b", ident.NodeGroup, Data, big); err == nil {
		t.Fatal("oversized message accepted")
	}
	// The connection survives and small messages still flow.
	if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 5}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Data)); env.Msg.(tcpPayload).N != 5 {
		t.Fatalf("got %+v", env)
	}
}

// TestNewTCPNetworkRejectsUnknownCodec: an invalid codec must fail fast
// instead of silently black-holing traffic.
func TestNewTCPNetworkRejectsUnknownCodec(t *testing.T) {
	if _, err := NewTCPNetworkOpts("x", "127.0.0.1:0", nil, TCPOptions{Codec: Codec(9)}); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

// TestReadLoopDropsBogusChannel: a well-formed envelope carrying an
// undefined channel byte is dropped and counted; it neither creates an
// orphan inbox nothing consumes nor kills the connection the sender's
// legitimate groups share.
func TestReadLoopDropsBogusChannel(t *testing.T) {
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A well-formed frame: one envelope naming channel 77, then a valid
	// envelope on the node group's Data channel.
	body := codec.AppendString(nil, "peer")
	body = codec.AppendUvarint(body, uint64(ident.NodeGroup))
	body = codec.AppendByte(body, 77)
	body, err = codec.Marshal(body, tcpPayload{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	body = codec.AppendUvarint(body, uint64(ident.NodeGroup))
	body = codec.AppendByte(body, byte(Data))
	body, err = codec.Marshal(body, tcpPayload{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	// The valid envelope still arrives — the connection survived.
	if env := recvOne(t, a.Inbox(ident.NodeGroup, Data)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("got %+v", env)
	}
	if st := a.Stats(); st.Drops.DroppedUnknownChannel != 1 {
		t.Fatalf("drops = %+v, want 1 unknown-channel", st.Drops)
	}
	a.boxes.mu.Lock()
	_, orphan := a.boxes.m[groupChan{ident.NodeGroup, Channel(77)}]
	a.boxes.mu.Unlock()
	if orphan {
		t.Fatal("orphan inbox created for bogus channel")
	}
}

// TestReadLoopDropsOversizedGroupID: a wire group id beyond GroupID's
// 32-bit range must be dropped and counted as unknown — never truncated
// into a hosted group's inbox (2^32+1 would alias to group 1) — and the
// connection survives for the envelopes that follow.
func TestReadLoopDropsOversizedGroupID(t *testing.T) {
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.Register(1)

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// One envelope whose group id truncates to hosted group 1, then a
	// valid envelope for group 1.
	body := codec.AppendString(nil, "peer")
	body = codec.AppendUvarint(body, (1<<32)+1)
	body = codec.AppendByte(body, byte(Data))
	body, err = codec.Marshal(body, tcpPayload{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	body = codec.AppendUvarint(body, 1)
	body = codec.AppendByte(body, byte(Data))
	body, err = codec.Marshal(body, tcpPayload{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	frame := binary.AppendUvarint(nil, uint64(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Only the valid envelope arrives; the oversized id was counted as
	// an unknown group, not aliased into group 1.
	if env := recvOne(t, a.Inbox(1, Data)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("got %+v, want the group-1 envelope", env)
	}
	if st := a.Stats(); st.Drops.DroppedUnknownGroup != 1 {
		t.Fatalf("drops = %+v, want 1 unknown-group", st.Drops)
	}
}

// TestReadLoopRejectsUndecodableEnvelope: an envelope whose message
// cannot be decoded leaves the rest of the stream unparseable — that is
// still a protocol violation and drops the connection.
func TestReadLoopRejectsUndecodableEnvelope(t *testing.T) {
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	conn, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := codec.AppendString(nil, "evil")
	body = codec.AppendUvarint(body, uint64(ident.NodeGroup))
	body = codec.AppendByte(body, byte(Data))
	body = codec.AppendByte(body, 0xEE) // unregistered TypeID
	frame := binary.AppendUvarint(nil, uint64(len(body)))
	frame = append(frame, body...)
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("undecodable envelope not rejected")
	}
}
