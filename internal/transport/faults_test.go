package transport

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
)

// faultPair wraps two MemNetwork endpoints in one Faults controller.
func faultPair(t *testing.T, f *Faults) (*FaultEndpoint, *FaultEndpoint) {
	t.Helper()
	n := NewMemNetwork()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := f.Wrap(a), f.Wrap(b)
	t.Cleanup(func() {
		fa.Close()
		fb.Close()
	})
	return fa, fb
}

func expectNone(t *testing.T, in <-chan Envelope, d time.Duration) {
	t.Helper()
	select {
	case e := <-in:
		t.Fatalf("unexpected envelope %+v", e)
	case <-time.After(d):
	}
}

func TestFaultsPartitionAndHeal(t *testing.T) {
	f := NewFaults(1)
	fa, fb := faultPair(t, f)

	f.Partition([]ident.PID{"a"}, []ident.PID{"b"})
	if err := fa.Send("b", ident.NodeGroup, Data, "lost-ab"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Send("a", ident.NodeGroup, Data, "lost-ba"); err != nil {
		t.Fatal(err)
	}
	expectNone(t, fb.Inbox(ident.NodeGroup, Data), 50*time.Millisecond)
	expectNone(t, fa.Inbox(ident.NodeGroup, Data), 50*time.Millisecond)

	f.Heal()
	if err := fa.Send("b", ident.NodeGroup, Data, "after-heal"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, fb.Inbox(ident.NodeGroup, Data)); env.Msg != "after-heal" {
		t.Fatalf("got %+v", env)
	}

	st := f.Stats()
	if st.Partitioned != 2 {
		t.Fatalf("Partitioned = %d, want 2", st.Partitioned)
	}
}

func TestFaultsPartitionOneWayIsAsymmetric(t *testing.T) {
	f := NewFaults(1)
	fa, fb := faultPair(t, f)

	f.PartitionOneWay([]ident.PID{"a"}, []ident.PID{"b"})
	if err := fa.Send("b", ident.NodeGroup, Data, "cut"); err != nil {
		t.Fatal(err)
	}
	if err := fb.Send("a", ident.NodeGroup, Data, "open"); err != nil {
		t.Fatal(err)
	}
	// b→a still flows; a→b is cut.
	if env := recvOne(t, fa.Inbox(ident.NodeGroup, Data)); env.Msg != "open" {
		t.Fatalf("got %+v", env)
	}
	expectNone(t, fb.Inbox(ident.NodeGroup, Data), 50*time.Millisecond)
}

func TestFaultsDropAllAndRemove(t *testing.T) {
	f := NewFaults(7)
	fa, fb := faultPair(t, f)

	f.Drop("a", "b", 1.0)
	for i := 0; i < 10; i++ {
		if err := fa.Send("b", ident.NodeGroup, Data, i); err != nil {
			t.Fatal(err)
		}
	}
	expectNone(t, fb.Inbox(ident.NodeGroup, Data), 50*time.Millisecond)
	if st := f.Stats(); st.Dropped != 10 {
		t.Fatalf("Dropped = %d, want 10", st.Dropped)
	}

	f.Drop("a", "b", 0) // remove the rule
	if err := fa.Send("b", ident.NodeGroup, Data, "through"); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, fb.Inbox(ident.NodeGroup, Data)); env.Msg != "through" {
		t.Fatalf("got %+v", env)
	}
}

func TestFaultsDuplicate(t *testing.T) {
	f := NewFaults(3)
	fa, fb := faultPair(t, f)

	f.Duplicate("a", "b", 1.0)
	if err := fa.Send("b", ident.NodeGroup, Data, "twin"); err != nil {
		t.Fatal(err)
	}
	in := fb.Inbox(ident.NodeGroup, Data)
	for i := 0; i < 2; i++ {
		if env := recvOne(t, in); env.Msg != "twin" {
			t.Fatalf("copy %d: got %+v", i, env)
		}
	}
	if st := f.Stats(); st.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", st.Duplicated)
	}
}

// TestFaultsDelayDeterministicUnderFakeClock: a delayed message stays in
// flight until the fake clock advances past its delay — the DES hook.
func TestFaultsDelayDeterministicUnderFakeClock(t *testing.T) {
	clock := obs.NewFake(time.Unix(0, 0))
	f := NewFaults(5)
	f.SetClock(clock)
	fa, fb := faultPair(t, f)

	f.Delay("a", "b", 100*time.Millisecond)
	if err := fa.Send("b", ident.NodeGroup, Data, "slow"); err != nil {
		t.Fatal(err)
	}
	// The delay-link goroutine registers its timer with the fake clock.
	clock.BlockUntil(1)
	expectNone(t, fb.Inbox(ident.NodeGroup, Data), 30*time.Millisecond)

	clock.Advance(100 * time.Millisecond)
	if env := recvOne(t, fb.Inbox(ident.NodeGroup, Data)); env.Msg != "slow" {
		t.Fatalf("got %+v", env)
	}
	if st := f.Stats(); st.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", st.Delayed)
	}
}

// TestFaultsDelayRemovalKeepsFIFO: a message sent after the delay rule is
// removed must not overtake one still sitting in the delay queue.
func TestFaultsDelayRemovalKeepsFIFO(t *testing.T) {
	clock := obs.NewFake(time.Unix(0, 0))
	f := NewFaults(5)
	f.SetClock(clock)
	fa, fb := faultPair(t, f)

	f.Delay("a", "b", 200*time.Millisecond)
	if err := fa.Send("b", ident.NodeGroup, Data, "first"); err != nil {
		t.Fatal(err)
	}
	clock.BlockUntil(1)
	f.Delay("a", "b", 0) // remove the rule while "first" is in flight
	if err := fa.Send("b", ident.NodeGroup, Data, "second"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(200 * time.Millisecond)

	in := fb.Inbox(ident.NodeGroup, Data)
	if env := recvOne(t, in); env.Msg != "first" {
		t.Fatalf("reordered: got %+v first", env)
	}
	if env := recvOne(t, in); env.Msg != "second" {
		t.Fatalf("got %+v second", env)
	}
}

func TestFaultsCrashClosesEndpoint(t *testing.T) {
	f := NewFaults(9)
	fa, fb := faultPair(t, f)

	if err := f.Crash("b"); err != nil {
		t.Fatal(err)
	}
	// b's endpoint is gone: sends from b fail, sends to b vanish with it.
	if err := fb.Send("a", ident.NodeGroup, Data, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("send from crashed endpoint: err = %v, want ErrClosed", err)
	}
	if err := fa.Send("b", ident.NodeGroup, Data, "x"); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("send to crashed peer: err = %v, want ErrUnknownPeer", err)
	}
	if st := f.Stats(); st.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1", st.Crashed)
	}
	if err := f.Crash("b"); err == nil {
		t.Fatal("second Crash of the same endpoint should error")
	}
}

func TestFaultsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	f := NewFaults(11)
	f.Instrument(obs.New(nil, reg, nil))
	fa, _ := faultPair(t, f)

	f.Partition([]ident.PID{"a"}, []ident.PID{"b"})
	if err := fa.Send("b", ident.NodeGroup, Data, "x"); err != nil {
		t.Fatal(err)
	}
	f.Heal()
	f.Drop("a", "b", 1.0)
	if err := fa.Send("b", ident.NodeGroup, Data, "x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Crash("a"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for _, want := range []string{
		`transport_faults_total{kind=partition}`,
		`transport_faults_total{kind=drop}`,
		`transport_faults_total{kind=crash}`,
	} {
		if v := snap.Counters[want]; v != 1 {
			t.Fatalf("%s = %d, want 1", want, v)
		}
	}
}

// TestFaultsOverTCP: the same controller drives a real TCP transport —
// partition silences the link, heal restores it.
func TestFaultsOverTCP(t *testing.T) {
	a, b := tcpPair(t)
	f := NewFaults(13)
	fa := f.Wrap(a)

	f.Partition([]ident.PID{"a"}, []ident.PID{"b"})
	if err := fa.Send("b", ident.NodeGroup, Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	expectNone(t, b.Inbox(ident.NodeGroup, Data), 50*time.Millisecond)

	f.Heal()
	if err := fa.Send("b", ident.NodeGroup, Data, tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Data)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("got %+v", env)
	}
}
