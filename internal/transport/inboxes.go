package transport

import (
	"sync"
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/obs"
)

// inboxSet is the (GroupID, Channel)-keyed inbox registry shared by both
// wire transports. Registration is how an endpoint knows which groups its
// node hosts: deposit drops and counts envelopes for anything else, and
// close ends every inbox exactly once (crash-stop: nothing is delivered
// after close returns).
type inboxSet struct {
	mu     sync.Mutex
	closed bool
	m      map[groupChan]*ubq

	dropGroup   atomic.Uint64
	dropChannel atomic.Uint64

	// Optional obs mirrors of the two drop counters, installed by
	// instrument. Guarded by mu because instrumentation can arrive while
	// peers are already depositing (NewNode wires the endpoint after
	// other nodes' heartbeats may have started sending to it).
	dropGroupC   *obs.Counter
	dropChannelC *obs.Counter
}

func newInboxSet() *inboxSet {
	return &inboxSet{m: make(map[groupChan]*ubq, numChannels)}
}

// register creates the inboxes of every defined channel of g ahead of
// traffic. Idempotent; a no-op after close.
func (s *inboxSet) register(g ident.GroupID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	for _, ch := range Channels() {
		key := groupChan{g, ch}
		if _, ok := s.m[key]; !ok {
			s.m[key] = newUBQ()
		}
	}
}

// instrument mirrors the drop counters onto ob as
// transport_dropped_total{reason=...}. A nil ob is a no-op rather than
// an overwrite, so a node-level Instrument call without a bundle cannot
// wipe counters installed at construction.
func (s *inboxSet) instrument(ob *obs.Obs) {
	if ob == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropGroupC = ob.CounterL("transport_dropped_total", obs.L("reason", string(obs.DropUnknownGroup)))
	s.dropChannelC = ob.CounterL("transport_dropped_total", obs.L("reason", string(obs.DropUnknownChannel)))
}

// dropUnknownGroup counts one envelope discarded because its group can
// never be hosted here (used by the TCP read loop for out-of-range ids).
func (s *inboxSet) dropUnknownGroup() {
	s.dropGroup.Add(1)
	s.mu.Lock()
	c := s.dropGroupC
	s.mu.Unlock()
	c.Inc()
}

// deregister removes and closes the inboxes of g; subsequent traffic for
// g is dropped and counted.
func (s *inboxSet) deregister(g ident.GroupID) {
	s.mu.Lock()
	var qs []*ubq
	for _, ch := range Channels() {
		key := groupChan{g, ch}
		if q, ok := s.m[key]; ok {
			qs = append(qs, q)
			delete(s.m, key)
		}
	}
	s.mu.Unlock()
	for _, q := range qs {
		q.close()
	}
}

// inbox returns the receive channel for (g, ch), registering it lazily;
// after close it returns an already-closed channel.
func (s *inboxSet) inbox(g ident.GroupID, ch Channel) <-chan Envelope {
	q := s.lookup(g, ch)
	if q == nil {
		dead := make(chan Envelope)
		close(dead)
		return dead
	}
	return q.single()
}

// inboxBatch is the batch-mode counterpart of inbox.
func (s *inboxSet) inboxBatch(g ident.GroupID, ch Channel) <-chan []Envelope {
	q := s.lookup(g, ch)
	if q == nil {
		dead := make(chan []Envelope)
		close(dead)
		return dead
	}
	return q.batch()
}

// lookup returns the inbox for (g, ch), registering it lazily; nil after
// close.
func (s *inboxSet) lookup(g ident.GroupID, ch Channel) *ubq {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := groupChan{g, ch}
	q, ok := s.m[key]
	if !ok {
		if s.closed {
			return nil
		}
		q = newUBQ()
		s.m[key] = q
	}
	return q
}

// deposit places env in the inbox for (g, ch), or drops and counts it
// when that inbox was never registered — traffic for a group this node
// does not host (or no longer hosts), or a channel outside the defined
// range.
func (s *inboxSet) deposit(g ident.GroupID, ch Channel, env Envelope) {
	s.mu.Lock()
	q, ok := s.m[groupChan{g, ch}]
	closed := s.closed
	var c *obs.Counter
	if !ok {
		if validChannel(ch) {
			c = s.dropGroupC
		} else {
			c = s.dropChannelC
		}
	}
	s.mu.Unlock()
	if !ok {
		if validChannel(ch) {
			s.dropGroup.Add(1)
		} else {
			s.dropChannel.Add(1)
		}
		c.Inc()
		return
	}
	if !closed {
		q.push(env)
	}
}

// depositBatch places a run of envelopes for one (g, ch) in its inbox
// under a single registry lookup and a single inbox lock acquisition —
// the receive-side mirror of the send path's frame coalescing. The slice
// contents are copied; the caller may reuse envs immediately. When the
// inbox was never registered the whole run is dropped and counted.
func (s *inboxSet) depositBatch(g ident.GroupID, ch Channel, envs []Envelope) {
	if len(envs) == 0 {
		return
	}
	s.mu.Lock()
	q, ok := s.m[groupChan{g, ch}]
	closed := s.closed
	var c *obs.Counter
	if !ok {
		if validChannel(ch) {
			c = s.dropGroupC
		} else {
			c = s.dropChannelC
		}
	}
	s.mu.Unlock()
	if !ok {
		if validChannel(ch) {
			s.dropGroup.Add(uint64(len(envs)))
		} else {
			s.dropChannel.Add(uint64(len(envs)))
		}
		c.Add(uint64(len(envs)))
		return
	}
	if !closed {
		q.pushAll(envs)
	}
}

// close ends every inbox and blocks until their pumps have exited; no
// envelope is delivered after close returns. Idempotent.
func (s *inboxSet) close() {
	s.mu.Lock()
	s.closed = true
	qs := make([]*ubq, 0, len(s.m))
	for _, q := range s.m {
		qs = append(qs, q)
	}
	s.mu.Unlock()
	for _, q := range qs {
		q.close()
	}
}

// drops returns the drop counters.
func (s *inboxSet) drops() DropStats {
	return DropStats{
		DroppedUnknownGroup:   s.dropGroup.Load(),
		DroppedUnknownChannel: s.dropChannel.Load(),
	}
}
