package transport

import (
	"fmt"
	"testing"
	"time"
)

// TestInboxBatchDrainsPendingRun pins the core batch-inbox promise: one
// receive yields every envelope pending for the (group, channel) pair, in
// the order they were deposited.
func TestInboxBatchDrainsPendingRun(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Register(1)

	const n = 100
	for i := 0; i < n; i++ {
		if err := a.Send("b", 1, Data, fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Everything was deposited before the consumer attached: the whole run
	// must arrive as a single batch.
	batch := <-b.InboxBatch(1, Data)
	if len(batch) != n {
		t.Fatalf("first receive yielded %d envelopes, want %d", len(batch), n)
	}
	for i, env := range batch {
		if env.From != "a" || env.Msg != fmt.Sprintf("m%d", i) {
			t.Fatalf("envelope %d = %+v, FIFO order broken", i, env)
		}
	}
}

// TestInboxBatchReuseWindow pins the ownership contract: a received slice
// stays readable until the consumer's next receive from the same channel.
func TestInboxBatchReuseWindow(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Register(1)
	in := b.InboxBatch(1, Data)

	next := 0
	for round := 0; round < 8; round++ {
		k := 3 + round
		for i := 0; i < k; i++ {
			if err := a.Send("b", 1, Data, next+i); err != nil {
				t.Fatal(err)
			}
		}
		var got []Envelope
		for len(got) < k {
			batch, ok := <-in
			if !ok {
				t.Fatal("inbox closed early")
			}
			// Read the batch fully before the next receive: that is the
			// window the contract guarantees.
			for _, env := range batch {
				if env.Msg != next+len(got) {
					t.Fatalf("round %d: got %v at position %d, want %d",
						round, env.Msg, len(got), next+len(got))
				}
				got = append(got, env)
			}
		}
		next += k
	}
}

// TestInboxBatchClosesOnEndpointClose pins shutdown: the batch channel
// closes when the endpoint does.
func TestInboxBatchClosesOnEndpointClose(t *testing.T) {
	net := NewMemNetwork()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	b.Register(1)
	in := b.InboxBatch(1, Data)
	b.Close()
	select {
	case _, ok := <-in:
		if ok {
			t.Fatal("expected closed channel, got a batch")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("batch inbox never closed")
	}
}

// TestInboxModeConflictPanics pins the single-consumer discipline: an
// inbox is consumed envelope-at-a-time or in batches, fixed by the first
// call; mixing the two on one (group, channel) pair is a programming error
// and must fail loudly rather than split the stream.
func TestInboxModeConflictPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic, got none")
				}
			}()
			f()
		})
	}
	expectPanic("single-then-batch", func() {
		net := NewMemNetwork()
		b, err := net.Endpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.Inbox(1, Data)
		b.InboxBatch(1, Data)
	})
	expectPanic("batch-then-single", func() {
		net := NewMemNetwork()
		b, err := net.Endpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		b.InboxBatch(1, Data)
		b.Inbox(1, Data)
	})
}

// TestInboxBatchMixedChannelsIndependent pins that the consumption mode is
// per (group, channel): the same endpoint may consume Data in batches and
// Ctl one at a time.
func TestInboxBatchMixedChannelsIndependent(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Register(1)
	dataIn := b.InboxBatch(1, Data)
	ctlIn := b.Inbox(1, Ctl)

	if err := a.Send("b", 1, Data, "d"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", 1, Ctl, "c"); err != nil {
		t.Fatal(err)
	}
	if batch := <-dataIn; len(batch) == 0 || batch[0].Msg != "d" {
		t.Fatalf("data batch = %v", batch)
	}
	if env := <-ctlIn; env.Msg != "c" {
		t.Fatalf("ctl envelope = %v", env)
	}
}
