package transport

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/obs"
)

// MemNetwork is an in-process network of fully connected, reliable, FIFO
// point-to-point channels — the transport assumed by the paper's system
// model. It additionally supports the fault injection the tests need:
// per-link delays (performance perturbations), link cuts (for failure
// detector tests) and process crashes (crash-stop).
type MemNetwork struct {
	mu    sync.RWMutex
	eps   map[ident.PID]*MemEndpoint
	delay func(from, to ident.PID) time.Duration
	cut   map[link]bool
	clock obs.Clock
}

type link struct{ from, to ident.PID }

// NewMemNetwork returns an empty network on the wall clock.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		eps:   make(map[ident.PID]*MemEndpoint),
		cut:   make(map[link]bool),
		clock: obs.Wall{},
	}
}

// SetClock replaces the clock pacing delayed links — an obs.Fake makes
// paced delivery deterministic in tests. Like SetDelay, it only affects
// links created after the call, so install it before attaching endpoints.
func (n *MemNetwork) SetClock(c obs.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c == nil {
		c = obs.Wall{}
	}
	n.clock = c
}

// SetDelay installs a per-link pacing function: every message on the link
// from→to occupies the link for the returned duration before delivery
// (FIFO order is preserved). A nil function removes all delays. Delays
// only affect endpoints attached after the call.
func (n *MemNetwork) SetDelay(f func(from, to ident.PID) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.delay = f
}

// Cut drops all future messages from→to (one direction). It exists to
// exercise failure detection; the SVS protocol itself assumes reliable
// channels between correct processes.
func (n *MemNetwork) Cut(from, to ident.PID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[link{from, to}] = true
}

// CutBoth drops all future messages between a and b in both directions.
func (n *MemNetwork) CutBoth(a, b ident.PID) {
	n.Cut(a, b)
	n.Cut(b, a)
}

// Heal restores the from→to link.
func (n *MemNetwork) Heal(from, to ident.PID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, link{from, to})
}

// Crash removes p from the network abruptly: its endpoint closes, all
// in-flight and future messages to or from p are dropped.
func (n *MemNetwork) Crash(p ident.PID) {
	n.mu.Lock()
	ep := n.eps[p]
	delete(n.eps, p)
	n.mu.Unlock()
	if ep != nil {
		ep.shutdown()
	}
}

// Endpoint attaches process p to the network. The reserved ident.NodeGroup
// is registered immediately; application groups are registered by
// Register or lazily by Inbox.
func (n *MemNetwork) Endpoint(p ident.PID) (*MemEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.eps[p]; ok {
		return nil, fmt.Errorf("transport: endpoint %q already attached", p)
	}
	ep := &MemEndpoint{
		net:       n,
		self:      p,
		closeDone: make(chan struct{}),
		boxes:     newInboxSet(),
		links:     make(map[link]*pacedLink),
	}
	ep.boxes.register(ident.NodeGroup)
	n.eps[p] = ep
	return ep, nil
}

// MemEndpoint is a process's attachment to a MemNetwork.
type MemEndpoint struct {
	net   *MemNetwork
	self  ident.PID
	boxes *inboxSet

	mu        sync.Mutex
	closed    bool
	closeDone chan struct{}
	// links holds the outgoing paced links (lazily created) when the
	// network has a delay function installed.
	links map[link]*pacedLink
}

var _ Endpoint = (*MemEndpoint)(nil)

// Self implements Endpoint.
func (e *MemEndpoint) Self() ident.PID { return e.self }

// Drops returns the counters of envelopes discarded at deposit because
// their (group, channel) inbox was not registered.
func (e *MemEndpoint) Drops() DropStats { return e.boxes.drops() }

// Instrument mirrors the endpoint's drop counters onto ob as
// transport_dropped_total{reason=...}. Safe to call while traffic is
// flowing; core.NewNode calls it with the node's obs bundle.
func (e *MemEndpoint) Instrument(ob *obs.Obs) { e.boxes.instrument(ob) }

// Register implements Endpoint: create the inboxes of every channel of g.
func (e *MemEndpoint) Register(g ident.GroupID) { e.boxes.register(g) }

// Deregister implements Endpoint: remove and close the inboxes of g.
// Subsequent traffic for g is dropped and counted.
func (e *MemEndpoint) Deregister(g ident.GroupID) { e.boxes.deregister(g) }

// Inbox implements Endpoint.
func (e *MemEndpoint) Inbox(g ident.GroupID, ch Channel) <-chan Envelope {
	return e.boxes.inbox(g, ch)
}

// InboxBatch implements Endpoint.
func (e *MemEndpoint) InboxBatch(g ident.GroupID, ch Channel) <-chan []Envelope {
	return e.boxes.inboxBatch(g, ch)
}

// Send implements Endpoint.
func (e *MemEndpoint) Send(to ident.PID, g ident.GroupID, ch Channel, m any) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()

	e.net.mu.RLock()
	dst, ok := e.net.eps[to]
	cutLink := e.net.cut[link{e.self, to}]
	delayFn := e.net.delay
	e.net.mu.RUnlock()

	if !ok {
		// The peer has crashed or never joined; in a crash-stop model the
		// message silently disappears with it.
		return ErrUnknownPeer
	}
	if cutLink {
		return nil // dropped by fault injection
	}

	var d time.Duration
	if delayFn != nil {
		d = delayFn(e.self, to)
	}
	env := Envelope{From: e.self, Group: g, Msg: m}
	if d <= 0 {
		dst.deposit(g, ch, env)
		return nil
	}
	e.pacedSend(to, g, ch, env, d, dst)
	return nil
}

// pacedSend routes env through the per-link pacing goroutine so delayed
// messages keep their FIFO order.
func (e *MemEndpoint) pacedSend(to ident.PID, g ident.GroupID, ch Channel, env Envelope, d time.Duration, dst *MemEndpoint) {
	key := link{e.self, to}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	pl, ok := e.links[key]
	if !ok {
		e.net.mu.RLock()
		clock := e.net.clock
		e.net.mu.RUnlock()
		pl = newPacedLink(clock)
		e.links[key] = pl
	}
	e.mu.Unlock()
	pl.push(pacedMsg{g: g, ch: ch, env: env, delay: d, dst: dst})
}

// deposit places env in the inbox for (g, ch), or drops and counts it
// when that inbox was never registered — traffic for a group this node
// does not host, or a channel outside the defined range.
func (e *MemEndpoint) deposit(g ident.GroupID, ch Channel, env Envelope) {
	e.boxes.deposit(g, ch, env)
}

// Close implements Endpoint: crash-stop shutdown. Concurrent or repeated
// Close calls all block until the shutdown completes, and no envelope is
// delivered from any inbox after Close returns.
func (e *MemEndpoint) Close() error {
	e.net.mu.Lock()
	if e.net.eps[e.self] == e {
		delete(e.net.eps, e.self)
	}
	e.net.mu.Unlock()
	e.shutdown()
	return nil
}

func (e *MemEndpoint) shutdown() {
	e.mu.Lock()
	if e.closed {
		done := e.closeDone
		e.mu.Unlock()
		<-done // wait for the first closer to finish
		return
	}
	e.closed = true
	links := make([]*pacedLink, 0, len(e.links))
	for _, pl := range e.links {
		links = append(links, pl)
	}
	e.mu.Unlock()
	for _, pl := range links {
		pl.close()
	}
	e.boxes.close()
	close(e.closeDone)
}

// pacedMsg is one message traversing a delayed link.
type pacedMsg struct {
	g     ident.GroupID
	ch    Channel
	env   Envelope
	delay time.Duration
	dst   *MemEndpoint
}

// pacedLink serialises messages on a delayed link: each message occupies
// the link for its delay, preserving FIFO order. Delays are measured on
// the network's clock, so a fake clock drives paced delivery
// deterministically.
type pacedLink struct {
	clock  obs.Clock
	mu     sync.Mutex
	cond   *sync.Cond
	items  []pacedMsg
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
}

func newPacedLink(clock obs.Clock) *pacedLink {
	pl := &pacedLink{clock: clock, done: make(chan struct{})}
	pl.cond = sync.NewCond(&pl.mu)
	pl.wg.Add(1)
	go pl.run()
	return pl
}

func (pl *pacedLink) push(m pacedMsg) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.closed {
		return
	}
	pl.items = append(pl.items, m)
	pl.cond.Signal()
}

func (pl *pacedLink) close() {
	pl.mu.Lock()
	if pl.closed {
		pl.mu.Unlock()
		return
	}
	pl.closed = true
	close(pl.done)
	pl.cond.Signal()
	pl.mu.Unlock()
	pl.wg.Wait()
}

func (pl *pacedLink) run() {
	defer pl.wg.Done()
	for {
		pl.mu.Lock()
		for len(pl.items) == 0 && !pl.closed {
			pl.cond.Wait()
		}
		if pl.closed {
			pl.mu.Unlock()
			return
		}
		m := pl.items[0]
		copy(pl.items, pl.items[1:])
		pl.items = pl.items[:len(pl.items)-1]
		pl.mu.Unlock()

		t := pl.clock.NewTimer(m.delay)
		select {
		case <-t.C():
			m.dst.deposit(m.g, m.ch, m.env)
		case <-pl.done:
			t.Stop()
			return
		}
	}
}
