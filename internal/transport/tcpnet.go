package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/obs"
)

// Codec selects the wire encoding of a TCPNetwork. The legacy encoding/gob
// fallback of the first binary-codec release has been removed; CodecBinary
// is the only encoding, and unknown codec identifiers are rejected at
// construction.
type Codec uint8

const (
	// CodecBinary is the hand-rolled binary encoding of internal/codec
	// with per-peer frame batching: the send path drains the pending
	// queue and coalesces every waiting envelope into one length-prefixed
	// batch frame per write syscall.
	CodecBinary Codec = iota
)

// TCPOptions tunes a TCPNetwork beyond the defaults.
type TCPOptions struct {
	// Codec selects the wire encoding. CodecBinary is the only supported
	// value; anything else fails construction with a clear error.
	Codec Codec
	// MaxFrame bounds one batch frame in bytes: the writer chunks its
	// coalesced batches to it, and a peer announcing a larger incoming
	// frame is treated as faulty and its connection dropped. It must
	// agree across the whole group — a node configured to send larger
	// frames than its peers accept gets dropped as faulty.
	// 0 means the default of 16 MiB.
	MaxFrame int
	// Obs, when non-nil, mirrors the wire counters onto its metrics
	// registry (tcp_frames_sent_total, tcp_envelopes_sent_total,
	// tcp_bytes_sent_total, tcp_frames_recv_total,
	// tcp_envelopes_recv_total, tcp_batch_envelopes) and the inbox drop
	// counters as transport_dropped_total{reason=...}. The atomic
	// counters behind Stats() keep working either way.
	Obs *obs.Obs
}

const defaultMaxFrame = 16 << 20

// TCPStats counts wire activity since the network started. The ratio
// EnvelopesSent/FramesSent is the achieved write-coalescing factor.
type TCPStats struct {
	FramesSent    uint64 // batch frames written (≈ syscalls on the send path)
	EnvelopesSent uint64 // envelopes coalesced into those frames
	BytesSent     uint64
	FramesRecv    uint64
	EnvelopesRecv uint64
	// Drops counts received envelopes discarded because their
	// (group, channel) inbox was not registered here.
	Drops DropStats
}

// TCPNetwork implements Endpoint over real TCP connections, so groups can
// span OS processes and machines. One TCP connection is maintained per
// outgoing peer and shared by every group the two nodes have in common;
// TCP's in-order reliable delivery provides the FIFO reliable channel of
// the system model for the lifetime of the session (crash-stop: a broken
// connection is treated as the peer's crash, there is no
// reconnect-and-replay, and Close drops whatever is still queued).
//
// Every wire type must be registered with internal/codec.
//
// Wire format, per connection: a stream of batch frames
//
//	uvarint frameLen | frame body
//
// where the body is the sender PID (uvarint length + bytes) followed by
// one or more envelopes, each
//
//	uvarint GroupID | channel byte | TypeID byte | message encoding
//
// decoded back-to-back until the frame is exhausted. A decode error is a
// protocol violation and closes the connection; a well-formed envelope
// for an unregistered group or an undefined channel is dropped and
// counted (Stats().Drops) without penalising the rest of the stream.
type TCPNetwork struct {
	self    ident.PID
	opts    TCPOptions
	ln      net.Listener
	fromEnc []byte // self PID pre-encoded for frame bodies
	maxBody int    // MaxFrame minus the fromEnc prefix: envelope budget per frame

	framesSent atomic.Uint64
	envsSent   atomic.Uint64
	bytesSent  atomic.Uint64
	framesRecv atomic.Uint64
	envsRecv   atomic.Uint64
	m          tcpMetrics

	boxes *inboxSet

	mu        sync.Mutex
	closed    bool
	closeDone chan struct{}
	peers     map[ident.PID]string
	conns     map[ident.PID]*peerConn
	accepted  map[net.Conn]struct{}
	wg        sync.WaitGroup
}

var _ Endpoint = (*TCPNetwork)(nil)

// tcpMetrics holds the optional obs mirrors of the wire counters. The
// nil instruments of a zero value are no-ops, so the hot paths record
// unconditionally. Resolved once at construction (TCPOptions.Obs) —
// never mutated afterwards, because the read/write loops access the
// fields without synchronisation.
type tcpMetrics struct {
	framesSent *obs.Counter
	envsSent   *obs.Counter
	bytesSent  *obs.Counter
	framesRecv *obs.Counter
	envsRecv   *obs.Counter
	// batch samples envelopes-per-frame on the send path: the achieved
	// write-coalescing factor as a distribution rather than a ratio.
	batch *obs.Histogram
	// rxBatch mirrors batch on the receive path: envelopes decoded per
	// incoming frame, i.e. the batch size handed onwards to the inbox
	// demux in one pass.
	rxBatch *obs.Histogram
}

func newTCPMetrics(ob *obs.Obs) tcpMetrics {
	return tcpMetrics{
		framesSent: ob.Counter("tcp_frames_sent_total"),
		envsSent:   ob.Counter("tcp_envelopes_sent_total"),
		bytesSent:  ob.Counter("tcp_bytes_sent_total"),
		framesRecv: ob.Counter("tcp_frames_recv_total"),
		envsRecv:   ob.Counter("tcp_envelopes_recv_total"),
		batch:      ob.Histogram("tcp_batch_envelopes", obs.CountBuckets),
		rxBatch:    ob.Histogram("transport_rx_batch_envelopes", obs.CountBuckets),
	}
}

// peerConn is one outgoing connection. Send appends the encoded envelope
// to pend and a per-connection writer goroutine drains pend into batch
// frames.
type peerConn struct {
	conn net.Conn

	mu     sync.Mutex
	cond   *sync.Cond
	pend   []byte // encoded envelopes awaiting the writer
	ends   []int  // end offset of each envelope in pend (frame chunking)
	closed bool
}

func newPeerConn(conn net.Conn) *peerConn {
	pc := &peerConn{conn: conn}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// close marks the connection dead and wakes its writer. Idempotent.
func (pc *peerConn) close() {
	pc.conn.Close()
	pc.mu.Lock()
	if !pc.closed {
		pc.closed = true
		pc.cond.Broadcast()
	}
	pc.mu.Unlock()
}

// NewTCPNetwork starts listening on listenAddr and returns the endpoint
// for self, using the default options. peers maps every other group
// member to its listen address; connections are dialed lazily on first
// send.
func NewTCPNetwork(self ident.PID, listenAddr string, peers map[ident.PID]string) (*TCPNetwork, error) {
	return NewTCPNetworkOpts(self, listenAddr, peers, TCPOptions{})
}

// NewTCPNetworkOpts is NewTCPNetwork with explicit options.
func NewTCPNetworkOpts(self ident.PID, listenAddr string, peers map[ident.PID]string, opts TCPOptions) (*TCPNetwork, error) {
	if opts.Codec != CodecBinary {
		return nil, fmt.Errorf("transport: unknown codec %d (the encoding/gob fallback was removed; only CodecBinary is supported)", opts.Codec)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	if opts.MaxFrame <= 0 {
		opts.MaxFrame = defaultMaxFrame
	}
	n := &TCPNetwork{
		self:      self,
		opts:      opts,
		ln:        ln,
		fromEnc:   codec.AppendString(nil, string(self)),
		closeDone: make(chan struct{}),
		peers:     make(map[ident.PID]string, len(peers)),
		conns:     make(map[ident.PID]*peerConn),
		accepted:  make(map[net.Conn]struct{}),
		boxes:     newInboxSet(),
	}
	n.m = newTCPMetrics(opts.Obs)
	n.boxes.instrument(opts.Obs)
	n.maxBody = opts.MaxFrame - len(n.fromEnc)
	if n.maxBody <= 0 {
		ln.Close()
		return nil, fmt.Errorf("transport: MaxFrame %d leaves no room for envelopes", opts.MaxFrame)
	}
	for p, addr := range peers {
		n.peers[p] = addr
	}
	n.boxes.register(ident.NodeGroup)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the actual listen address (useful with ":0").
func (n *TCPNetwork) Addr() string { return n.ln.Addr().String() }

// AddPeer registers (or updates) the address of a peer. It allows groups
// to be bootstrapped with ":0" listeners whose ports are only known after
// every member has started listening.
func (n *TCPNetwork) AddPeer(p ident.PID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p] = addr
}

// Self implements Endpoint.
func (n *TCPNetwork) Self() ident.PID { return n.self }

// Conns reports the number of live outgoing peer connections — at most
// one per peer no matter how many groups are shared with it.
func (n *TCPNetwork) Conns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

// Instrument mirrors the endpoint's drop counters onto ob as
// transport_dropped_total{reason=...}. Safe to call while traffic is
// flowing; core.NewNode calls it with the node's obs bundle. The wire
// counters (frames, envelopes, bytes) can only be instrumented at
// construction via TCPOptions.Obs — the read/write loops access them
// unsynchronised.
func (n *TCPNetwork) Instrument(ob *obs.Obs) { n.boxes.instrument(ob) }

// Stats returns a snapshot of the wire counters.
func (n *TCPNetwork) Stats() TCPStats {
	return TCPStats{
		FramesSent:    n.framesSent.Load(),
		EnvelopesSent: n.envsSent.Load(),
		BytesSent:     n.bytesSent.Load(),
		FramesRecv:    n.framesRecv.Load(),
		EnvelopesRecv: n.envsRecv.Load(),
		Drops:         n.boxes.drops(),
	}
}

// Register implements Endpoint: create the inboxes of every channel of g.
func (n *TCPNetwork) Register(g ident.GroupID) { n.boxes.register(g) }

// Deregister implements Endpoint: remove and close the inboxes of g.
// Subsequent traffic for g is dropped and counted.
func (n *TCPNetwork) Deregister(g ident.GroupID) { n.boxes.deregister(g) }

// Inbox implements Endpoint.
func (n *TCPNetwork) Inbox(g ident.GroupID, ch Channel) <-chan Envelope {
	return n.boxes.inbox(g, ch)
}

// InboxBatch implements Endpoint.
func (n *TCPNetwork) InboxBatch(g ident.GroupID, ch Channel) <-chan []Envelope {
	return n.boxes.inboxBatch(g, ch)
}

// Send implements Endpoint. A successful Send means the envelope is
// queued for the peer's writer; the actual write error, if any, surfaces
// as the peer's crash (connection drop), matching the crash-stop model.
func (n *TCPNetwork) Send(to ident.PID, g ident.GroupID, ch Channel, m any) error {
	if to == n.self {
		n.deposit(g, ch, Envelope{From: n.self, Group: g, Msg: m})
		return nil
	}
	pc, err := n.peer(to)
	if err != nil {
		return err
	}
	return n.enqueue(to, pc, g, ch, m)
}

// enqueue appends the encoded envelope to the peer's pending buffer and
// wakes its writer. Encoding happens here, synchronously, so unregistered
// types and oversized messages are reported to the caller; the write
// syscall happens in the writer, coalesced with whatever else is pending.
func (n *TCPNetwork) enqueue(to ident.PID, pc *peerConn, g ident.GroupID, ch Channel, m any) error {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		return fmt.Errorf("transport: send to %s: %w", to, net.ErrClosed)
	}
	start := len(pc.pend)
	buf := codec.AppendUvarint(pc.pend, uint64(g))
	buf = codec.AppendByte(buf, byte(ch))
	buf, err := codec.Marshal(buf, m)
	if err != nil {
		pc.pend = buf[:start]
		pc.mu.Unlock()
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	if len(buf)-start > n.maxBody {
		pc.pend = buf[:start]
		pc.mu.Unlock()
		return fmt.Errorf("transport: send to %s: message %T (%d bytes) exceeds MaxFrame %d",
			to, m, len(buf)-start, n.opts.MaxFrame)
	}
	pc.pend = buf
	pc.ends = append(pc.ends, len(buf))
	pc.cond.Signal()
	pc.mu.Unlock()
	return nil
}

// writeLoop drains pc.pend, coalescing everything pending into batch
// frames. The frame header, sender PID and body chunk go out in a single
// writev (net.Buffers), so a burst of envelopes costs one syscall — but a
// drained backlog larger than MaxFrame is split at envelope boundaries so
// the receiver never sees an over-limit frame (enqueue guarantees every
// single envelope fits).
func (n *TCPNetwork) writeLoop(to ident.PID, pc *peerConn) {
	defer n.wg.Done()
	var spare, hdr []byte
	var spareEnds []int
	for {
		pc.mu.Lock()
		for len(pc.pend) == 0 && !pc.closed {
			pc.cond.Wait()
		}
		if len(pc.pend) == 0 && pc.closed {
			pc.mu.Unlock()
			return
		}
		body := pc.pend
		ends := pc.ends
		pc.pend = spare[:0]
		pc.ends = spareEnds[:0]
		pc.mu.Unlock()

		start, idx := 0, 0
		for start < len(body) {
			// Take as many whole envelopes as fit in one frame.
			end, count := start, 0
			for idx < len(ends) && ends[idx]-start <= n.maxBody {
				end = ends[idx]
				idx++
				count++
			}
			if end == start { // cannot happen: enqueue bounds each envelope
				end = ends[idx]
				idx++
				count++
			}
			chunk := body[start:end]
			start = end

			hdr = binary.AppendUvarint(hdr[:0], uint64(len(n.fromEnc)+len(chunk)))
			bufs := net.Buffers{hdr, n.fromEnc, chunk}
			total := len(hdr) + len(n.fromEnc) + len(chunk)
			if _, err := bufs.WriteTo(pc.conn); err != nil {
				n.dropPeer(to, pc)
				return
			}
			n.framesSent.Add(1)
			n.envsSent.Add(uint64(count))
			n.bytesSent.Add(uint64(total))
			n.m.framesSent.Inc()
			n.m.envsSent.Add(uint64(count))
			n.m.bytesSent.Add(uint64(total))
			n.m.batch.Observe(float64(count))
		}

		// Reuse the drained buffers next round, but let one-off bursts go.
		if cap(body) <= 1<<20 {
			spare = body[:0]
		} else {
			spare = nil
		}
		if cap(ends) <= 1<<15 {
			spareEnds = ends[:0]
		} else {
			spareEnds = nil
		}
	}
}

// peer returns the (possibly newly dialed) connection to p.
func (n *TCPNetwork) peer(p ident.PID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := n.conns[p]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.peers[p]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", p, addr, err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if pc, ok := n.conns[p]; ok { // lost the race, reuse the winner
		conn.Close()
		return pc, nil
	}
	pc := newPeerConn(conn)
	n.conns[p] = pc
	n.wg.Add(1)
	go n.writeLoop(p, pc)
	return pc, nil
}

func (n *TCPNetwork) dropPeer(p ident.PID, pc *peerConn) {
	pc.close()
	n.mu.Lock()
	if n.conns[p] == pc {
		delete(n.conns, p)
	}
	n.mu.Unlock()
}

func (n *TCPNetwork) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *TCPNetwork) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	var frame []byte
	var r codec.Reader
	// run accumulates consecutive envelopes of one (group, channel) so a
	// whole frame reaches the inbox demux in a few batched deposits — the
	// receive-side mirror of the writer's coalescing. The buffer is reused
	// across frames; depositBatch copies, so nothing here escapes.
	var run []Envelope
	var runG ident.GroupID
	var runCh Channel
	flushRun := func() {
		if len(run) > 0 {
			n.boxes.depositBatch(runG, runCh, run)
			run = run[:0]
		}
	}
	for {
		flen, err := binary.ReadUvarint(br)
		if err != nil {
			return // connection closed or peer crashed
		}
		if flen == 0 || flen > uint64(n.opts.MaxFrame) {
			return // protocol violation: treat the peer as faulty
		}
		if uint64(cap(frame)) < flen {
			frame = make([]byte, flen)
		}
		frame = frame[:flen]
		if _, err := io.ReadFull(br, frame); err != nil {
			return
		}
		n.framesRecv.Add(1)
		n.m.framesRecv.Inc()
		r.Reset(frame)
		from := ident.PID(r.String())
		frameEnvs := 0
		for r.Len() > 0 && r.Err() == nil {
			gid := r.Uvarint()
			ch := Channel(r.Byte())
			// Decode the message even when the envelope will be dropped:
			// staying aligned with the stream is what lets one bad
			// envelope be discarded without dropping the whole peer.
			msg, err := codec.Unmarshal(&r)
			if err != nil {
				flushRun()
				return // mis-encoded or misaligned frame: drop the peer
			}
			n.envsRecv.Add(1)
			n.m.envsRecv.Inc()
			frameEnvs++
			if gid > math.MaxUint32 {
				// A group id beyond GroupID's range can never be hosted;
				// count it as unknown rather than letting the uint32
				// conversion alias it into a real group's inbox.
				n.boxes.dropUnknownGroup()
				continue
			}
			g := ident.GroupID(gid)
			if len(run) > 0 && (g != runG || ch != runCh) {
				flushRun()
			}
			runG, runCh = g, ch
			run = append(run, Envelope{From: from, Group: g, Msg: msg})
		}
		// Flush at every frame boundary: the frame buffer is reused for
		// the next frame, and decoded messages must not outlive deposit
		// batching by more than one frame anyway (latency).
		flushRun()
		if frameEnvs > 0 {
			n.m.rxBatch.Observe(float64(frameEnvs))
		}
		if r.Err() != nil {
			return
		}
		// Reuse the frame buffer, but don't pin a one-off large frame for
		// the connection's lifetime.
		if cap(frame) > 1<<20 {
			frame = nil
		}
		// Don't pin a one-off burst's worth of envelope headers either.
		if cap(run) > 1<<12 {
			run = nil
		}
	}
}

// deposit places env in the inbox for (g, ch), or drops and counts it
// when that inbox was never registered.
func (n *TCPNetwork) deposit(g ident.GroupID, ch Channel, env Envelope) {
	n.boxes.deposit(g, ch, env)
}

// Close implements Endpoint: crash-stop shutdown. Envelopes still queued
// for peers are dropped, no envelope is delivered locally after Close
// returns, and concurrent or repeated Close calls all block until the
// shutdown completes.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		done := n.closeDone
		n.mu.Unlock()
		<-done // wait for the first closer to finish
		return nil
	}
	n.closed = true
	conns := make([]*peerConn, 0, len(n.conns))
	for _, pc := range n.conns {
		conns = append(conns, pc)
	}
	n.conns = make(map[ident.PID]*peerConn)
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	n.mu.Unlock()

	n.ln.Close()
	for _, pc := range conns {
		pc.close()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
	n.boxes.close()
	close(n.closeDone)
	return nil
}
