package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/ident"
)

// TCPNetwork implements Endpoint over real TCP connections with gob
// encoding, so a group can span OS processes and machines. One TCP
// connection is maintained per outgoing peer; TCP's in-order reliable
// delivery provides the FIFO reliable channel of the system model for the
// lifetime of the session (crash-stop: a broken connection is treated as
// the peer's crash, there is no reconnect-and-replay).
//
// All concrete message types sent through the network must be registered
// with encoding/gob (the protocol packages do so for their wire types).
type TCPNetwork struct {
	self ident.PID
	ln   net.Listener

	mu       sync.Mutex
	closed   bool
	peers    map[ident.PID]string
	conns    map[ident.PID]*peerConn
	accepted map[net.Conn]struct{}
	inboxes  map[Channel]*ubq
	wg       sync.WaitGroup
}

var _ Endpoint = (*TCPNetwork)(nil)

type peerConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
}

// wireEnv is the on-the-wire envelope.
type wireEnv struct {
	From ident.PID
	Ch   Channel
	Msg  any
}

// NewTCPNetwork starts listening on listenAddr and returns the endpoint
// for self. peers maps every other group member to its listen address;
// connections are dialed lazily on first send.
func NewTCPNetwork(self ident.PID, listenAddr string, peers map[ident.PID]string) (*TCPNetwork, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", listenAddr, err)
	}
	n := &TCPNetwork{
		self:     self,
		ln:       ln,
		peers:    make(map[ident.PID]string, len(peers)),
		conns:    make(map[ident.PID]*peerConn),
		accepted: make(map[net.Conn]struct{}),
		inboxes:  make(map[Channel]*ubq, numChannels),
	}
	for p, addr := range peers {
		n.peers[p] = addr
	}
	for _, ch := range Channels() {
		n.inboxes[ch] = newUBQ()
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the actual listen address (useful with ":0").
func (n *TCPNetwork) Addr() string { return n.ln.Addr().String() }

// AddPeer registers (or updates) the address of a peer. It allows groups
// to be bootstrapped with ":0" listeners whose ports are only known after
// every member has started listening.
func (n *TCPNetwork) AddPeer(p ident.PID, addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[p] = addr
}

// Self implements Endpoint.
func (n *TCPNetwork) Self() ident.PID { return n.self }

// Inbox implements Endpoint.
func (n *TCPNetwork) Inbox(ch Channel) <-chan Envelope {
	n.mu.Lock()
	defer n.mu.Unlock()
	q, ok := n.inboxes[ch]
	if !ok {
		q = newUBQ()
		n.inboxes[ch] = q
	}
	return q.out
}

// Send implements Endpoint.
func (n *TCPNetwork) Send(to ident.PID, ch Channel, m any) error {
	if to == n.self {
		n.deposit(Envelope{From: n.self, Msg: m}, ch)
		return nil
	}
	pc, err := n.peer(to)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if err := pc.enc.Encode(wireEnv{From: n.self, Ch: ch, Msg: m}); err != nil {
		n.dropPeer(to, pc)
		return fmt.Errorf("transport: send to %s: %w", to, err)
	}
	return nil
}

// peer returns the (possibly newly dialed) connection to p.
func (n *TCPNetwork) peer(p ident.PID) (*peerConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, ErrClosed
	}
	if pc, ok := n.conns[p]; ok {
		n.mu.Unlock()
		return pc, nil
	}
	addr, ok := n.peers[p]
	n.mu.Unlock()
	if !ok {
		return nil, ErrUnknownPeer
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s (%s): %w", p, addr, err)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		conn.Close()
		return nil, ErrClosed
	}
	if pc, ok := n.conns[p]; ok { // lost the race, reuse the winner
		conn.Close()
		return pc, nil
	}
	pc := &peerConn{conn: conn, enc: gob.NewEncoder(conn)}
	n.conns[p] = pc
	return pc, nil
}

func (n *TCPNetwork) dropPeer(p ident.PID, pc *peerConn) {
	pc.conn.Close()
	n.mu.Lock()
	if n.conns[p] == pc {
		delete(n.conns, p)
	}
	n.mu.Unlock()
}

func (n *TCPNetwork) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			conn.Close()
			return
		}
		n.accepted[conn] = struct{}{}
		n.wg.Add(1)
		n.mu.Unlock()
		go n.readLoop(conn)
	}
}

func (n *TCPNetwork) readLoop(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.accepted, conn)
		n.mu.Unlock()
	}()
	dec := gob.NewDecoder(conn)
	for {
		var we wireEnv
		if err := dec.Decode(&we); err != nil {
			return // connection closed or peer crashed
		}
		n.deposit(Envelope{From: we.From, Msg: we.Msg}, we.Ch)
	}
}

func (n *TCPNetwork) deposit(env Envelope, ch Channel) {
	n.mu.Lock()
	q, ok := n.inboxes[ch]
	if !ok {
		q = newUBQ()
		n.inboxes[ch] = q
	}
	closed := n.closed
	n.mu.Unlock()
	if !closed {
		q.push(env)
	}
}

// Close implements Endpoint.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	conns := make([]*peerConn, 0, len(n.conns))
	for _, pc := range n.conns {
		conns = append(conns, pc)
	}
	n.conns = make(map[ident.PID]*peerConn)
	accepted := make([]net.Conn, 0, len(n.accepted))
	for c := range n.accepted {
		accepted = append(accepted, c)
	}
	inboxes := make([]*ubq, 0, len(n.inboxes))
	for _, q := range n.inboxes {
		inboxes = append(inboxes, q)
	}
	n.mu.Unlock()

	n.ln.Close()
	for _, pc := range conns {
		pc.conn.Close()
	}
	for _, c := range accepted {
		c.Close()
	}
	n.wg.Wait()
	for _, q := range inboxes {
		q.close()
	}
	return nil
}
