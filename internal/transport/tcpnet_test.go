package transport

import (
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
)

// tcpPayload is a test wire type.
type tcpPayload struct {
	N int
	S string
}

func init() {
	codec.Register[tcpPayload](codec.TTestA,
		func(dst []byte, p tcpPayload) []byte {
			dst = codec.AppendVarint(dst, int64(p.N))
			return codec.AppendString(dst, p.S)
		},
		func(r *codec.Reader) (tcpPayload, error) {
			var p tcpPayload
			p.N = int(r.Varint())
			p.S = r.String()
			return p, r.Err()
		})
}

func tcpPairOpts(t *testing.T, opts TCPOptions) (*TCPNetwork, *TCPNetwork) {
	t.Helper()
	a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNetworkOpts("b", "127.0.0.1:0", map[ident.PID]string{"a": a.Addr()}, opts)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// Give a the route back to b.
	a.AddPeer("b", b.Addr())
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func tcpPair(t *testing.T) (*TCPNetwork, *TCPNetwork) {
	t.Helper()
	return tcpPairOpts(t, TCPOptions{})
}

func TestTCPNetworkSendRecv(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 7, S: "hi"}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b.Inbox(ident.NodeGroup, Data))
	p, ok := env.Msg.(tcpPayload)
	if !ok || p.N != 7 || p.S != "hi" || env.From != "a" || env.Group != ident.NodeGroup {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPNetworkBidirectional(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", ident.NodeGroup, Ctl, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", ident.NodeGroup, Ctl, tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Ctl)); env.Msg.(tcpPayload).N != 1 {
		t.Fatalf("b got %+v", env)
	}
	if env := recvOne(t, a.Inbox(ident.NodeGroup, Ctl)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("a got %+v", env)
	}
}

func TestTCPNetworkFIFO(t *testing.T) {
	a, b := tcpPair(t)
	const count = 300
	for i := 0; i < count; i++ {
		if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(ident.NodeGroup, Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg.(tcpPayload).N != i {
			t.Fatalf("out of order: got %v want %d", env.Msg, i)
		}
	}
}

// TestTCPNetworkGroupDemux: one connection pair carries several groups'
// traffic, demultiplexed into independent (group, channel) inboxes, with
// per-group FIFO preserved.
func TestTCPNetworkGroupDemux(t *testing.T) {
	a, b := tcpPair(t)
	groups := []ident.GroupID{1, 2, 7}
	for _, g := range groups {
		b.Register(g)
	}
	const perGroup = 100
	for i := 0; i < perGroup; i++ {
		for _, g := range groups {
			if err := a.Send("b", g, Data, tcpPayload{N: int(g)*1000 + i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, g := range groups {
		in := b.Inbox(g, Data)
		for i := 0; i < perGroup; i++ {
			env := recvOne(t, in)
			if env.Group != g || env.Msg.(tcpPayload).N != int(g)*1000+i {
				t.Fatalf("group %d envelope %d: got %+v", g, i, env)
			}
		}
	}
	if got := a.Conns(); got != 1 {
		t.Fatalf("a holds %d outgoing conns for 3 groups, want 1", got)
	}
}

// TestTCPNetworkDropsUnknownGroup: a well-formed envelope for a group the
// receiver does not host is dropped and counted — never deposited, and
// never fatal to the connection it shares with live groups.
func TestTCPNetworkDropsUnknownGroup(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", 42, Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Same connection still serves registered traffic afterwards.
	if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(ident.NodeGroup, Data)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("got %+v", env)
	}
	if st := b.Stats(); st.Drops.DroppedUnknownGroup != 1 || st.Drops.DroppedUnknownChannel != 0 {
		t.Fatalf("drops = %+v, want 1 unknown-group", st.Drops)
	}
}

// TestTCPNetworkDropsDeregisteredGroup: after Deregister, stray traffic
// for the departed group is dropped and counted.
func TestTCPNetworkDropsDeregisteredGroup(t *testing.T) {
	a, b := tcpPair(t)
	b.Register(3)
	if err := a.Send("b", 3, Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	in := b.Inbox(3, Data)
	recvOne(t, in)
	b.Deregister(3)
	if _, ok := <-in; ok {
		t.Fatal("inbox not closed by Deregister")
	}
	if err := a.Send("b", 3, Data, tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stray envelope dropped", func() bool {
		return b.Stats().Drops.DroppedUnknownGroup == 1
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTCPNetworkSelfSend(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("a", ident.NodeGroup, Data, tcpPayload{N: 9}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(ident.NodeGroup, Data)); env.Msg.(tcpPayload).N != 9 {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPNetworkUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", ident.NodeGroup, Data, tcpPayload{}); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

// TestTCPNetworkUnregisteredType: the binary codec reports unregistered
// message types synchronously at Send, before anything hits the wire.
func TestTCPNetworkUnregisteredType(t *testing.T) {
	a, _ := tcpPair(t)
	type unregistered struct{ X int }
	if err := a.Send("b", ident.NodeGroup, Data, unregistered{X: 1}); err == nil {
		t.Fatal("send of unregistered type should fail")
	}
	// The connection must survive a rejected send.
	if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPNetworkStats checks the wire counters add up across a burst:
// every envelope is accounted for and frames never exceed envelopes. The
// deterministic coalescing guarantee is covered by
// TestWriteLoopCoalescesBacklog.
func TestTCPNetworkStats(t *testing.T) {
	a, b := tcpPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send("b", ident.NodeGroup, Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(ident.NodeGroup, Data)
	for i := 0; i < count; i++ {
		recvOne(t, in)
	}
	st := a.Stats()
	if st.EnvelopesSent != count {
		t.Fatalf("EnvelopesSent = %d, want %d", st.EnvelopesSent, count)
	}
	if st.FramesSent == 0 || st.FramesSent > st.EnvelopesSent {
		t.Fatalf("FramesSent = %d out of range (envelopes %d)", st.FramesSent, st.EnvelopesSent)
	}
	rst := b.Stats()
	if rst.EnvelopesRecv != count {
		t.Fatalf("EnvelopesRecv = %d, want %d", rst.EnvelopesRecv, count)
	}
	t.Logf("coalescing: %d envelopes in %d frames", st.EnvelopesSent, st.FramesSent)
}

func TestTCPNetworkCloseUnblocks(t *testing.T) {
	a, err := NewTCPNetwork("x", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := a.Inbox(ident.NodeGroup, Data)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range in {
		}
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inbox reader not released by Close")
	}
	if err := a.Send("anyone", ident.NodeGroup, Data, tcpPayload{}); err == nil {
		t.Fatal("send after close should fail")
	}
}
