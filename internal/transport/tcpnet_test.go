package transport

import (
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
)

// tcpPayload is a test wire type, registered with both codecs.
type tcpPayload struct {
	N int
	S string
}

func init() {
	gob.Register(tcpPayload{})
	codec.Register[tcpPayload](codec.TTestA,
		func(dst []byte, p tcpPayload) []byte {
			dst = codec.AppendVarint(dst, int64(p.N))
			return codec.AppendString(dst, p.S)
		},
		func(r *codec.Reader) (tcpPayload, error) {
			var p tcpPayload
			p.N = int(r.Varint())
			p.S = r.String()
			return p, r.Err()
		})
}

// codecs parametrizes the suite over both wire encodings: each must
// interoperate with itself.
var codecs = []struct {
	name string
	c    Codec
}{
	{"binary", CodecBinary},
	{"gob", CodecGob},
}

func tcpPairOpts(t *testing.T, opts TCPOptions) (*TCPNetwork, *TCPNetwork) {
	t.Helper()
	a, err := NewTCPNetworkOpts("a", "127.0.0.1:0", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNetworkOpts("b", "127.0.0.1:0", map[ident.PID]string{"a": a.Addr()}, opts)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// Give a the route back to b.
	a.AddPeer("b", b.Addr())
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func tcpPair(t *testing.T) (*TCPNetwork, *TCPNetwork) {
	t.Helper()
	return tcpPairOpts(t, TCPOptions{})
}

func TestTCPNetworkSendRecv(t *testing.T) {
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tcpPairOpts(t, TCPOptions{Codec: tc.c})
			if err := a.Send("b", Data, tcpPayload{N: 7, S: "hi"}); err != nil {
				t.Fatal(err)
			}
			env := recvOne(t, b.Inbox(Data))
			p, ok := env.Msg.(tcpPayload)
			if !ok || p.N != 7 || p.S != "hi" || env.From != "a" {
				t.Fatalf("got %+v", env)
			}
		})
	}
}

func TestTCPNetworkBidirectional(t *testing.T) {
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tcpPairOpts(t, TCPOptions{Codec: tc.c})
			if err := a.Send("b", Ctl, tcpPayload{N: 1}); err != nil {
				t.Fatal(err)
			}
			if err := b.Send("a", Ctl, tcpPayload{N: 2}); err != nil {
				t.Fatal(err)
			}
			if env := recvOne(t, b.Inbox(Ctl)); env.Msg.(tcpPayload).N != 1 {
				t.Fatalf("b got %+v", env)
			}
			if env := recvOne(t, a.Inbox(Ctl)); env.Msg.(tcpPayload).N != 2 {
				t.Fatalf("a got %+v", env)
			}
		})
	}
}

func TestTCPNetworkFIFO(t *testing.T) {
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tcpPairOpts(t, TCPOptions{Codec: tc.c})
			const count = 300
			for i := 0; i < count; i++ {
				if err := a.Send("b", Data, tcpPayload{N: i}); err != nil {
					t.Fatal(err)
				}
			}
			in := b.Inbox(Data)
			for i := 0; i < count; i++ {
				env := recvOne(t, in)
				if env.Msg.(tcpPayload).N != i {
					t.Fatalf("out of order: got %v want %d", env.Msg, i)
				}
			}
		})
	}
}

func TestTCPNetworkSelfSend(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("a", Data, tcpPayload{N: 9}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(Data)); env.Msg.(tcpPayload).N != 9 {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPNetworkUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", Data, tcpPayload{}); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

// TestTCPNetworkUnregisteredType: the binary codec reports unregistered
// message types synchronously at Send, before anything hits the wire.
func TestTCPNetworkUnregisteredType(t *testing.T) {
	a, _ := tcpPair(t)
	type unregistered struct{ X int }
	if err := a.Send("b", Data, unregistered{X: 1}); err == nil {
		t.Fatal("send of unregistered type should fail")
	}
	// The connection must survive a rejected send.
	if err := a.Send("b", Data, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPNetworkStats checks the wire counters add up across a burst:
// every envelope is accounted for and frames never exceed envelopes. The
// deterministic coalescing guarantee is covered by
// TestWriteLoopCoalescesBacklog.
func TestTCPNetworkStats(t *testing.T) {
	a, b := tcpPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send("b", Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(Data)
	for i := 0; i < count; i++ {
		recvOne(t, in)
	}
	st := a.Stats()
	if st.EnvelopesSent != count {
		t.Fatalf("EnvelopesSent = %d, want %d", st.EnvelopesSent, count)
	}
	if st.FramesSent == 0 || st.FramesSent > st.EnvelopesSent {
		t.Fatalf("FramesSent = %d out of range (envelopes %d)", st.FramesSent, st.EnvelopesSent)
	}
	rst := b.Stats()
	if rst.EnvelopesRecv != count {
		t.Fatalf("EnvelopesRecv = %d, want %d", rst.EnvelopesRecv, count)
	}
	t.Logf("coalescing: %d envelopes in %d frames", st.EnvelopesSent, st.FramesSent)
}

func TestTCPNetworkCloseUnblocks(t *testing.T) {
	for _, tc := range codecs {
		t.Run(tc.name, func(t *testing.T) {
			a, err := NewTCPNetworkOpts("x", "127.0.0.1:0", nil, TCPOptions{Codec: tc.c})
			if err != nil {
				t.Fatal(err)
			}
			in := a.Inbox(Data)
			done := make(chan struct{})
			go func() {
				defer close(done)
				for range in {
				}
			}()
			if err := a.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("inbox reader not released by Close")
			}
			if err := a.Send("anyone", Data, tcpPayload{}); err == nil {
				t.Fatal("send after close should fail")
			}
		})
	}
}
