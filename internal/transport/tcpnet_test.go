package transport

import (
	"encoding/gob"
	"testing"
	"time"

	"repro/internal/ident"
)

// tcpPayload is a test wire type.
type tcpPayload struct {
	N int
	S string
}

func init() { gob.Register(tcpPayload{}) }

func tcpPair(t *testing.T) (*TCPNetwork, *TCPNetwork) {
	t.Helper()
	a, err := NewTCPNetwork("a", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPNetwork("b", "127.0.0.1:0", map[ident.PID]string{"a": a.Addr()})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	// Give a the route back to b.
	a.mu.Lock()
	a.peers["b"] = b.Addr()
	a.mu.Unlock()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

func TestTCPNetworkSendRecv(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", Data, tcpPayload{N: 7, S: "hi"}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b.Inbox(Data))
	p, ok := env.Msg.(tcpPayload)
	if !ok || p.N != 7 || p.S != "hi" || env.From != "a" {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPNetworkBidirectional(t *testing.T) {
	a, b := tcpPair(t)
	if err := a.Send("b", Ctl, tcpPayload{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.Send("a", Ctl, tcpPayload{N: 2}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, b.Inbox(Ctl)); env.Msg.(tcpPayload).N != 1 {
		t.Fatalf("b got %+v", env)
	}
	if env := recvOne(t, a.Inbox(Ctl)); env.Msg.(tcpPayload).N != 2 {
		t.Fatalf("a got %+v", env)
	}
}

func TestTCPNetworkFIFO(t *testing.T) {
	a, b := tcpPair(t)
	const count = 300
	for i := 0; i < count; i++ {
		if err := a.Send("b", Data, tcpPayload{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	in := b.Inbox(Data)
	for i := 0; i < count; i++ {
		env := recvOne(t, in)
		if env.Msg.(tcpPayload).N != i {
			t.Fatalf("out of order: got %v want %d", env.Msg, i)
		}
	}
}

func TestTCPNetworkSelfSend(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("a", Data, tcpPayload{N: 9}); err != nil {
		t.Fatal(err)
	}
	if env := recvOne(t, a.Inbox(Data)); env.Msg.(tcpPayload).N != 9 {
		t.Fatalf("got %+v", env)
	}
}

func TestTCPNetworkUnknownPeer(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send("ghost", Data, tcpPayload{}); err == nil {
		t.Fatal("send to unknown peer should fail")
	}
}

func TestTCPNetworkCloseUnblocks(t *testing.T) {
	a, err := NewTCPNetwork("x", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	in := a.Inbox(Data)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range in {
		}
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("inbox reader not released by Close")
	}
	if err := a.Send("anyone", Data, tcpPayload{}); err == nil {
		t.Fatal("send after close should fail")
	}
}
