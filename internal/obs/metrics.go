package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric. Per-group and per-node
// labels are how one registry serves a whole multi-group node (or a whole
// in-process cluster in tests and svs-demo).
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter. All methods are
// nil-safe: a nil *Counter records nothing and reads zero, so callers
// handed no registry pay only a nil check.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. Nil-safe like Counter.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Max raises the gauge to n if n is larger (lock-free high-water mark).
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary cumulative-free histogram: bounds[i] is
// the inclusive upper edge of bucket i, and one overflow bucket catches
// everything above the last bound. Observations are two atomic adds (the
// bucket and the bit-packed sum); snapshots read without stopping writers,
// so a snapshot taken mid-observation may be off by the observation in
// flight — fine for monitoring, and torn reads are impossible because
// every word is read atomically.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64   // math.Float64bits-packed running sum
	count  atomic.Uint64
}

// Observe records v. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: inclusive upper edges
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h != nil {
		h.Observe(d.Seconds())
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return HistogramSnapshot{
		Bounds: h.bounds,
		Counts: counts,
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
}

// DurationBuckets is the default boundary set for latency histograms:
// exponential from 50µs to ~26s, in seconds.
var DurationBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 26,
}

// CountBuckets is the default boundary set for small-cardinality count
// histograms (consensus rounds, flush sizes).
var CountBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64, 128, 256, 512, 1024}

// Registry holds a process's instruments, keyed by name plus sorted
// labels. Lookup (Counter/Gauge/Histogram) takes the registry lock and is
// meant for construction time; the returned instruments are then updated
// lock-free. Asking twice for the same name and labels returns the same
// instrument, so independent components can share a counter.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// metricKey renders name{k1=v1,k2=v2} with labels sorted by key.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns (creating if needed) the counter name with labels. A
// nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name with labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram name with labels.
// bounds must be sorted ascending; they are only consulted on creation
// (the first caller wins), so every caller should pass the same set —
// typically DurationBuckets or CountBuckets.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
		r.histograms[key] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument, marshalable to
// JSON. It is what Node.Metrics returns and what svs-demo's -metrics
// endpoint serves.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is one histogram's state: Counts[i] observations fell
// at or below Bounds[i] (and above the previous bound); the final entry of
// Counts is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns the average observation, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot copies every instrument. Writers are not stopped: each value
// is read atomically, so the snapshot is per-instrument consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range r.histograms {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON — the expvar-style
// export svs-demo serves on its -metrics endpoint.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Sum adds up every counter whose name (ignoring labels) equals name —
// handy for aggregating one counter across groups or nodes.
func (s Snapshot) Sum(name string) uint64 {
	var total uint64
	for k, v := range s.Counters {
		if k == name || strings.HasPrefix(k, name+"{") {
			total += v
		}
	}
	return total
}
