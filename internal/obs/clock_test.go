package obs

import (
	"testing"
	"time"
)

func TestWallClockTicks(t *testing.T) {
	var c Clock = Wall{}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("wall ticker never fired")
	}
	if c.Since(c.Now()) > time.Second {
		t.Fatal("wall Since is broken")
	}
}

func TestFakeClockAdvanceFiresTickersInOrder(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	fast := f.NewTicker(10 * time.Millisecond)
	slow := f.NewTicker(25 * time.Millisecond)

	// Nothing fires without an advance.
	select {
	case <-fast.C():
		t.Fatal("ticker fired with a frozen clock")
	default:
	}

	// Advance 10ms: only the fast ticker is due, stamped at +10ms.
	f.Advance(10 * time.Millisecond)
	select {
	case ts := <-fast.C():
		if got := ts.Sub(start); got != 10*time.Millisecond {
			t.Fatalf("fast tick at +%v, want +10ms", got)
		}
	default:
		t.Fatal("fast ticker did not fire at +10ms")
	}
	select {
	case <-slow.C():
		t.Fatal("slow ticker fired before its period")
	default:
	}

	// Advance to +25ms: fast fires at +20ms, slow at +25ms.
	f.Advance(15 * time.Millisecond)
	if ts := <-fast.C(); ts.Sub(start) != 20*time.Millisecond {
		t.Fatalf("fast tick at +%v, want +20ms", ts.Sub(start))
	}
	if ts := <-slow.C(); ts.Sub(start) != 25*time.Millisecond {
		t.Fatalf("slow tick at +%v, want +25ms", ts.Sub(start))
	}
	if got := f.Now().Sub(start); got != 25*time.Millisecond {
		t.Fatalf("clock at +%v after advances, want +25ms", got)
	}
}

func TestFakeClockDropsTicksLikeTimeTicker(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Millisecond)
	// 10 periods with nobody draining: the 1-slot buffer keeps only the
	// earliest undelivered tick, exactly like time.Ticker.
	f.Advance(10 * time.Millisecond)
	n := 0
	for {
		select {
		case <-tk.C():
			n++
			continue
		default:
		}
		break
	}
	if n != 1 {
		t.Fatalf("drained %d buffered ticks, want 1", n)
	}
}

func TestFakeClockStoppedTickerNeverFires(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Millisecond)
	tk.Stop()
	f.Advance(time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker fired")
	default:
	}
}

func TestWallTimerFires(t *testing.T) {
	var c Clock = Wall{}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer never fired")
	}
}

func TestFakeClockTimerFiresOnceAtDeadline(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	tm := f.NewTimer(20 * time.Millisecond)

	f.Advance(10 * time.Millisecond)
	select {
	case <-tm.C():
		t.Fatal("timer fired before its deadline")
	default:
	}

	f.Advance(10 * time.Millisecond)
	select {
	case ts := <-tm.C():
		if ts.Sub(start) != 20*time.Millisecond {
			t.Fatalf("timer fired at +%v, want +20ms", ts.Sub(start))
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}

	// One-shot: no refire, ever.
	f.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("one-shot timer fired twice")
	default:
	}
}

func TestFakeClockTimerNonPositiveIsDue(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	zero := f.NewTimer(0)
	neg := f.NewTimer(-time.Second)
	f.Advance(0)
	for _, tm := range []Timer{zero, neg} {
		select {
		case <-tm.C():
		default:
			t.Fatal("non-positive timer not due at Advance(0)")
		}
	}
}

func TestFakeClockStoppedTimerNeverFires(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Millisecond)
	tm.Stop()
	f.Advance(time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeClockTimerAndTickerInterleave(t *testing.T) {
	// A timer due between two ticks fires in chronological position.
	start := time.Unix(0, 0)
	f := NewFake(start)
	tk := f.NewTicker(10 * time.Millisecond)
	tm := f.NewTimer(15 * time.Millisecond)
	f.Advance(20 * time.Millisecond)
	if ts := <-tk.C(); ts.Sub(start) != 10*time.Millisecond {
		t.Fatalf("first tick at +%v, want +10ms", ts.Sub(start))
	}
	if ts := <-tm.C(); ts.Sub(start) != 15*time.Millisecond {
		t.Fatalf("timer at +%v, want +15ms", ts.Sub(start))
	}
}

func TestFakeClockSetAndSince(t *testing.T) {
	start := time.Unix(50, 0)
	f := NewFake(start)
	f.Set(start.Add(3 * time.Second))
	if got := f.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestNilObsFallsBackToWallClock(t *testing.T) {
	var o *Obs
	if _, ok := o.Clock().(Wall); !ok {
		t.Fatalf("nil Obs clock = %T, want Wall", o.Clock())
	}
	if o.Registry() != nil || o.Events() != nil || o.With(L("a", "b")) != nil {
		t.Fatal("nil Obs must stay nil through derivation")
	}
	o.Counter("x").Inc() // must not panic
	o.Gauge("x").Set(1)
	o.Histogram("x", DurationBuckets).Observe(1)
}
