package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 5})
	// Upper edges are inclusive: v == bound lands in that bound's bucket.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0.5, 0}, {1, 0}, // at the first edge: bucket 0
		{1.0001, 1}, {2, 1}, // at the second edge: bucket 1
		{3, 2}, {5, 2}, // at the last edge: bucket 2
		{5.0001, 3}, {1e9, 3}, // overflow bucket
		{-1, 0}, // below every edge: first bucket
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := r.Snapshot().Histograms["h"]
	want := make([]uint64, 4)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if snap.Counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], want[i], snap.Counts)
		}
	}
	if snap.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", snap.Count, len(cases))
	}
	var sum float64
	for _, c := range cases {
		sum += c.v
	}
	if math.Abs(snap.Sum-sum) > 1e-9 {
		t.Fatalf("sum = %v, want %v", snap.Sum, sum)
	}
}

func TestHistogramDurationAndMean(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d", DurationBuckets)
	h.ObserveDuration(100 * time.Millisecond)
	h.ObserveDuration(300 * time.Millisecond)
	snap := r.Snapshot().Histograms["d"]
	if got := snap.Mean(); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("mean = %v, want 0.2", got)
	}
}

func TestRegistryLabelsAndIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("msgs", L("group", "1"), L("node", "p0"))
	// Same name, same labels in a different order: the same instrument.
	b := r.Counter("msgs", L("node", "p0"), L("group", "1"))
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	c := r.Counter("msgs", L("group", "2"), L("node", "p0"))
	if a == c {
		t.Fatal("different labels shared an instrument")
	}
	a.Add(3)
	c.Inc()
	snap := r.Snapshot()
	if snap.Counters["msgs{group=1,node=p0}"] != 3 {
		t.Fatalf("unexpected snapshot %v", snap.Counters)
	}
	if got := snap.Sum("msgs"); got != 4 {
		t.Fatalf("Sum(msgs) = %d, want 4", got)
	}
	if got := snap.Sum("msg"); got != 0 {
		t.Fatalf("Sum(msg) must not prefix-match msgs, got %d", got)
	}
}

func TestObsWithDerivesLabels(t *testing.T) {
	r := NewRegistry()
	root := New(Wall{}, r, nil)
	g1 := root.With(L("group", "1"))
	g1.Counter("delivered").Add(7)
	g1.GaugeL("suspected", L("peer", "p1")).Set(1)
	snap := r.Snapshot()
	if snap.Counters["delivered{group=1}"] != 7 {
		t.Fatalf("unexpected counters %v", snap.Counters)
	}
	if snap.Gauges["suspected{group=1,peer=p1}"] != 1 {
		t.Fatalf("unexpected gauges %v", snap.Gauges)
	}
	// The parent bundle is unaffected by the derivation.
	root.Counter("delivered").Inc()
	if got := r.Snapshot().Counters["delivered"]; got != 1 {
		t.Fatalf("parent counter = %d, want 1", got)
	}
}

func TestGaugeMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("hwm")
	g.Max(5)
	g.Max(3)
	g.Max(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("hwm = %d, want 9", got)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Gauge("g").Set(-4)
	r.Histogram("h", CountBuckets).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["c"] != 2 || s.Gauges["g"] != -4 || s.Histograms["h"].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", s)
	}
}

// TestMetricsRaceHammer updates every instrument kind from many goroutines
// while snapshots are taken concurrently; under -race this proves the
// lock-free instruments and snapshot copying are torn-read free.
func TestMetricsRaceHammer(t *testing.T) {
	r := NewRegistry()
	const (
		writers  = 8
		perLoop  = 1000
		snappers = 3
	)
	var writeWG, snapWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			// Half the writers resolve instruments per iteration (exercising
			// registry lookup under contention), half hold them.
			c := r.Counter("hammer_total")
			g := r.Gauge("hammer_depth")
			h := r.Histogram("hammer_lat", DurationBuckets)
			for i := 0; i < perLoop; i++ {
				if w%2 == 0 {
					c = r.Counter("hammer_total")
					g = r.Gauge("hammer_depth", L("w", fmt.Sprint(w)))
					h = r.Histogram("hammer_lat", DurationBuckets)
				}
				c.Inc()
				g.Add(1)
				g.Max(int64(i))
				h.Observe(float64(i) * 1e-6)
			}
		}(w)
	}
	for s := 0; s < snappers; s++ {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.Snapshot()
				h := snap.Histograms["hammer_lat"]
				var bucketSum uint64
				for _, c := range h.Counts {
					bucketSum += c
				}
				// Count and the bucket sum race benignly (two separate
				// atomics), but bucket counts must never exceed Count+writers
				// in-flight increments.
				if bucketSum > h.Count+writers {
					panic(fmt.Sprintf("bucket sum %d far ahead of count %d", bucketSum, h.Count))
				}
			}
		}()
	}
	// Writers finish, then stop the snappers.
	writeWG.Wait()
	close(stop)
	snapWG.Wait()
	final := r.Snapshot()
	if got := final.Counters["hammer_total"]; got != writers*perLoop {
		t.Fatalf("hammer_total = %d, want %d", got, writers*perLoop)
	}
	h := final.Histograms["hammer_lat"]
	if h.Count != writers*perLoop {
		t.Fatalf("histogram count = %d, want %d", h.Count, writers*perLoop)
	}
	var bucketSum uint64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Fatalf("bucket sum %d != count %d after quiescence", bucketSum, h.Count)
	}
}
