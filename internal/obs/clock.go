// Package obs is the node-wide observability layer: a lock-cheap metrics
// registry (atomic counters, gauges, bounded histograms), a structured
// event sink over log/slog, and an injectable Clock.
//
// The three pillars share one design rule: zero coordination on the hot
// path. Instruments are resolved once, at construction time, under the
// registry lock; recording into them afterwards is a single atomic
// operation. Every instrument method is nil-safe, so a component handed no
// observability (a nil *Obs, the Nop bundle) pays only a nil check.
//
// The Clock exists because the paper's evaluation (§5) is entirely about
// measured time — purged-vs-delivered under load, blocking durations,
// view-change latency — and none of that is testable, or usable under the
// deterministic simulation in internal/des, while runtime code reads wall
// clocks directly. Runtime packages (core, fd, consensus) take their time
// exclusively from an obs.Clock; a grep-enforced lint step
// (scripts/lint-clock.sh) keeps direct time.Now/time.NewTicker calls out.
package obs

import (
	"sync"
	"time"
)

// Clock abstracts the time source of the runtime packages. Wall is the
// real clock; Fake is a deterministic clock for tests and DES harnesses.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	// NewTicker returns a ticker firing every d. Like time.NewTicker it
	// panics for d <= 0.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a one-shot timer firing after d. Like
	// time.NewTimer, d <= 0 means the timer is already due and fires at
	// the first opportunity.
	NewTimer(d time.Duration) Timer
}

// Ticker is the clock-agnostic subset of time.Ticker the runtime uses.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer is the clock-agnostic subset of time.Timer the runtime uses.
type Timer interface {
	C() <-chan time.Time
	Stop()
}

// Wall is the real time.Now-backed clock.
type Wall struct{}

var _ Clock = Wall{}

// Now implements Clock.
func (Wall) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTicker implements Clock.
func (Wall) NewTicker(d time.Duration) Ticker { return wallTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Wall) NewTimer(d time.Duration) Timer { return wallTimer{time.NewTimer(d)} }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time { return w.t.C }
func (w wallTimer) Stop()               { w.t.Stop() }

// Fake is a manually advanced clock: Now is frozen until Advance (or Set)
// moves it, and tickers fire deterministically, in chronological order,
// during the advance. Goroutines consuming a ticker still run concurrently
// with the test, so a deterministic assertion needs a synchronisation
// point after the tick — typically an observable side effect of the tick
// being processed (see TestHeartbeatDeterministicUnderFakeClock).
type Fake struct {
	mu      sync.Mutex
	cond    *sync.Cond
	now     time.Time
	tickers []*fakeTicker
}

var _ Clock = (*Fake)(nil)

// NewFake returns a fake clock reading start.
func NewFake(start time.Time) *Fake {
	f := &Fake{now: start}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("obs: non-positive ticker period")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTicker{
		clock:  f,
		period: d,
		next:   f.now.Add(d),
		c:      make(chan time.Time, 1),
	}
	f.tickers = append(f.tickers, t)
	f.cond.Broadcast()
	return t
}

// NewTimer implements Clock. A fake timer with d <= 0 is due immediately
// and fires during the next Advance (including Advance(0)).
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &fakeTicker{
		clock:   f,
		period:  0,
		oneshot: true,
		next:    f.now.Add(d),
		c:       make(chan time.Time, 1),
	}
	if d < 0 {
		t.next = f.now
	}
	f.tickers = append(f.tickers, t)
	f.cond.Broadcast()
	return t
}

// BlockUntil waits until at least n tickers are registered. Components
// usually create their tickers inside the goroutines that consume them, so
// a test must rendezvous here before its first Advance or the ticks land
// nowhere.
func (f *Fake) BlockUntil(n int) {
	f.mu.Lock()
	for len(f.tickers) < n {
		f.cond.Wait()
	}
	f.mu.Unlock()
}

// Advance moves the clock forward by d, firing every due ticker in
// chronological order (ties in creation order). Ticks are delivered like
// time.Ticker's: a tick that finds the channel full is dropped.
func (f *Fake) Advance(d time.Duration) {
	if d < 0 {
		panic("obs: advancing backwards")
	}
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var due *fakeTicker
		for _, t := range f.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if due == nil || t.next.Before(due.next) {
				due = t
			}
		}
		if due == nil {
			break
		}
		f.now = due.next
		if due.oneshot {
			due.stopped = true
		} else {
			due.next = due.next.Add(due.period)
		}
		select {
		case due.c <- f.now:
		default: // consumer is behind: drop, like time.Ticker
		}
	}
	f.now = target
	f.gc() // drop timers that fired during this advance
	f.mu.Unlock()
}

// Set jumps the clock to t (which must not be in the past), firing due
// tickers on the way.
func (f *Fake) Set(t time.Time) {
	d := t.Sub(f.Now())
	if d < 0 {
		panic("obs: setting the clock backwards")
	}
	f.Advance(d)
}

// gc drops stopped tickers once they accumulate.
func (f *Fake) gc() {
	live := f.tickers[:0]
	for _, t := range f.tickers {
		if !t.stopped {
			live = append(live, t)
		}
	}
	f.tickers = live
}

// fakeTicker backs both Fake tickers and (with oneshot set) Fake timers:
// a timer is a ticker that marks itself stopped after its first fire.
type fakeTicker struct {
	clock   *Fake
	period  time.Duration
	next    time.Time
	c       chan time.Time
	oneshot bool
	stopped bool
}

func (t *fakeTicker) C() <-chan time.Time { return t.c }

func (t *fakeTicker) Stop() {
	t.clock.mu.Lock()
	t.stopped = true
	t.clock.gc()
	t.clock.mu.Unlock()
}
