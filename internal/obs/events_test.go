package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// captureEvents returns an Events sink writing JSON lines into buf.
func captureEvents(buf *bytes.Buffer) *Events {
	h := slog.NewJSONHandler(buf, &slog.HandlerOptions{Level: slog.LevelDebug})
	return NewEvents(slog.New(h))
}

func TestNilEventsAreNoOps(t *testing.T) {
	var e *Events
	e.ViewInstall(1, 3, 0, time.Second)
	e.Suspicion("p1", true)
	e.Drop(DropCovered)
	e.SendError("p1", errors.New("boom"))
	if d := e.With(slog.String("k", "v")); d != nil {
		t.Fatal("nil Events must derive to nil")
	}
}

func TestEventsEmitStructuredRecords(t *testing.T) {
	var buf bytes.Buffer
	e := captureEvents(&buf).With(slog.String("node", "p0"), slog.String("group", "2"))

	e.ViewInstall(3, 4, 2, 150*time.Millisecond)
	e.MemberChange(3, []string{"p9"}, []string{"p1"})
	e.Suspicion("p1", true)
	e.Drop(DropStaleView, slog.String("from", "p1"))
	e.StateTransfer("sent", "p9", 3, 16, 278)
	e.DecisionFailed(4, errors.New("decode: short buffer"))

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("emitted %d records, want 6:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "view_install" || rec["node"] != "p0" || rec["group"] != "2" {
		t.Fatalf("view_install record missing attrs: %v", rec)
	}
	if rec["view"] != float64(3) || rec["members"] != float64(4) || rec["flush"] != float64(2) {
		t.Fatalf("view_install fields wrong: %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[3]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["msg"] != "drop" || rec["reason"] != string(DropStaleView) || rec["from"] != "p1" {
		t.Fatalf("drop record wrong: %v", rec)
	}
}

func TestMemberChangeSkipsEmptyChanges(t *testing.T) {
	var buf bytes.Buffer
	e := captureEvents(&buf)
	e.MemberChange(2, nil, nil)
	if buf.Len() != 0 {
		t.Fatalf("empty member change emitted: %s", buf.String())
	}
}
