package obs

import "log/slog"

// Obs bundles the three pillars a runtime component needs: the clock, the
// metrics registry, and the event sink, plus the label set identifying
// the component (node, group). It is passed down from the deployment
// (svs-demo, tests) through Node and Engine configs; a nil *Obs is valid
// everywhere and means "wall clock, no metrics, no events".
type Obs struct {
	clock  Clock
	reg    *Registry
	events *Events
	labels []Label
}

// New assembles a bundle. Any argument may be nil/zero: a nil clock means
// Wall, a nil registry disables metrics, a nil logger disables events.
func New(clock Clock, reg *Registry, logger *slog.Logger) *Obs {
	return &Obs{clock: clock, reg: reg, events: NewEvents(logger)}
}

// Default returns a bundle with the wall clock, a fresh private registry
// and no events — what components fall back to when handed nil, so their
// Stats facades keep working.
func Default() *Obs {
	return &Obs{clock: Wall{}, reg: NewRegistry()}
}

// Nop returns a bundle with the wall clock and no instrumentation at all:
// every Counter/Gauge/Histogram it hands out is nil (recording is a nil
// check). It exists to measure instrumentation overhead
// (BenchmarkMulticastInstrumented) and for hot paths that must not pay
// even the atomics.
func Nop() *Obs { return &Obs{clock: Wall{}} }

// Or returns o, or Default() when o is nil — the standard fallback at
// component construction.
func Or(o *Obs) *Obs {
	if o == nil {
		return Default()
	}
	return o
}

// Clock returns the bundle's clock (Wall for a nil bundle).
func (o *Obs) Clock() Clock {
	if o == nil || o.clock == nil {
		return Wall{}
	}
	return o.clock
}

// Registry returns the bundle's registry (nil when metrics are disabled).
func (o *Obs) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Events returns the event sink with the bundle's labels attached as
// attrs (nil when events are disabled).
func (o *Obs) Events() *Events {
	if o == nil {
		return nil
	}
	ev := o.events
	for _, l := range o.labels {
		ev = ev.With(slog.String(l.Key, l.Value))
	}
	return ev
}

// With returns a derived bundle sharing the clock, registry and sink,
// with the given labels appended: instruments it creates carry them and
// its Events attach them as attrs. Deriving never mutates the parent.
func (o *Obs) With(labels ...Label) *Obs {
	if o == nil {
		return nil
	}
	ls := make([]Label, 0, len(o.labels)+len(labels))
	ls = append(ls, o.labels...)
	ls = append(ls, labels...)
	return &Obs{clock: o.clock, reg: o.reg, events: o.events, labels: ls}
}

// Counter creates/fetches a counter carrying the bundle's labels.
func (o *Obs) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, o.labels...)
}

// Gauge creates/fetches a gauge carrying the bundle's labels.
func (o *Obs) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, o.labels...)
}

// Histogram creates/fetches a histogram carrying the bundle's labels.
func (o *Obs) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	return o.reg.Histogram(name, bounds, o.labels...)
}

// CounterL is Counter with extra per-call labels (e.g. a peer dimension).
func (o *Obs) CounterL(name string, extra ...Label) *Counter {
	if o == nil {
		return nil
	}
	return o.reg.Counter(name, append(append([]Label{}, o.labels...), extra...)...)
}

// GaugeL is Gauge with extra per-call labels.
func (o *Obs) GaugeL(name string, extra ...Label) *Gauge {
	if o == nil {
		return nil
	}
	return o.reg.Gauge(name, append(append([]Label{}, o.labels...), extra...)...)
}
