package obs

import (
	"context"
	"log/slog"
	"time"
)

// DropReason is the typed label attached to every discarded envelope or
// message. Before this layer existed several of these paths were counted
// without a reason, or not counted at all; every silent discard now names
// why.
type DropReason string

const (
	// DropStaleView: a data message for a view other than the current one.
	DropStaleView DropReason = "stale_view"
	// DropCovered: a duplicate, or a message obsoleted by one already
	// queued or delivered (Figure 1, t3).
	DropCovered DropReason = "covered"
	// DropStaleCredit: a flow-control credit grant from another view.
	DropStaleCredit DropReason = "stale_credit"
	// DropDeferOverflow: a future-view control envelope past the defer cap.
	DropDeferOverflow DropReason = "defer_overflow"
	// DropBadType: an envelope whose payload is not the type its channel
	// carries — a miscoded or hostile peer.
	DropBadType DropReason = "bad_type"
	// DropUnknownCtl: a control message of no known kind.
	DropUnknownCtl DropReason = "unknown_ctl"
	// DropExpelled: traffic arriving after this process was expelled.
	DropExpelled DropReason = "expelled"
	// DropUnknownGroup: transport traffic for a group this node does not
	// host (or no longer hosts).
	DropUnknownGroup DropReason = "unknown_group"
	// DropUnknownChannel: transport traffic outside the defined channels.
	DropUnknownChannel DropReason = "unknown_channel"
)

// Events is the structured protocol-event sink: a thin, nil-safe wrapper
// over log/slog emitting one record per protocol transition, with
// per-node/per-group attrs attached via With. A nil *Events discards
// everything at the cost of a nil check, so runtime code never guards its
// emit calls.
type Events struct {
	log *slog.Logger
}

// NewEvents wraps l; nil l yields the discarding sink.
func NewEvents(l *slog.Logger) *Events {
	if l == nil {
		return nil
	}
	return &Events{log: l}
}

// With returns an Events whose records all carry attrs (e.g. node and
// group identity).
func (e *Events) With(attrs ...slog.Attr) *Events {
	if e == nil {
		return nil
	}
	args := make([]any, len(attrs))
	for i, a := range attrs {
		args[i] = a
	}
	return &Events{log: e.log.With(args...)}
}

// emit writes one event record.
func (e *Events) emit(level slog.Level, event string, attrs ...slog.Attr) {
	if e == nil {
		return
	}
	e.log.LogAttrs(context.Background(), level, event, attrs...)
}

// ViewInstall reports a new view installed: its id, size, flush-set size
// and how long the group was blocked.
func (e *Events) ViewInstall(view uint64, members, flush int, blocked time.Duration) {
	e.emit(slog.LevelInfo, "view_install",
		slog.Uint64("view", view),
		slog.Int("members", members),
		slog.Int("flush", flush),
		slog.Duration("blocked", blocked))
}

// MemberChange reports processes joining or leaving at a view install.
func (e *Events) MemberChange(view uint64, joined, evicted []string) {
	if e == nil || (len(joined) == 0 && len(evicted) == 0) {
		return
	}
	e.emit(slog.LevelInfo, "member_change",
		slog.Uint64("view", view),
		slog.Any("joined", joined),
		slog.Any("evicted", evicted))
}

// Suspicion reports a failure-detector suspicion change.
func (e *Events) Suspicion(peer string, suspected bool) {
	e.emit(slog.LevelWarn, "suspicion",
		slog.String("peer", peer),
		slog.Bool("suspected", suspected))
}

// FlowBlocked reports a multicast parking on flow control.
func (e *Events) FlowBlocked(seq uint64) {
	e.emit(slog.LevelDebug, "flow_blocked", slog.Uint64("seq", seq))
}

// FlowUnblocked reports a parked multicast committing, with the stall.
func (e *Events) FlowUnblocked(seq uint64, blocked time.Duration) {
	e.emit(slog.LevelDebug, "flow_unblocked",
		slog.Uint64("seq", seq),
		slog.Duration("blocked", blocked))
}

// StateTransfer reports a join state transfer (sent or received).
func (e *Events) StateTransfer(dir string, peer string, view uint64, backlog, bytes int) {
	e.emit(slog.LevelInfo, "state_transfer",
		slog.String("dir", dir),
		slog.String("peer", peer),
		slog.Uint64("view", view),
		slog.Int("backlog", backlog),
		slog.Int("bytes", bytes))
}

// JoinComplete reports a joining engine installing its first view.
func (e *Events) JoinComplete(view uint64, members int, took time.Duration) {
	e.emit(slog.LevelInfo, "join_complete",
		slog.Uint64("view", view),
		slog.Int("members", members),
		slog.Duration("took", took))
}

// Expelled reports this process being removed from the group.
func (e *Events) Expelled(view uint64) {
	e.emit(slog.LevelWarn, "expelled", slog.Uint64("view", view))
}

// Drop reports one discarded envelope with its typed reason.
func (e *Events) Drop(reason DropReason, attrs ...slog.Attr) {
	if e == nil {
		return
	}
	e.emit(slog.LevelDebug, "drop",
		append([]slog.Attr{slog.String("reason", string(reason))}, attrs...)...)
}

// SendError reports a transport send that failed and was swallowed by a
// best-effort path (the crash-stop model treats these as the peer's
// problem, but they should never be invisible).
func (e *Events) SendError(peer string, err error) {
	if e == nil || err == nil {
		return
	}
	e.emit(slog.LevelDebug, "send_error",
		slog.String("peer", peer),
		slog.String("err", err.Error()))
}

// ConsensusDecision reports one consensus instance deciding.
func (e *Events) ConsensusDecision(instance string, rounds int) {
	e.emit(slog.LevelDebug, "consensus_decision",
		slog.String("instance", instance),
		slog.Int("rounds", rounds))
}

// DecisionFailed reports a consensus outcome the engine could not use — a
// decode failure or an error where a view decision was expected. These
// were silently discarded before.
func (e *Events) DecisionFailed(view uint64, err error) {
	if e == nil || err == nil {
		return
	}
	e.emit(slog.LevelError, "decision_failed",
		slog.Uint64("view", view),
		slog.String("err", err.Error()))
}

// DecisionIgnored reports a consensus decision that arrived but was not
// installed — a duplicate, a decision landing while unblocked, or the
// losing branch of concurrent view proposals.
func (e *Events) DecisionIgnored(view string, reason string) {
	e.emit(slog.LevelDebug, "decision_ignored",
		slog.String("view", view),
		slog.String("reason", reason))
}

// SplitDeclared reports a blocked minority declaring its continuation as a
// sub-view under a fresh lineage epoch.
func (e *Events) SplitDeclared(view string, members int) {
	e.emit(slog.LevelWarn, "split_declared",
		slog.String("view", view),
		slog.Int("members", members))
}

// MergeStarted reports a partition merge beginning: the union view under
// decision and the two sides being joined.
func (e *Events) MergeStarted(view, sideA, sideB string, union int) {
	e.emit(slog.LevelInfo, "merge_started",
		slog.String("view", view),
		slog.String("side_a", sideA),
		slog.String("side_b", sideB),
		slog.Int("union", union))
}

// MergeComplete reports a union view installing, with the flush-set size,
// the contribution bytes received and the handshake duration.
func (e *Events) MergeComplete(view string, members, flush, bytes int, took time.Duration) {
	e.emit(slog.LevelInfo, "merge_complete",
		slog.String("view", view),
		slog.Int("members", members),
		slog.Int("flush", flush),
		slog.Int("bytes", bytes),
		slog.Duration("took", took))
}

// MergeAborted reports a merge abandoned before its union view decided;
// the engine unblocks and retries on a later probe.
func (e *Events) MergeAborted(view string, reason string) {
	e.emit(slog.LevelWarn, "merge_aborted",
		slog.String("view", view),
		slog.String("reason", reason))
}
