// Package batch implements the multi-item message pattern of §4.1: a
// composite update is split into a batch of independent per-item messages
// terminated by a commit control message. Receivers hold a batch's members
// until the commit arrives and then apply them atomically. Obsolescence is
// only carried by commits — "only the commit messages, and not the
// individual updates, can make messages from previous batches obsolete"
// (Figure 2: C(2), not U(b,2), makes U(b,1) obsolete) — so purging can
// never break batch atomicity.
//
// The package frames application payloads; it does not talk to the
// network. A Sender produces (sequence number, annotation, framed payload)
// triples for the group engine to multicast; a Receiver unfolds delivered
// frames back into atomically applicable payload groups.
//
// Commits in this implementation are always reliable (never obsoleted):
// the paper permits a commit to be obsoleted by a later commit covering a
// superset of its items, but the conservative choice keeps receiver state
// trivially bounded and loses almost nothing — commits are a small
// fraction of traffic and batches supersede member-wise anyway.
package batch

import (
	"errors"
	"fmt"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Frame kinds, the first byte of every framed payload.
const (
	// frameSingle is a self-committing single-item update (the common
	// case; "the role of the commit message can be performed by the last
	// message in each update").
	frameSingle byte = iota + 1
	// frameMember is one update of an open batch: buffered until commit.
	frameMember
	// frameCommit terminates a batch. Its own payload (possibly empty) is
	// applied after the members.
	frameCommit
	// frameReliable is a non-obsolescing, non-batched message (creates,
	// destroys, control traffic).
	frameReliable
)

// Errors returned by Sender and Receiver.
var (
	ErrBatchOpen    = errors.New("batch: batch already open")
	ErrNoBatch      = errors.New("batch: no open batch")
	ErrBadFrame     = errors.New("batch: malformed frame")
	ErrDanglingData = errors.New("batch: commit without matching members state")
)

// Msg is one framed message ready for multicast.
type Msg struct {
	Seq     ident.Seq
	Annot   []byte
	Payload []byte // framed: kind byte + application payload
}

// Sender frames outgoing updates and computes their obsolescence
// annotations through an ItemTracker. It is not safe for concurrent use;
// the application owns it from its multicast goroutine.
type Sender struct {
	items *obsolete.ItemTracker

	open  bool
	prevs []ident.Seq // previous updates the open batch's commit obsoletes
}

// NewSender wraps an enumeration-style tracker (KTracker or EnumTracker).
func NewSender(tr obsolete.Tracker) *Sender {
	return &Sender{items: obsolete.NewItemTracker(tr)}
}

func frame(kind byte, payload []byte) []byte {
	out := make([]byte, 0, 1+len(payload))
	out = append(out, kind)
	return append(out, payload...)
}

// Single emits a self-committing update of one item: it obsoletes the
// item's previous update.
func (s *Sender) Single(item uint32, payload []byte) (Msg, error) {
	if s.open {
		return Msg{}, ErrBatchOpen
	}
	seq, annot := s.items.Update(item)
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameSingle, payload)}, nil
}

// Reliable emits a message that neither obsoletes nor can be obsoleted.
func (s *Sender) Reliable(payload []byte) (Msg, error) {
	if s.open {
		return Msg{}, ErrBatchOpen
	}
	seq, annot := s.items.Reliable()
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameReliable, payload)}, nil
}

// Create emits the reliable creation of an item.
func (s *Sender) Create(item uint32, payload []byte) (Msg, error) {
	if s.open {
		return Msg{}, ErrBatchOpen
	}
	seq, annot := s.items.Create(item)
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameReliable, payload)}, nil
}

// Destroy emits the reliable destruction of an item.
func (s *Sender) Destroy(item uint32, payload []byte) (Msg, error) {
	if s.open {
		return Msg{}, ErrBatchOpen
	}
	seq, annot := s.items.Destroy(item)
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameReliable, payload)}, nil
}

// Begin opens a batch.
func (s *Sender) Begin() error {
	if s.open {
		return ErrBatchOpen
	}
	s.open = true
	s.prevs = s.prevs[:0]
	return nil
}

// Member adds one item update to the open batch. Members carry no
// obsolescence of their own.
func (s *Sender) Member(item uint32, payload []byte) (Msg, error) {
	if !s.open {
		return Msg{}, ErrNoBatch
	}
	seq, annot, prev := s.items.BatchMember(item)
	if prev != 0 {
		s.prevs = append(s.prevs, prev)
	}
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameMember, payload)}, nil
}

// Commit closes the batch, emitting the commit message that obsoletes the
// previous updates of every item the batch touched. payload may be empty.
func (s *Sender) Commit(payload []byte) (Msg, error) {
	if !s.open {
		return Msg{}, ErrNoBatch
	}
	s.open = false
	seq, annot := s.items.Commit(s.prevs)
	return Msg{Seq: seq, Annot: annot, Payload: frame(frameCommit, payload)}, nil
}

// Receiver unfolds delivered frames, per sender, back into atomically
// applicable payload groups. Safe for a single delivery goroutine.
type Receiver struct {
	pending map[ident.PID][][]byte
}

// NewReceiver returns an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{pending: make(map[ident.PID][][]byte)}
}

// Receive processes one delivered frame from sender and returns the
// application payloads to apply now, in order:
//
//   - single / reliable: the payload itself;
//   - member: nothing (buffered until its commit);
//   - commit: every buffered member of the sender's open batch, then the
//     commit's own payload if non-empty.
//
// Members missing because they were purged are simply absent — the SVS
// guarantees ensure a covering later message is (or will be) delivered.
func (r *Receiver) Receive(sender ident.PID, framed []byte) ([][]byte, error) {
	if len(framed) == 0 {
		return nil, ErrBadFrame
	}
	kind, payload := framed[0], framed[1:]
	switch kind {
	case frameSingle, frameReliable:
		return [][]byte{payload}, nil
	case frameMember:
		r.pending[sender] = append(r.pending[sender], payload)
		return nil, nil
	case frameCommit:
		out := r.pending[sender]
		delete(r.pending, sender)
		if len(payload) > 0 {
			out = append(out, payload)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadFrame, kind)
	}
}

// PendingMembers reports how many member payloads of sender are awaiting
// their commit.
func (r *Receiver) PendingMembers(sender ident.PID) int {
	return len(r.pending[sender])
}
