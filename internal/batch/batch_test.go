package batch

import (
	"errors"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func newPair() (*Sender, *Receiver, obsolete.Relation) {
	const k = 32
	return NewSender(obsolete.NewKTracker(k)), NewReceiver(), obsolete.KEnumeration{K: k}
}

func msgMeta(m Msg) obsolete.Msg {
	return obsolete.Msg{Sender: "s", Seq: m.Seq, Annot: m.Annot}
}

func TestSingleRoundTrip(t *testing.T) {
	s, r, _ := newPair()
	m, err := s.Single(7, []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Receive("s", m.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "v1" {
		t.Fatalf("got %q", got)
	}
}

func TestSingleObsoletesPrevious(t *testing.T) {
	s, _, rel := newPair()
	m1, _ := s.Single(7, []byte("v1"))
	m2, _ := s.Single(7, []byte("v2"))
	if !rel.Obsoletes(msgMeta(m1), msgMeta(m2)) {
		t.Fatal("second single update must obsolete the first")
	}
}

func TestReliableNeverObsoletes(t *testing.T) {
	s, _, rel := newPair()
	m1, _ := s.Single(7, nil)
	m2, _ := s.Reliable([]byte("ctl"))
	m3, _ := s.Create(9, nil)
	m4, _ := s.Destroy(9, nil)
	for _, m := range []Msg{m2, m3, m4} {
		if rel.Obsoletes(msgMeta(m1), msgMeta(m)) {
			t.Fatalf("reliable message %d obsoletes an update", m.Seq)
		}
	}
}

func TestBatchAtomicApply(t *testing.T) {
	s, r, _ := newPair()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	ma, _ := s.Member(1, []byte("a"))
	mb, _ := s.Member(2, []byte("b"))
	mc, _ := s.Commit([]byte("c"))

	// Members buffer, commit releases everything in order.
	if got, _ := r.Receive("s", ma.Payload); got != nil {
		t.Fatalf("member applied early: %q", got)
	}
	if got, _ := r.Receive("s", mb.Payload); got != nil {
		t.Fatalf("member applied early: %q", got)
	}
	if r.PendingMembers("s") != 2 {
		t.Fatalf("pending = %d", r.PendingMembers("s"))
	}
	got, err := r.Receive("s", mc.Payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("got %q", got)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	if r.PendingMembers("s") != 0 {
		t.Fatal("pending not cleared by commit")
	}
}

func TestCommitObsolescenceMatchesFigure2(t *testing.T) {
	// Figure 2 of the paper: U(a,1) U(b,1) C(1)  U(b,2) U(c,2) C(2) —
	// C(2) obsoletes U(b,1); U(b,2) does not.
	s, _, rel := newPair()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	ua1, _ := s.Member(1, nil)
	ub1, _ := s.Member(2, nil)
	c1, _ := s.Commit(nil)

	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	ub2, _ := s.Member(2, nil)
	uc2, _ := s.Member(3, nil)
	c2, _ := s.Commit(nil)

	if rel.Obsoletes(msgMeta(ub1), msgMeta(ub2)) {
		t.Fatal("U(b,2) must not obsolete U(b,1)")
	}
	if !rel.Obsoletes(msgMeta(ub1), msgMeta(c2)) {
		t.Fatal("C(2) must obsolete U(b,1)")
	}
	if rel.Obsoletes(msgMeta(ua1), msgMeta(c2)) {
		t.Fatal("C(2) must not obsolete U(a,1) — item a is not in batch 2")
	}
	if rel.Obsoletes(msgMeta(c1), msgMeta(c2)) {
		t.Fatal("commits are reliable in this implementation")
	}
	if rel.Obsoletes(msgMeta(ub2), msgMeta(c2)) || rel.Obsoletes(msgMeta(uc2), msgMeta(c2)) {
		t.Fatal("a commit must not obsolete its own members")
	}
}

func TestPurgedMemberStillCommits(t *testing.T) {
	// A receiver that never saw U(b,2) (purged) must still apply the rest
	// of the batch at the commit.
	s, r, _ := newPair()
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	ma, _ := s.Member(1, []byte("a"))
	_, _ = s.Member(2, []byte("b")) // purged on the way: never received
	mc, _ := s.Commit(nil)

	if _, err := r.Receive("s", ma.Payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.Receive("s", mc.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "a" {
		t.Fatalf("got %q", got)
	}
}

func TestPerSenderIsolation(t *testing.T) {
	_, r, _ := newPair()
	s1, _, _ := newPair()
	s2, _, _ := newPair()

	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	m1, _ := s1.Member(1, []byte("x"))
	if err := s2.Begin(); err != nil {
		t.Fatal(err)
	}
	m2, _ := s2.Member(1, []byte("y"))
	c2, _ := s2.Commit(nil)

	if _, err := r.Receive("alice", m1.Payload); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Receive("bob", m2.Payload); err != nil {
		t.Fatal(err)
	}
	got, err := r.Receive("bob", c2.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "y" {
		t.Fatalf("bob's commit returned %q", got)
	}
	if r.PendingMembers("alice") != 1 {
		t.Fatal("alice's open batch disturbed by bob's commit")
	}
}

func TestSenderStateMachine(t *testing.T) {
	s, _, _ := newPair()
	if _, err := s.Member(1, nil); !errors.Is(err, ErrNoBatch) {
		t.Fatalf("Member outside batch: %v", err)
	}
	if _, err := s.Commit(nil); !errors.Is(err, ErrNoBatch) {
		t.Fatalf("Commit outside batch: %v", err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); !errors.Is(err, ErrBatchOpen) {
		t.Fatalf("double Begin: %v", err)
	}
	for _, f := range []func() (Msg, error){
		func() (Msg, error) { return s.Single(1, nil) },
		func() (Msg, error) { return s.Reliable(nil) },
		func() (Msg, error) { return s.Create(1, nil) },
		func() (Msg, error) { return s.Destroy(1, nil) },
	} {
		if _, err := f(); !errors.Is(err, ErrBatchOpen) {
			t.Fatalf("non-batch op inside batch: %v", err)
		}
	}
	if _, err := s.Commit(nil); err != nil {
		t.Fatal(err)
	}
	// After commit the batch is closed again.
	if _, err := s.Single(1, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReceiverRejectsGarbage(t *testing.T) {
	_, r, _ := newPair()
	if _, err := r.Receive("s", nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := r.Receive("s", []byte{99, 1, 2}); err == nil {
		t.Fatal("unknown frame kind accepted")
	}
}

func TestSeqContinuity(t *testing.T) {
	s, _, _ := newPair()
	var last ident.Seq
	step := func(m Msg, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != last+1 {
			t.Fatalf("seq %d after %d", m.Seq, last)
		}
		last = m.Seq
	}
	step(s.Single(1, nil))
	step(s.Reliable(nil))
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	step(s.Member(1, nil))
	step(s.Member(2, nil))
	step(s.Commit(nil))
	step(s.Create(3, nil))
	step(s.Destroy(3, nil))
}
