package sim

import (
	"math"

	"repro/internal/trace"
)

// Point is one sample of a figure's series.
type Point struct {
	X float64
	Y float64
}

// Series is one curve of a figure.
type Series struct {
	Mode   Mode
	Points []Point
}

// annotated caches the k-specific annotation of a trace.
func annotated(tr *trace.Trace, buffer int) []trace.Msg {
	return tr.Annotate("producer", 2*buffer)
}

// ProducerIdleSweep regenerates one curve of Fig. 4a: producer idle
// percentage as a function of the slow consumer's rate, for a fixed
// buffer size.
func ProducerIdleSweep(tr *trace.Trace, mode Mode, buffer int, rates []float64) Series {
	msgs := annotated(tr, buffer)
	s := Series{Mode: mode}
	for _, rate := range rates {
		res := Run(Config{Mode: mode, Buffer: buffer, Msgs: msgs, ConsumerRate: rate})
		s.Points = append(s.Points, Point{X: rate, Y: res.ProducerIdlePct})
	}
	return s
}

// OccupancySweep regenerates one curve of Fig. 4b: time-averaged buffer
// occupancy as a function of the slow consumer's rate.
func OccupancySweep(tr *trace.Trace, mode Mode, buffer int, rates []float64) Series {
	msgs := annotated(tr, buffer)
	s := Series{Mode: mode}
	for _, rate := range rates {
		res := Run(Config{Mode: mode, Buffer: buffer, Msgs: msgs, ConsumerRate: rate})
		s.Points = append(s.Points, Point{X: rate, Y: res.AvgOccupancy})
	}
	return s
}

// Threshold computes one point of Fig. 5a: the minimum consumer rate
// (msg/s) that keeps the producer's idle percentage at or below
// maxIdlePct, found by bisection. Idle percentage is non-increasing in
// the consumer rate.
func Threshold(tr *trace.Trace, mode Mode, buffer int, maxIdlePct float64) float64 {
	msgs := annotated(tr, buffer)
	idleAt := func(rate float64) float64 {
		return Run(Config{Mode: mode, Buffer: buffer, Msgs: msgs, ConsumerRate: rate}).ProducerIdlePct
	}
	lo, hi := 0.5, 400.0
	if idleAt(hi) > maxIdlePct {
		return math.Inf(1)
	}
	if idleAt(lo) <= maxIdlePct {
		return lo
	}
	for hi-lo > 0.25 {
		mid := (lo + hi) / 2
		if idleAt(mid) <= maxIdlePct {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// ThresholdSweep regenerates one curve of Fig. 5a over buffer sizes.
func ThresholdSweep(tr *trace.Trace, mode Mode, buffers []int, maxIdlePct float64) Series {
	s := Series{Mode: mode}
	for _, b := range buffers {
		s.Points = append(s.Points, Point{X: float64(b), Y: Threshold(tr, mode, b, maxIdlePct)})
	}
	return s
}

// Perturbation computes one point of Fig. 5b: how long a receiver that
// completely stops consuming can be tolerated before the producer blocks,
// averaged over sample halt instants spread across the session. The
// result is in seconds.
func Perturbation(tr *trace.Trace, mode Mode, buffer int, samples int) float64 {
	msgs := annotated(tr, buffer)
	if samples <= 0 {
		samples = 10
	}
	duration := tr.Duration()
	total, n := 0.0, 0
	for i := 0; i < samples; i++ {
		// Halt instants in the middle 60% of the session, away from the
		// cold start and the tail.
		t0 := duration * (0.2 + 0.6*float64(i)/float64(samples))
		res := Run(Config{
			Mode: mode, Buffer: buffer, Msgs: msgs,
			ConsumerRate: 0, // instant until halted
			HaltAt:       t0,
			StopOnBlock:  true,
		})
		tol := res.FirstBlock - t0
		if math.IsInf(res.FirstBlock, 1) {
			// Producer never blocked before the trace ended: censor at
			// the remaining session length (a lower bound).
			tol = res.Duration - t0
		}
		total += tol
		n++
	}
	return total / float64(n)
}

// PerturbationSweep regenerates one curve of Fig. 5b over buffer sizes.
func PerturbationSweep(tr *trace.Trace, mode Mode, buffers []int, samples int) Series {
	s := Series{Mode: mode}
	for _, b := range buffers {
		s.Points = append(s.Points, Point{X: float64(b), Y: Perturbation(tr, mode, b, samples)})
	}
	return s
}
