// Package sim reproduces the throughput study of §5.3/§5.4: a high-level
// discrete event simulation isolating the effect of a single slow receiver
// on a group communication producer.
//
// The model follows the paper: the network is a set of queues with
// unlimited bandwidth (never the bottleneck); a producer injects the
// recorded game traffic; consumers are attached to all nodes and all but
// one consume instantly; the slow consumer takes 1/rate per message; each
// path holds a bounded protocol buffer. When the slow consumer's buffer
// cannot accept a message the producer blocks — the flow control whose
// cost the figures quantify. In Semantic mode, an arriving message purges
// the obsolete messages it covers from the buffer, freeing space without
// consuming; in Reliable mode no purging happens.
package sim

import (
	"math"

	"repro/internal/des"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/trace"
)

// Mode selects the protocol under study.
type Mode uint8

const (
	// Reliable is classic view-synchronous reliability: no purging.
	Reliable Mode = iota + 1
	// Semantic is SVS: obsolete messages are purged from buffers.
	Semantic
)

func (m Mode) String() string {
	switch m {
	case Reliable:
		return "reliable"
	case Semantic:
		return "semantic"
	default:
		return "?"
	}
}

// Config parameterises one run.
type Config struct {
	Mode Mode
	// Buffer is the bounded buffer size per path (the B of Figs. 4/5).
	Buffer int
	// K is the k-enumeration window the stream was annotated with; the
	// paper uses 2×Buffer (§5.2). Defaults to 2×Buffer. It must match the
	// annotation of Msgs.
	K int
	// Msgs is the annotated message stream (trace.Trace.Annotate).
	Msgs []trace.Msg
	// ConsumerRate is the slow consumer's service rate in msg/s;
	// 0 or +Inf means it consumes instantly.
	ConsumerRate float64
	// HaltAt, when positive, stops the slow consumer completely at that
	// virtual time — the perturbation experiment of Fig. 5b.
	HaltAt float64
	// StopOnBlock ends the run the first time the producer blocks after
	// HaltAt (used to measure tolerated perturbation length).
	StopOnBlock bool
}

// Result carries the measurements of one run.
type Result struct {
	// Duration is the virtual time at which the run ended (all messages
	// accepted, or the run stopped early).
	Duration float64
	// BlockedTime is the total time the producer spent blocked.
	BlockedTime float64
	// ProducerIdlePct is BlockedTime relative to Duration, in percent —
	// the y axis of Fig. 4a.
	ProducerIdlePct float64
	// AvgOccupancy is the time-averaged occupancy of the slow path's
	// buffer — the y axis of Fig. 4b.
	AvgOccupancy float64
	// MaxOccupancy is the buffer's high-water mark.
	MaxOccupancy int
	// Purged counts buffer entries removed by semantic purging.
	Purged uint64
	// Delivered counts messages the slow consumer actually consumed.
	Delivered uint64
	// Accepted counts messages accepted by the protocol.
	Accepted int
	// FirstBlock is the virtual time of the first producer block after
	// HaltAt (math.Inf(1) if it never blocked).
	FirstBlock float64
}

// instant reports whether rate means "consumes immediately".
func instant(rate float64) bool { return rate <= 0 || math.IsInf(rate, 1) }

// runner is the live state of one simulation.
type runner struct {
	sim *des.Sim
	cfg Config
	q   *queue.Queue

	idx          int  // next message to accept
	blocked      bool // producer waiting for buffer space
	blockedSince float64

	busy   bool // slow consumer mid-service
	halted bool

	occLast float64 // instant of the last occupancy bookkeeping
	occLen  int     // occupancy level since occLast
	occInt  float64 // ∫ occupancy dt

	res Result
}

// Run executes one simulation.
func Run(cfg Config) Result {
	if cfg.Buffer <= 0 {
		panic("sim: Buffer must be positive")
	}
	if cfg.K <= 0 {
		cfg.K = 2 * cfg.Buffer
	}
	var rel obsolete.Relation = obsolete.Empty{}
	if cfg.Mode == Semantic {
		rel = obsolete.KEnumeration{K: cfg.K}
	}
	r := &runner{
		sim: &des.Sim{},
		cfg: cfg,
		q:   queue.New(rel, cfg.Buffer),
	}
	r.res.FirstBlock = math.Inf(1)

	if cfg.HaltAt > 0 {
		r.sim.At(cfg.HaltAt, func() { r.halted = true })
	}
	if len(cfg.Msgs) > 0 {
		r.sim.At(cfg.Msgs[0].Time, r.produce)
	}
	r.sim.Run()

	if r.blocked { // censored: still blocked when the run ended
		r.noteUnblock(r.sim.Now())
	}
	r.mark() // flush the occupancy integral
	r.res.Duration = r.sim.Now()
	if r.res.Duration > 0 {
		r.res.ProducerIdlePct = 100 * r.res.BlockedTime / r.res.Duration
		r.res.AvgOccupancy = r.occInt / r.res.Duration
	}
	st := r.q.Stats()
	r.res.Purged = st.Purged
	r.res.MaxOccupancy = st.MaxLen
	return r.res
}

// produce advances the producer: accept every available message, block on
// a full buffer.
func (r *runner) produce() {
	for {
		if r.idx >= len(r.cfg.Msgs) {
			return // production finished
		}
		m := r.cfg.Msgs[r.idx]
		now := r.sim.Now()
		if m.Time > now {
			r.sim.At(m.Time, r.produce)
			return
		}
		if !r.accepts(m) {
			if !r.blocked {
				r.blocked = true
				r.blockedSince = now
				if r.cfg.HaltAt > 0 && now >= r.cfg.HaltAt && math.IsInf(r.res.FirstBlock, 1) {
					r.res.FirstBlock = now
					if r.cfg.StopOnBlock {
						r.sim.Halt()
					}
				}
			}
			return // a consumer completion retries
		}
		if r.blocked {
			r.noteUnblock(now)
		}
		r.enqueue(m)
		r.idx++
	}
}

func (r *runner) noteUnblock(now float64) {
	r.res.BlockedTime += now - r.blockedSince
	r.blocked = false
}

// accepts reports whether the slow path can take m right now.
func (r *runner) accepts(m trace.Msg) bool {
	if instant(r.cfg.ConsumerRate) && !r.halted {
		return true
	}
	if !r.busy && !r.halted && r.q.Len() == 0 {
		return true // goes straight into service, no buffer slot needed
	}
	it := item(m)
	return r.q.Len()-r.q.CountPurgeableFor(it) < r.cfg.Buffer
}

// enqueue places m on the slow path (fast consumers are implicit: with
// unlimited bandwidth and instant consumption they never interact with
// the producer).
func (r *runner) enqueue(m trace.Msg) {
	r.res.Accepted++
	if instant(r.cfg.ConsumerRate) && !r.halted {
		r.res.Delivered++
		return
	}
	if !r.busy && !r.halted && r.q.Len() == 0 {
		r.startService()
		return
	}
	if _, err := r.q.AppendPurge(item(m)); err != nil {
		panic("sim: enqueue after accepts returned true")
	}
	r.mark()
}

// startService occupies the consumer for one service time.
func (r *runner) startService() {
	r.busy = true
	service := 0.0
	if !instant(r.cfg.ConsumerRate) {
		service = 1 / r.cfg.ConsumerRate
	}
	r.sim.After(service, r.serviceDone)
}

func (r *runner) serviceDone() {
	r.busy = false
	r.res.Delivered++
	if !r.halted {
		if _, ok := r.q.PopHead(); ok {
			r.mark()
			r.startService()
		}
	}
	if r.blocked {
		r.produce()
	}
}

// mark integrates the occupancy level since the previous bookkeeping
// instant and records the new level.
func (r *runner) mark() {
	now := r.sim.Now()
	r.occInt += (now - r.occLast) * float64(r.occLen)
	r.occLast = now
	r.occLen = r.q.Len()
}

func item(m trace.Msg) queue.Item {
	return queue.Item{Kind: queue.Data, View: 1, Meta: m.Meta}
}
