package sim

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// testTrace returns a short calibrated session (fast enough for unit
// tests, long enough for stable statistics).
func testTrace(t *testing.T) *trace.Trace {
	t.Helper()
	p := trace.DefaultParams()
	p.Rounds = 3000
	return trace.Generate(p)
}

func TestFastConsumerNeverBlocks(t *testing.T) {
	tr := testTrace(t)
	for _, mode := range []Mode{Reliable, Semantic} {
		res := Run(Config{Mode: mode, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: 0})
		if res.BlockedTime != 0 {
			t.Errorf("%v: instant consumer blocked producer for %v", mode, res.BlockedTime)
		}
		if res.Accepted != len(tr.Events) {
			t.Errorf("%v: accepted %d of %d", mode, res.Accepted, len(tr.Events))
		}
		if res.Delivered != uint64(len(tr.Events)) {
			t.Errorf("%v: delivered %d of %d", mode, res.Delivered, len(tr.Events))
		}
	}
}

func TestVeryFastRateNeverBlocks(t *testing.T) {
	tr := testTrace(t)
	res := Run(Config{Mode: Reliable, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: 100000})
	if res.ProducerIdlePct > 0.01 {
		t.Errorf("idle %.3f%% with a 100k msg/s consumer", res.ProducerIdlePct)
	}
}

func TestSlowConsumerBlocksReliable(t *testing.T) {
	tr := testTrace(t)
	res := Run(Config{Mode: Reliable, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: 20})
	if res.ProducerIdlePct < 50 {
		t.Errorf("idle %.1f%%, expected heavy blocking at 20 msg/s (input ~43 msg/s)", res.ProducerIdlePct)
	}
	if res.Purged != 0 {
		t.Errorf("reliable mode purged %d messages", res.Purged)
	}
	// Conservation: everything accepted is eventually delivered or queued.
	if res.Delivered+uint64(0)+res.Purged > uint64(res.Accepted) {
		t.Errorf("conservation violated: delivered %d purged %d accepted %d",
			res.Delivered, res.Purged, res.Accepted)
	}
}

func TestSemanticOutperformsReliable(t *testing.T) {
	tr := testTrace(t)
	// At a rate between the two thresholds, the semantic protocol must
	// block dramatically less than the reliable one (Fig. 4a).
	const rate = 35
	rel := Run(Config{Mode: Reliable, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: rate})
	sem := Run(Config{Mode: Semantic, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: rate})
	if sem.ProducerIdlePct >= rel.ProducerIdlePct {
		t.Errorf("semantic idle %.1f%% >= reliable idle %.1f%%", sem.ProducerIdlePct, rel.ProducerIdlePct)
	}
	if sem.Purged == 0 {
		t.Error("semantic mode never purged")
	}
	if rel.ProducerIdlePct < 30 {
		t.Errorf("reliable idle %.1f%%, premise broken", rel.ProducerIdlePct)
	}
	if sem.ProducerIdlePct > 5 {
		t.Errorf("semantic idle %.1f%%, expected near zero", sem.ProducerIdlePct)
	}
}

func TestConservationSemantic(t *testing.T) {
	tr := testTrace(t)
	res := Run(Config{Mode: Semantic, Buffer: 10, Msgs: annotated(tr, 10), ConsumerRate: 30})
	// accepted = delivered + purged + still-buffered (and possibly one in
	// service at the end).
	buffered := uint64(res.Accepted) - res.Delivered - res.Purged
	if buffered > uint64(res.MaxOccupancy)+1 {
		t.Errorf("conservation: accepted %d delivered %d purged %d leaves %d buffered (max occ %d)",
			res.Accepted, res.Delivered, res.Purged, buffered, res.MaxOccupancy)
	}
}

func TestOccupancyBounds(t *testing.T) {
	tr := testTrace(t)
	for _, mode := range []Mode{Reliable, Semantic} {
		res := Run(Config{Mode: mode, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: 25})
		if res.MaxOccupancy > 15 {
			t.Errorf("%v: occupancy %d exceeded buffer 15", mode, res.MaxOccupancy)
		}
		if res.AvgOccupancy < 0 || res.AvgOccupancy > 15 {
			t.Errorf("%v: avg occupancy %.2f out of range", mode, res.AvgOccupancy)
		}
	}
	// A saturated reliable buffer should average near its capacity.
	res := Run(Config{Mode: Reliable, Buffer: 15, Msgs: annotated(tr, 15), ConsumerRate: 25})
	if res.AvgOccupancy < 10 {
		t.Errorf("reliable near-saturation avg occupancy %.2f, want ≳ 10", res.AvgOccupancy)
	}
}

func TestThresholdMonotoneInBuffer(t *testing.T) {
	tr := testTrace(t)
	prevRel, prevSem := math.Inf(1), math.Inf(1)
	for _, b := range []int{4, 12, 20, 28} {
		rel := Threshold(tr, Reliable, b, 5)
		sem := Threshold(tr, Semantic, b, 5)
		if sem >= rel {
			t.Errorf("buffer %d: semantic threshold %.1f >= reliable %.1f", b, sem, rel)
		}
		// Larger buffers tolerate slower consumers (small tolerance for
		// bisection noise).
		if rel > prevRel+1 || sem > prevSem+1 {
			t.Errorf("buffer %d: thresholds not decreasing (rel %.1f->%.1f, sem %.1f->%.1f)",
				b, prevRel, rel, prevSem, sem)
		}
		prevRel, prevSem = rel, sem
	}
}

func TestThresholdStraddlesAverageRate(t *testing.T) {
	// The paper's central claim (Fig. 5a): the reliable threshold can
	// never drop below the average input rate, while the semantic one
	// falls beneath it once buffers allow enough purging.
	tr := testTrace(t)
	avg := tr.MeanRate()
	rel := Threshold(tr, Reliable, 28, 5)
	sem := Threshold(tr, Semantic, 28, 5)
	if rel < avg {
		t.Errorf("reliable threshold %.1f fell below the average input rate %.1f", rel, avg)
	}
	if sem > avg {
		t.Errorf("semantic threshold %.1f did not fall below the average input rate %.1f", sem, avg)
	}
}

func TestPerturbationSemanticTolerance(t *testing.T) {
	tr := testTrace(t)
	for _, b := range []int{16, 24} {
		rel := Perturbation(tr, Reliable, b, 6)
		sem := Perturbation(tr, Semantic, b, 6)
		if sem <= rel {
			t.Errorf("buffer %d: semantic tolerance %.3fs <= reliable %.3fs", b, sem, rel)
		}
	}
	// Tolerance grows with the buffer.
	small := Perturbation(tr, Reliable, 8, 6)
	large := Perturbation(tr, Reliable, 24, 6)
	if large <= small {
		t.Errorf("tolerance did not grow with buffer: %.3f vs %.3f", small, large)
	}
}

func TestHaltStopsConsumption(t *testing.T) {
	tr := testTrace(t)
	res := Run(Config{
		Mode: Reliable, Buffer: 10, Msgs: annotated(tr, 10),
		ConsumerRate: 0, HaltAt: 10, StopOnBlock: true,
	})
	if math.IsInf(res.FirstBlock, 1) {
		t.Fatal("producer never blocked after consumer halt")
	}
	if res.FirstBlock < 10 {
		t.Fatalf("FirstBlock %.3f before the halt at 10", res.FirstBlock)
	}
	// With a buffer of 10 and ~43 msg/s input, blocking should follow the
	// halt within a second or so.
	if res.FirstBlock > 13 {
		t.Fatalf("FirstBlock %.3f unreasonably late", res.FirstBlock)
	}
}

func TestRunPanicsOnBadBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Run with Buffer=0 did not panic")
		}
	}()
	Run(Config{Mode: Reliable, Buffer: 0})
}

func TestModeString(t *testing.T) {
	if Reliable.String() != "reliable" || Semantic.String() != "semantic" {
		t.Fatal("Mode.String wrong")
	}
}
