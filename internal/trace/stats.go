package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Stats characterises a session the way §5.2 of the paper does.
type Stats struct {
	Rounds   int
	Messages int
	// MeanActiveItems is the average number of live items per round
	// (paper: 42.33).
	MeanActiveItems float64
	// MeanModifiedPerRound is the average number of items with at least
	// one event per round (paper: 1.39).
	MeanModifiedPerRound float64
	// NeverObsoleteShare is the fraction of messages never obsoleted
	// within the session (paper: 41.88%).
	NeverObsoleteShare float64
	// MeanRate is the average message rate (msg/s); the horizontal line of
	// Fig. 5a.
	MeanRate float64

	// RankFreq is Fig. 3a: RankFreq[r] is the percentage of rounds in
	// which the item with modification rank r+1 was modified.
	RankFreq []float64
	// DistanceHist is Fig. 3b: DistanceHist[d-1] is the percentage of all
	// messages whose closest related (obsoleting) message is d positions
	// later in the stream, for d = 1..len. DistanceOverflow collects
	// larger distances.
	DistanceHist     []float64
	DistanceOverflow float64
}

// maxDistance is the largest distance bucket reported individually
// (Fig. 3b plots up to 20).
const maxDistance = 20

// maxRank is the number of ranks reported for Fig. 3a (the paper plots 50).
const maxRank = 50

// Characterize computes the §5.2 statistics of tr.
func Characterize(tr *Trace) Stats {
	st := Stats{Rounds: tr.Rounds, Messages: len(tr.Events), MeanRate: tr.MeanRate()}

	// Active items per round.
	sum := 0
	for _, a := range tr.ActivePerRound {
		sum += a
	}
	if tr.Rounds > 0 {
		st.MeanActiveItems = float64(sum) / float64(tr.Rounds)
	}

	// Modified items per round (distinct items with any event).
	modified := make(map[int]map[uint32]bool)
	for _, ev := range tr.Events {
		if modified[ev.Round] == nil {
			modified[ev.Round] = make(map[uint32]bool)
		}
		modified[ev.Round][ev.Item] = true
	}
	totalMod := 0
	for _, items := range modified {
		totalMod += len(items)
	}
	if tr.Rounds > 0 {
		st.MeanModifiedPerRound = float64(totalMod) / float64(tr.Rounds)
	}

	// Obsolescence: an update is obsoleted by the item's next update (if
	// any) within the session; creations and destructions never are.
	nextUpdate := nextUpdateIndex(tr.Events)
	never := 0
	hist := make([]int, maxDistance)
	overflow := 0
	for i, ev := range tr.Events {
		j, ok := nextUpdate[i]
		if ev.Kind != Update || !ok {
			never++
			continue
		}
		d := j - i
		if d <= maxDistance {
			hist[d-1]++
		} else {
			overflow++
		}
	}
	if len(tr.Events) > 0 {
		n := float64(len(tr.Events))
		st.NeverObsoleteShare = float64(never) / n
		st.DistanceHist = make([]float64, maxDistance)
		for d, c := range hist {
			st.DistanceHist[d] = 100 * float64(c) / n
		}
		st.DistanceOverflow = 100 * float64(overflow) / n
	}

	// Fig. 3a: modification frequency by item rank.
	roundsTouched := make(map[uint32]map[int]bool)
	for _, ev := range tr.Events {
		if roundsTouched[ev.Item] == nil {
			roundsTouched[ev.Item] = make(map[int]bool)
		}
		roundsTouched[ev.Item][ev.Round] = true
	}
	freqs := make([]float64, 0, len(roundsTouched))
	for _, rounds := range roundsTouched {
		freqs = append(freqs, 100*float64(len(rounds))/float64(tr.Rounds))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	if len(freqs) > maxRank {
		freqs = freqs[:maxRank]
	}
	st.RankFreq = freqs

	return st
}

// nextUpdateIndex maps each event index to the stream index of the next
// Update of the same item, when one exists. A Destroy breaks the chain:
// updates of a recreated item do not obsolete across incarnations (the
// generator never reuses transient ids, so this only guards hand-written
// traces).
func nextUpdateIndex(events []Event) map[int]int {
	next := make(map[int]int)
	lastSeen := make(map[uint32]int) // item -> index of its previous Update
	for i, ev := range events {
		switch ev.Kind {
		case Update:
			if j, ok := lastSeen[ev.Item]; ok {
				next[j] = i
			}
			lastSeen[ev.Item] = i
		case Destroy:
			delete(lastSeen, ev.Item)
		}
	}
	return next
}

// Summary renders the statistics against the paper's reference values.
func (s Stats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds                  %8d   (paper: 11696)\n", s.Rounds)
	fmt.Fprintf(&b, "messages                %8d\n", s.Messages)
	fmt.Fprintf(&b, "mean rate (msg/s)       %8.2f   (paper: ~42)\n", s.MeanRate)
	fmt.Fprintf(&b, "mean active items       %8.2f   (paper: 42.33)\n", s.MeanActiveItems)
	fmt.Fprintf(&b, "mean modified/round     %8.2f   (paper: 1.39)\n", s.MeanModifiedPerRound)
	fmt.Fprintf(&b, "never-obsolete share    %7.2f%%   (paper: 41.88%%)\n", 100*s.NeverObsoleteShare)
	return b.String()
}
