package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serialises the trace in a line-oriented text format:
//
//	# svs-trace v1
//	rounds 11696
//	roundspersec 30
//	active <r> <count>
//	ev <round> c|u|d <item>
//
// The format is designed so that traces extracted from a real instrumented
// game server can be fed to the tools in place of the synthetic generator.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(c int, err error) error {
		n += int64(c)
		return err
	}
	if err := count(fmt.Fprintf(bw, "# svs-trace v1\nrounds %d\nroundspersec %g\n", t.Rounds, t.RoundsPerSec)); err != nil {
		return n, err
	}
	for r, a := range t.ActivePerRound {
		if err := count(fmt.Fprintf(bw, "active %d %d\n", r, a)); err != nil {
			return n, err
		}
	}
	for _, ev := range t.Events {
		var k string
		switch ev.Kind {
		case Create:
			k = "c"
		case Update:
			k = "u"
		case Destroy:
			k = "d"
		}
		if err := count(fmt.Fprintf(bw, "ev %d %s %d\n", ev.Round, k, ev.Item)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses the format produced by WriteTo.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "rounds":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad rounds", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Rounds = v
			t.ActivePerRound = make([]int, v)
		case "roundspersec":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: bad roundspersec", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.RoundsPerSec = v
		case "active":
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace: line %d: bad active", line)
			}
			r, err1 := strconv.Atoi(fields[1])
			a, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || r < 0 || r >= len(t.ActivePerRound) {
				return nil, fmt.Errorf("trace: line %d: bad active entry", line)
			}
			t.ActivePerRound[r] = a
		case "ev":
			if len(fields) != 4 {
				return nil, fmt.Errorf("trace: line %d: bad ev", line)
			}
			r, err := strconv.Atoi(fields[1])
			if err != nil || r < 0 || r >= t.Rounds {
				return nil, fmt.Errorf("trace: line %d: bad round", line)
			}
			var k EventKind
			switch fields[2] {
			case "c":
				k = Create
			case "u":
				k = Update
			case "d":
				k = Destroy
			default:
				return nil, fmt.Errorf("trace: line %d: bad kind %q", line, fields[2])
			}
			item, err := strconv.ParseUint(fields[3], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", line, err)
			}
			t.Events = append(t.Events, Event{Round: r, Kind: k, Item: uint32(item)})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
