package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func TestGenerateDeterministic(t *testing.T) {
	p := DefaultParams()
	p.Rounds = 500
	a := Generate(p)
	b := Generate(p)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	p.Seed = 43
	c := Generate(p)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceWellFormed(t *testing.T) {
	p := DefaultParams()
	p.Rounds = 2000
	tr := Generate(p)

	// Rounds are non-decreasing; every item follows create→update*→destroy
	// or is a persistent item (updates only).
	lastRound := 0
	created := make(map[uint32]bool)
	destroyed := make(map[uint32]bool)
	for _, ev := range tr.Events {
		if ev.Round < lastRound {
			t.Fatalf("round order violated at %+v", ev)
		}
		lastRound = ev.Round
		switch ev.Kind {
		case Create:
			if created[ev.Item] {
				t.Fatalf("item %d created twice", ev.Item)
			}
			created[ev.Item] = true
		case Update:
			if destroyed[ev.Item] {
				t.Fatalf("item %d updated after destroy", ev.Item)
			}
			if ev.Item >= 1_000_000 && !created[ev.Item] {
				t.Fatalf("transient item %d updated before create", ev.Item)
			}
		case Destroy:
			if !created[ev.Item] {
				t.Fatalf("item %d destroyed without create", ev.Item)
			}
			if destroyed[ev.Item] {
				t.Fatalf("item %d destroyed twice", ev.Item)
			}
			destroyed[ev.Item] = true
		}
	}
}

// TestTraceCalibration asserts the generated workload matches the §5.2
// statistics of the paper within tolerance. These bounds are the written
// record of the substitution documented in DESIGN.md.
func TestTraceCalibration(t *testing.T) {
	tr := Generate(DefaultParams())
	st := Characterize(tr)

	assertRange := func(name string, got, lo, hi float64) {
		t.Helper()
		if got < lo || got > hi {
			t.Errorf("%s = %.3f, want within [%.3f, %.3f]", name, got, lo, hi)
		}
	}
	assertRange("mean active items (paper 42.33)", st.MeanActiveItems, 40, 45)
	assertRange("mean modified/round (paper 1.39)", st.MeanModifiedPerRound, 1.1, 1.6)
	assertRange("never-obsolete share (paper 0.4188)", st.NeverObsoleteShare, 0.36, 0.47)
	assertRange("mean rate (paper ~42 msg/s)", st.MeanRate, 38, 48)

	// Fig. 3a shape: heavy-tailed, top item modified in ~20-25% of rounds,
	// strictly decreasing by construction of ranking.
	if len(st.RankFreq) < 20 {
		t.Fatalf("too few ranked items: %d", len(st.RankFreq))
	}
	assertRange("top-rank modification freq (paper ~22%)", st.RankFreq[0], 15, 30)
	if st.RankFreq[9] > st.RankFreq[0]/3 {
		t.Errorf("rank 10 freq %.2f not heavy-tailed vs top %.2f", st.RankFreq[9], st.RankFreq[0])
	}

	// Fig. 3b shape: related messages are close — the mass within distance
	// 10 dominates the mass beyond it.
	within10 := 0.0
	for d := 0; d < 10; d++ {
		within10 += st.DistanceHist[d]
	}
	beyond := st.DistanceOverflow
	for d := 10; d < len(st.DistanceHist); d++ {
		beyond += st.DistanceHist[d]
	}
	if within10 <= beyond {
		t.Errorf("obsolescence distance not concentrated: within10=%.1f%% beyond=%.1f%%", within10, beyond)
	}
}

func TestCharacterizeSmallHandTrace(t *testing.T) {
	// Stream: u(1) u(2) u(1) c(9) u(9) d(9); item 1's first update is
	// obsoleted at distance 2; everything else never becomes obsolete.
	tr := &Trace{
		Rounds:       3,
		RoundsPerSec: 30,
		Events: []Event{
			{Round: 0, Kind: Update, Item: 1},
			{Round: 0, Kind: Update, Item: 2},
			{Round: 1, Kind: Update, Item: 1},
			{Round: 1, Kind: Create, Item: 9},
			{Round: 2, Kind: Update, Item: 9},
			{Round: 2, Kind: Destroy, Item: 9},
		},
		ActivePerRound: []int{2, 3, 3},
	}
	st := Characterize(tr)
	if st.Messages != 6 {
		t.Fatalf("Messages = %d", st.Messages)
	}
	if want := 5.0 / 6.0; math.Abs(st.NeverObsoleteShare-want) > 1e-9 {
		t.Fatalf("NeverObsoleteShare = %v, want %v", st.NeverObsoleteShare, want)
	}
	if st.DistanceHist[1] == 0 { // distance 2 bucket
		t.Fatalf("distance-2 bucket empty: %v", st.DistanceHist[:4])
	}
	if math.Abs(st.MeanActiveItems-8.0/3.0) > 1e-9 {
		t.Fatalf("MeanActiveItems = %v", st.MeanActiveItems)
	}
	// Rounds 0,1,2 modify 2,2,1 distinct items.
	if want := 5.0 / 3.0; math.Abs(st.MeanModifiedPerRound-want) > 1e-9 {
		t.Fatalf("MeanModifiedPerRound = %v, want %v", st.MeanModifiedPerRound, want)
	}
}

func TestDestroyBreaksObsolescenceChain(t *testing.T) {
	// u(1) d(1) ... then a reused id updated again: the pre-destroy update
	// must not be counted as obsoleted by the post-recreate update.
	tr := &Trace{
		Rounds:       2,
		RoundsPerSec: 30,
		Events: []Event{
			{Round: 0, Kind: Update, Item: 1},
			{Round: 0, Kind: Destroy, Item: 1},
			{Round: 1, Kind: Create, Item: 1},
			{Round: 1, Kind: Update, Item: 1},
		},
		ActivePerRound: []int{1, 1},
	}
	st := Characterize(tr)
	if st.NeverObsoleteShare != 1.0 {
		t.Fatalf("NeverObsoleteShare = %v, want 1 (destroy breaks the chain)", st.NeverObsoleteShare)
	}
}

func TestAnnotateMatchesCharacterization(t *testing.T) {
	// The k-enumeration annotations must agree with the trace-level
	// obsolescence: an update is obsoleted by the item's next update iff
	// it is within the window.
	p := DefaultParams()
	p.Rounds = 1500
	tr := Generate(p)
	const k = 64
	msgs := tr.Annotate("srv", k)
	if len(msgs) != len(tr.Events) {
		t.Fatalf("annotated %d of %d events", len(msgs), len(tr.Events))
	}
	rel := obsolete.KEnumeration{K: k}

	next := nextUpdateIndex(tr.Events)
	for i := range msgs {
		j, ok := next[i]
		if !ok {
			// Never obsoleted in the trace: no later message within the
			// window may claim to obsolete it.
			for l := i + 1; l < len(msgs) && l <= i+k; l++ {
				if rel.Obsoletes(msgs[i].Meta, msgs[l].Meta) {
					t.Fatalf("msg %d never obsolete in trace but annotated obsolete by %d", i, l)
				}
			}
			continue
		}
		if j-i <= k {
			if !rel.Obsoletes(msgs[i].Meta, msgs[j].Meta) {
				t.Fatalf("msg %d should be obsoleted by %d (distance %d)", i, j, j-i)
			}
		}
	}

	// Sequence numbers are contiguous and times non-decreasing.
	for i := range msgs {
		if msgs[i].Meta.Seq != ident.Seq(i+1) {
			t.Fatalf("seq %d at index %d", msgs[i].Meta.Seq, i)
		}
		if i > 0 && msgs[i].Time < msgs[i-1].Time {
			t.Fatalf("time went backwards at %d", i)
		}
	}
}

func TestTraceIORoundTrip(t *testing.T) {
	p := DefaultParams()
	p.Rounds = 300
	tr := Generate(p)

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != tr.Rounds || got.RoundsPerSec != tr.RoundsPerSec {
		t.Fatalf("header mismatch: %d/%g vs %d/%g", got.Rounds, got.RoundsPerSec, tr.Rounds, tr.RoundsPerSec)
	}
	if len(got.Events) != len(tr.Events) {
		t.Fatalf("events: %d vs %d", len(got.Events), len(tr.Events))
	}
	for i := range got.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: %+v vs %+v", i, got.Events[i], tr.Events[i])
		}
	}
	for i := range got.ActivePerRound {
		if got.ActivePerRound[i] != tr.ActivePerRound[i] {
			t.Fatalf("active %d: %d vs %d", i, got.ActivePerRound[i], tr.ActivePerRound[i])
		}
	}
}

// TestScalePlayersDirections checks the §5.2 observation about larger
// sessions: more players ⇒ higher message rate, lower never-obsolete
// share, larger distances between related messages.
func TestScalePlayersDirections(t *testing.T) {
	base := DefaultParams()
	base.Rounds = 4000
	st5 := Characterize(Generate(base))
	st10 := Characterize(Generate(ScalePlayers(base, 10)))

	if st10.MeanRate <= st5.MeanRate {
		t.Errorf("rate did not increase with players: %.1f vs %.1f", st10.MeanRate, st5.MeanRate)
	}
	if st10.NeverObsoleteShare >= st5.NeverObsoleteShare {
		t.Errorf("never-obsolete share did not decrease: %.3f vs %.3f",
			st10.NeverObsoleteShare, st5.NeverObsoleteShare)
	}
	mean := func(st Stats) float64 {
		num, den := 0.0, 0.0
		for d, pct := range st.DistanceHist {
			num += float64(d+1) * pct
			den += pct
		}
		return num / den
	}
	if mean(st10) <= mean(st5) {
		t.Errorf("mean obsolescence distance did not grow: %.2f vs %.2f", mean(st10), mean(st5))
	}
	// Five players (the calibration itself) must be a no-op.
	if got := ScalePlayers(base, 5); got != base {
		t.Error("ScalePlayers(5) must be identity")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"rounds x\n",
		"ev 0 u\n",
		"ev 0 z 5\nrounds 1\n",
		"active 5 1\n",
		"bogus 1 2\n",
	} {
		if _, err := Read(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("Read(%q) accepted garbage", in)
		}
	}
}
