// Package trace models the update workload of a multi-player game server,
// calibrated to the measurements the paper reports for an instrumented
// Quake session (§5.2): 5 players, ≈6 minutes, 11 696 rounds at a target
// of 30 rounds/s, an average of 42.33 active items of which 1.39 are
// modified per round, 41.88% of messages never becoming obsolete, a
// heavy-tailed item-modification frequency (Fig. 3a) and obsolescence
// distances concentrated under 10 messages (Fig. 3b).
//
// The paper's raw traces are not available; this package substitutes a
// synthetic generator whose traffic is statistically equivalent in every
// dimension the simulation consumes: message arrival pattern (bursty
// rounds) and the obsolescence relation between messages. The generator's
// model:
//
//   - a fixed population of persistent items (players, doors, platforms)
//     touched in short bursts of consecutive-round updates, with burst
//     targets drawn from a Zipf distribution over item rank — producing
//     Fig. 3a's shape;
//   - transient items (projectiles) that are created, updated a couple of
//     times and destroyed — creations, destructions and each item's final
//     update never become obsolete, producing the large never-obsolete
//     share;
//   - per-round update counts that fluctuate (bursts), producing the
//     paper's observation that receivers must outpace the average rate.
package trace

import (
	"math"
	"math/rand"
	"sort"
)

// EventKind is the kind of a trace event.
type EventKind uint8

const (
	// Create introduces an item (reliable message).
	Create EventKind = iota + 1
	// Update modifies an item (obsoleted by the item's next update).
	Update
	// Destroy removes an item (reliable message).
	Destroy
)

func (k EventKind) String() string {
	switch k {
	case Create:
		return "create"
	case Update:
		return "update"
	case Destroy:
		return "destroy"
	default:
		return "?"
	}
}

// Event is one message of the session: an operation on an item emitted in
// a given round.
type Event struct {
	Round int
	Kind  EventKind
	Item  uint32
}

// Trace is a recorded (or generated) session.
type Trace struct {
	// Rounds is the number of simulation rounds in the session.
	Rounds int
	// RoundsPerSec converts rounds to time (the paper's server targets 30).
	RoundsPerSec float64
	// Events is the message stream in emission order.
	Events []Event
	// ActivePerRound is the number of live items at each round.
	ActivePerRound []int
}

// Params configures the generator. DefaultParams reproduces the §5.2
// statistics; the sweep benchmarks vary individual fields.
type Params struct {
	Rounds       int
	Seed         int64
	RoundsPerSec float64

	// PersistentItems is the fixed item population (players, world items).
	PersistentItems int
	// ZipfS is the skew of burst-target selection by item rank.
	ZipfS float64
	// BurstStartsPerRound is the Poisson rate of new persistent bursts.
	BurstStartsPerRound float64
	// BurstLenMean is the geometric mean length (rounds) of a burst; the
	// bursting item is updated once per round while it lasts.
	BurstLenMean float64

	// TransientSpawnsPerRound is the Poisson rate of projectile spawns.
	TransientSpawnsPerRound float64
	// TransientUpdatesMean is the geometric mean number of updates a
	// transient item receives between creation and destruction.
	TransientUpdatesMean float64
}

// DefaultParams returns the calibration targeting the paper's session.
func DefaultParams() Params {
	return Params{
		Rounds:                  11696,
		Seed:                    42,
		RoundsPerSec:            30,
		PersistentItems:         42,
		ZipfS:                   1.30,
		BurstStartsPerRound:     0.27,
		BurstLenMean:            2.4,
		TransientSpawnsPerRound: 0.19,
		TransientUpdatesMean:    2.0,
	}
}

// ScalePlayers adjusts the parameters as if the session had the given
// number of players instead of the calibration's five. §5.2 reports the
// effect of more players: "the message rate increases, the share of
// messages that never become obsolete decreases, but the distance between
// related messages increases" — more items are touched concurrently, so
// consecutive updates of one item sit further apart in the stream, while
// persistent traffic (almost all of which eventually becomes obsolete)
// grows faster than projectile traffic.
func ScalePlayers(p Params, players int) Params {
	if players <= 0 || players == 5 {
		return p
	}
	scale := float64(players) / 5
	p.PersistentItems = int(float64(p.PersistentItems) * scale)
	p.BurstStartsPerRound *= scale
	p.TransientSpawnsPerRound *= 1 + (scale-1)*0.5 // projectiles grow sub-linearly
	return p
}

// Generate produces a session from p. The same Params yield the same
// trace.
func Generate(p Params) *Trace {
	rng := rand.New(rand.NewSource(p.Seed))
	tr := &Trace{
		Rounds:         p.Rounds,
		RoundsPerSec:   p.RoundsPerSec,
		ActivePerRound: make([]int, p.Rounds),
	}

	zipf := newZipfPicker(p.PersistentItems, p.ZipfS, rng)
	burst := make(map[uint32]int)     // persistent item -> remaining burst rounds
	transient := make(map[uint32]int) // transient item -> remaining updates
	nextTransient := uint32(1_000_000)

	for r := 0; r < p.Rounds; r++ {
		var round []Event

		// New persistent bursts.
		for i := poisson(rng, p.BurstStartsPerRound); i > 0; i-- {
			item := zipf.pick()
			burst[item] += geometric(rng, p.BurstLenMean)
		}
		// One update per bursting item per round. Maps are iterated in
		// sorted key order so the same seed always yields the same trace.
		for _, item := range sortedKeys(burst) {
			round = append(round, Event{Round: r, Kind: Update, Item: item})
			if burst[item]--; burst[item] <= 0 {
				delete(burst, item)
			}
		}

		// Transient lifecycle: spawn this round, update once per round
		// from the next round on, destroy when the updates run out.
		spawned := make(map[uint32]bool)
		for i := poisson(rng, p.TransientSpawnsPerRound); i > 0; i-- {
			id := nextTransient
			nextTransient++
			round = append(round, Event{Round: r, Kind: Create, Item: id})
			transient[id] = geometric(rng, p.TransientUpdatesMean)
			spawned[id] = true
		}
		for _, id := range sortedKeys(transient) {
			if spawned[id] {
				continue // first update comes the round after creation
			}
			if transient[id] == 0 {
				round = append(round, Event{Round: r, Kind: Destroy, Item: id})
				delete(transient, id)
				continue
			}
			round = append(round, Event{Round: r, Kind: Update, Item: id})
			transient[id]--
		}

		// Interleave the round's messages as a real server would emit
		// them, keeping each item's create before its updates (creates
		// stay in place; only updates of distinct items swap freely).
		shuffleRound(rng, round)
		tr.Events = append(tr.Events, round...)
		tr.ActivePerRound[r] = p.PersistentItems + len(transient)
	}
	return tr
}

// sortedKeys returns the keys of m in ascending order.
func sortedKeys(m map[uint32]int) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shuffleRound permutes a round's events. Because a transient item is only
// created (never also updated) in its spawn round, any permutation keeps
// every item's stream well-formed; the shuffle just removes the artificial
// persistent-then-transient grouping.
func shuffleRound(rng *rand.Rand, round []Event) {
	rng.Shuffle(len(round), func(i, j int) { round[i], round[j] = round[j], round[i] })
}

// Duration returns the session length in seconds.
func (t *Trace) Duration() float64 {
	if t.RoundsPerSec <= 0 {
		return 0
	}
	return float64(t.Rounds) / t.RoundsPerSec
}

// MeanRate returns the average message rate in messages per second.
func (t *Trace) MeanRate() float64 {
	d := t.Duration()
	if d == 0 {
		return 0
	}
	return float64(len(t.Events)) / d
}

// ---- distributions ----------------------------------------------------------

// poisson samples a Poisson variate with rate lambda (Knuth's algorithm;
// fine for the small rates used here).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// geometric samples a geometric variate with the given mean, support ≥ 1.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for rng.Float64() > p && n < int(mean*10) {
		n++
	}
	return n
}

// zipfPicker draws item ids 1..n with P(rank r) ∝ 1/r^s.
type zipfPicker struct {
	cum []float64
	rng *rand.Rand
}

func newZipfPicker(n int, s float64, rng *rand.Rand) *zipfPicker {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &zipfPicker{cum: cum, rng: rng}
}

func (z *zipfPicker) pick() uint32 {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint32(lo + 1) // item ids are 1-based ranks
}
