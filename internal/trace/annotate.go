package trace

import (
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Msg is one message of an annotated stream: a trace event with the
// protocol metadata (sequence number and k-enumeration bitmap) a sender
// would attach, plus its emission time.
type Msg struct {
	Meta  obsolete.Msg
	Event Event
	// Time is the emission instant in seconds from session start.
	Time float64
}

// Annotate converts the trace into the message stream sender would emit,
// attaching k-enumeration obsolescence annotations computed exactly as the
// paper prescribes (§5.2 uses k = twice the buffer size; callers pass k).
// Creations and destructions are reliable; each update directly obsoletes
// the item's previous update.
func (t *Trace) Annotate(sender ident.PID, k int) []Msg {
	it := obsolete.NewItemTracker(obsolete.NewKTracker(k))
	out := make([]Msg, 0, len(t.Events))
	for _, ev := range t.Events {
		var seq ident.Seq
		var annot []byte
		switch ev.Kind {
		case Create:
			seq, annot = it.Create(ev.Item)
		case Update:
			seq, annot = it.Update(ev.Item)
		case Destroy:
			seq, annot = it.Destroy(ev.Item)
		}
		out = append(out, Msg{
			Meta:  obsolete.Msg{Sender: sender, Seq: seq, Annot: annot},
			Event: ev,
			Time:  float64(ev.Round) / t.RoundsPerSec,
		})
	}
	return out
}
