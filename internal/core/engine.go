package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/consensus"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/transport"
)

// Engine is one group member running the SVS protocol of Figure 1. Create
// it with New, drive it with Multicast / Deliver / RequestViewChange, and
// shut it down with Stop.
type Engine struct {
	cfg   Config
	rel   obsolete.Relation
	cons  *consensus.Service
	clock obs.Clock
	ev    *obs.Events
	m     engMetrics

	reqC  chan *request
	decC  chan decision
	stopC chan struct{}
	doneC chan struct{}

	rootCtx context.Context
	cancel  context.CancelFunc
	once    sync.Once

	// Snapshot mirrors (written by the loop under mu, read by the facade).
	mu       sync.Mutex
	curView  View
	curStats Stats

	// ---- state below is owned exclusively by the run loop ----

	cv       View
	blocked  bool
	expelled bool
	proposed bool

	// pendingNext is the set of candidate next views this engine is
	// awaiting a consensus decision for. With partition healing several
	// proposals for distinct successors can be in flight at once (the
	// ordinary change, rotating split declarations, a merge); the first
	// decision to arrive for a ref in this set wins, and decisions for
	// refs outside it are counted as ignored, not installed.
	pendingNext map[ident.ViewRef]bool

	// former holds processes this member once shared a view with but no
	// longer does — the probe targets of partition healing (merge.go).
	// Maintained only when Config.Heal is set.
	former map[ident.PID]struct{}

	// merge is the in-flight partition merge, nil when none (merge.go).
	merge    *mergeState
	healTick obs.Ticker

	// Join handshake state. joining is true from Start until the state
	// transfer installs the first view; joinTimer retransmits the join
	// request meanwhile under capped exponential backoff with jitter
	// (joinAttempt counts retransmissions, joinRNG draws the jitter).
	// joinFailed is set when JoinSpec.GiveUp expires without a transfer:
	// the engine is dead to the application from then on (ErrJoinTimeout).
	// pendingJoins holds admission requests received while a view change
	// is in flight. joinSeeded records, per sender, the highest
	// current-view sequence number adopted from a state transfer: those
	// entries never consumed a window slot here, so their delivery or
	// purge must not grant credits (see deliverItem).
	joining      bool
	joinFailed   bool
	joinTimer    obs.Timer
	joinAttempt  int
	joinRNG      *rand.Rand
	joinStart    time.Time // when the join handshake began (joinDur)
	pendingJoins ident.PIDs
	joinSeeded   map[ident.PID]ident.Seq

	toDeliver *queue.Queue
	delivered *queue.Queue // current-view delivery history (for pred sets)
	recvMax   map[ident.PID]ident.Seq
	lastSent  ident.Seq

	// pendingHead is one arrival that passed every receive check (its
	// credit is charged and its purges applied) but found the delivery
	// queue full; it occupies the reserved stall slot until space frees.
	// pendingRest holds the raw, unprocessed remainder of a batched
	// receive behind it (consumed from pendingPos), so per-sender FIFO
	// survives batch arrivals; the data inbox stays gated while either is
	// non-empty. pumpingPending breaks the serveDeliveries → retryPending
	// → acceptData recursion: only the outermost retryPending drains.
	pendingHead    *DataMsg
	pendingRest    []DataMsg
	pendingPos     int
	pumpingPending bool

	// stage accumulates the per-peer sends of the multicast transaction
	// being committed (advance); flushStage coalesces each peer's run
	// into one DataBatchMsg envelope. stageHint sizes the first append.
	// committing guards against retryParked interleaving another request
	// into a half-committed batch (the seq precheck would mis-fire).
	stage      map[ident.PID][]DataMsg
	stageHint  int
	committing bool

	join         ident.PIDs
	leave        ident.PIDs
	globalPred   map[obsolete.MsgID]DataMsg
	predReceived ident.PIDs

	flow *flowState

	// blockStart stamps the group blocking at t5 (viewChange histogram).
	blockStart time.Time

	// Stability tracking (see stability.go).
	recvTable map[ident.PID]map[ident.PID]ident.Seq
	stable    map[ident.PID]ident.Seq
	stabTick  obs.Ticker

	deliverWaiters []*request
	multicastQ     []*request
	deferredCtl    []transport.Envelope // control traffic for future views

	// purgeScratch is the reusable buffer PurgeForInto fills on the
	// multicast/arrival hot path, so releasing credits for purged entries
	// allocates nothing per call.
	purgeScratch []queue.Item

	// viewDirty marks the loop-owned view as newer than the facade
	// snapshot, so syncSnapshots clones it only when it actually changed
	// instead of allocating on every loop iteration.
	viewDirty bool

	stats Stats
}

type reqKind uint8

const (
	reqMulticast reqKind = iota + 1
	reqDeliver
	reqViewChange
)

// OutMsg is one message of a MulticastBatch: the tracker-minted metadata
// and its payload. The payload slice is borrowed by the engine until the
// call returns (see Engine.MulticastBatch).
type OutMsg struct {
	Meta    obsolete.Msg
	Payload []byte
}

type request struct {
	kind reqKind
	ctx  context.Context

	meta    obsolete.Msg // single multicast
	payload []byte
	batch   []OutMsg   // batched multicast (nil for a single; meta/payload unused)
	done    int        // committed prefix of batch (mid-batch park progress)
	join    ident.PIDs // view change
	leave   ident.PIDs
	dst     []Delivery // batched deliver destination (nil for a single)

	// parkedAt stamps a multicast entering the parked queue, so the flow
	// control stall it suffered can be observed at commit (parkDur). Zero
	// when the engine has no park histogram or the request never parked.
	parkedAt time.Time

	errC chan error    // view change / deliver failure reply
	mcC  chan mcResult // multicast reply
	delC chan Delivery // deliver reply
	nC   chan int      // batched deliver reply (count filled into dst)
}

// batchLen is the number of messages this multicast request carries.
func (req *request) batchLen() int {
	if req.batch == nil {
		return 1
	}
	return len(req.batch)
}

// msgAt returns message i of the request.
func (req *request) msgAt(i int) (obsolete.Msg, []byte) {
	if req.batch == nil {
		return req.meta, req.payload
	}
	return req.batch[i].Meta, req.batch[i].Payload
}

// curSeq is the sequence number of the next message to commit (events).
func (req *request) curSeq() ident.Seq {
	if req.batch == nil {
		return req.meta.Seq
	}
	if req.done < len(req.batch) {
		return req.batch[req.done].Meta.Seq
	}
	return 0
}

// mcResult reports the outcome of a multicast: the view in which the
// message was sent, or an error.
type mcResult struct {
	view ident.ViewRef
	err  error
}

// requestPool recycles request structs and their reply channels across
// Multicast/Deliver/RequestViewChange calls. The loop sends exactly one
// reply per request, so a request whose reply has been consumed can be
// reused safely; requests abandoned on ctx cancellation or engine stop are
// left to the garbage collector because a late reply may still arrive on
// their channels.
var requestPool = sync.Pool{New: func() any {
	return &request{
		mcC:  make(chan mcResult, 1),
		delC: make(chan Delivery, 1),
		errC: make(chan error, 1),
		nC:   make(chan int, 1),
	}
}}

func getRequest(kind reqKind, ctx context.Context) *request {
	req := requestPool.Get().(*request)
	req.kind = kind
	req.ctx = ctx
	return req
}

func putRequest(req *request) {
	req.ctx = nil
	req.meta = obsolete.Msg{}
	req.payload = nil
	req.batch = nil
	req.done = 0
	req.join = nil
	req.leave = nil
	req.dst = nil
	req.parkedAt = time.Time{}
	requestPool.Put(req)
}

// decision carries a consensus outcome back into the loop.
type decision struct {
	forRef ident.ViewRef
	val    consensusValue
	err    error
}

// New validates cfg and assembles a stopped engine; call Start.
func New(cfg Config) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// Make the group's inboxes exist before any peer traffic can race the
	// protocol loop's first read.
	cfg.Endpoint.Register(cfg.Group)
	ctx, cancel := context.WithCancel(context.Background())
	initial := cfg.InitialView
	if cfg.Join != nil {
		// A joiner has no view until the state transfer installs one.
		initial = View{}
	}
	e := &Engine{
		cfg:         cfg,
		rel:         cfg.Relation,
		cons:        consensus.New(cfg.Endpoint, cfg.Detector, cfg.Group, cfg.Obs),
		clock:       cfg.Obs.Clock(),
		ev:          cfg.Obs.Events(),
		m:           newEngMetrics(cfg.Obs),
		reqC:        make(chan *request, 64),
		decC:        make(chan decision, 4),
		stopC:       make(chan struct{}),
		doneC:       make(chan struct{}),
		rootCtx:     ctx,
		cancel:      cancel,
		cv:          initial.Clone(),
		joining:     cfg.Join != nil,
		toDeliver:   queue.New(cfg.Relation, cfg.ToDeliverCap),
		delivered:   queue.New(cfg.Relation, 0),
		recvMax:     make(map[ident.PID]ident.Seq),
		globalPred:  make(map[obsolete.MsgID]DataMsg),
		pendingNext: make(map[ident.ViewRef]bool),
		former:      make(map[ident.PID]struct{}),
		flow:        newFlowState(cfg, initial.Members),
	}
	e.curView = e.cv.Clone()
	return e, nil
}

// Start launches the consensus service and the protocol loop. A joining
// engine also starts asking its contacts for admission.
func (e *Engine) Start() error {
	e.cons.Start()
	if e.cfg.StabilityInterval > 0 {
		e.stabTick = e.clock.NewTicker(e.cfg.StabilityInterval)
	}
	if e.cfg.Heal != nil {
		e.healTick = e.clock.NewTicker(e.cfg.Heal.ProbeInterval)
	}
	if e.cfg.Join != nil {
		e.joinStart = e.clock.Now()
		e.joinRNG = rand.New(rand.NewSource(e.joinStart.UnixNano()))
		e.joinTimer = e.clock.NewTimer(e.nextJoinDelay())
	}
	go e.run()
	return nil
}

// Stop terminates the engine. Parked Multicast and Deliver calls return
// ErrStopped. Stop does not close the endpoint or the detector; the caller
// owns those.
func (e *Engine) Stop() {
	e.once.Do(func() {
		e.cancel()
		close(e.stopC)
		<-e.doneC
		e.cons.Stop()
	})
}

// Self returns this process's identifier.
func (e *Engine) Self() ident.PID { return e.cfg.Self }

// View returns the most recently installed view.
func (e *Engine) View() View {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.curView.Clone()
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.curStats
}

// Multicast submits a data message to the group (transition t2). meta must
// come from an obsolescence tracker over this process's stream: sequence
// numbers must be contiguous starting at 1. The call blocks while the
// protocol exercises flow control (buffers full or view change in
// progress) until the message is accepted, ctx is done, or the engine
// stops. On success it returns the global identifier of the view the
// message was multicast in.
func (e *Engine) Multicast(ctx context.Context, meta obsolete.Msg, payload []byte) (ident.ViewRef, error) {
	req := getRequest(reqMulticast, ctx)
	req.meta = meta
	req.payload = payload
	if err := e.submit(ctx, req); err != nil {
		putRequest(req) // never reached the loop
		return ident.ViewRef{}, err
	}
	select {
	case res := <-req.mcC:
		putRequest(req)
		return res.view, res.err
	case <-ctx.Done():
		return ident.ViewRef{}, ctx.Err()
	case <-e.doneC:
		return ident.ViewRef{}, ErrStopped
	}
}

// MulticastBatch submits a run of data messages in one request round-trip
// through the protocol loop: one channel operation, one wakeup and one
// staged send flush cover the whole run, and each peer receives the run
// as a single coalesced envelope. Semantically it is exactly equivalent
// to calling Multicast once per message in order — every message is
// individually flow-controlled, purge-checked and sequence-checked, and a
// view change may land between two messages of the batch.
//
// msgs (and its payload slices) are borrowed by the engine until the call
// returns; the caller must not mutate them meanwhile and may reuse them
// freely afterwards. The call blocks until every message has committed.
// On success it returns the view the last message was sent in. On error,
// messages preceding the failure were committed and sent; the failed
// message and everything after it were not.
func (e *Engine) MulticastBatch(ctx context.Context, msgs []OutMsg) (ident.ViewRef, error) {
	if len(msgs) == 0 {
		e.mu.Lock()
		v := e.curView.Ref()
		e.mu.Unlock()
		return v, nil
	}
	req := getRequest(reqMulticast, ctx)
	req.batch = msgs
	if err := e.submit(ctx, req); err != nil {
		putRequest(req) // never reached the loop
		return ident.ViewRef{}, err
	}
	select {
	case res := <-req.mcC:
		putRequest(req)
		return res.view, res.err
	case <-ctx.Done():
		return ident.ViewRef{}, ctx.Err()
	case <-e.doneC:
		return ident.ViewRef{}, ErrStopped
	}
}

// Deliver returns the next item of the delivery queue (transition t1),
// blocking until one is available. This pull interface is deliberate: the
// paper uses a down-call style "to ensure that messages not being
// processed are kept in the protocol buffers", where they stay purgeable.
func (e *Engine) Deliver(ctx context.Context) (Delivery, error) {
	req := getRequest(reqDeliver, ctx)
	if err := e.submit(ctx, req); err != nil {
		putRequest(req)
		return Delivery{}, err
	}
	select {
	case d := <-req.delC:
		putRequest(req)
		return d, nil
	case err := <-req.errC:
		putRequest(req)
		return Delivery{}, err
	case <-ctx.Done():
		return Delivery{}, ctx.Err()
	case <-e.doneC:
		return Delivery{}, ErrStopped
	}
}

// DeliverBatch fills dst with as many immediately available deliveries as
// it holds, blocking until at least one is available (or ctx is done or
// the engine stops), and returns the number filled. One request
// round-trip through the protocol loop drains a whole run of the delivery
// queue — the pull-style counterpart of MulticastBatch.
//
// dst is written by the protocol loop; if the call returns early on ctx
// cancellation the loop may still fill dst afterwards, so a cancelled
// call's dst must not be reused until the engine stops. (Cancellation is
// intended for shutdown, where that is moot.)
func (e *Engine) DeliverBatch(ctx context.Context, dst []Delivery) (int, error) {
	if len(dst) == 0 {
		return 0, nil
	}
	req := getRequest(reqDeliver, ctx)
	req.dst = dst
	if err := e.submit(ctx, req); err != nil {
		putRequest(req)
		return 0, err
	}
	select {
	case n := <-req.nC:
		putRequest(req)
		return n, nil
	case err := <-req.errC:
		putRequest(req)
		return 0, err
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-e.doneC:
		return 0, ErrStopped
	}
}

// RequestViewChange triggers the view change protocol (transition t4),
// asking for the given processes to leave the group. It returns as soon as
// the INIT is disseminated; the new view arrives as a DeliverView item.
func (e *Engine) RequestViewChange(leave ...ident.PID) error {
	return e.RequestMembershipChange(nil, ident.NewPIDs(leave...))
}

// RequestMembershipChange is the general form of RequestViewChange: the
// next view admits the processes in join and removes the processes in
// leave. Joined processes must be running a joining engine (Config.Join) —
// the view change only makes them members; the state transfer that follows
// the install is what brings them up to date. A process in both sets
// leaves.
func (e *Engine) RequestMembershipChange(join, leave ident.PIDs) error {
	req := getRequest(reqViewChange, context.Background())
	req.join = join.Clone()
	req.leave = leave.Clone()
	if err := e.submit(context.Background(), req); err != nil {
		putRequest(req)
		return err
	}
	select {
	case err := <-req.errC:
		putRequest(req)
		return err
	case <-e.doneC:
		return ErrStopped
	}
}

func (e *Engine) submit(ctx context.Context, req *request) error {
	select {
	case e.reqC <- req:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-e.doneC:
		return ErrStopped
	}
}

// reqDrainCap bounds the greedy request drain per loop iteration, so a
// firehose of submitters cannot starve the network-facing cases.
const reqDrainCap = 256

// run is the protocol loop: a single goroutine owning all state. Both
// inboxes are consumed in batch mode: one receive hands the loop every
// envelope pending for the channel, amortising the wakeup and the
// per-iteration snapshot mirror over the whole run.
func (e *Engine) run() {
	defer close(e.doneC)
	dataIn := e.cfg.Endpoint.InboxBatch(e.cfg.Group, transport.Data)
	ctlIn := e.cfg.Endpoint.InboxBatch(e.cfg.Group, transport.Ctl)
	fdEv := e.cfg.Detector.Events()
	var stabC <-chan time.Time
	if e.stabTick != nil {
		stabC = e.stabTick.C()
		defer e.stabTick.Stop()
	}
	var healC <-chan time.Time
	if e.healTick != nil {
		healC = e.healTick.C()
		defer e.healTick.Stop()
	}
	if e.joining {
		defer func() {
			if e.joinTimer != nil {
				e.joinTimer.Stop()
			}
		}()
		e.sendJoinReq()
	}

	for {
		// Flow control: while blocked, expelled, still joining, or holding
		// unprocessed arrivals, leave data in the transport; senders run
		// out of credits and stop.
		dataC := dataIn
		if e.dataGated() {
			dataC = nil
		}
		// Re-fetched every iteration: each backoff step arms a fresh timer.
		var joinC <-chan time.Time
		if e.joinTimer != nil {
			joinC = e.joinTimer.C()
		}
		select {
		case <-e.stopC:
			e.shutdown()
			return
		case envs, ok := <-dataC:
			if !ok {
				dataIn = nil
				break
			}
			e.onDataBatch(envs)
		case envs, ok := <-ctlIn:
			if !ok {
				ctlIn = nil
				break
			}
			for i := range envs {
				e.onCtl(envs[i])
			}
		case ev, ok := <-fdEv:
			if !ok {
				fdEv = nil
				break
			}
			e.onSuspicion(ev)
		case req := <-e.reqC:
			e.onRequest(req)
			e.drainRequests()
		case dec := <-e.decC:
			e.onDecision(dec)
		case <-stabC:
			e.gossipStability()
		case <-healC:
			e.onHealTick()
		case <-joinC:
			e.onJoinRetry()
		}
		e.syncSnapshots()
	}
}

// dataGated reports whether the loop must leave data arrivals in the
// transport: group blocked, this process expelled or still joining, a
// previous arrival waiting for queue space, or no space to begin with.
func (e *Engine) dataGated() bool {
	return e.blocked || e.expelled || e.joining ||
		e.pendingHead != nil || e.pendingPos < len(e.pendingRest) ||
		e.toDeliver.Full()
}

// drainRequests opportunistically serves whatever else is already sitting
// in reqC after a request wakes the loop, so concurrent single-message
// callers get batch amortisation without using the batch APIs.
func (e *Engine) drainRequests() {
	for i := 0; i < reqDrainCap; i++ {
		select {
		case req := <-e.reqC:
			e.onRequest(req)
		default:
			return
		}
	}
}

// sendJoinReq (re)transmits the admission request to every contact.
func (e *Engine) sendJoinReq() {
	for _, c := range e.cfg.Join.Contacts {
		e.send(c, transport.Ctl, JoinReqMsg{})
	}
}

// onJoinRetry fires on each backoff step: give up if the retry budget is
// spent, otherwise retransmit and arm the next (longer) wait.
func (e *Engine) onJoinRetry() {
	if !e.joining {
		e.joinTimer = nil
		return
	}
	if g := e.cfg.Join.GiveUp; g > 0 && e.clock.Since(e.joinStart) >= g {
		e.failJoin()
		return
	}
	e.sendJoinReq()
	e.joinAttempt++
	e.joinTimer = e.clock.NewTimer(e.nextJoinDelay())
}

// nextJoinDelay computes the wait before retransmission joinAttempt:
// min(Retry·2ⁿ, RetryMax), scaled by a uniform jitter factor in
// [1-RetryJitter, 1+RetryJitter].
func (e *Engine) nextJoinDelay() time.Duration {
	js := e.cfg.Join
	d := js.Retry
	for i := 0; i < e.joinAttempt && d < js.RetryMax; i++ {
		d *= 2
	}
	if d > js.RetryMax {
		d = js.RetryMax
	}
	if js.RetryJitter > 0 && e.joinRNG != nil {
		d = time.Duration(float64(d) * (1 + js.RetryJitter*(2*e.joinRNG.Float64()-1)))
		if d <= 0 {
			d = time.Millisecond
		}
	}
	return d
}

// failJoin abandons the join handshake: the retry budget (JoinSpec.GiveUp)
// expired without a state transfer. Every parked call fails with
// ErrJoinTimeout, as does everything submitted afterwards — the engine
// never installed a view, so there is nothing to recover; the caller
// stops it and retries with live contacts.
func (e *Engine) failJoin() {
	if e.joinTimer != nil {
		e.joinTimer.Stop()
		e.joinTimer = nil
	}
	e.joining = false
	e.joinFailed = true
	for _, w := range e.deliverWaiters {
		w.errC <- ErrJoinTimeout
	}
	e.deliverWaiters = nil
	for _, m := range e.multicastQ {
		m.mcC <- mcResult{err: ErrJoinTimeout}
	}
	e.multicastQ = nil
}

// send is the engine's best-effort transmit: in the crash-stop model a
// failed send is the peer's problem (the detector will notice a dead one),
// but the failure is counted and logged instead of vanishing into `_ =`.
func (e *Engine) send(p ident.PID, ch transport.Channel, msg any) {
	if err := e.cfg.Endpoint.Send(p, e.cfg.Group, ch, msg); err != nil {
		e.m.sendErrors.Inc()
		e.ev.SendError(string(p), err)
	}
}

// syncSnapshots mirrors loop-owned state into the facade-visible copies.
func (e *Engine) syncSnapshots() {
	e.stats.View = e.cv.ID
	e.stats.Epoch = e.cv.Epoch
	e.stats.Members = len(e.cv.Members)
	e.stats.ToDeliverLen = e.toDeliver.Len()
	e.stats.HistoryLen = e.delivered.Len()
	e.stats.Parked = len(e.multicastQ)
	e.stats.LastSent = e.lastSent
	if st := e.toDeliver.Stats(); st.MaxLen > e.stats.ToDeliverMax {
		e.stats.ToDeliverMax = st.MaxLen
	}
	e.m.view.Set(int64(e.cv.ID))
	e.m.members.Set(int64(len(e.cv.Members)))
	e.m.qLen.Set(int64(e.stats.ToDeliverLen))
	e.m.qMax.Max(int64(e.stats.ToDeliverMax))
	e.m.histLen.Set(int64(e.stats.HistoryLen))
	e.m.purgedQ.Set(int64(e.stats.PurgedToDeliver))
	e.m.parkedG.Set(int64(e.stats.Parked))
	e.mu.Lock()
	if e.viewDirty {
		// Clone only when the view actually changed: the facade keeps its
		// own copy, and cloning per loop iteration would put a members
		// alloc on the per-batch hot path.
		e.curView = e.cv.Clone()
		e.viewDirty = false
	}
	e.curStats = e.stats
	e.mu.Unlock()
}

// shutdown fails every parked request.
func (e *Engine) shutdown() {
	for _, w := range e.deliverWaiters {
		w.errC <- ErrStopped
	}
	e.deliverWaiters = nil
	for _, m := range e.multicastQ {
		m.mcC <- mcResult{err: ErrStopped}
	}
	e.multicastQ = nil
	e.syncSnapshots()
}

// onRequest dispatches an application request.
func (e *Engine) onRequest(req *request) {
	switch req.kind {
	case reqMulticast:
		e.onMulticastReq(req)
	case reqDeliver:
		e.deliverWaiters = append(e.deliverWaiters, req)
		e.serveDeliveries()
	case reqViewChange:
		req.errC <- e.triggerViewChange(req.join, req.leave)
	}
}
