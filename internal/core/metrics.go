package core

import (
	"repro/internal/obs"
)

// Reasons a consensus decision is accounted as ignored (ignoreDecision).
const (
	ignoreDuplicate  = "duplicate"   // the decision for the view just installed, reported twice
	ignoreNotBlocked = "not_blocked" // a decide flood landing while unblocked
	ignoreWrongView  = "wrong_view"  // the losing branch of concurrent proposals
)

// engMetrics are the engine's instruments, resolved once at construction.
// Every field is nil-safe: an engine built without a registry records
// nothing and pays one nil check per site. The Stats struct (delivery.go)
// remains the loop-owned source-compatible snapshot; these instruments are
// the exported, label-scoped view of the same sites plus the timings the
// plain counters cannot carry.
type engMetrics struct {
	// Protocol counters (mirroring Stats fields).
	multicast      *obs.Counter
	delivered      *obs.Counter
	viewsInstalled *obs.Counter
	purgedOutgoing *obs.Counter
	flushAdded     *obs.Counter
	parks          *obs.Counter
	stablePruned   *obs.Counter
	joinBytesSent  *obs.Counter
	joinBytesRecv  *obs.Counter

	// Previously silent (or silently-swallowed) paths, now typed.
	dropStale       *obs.Counter // engine_dropped_total{reason=stale_view}
	dropCovered     *obs.Counter // {reason=covered}
	dropStaleCredit *obs.Counter // {reason=stale_credit}
	dropDefer       *obs.Counter // {reason=defer_overflow}
	dropBadType     *obs.Counter // {reason=bad_type}
	dropUnknownCtl  *obs.Counter // {reason=unknown_ctl}
	dropExpelled    *obs.Counter // {reason=expelled}
	sendErrors      *obs.Counter
	decisionFails   *obs.Counter
	creditFlushes   *obs.Counter // owed-credit batches flushed to senders

	// decisionsIgnored counts consensus decisions the engine received but
	// could not install, by reason — engine_decisions_ignored_total{reason=}.
	// With concurrent proposals (splits, merges) some losers are expected;
	// the label tells an operator whether the losses are the benign kind.
	decisionsIgnored map[string]*obs.Counter

	// Partition healing (merge.go).
	mergesTotal *obs.Counter // view_merge_total: union views installed
	mergeAborts *obs.Counter // view_merge_aborts_total: merges timed out

	// Gauges (current state, refreshed by syncSnapshots).
	view      *obs.Gauge
	members   *obs.Gauge
	qLen      *obs.Gauge
	qMax      *obs.Gauge // delivery-queue high-water mark
	histLen   *obs.Gauge
	purgedQ   *obs.Gauge // cumulative delivery-queue purges (queue-owned)
	blockedG  *obs.Gauge // 1 while the group is blocked for a view change
	flushLast *obs.Gauge // size of the last decided flush set
	parkedG   *obs.Gauge // multicasts currently parked on flow control

	// Timings.
	deliverLatency *obs.Histogram // enqueue -> application deliver
	viewChange     *obs.Histogram // block (t5) -> install (t7)
	joinDur        *obs.Histogram // Start -> first installed view (joiner)
	parkDur        *obs.Histogram // multicast park -> commit (flow control)

	// Data-plane batching.
	batchSize *obs.Histogram // messages committed per multicast transaction

	// Partition-healing timings and sizes.
	mergeDur   *obs.Histogram // view_merge_seconds: merge start -> union install
	mergeBytes *obs.Histogram // view_merge_delta_bytes: contribution bytes per merge
}

func newEngMetrics(ob *obs.Obs) engMetrics {
	drop := func(reason obs.DropReason) *obs.Counter {
		return ob.CounterL("engine_dropped_total", obs.L("reason", string(reason)))
	}
	ignored := func(reason string) *obs.Counter {
		return ob.CounterL("engine_decisions_ignored_total", obs.L("reason", reason))
	}
	return engMetrics{
		multicast:      ob.Counter("engine_multicast_total"),
		delivered:      ob.Counter("engine_delivered_total"),
		viewsInstalled: ob.Counter("engine_views_installed_total"),
		purgedOutgoing: ob.Counter("engine_purged_outgoing_total"),
		flushAdded:     ob.Counter("engine_flush_added_total"),
		parks:          ob.Counter("engine_multicast_parks_total"),
		stablePruned:   ob.Counter("engine_stable_pruned_total"),
		joinBytesSent:  ob.Counter("engine_join_bytes_sent_total"),
		joinBytesRecv:  ob.Counter("engine_join_bytes_recv_total"),

		dropStale:       drop(obs.DropStaleView),
		dropCovered:     drop(obs.DropCovered),
		dropStaleCredit: drop(obs.DropStaleCredit),
		dropDefer:       drop(obs.DropDeferOverflow),
		dropBadType:     drop(obs.DropBadType),
		dropUnknownCtl:  drop(obs.DropUnknownCtl),
		dropExpelled:    drop(obs.DropExpelled),
		sendErrors:      ob.Counter("engine_send_errors_total"),
		decisionFails:   ob.Counter("engine_decision_failures_total"),
		creditFlushes:   ob.Counter("engine_credit_flushes_total"),

		decisionsIgnored: map[string]*obs.Counter{
			ignoreDuplicate:  ignored(ignoreDuplicate),
			ignoreNotBlocked: ignored(ignoreNotBlocked),
			ignoreWrongView:  ignored(ignoreWrongView),
		},

		mergesTotal: ob.Counter("view_merge_total"),
		mergeAborts: ob.Counter("view_merge_aborts_total"),

		view:      ob.Gauge("engine_view"),
		members:   ob.Gauge("engine_members"),
		qLen:      ob.Gauge("engine_todeliver_len"),
		qMax:      ob.Gauge("engine_todeliver_max"),
		histLen:   ob.Gauge("engine_history_len"),
		purgedQ:   ob.Gauge("engine_purged_todeliver"),
		blockedG:  ob.Gauge("engine_blocked"),
		flushLast: ob.Gauge("engine_last_flush_len"),
		parkedG:   ob.Gauge("engine_parked_current"),

		deliverLatency: ob.Histogram("engine_deliver_latency_seconds", obs.DurationBuckets),
		viewChange:     ob.Histogram("engine_view_change_seconds", obs.DurationBuckets),
		joinDur:        ob.Histogram("engine_join_seconds", obs.DurationBuckets),
		parkDur:        ob.Histogram("engine_multicast_park_seconds", obs.DurationBuckets),

		batchSize: ob.Histogram("engine_batch_size", obs.CountBuckets),

		mergeDur:   ob.Histogram("view_merge_seconds", obs.DurationBuckets),
		mergeBytes: ob.Histogram("view_merge_delta_bytes", obs.CountBuckets),
	}
}
