package core

import (
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// DataMsg is the [DATA, v, d] message of Figure 1: an application payload
// tagged with the view (epoch + id) it was multicast in and the sender's
// obsolescence metadata. The epoch matters once partitions heal: two
// sub-views advance view numbers independently, so the bare id no longer
// distinguishes "current view" from "other lineage's view".
type DataMsg struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Meta    obsolete.Msg
	Payload []byte
}

// Ref returns the global name of the view m was multicast in.
func (m DataMsg) Ref() ident.ViewRef { return ident.ViewRef{Epoch: m.Epoch, ID: m.View} }

// DataBatchMsg coalesces a run of DataMsgs from one sender into a single
// envelope: one channel operation, one inbox deposit and one type switch
// on the receiver cover the whole run. The batch is registered as a
// pointer type so placing it in an envelope's `any` boxes nothing.
//
// Batches are a transport-level amortisation only — the receiver processes
// the contained messages exactly as if they had arrived one by one, so
// every protocol obligation (per-sender FIFO, flow-control accounting,
// purge decisions) is untouched. A batch is never shared across
// goroutines after send: fault-injecting transports may duplicate an
// envelope, which aliases the same *DataBatchMsg into two deliveries, so
// receivers must not mutate it.
type DataBatchMsg struct {
	Msgs []DataMsg
}

// InitMsg is the [INIT, v, l] message of Figure 1, extended for dynamic
// membership: it triggers the view change removing the processes in Leave
// and admitting the processes in Join. Joiners do not take part in the
// flush or the consensus deciding the view that admits them; they are
// brought up to date afterwards by a StateMsg.
type InitMsg struct {
	View  ident.ViewID
	Epoch ident.Epoch
	Leave []ident.PID
	Join  []ident.PID
}

// JoinReqMsg is sent by a process outside the group to a contact member to
// ask admission; the envelope's From identifies the joiner. A member
// receiving it triggers a view change whose Join set contains the joiner —
// or, when the joiner is already a member of the current view (its state
// transfer was lost, e.g. the sponsor crashed), answers directly with a
// fresh StateMsg.
type JoinReqMsg struct{}

// StateMsg is the semantic state transfer that completes a join: the
// installed view, the sponsor's per-sender reception frontiers, and the
// non-obsolete unstable backlog — the delivered history and still-queued
// messages after purging them through the group's obsolescence relation.
// Because purging keeps those buffers O(window) (§2.3/§4.2), the transfer
// cost is O(window) rather than O(history).
type StateMsg struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Members []ident.PID
	// Recv maps each sender to the highest sequence number the sponsor had
	// received from it when the snapshot was taken; the joiner adopts it as
	// its reception frontier so direct copies of backlog messages are
	// recognised as duplicates.
	Recv    map[ident.PID]ident.Seq
	Backlog []DataMsg
}

// PredMsg is the [PRED, v, P] message of Figure 1: the sender's sequence
// of data messages accepted for delivery in view v (its local-pred set),
// in FIFO order.
type PredMsg struct {
	View  ident.ViewID
	Epoch ident.Epoch
	Msgs  []DataMsg
}

// CreditMsg implements the window-based flow control of the engine: the
// receiver returns credits to a sender as it consumes (delivers or purges)
// that sender's messages. A sender without credits buffers in its bounded
// outgoing queue and eventually blocks the application — the behaviour
// whose cost §5 measures.
type CreditMsg struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Credits int
}

// ProbeMsg is the partition-healing discovery beacon: an unblocked member
// with healing enabled periodically sends its current view (epoch + id +
// members) to processes it once shared a view with. A probe from a
// different lineage reveals a healed partition and starts a merge; a probe
// from a newer view of the *same* lineage tells a straggler it has been
// evicted.
type ProbeMsg struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Members []ident.PID
}

// Ref returns the sender's view ref.
func (m ProbeMsg) Ref() ident.ViewRef { return ident.ViewRef{Epoch: m.Epoch, ID: m.View} }

// SplitMsg is broadcast by the lowest-ordered live member of a blocked
// view change that cannot reach a majority: the declared survivor set
// continues as a minority sub-view under a fresh split epoch instead of
// wedging forever. View/Epoch name the parent (current) view; Members is
// the survivor set, whose lowest PID must be the declaring leader. As
// suspicions accrue, successively lower-ordered survivors declare
// successively smaller sets — the rotating-proposer arbitration between
// competing continuations; consensus picks exactly one per epoch.
type SplitMsg struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Members []ident.PID
}

// Ref returns the parent view ref the split continues from.
func (m SplitMsg) Ref() ident.ViewRef { return ident.ViewRef{Epoch: m.Epoch, ID: m.View} }

// MergeSide names one of the two sub-views being merged.
type MergeSide struct {
	View    ident.ViewID
	Epoch   ident.Epoch
	Members []ident.PID
}

// Ref returns the side's view ref.
func (s MergeSide) Ref() ident.ViewRef { return ident.ViewRef{Epoch: s.Epoch, ID: s.View} }

// MergeMsg announces a merge between two healed sub-views and is flooded
// to their union. The pair is normalised (A.Ref < B.Ref) so every process
// derives the same union view ref. A member of either side that receives
// it blocks, re-forwards the announcement, contributes a MergePredMsg and
// awaits the union-view consensus.
type MergeMsg struct {
	A, B MergeSide
}

// MergePredMsg is one process's contribution to a merge: its local flush
// set (the messages accepted for delivery in its current view, purged) and
// its per-sender reception frontiers — the bidirectional analogue of PR 5's
// StateMsg, O(window) by the same purging argument. Decline is sent by a
// process that cannot take part (already expelled, or mid-change) so the
// coordinators can count it out instead of waiting for suspicion.
type MergePredMsg struct {
	Merge   ident.ViewRef // the union view ref under decision
	Decline bool
	Msgs    []DataMsg
	Recv    map[ident.PID]ident.Seq
}

func init() {
	codec.Register[DataMsg](codec.TDataMsg, appendDataMsg, readDataMsgStrict)
	codec.Register[InitMsg](codec.TInitMsg, appendInitMsg, readInitMsg)
	codec.Register[PredMsg](codec.TPredMsg, appendPredMsg, readPredMsg)
	codec.Register[CreditMsg](codec.TCreditMsg, appendCreditMsg, readCreditMsg)
	codec.Register[StableMsg](codec.TStableMsg, appendStableMsg, readStableMsg)
	codec.Register[JoinReqMsg](codec.TJoinReqMsg,
		func(dst []byte, _ JoinReqMsg) []byte { return dst },
		func(_ *codec.Reader) (JoinReqMsg, error) { return JoinReqMsg{}, nil })
	codec.Register[StateMsg](codec.TStateMsg, appendStateMsg, readStateMsg)
	codec.Register[*DataBatchMsg](codec.TDataBatchMsg, appendDataBatchMsg, readDataBatchMsg)
	codec.Register[ProbeMsg](codec.TProbeMsg, appendProbeMsg, readProbeMsg)
	codec.Register[SplitMsg](codec.TSplitMsg, appendSplitMsg, readSplitMsg)
	codec.Register[MergeMsg](codec.TMergeMsg, appendMergeMsg, readMergeMsg)
	codec.Register[MergePredMsg](codec.TMergePredMsg, appendMergePredMsg, readMergePredMsg)
}

// ---- binary encoders (internal/codec) --------------------------------------

// capHint clamps a wire-supplied element count before it becomes a
// pre-allocation: Reader.Count bounds counts in *bytes* of remaining
// input, but our elements are multi-byte structs, so a corrupt count
// could otherwise demand an ~80x amplified up-front allocation. Slices
// and maps grow past the hint naturally; truncated input still fails at
// the first missing element.
func capHint(n int) int {
	const max = 1024
	if n > max {
		return max
	}
	return n
}

func appendDataMsg(dst []byte, m DataMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	dst = codec.AppendString(dst, string(m.Meta.Sender))
	dst = codec.AppendUvarint(dst, uint64(m.Meta.Seq))
	dst = codec.AppendBytes(dst, m.Meta.Annot)
	return codec.AppendBytes(dst, m.Payload)
}

func readDataMsg(r *codec.Reader) DataMsg {
	var m DataMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Meta.Sender = ident.PID(r.String())
	m.Meta.Seq = ident.Seq(r.Uvarint())
	m.Meta.Annot = r.Bytes()
	m.Payload = r.Bytes()
	return m
}

func readDataMsgStrict(r *codec.Reader) (DataMsg, error) {
	m := readDataMsg(r)
	return m, r.Err()
}

func appendDataBatchMsg(dst []byte, m *DataBatchMsg) []byte {
	return appendDataMsgs(dst, m.Msgs)
}

func readDataBatchMsg(r *codec.Reader) (*DataBatchMsg, error) {
	m := &DataBatchMsg{Msgs: readDataMsgs(r)}
	return m, r.Err()
}

func appendInitMsg(dst []byte, m InitMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	dst = appendPIDs(dst, m.Leave)
	return appendPIDs(dst, m.Join)
}

func readInitMsg(r *codec.Reader) (InitMsg, error) {
	var m InitMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Leave = readPIDs(r)
	m.Join = readPIDs(r)
	return m, r.Err()
}

func appendPIDs(dst []byte, ps []ident.PID) []byte {
	dst = codec.AppendCount(dst, len(ps), ps == nil)
	for _, p := range ps {
		dst = codec.AppendString(dst, string(p))
	}
	return dst
}

func readPIDs(r *codec.Reader) []ident.PID {
	n, isNil := r.Count()
	if isNil {
		return nil
	}
	out := make([]ident.PID, 0, capHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, ident.PID(r.String()))
	}
	return out
}

// appendSeqMap encodes a per-sender frontier map with sorted keys so the
// encoding is deterministic across processes (and its size comparable in
// tests).
func appendSeqMap(dst []byte, m map[ident.PID]ident.Seq) []byte {
	dst = codec.AppendCount(dst, len(m), m == nil)
	keys := make([]ident.PID, 0, len(m))
	for p := range m {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		dst = codec.AppendString(dst, string(p))
		dst = codec.AppendUvarint(dst, uint64(m[p]))
	}
	return dst
}

func readSeqMap(r *codec.Reader) map[ident.PID]ident.Seq {
	n, isNil := r.Count()
	if isNil {
		return nil
	}
	m := make(map[ident.PID]ident.Seq, capHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		p := ident.PID(r.String())
		m[p] = ident.Seq(r.Uvarint())
	}
	return m
}

func appendStateMsg(dst []byte, m StateMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	dst = appendPIDs(dst, m.Members)
	dst = appendSeqMap(dst, m.Recv)
	return appendDataMsgs(dst, m.Backlog)
}

func readStateMsg(r *codec.Reader) (StateMsg, error) {
	var m StateMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Members = readPIDs(r)
	m.Recv = readSeqMap(r)
	m.Backlog = readDataMsgs(r)
	return m, r.Err()
}

func appendPredMsg(dst []byte, m PredMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	return appendDataMsgs(dst, m.Msgs)
}

func readPredMsg(r *codec.Reader) (PredMsg, error) {
	var m PredMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Msgs = readDataMsgs(r)
	return m, r.Err()
}

func appendProbeMsg(dst []byte, m ProbeMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	return appendPIDs(dst, m.Members)
}

func readProbeMsg(r *codec.Reader) (ProbeMsg, error) {
	var m ProbeMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Members = readPIDs(r)
	return m, r.Err()
}

func appendSplitMsg(dst []byte, m SplitMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	return appendPIDs(dst, m.Members)
}

func readSplitMsg(r *codec.Reader) (SplitMsg, error) {
	var m SplitMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Members = readPIDs(r)
	return m, r.Err()
}

func appendMergeSide(dst []byte, s MergeSide) []byte {
	dst = codec.AppendUvarint(dst, uint64(s.View))
	dst = codec.AppendUvarint(dst, uint64(s.Epoch))
	return appendPIDs(dst, s.Members)
}

func readMergeSide(r *codec.Reader) MergeSide {
	var s MergeSide
	s.View = ident.ViewID(r.Uvarint())
	s.Epoch = ident.Epoch(r.Uvarint())
	s.Members = readPIDs(r)
	return s
}

func appendMergeMsg(dst []byte, m MergeMsg) []byte {
	dst = appendMergeSide(dst, m.A)
	return appendMergeSide(dst, m.B)
}

func readMergeMsg(r *codec.Reader) (MergeMsg, error) {
	var m MergeMsg
	m.A = readMergeSide(r)
	m.B = readMergeSide(r)
	return m, r.Err()
}

func appendMergePredMsg(dst []byte, m MergePredMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.Merge.Epoch))
	dst = codec.AppendUvarint(dst, uint64(m.Merge.ID))
	dst = codec.AppendByte(dst, boolByte(m.Decline))
	dst = appendDataMsgs(dst, m.Msgs)
	return appendSeqMap(dst, m.Recv)
}

func readMergePredMsg(r *codec.Reader) (MergePredMsg, error) {
	var m MergePredMsg
	m.Merge.Epoch = ident.Epoch(r.Uvarint())
	m.Merge.ID = ident.ViewID(r.Uvarint())
	m.Decline = r.Byte() != 0
	m.Msgs = readDataMsgs(r)
	m.Recv = readSeqMap(r)
	return m, r.Err()
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendDataMsgs(dst []byte, msgs []DataMsg) []byte {
	dst = codec.AppendCount(dst, len(msgs), msgs == nil)
	for _, dm := range msgs {
		dst = appendDataMsg(dst, dm)
	}
	return dst
}

func readDataMsgs(r *codec.Reader) []DataMsg {
	n, isNil := r.Count()
	if isNil {
		return nil
	}
	out := make([]DataMsg, 0, capHint(n))
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, readDataMsg(r))
	}
	return out
}

func appendCreditMsg(dst []byte, m CreditMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	return codec.AppendVarint(dst, int64(m.Credits))
}

func readCreditMsg(r *codec.Reader) (CreditMsg, error) {
	var m CreditMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Credits = int(r.Varint())
	return m, r.Err()
}

func appendStableMsg(dst []byte, m StableMsg) []byte {
	dst = codec.AppendUvarint(dst, uint64(m.View))
	dst = codec.AppendUvarint(dst, uint64(m.Epoch))
	return appendSeqMap(dst, m.Recv)
}

func readStableMsg(r *codec.Reader) (StableMsg, error) {
	var m StableMsg
	m.View = ident.ViewID(r.Uvarint())
	m.Epoch = ident.Epoch(r.Uvarint())
	m.Recv = readSeqMap(r)
	return m, r.Err()
}

// ---- consensus value -------------------------------------------------------

// consensusValue is the tuple agreed by the view-change consensus: the
// next view (epoch + id + members), the flush set (pred-view) to deliver
// before installing it, and — for merge decisions only — the combined
// per-sender reception frontiers both sides advance to (nil otherwise).
type consensusValue struct {
	Next View
	Pred []DataMsg
	Recv map[ident.PID]ident.Seq
}

// valueFormat versions the consensus value encoding; bumping it rejects
// payloads from incompatible releases instead of mis-decoding them.
// Format 2 added the lineage epoch and the merge frontier map.
const valueFormat byte = 2

func encodeValue(v consensusValue) ([]byte, error) {
	dst := make([]byte, 0, 64+32*len(v.Pred))
	dst = codec.AppendByte(dst, valueFormat)
	dst = codec.AppendUvarint(dst, uint64(v.Next.ID))
	dst = codec.AppendUvarint(dst, uint64(v.Next.Epoch))
	dst = codec.AppendCount(dst, len(v.Next.Members), v.Next.Members == nil)
	for _, p := range v.Next.Members {
		dst = codec.AppendString(dst, string(p))
	}
	dst = appendDataMsgs(dst, v.Pred)
	return appendSeqMap(dst, v.Recv), nil
}

func decodeValue(p []byte) (consensusValue, error) {
	r := codec.NewReader(p)
	if f := r.Byte(); r.Err() == nil && f != valueFormat {
		return consensusValue{}, fmt.Errorf("core: decode consensus value: unknown format %d", f)
	}
	var v consensusValue
	v.Next.ID = ident.ViewID(r.Uvarint())
	v.Next.Epoch = ident.Epoch(r.Uvarint())
	if n, isNil := r.Count(); !isNil {
		members := make([]ident.PID, 0, capHint(n))
		for i := 0; i < n && r.Err() == nil; i++ {
			members = append(members, ident.PID(r.String()))
		}
		v.Next.Members = ident.PIDs(members)
	}
	v.Pred = readDataMsgs(r)
	v.Recv = readSeqMap(r)
	if err := r.Close(); err != nil {
		return consensusValue{}, fmt.Errorf("core: decode consensus value: %w", err)
	}
	return v, nil
}

// viewInstance names the consensus instance deciding the view ref. The
// epoch is part of the name — that is the point of lineage-aware identity:
// two partitions independently deciding their next view run *different*
// consensus instances instead of colliding on "svs-view/<id+1>".
func viewInstance(ref ident.ViewRef) string {
	return fmt.Sprintf("svs-view/%x/%d", uint64(ref.Epoch), uint64(ref.ID))
}
