package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// DataMsg is the [DATA, v, d] message of Figure 1: an application payload
// tagged with the view it was multicast in and the sender's obsolescence
// metadata.
type DataMsg struct {
	View    ident.ViewID
	Meta    obsolete.Msg
	Payload []byte
}

// InitMsg is the [INIT, v, l] message of Figure 1: it triggers the view
// change removing the processes in Leave.
type InitMsg struct {
	View  ident.ViewID
	Leave []ident.PID
}

// PredMsg is the [PRED, v, P] message of Figure 1: the sender's sequence
// of data messages accepted for delivery in view v (its local-pred set),
// in FIFO order.
type PredMsg struct {
	View ident.ViewID
	Msgs []DataMsg
}

// CreditMsg implements the window-based flow control of the engine: the
// receiver returns credits to a sender as it consumes (delivers or purges)
// that sender's messages. A sender without credits buffers in its bounded
// outgoing queue and eventually blocks the application — the behaviour
// whose cost §5 measures.
type CreditMsg struct {
	View    ident.ViewID
	Credits int
}

func init() {
	gob.Register(DataMsg{})
	gob.Register(InitMsg{})
	gob.Register(PredMsg{})
	gob.Register(CreditMsg{})
}

// consensusValue is the pair agreed by the view-change consensus: the next
// view and the flush set (pred-view) to deliver before installing it.
type consensusValue struct {
	Next View
	Pred []DataMsg
}

func encodeValue(v consensusValue) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("core: encode consensus value: %w", err)
	}
	return buf.Bytes(), nil
}

func decodeValue(p []byte) (consensusValue, error) {
	var v consensusValue
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&v); err != nil {
		return consensusValue{}, fmt.Errorf("core: decode consensus value: %w", err)
	}
	return v, nil
}

// viewInstance names the consensus instance deciding view id.
func viewInstance(id ident.ViewID) string {
	return fmt.Sprintf("svs-view/%d", id)
}
