package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// TestGroupOverTCP runs a full group — engines, heartbeat failure
// detectors, consensus — over real TCP sockets on localhost: multicast
// with purging semantics, then a view change.
func TestGroupOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration skipped in -short mode")
	}
	groupOverTCP(t, transport.TCPOptions{})
}

func groupOverTCP(t *testing.T, opts transport.TCPOptions) {
	pids := ident.NewPIDs("t0", "t1", "t2")
	view := View{ID: 1, Members: pids}
	rel := obsolete.KEnumeration{K: 32}

	// Bootstrap: listen first, exchange addresses, then start engines.
	nets := make(map[ident.PID]*transport.TCPNetwork, len(pids))
	for _, p := range pids {
		n, err := transport.NewTCPNetworkOpts(p, "127.0.0.1:0", nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		nets[p] = n
	}
	for _, p := range pids {
		for _, q := range pids {
			if p != q {
				nets[p].AddPeer(q, nets[q].Addr())
			}
		}
	}

	engines := make(map[ident.PID]*Engine, len(pids))
	dets := make(map[ident.PID]*fd.Heartbeat, len(pids))
	for _, p := range pids {
		det := fd.NewHeartbeat(nets[p], pids, fd.HeartbeatOptions{
			Interval: 10 * time.Millisecond,
		})
		eng, err := New(Config{
			Self: p, Endpoint: nets[p], Detector: det, InitialView: view,
			Relation:     rel,
			ToDeliverCap: 16, OutgoingCap: 16, Window: 16,
		})
		if err != nil {
			t.Fatal(err)
		}
		det.Start()
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		engines[p] = eng
		dets[p] = det
	}
	t.Cleanup(func() {
		for _, p := range pids {
			engines[p].Stop()
			dets[p].Stop()
			nets[p].Close()
		}
	})

	// Delivery loops counting data and watching for the new view.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	gotLast := make(map[ident.PID]bool)
	gotView := make(map[ident.PID]ident.ViewID)
	var wg sync.WaitGroup
	const count = 40
	for _, p := range pids {
		wg.Add(1)
		go func(p ident.PID) {
			defer wg.Done()
			for {
				d, err := engines[p].Deliver(ctx)
				if err != nil {
					return
				}
				mu.Lock()
				switch d.Kind {
				case DeliverData:
					if d.Meta.Seq == count {
						gotLast[p] = true
					}
				case DeliverView, DeliverExpelled:
					gotView[p] = d.NewView.ID
				}
				mu.Unlock()
			}
		}(p)
	}
	defer wg.Wait()
	defer cancel()

	// t0 multicasts item updates over the wire.
	tr := obsolete.NewItemTracker(obsolete.NewKTracker(32))
	for i := 0; i < count; i++ {
		seq, annot := tr.Update(uint32(i % 4))
		meta := obsolete.Msg{Sender: "t0", Seq: seq, Annot: annot}
		mctx, mcancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := engines["t0"].Multicast(mctx, meta, []byte(fmt.Sprintf("v%d", i)))
		mcancel()
		if err != nil {
			t.Fatalf("multicast %d: %v", i, err)
		}
	}

	waitCond(t, "final message everywhere", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pids {
			if !gotLast[p] {
				return false
			}
		}
		return true
	})

	// A view change over TCP: INIT/PRED/consensus all cross the sockets.
	if err := engines["t0"].RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "view 2 everywhere", func() bool {
		mu.Lock()
		defer mu.Unlock()
		for _, p := range pids {
			if gotView[p] < 2 {
				return false
			}
		}
		return true
	})
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(20 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
