package core

import (
	"repro/internal/ident"
	"repro/internal/queue"
	"repro/internal/transport"
)

// flowState implements the credit window flow control that reproduces the
// paper's buffer model in a live group: every receiver grants each sender
// a window of Window buffer slots; a sender without credits queues in a
// bounded per-peer outgoing queue; a full outgoing queue blocks the
// application's multicast. Credits flow back as the receiver delivers or
// purges — purging is what lets a slow SVS receiver keep its senders
// unblocked (§2.3).
//
// The zero Window disables the mechanism: sends go straight to the
// network.
type flowState struct {
	cfg Config

	avail map[ident.PID]int          // credits I hold at each peer (sender side)
	out   map[ident.PID]*queue.Queue // pending sends per peer
	owed  map[ident.PID]int          // freed slots not yet granted (receiver side)
}

func newFlowState(cfg Config, members ident.PIDs) *flowState {
	f := &flowState{cfg: cfg}
	f.reset(members)
	return f
}

// reset re-arms the window for a new view: both sides return to a full
// window by convention, with empty outgoing queues.
func (f *flowState) reset(members ident.PIDs) {
	f.avail = make(map[ident.PID]int, len(members))
	f.out = make(map[ident.PID]*queue.Queue, len(members))
	f.owed = make(map[ident.PID]int, len(members))
	for _, p := range members {
		if p == f.cfg.Self {
			continue
		}
		f.avail[p] = f.cfg.Window
		f.out[p] = queue.New(f.cfg.Relation, f.cfg.OutgoingCap)
	}
}

// enabled reports whether credit flow control is active.
func (f *flowState) enabled() bool { return f.cfg.Window > 0 }

// hasCredit reports whether a message to p could be sent immediately.
func (f *flowState) hasCredit(p ident.PID) bool {
	return !f.enabled() || f.avail[p] > 0
}

// takeCredit consumes one credit for a send to p, reporting false when the
// message must be queued instead.
func (f *flowState) takeCredit(p ident.PID) bool {
	if !f.enabled() {
		return true
	}
	if f.avail[p] <= 0 {
		return false
	}
	f.avail[p]--
	return true
}

// credit adds credits granted by peer p.
func (f *flowState) credit(p ident.PID, n int) {
	if !f.enabled() || n <= 0 {
		return
	}
	f.avail[p] += n
}

// pending returns the outgoing queue towards p (nil when flow control is
// disabled).
func (f *flowState) pending(p ident.PID) *queue.Queue {
	if !f.enabled() {
		return nil
	}
	return f.out[p]
}

// freed records that one buffer slot previously charged to sender p is
// free again (delivered, purged, or dropped as covered), granting credits
// in batches to bound control chatter.
func (f *flowState) freed(p ident.PID, e *Engine) {
	if !f.enabled() {
		return
	}
	f.owed[p]++
	batch := f.cfg.Window / 4
	if batch < 1 {
		batch = 1
	}
	if f.owed[p] >= batch {
		n := f.owed[p]
		f.owed[p] = 0
		_ = e.cfg.Endpoint.Send(p, e.cfg.Group, transport.Ctl, CreditMsg{View: e.cv.ID, Credits: n})
	}
}

// drainOutgoing flushes the pending queue towards p while credits last.
func (e *Engine) drainOutgoing(p ident.PID) {
	out := e.flow.pending(p)
	if out == nil {
		return
	}
	for out.Len() > 0 && e.flow.hasCredit(p) {
		it, _ := out.PopHead()
		if it.View != uint64(e.cv.ID) {
			continue // stale: the view changed while it waited
		}
		if !e.flow.takeCredit(p) {
			break
		}
		_ = e.cfg.Endpoint.Send(p, e.cfg.Group, transport.Data, DataMsg{
			View: ident.ViewID(it.View), Meta: it.Meta, Payload: it.Payload,
		})
	}
}
