package core

import (
	"repro/internal/ident"
	"repro/internal/queue"
	"repro/internal/transport"
)

// flowState implements the credit window flow control that reproduces the
// paper's buffer model in a live group: every receiver grants each sender
// a window of Window buffer slots; a sender without credits queues in a
// bounded per-peer outgoing queue; a full outgoing queue blocks the
// application's multicast. Credits flow back as the receiver delivers or
// purges — purging is what lets a slow SVS receiver keep its senders
// unblocked (§2.3).
//
// The zero Window disables the mechanism: sends go straight to the
// network.
type flowState struct {
	cfg Config

	avail map[ident.PID]int          // credits I hold at each peer (sender side)
	out   map[ident.PID]*queue.Queue // pending sends per peer

	// Receiver-side ledger per sender. granted is the total number of
	// credits handed out this view (the initial window included); used
	// counts the data messages received, each of which consumed one of
	// those credits at the sender. granted-used is therefore an upper
	// bound on the credits the sender still holds — zero means the sender
	// is known blocked.
	owed    map[ident.PID]int // freed slots not yet granted
	granted map[ident.PID]int
	used    map[ident.PID]int
}

func newFlowState(cfg Config, members ident.PIDs) *flowState {
	f := &flowState{cfg: cfg}
	f.reset(members)
	return f
}

// reset re-arms the window for a new view: both sides return to a full
// window by convention, with empty outgoing queues. It handles shrinking
// and growing membership alike — every peer of the new view gets a fresh
// window and ledger, state for departed peers is dropped.
func (f *flowState) reset(members ident.PIDs) {
	f.avail = make(map[ident.PID]int, len(members))
	f.out = make(map[ident.PID]*queue.Queue, len(members))
	f.owed = make(map[ident.PID]int, len(members))
	f.granted = make(map[ident.PID]int, len(members))
	f.used = make(map[ident.PID]int, len(members))
	for _, p := range members {
		if p == f.cfg.Self {
			continue
		}
		f.avail[p] = f.cfg.Window
		f.out[p] = queue.New(f.cfg.Relation, f.cfg.OutgoingCap)
		f.granted[p] = f.cfg.Window
	}
}

// enabled reports whether credit flow control is active.
func (f *flowState) enabled() bool { return f.cfg.Window > 0 }

// hasCredit reports whether a message to p could be sent immediately.
func (f *flowState) hasCredit(p ident.PID) bool {
	return !f.enabled() || f.avail[p] > 0
}

// takeCredit consumes one credit for a send to p, reporting false when the
// message must be queued instead.
func (f *flowState) takeCredit(p ident.PID) bool {
	if !f.enabled() {
		return true
	}
	if f.avail[p] <= 0 {
		return false
	}
	f.avail[p]--
	return true
}

// credit adds credits granted by peer p.
func (f *flowState) credit(p ident.PID, n int) {
	if !f.enabled() || n <= 0 {
		return
	}
	f.avail[p] += n
}

// pending returns the outgoing queue towards p (nil when flow control is
// disabled).
func (f *flowState) pending(p ident.PID) *queue.Queue {
	if !f.enabled() {
		return nil
	}
	return f.out[p]
}

// received records one current-view data message arriving from sender p:
// it consumed one of the credits this receiver granted.
func (f *flowState) received(p ident.PID) {
	if !f.enabled() {
		return
	}
	f.used[p]++
}

// freed records that one buffer slot previously charged to sender p is
// free again (delivered, purged, or dropped as covered), granting credits
// in batches to bound control chatter. The batching must not strand a
// sender: when p has consumed every credit granted so far it is known
// blocked and cannot generate the traffic that would push owed over the
// batch threshold, so whatever is owed is flushed immediately.
func (f *flowState) freed(p ident.PID, e *Engine) {
	if !f.enabled() {
		return
	}
	f.owed[p]++
	batch := f.cfg.Window / 4
	if batch < 1 {
		batch = 1
	}
	if f.owed[p] >= batch || f.used[p] >= f.granted[p] {
		n := f.owed[p]
		f.owed[p] = 0
		f.granted[p] += n
		e.m.creditFlushes.Inc()
		e.send(p, transport.Ctl, CreditMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Credits: n})
	}
}

// drainOutgoing flushes the pending queue towards p while credits last,
// coalescing the whole run into one DataBatchMsg envelope. The head is
// only popped once its send is paid for: a message must never be lost
// between PopHead and takeCredit.
func (e *Engine) drainOutgoing(p ident.PID) {
	out := e.flow.pending(p)
	if out == nil {
		return
	}
	var run []DataMsg
	for {
		it, ok := out.PeekHead()
		if !ok {
			break
		}
		if it.View != uint64(e.cv.ID) || it.Epoch != uint64(e.cv.Epoch) {
			out.PopHead() // stale: the view changed while it waited
			continue
		}
		if !e.flow.takeCredit(p) {
			break // out of credits: the head stays parked
		}
		out.PopHead()
		run = append(run, DataMsg{
			View: ident.ViewID(it.View), Epoch: ident.Epoch(it.Epoch), Meta: it.Meta, Payload: it.Payload,
		})
	}
	switch len(run) {
	case 0:
	case 1:
		e.send(p, transport.Data, run[0])
	default:
		// The slice is handed to the transport (fault injection may
		// duplicate the envelope), so ownership transfers with the send.
		e.send(p, transport.Data, &DataBatchMsg{Msgs: run})
	}
}
