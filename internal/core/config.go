package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// Config assembles an Engine. Self, Endpoint, Detector and InitialView are
// required; everything else has working defaults.
type Config struct {
	// Self is this process's identifier; it must be a member of
	// InitialView and equal Endpoint.Self().
	Self ident.PID
	// Group identifies the SVS group this engine is a member of. All of
	// the engine's traffic travels in this group's transport inboxes, so
	// many engines can share one Endpoint (see Node). The zero value —
	// ident.NodeGroup — is fine for standalone single-group deployments;
	// the Node runtime reserves it for node-scoped traffic and assigns
	// application groups non-zero identifiers.
	Group ident.GroupID
	// Endpoint connects the process to its peers; it may be shared with
	// other groups and with the node's failure detector.
	Endpoint transport.Endpoint
	// Detector is the failure detector oracle. The engine consumes its
	// Events channel.
	Detector fd.Detector
	// InitialView is the agreed first view (same at every member).
	InitialView View
	// Relation is the obsolescence relation; nil means the empty relation,
	// i.e. classic View Synchrony.
	Relation obsolete.Relation

	// ToDeliverCap bounds the delivery queue (Figure 1's to-deliver).
	// 0 means unbounded. A full queue exerts flow control on senders.
	ToDeliverCap int
	// OutgoingCap bounds each per-peer outgoing queue used when the peer
	// is out of window credits. 0 means unbounded.
	OutgoingCap int
	// Window is the per-sender flow-control window (credits) a receiver
	// grants. 0 disables credit flow control entirely: sends go straight
	// to the network and only ToDeliverCap provides backpressure (the
	// receiver simply stops reading).
	Window int

	// AutoEvict makes the engine initiate a view change excluding any
	// process the failure detector suspects. Applications that prefer to
	// decide themselves (the paper argues eviction should be a last
	// resort) leave it false and call RequestViewChange explicitly.
	AutoEvict bool

	// StabilityInterval enables reception-frontier gossip at the given
	// period: messages known received by every member are pruned from the
	// delivery history and excluded from view-change flush sets (see
	// stability.go). Zero disables stability tracking.
	StabilityInterval time.Duration
}

// Errors returned by the engine facade.
var (
	ErrStopped   = errors.New("core: engine stopped")
	ErrExpelled  = errors.New("core: process expelled from the group")
	ErrNotMember = errors.New("core: process not in current view")
	ErrBadSeq    = errors.New("core: multicast sequence number not contiguous")
)

func (c *Config) validate() error {
	if c.Self == "" {
		return fmt.Errorf("core: config: Self is required")
	}
	if c.Endpoint == nil {
		return fmt.Errorf("core: config: Endpoint is required")
	}
	if c.Endpoint.Self() != c.Self {
		return fmt.Errorf("core: config: Endpoint.Self() %q != Self %q", c.Endpoint.Self(), c.Self)
	}
	if c.Detector == nil {
		return fmt.Errorf("core: config: Detector is required")
	}
	if len(c.InitialView.Members) == 0 {
		return fmt.Errorf("core: config: InitialView must have members")
	}
	if !c.InitialView.Includes(c.Self) {
		return fmt.Errorf("core: config: Self %q not in InitialView %v", c.Self, c.InitialView.Members)
	}
	if c.ToDeliverCap < 0 || c.OutgoingCap < 0 || c.Window < 0 {
		return fmt.Errorf("core: config: negative capacity")
	}
	if c.Relation == nil {
		c.Relation = obsolete.Empty{}
	}
	return nil
}
