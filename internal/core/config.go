package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// Config assembles an Engine. Self, Endpoint, Detector and InitialView are
// required; everything else has working defaults.
type Config struct {
	// Self is this process's identifier; it must be a member of
	// InitialView and equal Endpoint.Self().
	Self ident.PID
	// Group identifies the SVS group this engine is a member of. All of
	// the engine's traffic travels in this group's transport inboxes, so
	// many engines can share one Endpoint (see Node). The zero value —
	// ident.NodeGroup — is fine for standalone single-group deployments;
	// the Node runtime reserves it for node-scoped traffic and assigns
	// application groups non-zero identifiers.
	Group ident.GroupID
	// Endpoint connects the process to its peers; it may be shared with
	// other groups and with the node's failure detector.
	Endpoint transport.Endpoint
	// Detector is the failure detector oracle. The engine consumes its
	// Events channel.
	Detector fd.Detector
	// InitialView is the agreed first view (same at every member). It is
	// ignored when Join is set: a joiner learns its first view from the
	// group's state transfer.
	InitialView View
	// Join, when non-nil, starts the engine as a joiner of an already
	// running group instead of a founding member: the engine asks the
	// contacts for admission and installs its first view — membership,
	// reception frontiers and the non-obsolete backlog — from the state
	// transfer that follows the admitting view change.
	Join *JoinSpec
	// Relation is the obsolescence relation; nil means the empty relation,
	// i.e. classic View Synchrony.
	Relation obsolete.Relation
	// Obs supplies the engine's clock, metrics and structured events. All of
	// the engine's timestamps and tickers come from its Clock, so tests can
	// drive the protocol under a deterministic obs.Fake. Nil means the wall
	// clock with no metrics and no events.
	Obs *obs.Obs

	// ToDeliverCap bounds the delivery queue (Figure 1's to-deliver).
	// 0 means unbounded. A full queue exerts flow control on senders.
	ToDeliverCap int
	// OutgoingCap bounds each per-peer outgoing queue used when the peer
	// is out of window credits. 0 means unbounded.
	OutgoingCap int
	// Window is the per-sender flow-control window (credits) a receiver
	// grants. 0 disables credit flow control entirely: sends go straight
	// to the network and only ToDeliverCap provides backpressure (the
	// receiver simply stops reading).
	Window int

	// AutoEvict makes the engine initiate a view change excluding any
	// process the failure detector suspects. Applications that prefer to
	// decide themselves (the paper argues eviction should be a last
	// resort) leave it false and call RequestViewChange explicitly.
	AutoEvict bool

	// StabilityInterval enables reception-frontier gossip at the given
	// period: messages known received by every member are pruned from the
	// delivery history and excluded from view-change flush sets (see
	// stability.go). Zero disables stability tracking.
	StabilityInterval time.Duration

	// Heal enables partition healing (see merge.go): a blocked view change
	// that cannot reach a majority continues as a minority sub-view under a
	// fresh lineage epoch instead of wedging, and sub-views that later hear
	// each other's probes merge back into a union view with a bidirectional
	// semantic state exchange. Nil disables healing: minorities block and
	// evicted processes stay out, the pre-healing behaviour.
	Heal *HealSpec

	// MaxDeferredCtl bounds the stash of control messages that arrive for a
	// future view and are replayed after the next install. Merge traffic
	// raises deferred-ctl pressure (both sides' control streams cross
	// during the handshake), so deployments using Heal may want more room.
	// 0 means defaultMaxDeferredCtl; overflow drops the oldest entry
	// (counted by engine_dropped_total{reason=defer_overflow}).
	MaxDeferredCtl int
}

// defaultMaxDeferredCtl is the MaxDeferredCtl applied when the config
// leaves it zero.
const defaultMaxDeferredCtl = 4096

// HealSpec configures partition healing (Config.Heal).
type HealSpec struct {
	// ProbeInterval is the period of the discovery beacon sent to processes
	// this member once shared a view with but no longer does. Probes are
	// tiny (a view ref + member list) and only flow while the engine is
	// unblocked, so the steady-state cost of a healed group is zero.
	// Default 500ms.
	ProbeInterval time.Duration
	// MergeTimeout aborts a merge whose union-view consensus does not
	// decide in time (e.g. the partition re-opened mid-handshake); the
	// engine unblocks and retries on a later probe. Default 20×ProbeInterval.
	MergeTimeout time.Duration
}

// JoinSpec configures a joining engine (Config.Join).
type JoinSpec struct {
	// Contacts are members of the running group to ask for admission. At
	// least one is required; all of them are asked (concurrent admission
	// requests are reconciled by the view-change consensus like any other
	// concurrent initiators).
	Contacts ident.PIDs
	// Retry is the base interval of the join retransmission backoff — it
	// covers a contact or sponsor crashing mid-handshake. Retransmission
	// n waits min(Retry·2ⁿ, RetryMax) scaled by the jitter factor, so a
	// herd of joiners hitting a recovering group spreads out instead of
	// hammering it in lockstep. Default 200ms.
	Retry time.Duration
	// RetryMax caps the exponential backoff. 0 means 16×Retry; values
	// below Retry are raised to Retry.
	RetryMax time.Duration
	// RetryJitter is the relative jitter applied to every interval: each
	// wait is scaled by a uniform factor in [1-RetryJitter, 1+RetryJitter].
	// It must be below 1. 0 means the default of 0.2; negative disables
	// jitter (deterministic intervals, what fake-clock tests want).
	RetryJitter float64
	// GiveUp abandons the join after this much time without a state
	// transfer: every parked and future call on the engine fails with
	// ErrJoinTimeout. It turns "all my contacts are dead" into a clean,
	// observable error instead of an eternal retry. 0 retries forever.
	GiveUp time.Duration
}

// Errors returned by the engine facade.
var (
	ErrStopped     = errors.New("core: engine stopped")
	ErrExpelled    = errors.New("core: process expelled from the group")
	ErrNotMember   = errors.New("core: process not in current view")
	ErrBadSeq      = errors.New("core: multicast sequence number not contiguous")
	ErrJoining     = errors.New("core: join in progress")
	ErrJoinTimeout = errors.New("core: join abandoned: no contact answered within the retry budget")
)

func (c *Config) validate() error {
	if c.Self == "" {
		return fmt.Errorf("core: config: Self is required")
	}
	if c.Endpoint == nil {
		return fmt.Errorf("core: config: Endpoint is required")
	}
	if c.Endpoint.Self() != c.Self {
		return fmt.Errorf("core: config: Endpoint.Self() %q != Self %q", c.Endpoint.Self(), c.Self)
	}
	if c.Detector == nil {
		return fmt.Errorf("core: config: Detector is required")
	}
	if c.Join != nil {
		contacts := c.Join.Contacts.Clone().Remove(c.Self)
		if len(contacts) == 0 {
			return fmt.Errorf("core: config: Join needs at least one contact other than Self")
		}
		retry := c.Join.Retry
		if retry <= 0 {
			retry = 200 * time.Millisecond
		}
		retryMax := c.Join.RetryMax
		if retryMax <= 0 {
			retryMax = 16 * retry
		}
		if retryMax < retry {
			retryMax = retry
		}
		jitter := c.Join.RetryJitter
		switch {
		case jitter < 0:
			jitter = 0
		case jitter == 0:
			jitter = 0.2
		case jitter >= 1:
			return fmt.Errorf("core: config: Join.RetryJitter %v must be below 1", jitter)
		}
		c.Join = &JoinSpec{
			Contacts:    contacts,
			Retry:       retry,
			RetryMax:    retryMax,
			RetryJitter: jitter,
			GiveUp:      c.Join.GiveUp,
		}
	} else {
		if len(c.InitialView.Members) == 0 {
			return fmt.Errorf("core: config: InitialView must have members")
		}
		if !c.InitialView.Includes(c.Self) {
			return fmt.Errorf("core: config: Self %q not in InitialView %v", c.Self, c.InitialView.Members)
		}
	}
	if c.ToDeliverCap < 0 || c.OutgoingCap < 0 || c.Window < 0 {
		return fmt.Errorf("core: config: negative capacity")
	}
	if c.MaxDeferredCtl < 0 {
		return fmt.Errorf("core: config: negative MaxDeferredCtl")
	}
	if c.MaxDeferredCtl == 0 {
		c.MaxDeferredCtl = defaultMaxDeferredCtl
	}
	if c.Heal != nil {
		probe := c.Heal.ProbeInterval
		if probe < 0 {
			return fmt.Errorf("core: config: negative Heal.ProbeInterval")
		}
		if probe == 0 {
			probe = 500 * time.Millisecond
		}
		timeout := c.Heal.MergeTimeout
		if timeout < 0 {
			return fmt.Errorf("core: config: negative Heal.MergeTimeout")
		}
		if timeout == 0 {
			timeout = 20 * probe
		}
		c.Heal = &HealSpec{ProbeInterval: probe, MergeTimeout: timeout}
	}
	if c.Relation == nil {
		c.Relation = obsolete.Empty{}
	}
	return nil
}
