package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

func TestDeliverContextCancel(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}})
	// Pause the driver so we can race our own Deliver against it... the
	// driver already consumes; use a second caller with a cancelled ctx.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.members["p0"].eng.Deliver(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMulticastContextTimeoutWhileParked(t *testing.T) {
	// Stopped consumer + tiny buffers: the multicast parks; its context
	// expiry must release the caller with ctx.Err.
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}, toDeliverCap: 2, outgoingCap: 2, window: 2})
	m := h.members["p1"]
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()

	var seq ident.Seq
	deadline := time.Now().Add(20 * time.Second)
	for {
		seq++
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := h.members["p0"].eng.Multicast(ctx, obsolete.Msg{Sender: "p0", Seq: seq}, nil)
		cancel()
		if errors.Is(err, context.DeadlineExceeded) {
			break // parked and timed out, as intended
		}
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: seq}, 1)
		if time.Now().After(deadline) {
			t.Fatal("producer never blocked against a paused consumer")
		}
	}
	// The engine survives: un-pause and verify the group still works. The
	// timed-out message was never committed, so the tracker retries the
	// same sequence number.
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
	retry := seq
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := h.members["p0"].eng.Multicast(ctx, obsolete.Msg{Sender: "p0", Seq: retry}, nil); err != nil {
		t.Fatalf("retry after timeout: %v", err)
	}
	h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: retry}, 1)
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", retry) })
	h.verify()
}

func TestStopWhileParkedReleasesCallers(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}, toDeliverCap: 1, outgoingCap: 1, window: 1})
	m := h.members["p1"]
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()

	errC := make(chan error, 1)
	go func() {
		var seq ident.Seq
		for {
			seq++
			_, err := h.members["p0"].eng.Multicast(context.Background(), obsolete.Msg{Sender: "p0", Seq: seq}, nil)
			if err != nil {
				errC <- err
				return
			}
		}
	}()
	// Give the producer time to park, then stop the engine under it.
	time.Sleep(100 * time.Millisecond)
	h.members["p0"].eng.Stop()
	select {
	case err := <-errC:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("err = %v, want ErrStopped", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked multicast not released by Stop")
	}
}

func TestSingleMemberGroup(t *testing.T) {
	// A group of one: multicast delivers locally; a view change runs
	// consensus with itself.
	net := transport.NewMemNetwork()
	ep, err := net.Endpoint("solo")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	det := fd.NewManual()
	defer det.Stop()
	eng, err := New(Config{
		Self: "solo", Endpoint: ep, Detector: det,
		InitialView: View{ID: 1, Members: ident.NewPIDs("solo")},
		Relation:    obsolete.Tagging{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := eng.Multicast(ctx, obsolete.Msg{Sender: "solo", Seq: 1, Annot: obsolete.TagAnnot(1)}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	d, err := eng.Deliver(ctx)
	if err != nil || d.Kind != DeliverData || string(d.Payload) != "x" {
		t.Fatalf("deliver = %+v, %v", d, err)
	}
	if err := eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	d, err = eng.Deliver(ctx)
	if err != nil || d.Kind != DeliverView || d.NewView.ID != 2 {
		t.Fatalf("view deliver = %+v, %v", d, err)
	}
}

func TestDoubleStopIsSafe(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}})
	h.members["p0"].eng.Stop()
	h.members["p0"].eng.Stop()
	if _, err := h.members["p0"].eng.Multicast(context.Background(), obsolete.Msg{Sender: "p0", Seq: 1}, nil); !errors.Is(err, ErrStopped) {
		t.Fatalf("multicast after stop: %v", err)
	}
	if _, err := h.members["p0"].eng.Deliver(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("deliver after stop: %v", err)
	}
	if err := h.members["p0"].eng.RequestViewChange(); !errors.Is(err, ErrStopped) {
		t.Fatalf("view change after stop: %v", err)
	}
}

func TestRapidBackToBackViewChanges(t *testing.T) {
	// Regression: an initiator that installs view v and immediately
	// INITs the change to v+1 races peers still finishing v. The INIT
	// used to be dropped at those peers, stranding the initiator blocked
	// forever; future-view control traffic is now deferred and replayed.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	const changes = 6
	for i := 0; i < changes; i++ {
		if err := h.members["p0"].eng.RequestViewChange(); err != nil {
			t.Fatal(err)
		}
		// Wait only for the initiator — the next INIT intentionally races
		// the other members' installs.
		deadline := time.After(15 * time.Second)
		for h.members["p0"].eng.Stats().View < ident.ViewID(2+i) {
			select {
			case <-deadline:
				t.Fatalf("change %d stuck: %+v", i, h.members["p0"].eng.Stats())
			case <-time.After(time.Millisecond):
			}
		}
	}
	for _, p := range h.pids {
		h.waitView(p, ident.ViewID(1+changes))
	}
	h.verify()
}

func TestViewChangeWithUnknownLeaver(t *testing.T) {
	// Asking to remove a non-member is harmless: leave ∩ members = ∅.
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}})
	if err := h.members["p0"].eng.RequestViewChange("ghost"); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		v := h.waitView(p, 2)
		if !v.Members.Equal(h.pids) {
			t.Fatalf("membership changed by ghost leaver: %v", v)
		}
	}
	h.verify()
}
