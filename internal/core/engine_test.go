package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// groupHarness wires an n-member group over an in-memory network, with a
// shared execution recorder and an application driver per member that
// pulls deliveries into the recorder.
type groupHarness struct {
	t   *testing.T
	net *transport.MemNetwork
	rel obsolete.Relation
	rec *check.Recorder

	pids    ident.PIDs
	members map[ident.PID]*gMember
}

type gMember struct {
	pid ident.PID
	ep  *transport.MemEndpoint
	det *fd.Manual
	eng *Engine

	mu        sync.Mutex
	delay     time.Duration // artificial per-delivery slowness
	paused    bool
	lastView  View // most recent view reported to the application
	expelledC chan struct{}
	loopDone  chan struct{}
	cancel    context.CancelFunc
}

type harnessOpts struct {
	n            int
	rel          obsolete.Relation
	toDeliverCap int
	outgoingCap  int
	window       int
	autoEvict    bool
	stability    time.Duration
	heal         *HealSpec // enable partition healing
	clock        obs.Clock // nil = wall clock
}

func newGroup(t *testing.T, o harnessOpts) *groupHarness {
	t.Helper()
	if o.rel == nil {
		o.rel = obsolete.Empty{}
	}
	h := &groupHarness{
		t:       t,
		net:     transport.NewMemNetwork(),
		rel:     o.rel,
		rec:     check.NewRecorder(o.rel),
		members: make(map[ident.PID]*gMember),
	}
	var pids []ident.PID
	for i := 0; i < o.n; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("p%d", i)))
	}
	h.pids = ident.NewPIDs(pids...)
	view0 := View{ID: 1, Members: h.pids}
	h.rec.SetInitialView(view0.ID)

	var ob *obs.Obs
	if o.clock != nil {
		ob = obs.New(o.clock, nil, nil)
	}
	for _, p := range h.pids {
		ep, err := h.net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewManual()
		eng, err := New(Config{
			Self:              p,
			Endpoint:          ep,
			Detector:          det,
			InitialView:       view0,
			Relation:          o.rel,
			ToDeliverCap:      o.toDeliverCap,
			OutgoingCap:       o.outgoingCap,
			Window:            o.window,
			AutoEvict:         o.autoEvict,
			StabilityInterval: o.stability,
			Heal:              o.heal,
			Obs:               ob,
		})
		if err != nil {
			t.Fatal(err)
		}
		m := &gMember{
			pid:       p,
			ep:        ep,
			det:       det,
			eng:       eng,
			expelledC: make(chan struct{}),
			loopDone:  make(chan struct{}),
		}
		h.members[p] = m
	}
	for _, p := range h.pids {
		if err := h.members[p].eng.Start(); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range h.pids {
		h.startDriver(h.members[p])
	}
	t.Cleanup(func() {
		for _, p := range h.pids {
			m := h.members[p]
			m.cancel()
			m.eng.Stop()
			<-m.loopDone
			m.det.Stop()
			m.ep.Close()
		}
	})
	return h
}

// startDriver launches the application loop of m: deliver everything,
// record it, signal views.
func (h *groupHarness) startDriver(m *gMember) {
	ctx, cancel := context.WithCancel(context.Background())
	m.cancel = cancel
	go func() {
		defer close(m.loopDone)
		for {
			m.mu.Lock()
			d, paused := m.delay, m.paused
			m.mu.Unlock()
			if paused {
				select {
				case <-time.After(time.Millisecond):
					continue
				case <-ctx.Done():
					return
				}
			}
			del, err := m.eng.Deliver(ctx)
			if err != nil {
				return
			}
			switch del.Kind {
			case DeliverData:
				h.rec.DeliverRef(m.pid, del.Meta, ident.ViewRef{Epoch: del.Epoch, ID: del.View})
				if d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
			case DeliverView:
				h.rec.InstallRef(m.pid, del.NewView.Ref(), del.NewView.Members)
				m.mu.Lock()
				m.lastView = del.NewView
				m.mu.Unlock()
			case DeliverExpelled:
				close(m.expelledC)
				return
			}
		}
	}()
}

// slowDown makes m's application consume each delivery in d.
func (m *gMember) slowDown(d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.delay = d
}

// multicast sends a tracked message from p and records it.
func (h *groupHarness) multicast(p ident.PID, seq ident.Seq, annot []byte, payload []byte) error {
	h.t.Helper()
	m := h.members[p]
	meta := obsolete.Msg{Sender: p, Seq: seq, Annot: annot}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	view, err := m.eng.Multicast(ctx, meta, payload)
	if err != nil {
		return err
	}
	h.rec.MulticastRef(meta, view)
	return nil
}

// waitView blocks until p has reported installing a view with identifier
// at least id. It is idempotent: repeated calls for the same view return
// immediately.
func (h *groupHarness) waitView(p ident.PID, id ident.ViewID) View {
	h.t.Helper()
	m := h.members[p]
	deadline := time.After(15 * time.Second)
	for {
		m.mu.Lock()
		v := m.lastView
		m.mu.Unlock()
		if v.ID >= id {
			return v
		}
		select {
		case <-deadline:
			h.t.Fatalf("%s never installed view %d (stats %+v)", p, id, m.eng.Stats())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// waitDelivered polls until pred over p's recorded log is true.
func (h *groupHarness) waitDelivered(p ident.PID, pred func([]check.Event) bool) {
	h.t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		if pred(h.rec.Log(p)) {
			return
		}
		select {
		case <-deadline:
			h.t.Fatalf("%s: condition never met; log len %d", p, len(h.rec.Log(p)))
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func hasSeq(log []check.Event, sender ident.PID, seq ident.Seq) bool {
	for _, ev := range log {
		if ev.Kind == check.EvDeliver && ev.Meta.Sender == sender && ev.Meta.Seq == seq {
			return true
		}
	}
	return false
}

func countData(log []check.Event) int {
	n := 0
	for _, ev := range log {
		if ev.Kind == check.EvDeliver {
			n++
		}
	}
	return n
}

func (h *groupHarness) verify() {
	h.t.Helper()
	for _, err := range h.rec.Verify() {
		h.t.Error(err)
	}
}

// ---------------------------------------------------------------------------

func TestBroadcastAllDeliver(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.KEnumeration{K: 16}})
	tr := obsolete.NewKTracker(16)
	const count = 20
	for i := 0; i < count; i++ {
		seq, annot := tr.Next()
		if err := h.multicast("p0", seq, annot, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool {
			return hasSeq(log, "p0", count)
		})
	}
	// Fast consumers: nothing became obsolete in-buffer necessarily, but
	// every process must have all messages (no view change => no omission
	// without purging; with fast consumers purging is rare but legal).
	h.verify()
}

func TestViewChangeSameMembership(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	var seq ident.Seq
	for i := 0; i < 10; i++ {
		seq++
		if err := h.multicast("p0", seq, obsolete.TagAnnot(uint32(i%3)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.members["p0"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		v := h.waitView(p, 2)
		if !v.Members.Equal(h.pids) {
			t.Fatalf("%s: view 2 members %v, want %v", p, v.Members, h.pids)
		}
	}
	// Multicast still works in the new view.
	seq++
	if err := h.multicast("p0", seq, obsolete.TagAnnot(9), nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", seq) })
	}
	h.verify()
}

func TestViewChangeExcludesCrashedMember(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	var seq ident.Seq
	for i := 0; i < 5; i++ {
		seq++
		if err := h.multicast("p0", seq, obsolete.TagAnnot(uint32(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// p2 crashes; survivors suspect it and evict it.
	h.net.Crash("p2")
	h.members["p0"].det.Suspect("p2")
	h.members["p1"].det.Suspect("p2")
	if err := h.members["p0"].eng.RequestViewChange("p2"); err != nil {
		t.Fatal(err)
	}
	want := ident.NewPIDs("p0", "p1")
	for _, p := range want {
		v := h.waitView(p, 2)
		if !v.Members.Equal(want) {
			t.Fatalf("%s: view 2 members %v, want %v", p, v.Members, want)
		}
	}
	// The group remains live.
	seq++
	if err := h.multicast("p0", seq, obsolete.TagAnnot(42), nil); err != nil {
		t.Fatal(err)
	}
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", seq) })
	h.verify()
}

func TestExpelledSlowMember(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	var seq ident.Seq
	for i := 0; i < 5; i++ {
		seq++
		if err := h.multicast("p0", seq, obsolete.TagAnnot(uint32(i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// p2 is alive but the group decides to expel it (e.g. persistent
	// perturbation). p2 must receive DeliverExpelled.
	if err := h.members["p0"].eng.RequestViewChange("p2"); err != nil {
		t.Fatal(err)
	}
	want := ident.NewPIDs("p0", "p1")
	for _, p := range want {
		h.waitView(p, 2)
	}
	select {
	case <-h.members["p2"].expelledC:
	case <-time.After(15 * time.Second):
		t.Fatal("p2 never learned it was expelled")
	}
	// Multicast from the expelled member fails.
	meta := obsolete.Msg{Sender: "p2", Seq: 1}
	_, err := h.members["p2"].eng.Multicast(context.Background(), meta, nil)
	if !errors.Is(err, ErrExpelled) && !errors.Is(err, ErrStopped) {
		t.Fatalf("expelled multicast err = %v", err)
	}
	h.verify()
}

func TestMulticastSeqDiscipline(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Tagging{}})
	// Sequence numbers must start at 1 and be contiguous.
	meta := obsolete.Msg{Sender: "p0", Seq: 5}
	if _, err := h.members["p0"].eng.Multicast(context.Background(), meta, nil); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("err = %v, want ErrBadSeq", err)
	}
	if err := h.multicast("p0", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.members["p0"].eng.Multicast(context.Background(), obsolete.Msg{Sender: "p0", Seq: 1}, nil); !errors.Is(err, ErrBadSeq) {
		t.Fatalf("replayed seq err = %v, want ErrBadSeq", err)
	}
}

func TestConcurrentViewChangeInitiators(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 4, rel: obsolete.Tagging{}})
	var seq ident.Seq
	for i := 0; i < 8; i++ {
		seq++
		if err := h.multicast("p0", seq, obsolete.TagAnnot(uint32(i%2)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Two members start a view change at once, with different leave sets.
	errC := make(chan error, 2)
	go func() { errC <- h.members["p0"].eng.RequestViewChange() }()
	go func() { errC <- h.members["p1"].eng.RequestViewChange("p3") }()
	for i := 0; i < 2; i++ {
		if err := <-errC; err != nil {
			t.Fatal(err)
		}
	}
	// Everyone still in the group installs the same view 2; whether p3 is
	// excluded depends on which INIT won — the checker enforces agreement.
	v := h.waitView("p0", 2)
	for _, p := range v.Members {
		h.waitView(p, 2)
	}
	h.verify()
}

func TestSlowConsumerIsAccommodatedByPurging(t *testing.T) {
	const k = 64
	h := newGroup(t, harnessOpts{
		n:            3,
		rel:          obsolete.KEnumeration{K: k},
		toDeliverCap: 8,
		outgoingCap:  8,
		window:       8,
	})
	// p2's application is slow: 3ms per message while p0 produces as fast
	// as flow control admits.
	h.members["p2"].slowDown(3 * time.Millisecond)

	it := obsolete.NewItemTracker(obsolete.NewKTracker(k))
	const updates = 300
	const items = 4
	var lastSeq ident.Seq
	for i := 0; i < updates; i++ {
		seq, annot := it.Update(uint32(i % items))
		if err := h.multicast("p0", seq, annot, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		lastSeq = seq
	}
	// Every member eventually holds the final update of the stream.
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", lastSeq) })
	}
	// The slow member must have seen purging: strictly fewer deliveries
	// than were multicast.
	slowCount := countData(h.rec.Log("p2"))
	if slowCount >= updates {
		t.Errorf("slow consumer delivered %d of %d messages — no purging happened", slowCount, updates)
	}
	st := h.members["p2"].eng.Stats()
	if st.PurgedToDeliver == 0 && h.members["p0"].eng.Stats().PurgedOutgoing == 0 {
		t.Error("no purging recorded anywhere on the slow path")
	}
	// A view change after the run must still satisfy SVS.
	if err := h.members["p0"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
	}
	h.verify()
}

func TestVSFlushesEverythingToSlowMember(t *testing.T) {
	// With the empty relation (classic VS) a slow member must receive
	// every message — across a view change — even though it lags.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Empty{}, window: 4, toDeliverCap: 16, outgoingCap: 64})
	h.members["p2"].slowDown(2 * time.Millisecond)

	var seq ident.Seq
	const count = 40
	for i := 0; i < count; i++ {
		seq++
		if err := h.multicast("p0", seq, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.members["p0"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool {
			n := 0
			for _, ev := range log {
				if ev.Kind == check.EvDeliver && ev.Meta.Sender == "p0" {
					n++
				}
			}
			return n == count
		})
	}
	h.verify()
}

func TestMulticastDuringViewChangeParksAndResumes(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	// Pause all drivers so the view change stays observable; the engine
	// blocks multicasts while the group is blocked.
	if err := h.multicast("p0", 1, obsolete.TagAnnot(1), nil); err != nil {
		t.Fatal(err)
	}
	if err := h.members["p1"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	// This multicast may land in view 1 or view 2 depending on timing;
	// either way it must complete and be delivered group-wide.
	if err := h.multicast("p0", 2, obsolete.TagAnnot(2), nil); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", 2) })
	}
	h.verify()
}

func TestAutoEvictOnSuspicion(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}, autoEvict: true})
	if err := h.multicast("p0", 1, obsolete.TagAnnot(1), nil); err != nil {
		t.Fatal(err)
	}
	h.net.Crash("p2")
	h.members["p0"].det.Suspect("p2")
	h.members["p1"].det.Suspect("p2")
	want := ident.NewPIDs("p0", "p1")
	for _, p := range want {
		v := h.waitView(p, 2)
		if v.Members.Contains("p2") {
			t.Fatalf("%s: suspected member not evicted: %v", p, v.Members)
		}
	}
	h.verify()
}

func TestSequentialViewChanges(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	var seq ident.Seq
	for round := 0; round < 4; round++ {
		for i := 0; i < 5; i++ {
			seq++
			if err := h.multicast("p0", seq, obsolete.TagAnnot(uint32(i)), nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.members["p0"].eng.RequestViewChange(); err != nil {
			t.Fatal(err)
		}
		for _, p := range h.pids {
			h.waitView(p, ident.ViewID(2+round))
		}
	}
	h.verify()
}

func TestEngineConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, _ := net.Endpoint("a")
	defer ep.Close()
	det := fd.NewManual()
	defer det.Stop()
	view := View{ID: 1, Members: ident.NewPIDs("a", "b")}

	tests := []struct {
		name string
		cfg  Config
	}{
		{"missing self", Config{Endpoint: ep, Detector: det, InitialView: view}},
		{"missing endpoint", Config{Self: "a", Detector: det, InitialView: view}},
		{"missing detector", Config{Self: "a", Endpoint: ep, InitialView: view}},
		{"empty view", Config{Self: "a", Endpoint: ep, Detector: det}},
		{"self not member", Config{Self: "a", Endpoint: ep, Detector: det,
			InitialView: View{ID: 1, Members: ident.NewPIDs("x", "y")}}},
		{"self mismatch", Config{Self: "b", Endpoint: ep, Detector: det, InitialView: view}},
		{"negative cap", Config{Self: "a", Endpoint: ep, Detector: det, InitialView: view, ToDeliverCap: -1}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil {
				t.Fatal("invalid config accepted")
			}
		})
	}
}

func TestStatsSnapshot(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Tagging{}})
	for i := 1; i <= 3; i++ {
		if err := h.multicast("p0", ident.Seq(i), obsolete.TagAnnot(7), nil); err != nil {
			t.Fatal(err)
		}
	}
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", 3) })
	st := h.members["p0"].eng.Stats()
	if st.Multicast != 3 {
		t.Fatalf("Multicast = %d, want 3", st.Multicast)
	}
	if st.View != 1 || st.Members != 2 {
		t.Fatalf("View/Members = %d/%d", st.View, st.Members)
	}
	v := h.members["p0"].eng.View()
	if v.ID != 1 || !v.Members.Equal(h.pids) {
		t.Fatalf("View() = %v", v)
	}
	if h.members["p0"].eng.Self() != "p0" {
		t.Fatal("Self() wrong")
	}
}
