package core

import (
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// DeliveryKind discriminates what Deliver returned.
type DeliveryKind uint8

const (
	// DeliverData is an application message.
	DeliverData DeliveryKind = iota + 1
	// DeliverView is a view notification: the membership changed and every
	// message delivered earlier is covered group-wide (SVS).
	DeliverView
	// DeliverExpelled tells the application this process was removed from
	// the group by the new view; no further deliveries follow.
	DeliverExpelled
)

func (k DeliveryKind) String() string {
	switch k {
	case DeliverData:
		return "data"
	case DeliverView:
		return "view"
	case DeliverExpelled:
		return "expelled"
	default:
		return "unknown"
	}
}

// Delivery is one item handed to the application by Deliver — either a
// data message or a view notification, in the exact order the protocol
// prescribes (Figure 1 models views as control messages in the delivery
// queue).
type Delivery struct {
	Kind DeliveryKind
	// View is the view the item belongs to: for data, the view it was
	// multicast in; for view notifications, the new view's identifier.
	View ident.ViewID
	// Epoch is the lineage of that view (see ident.ViewRef). Together with
	// View it names the view globally even across partition splits and
	// merges; 0 is the founding lineage.
	Epoch ident.Epoch
	// Meta and Payload are set for data deliveries.
	Meta    obsolete.Msg
	Payload []byte
	// NewView is set for view (and expelled) notifications.
	NewView View
}

// Stats exposes the engine's counters; all values are cumulative since
// Start except where noted.
type Stats struct {
	// View is the identifier of the current view.
	View ident.ViewID
	// Epoch is the current view's lineage (0 until a split or merge).
	Epoch ident.Epoch
	// Members is the current membership size.
	Members int

	Multicast      uint64 // messages multicast by this process
	Delivered      uint64 // data messages delivered to the application
	ViewsInstalled uint64

	PurgedToDeliver uint64 // entries purged from the delivery queue
	PurgedOutgoing  uint64 // entries purged from outgoing (per-peer) queues
	DroppedStale    uint64 // arrivals discarded: wrong view
	DroppedCovered  uint64 // arrivals discarded: duplicate or covered (t3)

	CreditsStaleView   uint64 // credit grants discarded: wrong view
	CtlDeferredDropped uint64 // future-view control envelopes dropped past the defer cap

	JoinStatesSent  uint64 // state transfers shipped to joiners (sponsor side)
	JoinBacklogSent uint64 // backlog messages shipped in those transfers
	JoinBytesSent   uint64 // wire bytes of those transfers
	JoinBacklogRecv uint64 // backlog length of the state transfer that admitted this engine
	JoinBytesRecv   uint64 // wire bytes of that transfer

	FlushAdded   uint64 // messages adopted from decided flush sets
	LastFlushLen int    // size of the last decided flush set

	MulticastParks uint64 // times a multicast had to wait (flow control)
	Parked         int    // multicasts currently parked on flow control
	ToDeliverLen   int    // current delivery-queue occupancy
	ToDeliverMax   int    // high-water mark of the delivery queue

	// LastSent is the highest sequence number this engine has committed
	// for its own stream — what an external tracker must continue from
	// after a rejoin (see obsolete.KTracker.Skip).
	LastSent ident.Seq

	StablePruned uint64 // history entries reclaimed by stability tracking
	HistoryLen   int    // current delivery-history size (flush-set bound)

	// DecisionsIgnored counts consensus decisions that arrived but could
	// not be installed — duplicates of the current view, decisions for a
	// view this engine is no longer waiting on, or decisions landing while
	// unblocked. With concurrent proposals (splits, merges) these are
	// expected losers of the arbitration, not errors.
	DecisionsIgnored uint64

	// Partition healing (Config.Heal).
	Merges         uint64 // union views installed by a partition merge
	MergeAborts    uint64 // merges abandoned on timeout
	MergeBytesRecv uint64 // wire bytes of merge state contributions received
}
