package core

// merge.go implements partition healing: the discovery, split and merge
// protocol enabled by Config.Heal.
//
// A network partition leaves the group in one of two shapes. The majority
// side completes its view change normally and evicts the unreachable
// minority. The minority, under plain SVS, wedges: it blocks at t5 and can
// never reach the majority quorum its consensus instance needs. With
// healing enabled the reachable minority instead *splits* — it declares
// the set of members it can still see and continues as a sub-view under a
// fresh lineage epoch (ident.ViewRef), so its view numbering can advance
// without ever colliding with the majority's.
//
// When the partition heals, members discover each other again through
// probes — tiny beacons sent to every process a member once shared a view
// with but no longer does (Engine.former) — and drive both sub-views into
// a *merge*:
//
//	probe ───────▶ far side (different epoch detected)
//	MergeMsg ────▶ union     (both sides' refs + memberships, flooded)
//	MergePredMsg ▶ union     (each member's relation-purged backlog +
//	                          reception frontiers — the bidirectional
//	                          semantic state exchange, O(window) per side)
//	consensus(union ref) ───▶ union view installs on both sides
//
// The union view's flush set is the deduplicated, re-purged combination of
// every contribution, so each side delivers the other's relation-surviving
// backlog before the union-view marker — the SVS guarantee holds across
// the merge exactly as it does across an ordinary view change.
//
// Concurrency discipline: every handler here runs on the engine loop; the
// state machine tolerates concurrent proposals (an ordinary change, a
// shrinking series of split declarations, a merge) through the
// Engine.pendingNext ledger — the first decided successor wins and every
// other decision is counted as ignored. Races that slip through (e.g. a
// split and an ordinary change both deciding on opposite sides of a
// flapping partition) leave the loser on a divergent lineage, which the
// member-with-different-epoch probe case below detects and re-merges: the
// protocol converges by construction instead of enumerating every
// interleaving.

import (
	"time"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/transport"
)

// mergeSide is one sub-view being merged: its global ref and membership.
type mergeSide struct {
	ref     ident.ViewRef
	members ident.PIDs
}

// mergeState is the loop-owned state of an in-flight merge.
type mergeState struct {
	// ref names the union view under decision; its consensus instance is
	// registered in Engine.pendingNext like any other candidate successor.
	ref ident.ViewRef
	// sides are the two sub-views, normalised so sides[0].ref is the
	// lesser — every participant derives the identical state from the
	// same announcement.
	sides [2]mergeSide
	// union is the combined membership — the consensus participant set
	// and the audience of every merge message.
	union ident.PIDs
	// contrib collects each member's state contribution; declined lists
	// members that answered they were expelled meanwhile.
	contrib  map[ident.PID]*MergePredMsg
	declined ident.PIDs
	proposed bool
	// started/deadline drive the merge-duration histogram and the abort
	// timeout (HealSpec.MergeTimeout).
	started  time.Time
	deadline time.Time
	bytesIn  uint64
}

// onHealTick fires every HealSpec.ProbeInterval: beacon the processes we
// lost to a partition, and time out a merge that stopped making progress.
func (e *Engine) onHealTick() {
	now := e.clock.Now()
	if e.merge != nil {
		if now.After(e.merge.deadline) {
			e.abortMerge("timeout")
		}
		return
	}
	if e.blocked || e.joining || e.expelled || len(e.former) == 0 {
		return
	}
	probe := ProbeMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Members: e.cv.Members.Clone()}
	for p := range e.former {
		e.send(p, transport.Ctl, probe)
	}
}

// onProbe classifies a discovery beacon. The sender considers us a former
// member (probes only target those), so the interesting cases are all
// disagreements about who belongs where.
func (e *Engine) onProbe(from ident.PID, m ProbeMsg) {
	if e.cfg.Heal == nil || e.joining || e.expelled || e.merge != nil {
		return
	}
	ref := m.Ref()
	members := ident.NewPIDs(m.Members...)
	if !members.Contains(from) {
		return // malformed: a probe speaks for the sender's own view
	}
	if ref.Epoch != e.cv.Epoch {
		// Another lineage. Usually the healed far side of a partition; if
		// from is currently *our* member, the group diverged (e.g. a split
		// and an ordinary change both decided) — either way the union of
		// the two views reconverges everyone.
		e.maybeStartMerge(mergeSide{ref: ref, members: members})
		return
	}
	// Same lineage: one of us is simply behind.
	switch {
	case ref.ID > e.cv.ID && !members.Contains(e.cfg.Self):
		// Proof that a newer view of our own lineage excludes us: the
		// group evicted us while we were cut off. Retire.
		e.retireExpelled(ref, members)
	case ref.ID < e.cv.ID && !e.blocked && !e.cv.Includes(from):
		// The prober is the stale one; answer with our view so it can
		// draw the same conclusion.
		e.send(from, transport.Ctl,
			ProbeMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Members: e.cv.Members.Clone()})
	}
}

// retireExpelled delivers the expulsion a probe proved: a newer view of
// our own lineage does not include us, so the eviction decided while we
// were unreachable and its decide flood never found us.
func (e *Engine) retireExpelled(ref ident.ViewRef, members ident.PIDs) {
	e.expelled = true
	e.blocked = false
	e.blockStart = time.Time{}
	e.m.blockedG.Set(0)
	clear(e.pendingNext)
	e.ev.Expelled(uint64(ref.ID))
	for _, m := range e.multicastQ {
		m.mcC <- mcResult{err: ErrExpelled}
	}
	e.multicastQ = nil
	e.toDeliver.ForceAppend(queue.Item{
		Kind: queue.Control, View: uint64(ref.ID), Epoch: uint64(ref.Epoch),
		Ctl: View{Epoch: ref.Epoch, ID: ref.ID, Members: members.Clone()},
	})
	e.serveDeliveries()
}

// ---- split: a reachable minority continues under a fresh lineage ------------

// checkSplit fires from checkPropose when every reachable pred is in but
// the members form a minority: the ordinary change can never decide (its
// quorum is unreachable), so the reachable set continues as a sub-view
// under a split epoch. The lowest reachable member declares the split; if
// it dies, growing suspicion shrinks the reachable set until a surviving
// member finds itself lowest — a rotating proposer, with every declared
// continuation registered in pendingNext so whichever decides first wins.
func (e *Engine) checkSplit() {
	if e.cfg.Heal == nil || e.joining {
		return
	}
	var split ident.PIDs
	for _, p := range e.predReceived {
		if !e.cfg.Detector.Suspected(p) {
			split = split.Add(p)
		}
	}
	split = split.Without(e.leave)
	if len(split) == 0 || !split.Contains(e.cfg.Self) || split[0] != e.cfg.Self {
		return
	}
	ref := ident.ViewRef{Epoch: SplitEpoch(e.cv.Ref(), split), ID: e.cv.ID + 1}
	if e.pendingNext[ref] {
		return // this exact continuation is already declared and pending
	}
	e.ev.SplitDeclared(ref.String(), len(split))
	msg := SplitMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Members: split.Clone()}
	for _, p := range split {
		if p != e.cfg.Self {
			e.send(p, transport.Ctl, msg)
		}
	}
	e.adoptSplit(split)
}

// onSplit handles a split declaration from the reachable set's leader.
func (e *Engine) onSplit(from ident.PID, m SplitMsg) {
	if e.cfg.Heal == nil || e.joining || e.merge != nil || !e.blocked {
		return
	}
	if m.Ref() != e.cv.Ref() {
		return
	}
	members := ident.NewPIDs(m.Members...)
	if len(members) == 0 || members[0] != from || !members.Contains(e.cfg.Self) {
		return // only the declared set's lowest member may declare
	}
	for _, p := range members {
		if !e.predReceived.Contains(p) {
			// We cannot yet cover every declared member's deliveries, so
			// we must not propose — but the declaration is legitimate, so
			// watch the instance for the decide flood.
			e.awaitDecision(ident.ViewRef{Epoch: SplitEpoch(e.cv.Ref(), members), ID: e.cv.ID + 1})
			return
		}
	}
	e.adoptSplit(members)
}

// adoptSplit registers the split continuation and proposes it: the next
// view is the declared set, under an epoch derived from (parent ref,
// member set) so concurrent declarations for different sets occupy
// different consensus instances.
func (e *Engine) adoptSplit(members ident.PIDs) {
	ref := ident.ViewRef{Epoch: SplitEpoch(e.cv.Ref(), members), ID: e.cv.ID + 1}
	e.awaitDecision(ref)
	next := View{Epoch: ref.Epoch, ID: ref.ID, Members: members.Clone()}
	e.propose(consensusValue{Next: next, Pred: sortedPred(e.globalPred)}, members)
}

// ---- merge: two sub-views reconverge into their union -----------------------

// maybeStartMerge begins a merge with the remote sub-view a probe
// revealed, if no change or merge is already in flight.
func (e *Engine) maybeStartMerge(remote mergeSide) {
	if e.merge != nil || e.blocked || e.joining || e.expelled {
		return
	}
	if remote.ref == e.cv.Ref() {
		return
	}
	e.startMerge(mergeSide{ref: e.cv.Ref(), members: e.cv.Members.Clone()}, remote)
}

// mergeRefFor names the union view of two sub-views: a fresh epoch hashed
// from both parent refs, one past the higher of the two view numbers — so
// both sides' numbering is respected and re-runs of the same merge land on
// the same instance.
func mergeRefFor(a, b ident.ViewRef) ident.ViewRef {
	maxID := a.ID
	if b.ID > maxID {
		maxID = b.ID
	}
	return ident.ViewRef{Epoch: MergeEpoch(a, b), ID: maxID + 1}
}

// startMerge blocks the engine and runs the merge handshake: announce the
// merge to the union, extend the failure detector across it, contribute
// our own state, and watch the union instance for the decision. Both
// initiators (each side probes the other) derive the identical normalised
// state, so their floods are idempotent.
func (e *Engine) startMerge(a, b mergeSide) {
	if b.ref.Less(a.ref) {
		a, b = b, a
	}
	ref := mergeRefFor(a.ref, b.ref)
	union := a.members.Union(b.members)
	now := e.clock.Now()
	e.merge = &mergeState{
		ref:      ref,
		sides:    [2]mergeSide{a, b},
		union:    union,
		contrib:  make(map[ident.PID]*MergePredMsg),
		started:  now,
		deadline: now.Add(e.cfg.Heal.MergeTimeout),
	}
	e.blocked = true
	e.blockStart = now
	e.m.blockedG.Set(1)
	e.ev.MergeStarted(ref.String(), a.ref.String(), b.ref.String(), len(union))
	// Unaccepted arrivals: covered by their senders' contributions.
	e.pendingHead = nil
	e.pendingRest = e.pendingRest[:0]
	e.pendingPos = 0
	// Extend the heartbeat fanout across the union: the propose condition
	// below needs suspicion to develop for far-side members that died.
	if pd, ok := e.cfg.Detector.(interface{ SetPeers(ident.PIDs) }); ok {
		pd.SetPeers(union)
	}
	// Flood the announcement (everyone re-floods once, so the handshake
	// survives the initiator crashing mid-broadcast), then contribute.
	// Per-link FIFO guarantees every peer sees our announcement before
	// our contribution.
	ann := MergeMsg{
		A: MergeSide{View: a.ref.ID, Epoch: a.ref.Epoch, Members: a.members.Clone()},
		B: MergeSide{View: b.ref.ID, Epoch: b.ref.Epoch, Members: b.members.Clone()},
	}
	for _, p := range union {
		if p != e.cfg.Self {
			e.send(p, transport.Ctl, ann)
		}
	}
	contrib := MergePredMsg{Merge: ref, Msgs: e.localPred(true), Recv: e.recvSnapshot()}
	for _, p := range union {
		e.send(p, transport.Ctl, contrib) // including self: loopback keeps one code path
	}
	e.awaitDecision(ref)
}

// onMerge handles a merge announcement: if it names our current view as
// one side, adopt it and run the same handshake as the initiator.
func (e *Engine) onMerge(from ident.PID, m MergeMsg) {
	if e.cfg.Heal == nil || e.joining {
		return
	}
	a := mergeSide{ref: m.A.Ref(), members: ident.NewPIDs(m.A.Members...)}
	b := mergeSide{ref: m.B.Ref(), members: ident.NewPIDs(m.B.Members...)}
	if e.merge != nil || e.blocked {
		// Already merging (this announcement is the flood echo), or an
		// ordinary change is mid-flight — its install or abort comes
		// first; the far side times out and re-probes.
		return
	}
	cur := e.cv.Ref()
	if cur != a.ref && cur != b.ref {
		return // stale announcement for a view we have moved past
	}
	// Our own side's membership is consensus-agreed state; use the
	// authoritative copy (it equals the announced one at every correct
	// sender).
	if cur == a.ref {
		a.members = e.cv.Members.Clone()
	} else {
		b.members = e.cv.Members.Clone()
	}
	e.startMerge(a, b)
}

// declineMerge answers a merge announcement that names this process on a
// side it was since expelled from: a broadcast "count me out", so the
// union can proceed without waiting for suspicion to develop.
func (e *Engine) declineMerge(m MergeMsg) {
	ref := mergeRefFor(m.A.Ref(), m.B.Ref())
	union := ident.NewPIDs(m.A.Members...).Union(ident.NewPIDs(m.B.Members...))
	msg := MergePredMsg{Merge: ref, Decline: true}
	for _, p := range union {
		if p != e.cfg.Self {
			e.send(p, transport.Ctl, msg)
		}
	}
}

// onMergePred collects one member's merge contribution (or decline).
func (e *Engine) onMergePred(from ident.PID, m MergePredMsg) {
	if e.merge == nil || m.Merge != e.merge.ref || !e.merge.union.Contains(from) {
		return // not merging, a different merge, or an outsider
	}
	if m.Decline {
		e.merge.declined = e.merge.declined.Add(from)
	} else if e.merge.contrib[from] == nil {
		c := m
		e.merge.contrib[from] = &c
		size := uint64(mergePredBytes(m))
		e.merge.bytesIn += size
		e.stats.MergeBytesRecv += size
	}
	e.checkMergePropose()
}

// checkMergePropose fires the union-view proposal once, per side, every
// non-declined member has either contributed or become suspected, and the
// contributors form a majority of the side. The first condition is the SVS
// obligation — a proposal may only omit a member it excludes from the
// union view, since an excluded member never installs the union and so
// never forms a delivery-coverage pair with those who do. The second keeps
// a merge from installing a union view dominated by one side's wreckage.
func (e *Engine) checkMergePropose() {
	mg := e.merge
	if mg == nil || mg.proposed {
		return
	}
	for i := range mg.sides {
		eligible := mg.sides[i].members.Without(mg.declined)
		contributed := 0
		for _, p := range eligible {
			if mg.contrib[p] != nil {
				contributed++
				continue
			}
			if !e.cfg.Detector.Suspected(p) {
				return // still waiting on a live member
			}
		}
		if 2*contributed <= len(eligible) {
			return
		}
	}
	mg.proposed = true

	var members ident.PIDs
	combined := make(map[obsolete.MsgID]DataMsg)
	recv := make(map[ident.PID]ident.Seq)
	for p, c := range mg.contrib {
		members = members.Add(p)
		for _, dm := range c.Msgs {
			combined[dm.Meta.ID()] = dm
		}
		for s, q := range c.Recv {
			if q > recv[s] {
				recv[s] = q
			}
		}
	}
	next := View{Epoch: mg.ref.Epoch, ID: mg.ref.ID, Members: members}
	val := consensusValue{Next: next, Pred: mergeFlush(e.rel, combined), Recv: recv}
	e.propose(val, mg.union)
}

// mergeFlush turns the combined contribution set into the union view's
// flush: deduplicated (the map key), deterministically ordered, and
// purged once more through the obsolescence relation so covers across
// contributions collapse. Purging never relates across view tags, so one
// side's backlog cannot purge the other's — each side stays O(window) and
// the flush is at most the sum of both.
func mergeFlush(rel obsolete.Relation, combined map[obsolete.MsgID]DataMsg) []DataMsg {
	msgs := sortedPred(combined)
	snap := queue.New(rel, 0)
	for _, dm := range msgs {
		_, _ = snap.AppendPurge(queue.Item{
			Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch),
			Meta: dm.Meta, Payload: dm.Payload,
		})
	}
	out := make([]DataMsg, 0, snap.Len())
	snap.EachRef(func(it *queue.Item) bool {
		out = append(out, DataMsg{
			View: ident.ViewID(it.View), Epoch: ident.Epoch(it.Epoch),
			Meta: it.Meta, Payload: it.Payload,
		})
		return true
	})
	return out
}

// finishMerge records the completed merge; install() has already adopted
// the flush, the frontiers and the union view.
func (e *Engine) finishMerge(val consensusValue) {
	mg := e.merge
	e.stats.Merges++
	e.m.mergesTotal.Inc()
	took := e.clock.Since(mg.started)
	e.m.mergeDur.ObserveDuration(took)
	e.m.mergeBytes.Observe(float64(mg.bytesIn))
	e.ev.MergeComplete(val.Next.Ref().String(), len(val.Next.Members), len(val.Pred), int(mg.bytesIn), took)
}

// abortMerge abandons a merge whose union decision did not arrive in
// time — the partition re-opened mid-handshake, or a side was wedged in
// its own view change. The engine unblocks, restores its view-scoped
// detector fanout and puts the far side back on the probe list; a later
// probe retries the merge on the same (deterministic) instance.
func (e *Engine) abortMerge(reason string) {
	mg := e.merge
	e.merge = nil
	delete(e.pendingNext, mg.ref)
	e.blocked = false
	e.blockStart = time.Time{}
	e.m.blockedG.Set(0)
	e.stats.MergeAborts++
	e.m.mergeAborts.Inc()
	e.ev.MergeAborted(mg.ref.String(), reason)
	for _, p := range mg.union {
		if p != e.cfg.Self && !e.cv.Includes(p) {
			e.former[p] = struct{}{}
		}
	}
	if pd, ok := e.cfg.Detector.(interface{ SetPeers(ident.PIDs) }); ok {
		pd.SetPeers(e.cv.Members)
	}
	e.serveDeliveries()
	e.retryParked()
}

// mergePredBytes is the wire size of one merge contribution — what the
// merge benchmarks compare between semantic and reliable configurations.
func mergePredBytes(m MergePredMsg) int {
	b, err := codec.Marshal(nil, m)
	if err != nil {
		return 0
	}
	return len(b)
}
