package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// backoffRecv waits for one envelope on the contact's control inbox.
func backoffRecv(t *testing.T, in <-chan transport.Envelope) transport.Envelope {
	t.Helper()
	select {
	case env := <-in:
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a join request")
		return transport.Envelope{}
	}
}

// backoffNone asserts no envelope arrives within a short grace period.
func backoffNone(t *testing.T, in <-chan transport.Envelope) {
	t.Helper()
	select {
	case env := <-in:
		t.Fatalf("unexpected envelope before the backoff elapsed: %+v", env)
	case <-time.After(30 * time.Millisecond):
	}
}

// TestJoinBackoffScheduleFake pins the retransmission schedule under a
// fake clock: with jitter disabled, retries fire at exactly
// Retry·2ⁿ capped at RetryMax — here 100ms, 200ms, 400ms, 400ms — and
// not a tick earlier.
func TestJoinBackoffScheduleFake(t *testing.T) {
	fake := obs.NewFake(time.Unix(0, 0))
	net := transport.NewMemNetwork()
	jep, err := net.Endpoint("j")
	if err != nil {
		t.Fatal(err)
	}
	cep, err := net.Endpoint("c")
	if err != nil {
		t.Fatal(err)
	}
	defer cep.Close()
	inbox := cep.Inbox(0, transport.Ctl)

	det := fd.NewManual()
	defer det.Stop()
	eng, err := New(Config{
		Self: "j", Endpoint: jep, Detector: det,
		Join: &JoinSpec{
			Contacts:    ident.NewPIDs("c"),
			Retry:       100 * time.Millisecond,
			RetryMax:    400 * time.Millisecond,
			RetryJitter: -1, // deterministic intervals
		},
		Obs: obs.New(fake, nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// The initial request is sent on Start, before any timer fires.
	if env := backoffRecv(t, inbox); env.From != "j" {
		t.Fatalf("initial join request from %q, want j", env.From)
	}

	for i, d := range []time.Duration{
		100 * time.Millisecond, // attempt 0: Retry
		200 * time.Millisecond, // attempt 1: Retry·2
		400 * time.Millisecond, // attempt 2: Retry·4 = RetryMax
		400 * time.Millisecond, // attempt 3: capped
	} {
		// The engine re-arms the timer after each retransmission; wait for
		// it to register before advancing, or the tick lands nowhere.
		fake.BlockUntil(1)
		fake.Advance(d - time.Millisecond)
		backoffNone(t, inbox)
		fake.Advance(time.Millisecond)
		if env := backoffRecv(t, inbox); env.From != "j" {
			t.Fatalf("retry %d from %q, want j", i, env.From)
		}
	}
}

// TestJoinGiveUpFake: a joiner whose retry budget (GiveUp) expires fails
// terminally — Deliver and Multicast return ErrJoinTimeout, including
// calls parked before the budget ran out.
func TestJoinGiveUpFake(t *testing.T) {
	fake := obs.NewFake(time.Unix(0, 0))
	net := transport.NewMemNetwork()
	jep, err := net.Endpoint("j")
	if err != nil {
		t.Fatal(err)
	}
	det := fd.NewManual()
	defer det.Stop()
	eng, err := New(Config{
		Self: "j", Endpoint: jep, Detector: det,
		Join: &JoinSpec{
			Contacts:    ident.NewPIDs("ghost"), // never attached: every send fails
			Retry:       50 * time.Millisecond,
			RetryJitter: -1,
			GiveUp:      200 * time.Millisecond,
		},
		Obs: obs.New(fake, nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	// Park a Deliver before the budget expires; it must be failed, not
	// stranded.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	delErr := make(chan error, 1)
	go func() {
		_, err := eng.Deliver(ctx)
		delErr <- err
	}()

	// One big advance fires the pending retry timer; by the time the
	// engine processes the tick the clock reads 400ms — past the 200ms
	// budget — so the retry gives up instead of retransmitting.
	fake.BlockUntil(1)
	fake.Advance(400 * time.Millisecond)

	if err := <-delErr; !errors.Is(err, ErrJoinTimeout) {
		t.Fatalf("parked Deliver = %v, want ErrJoinTimeout", err)
	}
	if _, err := eng.Deliver(ctx); !errors.Is(err, ErrJoinTimeout) {
		t.Fatalf("Deliver after give-up = %v, want ErrJoinTimeout", err)
	}
	meta := obsolete.Msg{Sender: "j", Seq: 1}
	if _, err := eng.Multicast(ctx, meta, []byte("x")); !errors.Is(err, ErrJoinTimeout) {
		t.Fatalf("Multicast after give-up = %v, want ErrJoinTimeout", err)
	}
}

// TestJoinDeadContactMem: a contact list with one dead and one live member
// must still admit the joiner — requests to the dead contact fail (counted
// as send errors) while the live one triggers the admitting view change.
func TestJoinDeadContactMem(t *testing.T) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("n0", "n1")
	nodes := make(map[ident.PID]*Node)
	for _, p := range pids {
		nodes[p] = joinerNode(t, net, p)
	}
	gc := GroupConfig{Relation: obsolete.Empty{}}
	groups := createEverywhere(t, nodes, pids, 1, gc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for _, p := range pids {
		g := groups[p]
		go func() {
			for {
				if _, err := g.Deliver(ctx); err != nil {
					return
				}
			}
		}()
	}

	jn := joinerNode(t, net, "j")
	// "dead" was never attached to the network: sends to it return
	// ErrUnknownPeer. The join must ride on the live contact n1.
	jg, err := jn.Join(1, gc, "dead", "n1")
	if err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "joiner admitted despite a dead contact", func() bool {
		v := jg.View()
		return v.ID >= 2 && v.Includes("j")
	})
}

// TestJoinAllDeadContactsTimeout: when every contact is dead, JoinWith a
// GiveUp budget ends in a clean ErrJoinTimeout — and closing the node
// leaks no goroutines.
func TestJoinAllDeadContactsTimeout(t *testing.T) {
	baseline := runtime.NumGoroutine()

	net := transport.NewMemNetwork()
	jn := joinerNode(t, net, "j")
	jg, err := jn.JoinWith(1, GroupConfig{}, JoinSpec{
		Contacts: ident.NewPIDs("d0", "d1"),
		Retry:    5 * time.Millisecond,
		GiveUp:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := jg.Deliver(ctx); !errors.Is(err, ErrJoinTimeout) {
		t.Fatalf("Deliver = %v, want ErrJoinTimeout", err)
	}
	meta := obsolete.Msg{Sender: "j", Seq: 1}
	if _, err := jg.Multicast(ctx, meta, []byte("x")); !errors.Is(err, ErrJoinTimeout) {
		t.Fatalf("Multicast = %v, want ErrJoinTimeout", err)
	}

	jn.Close()
	joinWaitCond(t, "goroutines to settle after Close", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}
