// Package core implements Semantic View Synchrony — the primary
// contribution of the paper (Figure 1): a consensus-based view-synchronous
// group communication protocol extended with purging of obsolete messages
// in the delivery queues and in the flush set agreed at view changes.
//
// Running the engine with the empty obsolescence relation yields classic
// View Synchrony; with a non-trivial relation it provides the two relaxed
// safety properties of §3.2:
//
//   - Semantic View Synchrony: if p installs consecutive views v and v+1
//     and delivers m in v, every process installing both views delivers
//     some m' with m ⊑ m' before installing v+1;
//   - FIFO Semantically Reliable delivery per sender;
//   - Integrity: no creation, no duplication.
//
// One Engine instance embodies one group member. The engine is a single
// event-loop goroutine owning all protocol state; the exported methods are
// a thread-safe facade that communicates with the loop through requests.
package core

import (
	"fmt"

	"repro/internal/ident"
)

// View is a group membership epoch: a monotonically increasing identifier
// plus the agreed set of members.
type View struct {
	ID      ident.ViewID
	Members ident.PIDs
}

// String implements fmt.Stringer.
func (v View) String() string {
	return fmt.Sprintf("view %d %v", v.ID, v.Members)
}

// Clone returns an independent copy.
func (v View) Clone() View {
	return View{ID: v.ID, Members: v.Members.Clone()}
}

// Includes reports whether p is a member of v.
func (v View) Includes(p ident.PID) bool { return v.Members.Contains(p) }
