// Package core implements Semantic View Synchrony — the primary
// contribution of the paper (Figure 1): a consensus-based view-synchronous
// group communication protocol extended with purging of obsolete messages
// in the delivery queues and in the flush set agreed at view changes.
//
// Running the engine with the empty obsolescence relation yields classic
// View Synchrony; with a non-trivial relation it provides the two relaxed
// safety properties of §3.2:
//
//   - Semantic View Synchrony: if p installs consecutive views v and v+1
//     and delivers m in v, every process installing both views delivers
//     some m' with m ⊑ m' before installing v+1;
//   - FIFO Semantically Reliable delivery per sender;
//   - Integrity: no creation, no duplication.
//
// One Engine instance embodies one group member. The engine is a single
// event-loop goroutine owning all protocol state; the exported methods are
// a thread-safe facade that communicates with the loop through requests.
package core

import (
	"fmt"
	"hash/fnv"

	"repro/internal/ident"
)

// View is one group membership agreement: a lineage-aware identifier plus
// the agreed set of members. Epoch 0 is the founding lineage; within a
// lineage the ID advances by one per ordinary view change. Splits and
// merges (partition healing) continue under a fresh epoch derived from
// the transition, so two sub-views advancing independently never collide
// on the same (Epoch, ID) pair — and in particular never on the same
// consensus instance name.
type View struct {
	Epoch   ident.Epoch
	ID      ident.ViewID
	Members ident.PIDs
}

// String implements fmt.Stringer.
func (v View) String() string {
	if v.Epoch == 0 {
		return fmt.Sprintf("view %d %v", v.ID, v.Members)
	}
	return fmt.Sprintf("view %s %v", v.Ref(), v.Members)
}

// Ref returns the global name of this view.
func (v View) Ref() ident.ViewRef { return ident.ViewRef{Epoch: v.Epoch, ID: v.ID} }

// Clone returns an independent copy.
func (v View) Clone() View {
	return View{Epoch: v.Epoch, ID: v.ID, Members: v.Members.Clone()}
}

// Includes reports whether p is a member of v.
func (v View) Includes(p ident.PID) bool { return v.Members.Contains(p) }

// SplitEpoch derives the epoch under which a minority of parent continues
// after failing to gather a majority flush: a hash of the parent ref and
// the surviving member set. Deterministic, so every survivor computes the
// same epoch, and distinct splits of the same parent (disjoint minorities,
// or shrinking retries as suspicions accrue) get distinct epochs.
func SplitEpoch(parent ident.ViewRef, members ident.PIDs) ident.Epoch {
	h := fnv.New64a()
	fmt.Fprintf(h, "split/%d/%d", parent.Epoch, parent.ID)
	for _, p := range members {
		fmt.Fprintf(h, "/%s", p)
	}
	return nonZeroEpoch(h.Sum64())
}

// MergeEpoch derives the epoch of the union view two healed sub-views
// agree on. The pair is normalised (lower ref first) so both sides derive
// the same epoch regardless of who initiated the merge.
func MergeEpoch(a, b ident.ViewRef) ident.Epoch {
	if b.Less(a) {
		a, b = b, a
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "merge/%d/%d/%d/%d", a.Epoch, a.ID, b.Epoch, b.ID)
	return nonZeroEpoch(h.Sum64())
}

// nonZeroEpoch keeps derived epochs out of the reserved founding epoch 0
// (a 1-in-2^64 hash collision, but the invariant is cheap to keep).
func nonZeroEpoch(h uint64) ident.Epoch {
	if h == 0 {
		h = 1
	}
	return ident.Epoch(h)
}
