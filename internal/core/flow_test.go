package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

func TestFlowDisabledUnboundedNeverParks(t *testing.T) {
	// Window 0 disables credit flow control entirely; with unbounded
	// queues multicasts never park.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	for i := 1; i <= 100; i++ {
		if err := h.multicast("p0", ident.Seq(i), obsolete.TagAnnot(uint32(i%5)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.members["p0"].eng.Stats(); st.MulticastParks != 0 {
		t.Fatalf("parks = %d with flow control disabled", st.MulticastParks)
	}
	h.verify()
}

func TestFlowStateCredits(t *testing.T) {
	cfg := Config{Self: "me", Window: 4, OutgoingCap: 8, Relation: obsolete.Empty{}}
	f := newFlowState(cfg, ident.NewPIDs("me", "peer"))

	if !f.enabled() {
		t.Fatal("window 4 should enable flow control")
	}
	for i := 0; i < 4; i++ {
		if !f.hasCredit("peer") || !f.takeCredit("peer") {
			t.Fatalf("credit %d unavailable", i)
		}
	}
	if f.hasCredit("peer") || f.takeCredit("peer") {
		t.Fatal("credit available past the window")
	}
	f.credit("peer", 2)
	if !f.takeCredit("peer") || !f.takeCredit("peer") || f.takeCredit("peer") {
		t.Fatal("granted credits miscounted")
	}
	// Negative and zero grants are ignored.
	f.credit("peer", 0)
	f.credit("peer", -5)
	if f.hasCredit("peer") {
		t.Fatal("non-positive grant added credit")
	}
	// Reset re-arms the full window.
	f.reset(ident.NewPIDs("me", "peer"))
	for i := 0; i < 4; i++ {
		if !f.takeCredit("peer") {
			t.Fatalf("credit %d unavailable after reset", i)
		}
	}
}

func TestFlowStateDisabled(t *testing.T) {
	cfg := Config{Self: "me", Relation: obsolete.Empty{}}
	f := newFlowState(cfg, ident.NewPIDs("me", "peer"))
	if f.enabled() {
		t.Fatal("window 0 must disable flow control")
	}
	for i := 0; i < 1000; i++ {
		if !f.takeCredit("peer") {
			t.Fatal("disabled flow control must never refuse")
		}
	}
	if f.pending("peer") != nil {
		t.Fatal("disabled flow control must have no outgoing queues")
	}
}

func TestBlockedProducerUnblocksWhenConsumerResumes(t *testing.T) {
	// A paused consumer exhausts the producer's window; resuming it must
	// release the parked multicast (the engine-level analogue of the
	// perturbation experiment, Fig. 5b).
	h := newGroup(t, harnessOpts{
		n: 2, rel: obsolete.Empty{}, // no purging: pressure builds
		toDeliverCap: 4, outgoingCap: 4, window: 4,
	})
	// Pause p1's application entirely.
	m := h.members["p1"]
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()

	// Fill far beyond window+buffer: the producer must eventually park.
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= 40; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, err := h.members["p0"].eng.Multicast(ctx,
				obsolete.Msg{Sender: "p0", Seq: ident.Seq(i)}, []byte{byte(i)})
			cancel()
			if err != nil {
				done <- err
				return
			}
			h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: ident.Seq(i)}, 1)
		}
		done <- nil
	}()

	// The producer must be stuck while p1 naps...
	select {
	case err := <-done:
		t.Fatalf("producer finished against a stopped consumer: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
	if st := h.members["p0"].eng.Stats(); st.MulticastParks == 0 {
		t.Fatal("producer never parked against a stopped consumer")
	}

	// ... and released once it wakes up.
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("producer never unblocked after consumer resumed")
	}
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", 40) })
	h.verify()
}
