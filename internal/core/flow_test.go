package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/transport"
)

func TestFlowDisabledUnboundedNeverParks(t *testing.T) {
	// Window 0 disables credit flow control entirely; with unbounded
	// queues multicasts never park.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Tagging{}})
	for i := 1; i <= 100; i++ {
		if err := h.multicast("p0", ident.Seq(i), obsolete.TagAnnot(uint32(i%5)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := h.members["p0"].eng.Stats(); st.MulticastParks != 0 {
		t.Fatalf("parks = %d with flow control disabled", st.MulticastParks)
	}
	h.verify()
}

func TestFlowStateCredits(t *testing.T) {
	cfg := Config{Self: "me", Window: 4, OutgoingCap: 8, Relation: obsolete.Empty{}}
	f := newFlowState(cfg, ident.NewPIDs("me", "peer"))

	if !f.enabled() {
		t.Fatal("window 4 should enable flow control")
	}
	for i := 0; i < 4; i++ {
		if !f.hasCredit("peer") || !f.takeCredit("peer") {
			t.Fatalf("credit %d unavailable", i)
		}
	}
	if f.hasCredit("peer") || f.takeCredit("peer") {
		t.Fatal("credit available past the window")
	}
	f.credit("peer", 2)
	if !f.takeCredit("peer") || !f.takeCredit("peer") || f.takeCredit("peer") {
		t.Fatal("granted credits miscounted")
	}
	// Negative and zero grants are ignored.
	f.credit("peer", 0)
	f.credit("peer", -5)
	if f.hasCredit("peer") {
		t.Fatal("non-positive grant added credit")
	}
	// Reset re-arms the full window.
	f.reset(ident.NewPIDs("me", "peer"))
	for i := 0; i < 4; i++ {
		if !f.takeCredit("peer") {
			t.Fatalf("credit %d unavailable after reset", i)
		}
	}
}

func TestFlowStateDisabled(t *testing.T) {
	cfg := Config{Self: "me", Relation: obsolete.Empty{}}
	f := newFlowState(cfg, ident.NewPIDs("me", "peer"))
	if f.enabled() {
		t.Fatal("window 0 must disable flow control")
	}
	for i := 0; i < 1000; i++ {
		if !f.takeCredit("peer") {
			t.Fatal("disabled flow control must never refuse")
		}
	}
	if f.pending("peer") != nil {
		t.Fatal("disabled flow control must have no outgoing queues")
	}
}

// TestDrainOutgoingNeverDropsWithoutCredit pins the drain loop's
// pop/credit ordering: a queued message may only leave the outgoing queue
// when its send is paid for. The old loop popped first and dropped the
// message if the credit check then failed.
func TestDrainOutgoingNeverDropsWithoutCredit(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, err := net.Endpoint("me")
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	pep, err := net.Endpoint("peer")
	if err != nil {
		t.Fatal(err)
	}
	defer pep.Close()
	inbox := pep.Inbox(0, transport.Data)

	cfg := Config{Self: "me", Endpoint: ep, Window: 4, Relation: obsolete.Empty{}}
	e := &Engine{
		cfg:  cfg,
		cv:   View{ID: 3, Members: ident.NewPIDs("me", "peer")},
		flow: newFlowState(cfg, ident.NewPIDs("me", "peer")),
	}
	out := e.flow.pending("peer")
	// One stale leftover from view 2, then five live messages.
	out.ForceAppend(queue.Item{Kind: queue.Data, View: 2, Meta: obsolete.Msg{Sender: "me", Seq: 90}})
	for i := 1; i <= 5; i++ {
		out.ForceAppend(queue.Item{Kind: queue.Data, View: 3, Meta: obsolete.Msg{Sender: "me", Seq: ident.Seq(i)}})
	}
	// Exhaust all but one credit: the drain may send exactly one message,
	// skip the stale head for free, and must keep the rest queued.
	for i := 0; i < 3; i++ {
		e.flow.takeCredit("peer")
	}
	recv := func() []ident.Seq {
		var got []ident.Seq
		for {
			select {
			case env := <-inbox:
				switch m := env.Msg.(type) {
				case DataMsg:
					got = append(got, m.Meta.Seq)
				case *DataBatchMsg:
					for _, dm := range m.Msgs {
						got = append(got, dm.Meta.Seq)
					}
				default:
					t.Fatalf("unexpected data-channel message %T", env.Msg)
				}
			case <-time.After(50 * time.Millisecond):
				return got
			}
		}
	}

	e.drainOutgoing("peer")
	if got := recv(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("first drain sent %v, want [1]", got)
	}
	if out.Len() != 4 {
		t.Fatalf("outgoing holds %d after credit exhaustion, want 4 (nothing dropped)", out.Len())
	}
	// Each granted credit releases exactly the next message, in order.
	e.flow.credit("peer", 2)
	e.drainOutgoing("peer")
	if got := recv(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("second drain sent %v, want [2 3]", got)
	}
	e.flow.credit("peer", 10)
	e.drainOutgoing("peer")
	if got := recv(); len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Fatalf("final drain sent %v, want [4 5]", got)
	}
	if out.Len() != 0 {
		t.Fatalf("outgoing not drained: %d left", out.Len())
	}
}

// TestOwedCreditsFlushWhenSenderBlocked pins the quiescence stall: with
// Window 8 the receiver grants credits in batches of 2, so a single freed
// slot used to sit in `owed` forever if no further traffic arrived —
// leaving the sender parked until an unrelated view change. Now a freed
// slot is granted immediately once the sender is known to have consumed
// its whole window.
func TestOwedCreditsFlushWhenSenderBlocked(t *testing.T) {
	h := newGroup(t, harnessOpts{
		n: 2, rel: obsolete.Empty{}, // no purging: the window really fills
		toDeliverCap: 16, outgoingCap: 4, window: 8,
	})
	consumer := h.members["p1"]
	consumer.mu.Lock()
	consumer.paused = true
	consumer.mu.Unlock()

	// 8 sends exhaust the window, 4 more fill the outgoing queue.
	for i := 1; i <= 12; i++ {
		if err := h.multicast("p0", ident.Seq(i), nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// The 13th has nowhere to go: it parks.
	parked := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_, err := h.members["p0"].eng.Multicast(ctx, obsolete.Msg{Sender: "p0", Seq: 13}, []byte{13})
		parked <- err
	}()
	deadline := time.After(15 * time.Second)
	for h.members["p0"].eng.Stats().MulticastParks == 0 {
		select {
		case <-deadline:
			t.Fatal("producer never parked")
		case <-time.After(time.Millisecond):
		}
	}

	// The paused consumer's application pulls exactly ONE delivery. That
	// frees one slot — below the batch threshold of 2 — and traffic then
	// quiesces. The single owed credit must still reach the sender and
	// release the parked multicast.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	d, err := consumer.eng.Deliver(ctx)
	if err != nil || d.Kind != DeliverData {
		t.Fatalf("manual deliver = %+v, %v", d, err)
	}
	h.rec.Deliver("p1", d.Meta, d.View)

	select {
	case err := <-parked:
		if err != nil {
			t.Fatalf("released multicast failed: %v", err)
		}
		h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: 13}, 1)
	case <-time.After(15 * time.Second):
		t.Fatal("owed credit never flushed: sender still parked after the receiver freed a slot")
	}

	// Drain the rest and verify the run.
	consumer.mu.Lock()
	consumer.paused = false
	consumer.mu.Unlock()
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", 13) })
	h.verify()
}

// TestStaleViewCreditRejected pins the view check on credit grants: a
// credit from another view must not inflate the sender's window.
func TestStaleViewCreditRejected(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}, toDeliverCap: 8, outgoingCap: 1, window: 1})
	consumer := h.members["p1"]
	consumer.mu.Lock()
	consumer.paused = true
	consumer.mu.Unlock()

	// Window 1: the first multicast consumes the only credit, the second
	// queues, the third parks.
	for i := 1; i <= 2; i++ {
		if err := h.multicast("p0", ident.Seq(i), nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if _, err := h.members["p0"].eng.Multicast(ctx, obsolete.Msg{Sender: "p0", Seq: 3}, nil); err == nil {
			h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: 3}, 1)
		}
	}()
	deadline := time.After(15 * time.Second)
	for h.members["p0"].eng.Stats().MulticastParks == 0 {
		select {
		case <-deadline:
			t.Fatal("producer never parked")
		case <-time.After(time.Millisecond):
		}
	}

	// A forged credit grant for a view p0 is not in arrives. It must be
	// discarded (counted), leaving the producer parked.
	if err := consumer.ep.Send("p0", 0, transport.Ctl, CreditMsg{View: 99, Credits: 1000}); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(15 * time.Second)
	for h.members["p0"].eng.Stats().CreditsStaleView == 0 {
		select {
		case <-deadline:
			t.Fatal("stale credit never counted")
		case <-time.After(time.Millisecond):
		}
	}
	if st := h.members["p0"].eng.Stats(); st.MulticastParks == 0 {
		t.Fatalf("producer unexpectedly unparked: %+v", st)
	}

	// Real progress still works once the consumer resumes.
	consumer.mu.Lock()
	consumer.paused = false
	consumer.mu.Unlock()
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", 3) })
	h.verify()
}

// TestDeferredCtlOverflowCounted pins the maxDeferredCtl backstop: control
// envelopes for future views past the cap are dropped, and the drop is
// visible in Stats rather than silent.
func TestDeferredCtlOverflowCounted(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}})
	evil, err := h.net.Endpoint("evil")
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()

	const extra = 7
	for i := 0; i < defaultMaxDeferredCtl+extra; i++ {
		if err := evil.Send("p0", 0, transport.Ctl, InitMsg{View: 99}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(15 * time.Second)
	for h.members["p0"].eng.Stats().CtlDeferredDropped != extra {
		select {
		case <-deadline:
			t.Fatalf("CtlDeferredDropped = %d, want %d",
				h.members["p0"].eng.Stats().CtlDeferredDropped, extra)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func TestBlockedProducerUnblocksWhenConsumerResumes(t *testing.T) {
	// A paused consumer exhausts the producer's window; resuming it must
	// release the parked multicast (the engine-level analogue of the
	// perturbation experiment, Fig. 5b).
	h := newGroup(t, harnessOpts{
		n: 2, rel: obsolete.Empty{}, // no purging: pressure builds
		toDeliverCap: 4, outgoingCap: 4, window: 4,
	})
	// Pause p1's application entirely.
	m := h.members["p1"]
	m.mu.Lock()
	m.paused = true
	m.mu.Unlock()

	// Fill far beyond window+buffer: the producer must eventually park.
	done := make(chan error, 1)
	go func() {
		for i := 1; i <= 40; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_, err := h.members["p0"].eng.Multicast(ctx,
				obsolete.Msg{Sender: "p0", Seq: ident.Seq(i)}, []byte{byte(i)})
			cancel()
			if err != nil {
				done <- err
				return
			}
			h.rec.Multicast(obsolete.Msg{Sender: "p0", Seq: ident.Seq(i)}, 1)
		}
		done <- nil
	}()

	// The producer must be stuck while p1 naps...
	select {
	case err := <-done:
		t.Fatalf("producer finished against a stopped consumer: %v", err)
	case <-time.After(300 * time.Millisecond):
	}
	if st := h.members["p0"].eng.Stats(); st.MulticastParks == 0 {
		t.Fatal("producer never parked against a stopped consumer")
	}

	// ... and released once it wakes up.
	m.mu.Lock()
	m.paused = false
	m.mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("producer never unblocked after consumer resumed")
	}
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", 40) })
	h.verify()
}
