package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// TestRandomizedExecutions drives seeded random schedules — multiple
// concurrent senders, random item updates, interleaved view changes, an
// optional crash — and verifies every recorded execution against the full
// §3.2 specification. This is the engine's main adversarial test.
func TestRandomizedExecutions(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized stress skipped in -short mode")
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runRandomized(t, seed)
		})
	}
}

func runRandomized(t *testing.T, seed int64) {
	const (
		n     = 4
		k     = 64
		ops   = 250
		items = 6
	)
	rng := rand.New(rand.NewSource(seed))
	h := newGroup(t, harnessOpts{
		n:            n,
		rel:          obsolete.KEnumeration{K: k},
		toDeliverCap: 8, outgoingCap: 8, window: 8,
		stability: 5 * time.Millisecond,
	})

	// One slow member per run.
	slow := h.pids[rng.Intn(n)]
	h.members[slow].slowDown(time.Millisecond)

	trackers := make(map[ident.PID]*obsolete.ItemTracker, n)
	lastSeq := make(map[ident.PID]ident.Seq, n)
	for _, p := range h.pids {
		trackers[p] = obsolete.NewItemTracker(obsolete.NewKTracker(k))
	}

	crashed := false
	viewChanges := 0
	var victim ident.PID
	alive := func() ident.PIDs {
		if crashed {
			return h.pids.Remove(victim)
		}
		return h.pids
	}

	for op := 0; op < ops; op++ {
		switch r := rng.Float64(); {
		case r < 0.90: // multicast a random item update from a random member
			senders := alive()
			p := senders[rng.Intn(len(senders))]
			seq, annot := trackers[p].Update(uint32(rng.Intn(items)))
			if err := h.multicast(p, seq, annot, []byte{byte(op)}); err != nil {
				t.Fatalf("op %d: multicast from %s: %v", op, p, err)
			}
			lastSeq[p] = seq
		case r < 0.96: // plain view change from a random member
			p := alive()[rng.Intn(len(alive()))]
			if err := h.members[p].eng.RequestViewChange(); err != nil {
				t.Fatalf("op %d: view change: %v", op, err)
			}
			viewChanges++
		default: // crash one member once, mid-run
			if crashed || op < ops/4 {
				continue
			}
			crashed = true
			victim = h.pids[n-1]
			if victim == slow {
				victim = h.pids[n-2]
			}
			h.net.Crash(victim)
			for _, p := range h.pids.Remove(victim) {
				h.members[p].det.Suspect(victim)
			}
			if err := h.members[alive()[0]].eng.RequestViewChange(victim); err != nil {
				t.Fatalf("op %d: eviction: %v", op, err)
			}
			viewChanges++
		}
	}

	// Close with a final view change so SVS coverage is checked over the
	// whole stream, then wait until the survivors install it.
	final := alive()[0]
	if err := h.members[final].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	viewChanges++

	deadline := time.After(30 * time.Second)
	for _, p := range alive() {
		lastKick := time.Now()
		for {
			v := h.members[p].eng.View()
			ok := v.ID >= 2
			if crashed {
				// A crashed member cannot contribute a pred set, so any
				// completed view change excludes it.
				ok = ok && !v.Members.Contains(victim)
			}
			if ok {
				break
			}
			// Requests issued while the group was blocked coalesce into
			// the in-flight change; re-kick if ours was swallowed.
			if time.Since(lastKick) > 300*time.Millisecond {
				_ = h.members[final].eng.RequestViewChange()
				lastKick = time.Now()
			}
			select {
			case <-deadline:
				t.Fatalf("%s stuck in %v: %+v", p, v, h.members[p].eng.Stats())
			case <-time.After(3 * time.Millisecond):
			}
		}
	}

	// Drain: every surviving member must eventually hold each sender's
	// final message (it is maximal, so it can never be purged).
	for _, p := range alive() {
		for s, seq := range lastSeq {
			if crashed && s == victim {
				continue // the victim's tail may legitimately be lost pre-flush
			}
			s, seq := s, seq
			h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, s, seq) })
		}
	}
	h.verify()
	t.Logf("seed %d: %d view changes, crash=%v, slow=%s", seed, viewChanges, crashed, slow)
}
