package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// Node is the multi-group runtime: it hosts any number of independent SVS
// group instances on one shared transport endpoint. The paper's motivating
// workload (§5) is naturally many small groups — rooms, regions, topics —
// and a Node is what lets one OS process serve them all instead of one
// process per group.
//
// The Node owns the pieces that are per-node, not per-group:
//
//   - the transport endpoint, whose (GroupID, Channel) inboxes demultiplex
//     one connection pair per peer across every shared group;
//   - a single failure detector (by default a heartbeat detector beating
//     once per peer in ident.NodeGroup, no matter how many groups share
//     that peer), whose suspicions fan out to every hosted group through
//     an fd.Fanout.
//
// Everything else stays per-group and fully isolated: each group runs its
// own Engine (protocol loop, delivery queue, flow-control windows,
// per-peer outgoing queues) and its own consensus service, keyed by group
// on the wire. A blocked or slow group therefore never delays another
// group's data or control plane — the §5.3 buffer-separation rule lifted
// to group granularity.
type Node struct {
	cfg NodeConfig
	obs *obs.Obs      // node-labelled bundle; groups derive from it
	hb  *fd.Heartbeat // non-nil when the node owns its detector
	det fd.Detector
	fan *fd.Fanout

	mu     sync.Mutex
	groups map[ident.GroupID]*Group
	// groupPeers tracks each hosted group's *current* peers (initial
	// view at Create, then every installed view via groupDetector): the
	// node-owned heartbeat monitors exactly the union, so a peer evicted
	// from its last shared group stops being beaten and re-dialed.
	groupPeers map[ident.GroupID]ident.PIDs
	closed     bool
}

// NodeConfig assembles a Node.
type NodeConfig struct {
	// Self is this process's identifier; it must equal Endpoint.Self().
	Self ident.PID
	// Endpoint is the shared transport attachment. The Node owns it:
	// Close closes it.
	Endpoint transport.Endpoint
	// Detector optionally supplies the shared failure detector (already
	// started). When nil the Node runs its own fd.Heartbeat over the
	// endpoint, monitoring the union of all hosted groups' initial
	// memberships, and stops it on Close.
	Detector fd.Detector
	// Heartbeat tunes the node-owned heartbeat detector (ignored when
	// Detector is set).
	Heartbeat fd.HeartbeatOptions
	// Obs supplies the clock, metrics registry and structured-event sink
	// shared by everything the node runs: the heartbeat detector records
	// under it directly, and every hosted group's engine gets a derived
	// bundle labelled with the group id (so one registry snapshot separates
	// the groups). Nil means the wall clock with no instrumentation.
	Obs *obs.Obs
}

// GroupConfig configures one hosted group; it is Config minus the fields
// the Node supplies (Self, Group, Endpoint, Detector).
type GroupConfig struct {
	// InitialView is the agreed first view (same at every member).
	InitialView View
	// Relation is the obsolescence relation; nil means classic VS.
	Relation obsolete.Relation
	// ToDeliverCap / OutgoingCap / Window bound this group's protocol
	// buffers, independently of every other group (see Config).
	ToDeliverCap int
	OutgoingCap  int
	Window       int
	// AutoEvict triggers eviction view changes on suspicion (see Config).
	AutoEvict bool
	// StabilityInterval enables reception-frontier gossip (see Config).
	StabilityInterval time.Duration
	// Heal enables partition healing for this group (see Config.Heal).
	Heal *HealSpec
	// MaxDeferredCtl bounds the future-view control stash (see Config).
	MaxDeferredCtl int
}

// Group is one hosted group: the Engine facade (Multicast, Deliver,
// RequestViewChange, View, Stats) plus the node-side lifecycle.
type Group struct {
	*Engine

	node *Node
	id   ident.GroupID
	tap  *fd.Tap
}

// groupDetector is the Detector handed to one group's engine: the shared
// detector's Tap for events and queries, plus the view-install SetPeers
// hook (protocol.go), which reports the group's current membership back
// to the node so the shared heartbeat tracks view changes — without it,
// a peer evicted from every group would be monitored (and re-dialed)
// forever.
type groupDetector struct {
	*fd.Tap
	node *Node
	id   ident.GroupID
}

// SetPeers reports the group's newly installed membership to the node.
func (d *groupDetector) SetPeers(members ident.PIDs) {
	d.node.setGroupPeers(d.id, members)
}

// ID returns the group's identifier.
func (g *Group) ID() ident.GroupID { return g.id }

// NewNode returns a running node hosting no groups yet.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("core: node config: Self is required")
	}
	if cfg.Endpoint == nil {
		return nil, fmt.Errorf("core: node config: Endpoint is required")
	}
	if cfg.Endpoint.Self() != cfg.Self {
		return nil, fmt.Errorf("core: node config: Endpoint.Self() %q != Self %q", cfg.Endpoint.Self(), cfg.Self)
	}
	n := &Node{
		cfg:        cfg,
		obs:        cfg.Obs,
		det:        cfg.Detector,
		groups:     make(map[ident.GroupID]*Group),
		groupPeers: make(map[ident.GroupID]ident.PIDs),
	}
	// Endpoints that can mirror their drop counters onto an obs registry
	// (both in-tree transports) get the node's bundle; transports without
	// the hook are left alone.
	if in, ok := cfg.Endpoint.(interface{ Instrument(*obs.Obs) }); ok {
		in.Instrument(n.obs)
	}
	if n.det == nil {
		hbo := cfg.Heartbeat
		if hbo.Obs == nil {
			hbo.Obs = n.obs
		}
		n.hb = fd.NewHeartbeat(cfg.Endpoint, nil, hbo)
		n.hb.Start()
		n.det = n.hb
	}
	n.fan = fd.NewFanout(n.det)
	return n, nil
}

// Self returns this node's process identifier.
func (n *Node) Self() ident.PID { return n.cfg.Self }

// Detector returns the shared failure detector.
func (n *Node) Detector() fd.Detector { return n.det }

// Obs returns the node's observability bundle (nil when none was given).
func (n *Node) Obs() *obs.Obs { return n.obs }

// Metrics snapshots every instrument the node and its groups have
// recorded. With no registry attached the snapshot is empty, never nil.
func (n *Node) Metrics() obs.Snapshot {
	return n.obs.Registry().Snapshot()
}

// Groups returns the identifiers of the hosted groups, sorted.
func (n *Node) Groups() []ident.GroupID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ident.GroupID, 0, len(n.groups))
	for g := range n.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Group returns the hosted group g, if any.
func (n *Node) Group(g ident.GroupID) (*Group, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	grp, ok := n.groups[g]
	return grp, ok
}

// host implements Create and Join: it wires a group-scoped engine onto
// the node's shared endpoint and detector. join selects the engine's
// bootstrap mode.
func (n *Node) host(id ident.GroupID, gc GroupConfig, join *JoinSpec) (*Group, error) {
	if id == ident.NodeGroup {
		return nil, fmt.Errorf("core: group id %d is reserved for node-scoped traffic", id)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("core: node closed")
	}
	if _, dup := n.groups[id]; dup {
		n.mu.Unlock()
		return nil, fmt.Errorf("core: group %d already hosted", id)
	}
	n.mu.Unlock()

	// Inboxes must exist before the first peer envelope can arrive for
	// the group (engine.New registers too; this keeps the window closed
	// even if construction fails midway and stray traffic shows up).
	n.cfg.Endpoint.Register(id)
	tap := n.fan.Tap()
	eng, err := New(Config{
		Self:              n.cfg.Self,
		Group:             id,
		Endpoint:          n.cfg.Endpoint,
		Detector:          &groupDetector{Tap: tap, node: n, id: id},
		InitialView:       gc.InitialView,
		Join:              join,
		Relation:          gc.Relation,
		ToDeliverCap:      gc.ToDeliverCap,
		OutgoingCap:       gc.OutgoingCap,
		Window:            gc.Window,
		AutoEvict:         gc.AutoEvict,
		StabilityInterval: gc.StabilityInterval,
		Heal:              gc.Heal,
		MaxDeferredCtl:    gc.MaxDeferredCtl,
		Obs:               n.obs.With(obs.L("group", fmt.Sprint(id))),
	})
	if err != nil {
		tap.Stop()
		n.deregisterIfUnhosted(id)
		return nil, err
	}
	grp := &Group{Engine: eng, node: n, id: id, tap: tap}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		tap.Stop()
		return nil, fmt.Errorf("core: node closed")
	}
	if _, dup := n.groups[id]; dup {
		n.mu.Unlock()
		tap.Stop()
		return nil, fmt.Errorf("core: group %d already hosted", id)
	}
	n.groups[id] = grp
	// A joiner monitors its contacts until the first installed view
	// reports the real membership through the SetPeers hook.
	peers := gc.InitialView.Members
	if join != nil {
		peers = join.Contacts
	}
	n.groupPeers[id] = peers.Clone().Remove(n.cfg.Self)
	n.syncPeersLocked()
	n.mu.Unlock()

	if err := eng.Start(); err != nil {
		grp.Leave()
		return nil, err
	}
	return grp, nil
}

// Join hosts group id by joining it while it runs: instead of agreeing an
// initial view with the other members (Create), the node asks the contact
// members for admission and installs its first view — membership,
// reception frontiers, and the relation-purged unstable backlog — from
// the state transfer that follows the admitting view change. The group
// behaves like any other hosted group from then on. gc.InitialView is
// ignored.
func (n *Node) Join(id ident.GroupID, gc GroupConfig, contacts ...ident.PID) (*Group, error) {
	return n.host(id, gc, &JoinSpec{Contacts: ident.NewPIDs(contacts...)})
}

// JoinWith is Join with an explicit JoinSpec, for callers that need to
// tune the retransmission backoff or set a give-up budget (JoinSpec.GiveUp)
// instead of retrying dead contacts forever.
func (n *Node) JoinWith(id ident.GroupID, gc GroupConfig, spec JoinSpec) (*Group, error) {
	return n.host(id, gc, &spec)
}

// Create joins this node to group id as a founding member: it registers
// the group's transport inboxes, taps the shared failure detector, and
// starts a group-scoped engine. Every founding member must Create the
// group with the same id and InitialView.
func (n *Node) Create(id ident.GroupID, gc GroupConfig) (*Group, error) {
	return n.host(id, gc, nil)
}

// Add asks the group to admit the given processes, which must be running
// joining engines (Node.Join or Config.Join). It returns once the view
// change is initiated; the joiners appear in the next installed view and
// receive their state transfer from the sponsor.
func (g *Group) Add(ps ...ident.PID) error {
	return g.Engine.RequestMembershipChange(ident.NewPIDs(ps...), nil)
}

// deregisterIfUnhosted undoes Create's eager inbox registration on an
// error path — unless the group is (or became) hosted, in which case the
// inboxes belong to the live engine.
func (n *Node) deregisterIfUnhosted(id ident.GroupID) {
	n.mu.Lock()
	_, hosted := n.groups[id]
	n.mu.Unlock()
	if !hosted {
		n.cfg.Endpoint.Deregister(id)
	}
}

// setGroupPeers records group id's newly installed membership and
// re-syncs the heartbeat peer set. Calls for groups no longer hosted
// (a view install racing Leave) are ignored.
func (n *Node) setGroupPeers(id ident.GroupID, members ident.PIDs) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, hosted := n.groups[id]; !hosted {
		return
	}
	n.groupPeers[id] = members.Clone().Remove(n.cfg.Self)
	n.syncPeersLocked()
}

// syncPeersLocked pushes the union of all groups' current peers into the
// node-owned heartbeat detector. Callers hold n.mu.
func (n *Node) syncPeersLocked() {
	if n.hb == nil {
		return
	}
	var union ident.PIDs
	for _, peers := range n.groupPeers {
		union = union.Union(peers)
	}
	n.hb.SetPeers(union)
}

// Leave detaches the group from its node: the engine stops, the detector
// tap closes, the transport inboxes are deregistered (stray traffic for
// the group is dropped and counted from then on), and peers no group
// shares anymore stop being monitored. Leave is idempotent.
func (g *Group) Leave() {
	n := g.node
	n.mu.Lock()
	if n.groups[g.id] != g {
		n.mu.Unlock()
		return // already left (or superseded)
	}
	delete(n.groups, g.id)
	delete(n.groupPeers, g.id)
	n.syncPeersLocked()
	n.mu.Unlock()

	g.Engine.Stop()
	g.tap.Stop()
	n.cfg.Endpoint.Deregister(g.id)
}

// Close shuts the node down: every hosted group leaves, the detector
// fan-out stops, the node-owned heartbeat (if any) stops, and the shared
// endpoint closes. Close is idempotent.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	groups := make([]*Group, 0, len(n.groups))
	for _, g := range n.groups {
		groups = append(groups, g)
	}
	n.groups = make(map[ident.GroupID]*Group)
	n.groupPeers = make(map[ident.GroupID]ident.PIDs)
	n.mu.Unlock()

	for _, g := range groups {
		g.Engine.Stop()
		g.tap.Stop()
		n.cfg.Endpoint.Deregister(g.id)
	}
	n.fan.Stop()
	if n.hb != nil {
		n.hb.Stop()
	}
	return n.cfg.Endpoint.Close()
}
