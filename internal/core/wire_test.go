package core

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func TestConsensusValueRoundTrip(t *testing.T) {
	val := consensusValue{
		Next: View{ID: 7, Members: ident.NewPIDs("a", "b", "c")},
		Pred: []DataMsg{
			{View: 6, Meta: obsolete.Msg{Sender: "a", Seq: 1, Annot: []byte{1}}, Payload: []byte("x")},
			{View: 6, Meta: obsolete.Msg{Sender: "b", Seq: 9}, Payload: nil},
		},
	}
	raw, err := encodeValue(val)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Next.ID != val.Next.ID || !got.Next.Members.Equal(val.Next.Members) {
		t.Fatalf("Next = %+v, want %+v", got.Next, val.Next)
	}
	if len(got.Pred) != len(val.Pred) {
		t.Fatalf("Pred len %d, want %d", len(got.Pred), len(val.Pred))
	}
	for i := range val.Pred {
		if got.Pred[i].Meta.ID() != val.Pred[i].Meta.ID() || got.Pred[i].View != val.Pred[i].View {
			t.Fatalf("Pred[%d] = %+v, want %+v", i, got.Pred[i], val.Pred[i])
		}
	}
}

func TestDecodeValueRejectsGarbage(t *testing.T) {
	if _, err := decodeValue([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := decodeValue(nil); err == nil {
		t.Fatal("empty accepted")
	}
	// A format byte from a different (e.g. future) release is rejected
	// instead of mis-decoded — there is no cross-format fallback anymore.
	if _, err := decodeValue([]byte{valueFormat + 1, 0, 0}); err == nil {
		t.Fatal("unknown format byte accepted")
	}
}

func TestEmptyViewValueRoundTrip(t *testing.T) {
	// An expelling decision can carry a view the encoder's process is not
	// in; empty pred sets and single-member views must survive encoding.
	val := consensusValue{Next: View{ID: 2, Members: ident.NewPIDs("solo")}}
	raw, err := encodeValue(val)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pred) != 0 || got.Next.Members.Equal(ident.NewPIDs()) {
		t.Fatalf("got %+v", got)
	}
}

func TestViewInstanceNaming(t *testing.T) {
	if viewInstance(ident.ViewRef{ID: 3}) == viewInstance(ident.ViewRef{ID: 4}) {
		t.Fatal("instance names must be distinct per view")
	}
	if viewInstance(ident.ViewRef{Epoch: 7, ID: 3}) == viewInstance(ident.ViewRef{ID: 3}) {
		t.Fatal("instance names must be distinct per lineage")
	}
}

func TestViewHelpers(t *testing.T) {
	v := View{ID: 3, Members: ident.NewPIDs("a", "b")}
	if !v.Includes("a") || v.Includes("z") {
		t.Fatal("Includes wrong")
	}
	c := v.Clone()
	c.Members = c.Members.Remove("a")
	if !v.Includes("a") {
		t.Fatal("Clone shares membership")
	}
	if v.String() == "" {
		t.Fatal("String empty")
	}
	if DeliverData.String() != "data" || DeliverView.String() != "view" ||
		DeliverExpelled.String() != "expelled" || DeliveryKind(99).String() != "unknown" {
		t.Fatal("DeliveryKind.String wrong")
	}
}
