package core

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func TestConsensusValueRoundTrip(t *testing.T) {
	val := consensusValue{
		Next: View{ID: 7, Members: ident.NewPIDs("a", "b", "c")},
		Pred: []DataMsg{
			{View: 6, Meta: obsolete.Msg{Sender: "a", Seq: 1, Annot: []byte{1}}, Payload: []byte("x")},
			{View: 6, Meta: obsolete.Msg{Sender: "b", Seq: 9}, Payload: nil},
		},
	}
	raw, err := encodeValue(val)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Next.ID != val.Next.ID || !got.Next.Members.Equal(val.Next.Members) {
		t.Fatalf("Next = %+v, want %+v", got.Next, val.Next)
	}
	if len(got.Pred) != len(val.Pred) {
		t.Fatalf("Pred len %d, want %d", len(got.Pred), len(val.Pred))
	}
	for i := range val.Pred {
		if got.Pred[i].Meta.ID() != val.Pred[i].Meta.ID() || got.Pred[i].View != val.Pred[i].View {
			t.Fatalf("Pred[%d] = %+v, want %+v", i, got.Pred[i], val.Pred[i])
		}
	}
}

func TestDecodeValueRejectsGarbage(t *testing.T) {
	if _, err := decodeValue([]byte("not gob")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := decodeValue(nil); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestEmptyViewValueRoundTrip(t *testing.T) {
	// An expelling decision can carry a view the encoder's process is not
	// in; empty pred sets and single-member views must survive encoding.
	val := consensusValue{Next: View{ID: 2, Members: ident.NewPIDs("solo")}}
	raw, err := encodeValue(val)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pred) != 0 || got.Next.Members.Equal(ident.NewPIDs()) {
		t.Fatalf("got %+v", got)
	}
}

func TestWireMessagesAreGobRegistered(t *testing.T) {
	// Every wire message must encode through an interface value, as the
	// TCP transport sends them.
	msgs := []any{
		DataMsg{View: 1, Meta: obsolete.Msg{Sender: "a", Seq: 1}},
		InitMsg{View: 1, Leave: []ident.PID{"x"}},
		PredMsg{View: 1, Msgs: []DataMsg{{View: 1}}},
		CreditMsg{View: 1, Credits: 3},
		StableMsg{View: 1, Recv: map[ident.PID]ident.Seq{"a": 5}},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		wrapped := struct{ M any }{M: m}
		if err := gob.NewEncoder(&buf).Encode(&wrapped); err != nil {
			t.Fatalf("%T not encodable through interface: %v", m, err)
		}
		var out struct{ M any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T not decodable: %v", m, err)
		}
	}
}

func TestViewInstanceNaming(t *testing.T) {
	if viewInstance(3) == viewInstance(4) {
		t.Fatal("instance names must be distinct per view")
	}
}

func TestViewHelpers(t *testing.T) {
	v := View{ID: 3, Members: ident.NewPIDs("a", "b")}
	if !v.Includes("a") || v.Includes("z") {
		t.Fatal("Includes wrong")
	}
	c := v.Clone()
	c.Members = c.Members.Remove("a")
	if !v.Includes("a") {
		t.Fatal("Clone shares membership")
	}
	if v.String() == "" {
		t.Fatal("String empty")
	}
	if DeliverData.String() != "data" || DeliverView.String() != "view" ||
		DeliverExpelled.String() != "expelled" || DeliveryKind(99).String() != "unknown" {
		t.Fatal("DeliveryKind.String wrong")
	}
}

// TestDecodeValueGobFallback: during the one-release gob migration
// window, a consensus value encoded by the previous (gob) release must
// still decode.
func TestDecodeValueGobFallback(t *testing.T) {
	val := consensusValue{
		Next: View{ID: 7, Members: ident.NewPIDs("a", "b")},
		Pred: []DataMsg{{View: 6, Meta: obsolete.Msg{Sender: "a", Seq: 1, Annot: []byte{1}}, Payload: []byte("x")}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(val); err != nil {
		t.Fatal(err)
	}
	got, err := decodeValue(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Next.ID != val.Next.ID || !got.Next.Members.Equal(val.Next.Members) || len(got.Pred) != 1 {
		t.Fatalf("got %+v, want %+v", got, val)
	}
}
