package core

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// lockedBuf is a bytes.Buffer safe to read while a slog handler writes.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestNodeObservability runs a 3-node group with a full obs bundle per
// node and checks the whole surface at once: per-group labelled counters,
// purge activity under an enumeration relation, the view gauge following
// an installed view change, heartbeat instruments, delivery-latency
// samples, and the view_install structured event. Metrics()/Stats() are
// polled concurrently with the protocol loops throughout, so -race covers
// snapshotting against live instruments.
func TestNodeObservability(t *testing.T) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("n0", "n1", "n2")
	view0 := View{ID: 1, Members: pids}
	const gid = ident.GroupID(7)

	type bundle struct {
		node *Node
		g    *Group
		reg  *obs.Registry
		buf  *lockedBuf
	}
	nodes := make(map[ident.PID]*bundle)
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		buf := &lockedBuf{}
		logger := slog.New(slog.NewJSONHandler(buf, nil))
		node, err := NewNode(NodeConfig{
			Self:      p,
			Endpoint:  ep,
			Heartbeat: fd.HeartbeatOptions{Interval: 10 * time.Millisecond},
			Obs:       obs.New(nil, reg, logger),
		})
		if err != nil {
			t.Fatal(err)
		}
		g, err := node.Create(gid, GroupConfig{
			InitialView: view0,
			Relation:    obsolete.KEnumeration{K: 4},
			Window:      8,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = &bundle{node: node, g: g, reg: reg, buf: buf}
	}
	defer func() {
		for _, b := range nodes {
			b.node.Close()
		}
	}()

	// Hammer the read-side facades while the protocol runs.
	stop := make(chan struct{})
	var hammer sync.WaitGroup
	for _, b := range nodes {
		hammer.Add(1)
		go func(b *bundle) {
			defer hammer.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = b.node.Metrics()
				_ = b.g.Stats()
				_ = b.g.View()
			}
		}(b)
	}
	defer func() { close(stop); hammer.Wait() }()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	key := func(name string) string { return fmt.Sprintf("%s{group=%d}", name, gid) }

	// Multicast a chain where each message obsoletes its predecessor; no
	// application delivers yet, so arrivals must purge queued entries to
	// keep the sender's window refilling (the SVS core claim).
	tr := obsolete.NewEnumTracker(4)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	const msgs = 12
	for i := 0; i < msgs; i++ {
		var seq ident.Seq
		var annot []byte
		if prev := tr.Seq(); prev > 0 {
			seq, annot = tr.Next(prev)
		} else {
			seq, annot = tr.Next()
		}
		if _, err := nodes["n0"].g.Multicast(ctx, obsolete.Msg{Sender: "n0", Seq: seq, Annot: annot}, []byte("x")); err != nil {
			t.Fatalf("multicast %d: %v", seq, err)
		}
	}

	snap0 := nodes["n0"].reg.Snapshot()
	if got := snap0.Counters[key("engine_multicast_total")]; got != msgs {
		t.Fatalf("engine_multicast_total = %d, want %d (keys %v)", got, msgs, snap0.Counters)
	}
	// The receivers purge obsoleted entries as later messages arrive.
	waitFor("purge activity at n1", func() bool {
		return nodes["n1"].reg.Snapshot().Gauges[key("engine_purged_todeliver")] > 0
	})

	// A membership-preserving view change: every node's view gauge must
	// follow the install, and the change must be timed.
	if err := nodes["n0"].g.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pids {
		b := nodes[p]
		waitFor(fmt.Sprintf("%s installing view 2", p), func() bool {
			return b.reg.Snapshot().Gauges[key("engine_view")] == 2
		})
	}
	snap0 = nodes["n0"].reg.Snapshot()
	if got := snap0.Counters[key("engine_views_installed_total")]; got != 1 {
		t.Fatalf("engine_views_installed_total = %d, want 1", got)
	}
	if h := snap0.Histograms[key("engine_view_change_seconds")]; h.Count != 1 {
		t.Fatalf("engine_view_change_seconds count = %d, want 1", h.Count)
	}

	// Drain deliveries: the survivors of the purge chain plus the view
	// marker. Latency samples must appear once data is handed over.
	for _, p := range pids {
		b := nodes[p]
		go func() {
			for {
				if _, err := b.g.Deliver(ctx); err != nil {
					return
				}
			}
		}()
		waitFor(fmt.Sprintf("%s delivering data", p), func() bool {
			return b.reg.Snapshot().Counters[key("engine_delivered_total")] >= 1
		})
	}
	snap1 := nodes["n1"].reg.Snapshot()
	if h := snap1.Histograms[key("engine_deliver_latency_seconds")]; h.Count == 0 {
		t.Fatal("no delivery-latency samples at n1")
	}
	// The heartbeat records under the same registry, unlabelled by group.
	if snap1.Counters["fd_beats_sent_total"] == 0 {
		t.Fatal("heartbeat sent no beats")
	}
	if _, ok := snap1.Gauges["fd_suspected{peer=n0}"]; !ok {
		t.Fatalf("no per-peer heartbeat gauge: %v", snap1.Gauges)
	}

	// Structured events: the install must have been logged with the group
	// label attached by the derived bundle.
	waitFor("view_install event at n2", func() bool {
		s := nodes["n2"].buf.String()
		return strings.Contains(s, `"msg":"view_install"`) && strings.Contains(s, `"group":"7"`)
	})
}
