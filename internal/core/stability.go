package core

import (
	"repro/internal/ident"
	"repro/internal/queue"
	"repro/internal/transport"
)

// Stability tracking (optional, Config.StabilityInterval > 0).
//
// §2.1 of the paper observes that a view-synchronous protocol must keep a
// message buffered "until it is known to be stable, i.e. received by all
// processes", because the view-change flush may need any process to
// retransmit it. Tracking stability lets the engine (a) drop stable
// entries from the per-view delivery history and (b) exclude them from
// the pred sets exchanged at t5 — shrinking both steady-state memory and
// the flush set agreed by consensus, which is what keeps view changes
// cheap (§5.4).
//
// Mechanism: every StabilityInterval each member gossips its per-sender
// reception frontier (StableMsg). A message from s with sequence number
// at or below the minimum frontier reported by every current member has
// been received everywhere: each member either still buffers it, already
// delivered it, or purged/discarded it under a covering message — in all
// three cases the SVS obligations for it are met without flushing it.

// StableMsg is the reception-frontier gossip.
type StableMsg struct {
	View  ident.ViewID
	Epoch ident.Epoch
	// Recv maps each sender to the highest sequence number the reporter
	// has received from it (reception is FIFO, so frontiers are dense).
	Recv map[ident.PID]ident.Seq
}

// recvSnapshot copies this process's per-sender reception frontier,
// including its own stream: everything we multicast is trivially received
// here. Both the stability gossip and the join state transfer ship it.
func (e *Engine) recvSnapshot() map[ident.PID]ident.Seq {
	recv := make(map[ident.PID]ident.Seq, len(e.recvMax)+1)
	for s, q := range e.recvMax {
		recv[s] = q
	}
	if e.lastSent > recv[e.cfg.Self] {
		recv[e.cfg.Self] = e.lastSent
	}
	return recv
}

// gossipStability broadcasts this process's reception frontier.
func (e *Engine) gossipStability() {
	if e.expelled || e.blocked {
		return
	}
	m := StableMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Recv: e.recvSnapshot()}
	for _, p := range e.cv.Members {
		if p == e.cfg.Self {
			e.onStable(p, m)
			continue
		}
		e.send(p, transport.Ctl, m)
	}
}

// onStable folds a frontier report into the stability table.
func (e *Engine) onStable(from ident.PID, m StableMsg) {
	if m.View != e.cv.ID || m.Epoch != e.cv.Epoch || !e.cv.Includes(from) {
		return
	}
	if e.recvTable == nil {
		e.recvTable = make(map[ident.PID]map[ident.PID]ident.Seq)
	}
	row := make(map[ident.PID]ident.Seq, len(m.Recv))
	for s, q := range m.Recv {
		row[s] = q
	}
	e.recvTable[from] = row
	e.recomputeStable()
}

// recomputeStable derives the group-wide stable frontier: per sender, the
// minimum frontier over every current member. Members that have not
// reported yet hold everything at zero.
func (e *Engine) recomputeStable() {
	if e.stable == nil {
		e.stable = make(map[ident.PID]ident.Seq)
	}
	senders := make(map[ident.PID]struct{})
	for _, row := range e.recvTable {
		for s := range row {
			senders[s] = struct{}{}
		}
	}
	for s := range senders {
		min := ident.Seq(0)
		first := true
		for _, q := range e.cv.Members {
			row := e.recvTable[q]
			v := row[s] // zero when q never reported (or lacks s)
			if first || v < min {
				min, first = v, false
			}
		}
		if min > e.stable[s] {
			e.stable[s] = min
		}
	}
	e.pruneStable()
}

// pruneStable drops stable entries from the delivery history: they will
// never need to be flushed, so their payloads can be reclaimed.
//
// With healing enabled the current view's entries are exempt: "received
// by all processes" is a fact about *this view's* members, but a merge
// contributes the view's non-obsolete backlog to the far side of a
// healed partition — processes the stable frontier never covered.
// Relation purging still bounds the retained history at O(window); only
// flush-adopted entries tagged with older views remain prunable.
func (e *Engine) pruneStable() {
	if len(e.stable) == 0 {
		return
	}
	removed := e.delivered.RemoveIf(func(it queue.Item) bool {
		if it.Kind != queue.Data || !e.isStable(it.Meta.Sender, it.Meta.Seq) {
			return false
		}
		if e.cfg.Heal != nil && it.View == uint64(e.cv.ID) && it.Epoch == uint64(e.cv.Epoch) {
			return false
		}
		return true
	})
	e.stats.StablePruned += uint64(removed)
	e.m.stablePruned.Add(uint64(removed))
}

// isStable reports whether message (s, seq) is known received everywhere.
func (e *Engine) isStable(s ident.PID, seq ident.Seq) bool {
	return seq <= e.stable[s]
}

// resetStabilityForView clears per-view rows after a membership change;
// the stable frontier itself is monotone and survives (sequence numbers
// are global per sender).
func (e *Engine) resetStabilityForView() {
	e.recvTable = make(map[ident.PID]map[ident.PID]ident.Seq)
}
