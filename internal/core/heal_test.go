package core

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obs"
)

// healProbe is the probe interval of the fake-clock healing tests: every
// advance step fires one round of discovery beacons on each engine.
const healProbe = 100 * time.Millisecond

// lastView reads the most recent view p's application loop reported.
func (h *groupHarness) lastView(p ident.PID) View {
	m := h.members[p]
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lastView
}

// advanceUntil drives the shared fake clock one probe interval per poll
// step until cond holds. The protocol itself is message-driven; the
// clock advances only gate the healing beacons, so each step is one
// probe round.
func (h *groupHarness) advanceUntil(fake *obs.Fake, what string, cond func() bool) {
	h.t.Helper()
	deadline := time.After(20 * time.Second)
	for {
		if cond() {
			return
		}
		fake.Advance(healProbe)
		select {
		case <-deadline:
			h.t.Fatalf("%s: condition never met", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// deliveredBeforeInstall reports whether log delivers (sender, seq)
// strictly before the install of ref.
func deliveredBeforeInstall(log []check.Event, sender ident.PID, seq ident.Seq, ref ident.ViewRef) bool {
	for _, ev := range log {
		switch ev.Kind {
		case check.EvDeliver:
			if ev.Meta.Sender == sender && ev.Meta.Seq == seq {
				return true
			}
		case check.EvInstall:
			if ev.Ref == ref {
				return false
			}
		}
	}
	return false
}

// TestPartitionHealSplitAndMerge is the deterministic healing scenario:
// a five-member group partitions 3|2. The majority completes an ordinary
// eviction on the founding lineage; the reachable minority, which could
// never decide that change (its quorum is unreachable), splits into a
// sub-view under a fresh epoch. Both sides multicast divergent traffic.
// After the network heals, probes rediscover the far side and both
// sub-views merge into a union view carrying each other's backlog —
// delivered before the union marker, exactly as SVS demands across any
// view change. The whole run is then replayed through the oracle.
func TestPartitionHealSplitAndMerge(t *testing.T) {
	fake := obs.NewFake(time.Unix(0, 0))
	h := newGroup(t, harnessOpts{
		n:         5,
		autoEvict: true,
		heal:      &HealSpec{ProbeInterval: healProbe, MergeTimeout: time.Hour},
		clock:     fake,
	})
	maj, min := h.pids[:3], h.pids[3:] // {p0,p1,p2} | {p3,p4}

	// Partition the sides and let every detector see the far side fail.
	for _, a := range maj {
		for _, b := range min {
			h.net.CutBoth(a, b)
		}
	}
	for _, a := range maj {
		for _, b := range min {
			h.members[a].det.Suspect(b)
			h.members[b].det.Suspect(a)
		}
	}

	// The majority evicts the minority with an ordinary view change on
	// the founding lineage (epoch 0).
	var majView View
	h.advanceUntil(fake, "majority eviction view", func() bool {
		for _, p := range maj {
			v := h.lastView(p)
			if v.ID != 2 || v.Epoch != 0 {
				return false
			}
			majView = v
		}
		return true
	})
	if !majView.Members.Equal(maj) {
		t.Fatalf("majority view members %v, want %v", majView.Members, maj)
	}

	// The minority splits: same view number, fresh lineage epoch derived
	// from (parent ref, member set).
	var minView View
	h.advanceUntil(fake, "minority split view", func() bool {
		for _, p := range min {
			v := h.lastView(p)
			if v.ID != 2 || v.Epoch == 0 {
				return false
			}
			minView = v
		}
		return true
	})
	if !minView.Members.Equal(min) {
		t.Fatalf("split view members %v, want %v", minView.Members, min)
	}
	if want := SplitEpoch(ident.ViewRef{ID: 1}, min); minView.Epoch != want {
		t.Fatalf("split epoch %x, want SplitEpoch %x", minView.Epoch, want)
	}

	// Divergent traffic on both sides of the partition: this is the
	// backlog the merge must carry across.
	for s := ident.Seq(1); s <= 3; s++ {
		if err := h.multicast(maj[0], s, nil, []byte("majority")); err != nil {
			t.Fatalf("majority multicast %d: %v", s, err)
		}
		if err := h.multicast(min[0], s, nil, []byte("minority")); err != nil {
			t.Fatalf("minority multicast %d: %v", s, err)
		}
	}

	// Heal: withdraw the suspicions first (the merge proposal treats a
	// suspected member as excludable), then reconnect the links.
	for _, a := range maj {
		for _, b := range min {
			h.members[a].det.Restore(b)
			h.members[b].det.Restore(a)
		}
	}
	for _, a := range maj {
		for _, b := range min {
			h.net.Heal(a, b)
			h.net.Heal(b, a)
		}
	}

	// The union ref is deterministic: both initiators normalise the sides
	// the same way, so re-runs land on the same consensus instance.
	la, lb := majView.Ref(), minView.Ref()
	if lb.Less(la) {
		la, lb = lb, la
	}
	wantUnion := mergeRefFor(la, lb)

	h.advanceUntil(fake, "union view "+wantUnion.String(), func() bool {
		for _, p := range h.pids {
			if h.lastView(p).Ref() != wantUnion {
				return false
			}
		}
		return true
	})
	for _, p := range h.pids {
		if v := h.lastView(p); !v.Members.Equal(h.pids) {
			t.Fatalf("%s: union members %v, want %v", p, v.Members, h.pids)
		}
	}

	// The merge's semantic state exchange: each side must deliver the
	// other's relation-surviving backlog before the union-view marker.
	for _, p := range maj {
		for s := ident.Seq(1); s <= 3; s++ {
			if !deliveredBeforeInstall(h.rec.Log(p), min[0], s, wantUnion) {
				t.Errorf("%s: %s:%d not delivered before union view %s", p, min[0], s, wantUnion)
			}
		}
	}
	for _, p := range min {
		for s := ident.Seq(1); s <= 3; s++ {
			if !deliveredBeforeInstall(h.rec.Log(p), maj[0], s, wantUnion) {
				t.Errorf("%s: %s:%d not delivered before union view %s", p, maj[0], s, wantUnion)
			}
		}
	}

	// Every member went through the merge handshake, not a state transfer.
	for _, p := range h.pids {
		st := h.members[p].eng.Stats()
		if st.Merges == 0 {
			t.Errorf("%s: no completed merge in stats: %+v", p, st)
		}
		if st.Epoch != wantUnion.Epoch {
			t.Errorf("%s: stats epoch %x, want %x", p, st.Epoch, wantUnion.Epoch)
		}
	}

	// And the whole execution satisfies §3.2 across the partition.
	h.verify()
}

// TestPartitionHealSingletonMerge: the degenerate sub-view. A single
// member cut off from everyone still splits — a one-member lineage — and
// keeps running; when the network heals, the probe/merge path brings it
// back through the union view like any larger sub-view, rather than the
// evicted-member retirement path (which is only for members a newer view
// of their *own* lineage excludes).
func TestPartitionHealSingletonMerge(t *testing.T) {
	fake := obs.NewFake(time.Unix(0, 0))
	h := newGroup(t, harnessOpts{
		n:         3,
		autoEvict: true,
		heal:      &HealSpec{ProbeInterval: healProbe, MergeTimeout: time.Hour},
		clock:     fake,
	})
	maj, loner := h.pids[:2], h.pids[2] // {p0,p1} | p2

	for _, a := range maj {
		h.net.CutBoth(a, loner)
		h.members[a].det.Suspect(loner)
		h.members[loner].det.Suspect(a)
	}

	h.advanceUntil(fake, "majority eviction", func() bool {
		for _, p := range maj {
			v := h.lastView(p)
			if v.ID != 2 || v.Epoch != 0 {
				return false
			}
		}
		return true
	})
	// The loner continues alone under a split epoch.
	h.advanceUntil(fake, "singleton split", func() bool {
		v := h.lastView(loner)
		return v.ID == 2 && v.Epoch != 0 && len(v.Members) == 1
	})

	for _, a := range maj {
		h.members[a].det.Restore(loner)
		h.members[loner].det.Restore(a)
	}
	for _, a := range maj {
		h.net.Heal(a, loner)
		h.net.Heal(loner, a)
	}

	la, lb := h.lastView(maj[0]).Ref(), h.lastView(loner).Ref()
	if lb.Less(la) {
		la, lb = lb, la
	}
	wantUnion := mergeRefFor(la, lb)
	h.advanceUntil(fake, "singleton union view", func() bool {
		for _, p := range h.pids {
			if h.lastView(p).Ref() != wantUnion {
				return false
			}
		}
		return true
	})
	for _, p := range h.pids {
		if v := h.lastView(p); !v.Members.Equal(h.pids) {
			t.Fatalf("%s: union members %v, want %v", p, v.Members, h.pids)
		}
	}
	h.verify()
}
