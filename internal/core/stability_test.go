package core

import (
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

func TestStabilityPrunesHistoryAndShrinksFlush(t *testing.T) {
	// Classic VS (no purging) so every message would otherwise stay in
	// the delivery history until the next view change.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Empty{}, stability: 5 * time.Millisecond})

	const count = 50
	var seq ident.Seq
	for i := 0; i < count; i++ {
		seq++
		if err := h.multicast("p0", seq, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", count) })
	}

	// Give the gossip a few rounds to converge, then the history must
	// have been pruned at every member.
	deadline := time.After(10 * time.Second)
	for _, p := range h.pids {
		for {
			st := h.members[p].eng.Stats()
			if st.StablePruned > 0 && st.HistoryLen < count/2 {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("%s: stability never pruned: %+v", p, h.members[p].eng.Stats())
			case <-time.After(2 * time.Millisecond):
			}
		}
	}

	// A view change now flushes only the unstable tail.
	if err := h.members["p0"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
	}
	if st := h.members["p0"].eng.Stats(); st.LastFlushLen >= count {
		t.Errorf("flush set %d not reduced by stability (multicast %d)", st.LastFlushLen, count)
	}
	h.verify()
}

func TestStabilityDisabledKeepsFullFlush(t *testing.T) {
	// Control experiment: without stability the VS flush carries every
	// message of the view.
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.Empty{}})
	const count = 30
	var seq ident.Seq
	for i := 0; i < count; i++ {
		seq++
		if err := h.multicast("p0", seq, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", count) })
	}
	if err := h.members["p0"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
	}
	if st := h.members["p0"].eng.Stats(); st.LastFlushLen != count {
		t.Errorf("flush set %d, want the full %d without stability", st.LastFlushLen, count)
	}
	h.verify()
}

func TestStabilitySafetyUnderPurging(t *testing.T) {
	// Stability + semantic purging + slow member + view change: the
	// recorded execution must still satisfy every §3.2 property.
	h := newGroup(t, harnessOpts{
		n:            3,
		rel:          obsolete.KEnumeration{K: 64},
		toDeliverCap: 8, outgoingCap: 8, window: 8,
		stability: 3 * time.Millisecond,
	})
	h.members["p2"].slowDown(2 * time.Millisecond)

	it := obsolete.NewItemTracker(obsolete.NewKTracker(64))
	var last ident.Seq
	for i := 0; i < 150; i++ {
		seq, annot := it.Update(uint32(i % 3))
		if err := h.multicast("p0", seq, annot, nil); err != nil {
			t.Fatal(err)
		}
		last = seq
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", last) })
	}
	if err := h.members["p1"].eng.RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	for _, p := range h.pids {
		h.waitView(p, 2)
	}
	h.verify()
}

func TestStabilityAcrossViewChanges(t *testing.T) {
	// Frontiers are global per sender; pruning must keep working in later
	// views after the per-view gossip table resets.
	h := newGroup(t, harnessOpts{n: 2, rel: obsolete.Empty{}, stability: 3 * time.Millisecond})
	var seq ident.Seq
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			seq++
			if err := h.multicast("p0", seq, nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := h.members["p0"].eng.RequestViewChange(); err != nil {
			t.Fatal(err)
		}
		for _, p := range h.pids {
			h.waitView(p, ident.ViewID(2+round))
		}
	}
	// After the last view change, new traffic must still stabilise.
	for i := 0; i < 10; i++ {
		seq++
		if err := h.multicast("p0", seq, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool { return hasSeq(log, "p0", seq) })
	}
	deadline := time.After(10 * time.Second)
	for {
		st := h.members["p1"].eng.Stats()
		if st.HistoryLen == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("history never drained in the final view: %+v", st)
		case <-time.After(2 * time.Millisecond):
		}
	}
	h.verify()
}
