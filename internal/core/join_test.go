package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// joinDrain is a delivery loop that records every data delivery's
// metadata and the installed views, with a pause switch — what the join
// tests need to assert on the exact backlog a joiner received.
type joinDrain struct {
	mu     sync.Mutex
	seqs   map[ident.PID][]ident.Seq // per sender, in delivery order
	views  []ident.ViewID
	paused bool
}

func newJoinDrain() *joinDrain {
	return &joinDrain{seqs: make(map[ident.PID][]ident.Seq)}
}

func (d *joinDrain) run(ctx context.Context, g *Group, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		d.mu.Lock()
		paused := d.paused
		d.mu.Unlock()
		if paused {
			select {
			case <-time.After(time.Millisecond):
				continue
			case <-ctx.Done():
				return
			}
		}
		del, err := g.Deliver(ctx)
		if err != nil {
			return
		}
		d.mu.Lock()
		switch del.Kind {
		case DeliverData:
			d.seqs[del.Meta.Sender] = append(d.seqs[del.Meta.Sender], del.Meta.Seq)
		case DeliverView, DeliverExpelled:
			d.views = append(d.views, del.NewView.ID)
		}
		d.mu.Unlock()
	}
}

func (d *joinDrain) setPaused(p bool) {
	d.mu.Lock()
	d.paused = p
	d.mu.Unlock()
}

func (d *joinDrain) hasSeq(sender ident.PID, seq ident.Seq) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, s := range d.seqs[sender] {
		if s == seq {
			return true
		}
	}
	return false
}

func (d *joinDrain) view() ident.ViewID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.views) == 0 {
		return 0
	}
	return d.views[len(d.views)-1]
}

// dataBeforeFirstView returns the sender->seqs delivered before the first
// view notification — for a joiner, exactly the state-transfer backlog.
func (d *joinDrain) all(sender ident.PID) []ident.Seq {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ident.Seq, len(d.seqs[sender]))
	copy(out, d.seqs[sender])
	return out
}

func joinWaitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.After(20 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// joinerNode builds one extra node on the same MemNetwork as the founders.
func joinerNode(t *testing.T, net *transport.MemNetwork, pid ident.PID) *Node {
	t.Helper()
	ep, err := net.Endpoint(pid)
	if err != nil {
		t.Fatal(err)
	}
	det := fd.NewManual()
	node, err := NewNode(NodeConfig{Self: pid, Endpoint: ep, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Close()
		det.Stop()
	})
	return node
}

// TestJoinMidStreamMem: a fourth process joins a running 3-member group
// after 20 tagged multicasts. The joiner must install the same view as
// the incumbents, receive exactly the non-obsolete backlog (one message
// per tag — everything else is obsoleted under Tagging and must NOT be
// transferred), and deliver all subsequent multicasts.
func TestJoinMidStreamMem(t *testing.T) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("n0", "n1", "n2")
	nodes := make(map[ident.PID]*Node)
	for _, p := range pids {
		nodes[p] = joinerNode(t, net, p)
	}
	const tags = 4
	gc := GroupConfig{Relation: obsolete.Tagging{}}
	groups := createEverywhere(t, nodes, pids, 1, gc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.PID]*joinDrain)
	for _, p := range pids {
		d := newJoinDrain()
		drains[p] = d
		wg.Add(1)
		go d.run(ctx, groups[p], &wg)
	}
	defer wg.Wait()
	defer cancel()

	const produced = 20
	for i := 1; i <= produced; i++ {
		meta := obsolete.Msg{Sender: "n0", Seq: ident.Seq(i), Annot: obsolete.TagAnnot(uint32(i % tags))}
		mctx, mcancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := groups["n0"].Multicast(mctx, meta, []byte(fmt.Sprintf("v%d", i)))
		mcancel()
		if err != nil {
			t.Fatalf("multicast %d: %v", i, err)
		}
	}
	for _, p := range pids {
		joinWaitCond(t, "stream drained at "+string(p), func() bool {
			return drains[p].hasSeq("n0", produced)
		})
	}

	// Join. The contact is n1 (not the sponsor, which will be n0): the
	// request travels contact -> view change -> sponsor's state transfer.
	jn := joinerNode(t, net, "n3")
	jg, err := jn.Join(1, gc, "n1")
	if err != nil {
		t.Fatal(err)
	}
	jd := newJoinDrain()
	wg.Add(1)
	go jd.run(ctx, jg, &wg)

	joinWaitCond(t, "joiner installed a view", func() bool { return jd.view() >= 2 })
	want := pids.Add("n3")
	jv := jg.View()
	if jv.ID != 2 || !jv.Members.Equal(want) {
		t.Fatalf("joiner view = %v, want view 2 %v", jv, want)
	}
	for _, p := range pids {
		joinWaitCond(t, "incumbent "+string(p)+" installed view 2", func() bool {
			return drains[p].view() >= 2
		})
		if v := groups[p].View(); v.ID != 2 || !v.Members.Equal(want) {
			t.Fatalf("%s view = %v, want view 2 %v", p, v, want)
		}
	}

	// Semantic state transfer: the backlog is the last message per tag,
	// nothing more. Obsoleted messages (seq <= produced-tags) must not
	// have been shipped or delivered.
	st := jg.Stats()
	if st.JoinBacklogRecv == 0 || st.JoinBacklogRecv > tags {
		t.Fatalf("joiner backlog = %d messages, want 1..%d (non-obsolete only)", st.JoinBacklogRecv, tags)
	}
	for _, seq := range jd.all("n0") {
		if seq <= produced-tags {
			t.Fatalf("joiner delivered obsoleted backlog message seq %d", seq)
		}
	}
	sp := groups["n0"].Stats()
	if sp.JoinStatesSent == 0 || sp.JoinBacklogSent != uint64(st.JoinBacklogRecv) {
		t.Fatalf("sponsor stats = %+v, joiner backlog %d", sp, st.JoinBacklogRecv)
	}

	// The group is live with the newcomer: it sees subsequent multicasts
	// and can multicast itself.
	meta := obsolete.Msg{Sender: "n0", Seq: produced + 1, Annot: obsolete.TagAnnot(0)}
	if _, err := groups["n0"].Multicast(ctx, meta, []byte("after")); err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "joiner got post-join multicast", func() bool {
		return jd.hasSeq("n0", produced+1)
	})
	jmeta := obsolete.Msg{Sender: "n3", Seq: 1, Annot: obsolete.TagAnnot(1)}
	if _, err := jg.Multicast(ctx, jmeta, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	for _, p := range pids {
		joinWaitCond(t, string(p)+" got the joiner's multicast", func() bool {
			return drains[p].hasSeq("n3", 1)
		})
	}
}

// TestJoinWhileFlowBlockedMem: a slow receiver has exhausted the
// producer's window and parked its multicast; a join must still complete
// (the admitting view change flushes and re-arms the windows), release
// the parked producer, and — under the empty relation — the joiner must
// end up with the complete stream.
func TestJoinWhileFlowBlockedMem(t *testing.T) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("n0", "n1", "n2")
	nodes := make(map[ident.PID]*Node)
	for _, p := range pids {
		nodes[p] = joinerNode(t, net, p)
	}
	gc := GroupConfig{Relation: obsolete.Empty{}, ToDeliverCap: 4, OutgoingCap: 4, Window: 4}
	groups := createEverywhere(t, nodes, pids, 1, gc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.PID]*joinDrain)
	for _, p := range pids {
		d := newJoinDrain()
		drains[p] = d
		wg.Add(1)
		go d.run(ctx, groups[p], &wg)
	}
	defer wg.Wait()
	defer cancel()
	drains["n2"].setPaused(true)

	// Produce until the window on n2 is gone and a multicast parks.
	const produced = 24
	prodErr := make(chan error, 1)
	go func() {
		for i := 1; i <= produced; i++ {
			mctx, mcancel := context.WithTimeout(ctx, 30*time.Second)
			_, err := groups["n0"].Multicast(mctx, obsolete.Msg{Sender: "n0", Seq: ident.Seq(i)}, []byte{byte(i)})
			mcancel()
			if err != nil {
				prodErr <- err
				return
			}
		}
		prodErr <- nil
	}()
	joinWaitCond(t, "producer parked against the paused receiver", func() bool {
		return groups["n0"].Stats().MulticastParks > 0
	})

	// Join while the group is flow-blocked.
	jn := joinerNode(t, net, "n3")
	jg, err := jn.Join(1, gc, "n0")
	if err != nil {
		t.Fatal(err)
	}
	jd := newJoinDrain()
	wg.Add(1)
	go jd.run(ctx, jg, &wg)

	joinWaitCond(t, "joiner installed a view", func() bool { return jd.view() >= 2 })
	want := pids.Add("n3")
	if v := jg.View(); !v.Members.Equal(want) {
		t.Fatalf("joiner view members = %v, want %v", v.Members, want)
	}

	// The paused receiver resumes; the parked producer must finish and the
	// joiner — classic VS — must receive the whole stream (backlog, flush
	// and live traffic composing without gaps or duplicates).
	drains["n2"].setPaused(false)
	if err := <-prodErr; err != nil {
		t.Fatalf("producer: %v", err)
	}
	joinWaitCond(t, "joiner received the full stream", func() bool {
		return jd.hasSeq("n0", produced)
	})
	got := jd.all("n0")
	seen := make(map[ident.Seq]int)
	for _, s := range got {
		seen[s]++
		if seen[s] > 1 {
			t.Fatalf("joiner delivered seq %d twice", s)
		}
	}
	for s := ident.Seq(1); s <= produced; s++ {
		if seen[s] == 0 {
			t.Fatalf("joiner missed seq %d under the empty relation (got %v)", s, got)
		}
	}
}

// TestJoinIntoMultiGroupNode: joining one group of a multi-group node
// must not disturb the other hosted groups' views.
func TestJoinIntoMultiGroupNode(t *testing.T) {
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("n0", "n1", "n2")
	nodes := make(map[ident.PID]*Node)
	for _, p := range pids {
		nodes[p] = joinerNode(t, net, p)
	}
	gc := GroupConfig{Relation: obsolete.KEnumeration{K: 8}}
	g1 := createEverywhere(t, nodes, pids, 1, gc)
	g2 := createEverywhere(t, nodes, pids, 2, gc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	d1 := make(map[ident.PID]*joinDrain)
	d2 := make(map[ident.PID]*joinDrain)
	for _, p := range pids {
		d1[p], d2[p] = newJoinDrain(), newJoinDrain()
		wg.Add(2)
		go d1[p].run(ctx, g1[p], &wg)
		go d2[p].run(ctx, g2[p], &wg)
	}
	defer wg.Wait()
	defer cancel()

	for i := 1; i <= 5; i++ {
		if _, err := g1["n0"].Multicast(ctx, obsolete.Msg{Sender: "n0", Seq: ident.Seq(i)}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := g2["n0"].Multicast(ctx, obsolete.Msg{Sender: "n0", Seq: ident.Seq(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}

	jn := joinerNode(t, net, "n3")
	jg, err := jn.Join(1, gc, "n0", "n1")
	if err != nil {
		t.Fatal(err)
	}
	jd := newJoinDrain()
	wg.Add(1)
	go jd.run(ctx, jg, &wg)

	joinWaitCond(t, "joiner installed group 1's view", func() bool { return jd.view() >= 2 })
	if ids := jn.Groups(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("joiner hosts %v, want [1]", ids)
	}
	if _, err := g1["n0"].Multicast(ctx, obsolete.Msg{Sender: "n0", Seq: 6}, nil); err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "joiner got group 1 traffic", func() bool { return jd.hasSeq("n0", 6) })

	// Group 2 never moved.
	for _, p := range pids {
		if v := g2[p].View(); v.ID != 1 || !v.Members.Equal(pids) {
			t.Fatalf("%s group 2 view = %v, want view 1 %v", p, v, pids)
		}
	}
	if _, err := g2["n0"].Multicast(ctx, obsolete.Msg{Sender: "n0", Seq: 6}, nil); err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "group 2 still delivers", func() bool { return d2["n2"].hasSeq("n0", 6) })
}

// TestJoinOverTCP: the full handshake — join request, admitting view
// change, semantic state transfer — across real sockets, with the
// node-owned heartbeat detectors growing their peer sets at install.
func TestJoinOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration skipped in -short mode")
	}
	pids := ident.NewPIDs("t0", "t1", "t2")
	nodes, nets := tcpNodes(t, pids)
	gc := GroupConfig{Relation: obsolete.Tagging{}, ToDeliverCap: 16, OutgoingCap: 16, Window: 16}
	groups := createEverywhere(t, nodes, pids, 1, gc)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.PID]*joinDrain)
	for _, p := range pids {
		d := newJoinDrain()
		drains[p] = d
		wg.Add(1)
		go d.run(ctx, groups[p], &wg)
	}
	defer wg.Wait()
	defer cancel()

	const tags = 3
	const produced = 18
	for i := 1; i <= produced; i++ {
		meta := obsolete.Msg{Sender: "t0", Seq: ident.Seq(i), Annot: obsolete.TagAnnot(uint32(i % tags))}
		mctx, mcancel := context.WithTimeout(ctx, 10*time.Second)
		_, err := groups["t0"].Multicast(mctx, meta, []byte(fmt.Sprintf("v%d", i)))
		mcancel()
		if err != nil {
			t.Fatalf("multicast %d: %v", i, err)
		}
	}
	for _, p := range pids {
		joinWaitCond(t, "stream drained at "+string(p), func() bool {
			return drains[p].hasSeq("t0", produced)
		})
	}

	// The joiner's TCP network must know every peer and vice versa (the
	// state transfer and subsequent data flow both ways).
	jnet, err := transport.NewTCPNetwork("t3", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pids {
		jnet.AddPeer(p, nets[p].Addr())
		nets[p].AddPeer("t3", jnet.Addr())
	}
	jn, err := NewNode(NodeConfig{
		Self:      "t3",
		Endpoint:  jnet,
		Heartbeat: fd.HeartbeatOptions{Interval: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jn.Close() })

	jg, err := jn.Join(1, gc, "t1")
	if err != nil {
		t.Fatal(err)
	}
	jd := newJoinDrain()
	wg.Add(1)
	go jd.run(ctx, jg, &wg)

	joinWaitCond(t, "joiner installed a view over TCP", func() bool { return jd.view() >= 2 })
	want := pids.Add("t3")
	if v := jg.View(); v.ID != 2 || !v.Members.Equal(want) {
		t.Fatalf("joiner view = %v, want view 2 %v", v, want)
	}
	st := jg.Stats()
	if st.JoinBacklogRecv == 0 || st.JoinBacklogRecv > tags {
		t.Fatalf("joiner backlog over TCP = %d, want 1..%d", st.JoinBacklogRecv, tags)
	}
	if st.JoinBytesRecv == 0 {
		t.Fatal("joiner reports zero transfer bytes")
	}

	meta := obsolete.Msg{Sender: "t0", Seq: produced + 1, Annot: obsolete.TagAnnot(1)}
	if _, err := groups["t0"].Multicast(ctx, meta, []byte("after")); err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "joiner got post-join multicast over TCP", func() bool {
		return jd.hasSeq("t0", produced+1)
	})
}

// TestJoinStateFromNonMemberRejected pins the origin check on state
// transfers: only a member of the transferred view may hand it over, so
// a forged StateMsg from an outsider cannot hijack a joining engine.
func TestJoinStateFromNonMemberRejected(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, err := net.Endpoint("j")
	if err != nil {
		t.Fatal(err)
	}
	det := fd.NewManual()
	defer det.Stop()
	eng, err := New(Config{Self: "j", Endpoint: ep, Detector: det,
		Join: &JoinSpec{Contacts: ident.NewPIDs("ghost"), Retry: 20 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()

	evil, err := net.Endpoint("evil")
	if err != nil {
		t.Fatal(err)
	}
	defer evil.Close()
	forged := StateMsg{View: 9, Members: []ident.PID{"j", "ghost"}}
	if err := evil.Send("j", 0, transport.Ctl, forged); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if v := eng.View(); v.ID != 0 {
		t.Fatalf("joiner hijacked by a non-member transfer: installed %v", v)
	}

	// The same transfer from a member of the transferred view is accepted.
	ghost, err := net.Endpoint("ghost")
	if err != nil {
		t.Fatal(err)
	}
	defer ghost.Close()
	if err := ghost.Send("j", 0, transport.Ctl, forged); err != nil {
		t.Fatal(err)
	}
	joinWaitCond(t, "legitimate transfer installed", func() bool { return eng.View().ID == 9 })
}

// TestJoinConfigValidation pins the joiner-mode config rules.
func TestJoinConfigValidation(t *testing.T) {
	net := transport.NewMemNetwork()
	ep, _ := net.Endpoint("j")
	defer ep.Close()
	det := fd.NewManual()
	defer det.Stop()

	if _, err := New(Config{Self: "j", Endpoint: ep, Detector: det, Join: &JoinSpec{}}); err == nil {
		t.Fatal("join without contacts accepted")
	}
	if _, err := New(Config{Self: "j", Endpoint: ep, Detector: det,
		Join: &JoinSpec{Contacts: ident.NewPIDs("j")}}); err == nil {
		t.Fatal("join with only self as contact accepted")
	}
	// A valid joiner config needs no InitialView.
	eng, err := New(Config{Self: "j", Endpoint: ep, Detector: det,
		Join: &JoinSpec{Contacts: ident.NewPIDs("a")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	defer eng.Stop()
	// View changes cannot be requested before the join completes.
	if err := eng.RequestViewChange(); !errors.Is(err, ErrJoining) {
		t.Fatalf("RequestViewChange while joining = %v, want ErrJoining", err)
	}
}
