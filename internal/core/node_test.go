package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// memNodes builds n nodes over one MemNetwork, each with a Manual
// detector (deterministic; the node-owned heartbeat is exercised by the
// TCP tests).
func memNodes(t *testing.T, pids ident.PIDs) map[ident.PID]*Node {
	t.Helper()
	net := transport.NewMemNetwork()
	nodes := make(map[ident.PID]*Node, len(pids))
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewManual()
		node, err := NewNode(NodeConfig{Self: p, Endpoint: ep, Detector: det})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = node
		t.Cleanup(func() {
			node.Close()
			det.Stop()
		})
	}
	return nodes
}

// createEverywhere joins every node to group id with the same config.
func createEverywhere(t *testing.T, nodes map[ident.PID]*Node, pids ident.PIDs, id ident.GroupID, gc GroupConfig) map[ident.PID]*Group {
	t.Helper()
	gc.InitialView = View{ID: 1, Members: pids}
	out := make(map[ident.PID]*Group, len(nodes))
	for _, p := range pids {
		g, err := nodes[p].Create(id, gc)
		if err != nil {
			t.Fatalf("create group %d at %s: %v", id, p, err)
		}
		out[p] = g
	}
	return out
}

// drain runs a delivery loop for g, counting data deliveries and
// recording installed views.
type drain struct {
	mu        sync.Mutex
	delivered int
	view      ident.ViewID
}

func (d *drain) run(ctx context.Context, g *Group, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		del, err := g.Deliver(ctx)
		if err != nil {
			return
		}
		d.mu.Lock()
		switch del.Kind {
		case DeliverData:
			d.delivered++
		case DeliverView, DeliverExpelled:
			d.view = del.NewView.ID
		}
		d.mu.Unlock()
	}
}

func (d *drain) snapshot() (int, ident.ViewID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.delivered, d.view
}

func TestNodeLifecycle(t *testing.T) {
	pids := ident.NewPIDs("n0", "n1", "n2")
	nodes := memNodes(t, pids)
	n0 := nodes["n0"]

	if _, err := n0.Create(ident.NodeGroup, GroupConfig{InitialView: View{ID: 1, Members: pids}}); err == nil {
		t.Fatal("reserved node group accepted")
	}

	ga := createEverywhere(t, nodes, pids, 1, GroupConfig{})
	gb := createEverywhere(t, nodes, pids, 2, GroupConfig{})
	if _, err := n0.Create(1, GroupConfig{InitialView: View{ID: 1, Members: pids}}); err == nil {
		t.Fatal("duplicate group accepted")
	}
	if got := n0.Groups(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Groups() = %v, want [1 2]", got)
	}
	if g, ok := n0.Group(2); !ok || g.ID() != 2 {
		t.Fatalf("Group(2) = %v, %v", g, ok)
	}

	// Both groups multicast and deliver independently on the shared
	// endpoints.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.GroupID]map[ident.PID]*drain)
	for id, groups := range map[ident.GroupID]map[ident.PID]*Group{1: ga, 2: gb} {
		drains[id] = make(map[ident.PID]*drain)
		for p, g := range groups {
			d := &drain{}
			drains[id][p] = d
			wg.Add(1)
			go d.run(ctx, g, &wg)
		}
	}
	const count = 20
	for i := 1; i <= count; i++ {
		meta := obsolete.Msg{Sender: "n0", Seq: ident.Seq(i)}
		if _, err := ga["n0"].Multicast(ctx, meta, []byte("a")); err != nil {
			t.Fatalf("group 1 multicast %d: %v", i, err)
		}
		if _, err := gb["n0"].Multicast(ctx, meta, []byte("b")); err != nil {
			t.Fatalf("group 2 multicast %d: %v", i, err)
		}
	}
	waitCond(t, "all deliveries in both groups", func() bool {
		for _, byPID := range drains {
			for _, d := range byPID {
				if n, _ := d.snapshot(); n != count {
					return false
				}
			}
		}
		return true
	})

	// Leaving group 2 everywhere keeps group 1 going.
	for _, p := range pids {
		gb[p].Leave()
		gb[p].Leave() // idempotent
	}
	if got := n0.Groups(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Groups() after leave = %v, want [1]", got)
	}
	meta := obsolete.Msg{Sender: "n0", Seq: count + 1}
	if _, err := ga["n0"].Multicast(ctx, meta, nil); err != nil {
		t.Fatalf("group 1 multicast after group 2 left: %v", err)
	}
	cancel()
	wg.Wait()
}

// testCrossGroupIsolation is the §5.3 buffer-separation rule at group
// granularity: group A is wedged (full protocol buffers, nobody
// delivering), yet group B on the same nodes keeps multicasting,
// delivering and even changes views.
func testCrossGroupIsolation(t *testing.T, nodes map[ident.PID]*Node, pids ident.PIDs) {
	t.Helper()
	const cap = 4
	tight := GroupConfig{ToDeliverCap: cap, OutgoingCap: cap, Window: cap}
	ga := createEverywhere(t, nodes, pids, 1, tight)
	gb := createEverywhere(t, nodes, pids, 2, tight)

	// Wedge group A: nobody delivers, so the producer's own delivery
	// queue fills and multicast blocks on flow control.
	blocked := false
	for i := 1; i <= 3*cap; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		_, err := ga[pids[0]].Multicast(ctx, obsolete.Msg{Sender: pids[0], Seq: ident.Seq(i)}, []byte("wedge"))
		cancel()
		if err != nil {
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("group A multicast %d: %v", i, err)
			}
			blocked = true
			break
		}
	}
	if !blocked {
		t.Fatal("group A never blocked: flow control not exercised")
	}

	// Group B must be unaffected: deliveries flow and a view change
	// completes while A stays wedged.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.PID]*drain, len(pids))
	for _, p := range pids {
		d := &drain{}
		drains[p] = d
		wg.Add(1)
		go d.run(ctx, gb[p], &wg)
	}
	const count = 3 * cap
	for i := 1; i <= count; i++ {
		mctx, mcancel := context.WithTimeout(ctx, 5*time.Second)
		_, err := gb[pids[0]].Multicast(mctx, obsolete.Msg{Sender: pids[0], Seq: ident.Seq(i)}, []byte("live"))
		mcancel()
		if err != nil {
			t.Fatalf("group B multicast %d while A wedged: %v", i, err)
		}
	}
	waitCond(t, "group B deliveries on all members", func() bool {
		for _, d := range drains {
			if n, _ := d.snapshot(); n != count {
				return false
			}
		}
		return true
	})
	if err := gb[pids[0]].RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "group B view 2 everywhere", func() bool {
		for _, d := range drains {
			if _, v := d.snapshot(); v < 2 {
				return false
			}
		}
		return true
	})

	// A is still wedged at view 1, untouched by B's view change.
	if st := ga[pids[0]].Stats(); st.View != 1 {
		t.Fatalf("group A view = %d, want 1", st.View)
	}
	cancel()
	wg.Wait()
}

func TestCrossGroupIsolationMem(t *testing.T) {
	pids := ident.NewPIDs("m0", "m1", "m2")
	testCrossGroupIsolation(t, memNodes(t, pids), pids)
}

func TestCrossGroupIsolationTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration skipped in -short mode")
	}
	pids := ident.NewPIDs("t0", "t1", "t2")
	nodes, _ := tcpNodes(t, pids)
	testCrossGroupIsolation(t, nodes, pids)
}

// TestNodeCreateErrorCleansUpInboxes: a failed Create must not leave the
// group's transport inboxes registered — otherwise peers that created
// the group successfully keep depositing into queues nothing consumes.
func TestNodeCreateErrorCleansUpInboxes(t *testing.T) {
	net := transport.NewMemNetwork()
	epA, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	defer epA.Close()
	epB, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	det := fd.NewManual()
	defer det.Stop()
	node, err := NewNode(NodeConfig{Self: "b", Endpoint: epB, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Self not in InitialView: engine construction fails after Create
	// has eagerly registered the inboxes.
	_, err = node.Create(7, GroupConfig{InitialView: View{ID: 1, Members: ident.NewPIDs("a", "x")}})
	if err == nil {
		t.Fatal("invalid group config accepted")
	}
	if err := epA.Send("b", 7, transport.Data, DataMsg{View: 1}); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "stray envelope dropped at b", func() bool {
		return epB.Drops().DroppedUnknownGroup == 1
	})

	// The id is free for a correct retry.
	if _, err := node.Create(7, GroupConfig{InitialView: View{ID: 1, Members: ident.NewPIDs("a", "b")}}); err != nil {
		t.Fatalf("retry after failed create: %v", err)
	}
}

// TestNodeHeartbeatTracksEvictions: the node-owned heartbeat must follow
// view changes, not initial memberships — a peer evicted from its last
// shared group stops being monitored (and beaten), while a peer still
// listed by another group stays.
func TestNodeHeartbeatTracksEvictions(t *testing.T) {
	pids := ident.NewPIDs("h0", "h1", "hdead") // hdead never attaches
	live := ident.NewPIDs("h0", "h1")
	net := transport.NewMemNetwork()
	nodes := make(map[ident.PID]*Node, len(live))
	for _, p := range live {
		ep, err := net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(NodeConfig{
			Self:      p,
			Endpoint:  ep,
			Heartbeat: fd.HeartbeatOptions{Interval: 10 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = node
		t.Cleanup(func() { node.Close() })
	}

	// Group 1 auto-evicts; group 2 keeps its membership (no AutoEvict).
	// Both start with the three-member view that includes hdead.
	ga := make(map[ident.PID]*Group, len(live))
	gb := make(map[ident.PID]*Group, len(live))
	for _, p := range live {
		var err error
		if ga[p], err = nodes[p].Create(1, GroupConfig{InitialView: View{ID: 1, Members: pids}, AutoEvict: true}); err != nil {
			t.Fatal(err)
		}
		if gb[p], err = nodes[p].Create(2, GroupConfig{InitialView: View{ID: 1, Members: pids}}); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, p := range live {
		for _, g := range []*Group{ga[p], gb[p]} {
			d := &drain{}
			wg.Add(1)
			go d.run(ctx, g, &wg)
		}
	}

	// The heartbeat suspects hdead, group 1 evicts it, and the install
	// hook reports the shrunk membership — but group 2 still lists
	// hdead, so it must stay monitored (suspected).
	waitCond(t, "group 1 evicted hdead everywhere", func() bool {
		for _, p := range live {
			if v := ga[p].View(); v.Includes("hdead") || v.ID < 2 {
				return false
			}
		}
		return true
	})
	if !nodes["h0"].Detector().Suspected("hdead") {
		t.Fatal("hdead left group 2's membership: must still be monitored")
	}

	// Leaving group 2 drops the last reference: the union no longer
	// contains hdead and the heartbeat forgets it.
	for _, p := range live {
		gb[p].Leave()
	}
	waitCond(t, "hdead no longer monitored", func() bool {
		return !nodes["h0"].Detector().Suspected("hdead")
	})
	cancel()
	wg.Wait()
}

// tcpNodes builds one node per pid over real TCP endpoints with the
// node-owned heartbeat detector — the deployment shape the Node runtime
// is for.
func tcpNodes(t *testing.T, pids ident.PIDs) (map[ident.PID]*Node, map[ident.PID]*transport.TCPNetwork) {
	t.Helper()
	nets := make(map[ident.PID]*transport.TCPNetwork, len(pids))
	for _, p := range pids {
		n, err := transport.NewTCPNetwork(p, "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		nets[p] = n
	}
	for _, p := range pids {
		for _, q := range pids {
			if p != q {
				nets[p].AddPeer(q, nets[q].Addr())
			}
		}
	}
	nodes := make(map[ident.PID]*Node, len(pids))
	for _, p := range pids {
		node, err := NewNode(NodeConfig{
			Self:      p,
			Endpoint:  nets[p],
			Heartbeat: fd.HeartbeatOptions{Interval: 20 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[p] = node
		t.Cleanup(func() { node.Close() })
	}
	return nodes, nets
}

// TestManyGroupsOverTCPSharedConnections is the acceptance scenario: one
// process (per member) hosts 32 groups × 4 members over a single shared
// TCPNetwork endpoint, with exactly one outgoing connection per peer
// serving all of them.
func TestManyGroupsOverTCPSharedConnections(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP integration skipped in -short mode")
	}
	const groups = 32
	pids := ident.NewPIDs("s0", "s1", "s2", "s3")
	nodes, nets := tcpNodes(t, pids)

	byGroup := make(map[ident.GroupID]map[ident.PID]*Group, groups)
	for id := ident.GroupID(1); id <= groups; id++ {
		byGroup[id] = createEverywhere(t, nodes, pids, id, GroupConfig{
			Relation: obsolete.KEnumeration{K: 16},
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	drains := make(map[ident.GroupID]map[ident.PID]*drain, groups)
	for id, members := range byGroup {
		drains[id] = make(map[ident.PID]*drain, len(pids))
		for p, g := range members {
			d := &drain{}
			drains[id][p] = d
			wg.Add(1)
			go d.run(ctx, g, &wg)
		}
	}

	// Every group's first member multicasts a burst; every member of
	// every group must deliver all of it.
	const perGroup = 5
	var prod sync.WaitGroup
	for id := ident.GroupID(1); id <= groups; id++ {
		prod.Add(1)
		go func(g *Group) {
			defer prod.Done()
			for i := 1; i <= perGroup; i++ {
				if _, err := g.Multicast(ctx, obsolete.Msg{Sender: pids[0], Seq: ident.Seq(i)}, []byte("x")); err != nil {
					t.Errorf("group %d multicast %d: %v", g.ID(), i, err)
					return
				}
			}
		}(byGroup[id][pids[0]])
	}
	prod.Wait()
	waitCond(t, "all groups delivered everywhere", func() bool {
		for _, byPID := range drains {
			for _, d := range byPID {
				if n, _ := d.snapshot(); n != perGroup {
					return false
				}
			}
		}
		return true
	})

	// A view change in group 1 must not move any other group's view.
	if err := byGroup[1][pids[0]].RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	waitCond(t, "group 1 view 2 everywhere", func() bool {
		for _, d := range drains[1] {
			if _, v := d.snapshot(); v < 2 {
				return false
			}
		}
		return true
	})
	for id := ident.GroupID(2); id <= groups; id++ {
		if st := byGroup[id][pids[0]].Stats(); st.View != 1 {
			t.Fatalf("group %d view = %d after group 1's view change", id, st.View)
		}
	}

	// The whole thing ran on one connection pair per peer: 32 groups'
	// data, control, consensus and the node heartbeats.
	for _, p := range pids {
		if got := nets[p].Conns(); got != len(pids)-1 {
			t.Fatalf("%s holds %d outgoing conns, want %d", p, got, len(pids)-1)
		}
	}
	cancel()
	wg.Wait()
}
