package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/codec"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// TestDataBatchMsgRoundTrip pins the wire format of the coalesced data
// envelope.
func TestDataBatchMsgRoundTrip(t *testing.T) {
	in := &DataBatchMsg{Msgs: []DataMsg{
		{View: 3, Meta: obsolete.Msg{Sender: "p0", Seq: 1, Annot: []byte{0x7}}, Payload: []byte("a")},
		{View: 3, Meta: obsolete.Msg{Sender: "p0", Seq: 2}, Payload: nil},
		{View: 3, Meta: obsolete.Msg{Sender: "p0", Seq: 3}, Payload: []byte("ccc")},
	}}
	b, err := codec.Marshal(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	v, err := codec.UnmarshalBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := v.(*DataBatchMsg)
	if !ok {
		t.Fatalf("decoded %T, want *DataBatchMsg", v)
	}
	if len(out.Msgs) != len(in.Msgs) {
		t.Fatalf("decoded %d messages, want %d", len(out.Msgs), len(in.Msgs))
	}
	for i := range in.Msgs {
		if out.Msgs[i].View != in.Msgs[i].View ||
			out.Msgs[i].Meta.Sender != in.Msgs[i].Meta.Sender ||
			out.Msgs[i].Meta.Seq != in.Msgs[i].Meta.Seq ||
			string(out.Msgs[i].Payload) != string(in.Msgs[i].Payload) {
			t.Fatalf("message %d: got %+v, want %+v", i, out.Msgs[i], in.Msgs[i])
		}
	}
}

// TestMulticastBatchDeliversAll drives the batched send API against the
// ordinary single-delivery application drivers and checks the run against
// the SVS oracle: batch submission must be invisible to receivers.
func TestMulticastBatchDeliversAll(t *testing.T) {
	h := newGroup(t, harnessOpts{n: 3, rel: obsolete.KEnumeration{K: 16}})
	tr := obsolete.NewKTracker(16)
	const count = 60
	msgs := make([]OutMsg, 0, count)
	for i := 0; i < count; i++ {
		seq, annot := tr.Next()
		msgs = append(msgs, OutMsg{
			Meta:    obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot},
			Payload: []byte{byte(i)},
		})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	view, err := h.members["p0"].eng.MulticastBatch(ctx, msgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		h.rec.MulticastRef(m.Meta, view)
	}
	for _, p := range h.pids {
		h.waitDelivered(p, func(log []check.Event) bool {
			return hasSeq(log, "p0", count)
		})
	}
	h.verify()
}

// TestMulticastBatchLargerThanCredit is the flow-control regression for
// batched sends: a batch bigger than the sender's remaining window must
// neither overdraw credits (each message is charged individually) nor
// deadlock mid-batch — it parks with its progress recorded and resumes as
// credits flow back.
func TestMulticastBatchLargerThanCredit(t *testing.T) {
	h := newGroup(t, harnessOpts{
		n: 2, rel: obsolete.Empty{}, // no purging: the window really fills
		toDeliverCap: 32, outgoingCap: 4, window: 4,
	})
	consumer := h.members["p1"]
	consumer.mu.Lock()
	consumer.paused = true
	consumer.mu.Unlock()

	// Window 4 + outgoing 4 < 11: the batch must stall on the 9th message.
	const count = 11
	msgs := make([]OutMsg, 0, count)
	for i := 1; i <= count; i++ {
		msgs = append(msgs, OutMsg{
			Meta:    obsolete.Msg{Sender: "p0", Seq: ident.Seq(i)},
			Payload: []byte{byte(i)},
		})
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		view, err := h.members["p0"].eng.MulticastBatch(ctx, msgs)
		if err == nil {
			for _, m := range msgs {
				h.rec.MulticastRef(m.Meta, view)
			}
		}
		done <- err
	}()

	deadline := time.After(15 * time.Second)
	for h.members["p0"].eng.Stats().MulticastParks == 0 {
		select {
		case err := <-done:
			t.Fatalf("batch completed against a stopped consumer (err=%v)", err)
		case <-deadline:
			t.Fatal("oversized batch never parked")
		case <-time.After(time.Millisecond):
		}
	}
	// No overdraw: with the consumer paused only Window messages may be in
	// flight, so its queue holds at most 4 — even though the whole batch
	// was submitted at once.
	if n := consumer.eng.Stats().ToDeliverLen; n > 4 {
		t.Fatalf("receiver holds %d messages, window is 4: batch overdrew credits", n)
	}

	consumer.mu.Lock()
	consumer.paused = false
	consumer.mu.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked batch failed: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("parked batch never resumed after credits flowed back")
	}
	h.waitDelivered("p1", func(log []check.Event) bool { return hasSeq(log, "p0", count) })
	h.verify()
}

// ---- differential: batched ≡ single -----------------------------------------

// diffCluster is a driverless 3-member group: deliveries happen only when
// the test pulls them, so queue contents, purges and drains are
// deterministic functions of the submission stream.
type diffCluster struct {
	t    *testing.T
	pids ident.PIDs
	engs map[ident.PID]*Engine
}

func newDiffCluster(t *testing.T, rel obsolete.Relation) *diffCluster {
	t.Helper()
	net := transport.NewMemNetwork()
	pids := ident.NewPIDs("p0", "p1", "p2")
	view0 := View{ID: 1, Members: pids}
	c := &diffCluster{t: t, pids: pids, engs: make(map[ident.PID]*Engine)}
	for _, p := range pids {
		ep, err := net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewManual()
		eng, err := New(Config{
			Self: p, Endpoint: ep, Detector: det,
			InitialView: view0, Relation: rel,
			// Flow control off, queues unbounded: no parking, no stalls —
			// the outcome depends only on the message stream.
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			t.Fatal(err)
		}
		c.engs[p] = eng
		t.Cleanup(func() {
			eng.Stop()
			det.Stop()
			ep.Close()
		})
	}
	return c
}

// settle waits until every member's stats snapshot is identical across two
// successive polls: no traffic is in flight anywhere.
func (c *diffCluster) settle() {
	c.t.Helper()
	deadline := time.After(15 * time.Second)
	var prev []Stats
	stable := 0
	for stable < 2 {
		cur := make([]Stats, 0, len(c.pids))
		for _, p := range c.pids {
			cur = append(cur, c.engs[p].Stats())
		}
		same := prev != nil
		for i := range cur {
			if same && cur[i] != prev[i] {
				same = false
			}
		}
		if same {
			stable++
		} else {
			stable = 0
		}
		prev = cur
		select {
		case <-deadline:
			c.t.Fatal("cluster never settled")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// waitView waits for every member to have installed view id.
func (c *diffCluster) waitView(id ident.ViewID) {
	c.t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		ok := true
		for _, p := range c.pids {
			if c.engs[p].Stats().View < id {
				ok = false
			}
		}
		if ok {
			return
		}
		select {
		case <-deadline:
			c.t.Fatalf("view %d never installed everywhere", id)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// deliveryKey flattens one delivery for cross-run comparison.
func deliveryKey(d Delivery) string {
	return fmt.Sprintf("%v|v%d|%s|%d|%x", d.Kind, d.View, d.Meta.Sender, d.Meta.Seq, d.Payload)
}

// diffOutcome is everything the two paths must agree on: the exact
// delivered stream per member and the purge/drop decisions each made.
type diffOutcome struct {
	streams map[ident.PID][]string
	decided map[ident.PID]string
}

// runDiff submits msgs to p0 — singly or in random batches — with a view
// change between the two halves, settles, then drains every queue (singly
// or in random batches) and snapshots the outcome.
func runDiff(t *testing.T, rel obsolete.Relation, msgs []OutMsg, batched bool, seed int64) diffOutcome {
	t.Helper()
	c := newDiffCluster(t, rel)
	rng := rand.New(rand.NewSource(seed))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	send := func(part []OutMsg) {
		if !batched {
			for _, m := range part {
				if _, err := c.engs["p0"].Multicast(ctx, m.Meta, m.Payload); err != nil {
					t.Fatal(err)
				}
			}
			return
		}
		for len(part) > 0 {
			n := 1 + rng.Intn(6)
			if n > len(part) {
				n = len(part)
			}
			if _, err := c.engs["p0"].MulticastBatch(ctx, part[:n]); err != nil {
				t.Fatal(err)
			}
			part = part[n:]
		}
	}

	half := len(msgs) / 2
	send(msgs[:half])
	c.settle()
	if err := c.engs["p0"].RequestViewChange(); err != nil {
		t.Fatal(err)
	}
	c.waitView(2)
	c.settle()
	send(msgs[half:])
	c.settle()

	out := diffOutcome{
		streams: make(map[ident.PID][]string),
		decided: make(map[ident.PID]string),
	}
	for _, p := range c.pids {
		eng := c.engs[p]
		target := eng.Stats().ToDeliverLen
		var stream []string
		if !batched {
			for len(stream) < target {
				d, err := eng.Deliver(ctx)
				if err != nil {
					t.Fatalf("%s: deliver %d: %v", p, len(stream), err)
				}
				stream = append(stream, deliveryKey(d))
			}
		} else {
			dst := make([]Delivery, 8)
			for len(stream) < target {
				k := 1 + rng.Intn(len(dst))
				if rem := target - len(stream); k > rem {
					k = rem
				}
				n, err := eng.DeliverBatch(ctx, dst[:k])
				if err != nil {
					t.Fatalf("%s: deliver batch at %d: %v", p, len(stream), err)
				}
				for i := 0; i < n; i++ {
					stream = append(stream, deliveryKey(dst[i]))
				}
			}
		}
		out.streams[p] = stream
		st := eng.Stats()
		// The decisions both paths must reproduce bit-for-bit: what was
		// purged, dropped as covered or stale, delivered, flushed, and how
		// far the sender's stream advanced.
		out.decided[p] = fmt.Sprintf("purged=%d covered=%d stale=%d delivered=%d flush=%d lastSent=%d view=%d",
			st.PurgedToDeliver, st.DroppedCovered, st.DroppedStale,
			st.Delivered, st.FlushAdded, st.LastSent, st.View)
	}
	return out
}

// genStream builds one deterministic annotated message stream for an
// encoding, shared verbatim by the single and batched runs.
func genStream(t *testing.T, enc string, n int, seed int64) []OutMsg {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	msgs := make([]OutMsg, 0, n)
	ktr := obsolete.NewKTracker(16)
	etr := obsolete.NewEnumTracker(16)
	for i := 1; i <= n; i++ {
		var seq ident.Seq
		var annot []byte
		// Up to two direct predecessors among the recent window.
		var direct []ident.Seq
		for k := rng.Intn(3); k > 0; k-- {
			back := 1 + rng.Intn(8)
			if i-back >= 1 {
				direct = append(direct, ident.Seq(i-back))
			}
		}
		switch enc {
		case "tagging":
			seq, annot = ident.Seq(i), obsolete.TagAnnot(rng.Uint32()%8)
		case "enumeration":
			seq, annot = etr.Next(direct...)
		case "k-enumeration":
			seq, annot = ktr.Next(direct...)
		default:
			t.Fatalf("unknown encoding %q", enc)
		}
		msgs = append(msgs, OutMsg{
			Meta:    obsolete.Msg{Sender: "p0", Seq: seq, Annot: annot},
			Payload: []byte{byte(i), byte(i >> 8)},
		})
	}
	return msgs
}

// TestBatchedEquivalentToSingle is the differential test of the batched
// data plane: for every §4.2 relation encoding — on both the indexed and
// the linear-scan queue paths — a randomized stream submitted through
// MulticastBatch/DeliverBatch must produce exactly the delivery streams,
// purge decisions and view-synchrony outcomes of the same stream pushed
// one message at a time, across a view change in mid-stream.
func TestBatchedEquivalentToSingle(t *testing.T) {
	encodings := []struct {
		name string
		rel  obsolete.Relation
	}{
		{"tagging", obsolete.Tagging{}},
		{"enumeration", obsolete.Enumeration{}},
		{"k-enumeration", obsolete.KEnumeration{K: 16}},
	}
	const n = 120
	for _, enc := range encodings {
		for _, path := range []string{"indexed", "scan"} {
			rel := enc.rel
			if path == "scan" {
				// Wrapping in Func hides the SenderLocal capability, forcing
				// the queues onto the retained linear-scan purge path.
				rel = obsolete.Func{Label: enc.name + "-scan", F: enc.rel.Obsoletes}
			}
			t.Run(enc.name+"/"+path, func(t *testing.T) {
				msgs := genStream(t, enc.name, n, 42)
				single := runDiff(t, rel, msgs, false, 1337)
				batch := runDiff(t, rel, msgs, true, 1337)
				for _, p := range ident.NewPIDs("p0", "p1", "p2") {
					s, b := single.streams[p], batch.streams[p]
					if len(s) != len(b) {
						t.Fatalf("%s: single delivered %d items, batched %d\nsingle: %v\nbatch:  %v",
							p, len(s), len(b), s, b)
					}
					for i := range s {
						if s[i] != b[i] {
							t.Fatalf("%s: delivery %d differs\nsingle: %s\nbatch:  %s", p, i, s[i], b[i])
						}
					}
					if single.decided[p] != batch.decided[p] {
						t.Fatalf("%s: decisions diverge\nsingle: %s\nbatch:  %s",
							p, single.decided[p], batch.decided[p])
					}
				}
			})
		}
	}
}
