package core

import (
	"context"
	"errors"
	"log/slog"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/obsolete"
	"repro/internal/queue"
	"repro/internal/transport"
)

// pidStrings renders a PID set for an event attribute.
func pidStrings(ps ident.PIDs) []string {
	if len(ps) == 0 {
		return nil
	}
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = string(p)
	}
	return out
}

// ---- t2: multicast -------------------------------------------------------

func (e *Engine) onMulticastReq(req *request) {
	// Park while a join is still in flight: the first view (and with it
	// membership and flow windows) arrives with the state transfer.
	if e.joining {
		e.park(req)
		return
	}
	e.committing = true
	done := e.advance(req)
	e.committing = false
	if !done {
		e.park(req)
	}
	// Committing (and the purges it caused) may have unblocked the
	// parked queue; the inner retries were suppressed by the guard.
	e.retryParked()
}

// advance commits as many of req's messages as flow control and buffer
// room allow, staging the per-peer copies and flushing them as one
// coalesced envelope per peer. It returns false when the request must
// (stay) park(ed): the committed prefix is recorded in req.done, so a
// resumed request continues exactly where it stopped — semantically the
// batch behaves as that many individual multicasts back to back.
//
// Callers hold e.committing around the call: commitOne's delivery serving
// re-enters retryParked, and interleaving another request into this
// half-committed transaction would trip its sequence precheck.
func (e *Engine) advance(req *request) bool {
	n := req.batchLen()
	for req.done < n {
		meta, payload := req.msgAt(req.done)
		if err := e.multicastPrecheck(meta); err != nil {
			// Fail the message and the rest of the batch; the committed
			// prefix stands (documented in MulticastBatch).
			e.flushStage()
			req.mcC <- mcResult{err: err}
			return true
		}
		// Park while the group is blocked or buffers lack room; install,
		// credit arrivals and deliveries retry the queue head.
		if e.blocked || !e.canCommit(meta, payload) {
			e.flushStage()
			return false
		}
		e.stageHint = n - req.done
		e.commitOne(meta, payload)
		req.done++
	}
	e.flushStage()
	e.m.batchSize.Observe(float64(n))
	if !req.parkedAt.IsZero() {
		stalled := e.clock.Since(req.parkedAt)
		e.m.parkDur.ObserveDuration(stalled)
		e.ev.FlowUnblocked(uint64(e.lastSent), stalled)
		req.parkedAt = time.Time{}
	}
	req.mcC <- mcResult{view: e.cv.Ref()}
	return true
}

// park appends a multicast to the flow-control wait queue, stamping the
// stall start for the park-duration histogram.
func (e *Engine) park(req *request) {
	e.stats.MulticastParks++
	e.m.parks.Inc()
	if req.parkedAt.IsZero() && (e.m.parkDur != nil || e.ev != nil) {
		req.parkedAt = e.clock.Now()
		e.ev.FlowBlocked(uint64(req.curSeq()))
	}
	e.multicastQ = append(e.multicastQ, req)
}

func (e *Engine) multicastPrecheck(meta obsolete.Msg) error {
	if e.joinFailed {
		return ErrJoinTimeout
	}
	if e.expelled {
		return ErrExpelled
	}
	if !e.cv.Includes(e.cfg.Self) {
		return ErrNotMember
	}
	if meta.Seq != e.lastSent+1 {
		return ErrBadSeq
	}
	return nil
}

// canCommit reports whether the message fits everywhere it must be
// buffered, counting the entries its arrival would purge. The check is
// all-or-nothing: no queue is touched unless every queue fits, so a parked
// multicast never half-purges state it has not yet committed to send.
func (e *Engine) canCommit(meta obsolete.Msg, payload []byte) bool {
	it := e.dataItem(meta, payload)
	if fullAfterPurge(e.toDeliver, it) {
		return false
	}
	for _, p := range e.cv.Members {
		if p == e.cfg.Self {
			continue
		}
		if out := e.flow.pending(p); out != nil && !e.flow.hasCredit(p) && fullAfterPurge(out, it) {
			return false
		}
	}
	return true
}

func fullAfterPurge(q *queue.Queue, it queue.Item) bool {
	if q.Cap() == 0 {
		return false
	}
	return q.Len()-q.CountPurgeableFor(it) >= q.Cap()
}

func (e *Engine) dataItem(meta obsolete.Msg, payload []byte) queue.Item {
	meta.Sender = e.cfg.Self
	return queue.Item{
		Kind:    queue.Data,
		View:    uint64(e.cv.ID),
		Epoch:   uint64(e.cv.Epoch),
		Meta:    meta,
		Payload: payload,
	}
}

// commitOne commits a single message of the transaction advance drives:
// local append (with its purges), per-peer staging, counters. Room in
// every queue is guaranteed by canCommit.
func (e *Engine) commitOne(meta obsolete.Msg, payload []byte) {
	it := e.dataItem(meta, payload)
	dm := DataMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Meta: it.Meta, Payload: it.Payload}
	if e.m.deliverLatency != nil {
		it.At = e.clock.Now()
	}

	e.lastSent = it.Meta.Seq
	e.purgeToDeliver(it)
	e.toDeliver.ForceAppend(it) // room guaranteed by canCommit
	for _, p := range e.cv.Members {
		if p == e.cfg.Self {
			continue
		}
		e.stageData(p, dm)
	}
	e.stats.Multicast++
	e.m.multicast.Inc()
	e.stats.PurgedToDeliver = e.toDeliver.Stats().Purged
	e.serveDeliveries()
}

// stageData stages dm for transmission to p, or buffers it in the
// per-peer outgoing queue when p is out of window credits.
func (e *Engine) stageData(p ident.PID, dm DataMsg) {
	if e.flow.takeCredit(p) {
		if e.stage == nil {
			e.stage = make(map[ident.PID][]DataMsg)
		}
		s := e.stage[p]
		if s == nil {
			s = make([]DataMsg, 0, e.stageHint)
		}
		e.stage[p] = append(s, dm)
		return
	}
	out := e.flow.pending(p)
	it := queue.Item{Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch), Meta: dm.Meta, Payload: dm.Payload}
	n := uint64(out.PurgeForN(it))
	e.stats.PurgedOutgoing += n
	e.m.purgedOutgoing.Add(n)
	out.ForceAppend(it) // room guaranteed by canCommit
}

// flushStage transmits every staged per-peer run: a single message goes
// out as a plain DataMsg, a longer run as one DataBatchMsg envelope. The
// staged slices are handed to the transport (the decode side aliases
// nothing, and fault injection may duplicate the envelope), so each flush
// hands off ownership and the next transaction starts slices afresh.
func (e *Engine) flushStage() {
	if len(e.stage) == 0 {
		return
	}
	for p, msgs := range e.stage {
		switch len(msgs) {
		case 0:
		case 1:
			e.stage[p] = nil
			e.send(p, transport.Data, msgs[0])
		default:
			e.stage[p] = nil
			e.send(p, transport.Data, &DataBatchMsg{Msgs: msgs})
		}
	}
}

// ---- t3: receive data ----------------------------------------------------

// onDataBatch processes one batched receive from the data inbox. Each
// envelope carries either a single DataMsg or a DataBatchMsg run; both
// routes go through ingestData per message, so batching never changes a
// message's fate — only how many channel operations it shared.
func (e *Engine) onDataBatch(envs []transport.Envelope) {
	for i := range envs {
		switch m := envs[i].Msg.(type) {
		case DataMsg:
			e.ingestData(m)
		case *DataBatchMsg:
			for j := range m.Msgs {
				e.ingestData(m.Msgs[j])
			}
		default:
			// A data-channel envelope that is not data: miscoded or
			// hostile peer. This was an entirely silent discard before.
			e.m.dropBadType.Inc()
			e.ev.Drop(obs.DropBadType, slog.String("from", string(envs[i].From)))
		}
	}
}

// ingestData routes one arrival: process it now, or — when an earlier
// arrival of this batch is already waiting for queue space — stash it
// raw behind it, preserving per-sender FIFO. (The data inbox is gated
// while anything is pending, so the stash is bounded by one batched
// receive.)
func (e *Engine) ingestData(dm DataMsg) {
	if e.pendingHead != nil || e.pendingPos < len(e.pendingRest) {
		e.pendingRest = append(e.pendingRest, dm)
		return
	}
	if !e.processData(dm) {
		h := dm
		e.pendingHead = &h
	}
}

// processData runs the t3 receive checks for one arrival. It returns
// false only when the message passed every check (and its credit charge
// and purges were applied) but the delivery queue is full — the caller
// keeps it as pendingHead until space frees.
func (e *Engine) processData(dm DataMsg) bool {
	if e.expelled {
		e.m.dropExpelled.Inc()
		return true
	}
	if dm.View != e.cv.ID || dm.Epoch != e.cv.Epoch {
		// Not this view — stale, or another lineage's traffic racing a
		// partition merge. Either way its pred/flush obligations are
		// handled by view-change machinery, not the data path.
		e.stats.DroppedStale++
		e.m.dropStale.Inc()
		return true
	}
	if dm.Meta.Sender == e.cfg.Self {
		return true // never accept echoes of our own stream
	}
	// Whatever happens to it next, this arrival consumed one of the
	// credits we granted its sender (receiver-side ledger, flow.go).
	e.flow.received(dm.Meta.Sender)
	if dm.Meta.Seq <= e.recvMax[dm.Meta.Sender] || e.coveredLocally(dm.Meta) {
		// Duplicate, or an m with some m' : m ⊑ m' already queued or
		// delivered (Figure 1, t3). The slot it would have used is free.
		// Either way the message was received: advance the reception
		// frontier so stability tracking is not held back by it.
		if dm.Meta.Seq > e.recvMax[dm.Meta.Sender] {
			e.recvMax[dm.Meta.Sender] = dm.Meta.Seq
		}
		e.stats.DroppedCovered++
		e.m.dropCovered.Inc()
		e.flow.freed(dm.Meta.Sender, e)
		return true
	}
	it := queue.Item{Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch), Meta: dm.Meta, Payload: dm.Payload}
	e.purgeToDeliver(it)
	if e.toDeliver.Full() {
		// Keep the arrival in the one reserved stall slot; the data inbox
		// stays closed until space frees, so per-sender FIFO holds.
		return false
	}
	e.acceptData(it)
	return true
}

func (e *Engine) acceptData(it queue.Item) {
	if e.m.deliverLatency != nil {
		it.At = e.clock.Now()
	}
	e.recvMax[it.Meta.Sender] = it.Meta.Seq
	e.toDeliver.ForceAppend(it)
	e.stats.PurgedToDeliver = e.toDeliver.Stats().Purged
	e.serveDeliveries()
	e.retryParked()
}

// retryPending re-attempts the stashed arrivals once space frees: first
// the processed head waiting on its stall slot, then the raw remainder of
// the batch behind it. Only the outermost call drains (pumpingPending):
// acceptData → serveDeliveries re-enters here, and unbounded recursion
// would grow the stack by one frame per stashed arrival.
func (e *Engine) retryPending() {
	if e.pumpingPending {
		return
	}
	e.pumpingPending = true
	defer func() { e.pumpingPending = false }()
	for !e.blocked && !e.expelled {
		if e.pendingHead != nil {
			if e.toDeliver.Full() {
				return
			}
			dm := *e.pendingHead
			e.pendingHead = nil
			if dm.View != e.cv.ID || dm.Epoch != e.cv.Epoch {
				e.stats.DroppedStale++
				e.m.dropStale.Inc()
				continue
			}
			it := queue.Item{Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch), Meta: dm.Meta, Payload: dm.Payload}
			e.acceptData(it)
			continue
		}
		if e.pendingPos < len(e.pendingRest) {
			dm := e.pendingRest[e.pendingPos]
			e.pendingRest[e.pendingPos] = DataMsg{} // release payload refs
			e.pendingPos++
			if !e.processData(dm) {
				h := dm
				e.pendingHead = &h
			}
			continue
		}
		e.pendingRest = e.pendingRest[:0]
		e.pendingPos = 0
		return
	}
}

// coveredLocally reports whether a message m with m ⊑ m' for some queued
// or delivered m' exists. Both queues answer from their sender index when
// the relation is sender-local, keeping the per-arrival check O(window).
func (e *Engine) coveredLocally(m obsolete.Msg) bool {
	return e.toDeliver.Covers(m) || e.delivered.Covers(m)
}

// purgeToDeliver purges the delivery-queue entries obsoleted by it and
// releases flow-control credits for them: their buffer slots are free
// again (this is the heart of SVS's advantage — a slow receiver's window
// refills without consuming). The purged entries pass through the
// engine's reusable scratch slice, so the hot path allocates nothing.
func (e *Engine) purgeToDeliver(it queue.Item) {
	purged := e.toDeliver.PurgeForInto(it, e.purgeScratch[:0])
	for i := range purged {
		p := &purged[i]
		if p.Meta.Sender != e.cfg.Self && p.View == uint64(e.cv.ID) && p.Epoch == uint64(e.cv.Epoch) && !e.seededAtJoin(p.Meta) {
			e.flow.freed(p.Meta.Sender, e)
		}
		purged[i] = queue.Item{} // release payload references
	}
	e.purgeScratch = purged[:0]
}

// seededAtJoin reports whether a current-view entry was adopted from a
// state transfer rather than received through the sender's flow-controlled
// channel: consuming it frees no window slot, so no credit may be granted
// for it (a duplicate arriving on the channel is credited separately).
func (e *Engine) seededAtJoin(m obsolete.Msg) bool {
	return e.joinSeeded != nil && m.Seq <= e.joinSeeded[m.Sender]
}

// ---- t1: deliver ---------------------------------------------------------

// serveDeliveries hands queue heads to waiting Deliver and DeliverBatch
// calls. A batch waiter takes as many heads as its buffer holds in one
// wake-up; like Deliver it never completes empty — it waits for the first
// item (or a terminal error) instead.
func (e *Engine) serveDeliveries() {
	for len(e.deliverWaiters) > 0 {
		w := e.deliverWaiters[0]
		if w.ctx != nil && w.ctx.Err() != nil {
			e.deliverWaiters = e.deliverWaiters[1:]
			continue
		}
		if w.dst != nil {
			n := 0
			for n < len(w.dst) {
				it, ok := e.toDeliver.PopHead()
				if !ok {
					break
				}
				w.dst[n] = e.deliverItem(it)
				n++
			}
			if n == 0 {
				if e.joinFailed {
					e.deliverWaiters = e.deliverWaiters[1:]
					w.errC <- ErrJoinTimeout
					continue
				}
				if e.expelled {
					e.deliverWaiters = e.deliverWaiters[1:]
					w.errC <- ErrExpelled
					continue
				}
				return
			}
			e.deliverWaiters = e.deliverWaiters[1:]
			w.nC <- n
			continue
		}
		it, ok := e.toDeliver.PopHead()
		if !ok {
			if e.joinFailed {
				e.deliverWaiters = e.deliverWaiters[1:]
				w.errC <- ErrJoinTimeout
				continue
			}
			if e.expelled {
				e.deliverWaiters = e.deliverWaiters[1:]
				w.errC <- ErrExpelled
				continue
			}
			return
		}
		e.deliverWaiters = e.deliverWaiters[1:]
		w.delC <- e.deliverItem(it)
	}
	// Space freed by pops lets pending arrivals and parked multicasts in.
	e.retryPending()
	e.retryParked()
}

func (e *Engine) deliverItem(it queue.Item) Delivery {
	switch it.Kind {
	case queue.Control:
		v := it.Ctl.(View)
		kind := DeliverView
		if !v.Includes(e.cfg.Self) {
			kind = DeliverExpelled
		}
		return Delivery{Kind: kind, View: v.ID, Epoch: v.Epoch, NewView: v}
	default:
		e.stats.Delivered++
		e.m.delivered.Inc()
		if !it.At.IsZero() {
			e.m.deliverLatency.ObserveDuration(e.clock.Since(it.At))
		}
		if it.View == uint64(e.cv.ID) && it.Epoch == uint64(e.cv.Epoch) {
			// Keep it in the per-view history for pred sets; purge the
			// history with the same relation so it holds live items only.
			e.delivered.PurgeForN(it)
			e.delivered.ForceAppend(it)
			if it.Meta.Sender != e.cfg.Self && !e.seededAtJoin(it.Meta) {
				e.flow.freed(it.Meta.Sender, e)
			}
		}
		return Delivery{
			Kind:    DeliverData,
			View:    ident.ViewID(it.View),
			Epoch:   ident.Epoch(it.Epoch),
			Meta:    it.Meta,
			Payload: it.Payload,
		}
	}
}

// retryParked re-attempts parked multicasts in FIFO order. The head stays
// in place until its whole batch commits, so a half-committed transaction
// resumes exactly where it stopped; the committing guard keeps the
// re-entrant calls advance itself triggers from interleaving another
// request into the open transaction.
func (e *Engine) retryParked() {
	if e.joining || e.committing {
		return
	}
	e.committing = true
	defer func() { e.committing = false }()
	for len(e.multicastQ) > 0 {
		req := e.multicastQ[0]
		if req.ctx != nil && req.ctx.Err() != nil {
			e.multicastQ = e.multicastQ[1:]
			continue
		}
		if !e.advance(req) {
			return // progress is recorded in req.done; the head stays parked
		}
		e.multicastQ = e.multicastQ[1:]
	}
}

// ---- t4: trigger view change ---------------------------------------------

func (e *Engine) triggerViewChange(join, leave ident.PIDs) error {
	if e.joinFailed {
		return ErrJoinTimeout
	}
	if e.expelled {
		return ErrExpelled
	}
	if e.joining {
		return ErrJoining
	}
	if e.blocked {
		// A view change is already in progress; joiners it does not admit
		// re-request admission and are picked up by the next change.
		return nil
	}
	init := InitMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Leave: leave, Join: join}
	for _, p := range e.cv.Members {
		e.send(p, transport.Ctl, init)
	}
	return nil
}

// onSuspicion reacts to failure detector events: they re-evaluate the
// propose condition and, with AutoEvict, trigger eviction view changes.
func (e *Engine) onSuspicion(ev fd.Event) {
	if e.expelled {
		return
	}
	if ev.Suspected && e.cfg.AutoEvict && !e.blocked && !e.joining && e.cv.Includes(ev.P) {
		_ = e.triggerViewChange(nil, ident.NewPIDs(ev.P))
	}
	e.checkPropose()
	e.checkMergePropose()
}

// ---- t5/t6: ctl handling ---------------------------------------------------

func (e *Engine) onCtl(env transport.Envelope) {
	if e.expelled {
		// An expelled-but-alive process still answers merge announcements
		// with a decline, so a union that names it can proceed without
		// waiting for suspicion to develop.
		if m, ok := env.Msg.(MergeMsg); ok && e.cfg.Heal != nil {
			e.declineMerge(m)
			return
		}
		e.m.dropExpelled.Inc()
		return
	}
	switch m := env.Msg.(type) {
	case InitMsg:
		if e.deferFuture(env, ident.ViewRef{Epoch: m.Epoch, ID: m.View}) {
			return
		}
		e.onInit(env.From, m)
	case PredMsg:
		if e.deferFuture(env, ident.ViewRef{Epoch: m.Epoch, ID: m.View}) {
			return
		}
		e.onPred(env.From, m)
	case CreditMsg:
		// A grant from another view must not inflate this view's window:
		// both sides re-arm to a full window at install, so crediting a
		// stale grant would double-count the slots it stood for.
		if m.View != e.cv.ID || m.Epoch != e.cv.Epoch {
			e.stats.CreditsStaleView++
			e.m.dropStaleCredit.Inc()
			e.ev.Drop(obs.DropStaleCredit, slog.String("from", string(env.From)),
				slog.Uint64("view", uint64(m.View)))
			return
		}
		e.flow.credit(env.From, m.Credits)
		e.drainOutgoing(env.From)
		e.retryParked()
	case StableMsg:
		e.onStable(env.From, m)
	case JoinReqMsg:
		e.onJoinReq(env.From)
	case StateMsg:
		e.onJoinState(env.From, m)
	case ProbeMsg:
		e.onProbe(env.From, m)
	case SplitMsg:
		e.onSplit(env.From, m)
	case MergeMsg:
		e.onMerge(env.From, m)
	case MergePredMsg:
		e.onMergePred(env.From, m)
	default:
		// A control envelope of no known kind fell through every case —
		// before, it vanished without a trace.
		e.m.dropUnknownCtl.Inc()
		e.ev.Drop(obs.DropUnknownCtl, slog.String("from", string(env.From)))
	}
}

// deferFuture stashes a control message for a view this process has not
// installed yet. A peer that already installed view v may initiate the
// change to v+1 before we finish installing v ourselves; dropping its INIT
// would strand it blocked (it cannot retransmit — it blocked itself at
// t5). The decide flood guarantees we install v shortly, at which point
// the stashed messages are replayed. The stash is bounded by
// Config.MaxDeferredCtl as a backstop against garbage from broken peers;
// drops past it are counted in Stats.CtlDeferredDropped.
//
// Cross-lineage traffic is deferred only while an epoch-changing install
// may be in flight (blocked on a merge decision, or joining — the state
// transfer may land us in a split epoch); then the replay after the
// install re-evaluates it under the new epoch. Otherwise a ref from
// another epoch is not "our future" — it is another partition's
// view-change chatter, which the merge protocol handles through its own
// messages — and is dropped as stale rather than stashed against an
// install that may never come.
func (e *Engine) deferFuture(env transport.Envelope, ref ident.ViewRef) bool {
	if ref.Epoch == e.cv.Epoch && ref.ID <= e.cv.ID {
		return false
	}
	if ref.Epoch != e.cv.Epoch && !e.blocked && !e.joining {
		e.stats.DroppedStale++
		e.m.dropStale.Inc()
		e.ev.Drop(obs.DropStaleView, slog.String("from", string(env.From)),
			slog.String("view", ref.String()))
		return true
	}
	if len(e.deferredCtl) < e.cfg.MaxDeferredCtl {
		e.deferredCtl = append(e.deferredCtl, env)
	} else {
		e.stats.CtlDeferredDropped++
		e.m.dropDefer.Inc()
		e.ev.Drop(obs.DropDeferOverflow, slog.String("from", string(env.From)),
			slog.Uint64("view", uint64(ref.ID)))
	}
	return true
}

// replayDeferred re-dispatches stashed control traffic after an install.
func (e *Engine) replayDeferred() {
	if len(e.deferredCtl) == 0 {
		return
	}
	pending := e.deferredCtl
	e.deferredCtl = nil
	for _, env := range pending {
		e.onCtl(env)
	}
}

// onInit is transition t5: block the group, adopt the leave and join
// sets, compute and disseminate the local pred sequence.
func (e *Engine) onInit(from ident.PID, m InitMsg) {
	if e.merge != nil && m.View == e.cv.ID && m.Epoch == e.cv.Epoch && e.cv.Includes(from) {
		// A member started an ordinary change while we were merging. The
		// change's quorum is reachable (the INIT got here) but its members
		// will not answer a merge mid-change — so yield: abort the merge
		// and join the change. The far side's probes retry the merge once
		// the change completes.
		e.abortMerge("view_change")
	}
	if m.View != e.cv.ID || e.blocked || e.joining {
		return
	}
	if !e.cv.Includes(from) {
		return
	}
	if from != e.cfg.Self {
		// Forward so every correct process initiates even if the
		// initiator crashed mid-dissemination.
		for _, p := range e.cv.Members {
			e.send(p, transport.Ctl, m)
		}
	}
	e.blocked = true
	e.blockStart = e.clock.Now()
	e.m.blockedG.Set(1)
	// Unaccepted arrivals: covered by their senders' pred sets.
	e.pendingHead = nil
	e.pendingRest = e.pendingRest[:0]
	e.pendingPos = 0
	e.leave = ident.NewPIDs(m.Leave...).Intersect(e.cv.Members)
	// Current members need no admission and a process asked to leave is
	// not admitted by the same change.
	e.join = ident.NewPIDs(m.Join...).Without(e.cv.Members).Without(e.leave)

	pred := PredMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Msgs: e.localPred(false)}
	for _, p := range e.cv.Members {
		e.send(p, transport.Ctl, pred)
	}

	// Watch for the decision even if we never reach the propose condition
	// ourselves — the decide flood must still install the view here.
	e.awaitDecision(ident.ViewRef{Epoch: e.cv.Epoch, ID: e.cv.ID + 1})
	e.checkPropose()
}

// awaitDecision registers ref as a legitimate successor of the current
// blocked state and watches its consensus instance for the decide flood.
// pendingNext is the arbitration ledger of the concurrent-proposal machine:
// several successors may be pending at once (the ordinary next view, a
// shrinking series of split continuations, a merge union), and onDecision
// installs whichever instance decides first — everything else is counted
// as ignored.
func (e *Engine) awaitDecision(ref ident.ViewRef) {
	if e.pendingNext[ref] {
		return
	}
	e.pendingNext[ref] = true
	go func() {
		raw, err := e.cons.Await(e.rootCtx, viewInstance(ref))
		e.pushDecision(ref, raw, err)
	}()
}

// localPred is the sequence of data messages this process has accepted to
// deliver in the current view: delivered history then still-queued, FIFO.
// For an ordinary view change messages known stable (received by every
// member) are excluded — the SVS obligations for them hold everywhere
// without flushing. A merge contribution keeps them (includeStable): the
// far side of a healed partition was never counted by this view's stable
// frontier, so for it "stable" proves nothing.
func (e *Engine) localPred(includeStable bool) []DataMsg {
	var out []DataMsg
	collect := func(it *queue.Item) bool {
		if it.Kind == queue.Data && it.View == uint64(e.cv.ID) && it.Epoch == uint64(e.cv.Epoch) &&
			(includeStable || !e.isStable(it.Meta.Sender, it.Meta.Seq)) {
			out = append(out, DataMsg{View: e.cv.ID, Epoch: e.cv.Epoch, Meta: it.Meta, Payload: it.Payload})
		}
		return true
	}
	e.delivered.EachRef(collect)
	e.toDeliver.EachRef(collect)
	return out
}

// onPred is transition t6: accumulate pred sequences.
func (e *Engine) onPred(from ident.PID, m PredMsg) {
	if m.View != e.cv.ID || m.Epoch != e.cv.Epoch || !e.cv.Includes(from) {
		return
	}
	for _, dm := range m.Msgs {
		e.globalPred[dm.Meta.ID()] = dm
	}
	e.predReceived = e.predReceived.Add(from)
	e.checkPropose()
}

// ---- t7: propose and install ----------------------------------------------

// checkPropose fires the consensus proposal once every unsuspected member's
// pred set has arrived and they form a majority. When every reachable pred
// is in but a majority is unreachable, the ordinary change can never decide;
// with healing enabled the reachable minority continues under a split epoch
// instead of wedging (checkSplit, merge.go).
func (e *Engine) checkPropose() {
	if !e.blocked || e.proposed || e.expelled || e.merge != nil {
		return
	}
	for _, p := range e.cv.Members {
		if !e.cfg.Detector.Suspected(p) && !e.predReceived.Contains(p) {
			return
		}
	}
	if 2*len(e.predReceived) <= len(e.cv.Members) {
		e.checkSplit()
		return
	}
	e.proposed = true

	// Joiners are added verbatim: they have no pred set to contribute and
	// take no part in the consensus deciding the view that admits them.
	next := View{Epoch: e.cv.Epoch, ID: e.cv.ID + 1, Members: e.predReceived.Without(e.leave).Union(e.join)}
	e.propose(consensusValue{Next: next, Pred: sortedPred(e.globalPred)}, e.cv.Members)
}

// propose encodes val and submits it to the consensus instance named by
// the next view's ref, with the given participant set. The decision (ours
// or a competitor's for the same instance) comes back through pushDecision.
func (e *Engine) propose(val consensusValue, participants ident.PIDs) {
	ref := val.Next.Ref()
	raw, err := encodeValue(val)
	if err != nil {
		// Unreachable with the hand-rolled wire encoder; surface as a
		// failed decision rather than wedging silently.
		e.pushDecision(ref, nil, err)
		return
	}
	members := participants.Clone()
	go func() {
		dec, err := e.cons.Propose(e.rootCtx, viewInstance(ref), members, raw)
		e.pushDecision(ref, dec, err)
	}()
}

// sortedPred flattens the accumulated global pred set deterministically:
// by sender, then sequence number — preserving each sender's FIFO order.
func sortedPred(m map[obsolete.MsgID]DataMsg) []DataMsg {
	out := make([]DataMsg, 0, len(m))
	for _, dm := range m {
		out = append(out, dm)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.Sender != out[j].Meta.Sender {
			return out[i].Meta.Sender < out[j].Meta.Sender
		}
		return out[i].Meta.Seq < out[j].Meta.Seq
	})
	return out
}

// pushDecision forwards a consensus outcome into the loop.
func (e *Engine) pushDecision(ref ident.ViewRef, raw []byte, err error) {
	var dec decision
	dec.forRef = ref
	if err != nil {
		dec.err = err
	} else if raw != nil {
		val, derr := decodeValue(raw)
		if derr != nil {
			dec.err = derr
		} else {
			dec.val = val
		}
	}
	select {
	case e.decC <- dec:
	case <-e.stopC:
	}
}

// onDecision installs the agreed view (the tail of t7) — but only a
// decision this blocked state is actually waiting on. With concurrent
// proposals (ordinary successor, split continuations, a merge union) more
// than one instance can decide; the first pending one wins and every
// other outcome is counted instead of silently dropped.
func (e *Engine) onDecision(dec decision) {
	if dec.err != nil {
		// A failed outcome where a view decision was expected used to be
		// invisible. Cancellation is the engine's own shutdown; anything
		// else (a decode failure, a stopped consensus service) is counted
		// and logged — the group will stay blocked until another decide
		// flood reaches it, and an operator should be able to see why.
		if !errors.Is(dec.err, context.Canceled) {
			e.m.decisionFails.Inc()
			e.ev.DecisionFailed(uint64(dec.forRef.ID), dec.err)
		}
		return
	}
	if e.blocked && e.pendingNext[dec.forRef] {
		e.install(dec.val)
		return
	}
	// Accounted, not installed: the duplicate report of the view we just
	// installed (Await and Propose both resolve), a decision that lost a
	// concurrent-proposal race, or a flood arriving after we moved on.
	switch {
	case dec.forRef == e.cv.Ref():
		e.ignoreDecision(dec.forRef, ignoreDuplicate)
	case !e.blocked:
		e.ignoreDecision(dec.forRef, ignoreNotBlocked)
	default:
		e.ignoreDecision(dec.forRef, ignoreWrongView)
	}
}

// ignoreDecision counts and logs a consensus outcome the engine chose not
// to act on — the paths the old machine silently `return`ed from.
func (e *Engine) ignoreDecision(ref ident.ViewRef, reason string) {
	e.stats.DecisionsIgnored++
	if c := e.m.decisionsIgnored[reason]; c != nil {
		c.Inc()
	}
	e.ev.DecisionIgnored(ref.String(), reason)
}

func (e *Engine) install(val consensusValue) {
	e.stats.ViewsInstalled++
	e.stats.LastFlushLen = len(val.Pred)
	e.m.viewsInstalled.Inc()
	e.m.flushLast.Set(int64(len(val.Pred)))
	var blockedFor time.Duration
	if !e.blockStart.IsZero() {
		blockedFor = e.clock.Since(e.blockStart)
		e.m.viewChange.ObserveDuration(blockedFor)
		e.blockStart = time.Time{}
	}
	e.m.blockedG.Set(0)
	if e.ev != nil {
		e.ev.ViewInstall(uint64(val.Next.ID), len(val.Next.Members), len(val.Pred), blockedFor)
		e.ev.MemberChange(uint64(val.Next.ID),
			pidStrings(val.Next.Members.Without(e.cv.Members)),
			pidStrings(e.cv.Members.Without(val.Next.Members)))
	}

	// Adopt flush messages we have not seen. Messages at or below recvMax
	// were genuinely received before (reception is FIFO per sender), so
	// anything missing locally was purged under a justified cover chain;
	// re-adding it would break per-sender FIFO delivery. For a merge
	// decision the flush carries both sides' backlogs, so this same loop
	// is what delivers the other partition's relation-surviving messages
	// before the union-view marker.
	added := 0
	for _, dm := range val.Pred {
		if dm.Meta.Seq <= e.recvMax[dm.Meta.Sender] {
			continue
		}
		if dm.Meta.Sender == e.cfg.Self && dm.Meta.Seq <= e.lastSent {
			continue
		}
		if e.coveredLocally(dm.Meta) {
			continue
		}
		e.recvMax[dm.Meta.Sender] = dm.Meta.Seq
		e.toDeliver.ForceAppend(queue.Item{
			Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch), Meta: dm.Meta, Payload: dm.Payload,
		})
		added++
	}
	e.stats.FlushAdded += uint64(added)
	e.m.flushAdded.Add(uint64(added))

	// The view marker follows the flush in the delivery queue.
	e.toDeliver.ForceAppend(queue.Item{
		Kind: queue.Control, View: uint64(val.Next.ID), Epoch: uint64(val.Next.Epoch), Ctl: val.Next.Clone(),
	})
	e.toDeliver.Purge()
	e.stats.PurgedToDeliver = e.toDeliver.Stats().Purged

	if e.merge == nil {
		// Dynamic membership: newcomers admitted by this view get a
		// semantic state transfer from their sponsor. This must read
		// e.delivered and e.cv before the per-view reset below.
		e.sendJoinStates(val.Next)
	} else {
		// Merge install: the "newcomers" are the other side, which already
		// holds its own state — no sponsor transfer. Adopt the combined
		// reception frontiers instead (after the flush loop above, which
		// must see our own frontiers), so stale retransmissions from
		// either side are recognised as duplicates.
		for s, q := range val.Recv {
			if s == e.cfg.Self {
				if q > e.lastSent {
					e.lastSent = q
				}
				continue
			}
			if q > e.recvMax[s] {
				e.recvMax[s] = q
			}
		}
		e.finishMerge(val)
	}

	if !val.Next.Includes(e.cfg.Self) {
		e.expelled = true
		e.ev.Expelled(uint64(val.Next.ID))
		for _, m := range e.multicastQ {
			m.mcC <- mcResult{err: ErrExpelled}
		}
		e.multicastQ = nil
	}

	// Remember who left: they are the processes a healing engine probes,
	// since only someone we once shared a view with can be the far side of
	// a healed partition.
	if e.cfg.Heal != nil && !e.expelled {
		for _, p := range e.cv.Members.Without(val.Next.Members) {
			if p != e.cfg.Self {
				e.former[p] = struct{}{}
			}
		}
		for _, p := range val.Next.Members {
			delete(e.former, p)
		}
	}

	// Reset per-view state.
	e.delivered = queue.New(e.rel, 0)
	e.cv = val.Next.Clone()
	e.viewDirty = true
	e.blocked = false
	e.proposed = false
	e.merge = nil
	e.join = nil
	e.leave = nil
	e.joinSeeded = nil
	e.globalPred = make(map[obsolete.MsgID]DataMsg)
	e.predReceived = nil
	clear(e.pendingNext)
	e.flow.reset(e.cv.Members)
	e.resetStabilityForView()

	if pd, ok := e.cfg.Detector.(interface{ SetPeers(ident.PIDs) }); ok {
		pd.SetPeers(e.cv.Members)
	}

	e.serveDeliveries()
	e.retryParked()
	e.replayDeferred()
	e.serveJoins()
}

// ---- dynamic membership: join handshake ------------------------------------

// onJoinReq parks an admission request; requests arriving mid view change
// wait for the install (the joiner retransmits anyway, but parking spares
// it a retry period).
func (e *Engine) onJoinReq(from ident.PID) {
	if e.expelled || e.joining || from == e.cfg.Self {
		return
	}
	e.pendingJoins = e.pendingJoins.Add(from)
	e.serveJoins()
}

// serveJoins resolves parked admission requests once no view change is in
// flight. A requester already in the current view was admitted but lost
// its state transfer (e.g. its sponsor crashed between install and send):
// it gets a fresh snapshot directly. The rest are admitted by a view
// change; if a concurrent change wins without them, their retransmitted
// requests try again.
func (e *Engine) serveJoins() {
	if e.blocked || e.expelled || e.joining || len(e.pendingJoins) == 0 {
		return
	}
	var admit ident.PIDs
	var snap *StateMsg // one snapshot serves every already-member requester
	snapSize := 0
	for _, p := range e.pendingJoins {
		if e.cv.Includes(p) {
			if snap == nil {
				st := e.buildJoinState(e.cv)
				snap = &st
				snapSize = stateMsgBytes(st)
			}
			e.sendJoinState(p, *snap, snapSize)
		} else {
			admit = admit.Add(p)
		}
	}
	e.pendingJoins = nil
	if len(admit) > 0 {
		_ = e.triggerViewChange(admit, nil)
	}
}

// sendJoinStates makes the sponsor — the lowest-ordered member surviving
// from the closing view — ship the state transfer to every newcomer of
// the view being installed. Every incumbent computes the same sponsor, so
// exactly one transfer is sent per join unless the sponsor crashes, in
// which case the joiner's retransmitted request reaches serveJoins at
// another member.
func (e *Engine) sendJoinStates(next View) {
	joiners := next.Members.Without(e.cv.Members)
	if len(joiners) == 0 {
		return
	}
	if inc := e.cv.Members.Intersect(next.Members); len(inc) == 0 || inc[0] != e.cfg.Self {
		return
	}
	st := e.buildJoinState(next)
	size := stateMsgBytes(st)
	for _, j := range joiners {
		e.sendJoinState(j, st, size)
	}
}

// buildJoinState snapshots this member's state for a joiner: the view,
// the per-sender reception frontiers, and the unstable backlog — every
// data message still held in the delivery history or the delivery queue,
// purged once more through the obsolescence relation so cross-queue
// covers collapse. This is the semantic state transfer: under a purging
// relation the backlog is O(window) however long the group has run.
func (e *Engine) buildJoinState(next View) StateMsg {
	snap := queue.New(e.rel, 0)
	collect := func(it *queue.Item) bool {
		if it.Kind == queue.Data {
			_, _ = snap.AppendPurge(*it)
		}
		return true
	}
	e.delivered.EachRef(collect)
	e.toDeliver.EachRef(collect)

	backlog := make([]DataMsg, 0, snap.Len())
	snap.EachRef(func(it *queue.Item) bool {
		backlog = append(backlog, DataMsg{
			View: ident.ViewID(it.View), Epoch: ident.Epoch(it.Epoch), Meta: it.Meta, Payload: it.Payload,
		})
		return true
	})
	return StateMsg{
		View: next.ID, Epoch: next.Epoch, Members: next.Members.Clone(),
		Recv: e.recvSnapshot(), Backlog: backlog,
	}
}

func (e *Engine) sendJoinState(to ident.PID, st StateMsg, size int) {
	e.send(to, transport.Ctl, st)
	e.stats.JoinStatesSent++
	e.stats.JoinBacklogSent += uint64(len(st.Backlog))
	e.stats.JoinBytesSent += uint64(size)
	e.m.joinBytesSent.Add(uint64(size))
	e.ev.StateTransfer("sent", string(to), uint64(st.View), len(st.Backlog), size)
}

// onJoinState installs the first view of a joining engine from the state
// transfer: frontiers, backlog, then the view marker — the application
// sees the inherited state first and the view notification tells it the
// join completed. Duplicate transfers (retries, several responders) after
// the first are ignored.
func (e *Engine) onJoinState(from ident.PID, m StateMsg) {
	if !e.joining {
		return
	}
	members := ident.NewPIDs(m.Members...)
	// Only a member of the view being transferred may hand it over (the
	// sponsor, or — on the recovery path — the contact that was re-asked);
	// a transfer from anyone else would hijack the joining engine.
	if m.View == 0 || !members.Contains(e.cfg.Self) || !members.Contains(from) || from == e.cfg.Self {
		return
	}
	if e.joinTimer != nil {
		e.joinTimer.Stop()
		e.joinTimer = nil
	}
	e.joining = false
	e.stats.ViewsInstalled++
	e.m.viewsInstalled.Inc()
	var took time.Duration
	if !e.joinStart.IsZero() {
		took = e.clock.Since(e.joinStart)
		e.m.joinDur.ObserveDuration(took)
	}
	size := stateMsgBytes(m)
	e.ev.StateTransfer("recv", string(from), uint64(m.View), len(m.Backlog), size)
	e.ev.JoinComplete(uint64(m.View), len(m.Members), took)

	// Adopt the sponsor's reception frontiers. Our own stream's frontier
	// continues the sequence numbering if this PID multicast in an
	// earlier incarnation.
	for s, q := range m.Recv {
		if s == e.cfg.Self {
			if q > e.lastSent {
				e.lastSent = q
			}
			continue
		}
		if q > e.recvMax[s] {
			e.recvMax[s] = q
		}
	}
	// Backlog entries of the installed view never consumed a window slot
	// here; remember them so their consumption grants no credits.
	e.joinSeeded = make(map[ident.PID]ident.Seq)
	for _, dm := range m.Backlog {
		if dm.View == m.View && dm.Epoch == m.Epoch && dm.Meta.Seq > e.joinSeeded[dm.Meta.Sender] {
			e.joinSeeded[dm.Meta.Sender] = dm.Meta.Seq
		}
		e.toDeliver.ForceAppend(queue.Item{
			Kind: queue.Data, View: uint64(dm.View), Epoch: uint64(dm.Epoch), Meta: dm.Meta, Payload: dm.Payload,
		})
	}
	e.cv = View{Epoch: m.Epoch, ID: m.View, Members: members}
	e.viewDirty = true
	e.toDeliver.ForceAppend(queue.Item{
		Kind: queue.Control, View: uint64(m.View), Epoch: uint64(m.Epoch), Ctl: e.cv.Clone(),
	})
	e.stats.JoinBacklogRecv = uint64(len(m.Backlog))
	e.stats.JoinBytesRecv = uint64(size)
	e.m.joinBytesRecv.Add(uint64(size))

	e.flow.reset(e.cv.Members)
	e.resetStabilityForView()
	if pd, ok := e.cfg.Detector.(interface{ SetPeers(ident.PIDs) }); ok {
		pd.SetPeers(e.cv.Members)
	}
	e.serveDeliveries()
	e.retryParked()
	e.replayDeferred()
}

// stateMsgBytes is the wire size of a state transfer — what the join
// benchmarks compare between semantic and reliable configurations.
func stateMsgBytes(m StateMsg) int {
	b, err := codec.Marshal(nil, m)
	if err != nil {
		return 0
	}
	return len(b)
}
