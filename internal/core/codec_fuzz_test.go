package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/codec"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// roundTrip marshals m through the registry and requires the decoded
// value to be deeply equal — including nil vs empty distinctions that
// gob papered over.
func roundTrip(t *testing.T, m any) {
	t.Helper()
	b, err := codec.Marshal(nil, m)
	if err != nil {
		t.Fatalf("marshal %#v: %v", m, err)
	}
	out, err := codec.UnmarshalBytes(b)
	if err != nil {
		t.Fatalf("unmarshal %#v: %v", m, err)
	}
	if !reflect.DeepEqual(out, m) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", out, m)
	}
}

// TestCodecWireRoundTripEdgeCases pins the cases the issue calls out:
// nil payloads, empty pred sets, zero-member views, nil vs empty
// everywhere.
func TestCodecWireRoundTripEdgeCases(t *testing.T) {
	cases := []any{
		DataMsg{},
		DataMsg{View: 3, Meta: obsolete.Msg{Sender: "p", Seq: 1}, Payload: nil},
		DataMsg{View: 3, Meta: obsolete.Msg{Sender: "p", Seq: 2, Annot: []byte{}}, Payload: []byte{}},
		InitMsg{},
		InitMsg{View: 9, Leave: []ident.PID{}},
		InitMsg{View: 9, Leave: []ident.PID{"a", "b"}},
		PredMsg{},
		PredMsg{View: 4, Msgs: []DataMsg{}},
		PredMsg{View: 4, Msgs: []DataMsg{{View: 4, Meta: obsolete.Msg{Sender: "q", Seq: 7, Annot: []byte{1}}, Payload: []byte("x")}}},
		CreditMsg{},
		CreditMsg{View: 2, Credits: -3},
		CreditMsg{View: 2, Credits: 1 << 30},
		StableMsg{},
		StableMsg{View: 5, Recv: map[ident.PID]ident.Seq{}},
		StableMsg{View: 5, Recv: map[ident.PID]ident.Seq{"a": 1, "b": 99}},
	}
	for _, m := range cases {
		roundTrip(t, m)
	}
}

// TestConsensusValueZeroMemberView: an encoded decision may carry a view
// with no members at all (everyone left); the codec must not conflate it
// with a missing view.
func TestConsensusValueZeroMemberView(t *testing.T) {
	for _, val := range []consensusValue{
		{},
		{Next: View{ID: 8, Members: ident.NewPIDs()}},
		{Next: View{ID: 8}, Pred: []DataMsg{}},
	} {
		raw, err := encodeValue(val)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeValue(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, val) {
			t.Fatalf("got %#v, want %#v", got, val)
		}
	}
}

// FuzzCodecRoundTrip builds every wire type from fuzzed fields and
// asserts decode(encode(x)) == x exactly.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("p1", uint64(1), uint64(1), []byte{1, 2}, []byte("payload"), "p2", int64(3), false)
	f.Add("", uint64(0), uint64(0), []byte(nil), []byte(nil), "", int64(0), true)
	f.Add("sender/with/slash", uint64(1<<40), uint64(1<<50), []byte{}, []byte{}, "x", int64(-1), false)
	f.Fuzz(func(t *testing.T, sender string, view, seq uint64, annot, payload []byte, peer string, credits int64, nils bool) {
		meta := obsolete.Msg{Sender: ident.PID(sender), Seq: ident.Seq(seq), Annot: annot}
		dm := DataMsg{View: ident.ViewID(view), Meta: meta, Payload: payload}
		roundTrip(t, dm)

		init := InitMsg{View: ident.ViewID(view)}
		pred := PredMsg{View: ident.ViewID(view)}
		stable := StableMsg{View: ident.ViewID(view)}
		if !nils {
			init.Leave = []ident.PID{ident.PID(peer), ident.PID(sender)}
			pred.Msgs = []DataMsg{dm, {View: dm.View}}
			stable.Recv = map[ident.PID]ident.Seq{
				ident.PID(sender): ident.Seq(seq),
				ident.PID(peer):   ident.Seq(view),
			}
		}
		roundTrip(t, init)
		roundTrip(t, pred)
		roundTrip(t, stable)
		roundTrip(t, CreditMsg{View: ident.ViewID(view), Credits: int(credits)})

		val := consensusValue{Next: View{ID: ident.ViewID(view)}}
		if !nils {
			val.Next.Members = ident.NewPIDs(ident.PID(sender), ident.PID(peer))
			val.Pred = []DataMsg{dm}
		}
		raw, err := encodeValue(val)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeValue(raw)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, val) {
			t.Fatalf("consensus value mismatch:\n got %#v\nwant %#v", got, val)
		}
	})
}

// FuzzDecodeValueNoPanic hardens the consensus value decoder against
// arbitrary bytes arriving from a faulty peer.
func FuzzDecodeValueNoPanic(f *testing.F) {
	good, _ := encodeValue(consensusValue{
		Next: View{ID: 2, Members: ident.NewPIDs("a", "b")},
		Pred: []DataMsg{{View: 1, Meta: obsolete.Msg{Sender: "a", Seq: 1}}},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("not gob"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeValue(data)
	})
}

// TestDecodeBoundsHostileCounts: a PredMsg claiming ~1M entries whose
// element data is garbage must fail cheaply. The count passes the
// codec's byte-level bound (1M bytes follow it), so without a capacity
// clamp the decoder would pre-allocate count × sizeof(DataMsg) ≈ 80 MB
// before looking at a single element.
func TestDecodeBoundsHostileCounts(t *testing.T) {
	const claimed = 1 << 20
	hostile := codec.AppendByte(nil, byte(codec.TPredMsg))
	hostile = codec.AppendUvarint(hostile, 1)         // view
	hostile = codec.AppendUvarint(hostile, claimed+1) // claims 1M DataMsgs
	// 1 MiB of 0xFF: satisfies the byte bound, but the first element's
	// view field is an over-long varint, so decoding fails immediately.
	filler := make([]byte, claimed)
	for i := range filler {
		filler[i] = 0xFF
	}
	hostile = append(hostile, filler...)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := codec.UnmarshalBytes(hostile); err == nil {
		t.Fatal("hostile count accepted")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 10<<20 {
		t.Fatalf("hostile count drove %d bytes of allocation", grew)
	}
}
