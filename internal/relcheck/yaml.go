package relcheck

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// YAML model specs. The schema is deliberately small and the parser
// correspondingly strict — unknown keys are errors, because a typoed
// declaration in a verification spec must never silently verify nothing.
// Only the subset of YAML the schema needs is supported: top-level
// `key: value` scalars, one `rules:` sequence of inline mappings,
// comments and blank lines. (The container ships no YAML dependency; a
// checker this small is better served by a strict hand-rolled reader than
// by gating the whole tool on one.)
//
//	name: unsound-window        # report label
//	relation: rules             # empty | tagging | enumeration | k-enumeration | rules
//	k: 4                        # encoding parameter (enumeration window / k-enumeration k)
//	sender-local: true          # declared SenderLocal capability (default: what the relation declares)
//	window: 2                   # declared Windowed bound, 0 = undeclared (default: relation's own)
//	transitive: false           # transitivity claim (default: true for built-ins, false for rules)
//	senders: 2                  # domain: number of senders
//	depth: 6                    # domain: messages per sender
//	tags: 3                     # domain: distinct item tags
//	max-interleavings: 2000     # confluence enumeration bound
//	rules:                      # relation: rules only — union of rule predicates
//	  - match: stride           # stride | tag | cross-sender | symmetric | self
//	    reach: 4                # reach of stride / cross-sender / symmetric
//	    from: 3                 # stride only: minimum delta (default 1)
type spec struct {
	fields map[string]string
	rules  []map[string]string
}

// ParseYAMLFile loads and parses a model spec from path.
func ParseYAMLFile(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseYAML(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m.Source = path
	return m, nil
}

// ParseYAML parses a model spec from its YAML text.
func ParseYAML(text string) (*Model, error) {
	sp, err := parseSpec(text)
	if err != nil {
		return nil, err
	}
	return sp.model()
}

func parseSpec(text string) (*spec, error) {
	sp := &spec{fields: make(map[string]string)}
	inRules := false
	for ln, raw := range strings.Split(text, "\n") {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		indented := line[0] == ' ' || line[0] == '\t'
		body := strings.TrimSpace(line)
		switch {
		case !indented && body == "rules:":
			if inRules {
				return nil, fmt.Errorf("line %d: duplicate rules section", ln+1)
			}
			inRules = true
		case !indented:
			key, val, err := splitKV(body, ln)
			if err != nil {
				return nil, err
			}
			if val == "" {
				return nil, fmt.Errorf("line %d: key %q has no value", ln+1, key)
			}
			if _, dup := sp.fields[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate key %q", ln+1, key)
			}
			sp.fields[key] = val
			inRules = false
		case inRules && strings.HasPrefix(body, "- "):
			key, val, err := splitKV(strings.TrimSpace(body[2:]), ln)
			if err != nil {
				return nil, err
			}
			sp.rules = append(sp.rules, map[string]string{key: val})
		case inRules && len(sp.rules) > 0:
			key, val, err := splitKV(body, ln)
			if err != nil {
				return nil, err
			}
			r := sp.rules[len(sp.rules)-1]
			if _, dup := r[key]; dup {
				return nil, fmt.Errorf("line %d: duplicate rule key %q", ln+1, key)
			}
			r[key] = val
		default:
			return nil, fmt.Errorf("line %d: unexpected indented line %q", ln+1, body)
		}
	}
	return sp, nil
}

func stripComment(line string) string {
	if i := strings.Index(line, "#"); i >= 0 {
		return line[:i]
	}
	return line
}

func splitKV(body string, ln int) (key, val string, err error) {
	i := strings.Index(body, ":")
	if i < 0 {
		return "", "", fmt.Errorf("line %d: expected key: value, got %q", ln+1, body)
	}
	return strings.TrimSpace(body[:i]), strings.TrimSpace(body[i+1:]), nil
}

// model validates the spec and builds the Model.
func (sp *spec) model() (*Model, error) {
	known := map[string]bool{
		"name": true, "relation": true, "k": true, "sender-local": true,
		"window": true, "transitive": true, "senders": true, "depth": true,
		"tags": true, "max-interleavings": true,
	}
	for key := range sp.fields {
		if !known[key] {
			return nil, fmt.Errorf("unknown key %q", key)
		}
	}
	relName := sp.fields["relation"]
	if relName == "" {
		return nil, fmt.Errorf("missing required key %q", "relation")
	}

	d := Domain{
		Senders: 0, Depth: 0, Tags: 0, K: 0,
	}
	var err error
	if d.Senders, err = sp.intField("senders", 0); err != nil {
		return nil, err
	}
	if d.Depth, err = sp.intField("depth", 0); err != nil {
		return nil, err
	}
	if d.Tags, err = sp.intField("tags", 0); err != nil {
		return nil, err
	}
	if d.K, err = sp.intField("k", 0); err != nil {
		return nil, err
	}

	var m *Model
	if relName == "rules" {
		if len(sp.rules) == 0 {
			return nil, fmt.Errorf("relation: rules requires a non-empty rules section")
		}
		rel := &ruleRelation{}
		for _, r := range sp.rules {
			ru, err := buildRule(r)
			if err != nil {
				return nil, err
			}
			rel.rules = append(rel.rules, ru)
		}
		d = d.withDefaults()
		m = &Model{
			Rel:     rel,
			Streams: ruleStreams(rel, d.Senders, d.Depth, d.Tags),
		}
	} else {
		if len(sp.rules) > 0 {
			return nil, fmt.Errorf("rules section is only valid with relation: rules")
		}
		if m, err = Builtin(relName, d); err != nil {
			return nil, err
		}
	}

	// Declarations: default to the relation's own, overridable by the spec
	// (that is how a would-be declaration is proven unsound before it is
	// written into code).
	if v, ok := sp.fields["sender-local"]; ok {
		if m.SenderLocal, err = parseBool(v, "sender-local"); err != nil {
			return nil, err
		}
	}
	if _, ok := sp.fields["window"]; ok {
		if m.Window, err = sp.intField("window", m.Window); err != nil {
			return nil, err
		}
	}
	if v, ok := sp.fields["transitive"]; ok {
		if m.Transitive, err = parseBool(v, "transitive"); err != nil {
			return nil, err
		}
	}
	if m.MaxInterleavings, err = sp.intField("max-interleavings", 0); err != nil {
		return nil, err
	}
	if rr, ok := m.Rel.(*ruleRelation); ok {
		rr.name = sp.fields["name"]
		rr.senderLocal = m.SenderLocal
		rr.window = m.Window
	}
	if m.Window > 0 && !m.SenderLocal {
		return nil, fmt.Errorf("window declared without sender-local: Windowed refines SenderLocal (see internal/obsolete)")
	}
	m.Name = sp.fields["name"]
	if m.Name == "" {
		m.Name = relName
	}
	return m, nil
}

func (sp *spec) intField(key string, def int) (int, error) {
	v, ok := sp.fields[key]
	if !ok {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("key %q: want a non-negative integer, got %q", key, v)
	}
	return n, nil
}

func parseBool(v, key string) (bool, error) {
	switch v {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, fmt.Errorf("key %q: want true or false, got %q", key, v)
}

func buildRule(r map[string]string) (rule, error) {
	match := r["match"]
	reach := 4
	if v, ok := r["reach"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("rule %q: reach must be a positive integer, got %q", match, v)
		}
		reach = n
	}
	from := 1
	if v, ok := r["from"]; ok {
		if match != "stride" {
			return nil, fmt.Errorf("rule %q: key %q is only valid for stride", match, "from")
		}
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > reach {
			return nil, fmt.Errorf("rule %q: from must be a positive integer ≤ reach, got %q", match, v)
		}
		from = n
	}
	for key := range r {
		if key != "match" && key != "reach" && key != "from" {
			return nil, fmt.Errorf("rule %q: unknown key %q", match, key)
		}
	}
	switch match {
	case "stride":
		return strideRule{from: from, reach: reach}, nil
	case "tag":
		return tagRule{}, nil
	case "cross-sender":
		return crossSenderRule{reach: reach}, nil
	case "symmetric":
		return symmetricRule{reach: reach}, nil
	case "self":
		return selfRule{}, nil
	case "":
		return nil, fmt.Errorf("rule missing match key")
	}
	return nil, fmt.Errorf("unknown rule match %q (want stride, tag, cross-sender, symmetric or self)", match)
}
