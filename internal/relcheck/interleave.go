package relcheck

import (
	"math/rand"

	"repro/internal/obsolete"
)

// Interleaving enumeration for the confluence check. An interleaving is an
// arrival order of the universe that preserves each sender's FIFO order —
// the invariant the protocol engine maintains and the purge index relies
// on. When the multinomial count fits under max the enumeration is
// exhaustive (and the check is a proof over the model); otherwise the
// checker visits the canonical orders (round-robin, per-sender
// concatenations) plus a deterministic uniform sample, and the report says
// coverage was sampled.

// countInterleavings returns the number of FIFO-preserving interleavings,
// capped: when the count exceeds limit it reports (limit+1, true) without
// computing the exact (possibly overflowing) value.
func countInterleavings(streams []Stream, limit uint64) (uint64, bool) {
	// multinomial(n; d1..ds) built incrementally as ∏ C(prefix, di), each
	// binomial itself built one factor at a time (multiply before divide
	// keeps every step integral). The running value only grows along the
	// way, so checking the limit after each step bounds it — and keeps the
	// uint64 product far from overflow for any sane limit.
	total := uint64(1)
	prefix := 0
	for _, s := range streams {
		for i := 1; i <= len(s.Msgs); i++ {
			prefix++
			total = total * uint64(prefix) / uint64(i)
			if total > limit {
				return limit + 1, true
			}
		}
	}
	return total, false
}

// forEachInterleaving invokes fn on interleavings of streams until fn
// returns false or the budget of max visits is spent. It returns how many
// interleavings were visited and whether coverage was exhaustive.
func forEachInterleaving(streams []Stream, max int, fn func([]obsolete.Msg) bool) (visited int, exhaustive bool) {
	if max <= 0 {
		max = DefaultMaxInterleavings
	}
	total := 0
	for _, s := range streams {
		total += len(s.Msgs)
	}
	if total == 0 {
		return 0, true
	}
	count, exceeded := countInterleavings(streams, uint64(max))
	if !exceeded && count <= uint64(max) {
		v := enumerate(streams, make([]obsolete.Msg, 0, total), fn)
		return v, true
	}
	return sample(streams, total, max, fn), false
}

// enumerate recursively walks every interleaving; returns visits made.
func enumerate(streams []Stream, prefix []obsolete.Msg, fn func([]obsolete.Msg) bool) int {
	visited := 0
	// next[i] tracks how far into stream i the prefix has consumed.
	next := make([]int, len(streams))
	var rec func() bool
	rec = func() bool {
		done := true
		for i := range streams {
			if next[i] < len(streams[i].Msgs) {
				done = false
				prefix = append(prefix, streams[i].Msgs[next[i]])
				next[i]++
				cont := rec()
				next[i]--
				prefix = prefix[:len(prefix)-1]
				if !cont {
					return false
				}
			}
		}
		if done {
			visited++
			return fn(append([]obsolete.Msg(nil), prefix...))
		}
		return true
	}
	rec()
	return visited
}

// sample visits the canonical orders plus a deterministic uniform sample.
func sample(streams []Stream, total, max int, fn func([]obsolete.Msg) bool) int {
	visited := 0
	visit := func(seq []obsolete.Msg) bool {
		visited++
		return fn(seq)
	}
	// Round-robin across streams.
	rr := make([]obsolete.Msg, 0, total)
	for i := 0; ; i++ {
		added := false
		for _, s := range streams {
			if i < len(s.Msgs) {
				rr = append(rr, s.Msgs[i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if !visit(rr) {
		return visited
	}
	// Per-sender concatenations, forward and reverse stream order.
	for _, rev := range []bool{false, true} {
		cat := make([]obsolete.Msg, 0, total)
		for i := range streams {
			s := streams[i]
			if rev {
				s = streams[len(streams)-1-i]
			}
			cat = append(cat, s.Msgs...)
		}
		if !visit(cat) {
			return visited
		}
	}
	// Deterministic uniform sample: pick the next message from a stream
	// weighted by how many it has left (uniform over interleavings).
	rng := rand.New(rand.NewSource(1))
	for visited < max {
		next := make([]int, len(streams))
		seq := make([]obsolete.Msg, 0, total)
		for len(seq) < total {
			left := 0
			for i, s := range streams {
				left += len(s.Msgs) - next[i]
			}
			n := rng.Intn(left)
			for i, s := range streams {
				if rem := len(s.Msgs) - next[i]; n < rem {
					seq = append(seq, s.Msgs[next[i]])
					next[i]++
					break
				} else {
					n -= rem
				}
			}
		}
		if !visit(seq) {
			return visited
		}
	}
	return visited
}
