package relcheck

import (
	"fmt"

	"repro/internal/check"
	"repro/internal/obsolete"
	"repro/internal/queue"
)

// Violation is one counterexample with its minimal witness, rendered
// nccheck-style ("VIOLATION: sender-local: p1:1 ≺ p2:2 crosses senders
// p1→p2").
type Violation struct {
	Family string // laws | capabilities | confluence
	Check  string // irreflexivity, windowed, indexed-vs-scan, ...
	// Witness is the minimal counterexample, human-readable.
	Witness string
}

func (v Violation) String() string { return fmt.Sprintf("VIOLATION: %s: %s", v.Check, v.Witness) }

// CheckResult is the outcome of one check.
type CheckResult struct {
	Family string
	Name   string
	// Checked counts the objects examined: messages, pairs, triples or
	// interleavings, per the check.
	Checked int
	// Detail annotates coverage ("sampled", "index inactive", ...).
	Detail string
	// Skipped means the check does not apply to this model (capability
	// not declared, transitivity not claimed).
	Skipped bool
	// Violations holds at most one minimal witness per check.
	Violations []Violation
}

// Report is the outcome of verifying one model.
type Report struct {
	Model   *Model
	Checks  []CheckResult
	Related int // ordered pairs the relation relates, a universe stat
}

// OK reports whether every check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if len(c.Violations) > 0 {
			return false
		}
	}
	return true
}

// Violations flattens every check's violations.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, c := range r.Checks {
		out = append(out, c.Violations...)
	}
	return out
}

// Run exhaustively verifies the model and returns the report. The universe
// is finite, so every answer is a proof over the model: PASS means no
// counterexample exists within the modelled domain (and, for sampled
// confluence coverage, within the visited interleavings — the report says
// which).
func Run(m *Model) *Report {
	r := &Report{Model: m}
	msgs := m.Msgs()
	for _, a := range msgs {
		for _, b := range msgs {
			if a.ID() != b.ID() && m.Rel.Obsoletes(a, b) {
				r.Related++
			}
		}
	}
	r.Checks = append(r.Checks, checkIrreflexivity(m, msgs))
	r.Checks = append(r.Checks, checkAntisymmetry(m, msgs))
	r.Checks = append(r.Checks, checkTransitivity(m, msgs))
	r.Checks = append(r.Checks, checkSenderLocal(m, msgs))
	r.Checks = append(r.Checks, checkWindowed(m, msgs))
	r.Checks = append(r.Checks, checkConfluence(m, msgs)...)
	return r
}

// ---- Laws (strict partial order, §3.2) -------------------------------------

func checkIrreflexivity(m *Model, msgs []obsolete.Msg) CheckResult {
	res := CheckResult{Family: "laws", Name: "irreflexivity"}
	for _, a := range msgs {
		res.Checked++
		if m.Rel.Obsoletes(a, a) {
			res.Violations = append(res.Violations, Violation{
				Family: res.Family, Check: res.Name,
				Witness: fmt.Sprintf("%s ≺ %s relates a message to itself", msgStr(a), msgStr(a)),
			})
			return res
		}
	}
	return res
}

func checkAntisymmetry(m *Model, msgs []obsolete.Msg) CheckResult {
	res := CheckResult{Family: "laws", Name: "antisymmetry"}
	for i, a := range msgs {
		for _, b := range msgs[i+1:] {
			res.Checked++
			if m.Rel.Obsoletes(a, b) && m.Rel.Obsoletes(b, a) {
				res.Violations = append(res.Violations, Violation{
					Family: res.Family, Check: res.Name,
					Witness: fmt.Sprintf("%s ≺ %s and %s ≺ %s", msgStr(a), msgStr(b), msgStr(b), msgStr(a)),
				})
				return res
			}
		}
	}
	return res
}

func checkTransitivity(m *Model, msgs []obsolete.Msg) CheckResult {
	res := CheckResult{Family: "laws", Name: "transitivity"}
	if !m.Transitive {
		res.Skipped = true
		res.Detail = "not claimed"
		return res
	}
	if m.TransWindow > 0 {
		res.Detail = fmt.Sprintf("within window %d", m.TransWindow)
	}
	for _, a := range msgs {
		for _, b := range msgs {
			if !m.Rel.Obsoletes(a, b) {
				continue
			}
			for _, c := range msgs {
				if !m.Rel.Obsoletes(b, c) {
					continue
				}
				if m.TransWindow > 0 &&
					(a.Sender != c.Sender || uint64(c.Seq-a.Seq) > uint64(m.TransWindow)) {
					continue // the encoding truncates closure here
				}
				res.Checked++
				if !m.Rel.Obsoletes(a, c) {
					res.Violations = append(res.Violations, Violation{
						Family: res.Family, Check: res.Name,
						Witness: fmt.Sprintf("%s ≺ %s ≺ %s but %s ⊀ %s",
							msgStr(a), msgStr(b), msgStr(c), msgStr(a), msgStr(c)),
					})
					return res
				}
			}
		}
	}
	return res
}

// ---- Capabilities (purge-index declarations) -------------------------------

func checkSenderLocal(m *Model, msgs []obsolete.Msg) CheckResult {
	res := CheckResult{Family: "capabilities", Name: "sender-local"}
	if !m.SenderLocal {
		res.Skipped = true
		res.Detail = "not declared"
		return res
	}
	for _, a := range msgs {
		for _, b := range msgs {
			if a.ID() == b.ID() {
				continue
			}
			res.Checked++
			if !m.Rel.Obsoletes(a, b) {
				continue
			}
			switch {
			case a.Sender != b.Sender:
				res.Violations = append(res.Violations, Violation{
					Family: res.Family, Check: res.Name,
					Witness: fmt.Sprintf("%s ≺ %s crosses senders %s→%s",
						msgStr(a), msgStr(b), a.Sender, b.Sender),
				})
				return res
			case a.Seq >= b.Seq:
				res.Violations = append(res.Violations, Violation{
					Family: res.Family, Check: res.Name,
					Witness: fmt.Sprintf("%s ≺ %s relates against sequence order",
						msgStr(a), msgStr(b)),
				})
				return res
			}
		}
	}
	return res
}

func checkWindowed(m *Model, msgs []obsolete.Msg) CheckResult {
	res := CheckResult{Family: "capabilities", Name: "windowed"}
	if m.Window <= 0 {
		res.Skipped = true
		res.Detail = "not declared"
		return res
	}
	res.Name = fmt.Sprintf("windowed(%d)", m.Window)
	for _, a := range msgs {
		for _, b := range msgs {
			if a.Sender != b.Sender || a.Seq >= b.Seq {
				continue // cross-sender reach is sender-local's to report
			}
			res.Checked++
			if m.Rel.Obsoletes(a, b) && uint64(b.Seq-a.Seq) > uint64(m.Window) {
				res.Violations = append(res.Violations, Violation{
					Family: res.Family, Check: "windowed",
					Witness: fmt.Sprintf("%s ≺ %s at distance %d exceeds window %d",
						msgStr(a), msgStr(b), b.Seq-a.Seq, m.Window),
				})
				return res
			}
		}
	}
	return res
}

// ---- Confluence (purge ⇄ deliver) ------------------------------------------

// runExecution feeds arrivals through a fresh queue under rel — purging on
// every arrival exactly like the protocol's hot path (AppendPurge) — then
// delivers (pops) everything, returning the delivery sequence.
func runExecution(rel obsolete.Relation, arrivals []obsolete.Msg) []obsolete.MsgID {
	q := queue.New(rel, 0)
	for _, m := range arrivals {
		// Unbounded capacity: AppendPurge cannot fail.
		_, _ = q.AppendPurge(queue.Item{Kind: queue.Data, View: 1, Meta: m})
	}
	var out []obsolete.MsgID
	for {
		it, ok := q.PopHead()
		if !ok {
			return out
		}
		out = append(out, it.Meta.ID())
	}
}

// scanRelation strips rel's capability declarations so internal/queue takes
// the linear-scan reference path.
func scanRelation(rel obsolete.Relation) obsolete.Relation {
	return obsolete.Func{Label: rel.Name() + "/scan", F: rel.Obsoletes}
}

func sameIDs(a, b []obsolete.MsgID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func checkConfluence(m *Model, msgs []obsolete.Msg) []CheckResult {
	idx := CheckResult{Family: "confluence", Name: "indexed ≡ scan"}
	safe := CheckResult{Family: "confluence", Name: "purge safety"}
	if !obsolete.CapsOf(m.Rel).SenderLocal {
		idx.Detail = "index inactive — relation declares no capabilities"
	}

	scanRel := scanRelation(m.Rel)
	// The closure is built over the whole universe with the capability
	// declarations stripped, so coverage follows the relation's actual
	// behaviour (including cross-sender edges) rather than its claims.
	closure := check.NewClosure(scanRel, msgs)

	// divergence: the indexed and scan executions deliver different
	// sequences for this arrival order.
	divergence := func(arrivals []obsolete.Msg) bool {
		return !sameIDs(runExecution(m.Rel, arrivals), runExecution(scanRel, arrivals))
	}
	// unsafe: some message fed to the scan execution was purged without a
	// delivered message covering it — the purge did not commute with
	// delivery.
	unsafeMsg := func(arrivals []obsolete.Msg) (obsolete.Msg, bool) {
		delivered := runExecution(scanRel, arrivals)
		set := make(map[obsolete.MsgID]bool, len(delivered))
		for _, id := range delivered {
			set[id] = true
		}
		for _, a := range arrivals {
			if !set[a.ID()] && !closure.CoveredByAny(a.ID(), set) {
				return a, true
			}
		}
		return obsolete.Msg{}, false
	}

	visited, exhaustive := forEachInterleaving(m.Streams, m.MaxInterleavings, func(arrivals []obsolete.Msg) bool {
		if len(idx.Violations) == 0 && divergence(arrivals) {
			w := minimize(arrivals, divergence)
			got := runExecution(m.Rel, w)
			want := runExecution(scanRel, w)
			idx.Violations = append(idx.Violations, Violation{
				Family: idx.Family, Check: "confluence",
				Witness: fmt.Sprintf("arrivals %s deliver %s indexed vs %s scan — the declared capabilities corrupt the purge index",
					msgsStr(w), idsStr(got), idsStr(want)),
			})
		}
		if len(safe.Violations) == 0 {
			if _, bad := unsafeMsg(arrivals); bad {
				w := minimize(arrivals, func(a []obsolete.Msg) bool { _, b := unsafeMsg(a); return b })
				culprit, _ := unsafeMsg(w)
				safe.Violations = append(safe.Violations, Violation{
					Family: safe.Family, Check: "purge-safety",
					Witness: fmt.Sprintf("arrivals %s purge %s but deliver nothing that covers it — purging does not commute with delivery",
						msgsStr(w), msgStr(culprit)),
				})
			}
		}
		return len(idx.Violations) == 0 || len(safe.Violations) == 0
	})
	idx.Checked, safe.Checked = visited, visited
	if !exhaustive {
		detail := "sampled"
		if idx.Detail != "" {
			detail = idx.Detail + ", sampled"
		}
		idx.Detail = detail
		safe.Detail = "sampled"
	}
	return []CheckResult{idx, safe}
}

// minimize greedily shrinks an arrival sequence while pred keeps failing
// (delta-debugging with single-message removals to a fixpoint), yielding
// the minimal witness the report prints.
func minimize(arrivals []obsolete.Msg, pred func([]obsolete.Msg) bool) []obsolete.Msg {
	w := append([]obsolete.Msg(nil), arrivals...)
	for shrunk := true; shrunk; {
		shrunk = false
		for i := 0; i < len(w); i++ {
			cand := append(append([]obsolete.Msg(nil), w[:i]...), w[i+1:]...)
			if pred(cand) {
				w = cand
				shrunk = true
				break
			}
		}
	}
	return w
}
