package relcheck

import (
	"fmt"
	"io"
	"strings"
)

// Report rendering, nccheck-style: a banner, the universe stats, one line
// per check with PASS/skip/FAIL, indented VIOLATION witnesses, and a final
// SOUND/UNSOUND verdict.

const reportRule = "══════════════════════════════════════════"

// Format writes the full report. With quiet set, only failing checks and
// their witnesses are written (plus the verdict line).
func (r *Report) Format(w io.Writer, quiet bool) {
	if !quiet {
		fmt.Fprintf(w, "svs-check — obsolescence relation verifier\n%s\n\n", reportRule)
		fmt.Fprintf(w, "Model:     %s\n", r.Model.Name)
		fmt.Fprintf(w, "Source:    %s\n", r.Model.Source)
		fmt.Fprintf(w, "Relation:  %s\n\n", r.Model.Rel.Name())

		total := 0
		for _, s := range r.Model.Streams {
			total += len(s.Msgs)
		}
		fmt.Fprintf(w, "Universe\n")
		fmt.Fprintf(w, "  Senders:   %d, %d messages\n", len(r.Model.Streams), total)
		fmt.Fprintf(w, "  Related:   %d ordered pairs\n", r.Related)
		decl := "none"
		if r.Model.SenderLocal {
			decl = "sender-local"
			if r.Model.Window > 0 {
				decl += fmt.Sprintf(" windowed(%d)", r.Model.Window)
			}
		}
		fmt.Fprintf(w, "  Declared:  %s\n", decl)
	}

	for _, fam := range []struct{ key, title string }{
		{"laws", "Laws (strict partial order §3.2)"},
		{"capabilities", "Capabilities (purge-index declarations)"},
		{"confluence", "Confluence (purge ⇄ deliver)"},
	} {
		wroteTitle := false
		for _, c := range r.Checks {
			if c.Family != fam.key {
				continue
			}
			if quiet && len(c.Violations) == 0 {
				continue
			}
			if !wroteTitle {
				fmt.Fprintf(w, "\n%s\n", fam.title)
				wroteTitle = true
			}
			fmt.Fprintf(w, "  %-15s %s\n", c.Name, verdict(c))
			for _, v := range c.Violations {
				fmt.Fprintf(w, "    %s\n", v)
			}
		}
	}

	verdictLine := "Result: SOUND"
	if n := len(r.Violations()); n > 0 {
		verdictLine = fmt.Sprintf("Result: UNSOUND (%d violation%s)", n, plural(n))
	}
	if quiet {
		fmt.Fprintf(w, "%s — %s\n", verdictLine, r.Model.Name)
	} else {
		fmt.Fprintf(w, "\n%s\n%s\n", reportRule, verdictLine)
	}
}

func verdict(c CheckResult) string {
	switch {
	case c.Skipped:
		return pad("skip", c.Detail)
	case len(c.Violations) > 0:
		return pad("FAIL", c.Detail)
	default:
		unit := unitFor(c)
		detail := fmt.Sprintf("%d %s", c.Checked, unit)
		if c.Detail != "" {
			detail += ", " + c.Detail
		}
		return pad("PASS", detail)
	}
}

func unitFor(c CheckResult) string {
	switch {
	case c.Family == "confluence":
		return "interleavings"
	case c.Name == "irreflexivity":
		return "messages"
	case c.Name == "transitivity":
		return "chains"
	default:
		return "pairs"
	}
}

func pad(v, detail string) string {
	if detail == "" {
		return v
	}
	return fmt.Sprintf("%s   (%s)", v, detail)
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// Summary returns the one-line outcome, for logs and tests.
func (r *Report) Summary() string {
	var b strings.Builder
	r.Format(&b, true)
	return strings.TrimSpace(b.String())
}
