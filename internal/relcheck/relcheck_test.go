package relcheck

import (
	"strings"
	"testing"

	"repro/internal/obsolete"
)

// ---- Built-in encodings ----------------------------------------------------

func TestBuiltinsSound(t *testing.T) {
	for _, name := range BuiltinNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := Builtin(name, Domain{})
			if err != nil {
				t.Fatalf("Builtin(%q): %v", name, err)
			}
			r := Run(m)
			if !r.OK() {
				t.Fatalf("built-in %q unsound:\n%s", name, r.Summary())
			}
			for _, c := range r.Checks {
				if c.Skipped || c.Family == "confluence" {
					continue
				}
				// The empty relation relates nothing, so its chain/pair
				// checks legitimately examine nothing.
				if c.Checked == 0 && r.Related > 0 {
					t.Errorf("check %s/%s examined nothing — vacuous pass", c.Family, c.Name)
				}
			}
		})
	}
}

// TestBuiltinTransitivityNonVacuous pins the domain tuning: the default
// domain must contain real chains for every encoding that claims
// transitivity, else the law is verified on zero triples.
func TestBuiltinTransitivityNonVacuous(t *testing.T) {
	for _, name := range BuiltinNames() {
		if name == "empty" {
			continue // relates nothing; zero chains is correct
		}
		m, err := Builtin(name, Domain{})
		if err != nil {
			t.Fatal(err)
		}
		r := Run(m)
		for _, c := range r.Checks {
			if c.Name == "transitivity" && !c.Skipped && c.Checked == 0 {
				t.Errorf("built-in %q: transitivity checked 0 chains", name)
			}
		}
	}
}

func TestBuiltinUnknown(t *testing.T) {
	if _, err := Builtin("nope", Domain{}); err == nil {
		t.Fatal("Builtin(nope) succeeded")
	}
}

// TestBuiltinConfluenceExhaustive pins that the default domain stays under
// the enumeration bound — CI's builtin run must be a proof, not a sample.
func TestBuiltinConfluenceExhaustive(t *testing.T) {
	m, err := Builtin("k-enumeration", Domain{})
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m)
	for _, c := range r.Checks {
		if c.Family == "confluence" && strings.Contains(c.Detail, "sampled") {
			t.Fatalf("default-domain confluence sampled, want exhaustive: %+v", c)
		}
	}
}

// ---- Unsound models: each check family catches its own lie -----------------

func mustParse(t *testing.T, text string) *Model {
	t.Helper()
	m, err := ParseYAML(text)
	if err != nil {
		t.Fatalf("ParseYAML: %v", err)
	}
	return m
}

func violationsOf(r *Report, check string) []Violation {
	var out []Violation
	for _, v := range r.Violations() {
		if v.Check == check {
			out = append(out, v)
		}
	}
	return out
}

func TestUnsoundWindowDetected(t *testing.T) {
	m := mustParse(t, `
name: unsound-window
relation: rules
sender-local: true
window: 2
rules:
  - match: stride
    from: 3
    reach: 4
`)
	r := Run(m)
	if r.OK() {
		t.Fatalf("unsound-window verified sound:\n%s", r.Summary())
	}
	ws := violationsOf(r, "windowed")
	if len(ws) != 1 {
		t.Fatalf("want 1 windowed violation, got %v", r.Violations())
	}
	// The enumeration-order-minimal witness is the first in-behaviour pair
	// beyond the declared window: p1:1 ≺ p1:4 at distance 3.
	if want := "p1:1 ≺ p1:4 at distance 3 exceeds window 2"; ws[0].Witness != want {
		t.Errorf("windowed witness = %q, want %q", ws[0].Witness, want)
	}
	cs := violationsOf(r, "confluence")
	if len(cs) != 1 {
		t.Fatalf("want 1 confluence divergence, got %v", r.Violations())
	}
	// The minimized arrival witness must be a genuine divergence of minimal
	// length: a single victim plus the single message whose indexed purge
	// misses it — 2 arrivals.
	if n := strings.Count(cs[0].Witness, ":"); n < 2 {
		t.Errorf("confluence witness %q has no arrivals", cs[0].Witness)
	}
	if got := arrivalCount(cs[0].Witness); got != 2 {
		t.Errorf("confluence witness not minimal: %d arrivals in %q", got, cs[0].Witness)
	}
}

// arrivalCount counts the messages in the leading "[...]" arrival list of a
// confluence witness.
func arrivalCount(witness string) int {
	open := strings.Index(witness, "[")
	close := strings.Index(witness, "]")
	if open < 0 || close < open {
		return -1
	}
	return len(strings.Fields(witness[open+1 : close]))
}

func TestUnsoundCrossDetected(t *testing.T) {
	m := mustParse(t, `
name: unsound-cross
relation: rules
sender-local: true
rules:
  - match: cross-sender
    reach: 2
`)
	r := Run(m)
	if r.OK() {
		t.Fatalf("unsound-cross verified sound:\n%s", r.Summary())
	}
	sl := violationsOf(r, "sender-local")
	if len(sl) != 1 || !strings.Contains(sl[0].Witness, "crosses senders") {
		t.Fatalf("want 1 crosses-senders violation, got %v", r.Violations())
	}
	if len(violationsOf(r, "confluence")) != 1 {
		t.Fatalf("want indexed-vs-scan divergence, got %v", r.Violations())
	}
}

func TestSymmetricViolatesAntisymmetry(t *testing.T) {
	m := mustParse(t, `
relation: rules
rules:
  - match: symmetric
    reach: 2
`)
	r := Run(m)
	vs := violationsOf(r, "antisymmetry")
	if len(vs) != 1 {
		t.Fatalf("want antisymmetry violation, got %v", r.Violations())
	}
}

func TestSelfViolatesIrreflexivity(t *testing.T) {
	m := mustParse(t, `
relation: rules
rules:
  - match: self
`)
	r := Run(m)
	vs := violationsOf(r, "irreflexivity")
	if len(vs) != 1 {
		t.Fatalf("want irreflexivity violation, got %v", r.Violations())
	}
}

func TestNonTransitiveClaimDetected(t *testing.T) {
	// stride[1,2] is not transitive (1≺2≺4 but 1⊀4 needs delta 3) — claiming
	// transitivity must fail with a chain witness.
	m := mustParse(t, `
relation: rules
transitive: true
rules:
  - match: stride
    reach: 2
`)
	r := Run(m)
	vs := violationsOf(r, "transitivity")
	if len(vs) != 1 || !strings.Contains(vs[0].Witness, "⊀") {
		t.Fatalf("want transitivity violation with ⊀ witness, got %v", r.Violations())
	}
}

// TestSoundRulesModel: a windowed stride whose declaration matches its
// behaviour verifies sound end to end. The reach spans the whole stream
// (depth 6), so the relation is genuinely transitive — a shorter stride
// would not be (1≺2≺5 without 1≺5).
func TestSoundRulesModel(t *testing.T) {
	m := mustParse(t, `
name: honest-stride
relation: rules
sender-local: true
window: 6
transitive: true
rules:
  - match: stride
    reach: 6
`)
	r := Run(m)
	if !r.OK() {
		t.Fatalf("honest model unsound:\n%s", r.Summary())
	}
}

// ---- YAML parser -----------------------------------------------------------

func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"missing-relation", "name: x\n", "missing required key"},
		{"unknown-key", "relation: empty\nbogus: 1\n", `unknown key "bogus"`},
		{"duplicate-key", "relation: empty\nrelation: tagging\n", "duplicate key"},
		{"bad-bool", "relation: empty\ntransitive: maybe\n", "want true or false"},
		{"bad-int", "relation: empty\ndepth: -3\n", "non-negative integer"},
		{"rules-without-relation-rules", "relation: empty\nrules:\n  - match: stride\n", "only valid with relation: rules"},
		{"rules-empty", "relation: rules\n", "non-empty rules section"},
		{"rule-unknown-match", "relation: rules\nrules:\n  - match: wat\n", "unknown rule match"},
		{"rule-unknown-key", "relation: rules\nrules:\n  - match: stride\n    stride: 2\n", `unknown key "stride"`},
		{"rule-from-nonstride", "relation: rules\nrules:\n  - match: cross-sender\n    from: 2\n", "only valid for stride"},
		{"rule-from-beyond-reach", "relation: rules\nrules:\n  - match: stride\n    reach: 2\n    from: 3\n", "positive integer ≤ reach"},
		{"window-without-senderlocal", "relation: rules\nwindow: 2\nrules:\n  - match: stride\n", "window declared without sender-local"},
		{"value-missing", "relation:\n", "no value"},
		{"not-kv", "relation: empty\njust words\n", "expected key: value"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseYAML(tc.text)
			if err == nil {
				t.Fatalf("ParseYAML accepted %q", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseYAMLDefaults(t *testing.T) {
	m := mustParse(t, "relation: k-enumeration\n")
	if m.Name != "k-enumeration" {
		t.Errorf("Name = %q, want relation name fallback", m.Name)
	}
	// Declarations default to the relation's own capabilities.
	caps := obsolete.CapsOf(obsolete.KEnumeration{K: DefaultDomain.K})
	if m.SenderLocal != caps.SenderLocal || m.Window != caps.Window {
		t.Errorf("declarations (%v,%d) differ from relation's own (%v,%d)",
			m.SenderLocal, m.Window, caps.SenderLocal, caps.Window)
	}
	if !m.Transitive || m.TransWindow != DefaultDomain.K {
		t.Errorf("k-enumeration should claim transitivity within its window")
	}
}

func TestParseYAMLOverrides(t *testing.T) {
	// A spec may weaken a built-in's declarations to probe what-ifs.
	m := mustParse(t, "relation: k-enumeration\nsender-local: false\nwindow: 0\ntransitive: false\n")
	if m.SenderLocal || m.Window != 0 || m.Transitive {
		t.Errorf("overrides not applied: %+v", m)
	}
}

// ---- Interleaving enumeration ----------------------------------------------

func TestCountInterleavings(t *testing.T) {
	mk := func(depths ...int) []Stream {
		var out []Stream
		for i, d := range depths {
			s := Stream{Sender: senderPID(i)}
			for j := 1; j <= d; j++ {
				s.Msgs = append(s.Msgs, obsolete.Msg{Sender: s.Sender, Seq: seq(j)})
			}
			out = append(out, s)
		}
		return out
	}
	cases := []struct {
		depths []int
		want   uint64
	}{
		{[]int{}, 1},
		{[]int{3}, 1},
		{[]int{1, 1}, 2},
		{[]int{2, 2}, 6},
		{[]int{6, 6}, 924},     // C(12,6)
		{[]int{3, 3, 3}, 1680}, // 9!/(3!3!3!)
	}
	for _, tc := range cases {
		got, exceeded := countInterleavings(mk(tc.depths...), 1_000_000)
		if exceeded || got != tc.want {
			t.Errorf("countInterleavings(%v) = %d (exceeded=%v), want %d", tc.depths, got, exceeded, tc.want)
		}
	}
	if got, exceeded := countInterleavings(mk(20, 20), 2000); !exceeded || got != 2001 {
		t.Errorf("cap: got (%d,%v), want (2001,true)", got, exceeded)
	}
}

func TestEnumerateVisitsAllFIFO(t *testing.T) {
	streams := []Stream{
		{Sender: senderPID(0), Msgs: []obsolete.Msg{
			{Sender: senderPID(0), Seq: 1}, {Sender: senderPID(0), Seq: 2}}},
		{Sender: senderPID(1), Msgs: []obsolete.Msg{
			{Sender: senderPID(1), Seq: 1}, {Sender: senderPID(1), Seq: 2}}},
	}
	seen := map[string]bool{}
	visited, exhaustive := forEachInterleaving(streams, 100, func(arr []obsolete.Msg) bool {
		last := map[string]uint64{}
		for _, m := range arr {
			if uint64(m.Seq) <= last[string(m.Sender)] {
				t.Fatalf("FIFO violated in %s", msgsStr(arr))
			}
			last[string(m.Sender)] = uint64(m.Seq)
		}
		seen[msgsStr(arr)] = true
		return true
	})
	if !exhaustive || visited != 6 || len(seen) != 6 {
		t.Fatalf("visited %d (exhaustive=%v), distinct %d; want 6 exhaustive distinct", visited, exhaustive, len(seen))
	}
}

func TestSampledEnumerationIsFIFOAndBounded(t *testing.T) {
	var streams []Stream
	for i := 0; i < 3; i++ {
		s := Stream{Sender: senderPID(i)}
		for j := 1; j <= 8; j++ {
			s.Msgs = append(s.Msgs, obsolete.Msg{Sender: s.Sender, Seq: seq(j)})
		}
		streams = append(streams, s)
	}
	visited, exhaustive := forEachInterleaving(streams, 50, func(arr []obsolete.Msg) bool {
		if len(arr) != 24 {
			t.Fatalf("interleaving has %d messages, want 24", len(arr))
		}
		last := map[string]uint64{}
		for _, m := range arr {
			if uint64(m.Seq) <= last[string(m.Sender)] {
				t.Fatalf("FIFO violated in sample")
			}
			last[string(m.Sender)] = uint64(m.Seq)
		}
		return true
	})
	if exhaustive || visited != 50 {
		t.Fatalf("visited %d (exhaustive=%v), want 50 sampled", visited, exhaustive)
	}
}

// ---- Witness minimization --------------------------------------------------

func TestMinimizeFixpoint(t *testing.T) {
	// Predicate: sequence contains both p1:1 and p1:4 in that relative
	// order (the shape of a real divergence witness).
	has := func(arr []obsolete.Msg) bool {
		i1, i4 := -1, -1
		for i, m := range arr {
			if m.Sender == senderPID(0) && m.Seq == 1 {
				i1 = i
			}
			if m.Sender == senderPID(0) && m.Seq == 4 {
				i4 = i
			}
		}
		return i1 >= 0 && i4 > i1
	}
	var arr []obsolete.Msg
	for i := 1; i <= 6; i++ {
		arr = append(arr, obsolete.Msg{Sender: senderPID(0), Seq: seq(i)})
		arr = append(arr, obsolete.Msg{Sender: senderPID(1), Seq: seq(i)})
	}
	w := minimize(arr, has)
	if len(w) != 2 || !has(w) {
		t.Fatalf("minimize left %s, want exactly [p1:1 p1:4]", msgsStr(w))
	}
}

// ---- Report rendering ------------------------------------------------------

func TestReportQuietShowsOnlyFailures(t *testing.T) {
	m := mustParse(t, `
relation: rules
sender-local: true
rules:
  - match: cross-sender
    reach: 2
`)
	r := Run(m)
	var b strings.Builder
	r.Format(&b, true)
	out := b.String()
	if strings.Contains(out, "PASS") {
		t.Errorf("quiet output contains PASS lines:\n%s", out)
	}
	if !strings.Contains(out, "VIOLATION: sender-local:") {
		t.Errorf("quiet output missing violation:\n%s", out)
	}
	if !strings.Contains(out, "UNSOUND") {
		t.Errorf("quiet output missing verdict:\n%s", out)
	}
}

func TestReportSoundVerdict(t *testing.T) {
	m, err := Builtin("empty", Domain{})
	if err != nil {
		t.Fatal(err)
	}
	r := Run(m)
	var b strings.Builder
	r.Format(&b, false)
	if !strings.Contains(b.String(), "Result: SOUND") {
		t.Errorf("full report missing SOUND verdict:\n%s", b.String())
	}
}
