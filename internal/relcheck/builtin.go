package relcheck

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Domain bounds the sampled message space of a built-in encoding: how many
// senders, how deep each sender's stream is, and — for tagging — how many
// distinct item tags the annotations draw from.
type Domain struct {
	Senders int
	Depth   int
	Tags    int
	// K parameterises the encoding itself: the k of k-enumeration, the
	// tracker window of enumeration. Unused by empty and tagging.
	K int
}

// DefaultDomain is the domain CI exercises the built-in encodings over:
// two senders of six messages cover every pair class (same/cross sender,
// inside/at/beyond the window) while C(12,6) interleavings stay
// exhaustively enumerable. Two tags keep same-tag chains of length three
// inside the domain, so tagging's transitivity claim is checked on real
// chains, not vacuously.
var DefaultDomain = Domain{Senders: 2, Depth: 6, Tags: 2, K: 4}

func (d Domain) withDefaults() Domain {
	if d.Senders <= 0 {
		d.Senders = DefaultDomain.Senders
	}
	if d.Depth <= 0 {
		d.Depth = DefaultDomain.Depth
	}
	if d.Tags <= 0 {
		d.Tags = DefaultDomain.Tags
	}
	if d.K <= 0 {
		d.K = DefaultDomain.K
	}
	return d
}

// BuiltinNames lists the registered built-in encodings in report order.
// "k-enumeration" is the bitmap encoding the paper evaluates (kenum.go +
// bitmap.go); its Bitmap annotation type is not itself a relation and so
// carries no capabilities of its own — see the audit note in bitmap.go.
func BuiltinNames() []string {
	return []string{"empty", "tagging", "enumeration", "k-enumeration"}
}

// Builtin returns the model of a named built-in encoding sampled over d.
// The streams are generated with the encoding's own sender-side tracker so
// annotations carry exactly the closure a real application would ship:
// each sender's stream cycles through obsoleting nothing, the immediate
// predecessor, the predecessor at the window edge, and a two-predecessor
// batch, which exercises every annotation shape the encoding can emit.
func Builtin(name string, d Domain) (*Model, error) {
	d = d.withDefaults()
	m := &Model{Name: name, Source: "builtin", Transitive: true}
	switch name {
	case "empty":
		m.Rel = obsolete.Empty{}
	case "tagging":
		m.Rel = obsolete.Tagging{}
	case "enumeration":
		m.Rel = obsolete.Enumeration{}
		// The tracker truncates closure at its window even though the
		// relation declares no Windowed capability.
		m.TransWindow = d.K
	case "k-enumeration", "bitmap":
		m.Rel = obsolete.KEnumeration{K: d.K}
		m.TransWindow = d.K
	default:
		return nil, fmt.Errorf("relcheck: unknown built-in encoding %q (have %v)", name, BuiltinNames())
	}
	caps := obsolete.CapsOf(m.Rel)
	m.SenderLocal = caps.SenderLocal
	m.Window = caps.Window

	for s := 0; s < d.Senders; s++ {
		st := Stream{Sender: senderPID(s)}
		var tr obsolete.Tracker
		switch name {
		case "enumeration":
			tr = obsolete.NewEnumTracker(d.K)
		case "k-enumeration", "bitmap":
			tr = obsolete.NewKTracker(d.K)
		}
		for i := 1; i <= d.Depth; i++ {
			msg := obsolete.Msg{Sender: st.Sender}
			switch {
			case tr != nil:
				msg.Seq, msg.Annot = tr.Next(trackerDirects(i, d.K)...)
			case name == "tagging":
				msg.Seq = seq(i)
				if i%5 != 0 { // every fifth message is untagged (reliable)
					msg.Annot = obsolete.TagAnnot(uint32(i % d.Tags))
				}
			default: // empty
				msg.Seq = seq(i)
			}
			st.Msgs = append(st.Msgs, msg)
		}
		m.Streams = append(m.Streams, st)
	}
	sort.Slice(m.Streams, func(i, j int) bool { return m.Streams[i].Sender < m.Streams[j].Sender })
	return m, nil
}

// trackerDirects picks the direct predecessors message i (1-based)
// obsoletes, cycling through the annotation shapes of §4.1: reliable,
// single immediate update, window-edge reach, multi-item batch commit.
func trackerDirects(i, k int) []ident.Seq {
	switch i % 4 {
	case 1:
		return nil
	case 2:
		return directs(i - 1)
	case 3:
		edge := i - k
		if edge < 1 {
			edge = 1
		}
		return directs(edge)
	default:
		return directs(i-1, i-2)
	}
}

// directs converts 1-based message indexes to sequence numbers, dropping
// indexes before the start of the stream.
func directs(is ...int) []ident.Seq {
	out := make([]ident.Seq, 0, len(is))
	for _, i := range is {
		if i >= 1 {
			out = append(out, seq(i))
		}
	}
	return out
}

func seq(i int) ident.Seq { return ident.Seq(i) }
