// Package relcheck is svs-check: an exhaustive static verifier for
// application-supplied obsolescence relations, in the mould of nccheck.
//
// SVS's safety guarantees (§3 of the paper) rest entirely on the
// obsolescence relation being well-behaved — a strict partial order whose
// purge decisions commute with delivery — and on the capability
// declarations (obsolete.SenderLocal, obsolete.Windowed) being truthful:
// an unsound declaration silently corrupts the O(window) purge index in
// internal/queue. relcheck takes a finite model of an application's
// message space and relation — a YAML spec (ParseYAML) or a registered
// in-process relation sampled over a bounded sender/seq/annotation domain
// (Builtin) — and exhaustively checks three families:
//
//  1. Laws: the strict-partial-order laws of §3.2 — irreflexivity,
//     antisymmetry, and transitivity where the encoding claims it
//     (within its window for the enumeration-style encodings).
//  2. Confluence: for every interleaving of the modelled per-sender
//     streams (FIFO within each sender, the protocol invariant),
//     purge-then-deliver yields the same delivery sequence under the
//     indexed purge of internal/queue as under the linear-scan
//     reference, and every purged message is covered by a delivered one
//     under the reflexive-transitive closure (internal/check.Closure) —
//     purging commutes with delivery.
//  3. Capabilities: a declared SenderLocal relation never relates
//     messages across senders or against sequence order, and a declared
//     Windowed(k) relation never relates messages more than k sequence
//     numbers apart — falsified by exhaustive counterexample search.
//
// Violations carry a minimal witness, printed nccheck-style
// ("VIOLATION: sender-local: p1:1 ≺ p2:2 crosses senders p1→p2"):
// pair/triple witnesses are minimal by enumeration order, interleaving
// witnesses are shrunk by greedy delta-minimisation.
package relcheck

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Model is the finite universe svs-check verifies: a relation plus the
// bounded per-sender message streams it is exercised over, and the claims
// (capabilities, transitivity) under verification.
type Model struct {
	// Name labels the model in reports.
	Name string
	// Source records where the model came from (a YAML path or "builtin").
	Source string
	// Rel is the relation under test. For YAML rule models this is a
	// synthetic relation declaring exactly the capabilities the spec
	// declares, so internal/queue builds the same purge index it would
	// for a real application relation making those declarations.
	Rel obsolete.Relation

	// Streams holds the per-sender, seq-ordered message streams of the
	// universe, sorted by sender for deterministic enumeration.
	Streams []Stream

	// SenderLocal and Window are the capability declarations under
	// verification; they default to what Rel itself declares
	// (obsolete.CapsOf). Window 0 means Windowed is not declared.
	SenderLocal bool
	Window      int

	// Transitive claims the relation is transitively closed — within
	// TransWindow sequence numbers when TransWindow > 0 (enumeration-style
	// encodings truncate closure at their window), fully otherwise.
	Transitive  bool
	TransWindow int

	// MaxInterleavings bounds the confluence enumeration; beyond it the
	// checker deterministically samples (and says so in the report).
	// 0 means DefaultMaxInterleavings.
	MaxInterleavings int
}

// Stream is one sender's seq-ordered message stream.
type Stream struct {
	Sender ident.PID
	Msgs   []obsolete.Msg
}

// DefaultMaxInterleavings bounds the exhaustive confluence enumeration.
// C(12,6) = 924 interleavings of two 6-message streams stay exhaustive;
// three senders fall back to sampling.
const DefaultMaxInterleavings = 2000

// Msgs returns the universe: every stream's messages, sorted by
// (sender, seq) so enumeration-order witnesses are minimal.
func (m *Model) Msgs() []obsolete.Msg {
	var out []obsolete.Msg
	for _, s := range m.Streams {
		out = append(out, s.Msgs...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sender != out[j].Sender {
			return out[i].Sender < out[j].Sender
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// senderPID names the i-th (0-based) modelled sender: p1, p2, ...
func senderPID(i int) ident.PID { return ident.PID(fmt.Sprintf("p%d", i+1)) }

// msgStr renders a message id witness-style: "p1:3".
func msgStr(m obsolete.Msg) string { return fmt.Sprintf("%s:%d", m.Sender, m.Seq) }

// msgsStr renders an arrival sequence witness-style: "[p1:1 p2:1 p1:2]".
func msgsStr(ms []obsolete.Msg) string {
	s := "["
	for i, m := range ms {
		if i > 0 {
			s += " "
		}
		s += msgStr(m)
	}
	return s + "]"
}

// idsStr renders a delivery sequence witness-style.
func idsStr(ids []obsolete.MsgID) string {
	s := "["
	for i, id := range ids {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", id.Sender, id.Seq)
	}
	return s + "]"
}
