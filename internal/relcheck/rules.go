package relcheck

import (
	"fmt"
	"strings"

	"repro/internal/obsolete"
)

// Rule relations. A YAML model with `relation: rules` describes its
// relation as the union of small rule predicates, enough to model the
// shape of an application relation — and, deliberately, to model unsound
// ones: a rule set whose reach exceeds the declared window, or that
// crosses senders under a sender-local declaration, reproduces exactly the
// failure a bad third-party relation would smuggle past the purge index.
type rule interface {
	// obsoletes reports old ≺ new under this rule alone.
	obsoletes(old, new obsolete.Msg) bool
	// String renders the rule for the report header.
	String() string
}

// strideRule relates same-sender messages between from and reach apart:
// old ≺ new iff same sender and from ≤ new.Seq − old.Seq ≤ reach. A from
// above 1 models a batch-commit shape that obsoletes only far-back
// messages — the shape that exposes a too-small declared window in the
// confluence check, because intermediate arrivals never purge the victim
// incrementally.
type strideRule struct{ from, reach int }

func (r strideRule) obsoletes(old, new obsolete.Msg) bool {
	return old.Sender == new.Sender && old.Seq < new.Seq &&
		uint64(new.Seq-old.Seq) >= uint64(r.from) &&
		uint64(new.Seq-old.Seq) <= uint64(r.reach)
}
func (r strideRule) String() string {
	if r.from > 1 {
		return fmt.Sprintf("stride[%d,%d]", r.from, r.reach)
	}
	return fmt.Sprintf("stride≤%d", r.reach)
}

// tagRule is the tagging shape: same sender, same 4-byte tag, earlier seq.
type tagRule struct{}

func (tagRule) obsoletes(old, new obsolete.Msg) bool {
	return obsolete.Tagging{}.Obsoletes(old, new)
}
func (tagRule) String() string { return "tag" }

// crossSenderRule relates messages of different senders within reach —
// unsound under any SenderLocal declaration.
type crossSenderRule struct{ reach int }

func (r crossSenderRule) obsoletes(old, new obsolete.Msg) bool {
	return old.Sender != new.Sender && old.Seq < new.Seq &&
		uint64(new.Seq-old.Seq) <= uint64(r.reach)
}
func (r crossSenderRule) String() string { return fmt.Sprintf("cross-sender≤%d", r.reach) }

// symmetricRule relates same-sender messages within reach in both
// directions — violates antisymmetry.
type symmetricRule struct{ reach int }

func (r symmetricRule) obsoletes(old, new obsolete.Msg) bool {
	if old.Sender != new.Sender || old.Seq == new.Seq {
		return false
	}
	d := uint64(new.Seq - old.Seq)
	if new.Seq < old.Seq {
		d = uint64(old.Seq - new.Seq)
	}
	return d <= uint64(r.reach)
}
func (r symmetricRule) String() string { return fmt.Sprintf("symmetric≤%d", r.reach) }

// selfRule relates every message to itself — violates irreflexivity.
type selfRule struct{}

func (selfRule) obsoletes(old, new obsolete.Msg) bool {
	return old.Sender == new.Sender && old.Seq == new.Seq
}
func (selfRule) String() string { return "self" }

// ruleRelation is the union of its rules. It implements the capability
// interfaces according to the model's *declarations*, not its behaviour —
// that is the point: internal/queue must build the same purge index it
// would for a real relation making those declarations, so an unsound
// declaration shows up as an indexed-vs-scan divergence.
type ruleRelation struct {
	name        string
	rules       []rule
	senderLocal bool
	window      int
}

var (
	_ obsolete.SenderLocal = (*ruleRelation)(nil)
	_ obsolete.Windowed    = (*ruleRelation)(nil)
)

func (r *ruleRelation) Name() string {
	parts := make([]string, len(r.rules))
	for i, ru := range r.rules {
		parts[i] = ru.String()
	}
	return fmt.Sprintf("rules(%s)", strings.Join(parts, " ∪ "))
}

func (r *ruleRelation) Obsoletes(old, new obsolete.Msg) bool {
	for _, ru := range r.rules {
		if ru.obsoletes(old, new) {
			return true
		}
	}
	return false
}

func (r *ruleRelation) SenderLocal() bool { return r.senderLocal }
func (r *ruleRelation) Window() int       { return r.window }

// usesTags reports whether any rule reads tag annotations, so stream
// synthesis knows to attach them.
func (r *ruleRelation) usesTags() bool {
	for _, ru := range r.rules {
		if _, ok := ru.(tagRule); ok {
			return true
		}
	}
	return false
}

// ruleStreams synthesises the universe of a rules model: senders p1..pS
// with seqs 1..depth, tagged round-robin over tags when the relation
// reads tags.
func ruleStreams(rel *ruleRelation, senders, depth, tags int) []Stream {
	var out []Stream
	for s := 0; s < senders; s++ {
		st := Stream{Sender: senderPID(s)}
		for i := 1; i <= depth; i++ {
			m := obsolete.Msg{Sender: st.Sender, Seq: seq(i)}
			if rel.usesTags() {
				m.Annot = obsolete.TagAnnot(uint32(i % tags))
			}
			st.Msgs = append(st.Msgs, m)
		}
		out = append(out, st)
	}
	return out
}
