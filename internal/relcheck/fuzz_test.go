package relcheck

import (
	"testing"

	"repro/internal/obsolete"
)

// FuzzRelationLaws drives randomized FIFO streams through each built-in
// encoding and asserts the properties svs-check proves over its fixed
// domain, on arbitrary annotation shapes and arrival orders:
//
//   - irreflexivity and antisymmetry over the generated universe, and
//   - indexed purge ≡ linear-scan purge for the generated arrival order
//     (the confluence core: the capability declarations never corrupt
//     internal/queue's purge index).
//
// Each input byte appends one message: the low bit picks the sender, the
// next two bits pick the annotation shape (nothing, immediate
// predecessor, window-edge reach, two-message batch — the shapes of
// §4.1), the rest seed the tag. The byte order doubles as the arrival
// order, so the fuzzer explores interleavings the fixed svs-check domain
// does not.
func FuzzRelationLaws(f *testing.F) {
	// Corpus seeds mirror the witness shapes svs-check minimization
	// produces (see examples/unsound-*.yaml): a window-edge purge pair
	// like the "p1:1 ≺ p1:4" windowed witness, a strict cross-sender
	// alternation like the "p1:1 ≺ p2:2" sender-local witness, and a
	// batch-heavy single-sender run.
	f.Add(uint8(3), uint8(4), []byte{0x00, 0x00, 0x00, 0x04}) // p1 run ending in a window-edge reach
	f.Add(uint8(3), uint8(2), []byte{0x00, 0x01, 0x00, 0x01}) // cross-sender alternation
	f.Add(uint8(2), uint8(4), []byte{0x06, 0x06, 0x06, 0x06}) // batch annotations back to back
	f.Add(uint8(1), uint8(3), []byte{0x10, 0x31, 0x52, 0x73}) // tagging, varied tags
	f.Add(uint8(0), uint8(1), []byte{0xff, 0x00})             // empty relation, both senders

	f.Fuzz(func(t *testing.T, encSel, kSel uint8, data []byte) {
		name := BuiltinNames()[int(encSel)%len(BuiltinNames())]
		k := 1 + int(kSel)%8
		rel, arrivals := fuzzStreams(name, k, data)
		if len(arrivals) == 0 {
			return
		}

		for i, a := range arrivals {
			if rel.Obsoletes(a, a) {
				t.Fatalf("%s: %s ≺ itself", name, msgStr(a))
			}
			for _, b := range arrivals[i+1:] {
				if a.ID() == b.ID() {
					continue
				}
				if rel.Obsoletes(a, b) && rel.Obsoletes(b, a) {
					t.Fatalf("%s: antisymmetry: %s ⇄ %s", name, msgStr(a), msgStr(b))
				}
			}
		}

		got := runExecution(rel, arrivals)
		want := runExecution(scanRelation(rel), arrivals)
		if !sameIDs(got, want) {
			t.Fatalf("%s: indexed %s ≠ scan %s for arrivals %s",
				name, idsStr(got), idsStr(want), msgsStr(arrivals))
		}
	})
}

// fuzzStreams decodes fuzz input into per-sender FIFO streams of the named
// encoding, returning the relation and the arrival order (= byte order).
func fuzzStreams(name string, k int, data []byte) (obsolete.Relation, []obsolete.Msg) {
	const maxMsgs = 48
	if len(data) > maxMsgs {
		data = data[:maxMsgs]
	}
	var rel obsolete.Relation
	switch name {
	case "empty":
		rel = obsolete.Empty{}
	case "tagging":
		rel = obsolete.Tagging{}
	case "enumeration":
		rel = obsolete.Enumeration{}
	default:
		rel = obsolete.KEnumeration{K: k}
	}

	type sender struct {
		tr   obsolete.Tracker
		next int
	}
	senders := make([]*sender, 2)
	for i := range senders {
		s := &sender{next: 1}
		switch name {
		case "enumeration":
			s.tr = obsolete.NewEnumTracker(k)
		case "k-enumeration":
			s.tr = obsolete.NewKTracker(k)
		}
		senders[i] = s
	}

	var arrivals []obsolete.Msg
	for _, b := range data {
		si := int(b & 1)
		s := senders[si]
		m := obsolete.Msg{Sender: senderPID(si)}
		switch {
		case s.tr != nil:
			i := s.next
			var direct []int
			switch (b >> 1) & 3 {
			case 1:
				direct = []int{i - 1}
			case 2:
				edge := i - k
				if edge < 1 {
					edge = 1
				}
				direct = []int{edge}
			case 3:
				direct = []int{i - 1, i - 2}
			}
			m.Seq, m.Annot = s.tr.Next(directs(direct...)...)
		case name == "tagging":
			m.Seq = seq(s.next)
			if b>>1&1 == 0 { // some messages stay untagged (reliable)
				m.Annot = obsolete.TagAnnot(uint32(b >> 2))
			}
		default:
			m.Seq = seq(s.next)
		}
		s.next++
		arrivals = append(arrivals, m)
	}
	return rel, arrivals
}
