package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gamestate"
	"repro/internal/ident"
	"repro/internal/transport"
)

type cluster struct {
	t        *testing.T
	net      *transport.MemNetwork
	pids     ident.PIDs
	replicas map[ident.PID]*Replica
	dets     map[ident.PID]*fd.Manual
	eps      map[ident.PID]*transport.MemEndpoint
}

func newCluster(t *testing.T, n int, tweak func(*Config)) *cluster {
	t.Helper()
	c := &cluster{
		t:        t,
		net:      transport.NewMemNetwork(),
		replicas: make(map[ident.PID]*Replica),
		dets:     make(map[ident.PID]*fd.Manual),
		eps:      make(map[ident.PID]*transport.MemEndpoint),
	}
	var pids []ident.PID
	for i := 0; i < n; i++ {
		pids = append(pids, ident.PID(fmt.Sprintf("r%d", i)))
	}
	c.pids = ident.NewPIDs(pids...)
	view := core.View{ID: 1, Members: c.pids}
	for _, p := range c.pids {
		ep, err := c.net.Endpoint(p)
		if err != nil {
			t.Fatal(err)
		}
		det := fd.NewManual()
		cfg := Config{
			Self:        p,
			Endpoint:    ep,
			Detector:    det,
			InitialView: view,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.eps[p] = ep
		c.dets[p] = det
		c.replicas[p] = r
	}
	for _, p := range c.pids {
		if err := c.replicas[p].Start(); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, p := range c.pids {
			c.replicas[p].Stop()
			c.dets[p].Stop()
			c.eps[p].Close()
		}
	})
	return c
}

// waitState blocks until every replica in who satisfies check and all
// their digests agree. Note that SVS legitimately lets replicas (including
// the primary) skip obsolete updates, so convergence is asserted on state,
// never on applied-update counts.
func (c *cluster) waitState(who ident.PIDs, check func(*Replica) bool) {
	c.t.Helper()
	deadline := time.After(15 * time.Second)
	for {
		ok := true
		var first uint64
		for i, p := range who {
			r := c.replicas[p]
			if check != nil && !check(r) {
				ok = false
				break
			}
			d := r.Digest()
			if i == 0 {
				first = d
			} else if d != first {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		select {
		case <-deadline:
			for _, p := range who {
				r := c.replicas[p]
				c.t.Logf("%s: digest %x applied %d stats %+v", p, r.Digest(), r.Applied(), r.Engine().Stats())
			}
			c.t.Fatal("replicas never converged")
		case <-time.After(3 * time.Millisecond):
		}
	}
}

// itemStrength builds a check asserting the strength of one item.
func itemStrength(item uint32, want int32) func(*Replica) bool {
	return func(r *Replica) bool {
		it, ok := r.State().Get(item)
		return ok && it.Strength == want
	}
}

func TestPrimaryElectionDeterministic(t *testing.T) {
	c := newCluster(t, 3, nil)
	want := c.pids[0]
	for _, p := range c.pids {
		if got := c.replicas[p].Primary(); got != want {
			t.Fatalf("%s sees primary %s, want %s", p, got, want)
		}
	}
	if !c.replicas[want].IsPrimary() {
		t.Fatal("primary does not know it is primary")
	}
	if c.replicas[c.pids[1]].IsPrimary() {
		t.Fatal("backup believes it is primary")
	}
}

func TestExecuteReplicatesState(t *testing.T) {
	c := newCluster(t, 3, nil)
	primary := c.replicas[c.pids[0]]
	ctx := context.Background()

	if err := primary.Execute(ctx, gamestate.Update{Op: gamestate.OpCreate, Item: 1, Pos: gamestate.Vec3{1, 2, 3}, Strength: 100}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := primary.Execute(ctx, gamestate.Update{
			Op: gamestate.OpUpdate, Item: 1,
			Pos: gamestate.Vec3{float32(i), 0, 0}, Strength: int32(100 - i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitState(c.pids, itemStrength(1, 91))

	st := c.replicas[c.pids[2]].State()
	it, ok := st.Get(1)
	if !ok || it.Pos[0] != 9 || it.Strength != 91 {
		t.Fatalf("backup state: %+v, %v", it, ok)
	}
}

func TestExecuteFromBackupFails(t *testing.T) {
	c := newCluster(t, 2, nil)
	err := c.replicas[c.pids[1]].Execute(context.Background(),
		gamestate.Update{Op: gamestate.OpCreate, Item: 1})
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("err = %v, want ErrNotPrimary", err)
	}
}

func TestCompositeRequestIsAtomic(t *testing.T) {
	c := newCluster(t, 3, nil)
	primary := c.replicas[c.pids[0]]
	ctx := context.Background()

	// A composite transfer: both items change together.
	if err := primary.Execute(ctx,
		gamestate.Update{Op: gamestate.OpCreate, Item: 1, Strength: 50},
		gamestate.Update{Op: gamestate.OpCreate, Item: 2, Strength: 50},
	); err != nil {
		t.Fatal(err)
	}
	if err := primary.Execute(ctx,
		gamestate.Update{Op: gamestate.OpUpdate, Item: 1, Strength: 20},
		gamestate.Update{Op: gamestate.OpUpdate, Item: 2, Strength: 80},
	); err != nil {
		t.Fatal(err)
	}
	c.waitState(c.pids, itemStrength(1, 20))
	for _, p := range c.pids {
		st := c.replicas[p].State()
		a, _ := st.Get(1)
		b, _ := st.Get(2)
		if a.Strength+b.Strength != 100 {
			t.Fatalf("%s: atomicity broken: %d + %d", p, a.Strength, b.Strength)
		}
	}
}

func TestFailoverPreservesState(t *testing.T) {
	c := newCluster(t, 3, nil)
	primary := c.replicas[c.pids[0]]
	ctx := context.Background()

	for i := 0; i < 20; i++ {
		if err := primary.Execute(ctx, gamestate.Update{
			Op: gamestate.OpUpdate, Item: uint32(i%4 + 1), Strength: int32(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitState(c.pids, itemStrength(4, 19))
	before := c.replicas[c.pids[1]].Digest()

	// Crash the primary; survivors suspect and evict it.
	c.net.Crash(c.pids[0])
	survivors := c.pids.Remove(c.pids[0])
	for _, p := range survivors {
		c.dets[p].Suspect(c.pids[0])
	}
	if err := c.replicas[survivors[0]].RequestViewChange(c.pids[0]); err != nil {
		t.Fatal(err)
	}

	// Wait for the new view and the new primary.
	deadline := time.After(15 * time.Second)
	for {
		v := c.replicas[survivors[0]].View()
		if v.ID >= 2 && !v.Members.Contains(c.pids[0]) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("view change never completed: %v", v)
		case <-time.After(3 * time.Millisecond):
		}
	}
	newPrimary := c.replicas[survivors[0]]
	if got := newPrimary.Primary(); got != survivors[0] {
		t.Fatalf("new primary = %s, want %s", got, survivors[0])
	}
	if newPrimary.Digest() != before {
		t.Fatal("fail-over lost state")
	}

	// The new primary serves writes.
	if err := newPrimary.Execute(ctx, gamestate.Update{Op: gamestate.OpUpdate, Item: 1, Strength: 999}); err != nil {
		t.Fatal(err)
	}
	c.waitState(survivors, itemStrength(1, 999))
	st := c.replicas[survivors[1]].State()
	if it, _ := st.Get(1); it.Strength != 999 {
		t.Fatalf("write after fail-over not replicated: %+v", it)
	}
}

func TestSlowBackupConvergesWithPurging(t *testing.T) {
	c := newCluster(t, 3, func(cfg *Config) {
		cfg.ToDeliverCap = 8
		cfg.OutgoingCap = 8
		cfg.Window = 8
		cfg.K = 64
	})
	primary := c.replicas[c.pids[0]]
	ctx := context.Background()

	// Hammer a small item set; a backup with tiny buffers keeps up only
	// thanks to purging.
	const updates = 400
	for i := 0; i < updates; i++ {
		if err := primary.Execute(ctx, gamestate.Update{
			Op: gamestate.OpUpdate, Item: uint32(i%3 + 1), Strength: int32(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitState(c.pids, itemStrength(uint32((updates-1)%3+1), updates-1))
	var purgedSomewhere bool
	for _, p := range c.pids {
		st := c.replicas[p].Engine().Stats()
		if st.PurgedToDeliver > 0 || st.PurgedOutgoing > 0 {
			purgedSomewhere = true
		}
	}
	if !purgedSomewhere {
		t.Log("warning: no purging observed (consumers kept up); test still validates convergence")
	}
	// All replicas agree on the final value.
	for _, p := range c.pids {
		it, ok := c.replicas[p].State().Get(uint32((updates-1)%3 + 1))
		if !ok || it.Strength != updates-1 {
			t.Fatalf("%s: final value %+v, %v", p, it, ok)
		}
	}
}

func TestExpelledReplicaReports(t *testing.T) {
	c := newCluster(t, 3, nil)
	victim := c.pids[2]
	if err := c.replicas[c.pids[0]].RequestViewChange(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for !c.replicas[victim].Expelled() {
		select {
		case <-deadline:
			t.Fatal("victim never learned of expulsion")
		case <-time.After(3 * time.Millisecond):
		}
	}
	if err := c.replicas[victim].Execute(context.Background(),
		gamestate.Update{Op: gamestate.OpCreate, Item: 1}); err == nil {
		t.Fatal("expelled replica accepted a write")
	}
}

func TestReliableModeStillConverges(t *testing.T) {
	c := newCluster(t, 2, func(cfg *Config) { cfg.Reliable = true })
	primary := c.replicas[c.pids[0]]
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if err := primary.Execute(ctx, gamestate.Update{
			Op: gamestate.OpUpdate, Item: 1, Strength: int32(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.waitState(c.pids, func(r *Replica) bool { return r.Applied() == 30 })
	// Under VS (no purging) every replica applied every update — the
	// waitState check above asserts exactly that.
}
