// Package replica implements the application scenario the paper designs
// SVS for (§4): primary-backup replication of a server whose state is a
// collection of data items. One replica — the primary, chosen
// deterministically from the view membership — executes client requests
// and disseminates state updates to the backups with semantically reliable
// multicast. SVS guarantees that on fail-over every surviving replica
// holds an equivalent state: backups may have skipped obsolete updates,
// never current ones.
//
// Updates are gamestate mutations framed by the batch package: single-item
// updates obsolete the item's previous update, creations/destructions are
// reliable, and composite (multi-item) requests travel as an atomic batch.
package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gamestate"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

// Config assembles a replica.
type Config struct {
	// Self, Endpoint, Detector, InitialView configure the group member.
	Self        ident.PID
	Endpoint    transport.Endpoint
	Detector    fd.Detector
	InitialView core.View
	// Group identifies the replica group's SVS group instance on the
	// (possibly shared) endpoint; zero is fine for single-group use.
	Group ident.GroupID

	// K is the k-enumeration window (default 2×ToDeliverCap, minimum 16).
	K int
	// ToDeliverCap / OutgoingCap / Window bound the protocol buffers; zero
	// values leave them unbounded (see core.Config).
	ToDeliverCap int
	OutgoingCap  int
	Window       int
	// AutoEvict evicts suspected members automatically.
	AutoEvict bool
	// Reliable disables purging (classic VS) — for baseline comparisons.
	Reliable bool
	// StabilityInterval enables reception-frontier gossip (see core).
	// Zero disables it.
	StabilityInterval time.Duration
}

// Replica is one member of the replicated server group.
type Replica struct {
	cfg Config
	eng *core.Engine
	rel obsolete.Relation

	sender *batch.Sender // primary-side framing (driven by Execute)

	mu       sync.Mutex
	state    *gamestate.State
	view     core.View
	expelled bool
	applied  uint64

	recv *batch.Receiver

	viewCb func(core.View)

	loopCtx    context.Context
	loopCancel context.CancelFunc
	loopDone   chan struct{}
}

// Errors returned by Replica.
var (
	ErrNotPrimary = errors.New("replica: not the primary")
	ErrExpelled   = errors.New("replica: expelled from the group")
)

// New assembles a stopped replica; call Start.
func New(cfg Config) (*Replica, error) {
	if cfg.K <= 0 {
		cfg.K = 2 * cfg.ToDeliverCap
	}
	if cfg.K < 16 {
		cfg.K = 16
	}
	var rel obsolete.Relation = obsolete.KEnumeration{K: cfg.K}
	if cfg.Reliable {
		rel = obsolete.Empty{}
	}
	eng, err := core.New(core.Config{
		Self:              cfg.Self,
		Group:             cfg.Group,
		Endpoint:          cfg.Endpoint,
		Detector:          cfg.Detector,
		InitialView:       cfg.InitialView,
		Relation:          rel,
		ToDeliverCap:      cfg.ToDeliverCap,
		OutgoingCap:       cfg.OutgoingCap,
		Window:            cfg.Window,
		AutoEvict:         cfg.AutoEvict,
		StabilityInterval: cfg.StabilityInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("replica: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Replica{
		cfg:        cfg,
		eng:        eng,
		rel:        rel,
		sender:     batch.NewSender(obsolete.NewKTracker(cfg.K)),
		state:      gamestate.New(),
		view:       cfg.InitialView.Clone(),
		recv:       batch.NewReceiver(),
		loopCtx:    ctx,
		loopCancel: cancel,
		loopDone:   make(chan struct{}),
	}, nil
}

// OnViewChange registers a callback invoked (from the delivery goroutine)
// whenever a new view is installed. Must be called before Start.
func (r *Replica) OnViewChange(f func(core.View)) { r.viewCb = f }

// Start launches the group engine and the delivery loop.
func (r *Replica) Start() error {
	if err := r.eng.Start(); err != nil {
		return err
	}
	go r.deliveryLoop()
	return nil
}

// Stop terminates the replica.
func (r *Replica) Stop() {
	r.loopCancel()
	r.eng.Stop()
	<-r.loopDone
}

// Engine exposes the underlying group engine (stats, view changes).
func (r *Replica) Engine() *core.Engine { return r.eng }

// Self returns this replica's identifier.
func (r *Replica) Self() ident.PID { return r.cfg.Self }

// Primary returns the current primary: the first member of the view in
// identifier order. Every replica derives the same answer from the same
// view, which is exactly what view synchrony is for.
func (r *Replica) Primary() ident.PID {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.view.Members) == 0 {
		return ""
	}
	return r.view.Members[0]
}

// IsPrimary reports whether this replica is the primary.
func (r *Replica) IsPrimary() bool { return r.Primary() == r.cfg.Self }

// View returns the current view.
func (r *Replica) View() core.View {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.view.Clone()
}

// Digest returns the deterministic digest of the replica's state.
func (r *Replica) Digest() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Digest()
}

// Applied returns how many updates this replica has applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// State returns a snapshot of the replica state.
func (r *Replica) State() *gamestate.State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state.Clone()
}

// Execute runs one client request on the primary: a set of state updates
// applied atomically. Only the primary may call it. Single-update requests
// go out as self-committing messages; multi-update requests as a batch
// with a commit. The primary's own state changes when the updates are
// delivered back to it, so all replicas apply the same stream.
func (r *Replica) Execute(ctx context.Context, updates ...gamestate.Update) error {
	if !r.IsPrimary() {
		return ErrNotPrimary
	}
	if len(updates) == 0 {
		return nil
	}
	msgs, err := r.frame(updates)
	if err != nil {
		return err
	}
	for _, m := range msgs {
		meta := obsolete.Msg{Sender: r.cfg.Self, Seq: m.Seq, Annot: m.Annot}
		if _, err := r.eng.Multicast(ctx, meta, m.Payload); err != nil {
			return fmt.Errorf("replica: multicast: %w", err)
		}
	}
	return nil
}

// frame converts a request into framed batch messages.
func (r *Replica) frame(updates []gamestate.Update) ([]batch.Msg, error) {
	if len(updates) == 1 {
		return r.frameOne(updates[0])
	}
	msgs := make([]batch.Msg, 0, len(updates)+1)
	if err := r.sender.Begin(); err != nil {
		return nil, err
	}
	for _, u := range updates {
		var m batch.Msg
		var err error
		switch u.Op {
		case gamestate.OpUpdate:
			m, err = r.sender.Member(u.Item, u.Marshal())
		default:
			// Creations and destructions inside a composite request are
			// batched as members too: atomicity matters more than their
			// individual reliability, and members are never purged before
			// their commit (only a later commit covering the same item
			// could, and creates/destroys never become its targets).
			m, err = r.sender.Member(u.Item, u.Marshal())
		}
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
	}
	m, err := r.sender.Commit(nil)
	if err != nil {
		return nil, err
	}
	return append(msgs, m), nil
}

func (r *Replica) frameOne(u gamestate.Update) ([]batch.Msg, error) {
	var m batch.Msg
	var err error
	switch u.Op {
	case gamestate.OpCreate:
		m, err = r.sender.Create(u.Item, u.Marshal())
	case gamestate.OpDestroy:
		m, err = r.sender.Destroy(u.Item, u.Marshal())
	default:
		m, err = r.sender.Single(u.Item, u.Marshal())
	}
	if err != nil {
		return nil, err
	}
	return []batch.Msg{m}, nil
}

// RequestViewChange asks the group to install a new view without leavers
// (or excluding the given processes).
func (r *Replica) RequestViewChange(leave ...ident.PID) error {
	return r.eng.RequestViewChange(leave...)
}

// deliveryLoop applies the delivered update stream to the local state.
func (r *Replica) deliveryLoop() {
	defer close(r.loopDone)
	for {
		del, err := r.eng.Deliver(r.loopCtx)
		if err != nil {
			return
		}
		switch del.Kind {
		case core.DeliverData:
			payloads, err := r.recv.Receive(del.Meta.Sender, del.Payload)
			if err != nil {
				continue // tolerate malformed frames from buggy peers
			}
			r.mu.Lock()
			for _, p := range payloads {
				u, err := gamestate.ParseUpdate(p)
				if err != nil {
					continue
				}
				r.state.Apply(u)
				r.applied++
			}
			r.mu.Unlock()
		case core.DeliverView:
			r.mu.Lock()
			r.view = del.NewView.Clone()
			r.mu.Unlock()
			if r.viewCb != nil {
				r.viewCb(del.NewView)
			}
		case core.DeliverExpelled:
			r.mu.Lock()
			r.expelled = true
			r.view = del.NewView.Clone()
			r.mu.Unlock()
			if r.viewCb != nil {
				r.viewCb(del.NewView)
			}
			return
		}
	}
}

// Expelled reports whether the group removed this replica.
func (r *Replica) Expelled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.expelled
}
