package ident

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPIDsSortsAndDedups(t *testing.T) {
	tests := []struct {
		name string
		in   []PID
		want PIDs
	}{
		{"empty", nil, PIDs{}},
		{"single", []PID{"a"}, PIDs{"a"}},
		{"sorted", []PID{"a", "b", "c"}, PIDs{"a", "b", "c"}},
		{"unsorted", []PID{"c", "a", "b"}, PIDs{"a", "b", "c"}},
		{"dups", []PID{"b", "a", "b", "a"}, PIDs{"a", "b"}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := NewPIDs(tc.in...)
			if !got.Equal(tc.want) {
				t.Fatalf("NewPIDs(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestPIDsContains(t *testing.T) {
	s := NewPIDs("a", "c", "e")
	for _, p := range []PID{"a", "c", "e"} {
		if !s.Contains(p) {
			t.Errorf("Contains(%q) = false, want true", p)
		}
	}
	for _, p := range []PID{"", "b", "d", "f"} {
		if s.Contains(p) {
			t.Errorf("Contains(%q) = true, want false", p)
		}
	}
}

func TestPIDsSetOps(t *testing.T) {
	s := NewPIDs("a", "b", "c")
	u := NewPIDs("b", "c", "d")

	if got, want := s.Without(u), NewPIDs("a"); !got.Equal(want) {
		t.Errorf("Without = %v, want %v", got, want)
	}
	if got, want := s.Intersect(u), NewPIDs("b", "c"); !got.Equal(want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := s.Union(u), NewPIDs("a", "b", "c", "d"); !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got, want := s.Add("z"), NewPIDs("a", "b", "c", "z"); !got.Equal(want) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := s.Add("a"), s; !got.Equal(want) {
		t.Errorf("Add existing = %v, want %v", got, want)
	}
	if got, want := s.Remove("b"), NewPIDs("a", "c"); !got.Equal(want) {
		t.Errorf("Remove = %v, want %v", got, want)
	}
	if got, want := s.Remove("x"), s; !got.Equal(want) {
		t.Errorf("Remove absent = %v, want %v", got, want)
	}
}

func TestPIDsCloneIndependence(t *testing.T) {
	s := NewPIDs("a", "b")
	c := s.Clone()
	c[0] = "z"
	if s[0] != "a" {
		t.Fatal("Clone shares backing array with original")
	}
	if PIDs(nil).Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestPIDsEqual(t *testing.T) {
	tests := []struct {
		a, b PIDs
		want bool
	}{
		{NewPIDs(), NewPIDs(), true},
		{NewPIDs("a"), NewPIDs("a"), true},
		{NewPIDs("a"), NewPIDs("b"), false},
		{NewPIDs("a", "b"), NewPIDs("a"), false},
	}
	for _, tc := range tests {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPIDsPropertySortedUnique(t *testing.T) {
	f := func(raw []string) bool {
		ps := make([]PID, len(raw))
		for i, s := range raw {
			ps[i] = PID(s)
		}
		got := NewPIDs(ps...)
		if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		// Every input present, nothing extra.
		for _, p := range ps {
			if !got.Contains(p) {
				return false
			}
		}
		for _, p := range got {
			found := false
			for _, q := range ps {
				if p == q {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
