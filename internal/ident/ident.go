// Package ident defines the identifier types shared by every layer of the
// SVS stack: process identifiers, view identifiers and per-sender message
// sequence numbers.
//
// Identifiers are deliberately plain (strings and integers) so that they can
// be printed, compared, sorted and gob-encoded without ceremony.
package ident

import (
	"sort"
	"strconv"
)

// PID identifies a process (a group member). PIDs are opaque strings chosen
// by the deployment ("p1", "replica-3", "10.0.0.7:9000", ...). The protocol
// only requires that PIDs are unique within a group and totally ordered;
// the natural string order is used wherever a deterministic order is needed
// (e.g. the rotating consensus coordinator).
type PID string

// GroupID identifies one SVS group instance among the many a node may
// host on a single transport endpoint. Group identifiers are chosen by
// the deployment (room number, topic hash, ...) and must agree across
// the members of a group; they travel on the wire with every envelope so
// transports can demultiplex shared connections by (GroupID, Channel).
type GroupID uint32

// NodeGroup is the reserved group identifier for node-scoped traffic
// that is shared by every group on an endpoint — today the heartbeat
// failure detector, which runs once per node, not once per group. It is
// also the default group of single-group deployments that never touch
// the multi-group runtime. Node runtimes refuse to host an application
// group under this identifier.
const NodeGroup GroupID = 0

// ViewID numbers the views installed by a group. At any single process
// view identifiers grow strictly monotonically, but since partitioned
// sub-views may keep advancing independently, a bare ViewID no longer
// names a view globally — the pair (Epoch, ViewID) does. See ViewRef.
type ViewID uint64

// Epoch identifies a view lineage. All views reachable from the founding
// view through ordinary (majority) view changes share epoch 0; a minority
// continuing through a split, or two sub-views merging after a partition
// heals, derive a fresh epoch from a hash of the transition so that
// independently advancing lineages can never collide on the same
// (Epoch, ViewID) pair.
type Epoch uint64

// ViewRef names one view globally: the lineage it belongs to plus its
// position within the lineage. ViewRef is comparable and usable as a map
// key.
type ViewRef struct {
	Epoch Epoch
	ID    ViewID
}

// Less orders refs by (Epoch, ID); used only to normalise unordered
// pairs (e.g. the two sides of a merge), not as a causal order.
func (r ViewRef) Less(o ViewRef) bool {
	if r.Epoch != o.Epoch {
		return r.Epoch < o.Epoch
	}
	return r.ID < o.ID
}

// String implements fmt.Stringer: "e<epoch-hex>/v<id>"; the founding
// lineage prints as plain "v<id>".
func (r ViewRef) String() string {
	if r.Epoch == 0 {
		return "v" + strconv.FormatUint(uint64(r.ID), 10)
	}
	return "e" + strconv.FormatUint(uint64(r.Epoch), 16) +
		"/v" + strconv.FormatUint(uint64(r.ID), 10)
}

// Seq is a per-sender message sequence number. The first message multicast
// by a sender carries Seq 1; Seq 0 is reserved to mean "no message".
type Seq uint64

// PIDs is a set of process identifiers kept sorted for deterministic
// iteration. The zero value is an empty set.
type PIDs []PID

// NewPIDs returns a sorted, deduplicated set built from ps.
func NewPIDs(ps ...PID) PIDs {
	out := make(PIDs, 0, len(ps))
	seen := make(map[PID]struct{}, len(ps))
	for _, p := range ps {
		if _, ok := seen[p]; ok {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether p is a member of s.
func (s PIDs) Contains(p PID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// Equal reports whether s and t contain exactly the same members.
func (s PIDs) Equal(t PIDs) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s PIDs) Clone() PIDs {
	if s == nil {
		return nil
	}
	out := make(PIDs, len(s))
	copy(out, s)
	return out
}

// Without returns the members of s that are not in t.
func (s PIDs) Without(t PIDs) PIDs {
	out := make(PIDs, 0, len(s))
	for _, p := range s {
		if !t.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// Intersect returns the members present in both s and t.
func (s PIDs) Intersect(t PIDs) PIDs {
	out := make(PIDs, 0, len(s))
	for _, p := range s {
		if t.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// Union returns the sorted union of s and t.
func (s PIDs) Union(t PIDs) PIDs {
	all := make([]PID, 0, len(s)+len(t))
	all = append(all, s...)
	all = append(all, t...)
	return NewPIDs(all...)
}

// Add returns s with p inserted (no-op if already present).
func (s PIDs) Add(p PID) PIDs {
	if s.Contains(p) {
		return s
	}
	return NewPIDs(append(s.Clone(), p)...)
}

// Remove returns s with p removed (no-op if absent).
func (s PIDs) Remove(p PID) PIDs {
	out := make(PIDs, 0, len(s))
	for _, q := range s {
		if q != p {
			out = append(out, q)
		}
	}
	return out
}
