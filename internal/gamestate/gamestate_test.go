package gamestate

import (
	"testing"
	"testing/quick"
)

func TestApplyLifecycle(t *testing.T) {
	s := New()
	s.Apply(Update{Op: OpCreate, Item: 1, Pos: Vec3{1, 2, 3}, Strength: 100})
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	it, ok := s.Get(1)
	if !ok || it.Pos != (Vec3{1, 2, 3}) || it.Strength != 100 {
		t.Fatalf("Get = %+v, %v", it, ok)
	}
	s.Apply(Update{Op: OpUpdate, Item: 1, Pos: Vec3{4, 5, 6}, Vel: Vec3{1, 0, 0}, Strength: 90})
	it, _ = s.Get(1)
	if it.Pos != (Vec3{4, 5, 6}) || it.Vel != (Vec3{1, 0, 0}) || it.Strength != 90 {
		t.Fatalf("after update: %+v", it)
	}
	s.Apply(Update{Op: OpDestroy, Item: 1})
	if s.Len() != 0 {
		t.Fatal("destroy did not remove item")
	}
	// Destroy of a missing item is a no-op.
	s.Apply(Update{Op: OpDestroy, Item: 42})
}

func TestUpdateOfMissingItemCreatesIt(t *testing.T) {
	// A slow replica may see update(i) without ever applying older state;
	// Apply must converge rather than fail.
	s := New()
	s.Apply(Update{Op: OpUpdate, Item: 7, Pos: Vec3{1, 1, 1}})
	if _, ok := s.Get(7); !ok {
		t.Fatal("update of missing item should create it")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(item uint32, px, py, pz, vx, vy, vz float32, str int32, opSel uint8) bool {
		u := Update{
			Op:       Op(opSel%3) + OpCreate,
			Item:     item,
			Pos:      Vec3{px, py, pz},
			Vel:      Vec3{vx, vy, vz},
			Strength: str,
		}
		got, err := ParseUpdate(u.Marshal())
		if err != nil {
			return false
		}
		return got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseUpdateRejectsBadInput(t *testing.T) {
	if _, err := ParseUpdate(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := ParseUpdate(make([]byte, 10)); err == nil {
		t.Fatal("short accepted")
	}
	bad := Update{Op: OpCreate, Item: 1}.Marshal()
	bad[0] = 99
	if _, err := ParseUpdate(bad); err == nil {
		t.Fatal("bad op accepted")
	}
}

func TestDigestDetectsDifferences(t *testing.T) {
	a := New()
	b := New()
	if a.Digest() != b.Digest() {
		t.Fatal("empty states differ")
	}
	a.Apply(Update{Op: OpCreate, Item: 1, Pos: Vec3{1, 0, 0}})
	if a.Digest() == b.Digest() {
		t.Fatal("different states share digest")
	}
	b.Apply(Update{Op: OpCreate, Item: 1, Pos: Vec3{1, 0, 0}})
	if a.Digest() != b.Digest() {
		t.Fatal("equal states differ")
	}
	b.Apply(Update{Op: OpUpdate, Item: 1, Pos: Vec3{2, 0, 0}})
	if a.Digest() == b.Digest() {
		t.Fatal("update not reflected in digest")
	}
}

func TestDigestOrderIndependence(t *testing.T) {
	a := New()
	b := New()
	// Same final state reached in different insertion orders.
	for i := uint32(1); i <= 20; i++ {
		a.Apply(Update{Op: OpCreate, Item: i, Strength: int32(i)})
	}
	for i := uint32(20); i >= 1; i-- {
		b.Apply(Update{Op: OpCreate, Item: i, Strength: int32(i)})
	}
	if a.Digest() != b.Digest() {
		t.Fatal("digest depends on insertion order")
	}
}

func TestConvergenceUnderObsoleteOmission(t *testing.T) {
	// The SVS argument: a replica that misses obsolete updates but applies
	// the final update of each item converges to the full-history state.
	full := New()
	sparse := New()
	updates := []Update{
		{Op: OpCreate, Item: 1, Pos: Vec3{0, 0, 0}, Strength: 100},
		{Op: OpUpdate, Item: 1, Pos: Vec3{1, 0, 0}, Strength: 90}, // obsolete
		{Op: OpUpdate, Item: 1, Pos: Vec3{2, 0, 0}, Strength: 80}, // obsolete
		{Op: OpUpdate, Item: 1, Pos: Vec3{3, 0, 0}, Strength: 70}, // final
		{Op: OpCreate, Item: 2, Pos: Vec3{9, 9, 9}, Strength: 50},
	}
	for _, u := range updates {
		full.Apply(u)
	}
	for _, i := range []int{0, 3, 4} { // sparse replica skips the obsolete ones
		sparse.Apply(updates[i])
	}
	if full.Digest() != sparse.Digest() {
		t.Fatalf("states diverged: %d vs %d", full.Digest(), sparse.Digest())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New()
	a.Apply(Update{Op: OpCreate, Item: 1})
	c := a.Clone()
	c.Apply(Update{Op: OpDestroy, Item: 1})
	if a.Len() != 1 || c.Len() != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestItemsSorted(t *testing.T) {
	s := New()
	for _, id := range []uint32{5, 1, 9, 3} {
		s.Apply(Update{Op: OpCreate, Item: id})
	}
	items := s.Items()
	for i := 1; i < len(items); i++ {
		if items[i-1].ID >= items[i].ID {
			t.Fatalf("Items not sorted: %v", items)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpCreate.String() != "create" || OpUpdate.String() != "update" || OpDestroy.String() != "destroy" {
		t.Fatal("Op.String wrong")
	}
	if Op(77).String() == "" {
		t.Fatal("unknown op should still render")
	}
}
