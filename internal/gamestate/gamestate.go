// Package gamestate models the replicated state of a multi-player game
// server in the style the paper extracts from Quake (§5.2): "the state of
// the game is modeled as a set of items. An item is any object in the game
// with which players can interact. Each item is represented by a data
// structure that stores its current position and velocity in the 3D space.
// The same data structure may also hold additional type specific
// attributes, such as the players remaining strength."
//
// The package provides the item store, a compact binary encoding of state
// updates suitable for multicast payloads, and a deterministic digest used
// by the replication layer and the tests to compare replica states.
package gamestate

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Op is the kind of a state update.
type Op uint8

const (
	// OpCreate introduces a new item (reliable: never purged).
	OpCreate Op = iota + 1
	// OpUpdate overwrites an item's mutable fields (purgeable: a later
	// update of the same item obsoletes it).
	OpUpdate
	// OpDestroy removes an item (reliable: never purged).
	OpDestroy
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpUpdate:
		return "update"
	case OpDestroy:
		return "destroy"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Vec3 is a position or velocity in the game's 3D space.
type Vec3 [3]float32

// Item is one interactive object.
type Item struct {
	ID       uint32
	Pos      Vec3
	Vel      Vec3
	Strength int32
}

// Update is one state mutation, the unit disseminated to replicas.
type Update struct {
	Op   Op
	Item uint32
	Pos  Vec3
	Vel  Vec3
	// Strength is the item's type-specific attribute after the update.
	Strength int32
}

// updateWireSize is the encoded size: op(1) + item(4) + 6 floats + strength.
const updateWireSize = 1 + 4 + 6*4 + 4

// Marshal encodes u into a compact fixed-size payload.
func (u Update) Marshal() []byte {
	p := make([]byte, updateWireSize)
	p[0] = byte(u.Op)
	binary.LittleEndian.PutUint32(p[1:], u.Item)
	off := 5
	for _, f := range []float32{u.Pos[0], u.Pos[1], u.Pos[2], u.Vel[0], u.Vel[1], u.Vel[2]} {
		binary.LittleEndian.PutUint32(p[off:], math.Float32bits(f))
		off += 4
	}
	binary.LittleEndian.PutUint32(p[off:], uint32(u.Strength))
	return p
}

// ParseUpdate decodes a payload produced by Marshal.
func ParseUpdate(p []byte) (Update, error) {
	if len(p) != updateWireSize {
		return Update{}, fmt.Errorf("gamestate: bad update size %d", len(p))
	}
	var u Update
	u.Op = Op(p[0])
	if u.Op < OpCreate || u.Op > OpDestroy {
		return Update{}, fmt.Errorf("gamestate: bad op %d", p[0])
	}
	u.Item = binary.LittleEndian.Uint32(p[1:])
	off := 5
	fs := make([]float32, 6)
	for i := range fs {
		fs[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[off:]))
		off += 4
	}
	u.Pos = Vec3{fs[0], fs[1], fs[2]}
	u.Vel = Vec3{fs[3], fs[4], fs[5]}
	u.Strength = int32(binary.LittleEndian.Uint32(p[off:]))
	return u, nil
}

// State is an item store. It is not safe for concurrent use; replicas own
// their state from a single goroutine.
type State struct {
	items map[uint32]Item
}

// New returns an empty state.
func New() *State {
	return &State{items: make(map[uint32]Item)}
}

// Len returns the number of live items.
func (s *State) Len() int { return len(s.items) }

// Get returns the item with the given id.
func (s *State) Get(id uint32) (Item, bool) {
	it, ok := s.items[id]
	return it, ok
}

// Items returns the live items sorted by id.
func (s *State) Items() []Item {
	out := make([]Item, 0, len(s.items))
	for _, it := range s.items {
		out = append(out, it)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Apply executes u. Creating an existing item overwrites it; updating a
// missing item creates it (a purged create cannot happen — creates are
// reliable — but a replica that purged earlier updates must still converge);
// destroying a missing item is a no-op. Apply never fails on semantically
// legal replay, which is what SVS delivery can produce at a slow replica.
func (s *State) Apply(u Update) {
	switch u.Op {
	case OpCreate, OpUpdate:
		s.items[u.Item] = Item{
			ID: u.Item, Pos: u.Pos, Vel: u.Vel, Strength: u.Strength,
		}
	case OpDestroy:
		delete(s.items, u.Item)
	}
}

// Digest returns a deterministic hash of the full state: equal digests ⇔
// equal item sets (up to hash collisions). Replicas compare digests after
// view installation to confirm the consistency SVS guarantees.
func (s *State) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, it := range s.Items() {
		binary.LittleEndian.PutUint32(buf[:4], it.ID)
		h.Write(buf[:4])
		for _, f := range []float32{it.Pos[0], it.Pos[1], it.Pos[2], it.Vel[0], it.Vel[1], it.Vel[2]} {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(f))
			h.Write(buf[:4])
		}
		binary.LittleEndian.PutUint32(buf[:4], uint32(it.Strength))
		h.Write(buf[:4])
	}
	return h.Sum64()
}

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	out := New()
	for id, it := range s.items {
		out.items[id] = it
	}
	return out
}
