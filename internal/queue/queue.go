// Package queue implements the FIFO ordered message sets of the SVS
// protocol (the to-deliver and delivered queues of the paper's Figure 1),
// including the purge function that removes messages obsoleted by a later
// message of the same view, and the bounded-capacity behaviour that drives
// the flow control studied in §5.
//
// # Storage layout
//
// Entries live in a power-of-two ring buffer addressed by monotonically
// increasing absolute positions (head..tail). PopHead advances head and
// zeroes the vacated slot — O(1), no memmove, no pinned payloads. Purged
// entries become zeroed tombstone slots that PopHead/iteration skip and
// that compaction reclaims when the ring wraps into them.
//
// # Sender index
//
// Every encoding of §4.2 relates messages of a single sender only, and
// k-enumeration further bounds the reach to a window of k sequence
// numbers. When the relation declares this through the capability
// interfaces obsolete.SenderLocal / obsolete.Windowed, the queue keeps a
// per-(view, sender) seq-ordered index of its data entries and purge
// operations examine only the incoming message's own sender — O(window)
// for k-enumeration instead of O(queue length). Arbitrary relations
// (obsolete.Func) fall back to the retained linear-scan reference path.
//
// The indexed path reproduces the scan path exactly as long as each
// (view, sender) stream is appended in ascending sequence-number order —
// the per-sender FIFO invariant the protocol engine maintains.
package queue

import (
	"bytes"
	"errors"
	"time"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// Kind distinguishes the two kinds of queued entries of Figure 1: data
// messages and view (control) markers. Control entries are never purged.
type Kind uint8

const (
	// kindDead marks a tombstone slot left behind by a purge; the zero
	// Item is a dead slot.
	kindDead Kind = iota
	// Data is an application multicast message.
	Data
	// Control is a protocol marker (e.g. a view notification).
	Control
)

// Item is one entry of a protocol queue.
type Item struct {
	Kind Kind
	// View tags the view in which a data message was multicast; purge only
	// relates messages of the same view (Figure 1, purge()).
	View uint64
	// Epoch is the lineage of that view (0 for the founding lineage). It
	// rides along so deliveries report the true global view name even for
	// entries adopted across a partition merge; the queue itself never
	// inspects it — purging already only relates same-(view, sender)
	// streams appended by one engine, which never mixes epochs under one
	// view number.
	Epoch uint64
	// Meta carries sender, sequence number and obsolescence annotation.
	Meta obsolete.Msg
	// Payload is the opaque application payload of a data message.
	Payload []byte
	// Ctl carries the content of a control entry (e.g. the new view).
	Ctl any
	// At is the local enqueue timestamp, stamped by the engine only when a
	// delivery-latency histogram is attached (zero otherwise, and zero for
	// entries adopted from flush sets or state transfers).
	At time.Time
}

// ErrFull is returned by Append when the queue is at capacity and no
// obsolete entry could be purged to make room.
var ErrFull = errors.New("queue: full")

// Stats accumulates the counters the evaluation section reports on.
type Stats struct {
	Appended uint64 // entries accepted
	Purged   uint64 // entries removed as obsolete
	Popped   uint64 // entries consumed
	Rejected uint64 // appends refused because the queue was full
	MaxLen   int    // high-water mark
}

// Queue is a FIFO ordered set of items with semantic purging. It is not
// safe for concurrent use; the protocol engine owns it from a single
// goroutine.
type Queue struct {
	rel      obsolete.Relation
	capacity int // 0 = unbounded
	stats    Stats

	// Ring storage (see ring.go). buf has power-of-two length; head and
	// tail are absolute positions, slot p lives at buf[p&mask].
	buf  []Item
	mask uint64
	head uint64
	tail uint64
	live int // non-tombstone entries in [head, tail)
	// spare is the previous ring, zeroed and retained by compact so a
	// same-size compaction (the common tombstone-reclaim case) swaps
	// buffers instead of allocating.
	spare []Item

	// Sender index (see index.go). idx is non-nil iff rel is
	// sender-local; views lists, per sender, the views it currently has
	// indexed entries in (so Covers touches only that sender's streams).
	idx    map[idxKey][]idxEnt
	views  map[ident.PID][]uint64
	window int  // >0: purge candidate window in sequence numbers
	never  bool // rel is obsolete.Empty: purging can never remove anything
}

// New returns an empty queue using rel to recognise obsolete entries.
// capacity 0 means unbounded; otherwise Append fails with ErrFull when the
// queue holds capacity entries and purging frees nothing.
//
// When rel implements obsolete.SenderLocal (all built-in encodings do),
// the queue maintains the per-(view, sender) index and purge operations
// run in O(sender's entries) — O(window) when rel also implements
// obsolete.Windowed — instead of scanning the whole queue.
func New(rel obsolete.Relation, capacity int) *Queue {
	if rel == nil {
		rel = obsolete.Empty{}
	}
	q := &Queue{rel: rel, capacity: capacity}
	if _, ok := rel.(obsolete.Empty); ok {
		// The empty relation obsoletes nothing: skip both the index and
		// every purge scan (plain VS has no purging to pay for).
		q.never = true
		return q
	}
	if caps := obsolete.CapsOf(rel); caps.SenderLocal {
		q.idx = make(map[idxKey][]idxEnt)
		q.views = make(map[ident.PID][]uint64)
		q.window = caps.Window
	}
	return q
}

// Indexed reports whether the sender-local indexed purge path is active
// (as opposed to the linear-scan fallback for arbitrary relations).
func (q *Queue) Indexed() bool { return q.idx != nil }

// Len returns the number of queued entries.
func (q *Queue) Len() int { return q.live }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.capacity > 0 && q.live >= q.capacity }

// Stats returns the accumulated counters.
func (q *Queue) Stats() Stats { return q.stats }

// Append adds it to the tail. If the queue is full it first attempts a
// full purge; if still full it returns ErrFull (the caller then exercises
// flow control, as in §5.3).
func (q *Queue) Append(it Item) error {
	if q.Full() {
		q.Purge()
		if q.Full() {
			q.stats.Rejected++
			return ErrFull
		}
	}
	q.push(it)
	return nil
}

// ForceAppend adds it to the tail regardless of capacity. The protocol
// uses it for control markers and for the agreed flush set, which must
// never be refused ("the protocol must always reserve separate buffer
// space for control information", §5.3).
func (q *Queue) ForceAppend(it Item) {
	q.push(it)
}

// AppendPurge purges the entries obsoleted by it, then appends it. The
// purge happens even if the append then fails with ErrFull — mirroring a
// network buffer where the arriving packet displaces obsolete ones before
// space is assessed. Unlike PurgeFor it does not materialise the removed
// entries, so it allocates nothing.
func (q *Queue) AppendPurge(it Item) (purged int, err error) {
	_, purged = q.purgeFor(it, nil, false)
	return purged, q.Append(it)
}

// PopHead removes and returns the head entry in O(1); the vacated slot is
// zeroed so the ring never pins popped payloads.
func (q *Queue) PopHead() (Item, bool) {
	q.skipDeadHead()
	if q.head == q.tail {
		return Item{}, false
	}
	s := q.slot(q.head)
	it := *s
	if q.idx != nil && it.Kind == Data {
		q.idxDrop(idxKey{view: it.View, sender: it.Meta.Sender}, it.Meta.Seq, q.head)
	}
	*s = Item{}
	q.head++
	q.live--
	q.stats.Popped++
	return it, true
}

// PeekHead returns the head entry without removing it.
func (q *Queue) PeekHead() (Item, bool) {
	q.skipDeadHead()
	if q.head == q.tail {
		return Item{}, false
	}
	return *q.slot(q.head), true
}

// Each calls f on every entry in FIFO order, stopping early if f returns
// false. The entry is passed by value; use EachRef on hot paths.
func (q *Queue) Each(f func(Item) bool) {
	q.EachRef(func(it *Item) bool { return f(*it) })
}

// EachRef calls f on every entry in FIFO order without copying the Item,
// stopping early if f returns false. The pointer is only valid during the
// callback and must not be retained or written through; the callback must
// not mutate the queue.
func (q *Queue) EachRef(f func(*Item) bool) {
	for p := q.head; p != q.tail; p++ {
		it := q.slot(p)
		if it.Kind == kindDead {
			continue
		}
		if !f(it) {
			return
		}
	}
}

// Any reports whether some entry satisfies f.
func (q *Queue) Any(f func(Item) bool) bool {
	return q.AnyRef(func(it *Item) bool { return f(*it) })
}

// AnyRef reports whether some entry satisfies f, without copying entries.
// The same aliasing rules as EachRef apply.
func (q *Queue) AnyRef(f func(*Item) bool) bool {
	found := false
	q.EachRef(func(it *Item) bool {
		found = f(it)
		return !found
	})
	return found
}

// RemoveIf removes every entry satisfying f, returning how many were
// removed. Unlike Purge this does not touch the purge counter; it is used
// for view-change garbage collection.
func (q *Queue) RemoveIf(f func(Item) bool) int {
	removed := 0
	for p := q.head; p != q.tail; p++ {
		it := q.slot(p)
		if it.Kind == kindDead || !f(*it) {
			continue
		}
		if q.idx != nil && it.Kind == Data {
			q.idxDrop(idxKey{view: it.View, sender: it.Meta.Sender}, it.Meta.Seq, p)
		}
		q.killSlot(p)
		removed++
	}
	return removed
}

// Snapshot returns a copy of the queue contents in FIFO order. Payloads
// and annotations are cloned: the snapshot never aliases live queue bytes
// into the caller's hands.
func (q *Queue) Snapshot() []Item {
	out := make([]Item, 0, q.live)
	q.EachRef(func(it *Item) bool {
		c := *it
		c.Payload = bytes.Clone(it.Payload)
		c.Meta.Annot = bytes.Clone(it.Meta.Annot)
		out = append(out, c)
		return true
	})
	return out
}
