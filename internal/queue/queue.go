// Package queue implements the FIFO ordered message sets of the SVS
// protocol (the to-deliver and delivered queues of the paper's Figure 1),
// including the purge function that removes messages obsoleted by a later
// message of the same view, and the bounded-capacity behaviour that drives
// the flow control studied in §5.
package queue

import (
	"errors"

	"repro/internal/obsolete"
)

// Kind distinguishes the two kinds of queued entries of Figure 1: data
// messages and view (control) markers. Control entries are never purged.
type Kind uint8

const (
	// Data is an application multicast message.
	Data Kind = iota + 1
	// Control is a protocol marker (e.g. a view notification).
	Control
)

// Item is one entry of a protocol queue.
type Item struct {
	Kind Kind
	// View tags the view in which a data message was multicast; purge only
	// relates messages of the same view (Figure 1, purge()).
	View uint64
	// Meta carries sender, sequence number and obsolescence annotation.
	Meta obsolete.Msg
	// Payload is the opaque application payload of a data message.
	Payload []byte
	// Ctl carries the content of a control entry (e.g. the new view).
	Ctl any
}

// ErrFull is returned by Append when the queue is at capacity and no
// obsolete entry could be purged to make room.
var ErrFull = errors.New("queue: full")

// Stats accumulates the counters the evaluation section reports on.
type Stats struct {
	Appended uint64 // entries accepted
	Purged   uint64 // entries removed as obsolete
	Popped   uint64 // entries consumed
	Rejected uint64 // appends refused because the queue was full
	MaxLen   int    // high-water mark
}

// Queue is a FIFO ordered set of items with semantic purging. It is not
// safe for concurrent use; the protocol engine owns it from a single
// goroutine.
type Queue struct {
	rel      obsolete.Relation
	capacity int // 0 = unbounded
	items    []Item
	stats    Stats
}

// New returns an empty queue using rel to recognise obsolete entries.
// capacity 0 means unbounded; otherwise Append fails with ErrFull when the
// queue holds capacity entries and purging frees nothing.
func New(rel obsolete.Relation, capacity int) *Queue {
	if rel == nil {
		rel = obsolete.Empty{}
	}
	return &Queue{rel: rel, capacity: capacity}
}

// Len returns the number of queued entries.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.capacity }

// Full reports whether the queue is at capacity.
func (q *Queue) Full() bool { return q.capacity > 0 && len(q.items) >= q.capacity }

// Stats returns the accumulated counters.
func (q *Queue) Stats() Stats { return q.stats }

// Append adds it to the tail. If the queue is full it first attempts a
// full purge; if still full it returns ErrFull (the caller then exercises
// flow control, as in §5.3).
func (q *Queue) Append(it Item) error {
	if q.Full() {
		q.Purge()
		if q.Full() {
			q.stats.Rejected++
			return ErrFull
		}
	}
	q.items = append(q.items, it)
	q.stats.Appended++
	if len(q.items) > q.stats.MaxLen {
		q.stats.MaxLen = len(q.items)
	}
	return nil
}

// Purge implements the purge function of Figure 1: repeatedly remove any
// data entry m such that another data entry m' of the same view with
// m ≺ m' is present. It returns the number of entries removed.
//
// A single marking pass against the original contents is equivalent to the
// paper's while-loop: any marked set can be removed one element at a time
// in ascending partial-order position, and at each step the witness
// (strictly greater in the order) is still present. Maximal elements are
// never marked, which is the invariant the correctness argument of §3.4
// rests on.
func (q *Queue) Purge() int {
	if len(q.items) < 2 {
		return 0
	}
	kept := q.items[:0]
	removed := 0
	for i := range q.items {
		m := q.items[i]
		if m.Kind == Data && q.obsoletedBy(m, i) {
			removed++
			continue
		}
		kept = append(kept, m)
	}
	q.items = kept
	q.stats.Purged += uint64(removed)
	return removed
}

// obsoletedBy reports whether items[i] is obsoleted by any other data
// entry of the same view.
func (q *Queue) obsoletedBy(m Item, i int) bool {
	for j := range q.items {
		if j == i {
			continue
		}
		n := q.items[j]
		if n.Kind != Data || n.View != m.View {
			continue
		}
		if q.rel.Obsoletes(m.Meta, n.Meta) {
			return true
		}
	}
	return false
}

// ForceAppend adds it to the tail regardless of capacity. The protocol
// uses it for control markers and for the agreed flush set, which must
// never be refused ("the protocol must always reserve separate buffer
// space for control information", §5.3).
func (q *Queue) ForceAppend(it Item) {
	q.items = append(q.items, it)
	q.stats.Appended++
	if len(q.items) > q.stats.MaxLen {
		q.stats.MaxLen = len(q.items)
	}
}

// PurgeFor removes and returns the entries obsoleted by the (just received
// or about to be appended) message n. This is the cheap O(len)
// arrival-time purge used on the hot path; Purge remains available for the
// full pairwise sweep. The removed items are returned so the caller can
// release per-sender flow-control credits.
func (q *Queue) PurgeFor(n Item) []Item {
	if n.Kind != Data || len(q.items) == 0 {
		return nil
	}
	kept := q.items[:0]
	var removed []Item
	for _, m := range q.items {
		if m.Kind == Data && m.View == n.View && q.rel.Obsoletes(m.Meta, n.Meta) {
			removed = append(removed, m)
			continue
		}
		kept = append(kept, m)
	}
	q.items = kept
	q.stats.Purged += uint64(len(removed))
	return removed
}

// CountPurgeableFor reports how many entries PurgeFor(n) would remove,
// without removing them. Used for the engine's all-or-nothing capacity
// check before committing a multicast.
func (q *Queue) CountPurgeableFor(n Item) int {
	if n.Kind != Data {
		return 0
	}
	c := 0
	for _, m := range q.items {
		if m.Kind == Data && m.View == n.View && q.rel.Obsoletes(m.Meta, n.Meta) {
			c++
		}
	}
	return c
}

// AppendPurge purges the entries obsoleted by it, then appends it. The
// purge happens even if the append then fails with ErrFull — mirroring a
// network buffer where the arriving packet displaces obsolete ones before
// space is assessed.
func (q *Queue) AppendPurge(it Item) (purged int, err error) {
	purged = len(q.PurgeFor(it))
	return purged, q.Append(it)
}

// PopHead removes and returns the head entry.
func (q *Queue) PopHead() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	it := q.items[0]
	// Shift rather than reslice so the backing array does not pin popped
	// payloads nor grow without bound.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	q.stats.Popped++
	return it, true
}

// PeekHead returns the head entry without removing it.
func (q *Queue) PeekHead() (Item, bool) {
	if len(q.items) == 0 {
		return Item{}, false
	}
	return q.items[0], true
}

// Each calls f on every entry in FIFO order, stopping early if f returns
// false.
func (q *Queue) Each(f func(Item) bool) {
	for _, it := range q.items {
		if !f(it) {
			return
		}
	}
}

// Any reports whether some entry satisfies f.
func (q *Queue) Any(f func(Item) bool) bool {
	for _, it := range q.items {
		if f(it) {
			return true
		}
	}
	return false
}

// RemoveIf removes every entry satisfying f, returning how many were
// removed. Unlike Purge this does not touch the purge counter; it is used
// for view-change garbage collection.
func (q *Queue) RemoveIf(f func(Item) bool) int {
	kept := q.items[:0]
	removed := 0
	for _, it := range q.items {
		if f(it) {
			removed++
			continue
		}
		kept = append(kept, it)
	}
	q.items = kept
	return removed
}

// Snapshot returns a copy of the queue contents in FIFO order.
func (q *Queue) Snapshot() []Item {
	out := make([]Item, len(q.items))
	copy(out, q.items)
	return out
}
