package queue

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func payloadItem(sender ident.PID, seq ident.Seq, tag uint32) Item {
	return Item{
		Kind:    Data,
		View:    1,
		Meta:    obsolete.Msg{Sender: sender, Seq: seq, Annot: obsolete.TagAnnot(tag)},
		Payload: make([]byte, 256),
	}
}

// checkSlotsReleased asserts that every ring slot not holding a live entry
// is the zero Item — no popped or purged payload, annotation or control
// value stays pinned by the backing array.
func checkSlotsReleased(t *testing.T, q *Queue) {
	t.Helper()
	liveSlots := make(map[uint64]bool)
	for p := q.head; p != q.tail; p++ {
		if q.slot(p).Kind != kindDead {
			liveSlots[p&q.mask] = true
		}
	}
	if len(liveSlots) != q.live {
		t.Fatalf("live bookkeeping: %d live slots, Len %d", len(liveSlots), q.live)
	}
	for i := range q.buf {
		if liveSlots[uint64(i)] {
			continue
		}
		it := q.buf[i]
		if it.Kind != kindDead || it.Payload != nil || it.Meta.Annot != nil || it.Ctl != nil {
			t.Fatalf("slot %d not released: %+v", i, it)
		}
	}
}

// TestRingReleasesPoppedAndPurgedSlots is the regression test for payload
// pinning: after pops and purges, the vacated ring slots must hold zero
// Items so the popped/purged payloads become collectable.
func TestRingReleasesPoppedAndPurgedSlots(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	for i := 1; i <= 12; i++ {
		if err := q.Append(payloadItem("p", ident.Seq(i), uint32(i%4))); err != nil {
			t.Fatal(err)
		}
	}
	checkSlotsReleased(t, q)

	for i := 0; i < 3; i++ {
		if _, ok := q.PopHead(); !ok {
			t.Fatal("PopHead failed")
		}
		checkSlotsReleased(t, q)
	}

	// An update of tag 1 purges every queued tag-1 entry (middle slots).
	removed := q.PurgeFor(payloadItem("p", 13, 1))
	if len(removed) == 0 {
		t.Fatal("expected purge to remove entries")
	}
	checkSlotsReleased(t, q)

	// Wrap the ring across the tombstones and force compaction.
	for i := 14; i <= 40; i++ {
		if err := q.Append(payloadItem("p", ident.Seq(i), uint32(i%4))); err != nil {
			t.Fatal(err)
		}
		checkSlotsReleased(t, q)
	}

	q.Purge()
	checkSlotsReleased(t, q)

	q.RemoveIf(func(it Item) bool { return it.Meta.Seq%2 == 0 })
	checkSlotsReleased(t, q)

	for {
		if _, ok := q.PopHead(); !ok {
			break
		}
		checkSlotsReleased(t, q)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining", q.Len())
	}
}

// TestSnapshotDoesNotAliasBytes asserts Snapshot hands back cloned payload
// and annotation bytes, never views into live queue storage.
func TestSnapshotDoesNotAliasBytes(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	it := payloadItem("p", 1, 7)
	it.Payload[0] = 0xAA
	if err := q.Append(it); err != nil {
		t.Fatal(err)
	}

	snap := q.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot len %d", len(snap))
	}
	snap[0].Payload[0] = 0x55
	snap[0].Meta.Annot[0] ^= 0xFF

	head, _ := q.PeekHead()
	if head.Payload[0] != 0xAA {
		t.Fatal("Snapshot aliases live payload bytes")
	}
	if tag, ok := obsolete.TagOf(head.Meta); !ok || tag != 7 {
		t.Fatal("Snapshot aliases live annotation bytes")
	}

	// Nil payloads/annotations must stay nil, not become empty slices.
	q2 := New(nil, 0)
	q2.ForceAppend(Item{Kind: Data, View: 1, Meta: obsolete.Msg{Sender: "p", Seq: 1}})
	s2 := q2.Snapshot()
	if s2[0].Payload != nil || s2[0].Meta.Annot != nil {
		t.Fatal("Snapshot materialised nil byte slices")
	}
}

// TestZeroKindItemRejected documents that a zero-Kind Item (the tombstone
// marker) cannot be stored: silently accepting one would desync the live
// counter and wedge capacity accounting.
func TestZeroKindItemRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ForceAppend of a zero-Kind Item did not panic")
		}
	}()
	New(nil, 0).ForceAppend(Item{})
}

// TestIndexConsistencyAfterCompaction fills, purges and wraps the ring so
// compaction reassigns positions, then checks the sender index still finds
// exactly the right purge candidates.
func TestIndexConsistencyAfterCompaction(t *testing.T) {
	const k = 4
	rel := obsolete.KEnumeration{K: k}
	q := New(rel, 0)
	tr := obsolete.NewItemTracker(obsolete.NewKTracker(k))

	var last ident.Seq
	for i := 0; i < 100; i++ {
		seq, annot := tr.Update(uint32(i % 3))
		it := Item{Kind: Data, View: 1, Meta: obsolete.Msg{Sender: "p", Seq: seq, Annot: annot}}
		if _, err := q.AppendPurge(it); err != nil {
			t.Fatal(err)
		}
		last = seq
		if i%5 == 0 {
			q.PopHead() // churn head so the ring wraps
		}
	}
	// Steady state: one live update per item (minus popped ones); a final
	// update of item 0 must purge exactly the previous update of item 0 if
	// it is still queued — verified against a direct scan.
	seq, annot := tr.Update(0)
	probe := Item{Kind: Data, View: 1, Meta: obsolete.Msg{Sender: "p", Seq: seq, Annot: annot}}
	want := 0
	q.EachRef(func(it *Item) bool {
		if it.Kind == Data && it.View == 1 && rel.Obsoletes(it.Meta, probe.Meta) {
			want++
		}
		return true
	})
	if got := q.CountPurgeableFor(probe); got != want {
		t.Fatalf("CountPurgeableFor = %d, scan says %d (last=%d)", got, want, last)
	}
	if got := len(q.PurgeFor(probe)); got != want {
		t.Fatalf("PurgeFor removed %d, want %d", got, want)
	}
	checkSlotsReleased(t, q)
}
