package queue

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

// model is the linear-scan slice reference implementation the indexed
// ring queue is differentially tested against. It deliberately mirrors
// the specified semantics with the most obvious code: entries in a plain
// slice, purges as FIFO-order scans where removed entries stop serving as
// witnesses.
type model struct {
	rel      obsolete.Relation
	capacity int
	items    []Item
	stats    Stats
}

func newModel(rel obsolete.Relation, capacity int) *model {
	return &model{rel: rel, capacity: capacity}
}

func (m *model) full() bool { return m.capacity > 0 && len(m.items) >= m.capacity }

func (m *model) forceAppend(it Item) {
	m.items = append(m.items, it)
	m.stats.Appended++
	if len(m.items) > m.stats.MaxLen {
		m.stats.MaxLen = len(m.items)
	}
}

func (m *model) append(it Item) error {
	if m.full() {
		m.purge()
		if m.full() {
			m.stats.Rejected++
			return ErrFull
		}
	}
	m.forceAppend(it)
	return nil
}

func (m *model) purgeFor(n Item) []Item {
	if n.Kind != Data {
		return nil
	}
	var removed []Item
	kept := m.items[:0]
	for _, it := range m.items {
		if it.Kind == Data && it.View == n.View && m.rel.Obsoletes(it.Meta, n.Meta) {
			removed = append(removed, it)
			continue
		}
		kept = append(kept, it)
	}
	m.items = kept
	m.stats.Purged += uint64(len(removed))
	return removed
}

func (m *model) countPurgeableFor(n Item) int {
	if n.Kind != Data {
		return 0
	}
	c := 0
	for _, it := range m.items {
		if it.Kind == Data && it.View == n.View && m.rel.Obsoletes(it.Meta, n.Meta) {
			c++
		}
	}
	return c
}

// purge removes entries in FIFO order; an entry already removed in this
// sweep no longer serves as a witness for later entries.
func (m *model) purge() int {
	removed := 0
	for i := 0; i < len(m.items); {
		it := m.items[i]
		if it.Kind == Data && m.witness(it, i) {
			m.items = append(m.items[:i], m.items[i+1:]...)
			removed++
			continue
		}
		i++
	}
	m.stats.Purged += uint64(removed)
	return removed
}

func (m *model) witness(it Item, self int) bool {
	for j, x := range m.items {
		if j == self || x.Kind != Data || x.View != it.View {
			continue
		}
		if m.rel.Obsoletes(it.Meta, x.Meta) {
			return true
		}
	}
	return false
}

func (m *model) popHead() (Item, bool) {
	if len(m.items) == 0 {
		return Item{}, false
	}
	it := m.items[0]
	m.items = m.items[1:]
	m.stats.Popped++
	return it, true
}

func (m *model) removeIf(f func(Item) bool) int {
	kept := m.items[:0]
	removed := 0
	for _, it := range m.items {
		if f(it) {
			removed++
			continue
		}
		kept = append(kept, it)
	}
	m.items = kept
	return removed
}

// entryID is the comparable identity of a queue entry.
type entryID struct {
	kind   Kind
	view   uint64
	sender ident.PID
	seq    ident.Seq
}

func id(it Item) entryID {
	return entryID{kind: it.Kind, view: it.View, sender: it.Meta.Sender, seq: it.Meta.Seq}
}

func ids(items []Item) []entryID {
	out := make([]entryID, len(items))
	for i, it := range items {
		out[i] = id(it)
	}
	return out
}

func compareState(t *testing.T, step int, q *Queue, m *model) {
	t.Helper()
	if q.Len() != len(m.items) {
		t.Fatalf("step %d: Len %d, model %d", step, q.Len(), len(m.items))
	}
	if q.Stats() != m.stats {
		t.Fatalf("step %d: Stats %+v, model %+v", step, q.Stats(), m.stats)
	}
	got, want := ids(q.Snapshot()), ids(m.items)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: kept-set mismatch at %d: %+v vs %+v\n got %v\nwant %v",
				step, i, got[i], want[i], got, want)
		}
	}
}

// stream generates one sender's annotated message stream.
type stream interface {
	next(rng *rand.Rand) obsolete.Msg
}

type taggingStream struct {
	sender ident.PID
	seq    ident.Seq
}

func (s *taggingStream) next(rng *rand.Rand) obsolete.Msg {
	s.seq++
	annot := obsolete.NoTag()
	if rng.Intn(4) != 0 { // some messages stay untagged (fully reliable)
		annot = obsolete.TagAnnot(uint32(rng.Intn(4)))
	}
	return obsolete.Msg{Sender: s.sender, Seq: s.seq, Annot: annot}
}

type trackerStream struct {
	sender ident.PID
	tr     obsolete.Tracker
	window int
}

func (s *trackerStream) next(rng *rand.Rand) obsolete.Msg {
	last := s.tr.Seq()
	var direct []ident.Seq
	for d := 1; d <= s.window && ident.Seq(d) <= last; d++ {
		if rng.Intn(3) == 0 {
			direct = append(direct, last+1-ident.Seq(d))
		}
	}
	seq, annot := s.tr.Next(direct...)
	return obsolete.Msg{Sender: s.sender, Seq: seq, Annot: annot}
}

type funcStream struct {
	sender ident.PID
	seq    ident.Seq
}

func (s *funcStream) next(rng *rand.Rand) obsolete.Msg {
	s.seq++
	return obsolete.Msg{Sender: s.sender, Seq: s.seq, Annot: []byte{byte(rng.Intn(3))}}
}

// crossSenderFunc relates messages across senders (same one-byte class,
// strictly increasing seq) — not sender-local, so the queue must take the
// retained scan path.
var crossSenderFunc = obsolete.Func{
	Label: "cross-sender-class",
	F: func(old, new obsolete.Msg) bool {
		return old.Seq < new.Seq && len(old.Annot) == 1 && len(new.Annot) == 1 &&
			old.Annot[0] == new.Annot[0]
	},
}

// TestDifferentialIndexedVsReference drives identical randomized operation
// sequences through the ring queue and the slice reference model for all
// three §4.2 encodings plus an arbitrary cross-sender Func relation, and
// checks kept-sets, purge counts, return values and stats stay identical
// after every operation.
func TestDifferentialIndexedVsReference(t *testing.T) {
	const k = 8
	cases := []struct {
		name    string
		rel     obsolete.Relation
		indexed bool
		streams func(senders []ident.PID) []stream
	}{
		{
			name: "tagging", rel: obsolete.Tagging{}, indexed: true,
			streams: func(ps []ident.PID) []stream {
				out := make([]stream, len(ps))
				for i, p := range ps {
					out[i] = &taggingStream{sender: p}
				}
				return out
			},
		},
		{
			name: "enumeration", rel: obsolete.Enumeration{}, indexed: true,
			streams: func(ps []ident.PID) []stream {
				out := make([]stream, len(ps))
				for i, p := range ps {
					out[i] = &trackerStream{sender: p, tr: obsolete.NewEnumTracker(k), window: k}
				}
				return out
			},
		},
		{
			name: "k-enumeration", rel: obsolete.KEnumeration{K: k}, indexed: true,
			streams: func(ps []ident.PID) []stream {
				out := make([]stream, len(ps))
				for i, p := range ps {
					out[i] = &trackerStream{sender: p, tr: obsolete.NewKTracker(k), window: k}
				}
				return out
			},
		},
		{
			name: "func-cross-sender", rel: crossSenderFunc, indexed: false,
			streams: func(ps []ident.PID) []stream {
				out := make([]stream, len(ps))
				for i, p := range ps {
					out[i] = &funcStream{sender: p}
				}
				return out
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 40; trial++ {
				rng := rand.New(rand.NewSource(int64(1000*trial + 7)))
				capacity := []int{0, 0, 4, 8, 16}[rng.Intn(5)]
				q := New(tc.rel, capacity)
				if q.Indexed() != tc.indexed {
					t.Fatalf("Indexed() = %v, want %v", q.Indexed(), tc.indexed)
				}
				m := newModel(tc.rel, capacity)

				senders := []ident.PID{"a", "b", "c"}[:1+rng.Intn(3)]
				streams := tc.streams(senders)
				view := func() uint64 { return uint64(1 + rng.Intn(2)) }

				for step := 0; step < 250; step++ {
					switch op := rng.Intn(10); op {
					case 0, 1, 2: // plain append of the next stream message
						it := Item{Kind: Data, View: view(), Meta: streams[rng.Intn(len(streams))].next(rng)}
						qe, me := q.Append(it), m.append(it)
						if (qe == nil) != (me == nil) {
							t.Fatalf("trial %d step %d: Append err %v vs %v", trial, step, qe, me)
						}
					case 3: // arrival purge + append (the engine hot path)
						it := Item{Kind: Data, View: view(), Meta: streams[rng.Intn(len(streams))].next(rng)}
						qc, mc := q.CountPurgeableFor(it), m.countPurgeableFor(it)
						if qc != mc {
							t.Fatalf("trial %d step %d: CountPurgeableFor %d vs %d", trial, step, qc, mc)
						}
						qr := q.PurgeFor(it)
						mr := m.purgeFor(it)
						if fmt.Sprint(ids(qr)) != fmt.Sprint(ids(mr)) {
							t.Fatalf("trial %d step %d: PurgeFor removed %v vs %v", trial, step, ids(qr), ids(mr))
						}
						q.ForceAppend(it)
						m.forceAppend(it)
					case 4: // AppendPurge
						it := Item{Kind: Data, View: view(), Meta: streams[rng.Intn(len(streams))].next(rng)}
						qp, qe := q.AppendPurge(it)
						mp := len(m.purgeFor(it))
						me := m.append(it)
						if qp != mp || (qe == nil) != (me == nil) {
							t.Fatalf("trial %d step %d: AppendPurge (%d,%v) vs (%d,%v)", trial, step, qp, qe, mp, me)
						}
					case 5: // control marker
						it := Item{Kind: Control, View: view(), Ctl: step}
						q.ForceAppend(it)
						m.forceAppend(it)
					case 6, 7: // consume
						qi, qok := q.PopHead()
						mi, mok := m.popHead()
						if qok != mok || (qok && id(qi) != id(mi)) {
							t.Fatalf("trial %d step %d: PopHead (%+v,%v) vs (%+v,%v)", trial, step, id(qi), qok, id(mi), mok)
						}
					case 8: // full sweep
						if qr, mr := q.Purge(), m.purge(); qr != mr {
							t.Fatalf("trial %d step %d: Purge %d vs %d", trial, step, qr, mr)
						}
					case 9: // view-change garbage collection
						v := uint64(1 + rng.Intn(2))
						f := func(it Item) bool { return it.View == v && it.Meta.Seq%3 == 0 }
						if qr, mr := q.RemoveIf(f), m.removeIf(f); qr != mr {
							t.Fatalf("trial %d step %d: RemoveIf %d vs %d", trial, step, qr, mr)
						}
					}
					compareState(t, step, q, m)
				}
			}
		})
	}
}

// coverProbes builds obsolete.Msg probes around the queue's current
// contents: an exact queued message, a perturbed sequence number, and an
// unknown sender.
func coverProbes(rng *rand.Rand, q *Queue) []obsolete.Msg {
	probes := []obsolete.Msg{{Sender: "nobody", Seq: ident.Seq(1 + rng.Intn(20))}}
	snap := q.Snapshot()
	if len(snap) == 0 {
		return probes
	}
	it := snap[rng.Intn(len(snap))]
	if it.Kind != Data {
		return probes
	}
	probes = append(probes, it.Meta)
	off := it.Meta
	off.Seq = ident.Seq(uint64(off.Seq) + uint64(rng.Intn(5)) - 2)
	probes = append(probes, off)
	return probes
}

// TestDifferentialScanMatchesIndexed strips the capability from each
// sender-local encoding (wrapping it in obsolete.Func) and checks the
// retained linear-scan path agrees with the indexed path operation by
// operation — the two implementations must be observationally identical.
func TestDifferentialScanMatchesIndexed(t *testing.T) {
	const k = 8
	rels := []obsolete.Relation{
		obsolete.Tagging{},
		obsolete.Enumeration{},
		obsolete.KEnumeration{K: k},
	}
	for _, rel := range rels {
		rel := rel
		t.Run(rel.Name(), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				rng := rand.New(rand.NewSource(int64(31*trial + 3)))
				indexed := New(rel, 8)
				scan := New(obsolete.Func{Label: rel.Name(), F: rel.Obsoletes}, 8)
				if !indexed.Indexed() || scan.Indexed() {
					t.Fatal("capability detection broken")
				}

				senders := []ident.PID{"a", "b"}
				trackers := map[ident.PID]*obsolete.KTracker{}
				taggingSeq := map[ident.PID]ident.Seq{}
				for _, p := range senders {
					trackers[p] = obsolete.NewKTracker(k)
				}
				next := func(p ident.PID) obsolete.Msg {
					switch rel.(type) {
					case obsolete.Tagging:
						taggingSeq[p]++
						return obsolete.Msg{Sender: p, Seq: taggingSeq[p], Annot: obsolete.TagAnnot(uint32(rng.Intn(3)))}
					default:
						tr := trackers[p]
						var direct []ident.Seq
						if last := tr.Seq(); last > 0 && rng.Intn(2) == 0 {
							direct = append(direct, last)
						}
						seq, annot := tr.Next(direct...)
						return obsolete.Msg{Sender: p, Seq: seq, Annot: annot}
					}
				}

				for step := 0; step < 200; step++ {
					switch rng.Intn(6) {
					case 0, 1, 2:
						it := Item{Kind: Data, View: 1, Meta: next(senders[rng.Intn(len(senders))])}
						p1, e1 := indexed.AppendPurge(it)
						p2, e2 := scan.AppendPurge(it)
						if p1 != p2 || (e1 == nil) != (e2 == nil) {
							t.Fatalf("trial %d step %d: AppendPurge (%d,%v) vs (%d,%v)", trial, step, p1, e1, p2, e2)
						}
					case 3:
						i1, ok1 := indexed.PopHead()
						i2, ok2 := scan.PopHead()
						if ok1 != ok2 || (ok1 && id(i1) != id(i2)) {
							t.Fatalf("trial %d step %d: PopHead mismatch", trial, step)
						}
					case 4:
						if r1, r2 := indexed.Purge(), scan.Purge(); r1 != r2 {
							t.Fatalf("trial %d step %d: Purge %d vs %d", trial, step, r1, r2)
						}
					case 5:
						it := Item{Kind: Data, View: 1, Meta: next(senders[rng.Intn(len(senders))])}
						if c1, c2 := indexed.CountPurgeableFor(it), scan.CountPurgeableFor(it); c1 != c2 {
							t.Fatalf("trial %d step %d: CountPurgeableFor %d vs %d", trial, step, c1, c2)
						}
						indexed.ForceAppend(it)
						scan.ForceAppend(it)
					}
					// Coverage probes: a queued message (if any), a stale
					// seq, and a fresh one must all agree across paths.
					for _, probe := range coverProbes(rng, indexed) {
						if c1, c2 := indexed.Covers(probe), scan.Covers(probe); c1 != c2 {
							t.Fatalf("trial %d step %d: Covers(%v/%d) %v vs %v",
								trial, step, probe.Sender, probe.Seq, c1, c2)
						}
					}
					if indexed.Stats() != scan.Stats() {
						t.Fatalf("trial %d step %d: stats %+v vs %+v", trial, step, indexed.Stats(), scan.Stats())
					}
					g, w := ids(indexed.Snapshot()), ids(scan.Snapshot())
					if fmt.Sprint(g) != fmt.Sprint(w) {
						t.Fatalf("trial %d step %d: kept-sets\n indexed %v\n scan    %v", trial, step, g, w)
					}
				}
			}
		})
	}
}
