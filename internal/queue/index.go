package queue

import (
	"sort"

	"repro/internal/ident"
)

// Sender index. For sender-local relations (obsolete.SenderLocal) purge
// only ever relates entries of one (view, sender) stream, so the queue
// keeps, per stream, the seq-ordered list of its data entries' absolute
// ring positions. Purge operations then bound their candidate set to one
// stream — and, with a window hint (obsolete.Windowed), to a seq range
// found by binary search — instead of scanning the whole buffer.

type idxKey struct {
	view   uint64
	sender ident.PID
}

type idxEnt struct {
	seq ident.Seq
	pos uint64 // absolute ring position (see ring.go)
}

// idxAdd records a data entry. The protocol appends each stream in
// ascending seq order, making this an O(1) append; out-of-order inserts
// (possible only through direct queue use) fall back to a sorted insert.
func (q *Queue) idxAdd(k idxKey, seq ident.Seq, pos uint64) {
	s := q.idx[k]
	if len(s) == 0 {
		// First live entry of this (view, sender) stream: make sure the
		// view is in the sender's view list. Emptied streams keep their
		// map entry (and the view stays listed) so chained-purge
		// workloads, where a stream oscillates between one entry and
		// none on every message, reuse the backing arrays instead of
		// reallocating them per message — hence the membership scan
		// (view lists are one or two entries long) rather than assuming
		// absence.
		q.ensureView(k)
	}
	if n := len(s); n == 0 || s[n-1].seq <= seq {
		q.idx[k] = append(s, idxEnt{seq: seq, pos: pos})
		return
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].seq > seq })
	s = append(s, idxEnt{})
	copy(s[i+1:], s[i:])
	s[i] = idxEnt{seq: seq, pos: pos}
	q.idx[k] = s
}

// idxDrop removes the entry with the given seq and position.
func (q *Queue) idxDrop(k idxKey, seq ident.Seq, pos uint64) {
	s := q.idx[k]
	i := sort.Search(len(s), func(i int) bool { return s[i].seq >= seq })
	for i < len(s) && s[i].pos != pos {
		i++ // duplicate seqs: match by position
	}
	if i == len(s) {
		return
	}
	switch {
	case len(s) == 1: // necessarily i == 0
		// Truncate rather than reslice so the stream keeps its full
		// backing array: the next idxAdd reuses it instead of
		// allocating. Emptied streams stay in the map (see idxAdd) and
		// are garbage-collected by the next rebuildIndex.
		s = s[:0]
	case i == 0:
		// PopHead always drops the stream's oldest entry: reslice instead
		// of memmoving the whole slice, keeping pops O(1). The vacated
		// front cells are reclaimed when append reallocates.
		s = s[1:]
	default:
		s = append(s[:i], s[i+1:]...)
	}
	q.idx[k] = s
}

// ensureView records k.view in k.sender's view list if it is not already
// there. Retained empty streams keep their view listed, so registration
// must tolerate re-adding the first entry of a stream whose view never
// left the list.
func (q *Queue) ensureView(k idxKey) {
	vs := q.views[k.sender]
	for _, v := range vs {
		if v == k.view {
			return
		}
	}
	q.views[k.sender] = append(vs, k.view)
}

// rebuildIndex reconstructs the index from the ring after compaction has
// reassigned positions. Map entries and their backing arrays are reused
// across rebuilds — in the steady state a rebuild allocates nothing — and
// streams left with no live entries are dropped afterwards, so stale
// (view, sender) keys accumulate only between compactions.
func (q *Queue) rebuildIndex() {
	for k, s := range q.idx {
		q.idx[k] = s[:0]
	}
	for snd, vs := range q.views {
		q.views[snd] = vs[:0]
	}
	for p := q.head; p != q.tail; p++ {
		it := q.slot(p)
		if it.Kind == Data {
			q.idxAdd(idxKey{view: it.View, sender: it.Meta.Sender}, it.Meta.Seq, p)
		}
	}
	for k, s := range q.idx {
		if len(s) == 0 {
			delete(q.idx, k)
		}
	}
	for snd, vs := range q.views {
		if len(vs) == 0 {
			delete(q.views, snd)
		}
	}
}

// candidateFloor returns the first index in s whose entry can possibly be
// obsoleted by a message with sequence number seq under the configured
// window (0 when unbounded).
func (q *Queue) candidateFloor(s []idxEnt, seq ident.Seq) int {
	if q.window <= 0 || uint64(seq) <= uint64(q.window) {
		return 0
	}
	min := seq - ident.Seq(q.window)
	return sort.Search(len(s), func(i int) bool { return s[i].seq >= min })
}
