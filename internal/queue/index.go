package queue

import (
	"sort"

	"repro/internal/ident"
)

// Sender index. For sender-local relations (obsolete.SenderLocal) purge
// only ever relates entries of one (view, sender) stream, so the queue
// keeps, per stream, the seq-ordered list of its data entries' absolute
// ring positions. Purge operations then bound their candidate set to one
// stream — and, with a window hint (obsolete.Windowed), to a seq range
// found by binary search — instead of scanning the whole buffer.

type idxKey struct {
	view   uint64
	sender ident.PID
}

type idxEnt struct {
	seq ident.Seq
	pos uint64 // absolute ring position (see ring.go)
}

// idxAdd records a data entry. The protocol appends each stream in
// ascending seq order, making this an O(1) append; out-of-order inserts
// (possible only through direct queue use) fall back to a sorted insert.
func (q *Queue) idxAdd(k idxKey, seq ident.Seq, pos uint64) {
	s := q.idx[k]
	if len(s) == 0 {
		// First entry of this (view, sender) stream: record the view in
		// the sender's view list (emptied streams are always deleted, so
		// len 0 means the key was absent).
		q.views[k.sender] = append(q.views[k.sender], k.view)
	}
	if n := len(s); n == 0 || s[n-1].seq <= seq {
		q.idx[k] = append(s, idxEnt{seq: seq, pos: pos})
		return
	}
	i := sort.Search(len(s), func(i int) bool { return s[i].seq > seq })
	s = append(s, idxEnt{})
	copy(s[i+1:], s[i:])
	s[i] = idxEnt{seq: seq, pos: pos}
	q.idx[k] = s
}

// idxDrop removes the entry with the given seq and position.
func (q *Queue) idxDrop(k idxKey, seq ident.Seq, pos uint64) {
	s := q.idx[k]
	i := sort.Search(len(s), func(i int) bool { return s[i].seq >= seq })
	for i < len(s) && s[i].pos != pos {
		i++ // duplicate seqs: match by position
	}
	if i == len(s) {
		return
	}
	if i == 0 {
		// PopHead always drops the stream's oldest entry: reslice instead
		// of memmoving the whole slice, keeping pops O(1). The vacated
		// front cells are reclaimed when append reallocates.
		s = s[1:]
	} else {
		s = append(s[:i], s[i+1:]...)
	}
	if len(s) == 0 {
		q.dropStream(k)
	} else {
		q.idx[k] = s
	}
}

// dropStream deletes an emptied (view, sender) stream and removes its
// view from the sender's view list.
func (q *Queue) dropStream(k idxKey) {
	delete(q.idx, k)
	vs := q.views[k.sender]
	for i, v := range vs {
		if v == k.view {
			vs[i] = vs[len(vs)-1]
			vs = vs[:len(vs)-1]
			break
		}
	}
	if len(vs) == 0 {
		delete(q.views, k.sender)
	} else {
		q.views[k.sender] = vs
	}
}

// rebuildIndex reconstructs the index from the ring after compaction has
// reassigned positions.
func (q *Queue) rebuildIndex() {
	for k := range q.idx {
		delete(q.idx, k)
	}
	for s := range q.views {
		delete(q.views, s)
	}
	for p := q.head; p != q.tail; p++ {
		it := q.slot(p)
		if it.Kind == Data {
			q.idxAdd(idxKey{view: it.View, sender: it.Meta.Sender}, it.Meta.Seq, p)
		}
	}
}

// candidateFloor returns the first index in s whose entry can possibly be
// obsoleted by a message with sequence number seq under the configured
// window (0 when unbounded).
func (q *Queue) candidateFloor(s []idxEnt, seq ident.Seq) int {
	if q.window <= 0 || uint64(seq) <= uint64(q.window) {
		return 0
	}
	min := seq - ident.Seq(q.window)
	return sort.Search(len(s), func(i int) bool { return s[i].seq >= min })
}
