package queue

// Ring storage. Entries occupy a power-of-two circular buffer addressed
// by absolute positions: the entry at absolute position p lives in
// buf[p&mask], and [head, tail) is the physically occupied span (live
// entries plus purge tombstones). Absolute positions are stable for the
// lifetime of an entry — the sender index references them — and are only
// reassigned by compact, which rebuilds the index.

const minRing = 8

func (q *Queue) slot(p uint64) *Item { return &q.buf[p&q.mask] }

// push appends it at the tail, compacting or growing the ring when the
// physical span has no room, and maintains stats and the sender index.
func (q *Queue) push(it Item) {
	if it.Kind == kindDead {
		// A zero Kind is the tombstone marker: storing one would desync
		// the live counter (iteration skips it without accounting).
		panic("queue: Item with zero Kind")
	}
	if q.tail-q.head == uint64(len(q.buf)) {
		q.compact()
	}
	pos := q.tail
	*q.slot(pos) = it
	q.tail++
	q.live++
	if q.idx != nil && it.Kind == Data {
		q.idxAdd(idxKey{view: it.View, sender: it.Meta.Sender}, it.Meta.Seq, pos)
	}
	q.stats.Appended++
	if q.live > q.stats.MaxLen {
		q.stats.MaxLen = q.live
	}
}

// compact rewrites the live entries into a fresh ring sized to keep the
// buffer at most half full, squeezing out tombstones. Positions change,
// so the sender index is rebuilt. Amortised O(1) per append: a compaction
// that merely reclaims tombstones frees at least half the buffer, and one
// that doesn't doubles it.
func (q *Queue) compact() {
	n := minRing
	for n < 2*q.live {
		n <<= 1
	}
	buf := q.spare
	q.spare = nil
	if len(buf) != n {
		buf = make([]Item, n)
	}
	w := uint64(0)
	for p := q.head; p != q.tail; p++ {
		s := q.slot(p)
		if s.Kind == kindDead {
			continue
		}
		buf[w] = *s
		w++
	}
	// Zero the old ring so it pins no payloads, then retain it: a queue
	// cycling through tombstones at steady length compacts repeatedly at
	// the same size, and the swap makes those compactions allocation-free.
	old := q.buf
	clear(old)
	q.spare = old
	q.buf = buf
	q.mask = uint64(n - 1)
	q.head, q.tail = 0, w
	if q.idx != nil {
		q.rebuildIndex()
	}
}

// killSlot turns the slot at pos into a zeroed tombstone, releasing its
// payload. Callers handle the sender index themselves.
func (q *Queue) killSlot(pos uint64) {
	*q.slot(pos) = Item{}
	q.live--
}

// skipDeadHead advances head past tombstones so the head slot, if any, is
// live. Each tombstone is visited exactly once.
func (q *Queue) skipDeadHead() {
	for q.head != q.tail && q.slot(q.head).Kind == kindDead {
		q.head++
	}
}
