package queue

import (
	"sort"

	"repro/internal/obsolete"
)

// Purge operations. Two implementations coexist:
//
//   - indexed (idx != nil): candidates come from the incoming message's
//     own (view, sender) stream, seq-bounded by the relation's window —
//     O(window) per operation for k-enumeration, O(sender's entries)
//     otherwise.
//   - scan (idx == nil): the retained linear-scan reference walking every
//     entry, used for arbitrary relations (obsolete.Func) and as the
//     oracle the differential tests compare the indexed path against.
//
// Both remove an entry m exactly when a live entry n of the same view
// satisfies m ≺ n, examining entries in FIFO order; for per-sender
// seq-ordered streams (the protocol invariant) the two produce identical
// kept-sets, counts and stats.

// PurgeFor removes and returns the entries obsoleted by the (just received
// or about to be appended) message n. This is the arrival-time purge used
// on the hot path; Purge remains available for the full sweep. The removed
// items are returned so the caller can release per-sender flow-control
// credits. Allocation-sensitive callers should use PurgeForInto.
func (q *Queue) PurgeFor(n Item) []Item {
	removed, _ := q.purgeFor(n, nil, true)
	return removed
}

// PurgeForInto is PurgeFor appending the removed entries to dst (which may
// be a reused scratch slice) instead of allocating a fresh slice.
func (q *Queue) PurgeForInto(n Item, dst []Item) []Item {
	dst, _ = q.purgeFor(n, dst, true)
	return dst
}

// PurgeForN is PurgeFor for callers that only need the number of entries
// removed; it does not materialise them.
func (q *Queue) PurgeForN(n Item) int {
	_, c := q.purgeFor(n, nil, false)
	return c
}

func (q *Queue) purgeFor(n Item, dst []Item, collect bool) ([]Item, int) {
	if n.Kind != Data || q.live == 0 || q.never {
		return dst, 0
	}
	if q.idx != nil {
		return q.purgeForIndexed(n, dst, collect)
	}
	return q.purgeForScan(n, dst, collect)
}

func (q *Queue) purgeForIndexed(n Item, dst []Item, collect bool) ([]Item, int) {
	k := idxKey{view: n.View, sender: n.Meta.Sender}
	s := q.idx[k]
	lo := q.candidateFloor(s, n.Meta.Seq)
	removed := 0
	w := lo
	i := lo
	for ; i < len(s); i++ {
		ent := s[i]
		if ent.seq >= n.Meta.Seq {
			break // SenderLocal guarantees old.Seq < new.Seq
		}
		m := q.slot(ent.pos)
		if q.rel.Obsoletes(m.Meta, n.Meta) {
			if collect {
				dst = append(dst, *m)
			}
			q.killSlot(ent.pos)
			removed++
			continue
		}
		s[w] = ent
		w++
	}
	if removed > 0 {
		// s[:w] shares s's backing array, so an emptied stream keeps its
		// capacity for the next idxAdd (see index.go).
		q.idx[k] = append(s[:w], s[i:]...)
		q.stats.Purged += uint64(removed)
	}
	return dst, removed
}

func (q *Queue) purgeForScan(n Item, dst []Item, collect bool) ([]Item, int) {
	removed := 0
	for p := q.head; p != q.tail; p++ {
		m := q.slot(p)
		if m.Kind != Data || m.View != n.View {
			continue
		}
		if q.rel.Obsoletes(m.Meta, n.Meta) {
			if collect {
				dst = append(dst, *m)
			}
			q.killSlot(p)
			removed++
		}
	}
	q.stats.Purged += uint64(removed)
	return dst, removed
}

// CountPurgeableFor reports how many entries PurgeFor(n) would remove,
// without removing them. Used for the engine's all-or-nothing capacity
// check before committing a multicast.
func (q *Queue) CountPurgeableFor(n Item) int {
	if n.Kind != Data || q.live == 0 || q.never {
		return 0
	}
	c := 0
	if q.idx != nil {
		s := q.idx[idxKey{view: n.View, sender: n.Meta.Sender}]
		for i := q.candidateFloor(s, n.Meta.Seq); i < len(s) && s[i].seq < n.Meta.Seq; i++ {
			if q.rel.Obsoletes(q.slot(s[i].pos).Meta, n.Meta) {
				c++
			}
		}
		return c
	}
	for p := q.head; p != q.tail; p++ {
		m := q.slot(p)
		if m.Kind == Data && m.View == n.View && q.rel.Obsoletes(m.Meta, n.Meta) {
			c++
		}
	}
	return c
}

// Covers reports whether some queued data entry n satisfies m ⊑ n: m is a
// duplicate of n or obsoleted by it (the test transition t3 applies to an
// arriving message against this queue). Indexed queues answer from the
// sender index — binary search plus at most window candidates per view
// the sender has entries in — instead of scanning every entry.
//
// Coverage is deliberately view-blind, like the engine's t3 check:
// sequence numbers are global per sender, so a message queued under an
// older view still covers a late duplicate.
func (q *Queue) Covers(m obsolete.Msg) bool {
	if q.live == 0 {
		return false
	}
	if q.idx != nil {
		for _, v := range q.views[m.Sender] {
			s := q.idx[idxKey{view: v, sender: m.Sender}]
			lo := sort.Search(len(s), func(i int) bool { return s[i].seq >= m.Seq })
			for i := lo; i < len(s); i++ {
				if q.window > 0 && uint64(s[i].seq-m.Seq) > uint64(q.window) {
					break
				}
				if s[i].seq == m.Seq || q.rel.Obsoletes(m, q.slot(s[i].pos).Meta) {
					return true
				}
			}
		}
		return false
	}
	if q.never {
		// Under the empty relation only an exact duplicate covers.
		return q.AnyRef(func(it *Item) bool {
			return it.Kind == Data && it.Meta.Sender == m.Sender && it.Meta.Seq == m.Seq
		})
	}
	return q.AnyRef(func(it *Item) bool {
		return it.Kind == Data && obsolete.CoveredBy(q.rel, m, it.Meta)
	})
}

// Purge implements the purge function of Figure 1: repeatedly remove any
// data entry m such that another data entry m' of the same view with
// m ≺ m' is present. It returns the number of entries removed.
//
// Entries are examined in FIFO order and removed as found; a removed
// entry stops serving as a witness for later ones. This is the paper's
// while-loop executed in ascending partial-order position: witnesses are
// strictly greater in the order, so when each stream is queued in
// ascending sequence order every witness is examined — still present —
// after the entries it covers, and maximal elements are never removed,
// the invariant the correctness argument of §3.4 rests on.
func (q *Queue) Purge() int {
	if q.live < 2 || q.never {
		return 0
	}
	var removed int
	if q.idx != nil {
		removed = q.purgeSweepIndexed()
	} else {
		removed = q.purgeSweepScan()
	}
	q.stats.Purged += uint64(removed)
	return removed
}

// purgeSweepIndexed sweeps one (view, sender) stream at a time: an entry's
// witnesses can only be later entries of its own stream, at most window
// sequence numbers ahead.
func (q *Queue) purgeSweepIndexed() int {
	removed := 0
	for k, s := range q.idx {
		n := len(s)
		out := s[:0]
		for i := 0; i < n; i++ {
			ent := s[i]
			m := q.slot(ent.pos)
			dead := false
			for j := i + 1; j < n; j++ {
				if q.window > 0 && uint64(s[j].seq-ent.seq) > uint64(q.window) {
					break
				}
				if q.rel.Obsoletes(m.Meta, q.slot(s[j].pos).Meta) {
					dead = true
					break
				}
			}
			if dead {
				q.killSlot(ent.pos)
				removed++
				continue
			}
			out = append(out, ent)
		}
		if len(out) != n {
			q.idx[k] = out
		}
	}
	return removed
}

// purgeSweepScan is the reference full sweep: for each live entry, look
// for a live witness anywhere in the queue.
func (q *Queue) purgeSweepScan() int {
	removed := 0
	for p := q.head; p != q.tail; p++ {
		m := q.slot(p)
		if m.Kind != Data {
			continue
		}
		for x := q.head; x != q.tail; x++ {
			if x == p {
				continue
			}
			n := q.slot(x)
			if n.Kind != Data || n.View != m.View {
				continue
			}
			if q.rel.Obsoletes(m.Meta, n.Meta) {
				q.killSlot(p)
				removed++
				break
			}
		}
	}
	return removed
}
