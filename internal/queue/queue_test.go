package queue

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/obsolete"
)

func dataItem(view uint64, sender ident.PID, seq ident.Seq, tag uint32) Item {
	return Item{
		Kind:    Data,
		View:    view,
		Meta:    obsolete.Msg{Sender: sender, Seq: seq, Annot: obsolete.TagAnnot(tag)},
		Payload: []byte{byte(seq)},
	}
}

func ctlItem(view uint64) Item {
	return Item{Kind: Control, View: view, Ctl: view}
}

func seqs(q *Queue) []ident.Seq {
	var out []ident.Seq
	q.Each(func(it Item) bool {
		out = append(out, it.Meta.Seq)
		return true
	})
	return out
}

func TestFIFOOrder(t *testing.T) {
	q := New(obsolete.Empty{}, 0)
	for i := 1; i <= 5; i++ {
		if err := q.Append(dataItem(1, "p", ident.Seq(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		it, ok := q.PopHead()
		if !ok || it.Meta.Seq != ident.Seq(i) {
			t.Fatalf("pop %d: got %v,%v", i, it.Meta.Seq, ok)
		}
	}
	if _, ok := q.PopHead(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestPurgeRemovesObsoleteKeepsMaximal(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	// Updates to items 1,2,1,3,1 — purging should leave 2,3 and the last 1.
	tags := []uint32{1, 2, 1, 3, 1}
	for i, tag := range tags {
		if err := q.Append(dataItem(1, "p", ident.Seq(i+1), tag)); err != nil {
			t.Fatal(err)
		}
	}
	removed := q.Purge()
	if removed != 2 {
		t.Fatalf("Purge removed %d, want 2", removed)
	}
	got := seqs(q)
	want := []ident.Seq{2, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("surviving seqs %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("surviving seqs %v, want %v (FIFO order must be preserved)", got, want)
		}
	}
}

func TestPurgeIgnoresCrossViewAndControl(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	if err := q.Append(dataItem(1, "p", 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := q.Append(ctlItem(2)); err != nil {
		t.Fatal(err)
	}
	// Same item, later seq, but a different view: must not purge.
	if err := q.Append(dataItem(2, "p", 2, 7)); err != nil {
		t.Fatal(err)
	}
	if removed := q.Purge(); removed != 0 {
		t.Fatalf("cross-view purge removed %d entries", removed)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
}

func TestAppendFullAndPurgeToMakeRoom(t *testing.T) {
	q := New(obsolete.Tagging{}, 3)
	for i := 1; i <= 3; i++ {
		if err := q.Append(dataItem(1, "p", ident.Seq(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// All distinct items: nothing purgeable, append must fail.
	if err := q.Append(dataItem(1, "p", 4, 99)); !errors.Is(err, ErrFull) {
		t.Fatalf("Append to full queue: err = %v, want ErrFull", err)
	}
	if got := q.Stats().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	// An update of item 2 purges the old one on arrival, making room.
	purged, err := q.AppendPurge(dataItem(1, "p", 5, 2))
	if err != nil {
		t.Fatalf("AppendPurge: %v", err)
	}
	if purged != 1 {
		t.Fatalf("AppendPurge purged %d, want 1", purged)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
}

func TestAppendFullTriggersInternalPurge(t *testing.T) {
	q := New(obsolete.Tagging{}, 2)
	if err := q.Append(dataItem(1, "p", 1, 7)); err != nil {
		t.Fatal(err)
	}
	if err := q.Append(dataItem(1, "p", 2, 7)); err != nil {
		t.Fatal(err)
	}
	// Queue is full but holds an obsolete entry; Append purges to fit.
	if err := q.Append(dataItem(1, "p", 3, 8)); err != nil {
		t.Fatalf("Append should purge to make room: %v", err)
	}
	got := seqs(q)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("contents %v, want [2 3]", got)
	}
}

func TestPurgeFor(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	for i, tag := range []uint32{1, 2, 1} {
		if err := q.Append(dataItem(1, "p", ident.Seq(i+1), tag)); err != nil {
			t.Fatal(err)
		}
	}
	// Incoming update of item 1 purges both earlier updates of item 1.
	if c := q.CountPurgeableFor(dataItem(1, "p", 4, 1)); c != 2 {
		t.Fatalf("CountPurgeableFor = %d, want 2", c)
	}
	removed := q.PurgeFor(dataItem(1, "p", 4, 1))
	if len(removed) != 2 {
		t.Fatalf("PurgeFor removed %d, want 2", len(removed))
	}
	if removed[0].Meta.Seq != 1 || removed[1].Meta.Seq != 3 {
		t.Fatalf("PurgeFor removed %v", removed)
	}
	got := seqs(q)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("contents %v, want [2]", got)
	}
	if n := q.PurgeFor(ctlItem(1)); n != nil {
		t.Fatalf("PurgeFor(control) removed %d, want 0", len(n))
	}
}

func TestRemoveIfAndSnapshot(t *testing.T) {
	q := New(obsolete.Empty{}, 0)
	for i := 1; i <= 4; i++ {
		if err := q.Append(dataItem(uint64(i%2), "p", ident.Seq(i), uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	removed := q.RemoveIf(func(it Item) bool { return it.View == 0 })
	if removed != 2 {
		t.Fatalf("RemoveIf removed %d, want 2", removed)
	}
	snap := q.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot len %d, want 2", len(snap))
	}
	// Snapshot must be independent.
	snap[0].Meta.Seq = 999
	if got := seqs(q)[0]; got == 999 {
		t.Fatal("Snapshot aliases queue storage")
	}
}

func TestStatsCounters(t *testing.T) {
	q := New(obsolete.Tagging{}, 0)
	for i := 1; i <= 3; i++ {
		if err := q.Append(dataItem(1, "p", ident.Seq(i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	q.Purge()
	q.PopHead()
	st := q.Stats()
	if st.Appended != 3 || st.Purged != 2 || st.Popped != 1 || st.MaxLen != 3 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestAnyAndPeek(t *testing.T) {
	q := New(obsolete.Empty{}, 0)
	if _, ok := q.PeekHead(); ok {
		t.Fatal("PeekHead on empty queue")
	}
	if err := q.Append(dataItem(1, "p", 1, 1)); err != nil {
		t.Fatal(err)
	}
	it, ok := q.PeekHead()
	if !ok || it.Meta.Seq != 1 {
		t.Fatal("PeekHead wrong")
	}
	if q.Len() != 1 {
		t.Fatal("PeekHead must not remove")
	}
	if !q.Any(func(it Item) bool { return it.Meta.Seq == 1 }) {
		t.Fatal("Any failed to find entry")
	}
	if q.Any(func(it Item) bool { return it.Meta.Seq == 2 }) {
		t.Fatal("Any found phantom entry")
	}
}

func TestNilRelationDefaultsToEmpty(t *testing.T) {
	q := New(nil, 0)
	if err := q.Append(dataItem(1, "p", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Append(dataItem(1, "p", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if removed := q.Purge(); removed != 0 {
		t.Fatal("nil relation must behave as Empty (plain VS)")
	}
}

// TestPurgePropertyMaximalSurvive drives random k-enumeration streams
// through the queue and checks the §3.4 invariant: purge never discards
// maximal elements, survivors keep FIFO order, and every removed entry is
// covered by some survivor.
func TestPurgePropertyMaximalSurvive(t *testing.T) {
	const k = 16
	rel := obsolete.KEnumeration{K: k}
	rng := rand.New(rand.NewSource(123))

	for trial := 0; trial < 100; trial++ {
		tr := obsolete.NewKTracker(k)
		n := 2 + rng.Intn(20)
		var items []Item
		for i := 0; i < n; i++ {
			var direct []ident.Seq
			for j := range items {
				d := len(items) - j
				if d <= k && rng.Intn(4) == 0 {
					direct = append(direct, items[j].Meta.Seq)
				}
			}
			s, a := tr.Next(direct...)
			items = append(items, Item{
				Kind: Data, View: 1,
				Meta: obsolete.Msg{Sender: "p", Seq: s, Annot: a},
			})
		}
		q := New(rel, 0)
		for _, it := range items {
			if err := q.Append(it); err != nil {
				t.Fatal(err)
			}
		}
		q.Purge()
		surv := q.Snapshot()

		// Maximal elements (no later message obsoletes them) must survive.
		for _, m := range items {
			maximal := true
			for _, x := range items {
				if rel.Obsoletes(m.Meta, x.Meta) {
					maximal = false
					break
				}
			}
			if !maximal {
				continue
			}
			found := false
			for _, s := range surv {
				if s.Meta.Seq == m.Meta.Seq {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: maximal message %d was purged", trial, m.Meta.Seq)
			}
		}
		// Every removed entry must be covered by a survivor through a
		// chain of the true (transitive) relation. The k-enumeration
		// encoding truncates transitivity at the window edge, but the
		// application-level relation is a transitive partial order, so
		// chain coverage is the invariant that matters (§3.4).
		surviving := make(map[ident.Seq]bool, len(surv))
		for _, s := range surv {
			surviving[s.Meta.Seq] = true
		}
		var chainCovered func(m Item, depth int) bool
		chainCovered = func(m Item, depth int) bool {
			if depth > len(items) {
				return false
			}
			for _, x := range items {
				if !rel.Obsoletes(m.Meta, x.Meta) {
					continue
				}
				if surviving[x.Meta.Seq] || chainCovered(x, depth+1) {
					return true
				}
			}
			return false
		}
		for _, m := range items {
			if surviving[m.Meta.Seq] {
				continue
			}
			if !chainCovered(m, 0) {
				t.Fatalf("trial %d: purged message %d has no surviving cover chain", trial, m.Meta.Seq)
			}
		}
		// FIFO order preserved.
		for i := 1; i < len(surv); i++ {
			if surv[i-1].Meta.Seq >= surv[i].Meta.Seq {
				t.Fatalf("trial %d: FIFO order broken: %d before %d",
					trial, surv[i-1].Meta.Seq, surv[i].Meta.Seq)
			}
		}
	}
}
