package e2e

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/obsolete"
	"repro/test/chaosharness"
)

// TestPartitionMergeOverTCP is the black-box partition-healing scenario
// over real processes and real TCP: a five-node group is cut 3|2, the
// majority evicts the minority on the founding lineage while the
// minority splits into its own, both sides multicast while divergent,
// and after the links heal the probe/merge handshake drives everyone
// into one union view. The test then asserts — from the JSONL logs, not
// the engines' say-so — that each side delivered the other's surviving
// backlog before the union-view marker, and replays the combined logs of
// both sub-views through the §3.2 oracle.
func TestPartitionMergeOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("merge e2e spawns real processes; skipped in -short")
	}
	const seed = 77
	opt := chaosharness.Options{
		Bin:    chaosBinary(t),
		LogDir: logDir(t, seed),
		Seed:   seed,
		Heal:   true,
	}
	c := chaosharness.NewCluster(opt)
	defer c.QuitAll()

	nodes := []string{"m0", "m1", "m2", "m3", "m4"}
	maj, min := nodes[:3], nodes[3:]
	for _, n := range nodes {
		if _, err := c.Start(n); err != nil {
			t.Fatalf("start %s: %v", n, err)
		}
	}
	if err := c.Introduce(); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := c.Post(n, "/create", map[string]any{"group": 1, "members": nodes}); err != nil {
			t.Fatalf("create on %s: %v", n, err)
		}
	}
	waitFor(t, "initial view on every node", func() bool {
		for _, n := range nodes {
			st, err := c.Stats(n, 1)
			if err != nil || len(st.Members) != len(nodes) {
				return false
			}
		}
		return true
	})

	// Cut every majority↔minority link in both directions.
	for _, n := range min {
		if err := c.Post(n, "/fault", map[string]any{"op": "cut", "peers": maj}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range maj {
		if err := c.Post(n, "/fault", map[string]any{"op": "cut", "peers": min}); err != nil {
			t.Fatal(err)
		}
	}

	// The majority completes an eviction on epoch 0; the minority splits
	// into a fresh lineage with the same numeric view id.
	waitFor(t, "majority eviction view", func() bool {
		for _, n := range maj {
			st, err := c.Stats(n, 1)
			if err != nil || st.Epoch != 0 || len(st.Members) != len(maj) {
				return false
			}
		}
		return true
	})
	waitFor(t, "minority split view", func() bool {
		for _, n := range min {
			st, err := c.Stats(n, 1)
			if err != nil || st.Epoch == 0 || len(st.Members) != len(min) {
				return false
			}
		}
		return true
	})

	// Divergent traffic: seqs 1..3 on each side, invisible to the other
	// until the merge carries them across.
	if err := c.Post(maj[0], "/multicast", map[string]any{"group": 1, "count": 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Post(min[0], "/multicast", map[string]any{"group": 1, "count": 3}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "divergent traffic sent", func() bool {
		for _, n := range []string{maj[0], min[0]} {
			st, err := c.Stats(n, 1)
			if err != nil || st.Sent < 3 || st.Queued > 0 {
				return false
			}
		}
		return true
	})

	// Heal all links; the heartbeat detector restores the far side and
	// the probe beacons discover the divergent lineage.
	for _, n := range nodes {
		if err := c.Post(n, "/fault", map[string]any{"op": "heal"}); err != nil {
			t.Fatal(err)
		}
	}

	var unionView, unionEpoch uint64
	waitFor(t, "union view on every node", func() bool {
		first := true
		for _, n := range nodes {
			st, err := c.Stats(n, 1)
			if err != nil || len(st.Members) != len(nodes) {
				return false
			}
			if first {
				unionView, unionEpoch = st.View, st.Epoch
				first = false
			} else if st.View != unionView || st.Epoch != unionEpoch {
				return false
			}
		}
		return true
	})
	if unionEpoch == 0 {
		t.Fatalf("union view e%x/v%d is on the founding lineage — that was a state transfer, not a merge", unionEpoch, unionView)
	}
	t.Logf("union view e%x/v%d across all %d nodes", unionEpoch, unionView, len(nodes))

	c.QuitAll() // flush the logs before reading them

	// Each side must deliver the far side's surviving backlog before the
	// union-view marker. Under the chained k-enumeration annotation the
	// last message of a burst covers the earlier ones, so seq 3 is the
	// delivery that must be present; earlier seqs may legitimately have
	// been purged.
	for _, n := range maj {
		assertDeliveredBeforeUnion(t, c, n, min[0], 3, unionView, unionEpoch)
	}
	for _, n := range min {
		assertDeliveredBeforeUnion(t, c, n, maj[0], 3, unionView, unionEpoch)
	}

	// And the combined logs of both sub-views satisfy §3.2.
	rel := obsolete.KEnumeration{K: c.Options().K}
	for _, err := range chaosharness.Check(rel, c.Logs(), c.Killed(), seed) {
		t.Errorf("oracle: %v", err)
	}
}

// mergeLogEvent is the subset of the svs-chaos JSONL record the merge
// assertions need.
type mergeLogEvent struct {
	Ev     string `json:"ev"`
	View   uint64 `json:"view"`
	Epoch  uint64 `json:"epoch"`
	Sender string `json:"sender"`
	Seq    uint64 `json:"seq"`
}

// assertDeliveredBeforeUnion scans node's JSONL log for a delivery of
// (sender, seq) strictly before the install of the union view.
func assertDeliveredBeforeUnion(t *testing.T, c *chaosharness.Cluster, node, sender string, seq, unionView, unionEpoch uint64) {
	t.Helper()
	path, err := nodeLog(c, node)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		var e mergeLogEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			continue
		}
		switch e.Ev {
		case "deliver":
			if e.Sender == sender && e.Seq == seq {
				return
			}
		case "install":
			if e.View == unionView && e.Epoch == unionEpoch {
				t.Errorf("%s: installed union view e%x/v%d without delivering %s:%d first",
					node, unionEpoch, unionView, sender, seq)
				return
			}
		}
	}
	t.Errorf("%s: log ended without the union view install or a delivery of %s:%d", node, sender, seq)
}

// nodeLog finds the JSONL log path of one node in the cluster's log set.
func nodeLog(c *chaosharness.Cluster, node string) (string, error) {
	want := node + ".jsonl"
	for _, p := range c.Logs() {
		if len(p) >= len(want) && p[len(p)-len(want):] == want {
			return p, nil
		}
	}
	return "", fmt.Errorf("no log for node %s", node)
}

// TestPartitionMergeRunnerSchedule drives the seeded generator's own
// heal and reboot actions end to end: a schedule biased to healing
// actions runs against a live cluster and the oracle replays the logs.
// This is the soak-style entry point the CI merge-smoke job uses.
func TestPartitionMergeRunnerSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("merge e2e spawns real processes; skipped in -short")
	}
	seed := *chaosSeed
	opt := chaosharness.Options{
		Bin:    chaosBinary(t),
		LogDir: logDir(t, seed),
		Seed:   seed,
		Heal:   true,
	}
	c := chaosharness.NewCluster(opt)
	defer c.QuitAll()

	cfg := chaosharness.GenConfig{Nodes: 5, Groups: 1, Heal: true}
	r := &chaosharness.Runner{C: c, Logf: t.Logf, SettleTimeout: 120 * time.Second}
	if err := r.Bootstrap(cfg); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	actions := chaosharness.Gen(seed, 40, cfg)
	heals, reboots := 0, 0
	for _, a := range actions {
		switch a.Kind {
		case chaosharness.ActHeal:
			heals++
		case chaosharness.ActReboot:
			reboots++
		}
	}
	if heals == 0 && reboots == 0 {
		t.Fatalf("seed=%d generated no healing actions in 40 — pick a seed that exercises them", seed)
	}
	t.Logf("schedule: %d heal, %d reboot actions", heals, reboots)
	if err := r.Run(actions); err != nil {
		t.Fatalf("seed=%d: %v", seed, err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("seed=%d: final barrier: %v", seed, err)
	}
	c.QuitAll()

	rel := obsolete.KEnumeration{K: c.Options().K}
	for _, err := range chaosharness.Check(rel, c.Logs(), c.Killed(), seed) {
		t.Errorf("oracle: %v", err)
	}
}
