// Package e2e black-box tests the whole stack: real svs-chaos processes
// over real TCP, a seeded chaos schedule, and the internal/check oracle
// replaying every process's event log afterwards.
//
// Failures always print the seed; replay with
//
//	go test -run TestChaos ./test/e2e/ -args -chaos.seed=<seed> -chaos.actions=<n>
package e2e

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obsolete"
	"repro/test/chaosharness"
)

var (
	chaosActions = flag.Int("chaos.actions", 60, "length of the generated chaos schedule")
	chaosSeed    = flag.Int64("chaos.seed", 42, "chaos schedule seed (printed on failure for replay)")
	chaosSoak    = flag.Duration("chaos.duration", 0, "soak mode: repeat runs with successive seeds until this much time has elapsed")
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

func chaosBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "svs-chaos-bin")
		if err != nil {
			buildErr = err
			return
		}
		// The directory is leaked for the lifetime of the test binary; it
		// holds a single executable and the OS reclaims temp space.
		buildBin, buildErr = chaosharness.BuildBinary(dir)
	})
	if buildErr != nil {
		t.Fatalf("building svs-chaos: %v", buildErr)
	}
	return buildBin
}

// logDir returns where node event logs go: CHAOS_ARTIFACT_DIR if set
// (CI uploads it on failure), else a per-test temp dir.
func logDir(t *testing.T, seed int64) string {
	if base := os.Getenv("CHAOS_ARTIFACT_DIR"); base != "" {
		dir := filepath.Join(base, fmt.Sprintf("seed-%d", seed))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// TestChaos is the headline end-to-end run: bootstrap a cluster, expand
// the seed into a schedule, apply it, flush, and verify every node's
// log against the paper's §3.2 safety properties.
func TestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e spawns real processes; skipped in -short")
	}
	if *chaosSoak > 0 {
		deadline := time.Now().Add(*chaosSoak)
		for i := 0; ; i++ {
			seed := *chaosSeed + int64(i)
			t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
				runChaos(t, seed, *chaosActions)
			})
			if t.Failed() || !time.Now().Before(deadline) {
				return
			}
		}
	}
	runChaos(t, *chaosSeed, *chaosActions)
}

func runChaos(t *testing.T, seed int64, nActions int) {
	replay := fmt.Sprintf("replay: go test -run TestChaos ./test/e2e/ -args -chaos.seed=%d -chaos.actions=%d", seed, nActions)
	t.Logf("chaos run: seed=%d actions=%d (%s)", seed, nActions, replay)

	opt := chaosharness.Options{
		Bin:    chaosBinary(t),
		LogDir: logDir(t, seed),
		Seed:   seed,
	}
	c := chaosharness.NewCluster(opt)
	defer c.QuitAll()

	cfg := chaosharness.GenConfig{Nodes: 4, Groups: 2}
	r := &chaosharness.Runner{C: c, Logf: t.Logf}
	if err := r.Bootstrap(cfg); err != nil {
		t.Fatalf("bootstrap: %v\n%s", err, replay)
	}
	actions := chaosharness.Gen(seed, nActions, cfg)
	if err := r.Run(actions); err != nil {
		t.Fatalf("seed=%d: %v\n%s", seed, err, replay)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("seed=%d: final barrier: %v\n%s", seed, err, replay)
	}
	c.QuitAll() // flush logs before reading them

	rel := obsolete.KEnumeration{K: c.Options().K}
	for _, err := range chaosharness.Check(rel, c.Logs(), c.Killed(), seed) {
		t.Errorf("oracle: %v", err)
	}
	if t.Failed() {
		t.Log(replay)
	}
}

// TestChaosDeterministicActions pins the replay guarantee at the e2e
// level: the schedule the harness will apply for a given seed is
// bit-identical across expansions.
func TestChaosDeterministicActions(t *testing.T) {
	cfg := chaosharness.GenConfig{Nodes: 4, Groups: 2}
	a := chaosharness.Gen(*chaosSeed, *chaosActions, cfg)
	b := chaosharness.Gen(*chaosSeed, *chaosActions, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("seed %d expanded to two different schedules", *chaosSeed)
	}
}

// TestChaosOracleCatchesInjectedBug proves the oracle has teeth. A
// scripted run forces semantic purging (a blocked consumer + a chained
// obsolescence stream), which is safe under the k-enumeration relation
// the nodes ran with — but re-checking the same logs under
// obsolete.Empty (as if purging covered nothing) must surface SVS
// violations naming the seed and the offending view. If disabling
// purge coverage does NOT trip the oracle, the oracle is vacuous.
func TestChaosOracleCatchesInjectedBug(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e spawns real processes; skipped in -short")
	}
	const seed = 1
	opt := chaosharness.Options{
		Bin:    chaosBinary(t),
		LogDir: logDir(t, seed),
		Seed:   seed,
		Buffer: 4, // small windows so the blocked consumer forces purging fast
	}
	c := chaosharness.NewCluster(opt)
	defer c.QuitAll()

	cfg := chaosharness.GenConfig{Nodes: 3, Groups: 1}
	r := &chaosharness.Runner{C: c, Logf: t.Logf}
	if err := r.Bootstrap(cfg); err != nil {
		t.Fatalf("bootstrap: %v", err)
	}

	// Block n02's delivery pump, then pour a chained-obsolescence stream
	// at it: flow control fills, and the sender purges obsolete messages
	// n02 will consequently never receive.
	if err := c.Post("n02", "/block", map[string]any{"group": 1, "blocked": true}); err != nil {
		t.Fatal(err)
	}
	const burst = 120
	if err := c.Post("n00", "/multicast", map[string]any{"group": 1, "count": burst}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "n00 to send the burst", func() bool {
		st, err := c.Stats("n00", 1)
		return err == nil && st.Sent >= burst
	})
	if err := c.Post("n02", "/block", map[string]any{"group": 1, "blocked": false}); err != nil {
		t.Fatal(err)
	}

	// A join forces a view change, so every member logs an install — the
	// anchor the SVS and FIFO-SR checks hang their constraints on.
	if err := r.Run([]chaosharness.Action{{Kind: chaosharness.ActJoin, Node: "n03", Group: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("final barrier: %v", err)
	}
	c.QuitAll()

	// Under the relation the nodes actually ran with, the run is safe.
	rel := obsolete.KEnumeration{K: c.Options().K}
	if errs := chaosharness.Check(rel, c.Logs(), c.Killed(), seed); len(errs) != 0 {
		for _, err := range errs {
			t.Errorf("unexpected violation under the real relation: %v", err)
		}
	}

	// Under Empty, the purging the nodes performed is unexcused loss.
	errs := chaosharness.Check(obsolete.Empty{}, c.Logs(), c.Killed(), seed)
	if len(errs) == 0 {
		t.Fatal("oracle reported no violations with purge coverage disabled — it is vacuous")
	}
	found := false
	for _, err := range errs {
		s := err.Error()
		if strings.Contains(s, fmt.Sprintf("seed=%d", seed)) && strings.Contains(s, "view") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("violations lack the seed and offending view; first: %v", errs[0])
	}
	t.Logf("oracle correctly flagged %d violations with coverage disabled; first: %v", len(errs), errs[0])
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
