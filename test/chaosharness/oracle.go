package chaosharness

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/check"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

// logEvent mirrors the svs-chaos JSONL record.
type logEvent struct {
	Ev      string   `json:"ev"` // mcast | deliver | install | expelled
	P       string   `json:"p"`
	G       uint32   `json:"g"`
	View    uint64   `json:"view"`
	Epoch   uint64   `json:"epoch,omitempty"` // lineage epoch (0 = founding lineage)
	Sender  string   `json:"sender,omitempty"`
	Seq     uint64   `json:"seq,omitempty"`
	Annot   string   `json:"annot,omitempty"` // base64
	Members []string `json:"members,omitempty"`
}

// ref is the lineage-aware view reference of the record.
func (e logEvent) ref() ident.ViewRef {
	return ident.ViewRef{Epoch: ident.Epoch(e.Epoch), ID: ident.ViewID(e.View)}
}

func (e logEvent) meta() (obsolete.Msg, error) {
	var annot []byte
	if e.Annot != "" {
		b, err := base64.StdEncoding.DecodeString(e.Annot)
		if err != nil {
			return obsolete.Msg{}, fmt.Errorf("bad annot %q: %w", e.Annot, err)
		}
		annot = b
	}
	return obsolete.Msg{Sender: ident.PID(e.Sender), Seq: ident.Seq(e.Seq), Annot: annot}, nil
}

// Check replays the JSONL event logs of a whole cluster run — one file
// per process — through the internal/check oracle, one Recorder per
// group, and returns every safety violation found. rel must be the
// obsolescence relation the nodes actually ran with (passing a weaker
// relation, e.g. obsolete.Empty, makes the purging the nodes performed
// look like message loss — which is exactly how the guard test proves
// the oracle has teeth).
//
// killed is the set of processes that were SIGKILLed: a kill can land
// between an engine committing a multicast and the driver writing the
// mcast record, so for killed senders only, multicast records are
// synthesized from delivery records (which carry the same metadata).
// Survivor logs get no such leniency — a delivery with no matching
// mcast record from a live sender is a real integrity violation.
//
// Every error is prefixed with the seed so a failing run is replayable
// straight from the test output.
func Check(rel obsolete.Relation, logPaths []string, killed map[string]bool, seed int64) []error {
	type groupState struct {
		rec *check.Recorder
		// mcast[id] is set when a real mcast record was seen; deliveries
		// remember the view a killed sender's message was sent in so
		// synthesis can reconstruct the record.
		mcast     map[obsolete.MsgID]bool
		delivered map[obsolete.MsgID]logEvent
	}
	groups := make(map[uint32]*groupState)
	state := func(g uint32) *groupState {
		gs := groups[g]
		if gs == nil {
			// initView stays 0 (never a real view): founders log an
			// explicit install of view 1 at creation, and joiners must
			// not inherit the "initial view is installed implicitly by
			// everyone" exemption — they were genuinely absent.
			gs = &groupState{
				rec:       check.NewRecorder(rel),
				mcast:     make(map[obsolete.MsgID]bool),
				delivered: make(map[obsolete.MsgID]logEvent),
			}
			groups[g] = gs
		}
		return gs
	}

	var errs []error
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("seed=%d: "+format, append([]any{seed}, args...)...))
	}

	for _, path := range logPaths {
		f, err := os.Open(path)
		if err != nil {
			fail("open log: %v", err)
			continue
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		line := 0
		for sc.Scan() {
			line++
			raw := sc.Bytes()
			if len(raw) == 0 {
				continue
			}
			var e logEvent
			if err := json.Unmarshal(raw, &e); err != nil {
				// A SIGKILL can truncate the final line mid-write; records
				// are appended in order, so dropping the tail only removes
				// constraints, never fabricates them. Anything else in the
				// file is corruption worth reporting.
				if sc.Scan() {
					fail("%s:%d: corrupt record mid-file: %v", path, line, err)
				}
				break
			}
			gs := state(e.G)
			switch e.Ev {
			case "mcast":
				meta, err := e.meta()
				if err != nil {
					fail("%s:%d: %v", path, line, err)
					continue
				}
				gs.rec.MulticastRef(meta, e.ref())
				gs.mcast[meta.ID()] = true
			case "deliver":
				meta, err := e.meta()
				if err != nil {
					fail("%s:%d: %v", path, line, err)
					continue
				}
				gs.rec.DeliverRef(ident.PID(e.P), meta, e.ref())
				if _, ok := gs.delivered[meta.ID()]; !ok {
					gs.delivered[meta.ID()] = e
				}
			case "install":
				gs.rec.InstallRef(ident.PID(e.P), e.ref(), pidsOf(e.Members))
			case "expelled":
				// Informational only: the member's constraints simply end.
			default:
				fail("%s:%d: unknown event %q", path, line, e.Ev)
			}
		}
		f.Close()
	}

	// Synthesis pass for kill windows (see above).
	gids := make([]uint32, 0, len(groups))
	for g := range groups {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		gs := groups[g]
		ids := make([]obsolete.MsgID, 0, len(gs.delivered))
		for id := range gs.delivered {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Sender != ids[j].Sender {
				return ids[i].Sender < ids[j].Sender
			}
			return ids[i].Seq < ids[j].Seq
		})
		for _, id := range ids {
			if gs.mcast[id] || !killed[string(id.Sender)] {
				continue
			}
			e := gs.delivered[id]
			meta, err := e.meta()
			if err != nil {
				continue // already reported during the parse
			}
			gs.rec.MulticastRef(meta, e.ref())
			gs.mcast[id] = true
		}
		for _, err := range gs.rec.Verify() {
			fail("group=%d: %v", g, err)
		}
	}
	return errs
}

func pidsOf(names []string) ident.PIDs {
	out := make(ident.PIDs, 0, len(names))
	for _, n := range names {
		out = append(out, ident.PID(n))
	}
	return out
}
