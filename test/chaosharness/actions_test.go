package chaosharness

import (
	"reflect"
	"testing"
)

// TestGenDeterministic: Gen must be a pure function of (seed, n, cfg) —
// the harness's replay-from-seed guarantee rests on it.
func TestGenDeterministic(t *testing.T) {
	cfg := GenConfig{Nodes: 4, Groups: 2}
	a := Gen(42, 300, cfg)
	b := Gen(42, 300, cfg)
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("streams diverge at action %d: %s vs %s", i, a[i], b[i])
			}
		}
		t.Fatal("streams differ")
	}
	if len(a) != 300 {
		t.Fatalf("got %d actions, want 300", len(a))
	}
}

// TestGenSeedsDiffer: different seeds must produce different schedules,
// otherwise the soak job replays the same run forever.
func TestGenSeedsDiffer(t *testing.T) {
	cfg := GenConfig{}
	if reflect.DeepEqual(Gen(1, 200, cfg), Gen(2, 200, cfg)) {
		t.Fatal("seeds 1 and 2 generated identical schedules")
	}
}

// TestGenCoversAllKinds: with a reasonable stream length every action
// kind should appear — a generator that can never emit partitions is
// not testing what it claims to.
func TestGenCoversAllKinds(t *testing.T) {
	seen := make(map[ActionKind]int)
	for _, a := range Gen(7, 500, GenConfig{Nodes: 5, Groups: 2}) {
		seen[a.Kind]++
	}
	for _, k := range []ActionKind{ActMcast, ActJoin, ActLeave, ActKill,
		ActRestart, ActPartition, ActBlock} {
		if seen[k] == 0 {
			t.Errorf("kind %s never generated in 500 actions", k)
		}
	}
	if seen[ActHeal] != 0 || seen[ActReboot] != 0 {
		t.Errorf("healing actions generated without GenConfig.Heal: %d heal, %d reboot",
			seen[ActHeal], seen[ActReboot])
	}

	seen = make(map[ActionKind]int)
	for _, a := range Gen(7, 800, GenConfig{Nodes: 5, Groups: 2, Heal: true}) {
		seen[a.Kind]++
	}
	for _, k := range []ActionKind{ActMcast, ActJoin, ActLeave, ActKill,
		ActRestart, ActPartition, ActBlock, ActHeal, ActReboot} {
		if seen[k] == 0 {
			t.Errorf("kind %s never generated in 800 healing actions", k)
		}
	}
}

// TestGenHealActionsWellFormed: every healing action must be applicable
// as scheduled — a heal's minority must be a strict minority of the
// group, a reboot must kill a majority yet leave a survivor.
func TestGenHealActionsWellFormed(t *testing.T) {
	for _, a := range Gen(13, 800, GenConfig{Nodes: 6, Groups: 2, Heal: true}) {
		switch a.Kind {
		case ActHeal:
			if len(a.Nodes) == 0 || a.Ms <= 0 {
				t.Fatalf("malformed heal: %s", a)
			}
		case ActReboot:
			if len(a.Nodes) == 0 || len(a.Repls) != len(a.Nodes) {
				t.Fatalf("malformed reboot: %s", a)
			}
		}
	}
}

// TestGenNamesNeverReused: every spawn — join, restart, partition
// replacement — must use a fresh process name; reusing a PID would
// collide sequence numbers across incarnations.
func TestGenNamesNeverReused(t *testing.T) {
	used := make(map[string]bool)
	for i := 0; i < 5; i++ {
		used[NodeName(i)] = true
	}
	for _, a := range Gen(11, 500, GenConfig{Nodes: 5, Groups: 2, Heal: true}) {
		switch a.Kind {
		case ActJoin, ActRestart:
			if used[a.Node] {
				t.Fatalf("%s reuses name %s", a, a.Node)
			}
			used[a.Node] = true
		case ActPartition:
			if used[a.Repl] {
				t.Fatalf("%s reuses replacement name %s", a, a.Repl)
			}
			used[a.Repl] = true
		case ActReboot:
			for _, repl := range a.Repls {
				if used[repl] {
					t.Fatalf("%s reuses replacement name %s", a, repl)
				}
				used[repl] = true
			}
		}
	}
}
