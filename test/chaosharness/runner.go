package chaosharness

import (
	"fmt"
	"sort"
	"time"
)

// Runner applies a chaos schedule to a live cluster, keeping its own
// view of what the membership of every group should be, settling the
// cluster after every disruptive action, and repairing the divergences
// real fault timing produces (a node evicted a beat later than planned,
// a victim that never noticed its expulsion).
type Runner struct {
	C      *Cluster
	Groups int
	// Logf receives progress lines (testing.T.Logf fits). Nil is silent.
	Logf func(format string, args ...any)
	// SettleTimeout bounds each convergence wait. Default 60s.
	SettleTimeout time.Duration

	// members[g] is the runner's expected membership, kept in lockstep
	// with the generator's model.
	members map[int][]string
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func (r *Runner) settleTimeout() time.Duration {
	if r.SettleTimeout > 0 {
		return r.SettleTimeout
	}
	return 60 * time.Second
}

// Bootstrap starts the founding nodes and creates every group on all of
// them, then waits for the initial views.
func (r *Runner) Bootstrap(cfg GenConfig) error {
	cfg.defaults()
	r.Groups = cfg.Groups
	r.members = make(map[int][]string)
	var founders []string
	for i := 0; i < cfg.Nodes; i++ {
		founders = append(founders, NodeName(i))
	}
	for _, n := range founders {
		if _, err := r.C.Start(n); err != nil {
			return err
		}
	}
	if err := r.C.Introduce(); err != nil {
		return err
	}
	for g := 1; g <= cfg.Groups; g++ {
		r.members[g] = append([]string(nil), founders...)
		for _, n := range founders {
			if err := r.C.Post(n, "/create", map[string]any{"group": g, "members": founders}); err != nil {
				return err
			}
		}
		if err := r.settle(g); err != nil {
			return err
		}
	}
	return nil
}

// Run applies every action in order.
func (r *Runner) Run(actions []Action) error {
	for i, a := range actions {
		r.logf("action %d/%d: %s", i+1, len(actions), a)
		if err := r.apply(a); err != nil {
			return fmt.Errorf("action %d (%s): %w", i+1, a, err)
		}
	}
	return nil
}

func (r *Runner) apply(a Action) error {
	switch a.Kind {
	case ActMcast:
		// Best-effort: the target may have been evicted or replaced by
		// fault timing the generator could not foresee; skipping keeps
		// the stream deterministic while the run stays valid.
		if err := r.C.Post(a.Node, "/multicast", map[string]any{"group": a.Group, "count": a.Count}); err != nil {
			r.logf("  mcast skipped: %v", err)
		}
		return nil

	case ActJoin:
		if _, err := r.C.Start(a.Node); err != nil {
			return err
		}
		if err := r.C.Introduce(); err != nil {
			return err
		}
		if err := r.C.Post(a.Node, "/join", map[string]any{
			"group": a.Group, "contacts": r.members[a.Group]}); err != nil {
			return err
		}
		r.members[a.Group] = insert(r.members[a.Group], a.Node)
		return r.settle(a.Group)

	case ActLeave:
		if err := r.C.Post(a.Node, "/leave", map[string]any{"group": a.Group}); err != nil {
			r.logf("  leave skipped: %v", err)
			return nil
		}
		r.members[a.Group] = remove(r.members[a.Group], a.Node)
		return r.settle(a.Group)

	case ActKill:
		groups := r.groupsOf(a.Node)
		if err := r.C.Kill(a.Node); err != nil {
			r.logf("  kill skipped: %v", err)
			return nil
		}
		for _, g := range groups {
			r.members[g] = remove(r.members[g], a.Node)
			if err := r.settle(g); err != nil {
				return err
			}
		}
		return nil

	case ActRestart:
		if _, err := r.C.Start(a.Node); err != nil {
			return err
		}
		if err := r.C.Introduce(); err != nil {
			return err
		}
		for _, g := range a.Groups {
			if len(r.members[g]) == 0 {
				continue
			}
			if err := r.C.Post(a.Node, "/join", map[string]any{
				"group": g, "contacts": r.members[g]}); err != nil {
				return err
			}
			r.members[g] = insert(r.members[g], a.Node)
			if err := r.settle(g); err != nil {
				return err
			}
		}
		return nil

	case ActPartition:
		return r.partition(a)

	case ActHeal:
		return r.healPartition(a)

	case ActReboot:
		return r.reboot(a)

	case ActBlock:
		if err := r.C.Post(a.Node, "/block", map[string]any{"group": a.Group, "blocked": true}); err != nil {
			r.logf("  block skipped: %v", err)
			return nil
		}
		time.Sleep(time.Duration(a.Ms) * time.Millisecond)
		if err := r.C.Post(a.Node, "/block", map[string]any{"group": a.Group, "blocked": false}); err != nil {
			r.logf("  unblock failed: %v", err)
		}
		return nil
	}
	return fmt.Errorf("unknown action kind %v", a.Kind)
}

// partition cuts the victim off in both directions, waits out the
// configured window (longer than the failure-detector timeout, so the
// survivors evict it), heals, and replaces the victim with a fresh
// joiner — covering suspicion, eviction by majority, and the expelled
// notification reaching the victim after the heal.
func (r *Runner) partition(a Action) error {
	victim := a.Node
	groups := r.groupsOf(victim)
	others := remove(r.C.Alive(), victim)
	if r.C.Proc(victim) == nil {
		r.logf("  partition skipped: %s not running", victim)
		others = nil
		groups = nil
	} else {
		if err := r.C.Post(victim, "/fault", map[string]any{"op": "cut", "peers": others}); err != nil {
			return err
		}
		for _, o := range others {
			if err := r.C.Post(o, "/fault", map[string]any{"op": "cut", "peers": []string{victim}}); err != nil {
				return err
			}
		}
		time.Sleep(time.Duration(a.Ms) * time.Millisecond)
		// Heal everywhere.
		if err := r.C.Post(victim, "/fault", map[string]any{"op": "heal"}); err != nil {
			r.logf("  heal %s failed: %v", victim, err)
		}
		for _, o := range others {
			if err := r.C.Post(o, "/fault", map[string]any{"op": "heal"}); err != nil {
				r.logf("  heal %s failed: %v", o, err)
			}
		}
	}

	// The survivors should have evicted the victim; converge on that.
	for _, g := range groups {
		r.members[g] = remove(r.members[g], victim)
		if err := r.settle(g); err != nil {
			return err
		}
	}
	// Retire the victim: normally it noticed its expulsion after the
	// heal; if it never does (it may sit in a wedged consensus round on
	// the minority side), a graceful quit-with-kill-fallback retires it
	// anyway.
	if r.C.Proc(victim) != nil {
		if err := r.C.Quit(victim); err != nil {
			r.logf("  retire %s: %v", victim, err)
		}
	}

	// And bring in the replacement.
	if len(groups) > 0 {
		if _, err := r.C.Start(a.Repl); err != nil {
			return err
		}
		if err := r.C.Introduce(); err != nil {
			return err
		}
		for _, g := range groups {
			if len(r.members[g]) == 0 {
				continue
			}
			if err := r.C.Post(a.Repl, "/join", map[string]any{
				"group": g, "contacts": r.members[g]}); err != nil {
				return err
			}
			r.members[g] = insert(r.members[g], a.Repl)
			if err := r.settle(g); err != nil {
				return err
			}
		}
	}
	return nil
}

// healPartition cuts the scheduled minority of one group away from the
// rest in both directions, lets both sides form their own views (the
// majority evicts the cut members, the minority splits into a new
// lineage), feeds divergent traffic to each side, then heals the links
// and waits for the sides to merge back into one union view — the
// partition-healing flagship scenario. Membership ends where it started.
func (r *Runner) healPartition(a Action) error {
	minority := make([]string, 0, len(a.Nodes))
	for _, n := range a.Nodes {
		if r.C.Proc(n) != nil {
			minority = append(minority, n)
		}
	}
	majority := r.members[a.Group]
	for _, n := range minority {
		majority = remove(majority, n)
	}
	if len(minority) == 0 || len(majority) == 0 {
		r.logf("  heal skipped: sides %v / %v", minority, majority)
		return nil
	}
	// Cut every minority↔majority link, both directions. Links inside
	// each side stay up so both sides keep making progress.
	for _, n := range minority {
		if err := r.C.Post(n, "/fault", map[string]any{"op": "cut", "peers": majority}); err != nil {
			return err
		}
	}
	for _, n := range majority {
		if err := r.C.Post(n, "/fault", map[string]any{"op": "cut", "peers": minority}); err != nil {
			return err
		}
	}
	// Divergent traffic: each side multicasts while the other cannot
	// hear it, so the eventual merge has real backlog to exchange.
	r.C.Post(minority[0], "/multicast", map[string]any{"group": a.Group, "count": 3})
	r.C.Post(majority[0], "/multicast", map[string]any{"group": a.Group, "count": 3})
	time.Sleep(time.Duration(a.Ms) * time.Millisecond)
	// Heal everywhere (clears all fault rules on the posted node).
	for _, n := range append(append([]string(nil), minority...), majority...) {
		if err := r.C.Post(n, "/fault", map[string]any{"op": "heal"}); err != nil {
			r.logf("  heal %s failed: %v", n, err)
		}
	}
	// The sides probe each other and merge; converge back on the full
	// membership in one view. Other groups sharing a cut link repair
	// themselves the same way.
	for g := 1; g <= r.Groups; g++ {
		if len(r.members[g]) == 0 {
			continue
		}
		if err := r.settle(g); err != nil {
			return err
		}
	}
	return nil
}

// reboot crash-stops a majority of one group at once: the surviving
// minority re-forms as a split view in its own lineage, then fresh
// incarnations join it to restore the group's size.
func (r *Runner) reboot(a Action) error {
	affected := make(map[int]bool)
	for _, n := range a.Nodes {
		groups := r.groupsOf(n)
		if err := r.C.Kill(n); err != nil {
			r.logf("  reboot kill skipped: %v", err)
			continue
		}
		for _, g := range groups {
			affected[g] = true
			r.members[g] = remove(r.members[g], n)
		}
	}
	for g := 1; g <= r.Groups; g++ {
		if affected[g] {
			if err := r.settle(g); err != nil {
				return err
			}
		}
	}
	for _, repl := range a.Repls {
		if len(r.members[a.Group]) == 0 {
			break
		}
		if _, err := r.C.Start(repl); err != nil {
			return err
		}
		if err := r.C.Introduce(); err != nil {
			return err
		}
		if err := r.C.Post(repl, "/join", map[string]any{
			"group": a.Group, "contacts": r.members[a.Group]}); err != nil {
			return err
		}
		r.members[a.Group] = insert(r.members[a.Group], repl)
		if err := r.settle(a.Group); err != nil {
			return err
		}
	}
	return nil
}

// settle waits until every expected member of group g reports the same
// installed view with exactly the expected membership. Divergence is
// repaired along the way: a member that got itself evicted (fault
// timing) is detached and dropped from the expectation.
func (r *Runner) settle(g int) error {
	deadline := time.Now().Add(r.settleTimeout())
	for {
		ok, err := r.converged(g)
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("group %d did not converge on %v within %v: %v",
				g, r.members[g], r.settleTimeout(), err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// converged polls one round; false means keep waiting. It mutates the
// expected membership when it finds a member that was expelled or died.
func (r *Runner) converged(g int) (bool, error) {
	want := r.members[g]
	if len(want) == 0 {
		return true, nil
	}
	var view, epoch uint64
	first := true
	for _, n := range want {
		st, err := r.C.Stats(n, g)
		if err != nil {
			if r.C.Proc(n) == nil {
				// Died outside the schedule (should not happen — kills go
				// through the runner) — drop it rather than wait forever.
				r.logf("  settle(%d): dropping dead member %s", g, n)
				r.members[g] = remove(r.members[g], n)
				return false, nil
			}
			return false, err
		}
		if st.Expelled {
			// Fault timing evicted it (e.g. a suspicion the schedule did
			// not plan). Detach it and stop expecting it.
			r.logf("  settle(%d): %s was expelled, detaching", g, n)
			r.C.Post(n, "/leave", map[string]any{"group": g})
			r.members[g] = remove(r.members[g], n)
			return false, nil
		}
		if st.Joining {
			return false, fmt.Errorf("%s still joining", n)
		}
		// Convergence needs the full reference to agree: after a
		// partition the sides can sit at the same numeric view id in
		// different lineages.
		if first {
			view, epoch = st.View, st.Epoch
			first = false
		} else if st.View != view || st.Epoch != epoch {
			return false, fmt.Errorf("%s at view e%x/v%d, others at e%x/v%d", n, st.Epoch, st.View, epoch, view)
		}
		got := append([]string(nil), st.Members...)
		sort.Strings(got)
		if !equal(got, want) {
			return false, fmt.Errorf("%s membership %v, want %v", n, got, want)
		}
	}
	return true, nil
}

// Finish is the end-of-run barrier: triggers a flush view change in
// every group (so the last chaos window is covered by SVS constraints),
// waits for convergence, and then for every queued multicast to drain —
// a sender still parked here is stuck, which is itself a failure.
func (r *Runner) Finish() error {
	for g := 1; g <= r.Groups; g++ {
		if len(r.members[g]) == 0 {
			continue
		}
		if err := r.C.Post(r.members[g][0], "/viewchange", map[string]any{"group": g}); err != nil {
			return fmt.Errorf("final view change group %d: %w", g, err)
		}
		if err := r.settle(g); err != nil {
			return fmt.Errorf("final settle: %w", err)
		}
	}
	deadline := time.Now().Add(r.settleTimeout())
	for g := 1; g <= r.Groups; g++ {
		for _, n := range r.members[g] {
			for {
				st, err := r.C.Stats(n, g)
				if err != nil {
					return err
				}
				if st.Queued == 0 && st.Parked == 0 {
					break
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("stuck sender: %s group %d still has %d queued (%d parked) multicasts",
						n, g, st.Queued, st.Parked)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
	}
	return nil
}

// Members returns the runner's expected membership of group g, sorted.
func (r *Runner) Members(g int) []string {
	return append([]string(nil), r.members[g]...)
}

func (r *Runner) groupsOf(name string) []int {
	var out []int
	for g := 1; g <= r.Groups; g++ {
		for _, p := range r.members[g] {
			if p == name {
				out = append(out, g)
				break
			}
		}
	}
	return out
}

func insert(s []string, v string) []string {
	out := append(append([]string(nil), s...), v)
	sort.Strings(out)
	return out
}

func remove(s []string, v string) []string {
	out := make([]string, 0, len(s))
	for _, x := range s {
		if x != v {
			out = append(out, x)
		}
	}
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
