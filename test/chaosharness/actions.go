package chaosharness

import (
	"fmt"
	"math/rand"
	"sort"
)

// ActionKind enumerates the chaos actions.
type ActionKind int

const (
	// ActMcast enqueues Count multicasts at Node in Group.
	ActMcast ActionKind = iota + 1
	// ActJoin spawns a fresh process named Node and joins it to Group.
	ActJoin
	// ActLeave makes Node leave Group gracefully (self-requested view
	// change, then detach).
	ActLeave
	// ActKill SIGKILLs Node; the survivors evict it.
	ActKill
	// ActRestart spawns a fresh process named Node joining Groups — the
	// replacement for an earlier kill (a restart is a new incarnation:
	// fresh PID, fresh sequence numbers, same cluster role).
	ActRestart
	// ActPartition isolates Node from every other process (both
	// directions) for Ms milliseconds, then heals. Outlasting the
	// failure-detector timeout, it normally ends in eviction + rejoin.
	ActPartition
	// ActBlock pauses Node's delivery pump in Group for Ms milliseconds,
	// exercising flow control and semantic purging against a slow
	// consumer.
	ActBlock
	// ActHeal cuts a minority of Group's members (Nodes) away from the
	// rest for Ms milliseconds, long enough for both sides to form
	// separate views (the majority evicts, the minority splits into its
	// own lineage), then heals the links so the sides merge back into a
	// union view. Membership is unchanged end to end. Requires nodes
	// running with healing enabled (Options.Heal).
	ActHeal
	// ActReboot crash-stops a majority of Group's members (Nodes) at
	// once: the surviving minority re-forms as a split view in a new
	// lineage, and fresh incarnations (Repls) join it to restore the
	// group's size. Requires healing enabled.
	ActReboot
)

func (k ActionKind) String() string {
	switch k {
	case ActMcast:
		return "mcast"
	case ActJoin:
		return "join"
	case ActLeave:
		return "leave"
	case ActKill:
		return "kill"
	case ActRestart:
		return "restart"
	case ActPartition:
		return "partition"
	case ActBlock:
		return "block"
	case ActHeal:
		return "heal"
	case ActReboot:
		return "reboot"
	default:
		return fmt.Sprintf("action(%d)", int(k))
	}
}

// Action is one step of the chaos schedule.
type Action struct {
	Kind   ActionKind
	Node   string
	Group  int
	Groups []int    // ActRestart: groups the replacement joins
	Count  int      // ActMcast
	Ms     int      // ActPartition / ActBlock / ActHeal duration
	Repl   string   // ActPartition: name of the post-heal replacement joiner
	Nodes  []string // ActHeal: minority side; ActReboot: processes rebooted
	Repls  []string // ActReboot: names of the replacement incarnations
}

func (a Action) String() string {
	switch a.Kind {
	case ActMcast:
		return fmt.Sprintf("mcast node=%s group=%d count=%d", a.Node, a.Group, a.Count)
	case ActJoin:
		return fmt.Sprintf("join node=%s group=%d", a.Node, a.Group)
	case ActLeave:
		return fmt.Sprintf("leave node=%s group=%d", a.Node, a.Group)
	case ActKill:
		return fmt.Sprintf("kill node=%s", a.Node)
	case ActRestart:
		return fmt.Sprintf("restart node=%s groups=%v", a.Node, a.Groups)
	case ActPartition:
		return fmt.Sprintf("partition node=%s ms=%d repl=%s", a.Node, a.Ms, a.Repl)
	case ActBlock:
		return fmt.Sprintf("block node=%s group=%d ms=%d", a.Node, a.Group, a.Ms)
	case ActHeal:
		return fmt.Sprintf("heal group=%d minority=%v ms=%d", a.Group, a.Nodes, a.Ms)
	case ActReboot:
		return fmt.Sprintf("reboot group=%d nodes=%v repls=%v", a.Group, a.Nodes, a.Repls)
	}
	return a.Kind.String()
}

// GenConfig shapes the generated schedule.
type GenConfig struct {
	Nodes  int // founding processes (default 4)
	Groups int // groups, all founded by all initial nodes (default 2)
	// Heal adds partition-healing actions (ActHeal, ActReboot) to the
	// stream. The cluster must run with Options.Heal: without it a split
	// minority blocks forever instead of re-forming, and the schedule
	// cannot converge. Disabled, the stream layout is byte-identical to
	// the pre-healing generator for the same seed.
	Heal bool
}

func (c *GenConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Groups <= 0 {
		c.Groups = 2
	}
}

// NodeName is the canonical name of the i-th process ever spawned.
func NodeName(i int) string { return fmt.Sprintf("n%02d", i) }

// genModel mirrors the cluster state the executor will reach if every
// action succeeds; the generator consults it so the stream stays
// applicable (kills keep strict majorities, contacts exist, and so on).
type genModel struct {
	alive   map[string]bool
	members map[int][]string // group -> sorted member names
	// killedPool holds kill victims awaiting an ActRestart, with the
	// groups they were members of.
	killedPool []killedEntry
	next       int
}

type killedEntry struct {
	name   string
	groups []int
}

func (m *genModel) fresh() string {
	n := NodeName(m.next)
	m.next++
	return n
}

func (m *genModel) groupsOf(name string) []int {
	var out []int
	for g := range m.members {
		for _, p := range m.members[g] {
			if p == name {
				out = append(out, g)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

func (m *genModel) remove(name string, g int) {
	ms := m.members[g][:0]
	for _, p := range m.members[g] {
		if p != name {
			ms = append(ms, p)
		}
	}
	m.members[g] = ms
}

// disruptable reports whether name can be killed / partitioned away:
// every group it belongs to must retain a strict majority (which needs
// at least 3 members), and it must not be the last spare process.
func (m *genModel) disruptable(name string) bool {
	if len(m.alive) <= 3 {
		return false
	}
	for _, g := range m.groupsOf(name) {
		if len(m.members[g]) < 3 {
			return false
		}
	}
	return true
}

func pick(rng *rand.Rand, s []string) string { return s[rng.Intn(len(s))] }

// Gen deterministically expands a seed into a stream of n actions: same
// seed and config, same stream, always — the whole harness's
// replayability rests on this being a pure function.
func Gen(seed int64, n int, cfg GenConfig) []Action {
	cfg.defaults()
	rng := rand.New(rand.NewSource(seed))
	m := &genModel{
		alive:   make(map[string]bool),
		members: make(map[int][]string),
	}
	for i := 0; i < cfg.Nodes; i++ {
		m.alive[m.fresh()] = true
	}
	founders := make([]string, 0, cfg.Nodes)
	for p := range m.alive {
		founders = append(founders, p)
	}
	sort.Strings(founders)
	for g := 1; g <= cfg.Groups; g++ {
		m.members[g] = append([]string(nil), founders...)
	}

	aliveSorted := func() []string {
		out := make([]string, 0, len(m.alive))
		for p := range m.alive {
			out = append(out, p)
		}
		sort.Strings(out)
		return out
	}
	randGroup := func() int { return 1 + rng.Intn(cfg.Groups) }

	actions := make([]Action, 0, n)
	for len(actions) < n {
		var a Action
		switch w := rng.Intn(100); {
		case w < 55: // multicast: the steady workload
			g := randGroup()
			if len(m.members[g]) == 0 {
				continue
			}
			a = Action{Kind: ActMcast, Node: pick(rng, m.members[g]), Group: g,
				Count: 3 + rng.Intn(12)}

		case w < 65: // join: a fresh process enters a group
			g := randGroup()
			if len(m.members[g]) == 0 {
				continue
			}
			name := m.fresh()
			a = Action{Kind: ActJoin, Node: name, Group: g}
			m.alive[name] = true
			m.members[g] = append(m.members[g], name)
			sort.Strings(m.members[g])

		case w < 70: // leave: graceful departure from one group
			g := randGroup()
			if len(m.members[g]) < 3 {
				continue
			}
			name := pick(rng, m.members[g])
			a = Action{Kind: ActLeave, Node: name, Group: g}
			m.remove(name, g)

		case w < 78: // kill
			cands := aliveSorted()
			name := pick(rng, cands)
			if !m.disruptable(name) {
				continue
			}
			a = Action{Kind: ActKill, Node: name}
			groups := m.groupsOf(name)
			for _, g := range groups {
				m.remove(name, g)
			}
			delete(m.alive, name)
			m.killedPool = append(m.killedPool, killedEntry{name: name, groups: groups})

		case w < 85: // restart: a replacement for an earlier kill
			if len(m.killedPool) == 0 {
				continue
			}
			i := rng.Intn(len(m.killedPool))
			ke := m.killedPool[i]
			m.killedPool = append(m.killedPool[:i], m.killedPool[i+1:]...)
			var groups []int
			for _, g := range ke.groups {
				if len(m.members[g]) > 0 {
					groups = append(groups, g)
				}
			}
			if len(groups) == 0 {
				continue
			}
			name := m.fresh()
			a = Action{Kind: ActRestart, Node: name, Groups: groups}
			m.alive[name] = true
			for _, g := range groups {
				m.members[g] = append(m.members[g], name)
				sort.Strings(m.members[g])
			}

		case w < 88 || (!cfg.Heal && w < 92): // partition: isolate one process, then heal
			cands := aliveSorted()
			name := pick(rng, cands)
			if !m.disruptable(name) {
				continue
			}
			// The executor replaces the (normally evicted) victim with a
			// fresh joiner; model that replacement now.
			groups := m.groupsOf(name)
			for _, g := range groups {
				m.remove(name, g)
			}
			delete(m.alive, name)
			repl := m.fresh()
			a = Action{Kind: ActPartition, Node: name, Ms: 400 + rng.Intn(300), Repl: repl}
			m.alive[repl] = true
			for _, g := range groups {
				m.members[g] = append(m.members[g], repl)
				sort.Strings(m.members[g])
			}

		case cfg.Heal && w < 94: // heal: split a minority away, then merge back
			g := randGroup()
			ms := m.members[g]
			if len(ms) < 4 {
				continue
			}
			// Strict minority: the remainder must keep a majority quorum
			// so it shrinks by eviction while the cut side splits.
			k := 1 + rng.Intn((len(ms)-1)/2)
			perm := rng.Perm(len(ms))
			nodes := make([]string, 0, k)
			for _, i := range perm[:k] {
				nodes = append(nodes, ms[i])
			}
			sort.Strings(nodes)
			a = Action{Kind: ActHeal, Group: g, Nodes: nodes, Ms: 400 + rng.Intn(300)}
			// Membership is unchanged once the sides merge back: no model
			// update.

		case cfg.Heal && w < 96: // reboot: crash a majority, survivors split, replacements join
			g := randGroup()
			ms := m.members[g]
			if len(ms) < 4 {
				continue
			}
			q := len(ms)/2 + 1
			if len(m.alive) <= q {
				continue
			}
			perm := rng.Perm(len(ms))
			victims := make([]string, 0, q)
			for _, i := range perm[:q] {
				victims = append(victims, ms[i])
			}
			sort.Strings(victims)
			// Every group a victim belongs to must keep at least one
			// member to carry its lineage forward.
			ok := true
			dead := make(map[string]bool, q)
			for _, v := range victims {
				dead[v] = true
			}
			for h, hm := range m.members {
				left := 0
				for _, p := range hm {
					if !dead[p] {
						left++
					}
				}
				if left == 0 && len(hm) > 0 {
					ok = false
					_ = h
					break
				}
			}
			if !ok {
				continue
			}
			repls := make([]string, q)
			for i := range repls {
				repls[i] = m.fresh()
			}
			a = Action{Kind: ActReboot, Group: g, Nodes: victims, Repls: repls}
			for _, v := range victims {
				for _, h := range m.groupsOf(v) {
					m.remove(v, h)
				}
				delete(m.alive, v)
			}
			for _, repl := range repls {
				m.alive[repl] = true
				m.members[g] = append(m.members[g], repl)
			}
			sort.Strings(m.members[g])

		default: // flow-block a consumer for a while
			g := randGroup()
			if len(m.members[g]) == 0 {
				continue
			}
			a = Action{Kind: ActBlock, Node: pick(rng, m.members[g]), Group: g,
				Ms: 100 + rng.Intn(250)}
		}
		actions = append(actions, a)
	}
	return actions
}
