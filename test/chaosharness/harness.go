// Package chaosharness is the black-box end-to-end chaos harness: it
// builds the real svs-chaos node binary (cmd/svs-chaos), spawns a
// cluster of them over real TCP, drives a seeded stream of actions —
// multicast, join, leave, kill, restart, partition, heal, flow-block —
// and afterwards replays every node's JSONL event log through the
// internal/check oracle to verify the paper's §3.2 safety properties
// across process boundaries.
//
// Everything is seeded: Gen(seed, n, cfg) is a pure function from seed
// to action stream, so any failure is replayable from the seed printed
// with it.
package chaosharness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// BuildBinary compiles cmd/svs-chaos into dir and returns the binary
// path. It must run somewhere inside the module tree.
func BuildBinary(dir string) (string, error) {
	bin := filepath.Join(dir, "svs-chaos")
	cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/svs-chaos")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return "", fmt.Errorf("build svs-chaos: %v\n%s", err, out)
	}
	return bin, nil
}

// Options configures a Cluster.
type Options struct {
	Bin    string // svs-chaos binary (BuildBinary)
	LogDir string // JSONL event logs and stderr captures land here
	K      int    // k-enumeration window
	Buffer int    // buffer / flow-control window size
	Seed   int64  // fault-injection seed base (per-node: Seed+index)

	// Heartbeat is the failure-detector beat interval (timeout is 5x);
	// partitions must outlast the timeout to cause eviction.
	Heartbeat time.Duration

	// Heal enables partition healing on every node (-heal): split
	// minorities re-form in their own lineage and merge back when the
	// network allows, instead of blocking until expelled. Required for
	// schedules generated with GenConfig.Heal.
	Heal bool
}

func (o *Options) defaults() {
	if o.K <= 0 {
		o.K = 16
	}
	if o.Buffer <= 0 {
		o.Buffer = 8
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 50 * time.Millisecond
	}
}

// Proc is one running (or dead) svs-chaos process.
type Proc struct {
	Name    string // its PID on the wire
	Addr    string // transport listen address
	Ctl     string // control API base URL
	LogPath string

	cmd   *exec.Cmd
	waitC chan error
}

// Cluster manages the svs-chaos processes of one harness run.
type Cluster struct {
	opt Options

	mu     sync.Mutex
	procs  map[string]*Proc // alive
	dead   map[string]*Proc // quit or killed (logs retained)
	killed map[string]bool  // SIGKILLed at least once (oracle synthesis set)
	nProc  int
}

// Options returns the cluster's effective options, with defaults
// applied — the oracle must check with the K the nodes actually ran.
func (c *Cluster) Options() Options { return c.opt }

// NewCluster returns an empty cluster.
func NewCluster(opt Options) *Cluster {
	opt.defaults()
	return &Cluster{
		opt:    opt,
		procs:  make(map[string]*Proc),
		dead:   make(map[string]*Proc),
		killed: make(map[string]bool),
	}
}

// Start spawns a node named name and waits for its READY line.
func (c *Cluster) Start(name string) (*Proc, error) {
	c.mu.Lock()
	if _, dup := c.procs[name]; dup {
		c.mu.Unlock()
		return nil, fmt.Errorf("node %s already running", name)
	}
	c.nProc++
	seed := c.opt.Seed + int64(c.nProc)
	c.mu.Unlock()

	logPath := filepath.Join(c.opt.LogDir, name+".jsonl")
	stderr, err := os.Create(filepath.Join(c.opt.LogDir, name+".stderr"))
	if err != nil {
		return nil, err
	}
	args := []string{
		"-self", name,
		"-listen", "127.0.0.1:0",
		"-ctl", "127.0.0.1:0",
		"-log", logPath,
		"-k", fmt.Sprint(c.opt.K),
		"-buffer", fmt.Sprint(c.opt.Buffer),
		"-seed", fmt.Sprint(seed),
		"-hb", c.opt.Heartbeat.String(),
	}
	if c.opt.Heal {
		args = append(args, "-heal")
	}
	cmd := exec.Command(c.opt.Bin, args...)
	cmd.Stderr = stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		stderr.Close()
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		stderr.Close()
		return nil, err
	}
	waitC := make(chan error, 1)
	go func() {
		waitC <- cmd.Wait()
		stderr.Close()
	}()

	// Parse the READY line: "READY self=<pid> addr=<a> ctl=<url>".
	readyC := make(chan *Proc, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "READY ") {
				continue
			}
			p := &Proc{Name: name, LogPath: logPath, cmd: cmd, waitC: waitC}
			for _, f := range strings.Fields(line)[1:] {
				if k, v, ok := strings.Cut(f, "="); ok {
					switch k {
					case "addr":
						p.Addr = v
					case "ctl":
						p.Ctl = v
					}
				}
			}
			readyC <- p
			// Keep draining so the child never blocks on stdout.
			for sc.Scan() {
			}
			return
		}
		close(readyC)
	}()

	select {
	case p, ok := <-readyC:
		if !ok || p.Addr == "" || p.Ctl == "" {
			cmd.Process.Kill()
			return nil, fmt.Errorf("node %s exited before READY", name)
		}
		c.mu.Lock()
		c.procs[name] = p
		c.mu.Unlock()
		return p, nil
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		return nil, fmt.Errorf("node %s: no READY line within 30s", name)
	}
}

// Proc returns the running node or nil.
func (c *Cluster) Proc(name string) *Proc {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.procs[name]
}

// Alive returns the names of all running nodes, sorted.
func (c *Cluster) Alive() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.procs))
	for n := range c.procs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kill SIGKILLs a node — the crash-stop fault. Its log file survives for
// the oracle; the name joins the killed set (see Check's synthesis of
// multicast records lost in the kill window).
func (c *Cluster) Kill(name string) error {
	c.mu.Lock()
	p := c.procs[name]
	if p == nil {
		c.mu.Unlock()
		return fmt.Errorf("kill %s: not running", name)
	}
	delete(c.procs, name)
	c.dead[name] = p
	c.killed[name] = true
	c.mu.Unlock()
	p.cmd.Process.Kill()
	<-p.waitC
	return nil
}

// Quit shuts a node down gracefully (flushing its log); falls back to
// SIGKILL if it does not exit in time.
func (c *Cluster) Quit(name string) error {
	c.mu.Lock()
	p := c.procs[name]
	if p == nil {
		c.mu.Unlock()
		return fmt.Errorf("quit %s: not running", name)
	}
	delete(c.procs, name)
	c.dead[name] = p
	c.mu.Unlock()
	c.post(p, "/quit", nil)
	select {
	case <-p.waitC:
		return nil
	case <-time.After(15 * time.Second):
		p.cmd.Process.Kill()
		<-p.waitC
		c.mu.Lock()
		c.killed[name] = true
		c.mu.Unlock()
		return fmt.Errorf("quit %s: timed out, killed", name)
	}
}

// QuitAll gracefully stops every running node.
func (c *Cluster) QuitAll() {
	for _, n := range c.Alive() {
		c.Quit(n)
	}
}

// Logs returns the JSONL log paths of every node that ever ran.
func (c *Cluster) Logs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	add := func(p *Proc) {
		if !seen[p.LogPath] {
			seen[p.LogPath] = true
			out = append(out, p.LogPath)
		}
	}
	for _, p := range c.procs {
		add(p)
	}
	for _, p := range c.dead {
		add(p)
	}
	sort.Strings(out)
	return out
}

// Killed returns the set of node names that were SIGKILLed.
func (c *Cluster) Killed() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool, len(c.killed))
	for k, v := range c.killed {
		out[k] = v
	}
	return out
}

// Introduce pushes the full pid→address map of all running nodes to
// every running node (idempotent; new nodes need it before joining).
func (c *Cluster) Introduce() error {
	c.mu.Lock()
	peers := make(map[string]string, len(c.procs))
	ps := make([]*Proc, 0, len(c.procs))
	for _, p := range c.procs {
		peers[p.Name] = p.Addr
		ps = append(ps, p)
	}
	c.mu.Unlock()
	for _, p := range ps {
		if err := c.post(p, "/peers", map[string]any{"peers": peers}); err != nil {
			return fmt.Errorf("introduce %s: %w", p.Name, err)
		}
	}
	return nil
}

// ---- control API client ----------------------------------------------------

var httpClient = &http.Client{Timeout: 30 * time.Second}

func (c *Cluster) post(p *Proc, path string, body any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	resp, err := httpClient.Post(p.Ctl+path, "application/json", rd)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s: %s", p.Name, path, resp.Status, strings.TrimSpace(string(out)))
	}
	return nil
}

// Post sends a control request to a running node by name.
func (c *Cluster) Post(name, path string, body any) error {
	p := c.Proc(name)
	if p == nil {
		return fmt.Errorf("%s: not running", name)
	}
	return c.post(p, path, body)
}

// GroupStats mirrors the driver's /stats response.
type GroupStats struct {
	View      uint64   `json:"view"`
	Epoch     uint64   `json:"epoch"`
	Members   []string `json:"members"`
	Joining   bool     `json:"joining"`
	Expelled  bool     `json:"expelled"`
	Blocked   bool     `json:"blocked"`
	Queued    int      `json:"queued"`
	Sent      uint64   `json:"sent"`
	McastErrs uint64   `json:"mcast_errs"`
	Parked    int      `json:"parked"`
}

// Stats fetches one node's view of one group.
func (c *Cluster) Stats(name string, group int) (GroupStats, error) {
	p := c.Proc(name)
	if p == nil {
		return GroupStats{}, fmt.Errorf("%s: not running", name)
	}
	resp, err := httpClient.Get(fmt.Sprintf("%s/stats?group=%d", p.Ctl, group))
	if err != nil {
		return GroupStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		out, _ := io.ReadAll(resp.Body)
		return GroupStats{}, fmt.Errorf("%s/stats: %s: %s", p.Name, resp.Status, strings.TrimSpace(string(out)))
	}
	var st GroupStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return GroupStats{}, err
	}
	return st, nil
}
