package repro_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/obsolete"
)

func init() {
	// The wire path no longer uses gob (the fallback codec was removed),
	// so the baseline benchmark registers the types it round-trips
	// through interface values itself.
	gob.Register(core.DataMsg{})
	gob.Register(core.InitMsg{})
	gob.Register(core.PredMsg{})
	gob.Register(core.CreditMsg{})
	gob.Register(core.StableMsg{})
}

// wireMessages is a representative mix of protocol traffic: mostly DATA
// with a realistic payload, plus the control messages of a view change
// and stability gossip.
func wireMessages() []any {
	payload := bytes.Repeat([]byte("svs"), 67) // ~200 B application payload
	annot := []byte{1, 2, 3, 4, 5, 6, 7, 8}    // k=64 bitmap annotation
	dm := func(seq ident.Seq) core.DataMsg {
		return core.DataMsg{
			View:    7,
			Meta:    obsolete.Msg{Sender: "replica-1", Seq: seq, Annot: annot},
			Payload: payload,
		}
	}
	pred := core.PredMsg{View: 7, Msgs: make([]core.DataMsg, 0, 16)}
	for i := 0; i < 16; i++ {
		pred.Msgs = append(pred.Msgs, dm(ident.Seq(i+1)))
	}
	recv := make(map[ident.PID]ident.Seq, 8)
	for i := 0; i < 8; i++ {
		recv[ident.PID(fmt.Sprintf("replica-%d", i))] = ident.Seq(1000 + i)
	}
	return []any{
		dm(1), dm(2), dm(3), dm(4), // DATA dominates steady-state traffic
		core.CreditMsg{View: 7, Credits: 16},
		core.StableMsg{View: 7, Recv: recv},
		core.InitMsg{View: 7, Leave: []ident.PID{"replica-3"}},
		pred,
	}
}

// BenchmarkWireCodec measures encode+decode of the wire-message mix on
// the hand-rolled binary codec against the encoding/gob baseline it
// replaced (a fresh encoder/decoder per message through an interface
// value — exactly the pattern of the old consensus value path, and the
// worst case the per-connection gob stream degrades to on reconnect).
// The compare sub-benchmark reports the headline acceptance metrics:
// speedup-x (gob ns/op over binary ns/op) and allocs/op for both.
func BenchmarkWireCodec(b *testing.B) {
	msgs := wireMessages()

	binary := func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			m := msgs[i%len(msgs)]
			var err error
			buf, err = codec.Marshal(buf[:0], m)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := codec.UnmarshalBytes(buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	gobRT := func(b *testing.B) {
		b.ReportAllocs()
		type wrap struct{ M any }
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			m := msgs[i%len(msgs)]
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(wrap{M: m}); err != nil {
				b.Fatal(err)
			}
			var out wrap
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("binary", binary)
	b.Run("gob", gobRT)
	// Nested testing.Benchmark deadlocks under -bench, so the comparison
	// times both paths by hand over a fixed iteration count.
	b.Run("compare", func(b *testing.B) {
		measure := func(fn func(n int), iters int) (nsPerOp, allocsPerOp float64) {
			fn(iters / 10) // warm up
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			fn(iters)
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			return float64(elapsed.Nanoseconds()) / float64(iters),
				float64(after.Mallocs-before.Mallocs) / float64(iters)
		}
		binNs, binAllocs := measure(func(n int) {
			var buf []byte
			for i := 0; i < n; i++ {
				m := msgs[i%len(msgs)]
				var err error
				buf, err = codec.Marshal(buf[:0], m)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := codec.UnmarshalBytes(buf); err != nil {
					b.Fatal(err)
				}
			}
		}, 20000)
		gobNs, gobAllocs := measure(func(n int) {
			type wrap struct{ M any }
			var buf bytes.Buffer
			for i := 0; i < n; i++ {
				m := msgs[i%len(msgs)]
				buf.Reset()
				if err := gob.NewEncoder(&buf).Encode(wrap{M: m}); err != nil {
					b.Fatal(err)
				}
				var out wrap
				if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
					b.Fatal(err)
				}
			}
		}, 5000)
		b.ReportMetric(gobNs/binNs, "speedup-x")
		b.ReportMetric(binNs, "binary-ns/op")
		b.ReportMetric(gobNs, "gob-ns/op")
		b.ReportMetric(binAllocs, "binary-allocs/op")
		b.ReportMetric(gobAllocs, "gob-allocs/op")
		for i := 0; i < b.N; i++ {
		} // the comparison itself is the measurement
	})
}
