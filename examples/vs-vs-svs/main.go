// VS vs SVS, head to head on the live protocol: the paper's core trade-off
// in one run.
//
// The same bursty workload is pushed through two groups with identical
// tiny buffers — one running classic View Synchrony (empty obsolescence
// relation), one running Semantic View Synchrony (k-enumeration). Each
// group has the same deliberately slow member. The program reports how
// long the producer took (flow-control blocking), what the slow member
// actually saw, and the view-change flush size.
//
// Run with: go run ./examples/vs-vs-svs
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/trace"
	"repro/internal/transport"
)

const (
	buffer = 8
	k      = 2 * buffer
)

func main() {
	tr := genTrace()
	fmt.Printf("workload: %d messages of the calibrated game trace, replayed at full speed\n\n", len(tr.Events))

	vs, err := runGroup(tr, obsolete.Empty{}, "vs")
	if err != nil {
		log.Fatal(err)
	}
	svs, err := runGroup(tr, obsolete.KEnumeration{K: k}, "svs")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-28s %-14s %-14s\n", "", "VS (reliable)", "SVS (semantic)")
	fmt.Printf("%-28s %-14v %-14v\n", "production wall time", vs.wall.Round(time.Millisecond), svs.wall.Round(time.Millisecond))
	fmt.Printf("%-28s %-14d %-14d\n", "slow member: delivered", vs.slowDelivered, svs.slowDelivered)
	fmt.Printf("%-28s %-14d %-14d\n", "slow member: purged", vs.slowPurged, svs.slowPurged)
	fmt.Printf("%-28s %-14d %-14d\n", "producer: multicast parks", vs.parks, svs.parks)
	fmt.Printf("%-28s %-14d %-14d\n", "view-change flush size", vs.flush, svs.flush)
	fmt.Println("\nSVS finishes sooner with the same buffers: obsolete messages are purged")
	fmt.Println("instead of blocking the producer, yet the slow member still converges and")
	fmt.Println("the view change flushes a consistent cut (§2.2's goals i–iv).")
}

func genTrace() *trace.Trace {
	p := trace.DefaultParams()
	p.Rounds = 900 // ~30 seconds of game time, replayed as fast as possible
	return trace.Generate(p)
}

type outcome struct {
	wall          time.Duration
	slowDelivered int
	slowPurged    uint64
	parks         uint64
	flush         int
}

func runGroup(tr *trace.Trace, rel obsolete.Relation, label string) (outcome, error) {
	var out outcome
	net := transport.NewMemNetwork()
	group := ident.NewPIDs("a-producer", "b-fast", "c-slow")
	view := core.View{ID: 1, Members: group}

	engines := make(map[ident.PID]*core.Engine)
	for _, p := range group {
		ep, err := net.Endpoint(p)
		if err != nil {
			return out, err
		}
		det := fd.NewManual()
		eng, err := core.New(core.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			Relation:     rel,
			ToDeliverCap: buffer, OutgoingCap: buffer, Window: buffer,
		})
		if err != nil {
			return out, err
		}
		if err := eng.Start(); err != nil {
			return out, err
		}
		engines[p] = eng
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var mu sync.Mutex
	slowCount := 0
	for _, p := range group {
		slow := p == "c-slow"
		wg.Add(1)
		go func(p ident.PID, slow bool) {
			defer wg.Done()
			for {
				d, err := engines[p].Deliver(ctx)
				if err != nil {
					return
				}
				if d.Kind == core.DeliverData && slow {
					mu.Lock()
					slowCount++
					mu.Unlock()
					// The slow machine: 2ms of work per message.
					select {
					case <-time.After(2 * time.Millisecond):
					case <-ctx.Done():
						return
					}
				}
			}
		}(p, slow)
	}

	// Replay the trace as fast as flow control admits.
	msgs := tr.Annotate("a-producer", k)
	start := time.Now()
	for _, m := range msgs {
		if _, err := engines["a-producer"].Multicast(ctx, m.Meta, nil); err != nil {
			return out, err
		}
	}
	out.wall = time.Since(start)

	// One view change to compare flush sizes.
	if err := engines["a-producer"].RequestViewChange(); err != nil {
		return out, err
	}
	deadline := time.Now().Add(15 * time.Second)
	for engines["a-producer"].Stats().View < 2 {
		if time.Now().After(deadline) {
			return out, fmt.Errorf("%s: view change stuck", label)
		}
		time.Sleep(2 * time.Millisecond)
	}

	time.Sleep(100 * time.Millisecond) // let the slow member drain
	mu.Lock()
	out.slowDelivered = slowCount
	mu.Unlock()
	slowSt := engines["c-slow"].Stats()
	prodSt := engines["a-producer"].Stats()
	out.slowPurged = slowSt.PurgedToDeliver + prodSt.PurgedOutgoing
	out.parks = prodSt.MulticastParks
	out.flush = prodSt.LastFlushLen
	cancel()
	wg.Wait()
	return out, nil
}
