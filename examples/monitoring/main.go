// Distributed monitoring: the "distributed control and monitoring
// applications which exhibit a highly interactive behavior" the paper
// cites as its second motivating workload (§1).
//
// A field gateway multicasts sensor readings at high rate to a group of
// dashboards. Each sensor is a data item: a newer reading makes older ones
// obsolete, while alarm messages are reliable and must never be dropped.
// One dashboard runs on a struggling machine — with SVS it stays in the
// group, sees every alarm and the freshest readings, and never stalls the
// gateway.
//
// Run with: go run ./examples/monitoring
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

const (
	sensors = 8
	k       = 64
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemNetwork()
	group := ident.NewPIDs("gateway", "dash-main", "dash-edge")
	view := core.View{ID: 1, Members: group}
	rel := obsolete.KEnumeration{K: k}

	engines := make(map[ident.PID]*core.Engine)
	for _, p := range group {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		det := fd.NewManual()
		eng, err := core.New(core.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			Relation:     rel,
			ToDeliverCap: 8, OutgoingCap: 8, Window: 8,
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		engines[p] = eng
	}
	defer func() {
		for _, e := range engines {
			e.Stop()
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Every member must drain its own deliveries — the gateway included:
	// its self-delivered alarms are reliable (never purged) and would
	// otherwise fill its bounded buffer and stall its multicasts.
	var wgGw sync.WaitGroup
	wgGw.Add(1)
	go func() {
		defer wgGw.Done()
		for {
			if _, err := engines["gateway"].Deliver(ctx); err != nil {
				return
			}
		}
	}()
	defer wgGw.Wait()

	// Dashboards consume readings; dash-edge is slow (10ms per message).
	type dashState struct {
		mu       sync.Mutex
		latest   map[uint32]string
		alarms   []string
		readings int
	}
	states := map[ident.PID]*dashState{}
	var wg sync.WaitGroup
	for _, p := range []ident.PID{"dash-main", "dash-edge"} {
		ds := &dashState{latest: make(map[uint32]string)}
		states[p] = ds
		slow := p == "dash-edge"
		wg.Add(1)
		go func(p ident.PID, ds *dashState) {
			defer wg.Done()
			for {
				d, err := engines[p].Deliver(ctx)
				if err != nil {
					return
				}
				if d.Kind != core.DeliverData {
					continue
				}
				ds.mu.Lock()
				var sensor uint32
				var value string
				if _, err := fmt.Sscanf(string(d.Payload), "s%d=%s", &sensor, &value); err == nil {
					ds.latest[sensor] = value
					ds.readings++
				} else {
					ds.alarms = append(ds.alarms, string(d.Payload))
				}
				ds.mu.Unlock()
				if slow {
					time.Sleep(10 * time.Millisecond)
				}
			}
		}(p, ds)
	}

	// The gateway publishes 400 readings round-robin across sensors and
	// raises 3 alarms. Alarms are reliable: SVS never purges them.
	tracker := obsolete.NewItemTracker(obsolete.NewKTracker(k))
	gw := engines["gateway"]
	for i := 0; i < 400; i++ {
		sensor := uint32(i % sensors)
		seq, annot := tracker.Update(sensor)
		payload := []byte(fmt.Sprintf("s%d=%d.%02d", sensor, 20+i%5, i%100))
		meta := obsolete.Msg{Sender: "gateway", Seq: seq, Annot: annot}
		if _, err := gw.Multicast(ctx, meta, payload); err != nil {
			return err
		}
		if i%150 == 75 {
			seq, annot := tracker.Reliable()
			alarm := []byte(fmt.Sprintf("ALARM: sensor %d over threshold", sensor))
			if _, err := gw.Multicast(ctx, obsolete.Msg{Sender: "gateway", Seq: seq, Annot: annot}, alarm); err != nil {
				return err
			}
		}
	}

	// Wait until both dashboards have the final reading of every sensor.
	deadline := time.Now().Add(15 * time.Second)
	final := map[uint32]string{}
	for i := 400 - sensors; i < 400; i++ {
		final[uint32(i%sensors)] = fmt.Sprintf("%d.%02d", 20+i%5, i%100)
	}
	for _, p := range []ident.PID{"dash-main", "dash-edge"} {
		ds := states[p]
		for {
			ds.mu.Lock()
			ok := len(ds.alarms) == 3
			for s, v := range final {
				if ds.latest[s] != v {
					ok = false
					break
				}
			}
			ds.mu.Unlock()
			if ok {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("%s never converged", p)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	for _, p := range []ident.PID{"dash-main", "dash-edge"} {
		ds := states[p]
		ds.mu.Lock()
		fmt.Printf("%-10s saw %3d readings and %d/3 alarms; final values all current\n",
			p, ds.readings, len(ds.alarms))
		ds.mu.Unlock()
	}
	st := engines["dash-edge"].Stats()
	gwSt := gw.Stats()
	fmt.Printf("\ndash-edge skipped %d stale readings (purged in its buffers);\n", st.PurgedToDeliver)
	fmt.Printf("the gateway purged %d more sender-side (outgoing queues) and was parked %d times.\n",
		gwSt.PurgedOutgoing, gwSt.MulticastParks)
	fmt.Println("Every alarm arrived everywhere — reliability where it matters, freshness elsewhere.")
	cancel()
	wg.Wait()
	return nil
}
