// Quickstart: a three-member SVS group over the in-memory transport.
//
// It shows the core API end to end: building a group, multicasting
// item-tagged messages, pulling deliveries, watching a slow member skip
// obsolete updates, and installing a new view.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/ident"
	"repro/internal/obsolete"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A network and the agreed initial view.
	net := transport.NewMemNetwork()
	group := ident.NewPIDs("alice", "bob", "carol")
	view := core.View{ID: 1, Members: group}

	// 2. One engine per member. The k-enumeration relation with window 32
	//    lets later updates of an item obsolete earlier ones.
	rel := obsolete.KEnumeration{K: 32}
	engines := make(map[ident.PID]*core.Engine)
	for _, p := range group {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		det := fd.NewManual() // quickstart: no real failure detection needed
		eng, err := core.New(core.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			Relation:     rel,
			ToDeliverCap: 4, OutgoingCap: 4, Window: 4, // tiny buffers to make purging visible
		})
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		engines[p] = eng
	}

	// 3. Delivery loops. Carol is slow: she naps between deliveries, so
	//    obsolete updates are purged from her buffers before she sees them.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	var mu sync.Mutex
	delivered := map[ident.PID][]string{}
	for _, p := range group {
		wg.Add(1)
		go func(p ident.PID) {
			defer wg.Done()
			for {
				d, err := engines[p].Deliver(ctx)
				if err != nil {
					return
				}
				switch d.Kind {
				case core.DeliverData:
					mu.Lock()
					delivered[p] = append(delivered[p], string(d.Payload))
					mu.Unlock()
					if p == "carol" {
						time.Sleep(10 * time.Millisecond)
					}
				case core.DeliverView:
					fmt.Printf("%s installed %v\n", p, d.NewView)
				case core.DeliverExpelled:
					fmt.Printf("%s was expelled\n", p)
					return
				}
			}
		}(p)
	}

	// 4. Alice multicasts a stream of updates to two items; each update
	//    obsoletes the item's previous one.
	tracker := obsolete.NewItemTracker(obsolete.NewKTracker(32))
	for i := 0; i < 30; i++ {
		item := uint32(i % 2)
		seq, annot := tracker.Update(item)
		meta := obsolete.Msg{Sender: "alice", Seq: seq, Annot: annot}
		payload := []byte(fmt.Sprintf("item%d=v%d", item, i))
		if _, err := engines["alice"].Multicast(ctx, meta, payload); err != nil {
			return err
		}
	}

	// 5. Install a new view: SVS guarantees everyone has (a cover of)
	//    every delivered message before the view appears.
	time.Sleep(300 * time.Millisecond)
	if err := engines["alice"].RequestViewChange(); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	for _, p := range group {
		msgs := delivered[p]
		last := ""
		if len(msgs) > 0 {
			last = msgs[len(msgs)-1]
		}
		fmt.Printf("%s delivered %2d messages (last: %s)\n", p, len(msgs), last)
	}
	mu.Unlock()
	st := engines["carol"].Stats()
	fmt.Printf("carol's engine purged %d obsolete messages — she skipped stale updates but never lost a current one\n",
		st.PurgedToDeliver)

	cancel()
	for _, p := range group {
		engines[p].Stop()
	}
	wg.Wait()
	return nil
}
