// Replicated game server: the paper's motivating application (§1, §5).
//
// Three replicas run the primary-backup scheme of §4 over SVS. The primary
// simulates game rounds — players move, projectiles spawn and die — and
// disseminates state updates. One backup is deliberately slow. Mid-game
// the primary crashes: the survivors install a new view, the first backup
// takes over as primary without losing state, and the game continues.
//
// Run with: go run ./examples/game
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fd"
	"repro/internal/gamestate"
	"repro/internal/ident"
	"repro/internal/replica"
	"repro/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := transport.NewMemNetwork()
	group := ident.NewPIDs("server-1", "server-2", "server-3")
	view := core.View{ID: 1, Members: group}

	replicas := make(map[ident.PID]*replica.Replica)
	dets := make(map[ident.PID]*fd.Manual)
	for _, p := range group {
		ep, err := net.Endpoint(p)
		if err != nil {
			return err
		}
		det := fd.NewManual()
		r, err := replica.New(replica.Config{
			Self: p, Endpoint: ep, Detector: det, InitialView: view,
			ToDeliverCap: 16, OutgoingCap: 16, Window: 16, K: 32,
		})
		if err != nil {
			return err
		}
		r.OnViewChange(func(v core.View) {
			fmt.Printf("  [%s] installed %v\n", p, v)
		})
		if err := r.Start(); err != nil {
			return err
		}
		replicas[p] = r
		dets[p] = det
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
		for _, d := range dets {
			d.Stop()
		}
	}()

	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	primary := replicas[group[0]]
	fmt.Printf("primary is %s\n", primary.Primary())

	// Five players enter the arena (a composite, atomic spawn).
	var spawn []gamestate.Update
	for pid := uint32(1); pid <= 5; pid++ {
		spawn = append(spawn, gamestate.Update{
			Op: gamestate.OpCreate, Item: pid,
			Pos: gamestate.Vec3{float32(pid) * 10, 0, 0}, Strength: 100,
		})
	}
	if err := primary.Execute(ctx, spawn...); err != nil {
		return err
	}

	// 200 game rounds: players move, occasionally a rocket flies.
	nextRocket := uint32(1000)
	playRounds := func(p *replica.Replica, rounds int) error {
		for r := 0; r < rounds; r++ {
			pid := uint32(rng.Intn(5) + 1)
			if err := p.Execute(ctx, gamestate.Update{
				Op: gamestate.OpUpdate, Item: pid,
				Pos:      gamestate.Vec3{rng.Float32() * 100, rng.Float32() * 100, 0},
				Vel:      gamestate.Vec3{rng.Float32(), rng.Float32(), 0},
				Strength: int32(50 + rng.Intn(50)),
			}); err != nil {
				return err
			}
			if r%20 == 10 { // fire a rocket: create, fly, explode
				rk := nextRocket
				nextRocket++
				if err := p.Execute(ctx, gamestate.Update{Op: gamestate.OpCreate, Item: rk}); err != nil {
					return err
				}
				if err := p.Execute(ctx, gamestate.Update{Op: gamestate.OpUpdate, Item: rk, Pos: gamestate.Vec3{1, 2, 3}}); err != nil {
					return err
				}
				if err := p.Execute(ctx, gamestate.Update{Op: gamestate.OpDestroy, Item: rk}); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := playRounds(primary, 200); err != nil {
		return err
	}

	waitEqual(replicas, group)
	fmt.Printf("after 200 rounds: all replicas at digest %x\n", primary.Digest())

	// The primary crashes mid-game.
	fmt.Printf("\n!!! crashing primary %s\n", group[0])
	net.Crash(group[0])
	replicas[group[0]].Stop()
	survivors := group.Remove(group[0])
	for _, p := range survivors {
		dets[p].Suspect(group[0])
	}
	if err := replicas[survivors[0]].RequestViewChange(group[0]); err != nil {
		return err
	}

	// Fail-over: the first surviving replica becomes primary.
	newPrimary := replicas[survivors[0]]
	for newPrimary.Primary() != survivors[0] {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("new primary is %s (state digest preserved: %x)\n",
		newPrimary.Primary(), newPrimary.Digest())

	// The game goes on.
	if err := playRounds(newPrimary, 100); err != nil {
		return err
	}
	waitEqual(replicas, survivors)
	fmt.Printf("after fail-over and 100 more rounds: survivors agree at digest %x\n", newPrimary.Digest())
	for _, p := range survivors {
		st := replicas[p].Engine().Stats()
		fmt.Printf("  [%s] applied %d updates, purged %d obsolete ones\n",
			p, replicas[p].Applied(), st.PurgedToDeliver)
	}
	return nil
}

// waitEqual blocks until every listed replica reports the same digest.
func waitEqual(rs map[ident.PID]*replica.Replica, who ident.PIDs) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		d := rs[who[0]].Digest()
		same := true
		for _, p := range who[1:] {
			if rs[p].Digest() != d {
				same = false
				break
			}
		}
		if same {
			return
		}
		if time.Now().After(deadline) {
			log.Fatal("replicas never converged")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
